# Offline stdlib-only Go module; these targets are the whole toolchain.
GO ?= go

.PHONY: build vet test race bench bench-smoke bench-json chaos chaos-short verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once — a cheap
# guard against benchmark rot that rides inside verify.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# bench-json runs the PR 3 hot-path families (E11 + transport pipe)
# and writes BENCH_PR3.json with the raw numbers, the acceptance
# ratios, and the environment (GOMAXPROCS matters: the parallel hash
# paths fall back to serial on one core).
bench-json:
	$(GO) run ./cmd/benchreport -o BENCH_PR3.json

# chaos runs the crash-fault injection suite: every registered
# faultpoint plus the randomized crash-restart rounds, always under
# the race detector and with the fixed seeds baked into the tests.
chaos:
	$(GO) test -race -count=1 -v -run 'TestChaos|TestPool' ./internal/chaos/

# chaos-short is the cheap variant (one seed, fewer rounds) used as an
# early gate inside verify.
chaos-short:
	$(GO) test -race -count=1 -short -run 'TestChaos|TestPool' ./internal/chaos/

# verify is the tier-1 gate: vet, compile everything, a quick chaos
# pass, the full suite under the race detector (the concurrency tests
# depend on it; race also reruns chaos with the full seed set), and a
# one-iteration benchmark smoke so the benchmark suite cannot rot.
verify: vet build chaos-short race bench-smoke
