# Offline stdlib-only Go module; these targets are the whole toolchain.
GO ?= go

# CHAOS_SEEDS pins the randomized chaos suite's seed matrix so failures
# reproduce across machines and CI runs. Override to widen the sweep:
#   make chaos CHAOS_SEEDS="1 7 42 99 123"
CHAOS_SEEDS ?= 1 7 42

# TPNR_SCHEME flips every deployment the chaos suite builds between
# the RSA (default, paper-fidelity) and Ed25519 signature schemes:
#   make chaos TPNR_SCHEME=ed25519
TPNR_SCHEME ?=

.PHONY: build vet test race bench bench-smoke bench-json bench-check chaos chaos-short obs-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once — a cheap
# guard against benchmark rot that rides inside verify.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# bench-json runs the PR 3 hot-path families (E11 + transport pipe)
# and writes BENCH_PR3.json with the raw numbers, the acceptance
# ratios, and the environment (GOMAXPROCS matters: the parallel hash
# paths fall back to serial on one core).
bench-json:
	$(GO) run ./cmd/benchreport -o BENCH_PR3.json

# bench-check re-measures the hot-path families and fails if any is
# more than 5% slower than the committed BENCH_PR3.json baseline — the
# guard that instrumentation on the hot paths stays free.
bench-check:
	$(GO) run ./cmd/benchreport -o /tmp/bench_check.json -baseline BENCH_PR3.json -max-regress 0.05

# chaos runs the crash-fault injection suite: every registered
# faultpoint plus the randomized crash-restart rounds, always under
# the race detector and with the fixed seeds baked into the tests.
chaos:
	CHAOS_SEEDS="$(CHAOS_SEEDS)" TPNR_SCHEME="$(TPNR_SCHEME)" $(GO) test -race -count=1 -v -run 'TestChaos|TestPool' ./internal/chaos/

# chaos-short is the cheap variant (one seed, fewer rounds) used as an
# early gate inside verify.
chaos-short:
	CHAOS_SEEDS="$(CHAOS_SEEDS)" TPNR_SCHEME="$(TPNR_SCHEME)" $(GO) test -race -count=1 -short -run 'TestChaos|TestPool' ./internal/chaos/

# obs-smoke boots a transient nrserver with the observability endpoint
# and curls /healthz and /metrics — the cheapest end-to-end proof that
# the operational surface actually serves.
obs-smoke:
	@tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp ./cmd/pkitool ./cmd/nrserver && \
	$$tmp/pkitool init -state $$tmp/state -bits 1024 >/dev/null && \
	$$tmp/nrserver -state $$tmp/state -listen 127.0.0.1:29771 -store $$tmp/blobs \
		-wal-dir $$tmp/wal -obs-addr 127.0.0.1:29772 & pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:29772/healthz >/dev/null 2>&1 && break; sleep 0.1; done; \
	curl -fsS http://127.0.0.1:29772/healthz && echo && \
	curl -fsS http://127.0.0.1:29772/metrics | head -n 5 && \
	echo "obs-smoke: OK"

# verify is the tier-1 gate: vet, compile everything, a quick chaos
# pass, the full suite under the race detector (the concurrency tests
# depend on it; race also reruns chaos with the full seed set), and a
# one-iteration benchmark smoke so the benchmark suite cannot rot.
verify: vet build chaos-short race bench-smoke
