# Offline stdlib-only Go module; these targets are the whole toolchain.
GO ?= go

# CHAOS_SEEDS pins the randomized chaos suite's seed matrix so failures
# reproduce across machines and CI runs. Override to widen the sweep:
#   make chaos CHAOS_SEEDS="1 7 42 99 123"
CHAOS_SEEDS ?= 1 7 42

# TPNR_SCHEME flips every deployment the chaos suite builds between
# the RSA (default, paper-fidelity) and Ed25519 signature schemes:
#   make chaos TPNR_SCHEME=ed25519
TPNR_SCHEME ?=

# TPNR_SHARDS runs the chaos suite against a sharded provider engine
# (per-shard WALs/archives, consistent-hash routing). Default 1 keeps
# the classic single-provider world; chaos-sharded pins 4.
TPNR_SHARDS ?=

# TPNR_REPLICAS quorum-replicates every provider journal the chaos
# suite opens (R replicas, write quorum 2): appends stream to follower
# journals on the same disk and protocol acks wait for the quorum.
# Default 1 keeps journals unreplicated; chaos-replicated pins 3.
TPNR_REPLICAS ?=

.PHONY: build vet test race bench bench-smoke bench-json bench-check chaos chaos-short chaos-sharded chaos-replicated obs-smoke shim-guard verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once — a cheap
# guard against benchmark rot that rides inside verify.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# bench-json runs the hot-path families (E11 + transport pipe, E12
# crypto API, E13 recovery, E14 sharding, E15 storage-dwell audit,
# E16 journal replication) and
# writes BENCH_PR8.json
# with the raw numbers, the acceptance ratios, and the environment
# (GOMAXPROCS matters: the parallel hash paths fall back to serial on
# one core, and the sharded speedups scale with cores/fsync streams).
# 2s per benchmark: the E14 sharded-upload family measures fsync
# streams on a (possibly virtual) disk, and 1s runs are visibly noisy
# there.
bench-json:
	$(GO) run ./cmd/benchreport -o BENCH_PR8.json -benchtime 2s

# bench-check re-measures the hot-path families and gates them two
# ways. The real teeth are the within-run ratio bounds: group commit,
# verify cache, snapshot recovery, Ed25519 open and the aggregate
# receipt must keep their structural speedups, and the pooled
# transport pipe must stay at 0 allocs/op. Both sides of each ratio
# are measured in the same run, so host drift (CPU steal, virtual-disk
# fsync latency) cancels out — these floors hold on any hardware.
# The cross-run ns/op comparison against the committed BENCH_PR8.json
# is kept only as a catastrophic bound (-max-regress 0.50): measured
# run-to-run variance on shared virtualized hosts reaches ~1.5x for
# CPU-bound and ~2.5x for fsync-bound families with identical code, so
# a tight cross-run budget just gates the weather. The fsync-bound
# E11 WAL-append and E14 sharded families are advisory there
# (-regress-skip) — environment, not code.
bench-check:
	$(GO) run ./cmd/benchreport -o /tmp/bench_check.json -baseline BENCH_PR8.json -max-regress 0.50 -benchtime 2s \
		-regress-skip '^BenchmarkE14Sharded|^BenchmarkE11WALAppend' \
		-ratio-min 'wal_group_vs_always_16appenders=2,verify_cache_speedup=5,recovery_snapshot_speedup_10k=5,aggregate_receipt_speedup_k64=10,ed25519_cold_open_speedup=3,audit_vs_download_speedup_n4=1.5' \
		-ratio-max 'transport_pipe_allocs_per_op=0,replication_quorum_overhead_r3=5'

# chaos runs the crash-fault injection suite: every registered
# faultpoint plus the randomized crash-restart rounds, always under
# the race detector and with the fixed seeds baked into the tests.
chaos:
	CHAOS_SEEDS="$(CHAOS_SEEDS)" TPNR_SCHEME="$(TPNR_SCHEME)" TPNR_SHARDS="$(TPNR_SHARDS)" TPNR_REPLICAS="$(TPNR_REPLICAS)" $(GO) test -race -count=1 -v -run 'TestChaos|TestPool' ./internal/chaos/

# chaos-short is the cheap variant (one seed, fewer rounds) used as an
# early gate inside verify.
chaos-short:
	CHAOS_SEEDS="$(CHAOS_SEEDS)" TPNR_SCHEME="$(TPNR_SCHEME)" TPNR_SHARDS="$(TPNR_SHARDS)" TPNR_REPLICAS="$(TPNR_REPLICAS)" $(GO) test -race -count=1 -short -run 'TestChaos|TestPool' ./internal/chaos/

# chaos-sharded reruns the full chaos suite against a 4-shard provider
# engine: same faultpoints and crash-restart rounds, but evidence is
# routed across per-shard WALs/archives and recovery fans out — the
# dispute invariant must hold regardless of shard count.
chaos-sharded:
	$(MAKE) chaos TPNR_SHARDS=4

# chaos-replicated reruns the full chaos suite with every provider
# journal quorum-replicated at R=3 (write quorum 2) over a 4-shard
# engine: the replica.* faultpoints fire for real, and the suite
# asserts that killing any single replica mid-upload leaves every
# acked receipt recoverable from the surviving quorum.
chaos-replicated:
	$(MAKE) chaos TPNR_SHARDS=4 TPNR_REPLICAS=3

# shim-guard fails when NON-TEST code outside the legacy shim layer
# calls one of the Deprecated: RSA-only helpers. All in-tree callers
# have been migrated to scheme handles (Signer/PublicKey); the shims
# remain only so external users of older revisions keep compiling, and
# the files listed in the exclusion are the shim definitions (plus
# their internal delegation). Tests may exercise the shims — they pin
# the legacy behaviour.
shim-guard:
	@matches=$$(grep -rn --include='*.go' -E \
		'cryptoutil\.(Sign|Verify|Encrypt|Decrypt|MarshalPublicKey|ParsePublicKey|PublicKeyFingerprint)\(|\.CAKey\(\)|New(Client|Provider|TTPParty)FromOptions\(|ttp\.NewFromOptions\(|core\.With(CAKey|Options)\(|auditlog\.VerifyCheckpoint\(' \
		internal cmd \
		| grep -v '_test.go' \
		| grep -vE '^internal/(cryptoutil|evidence)/|^internal/pki/pki\.go|^internal/keystore/keystore\.go|^internal/auditlog/auditlog\.go|^internal/arbitrator/arbitrator\.go|^internal/ttp/ttp\.go|^internal/core/(client|provider|ttpparty|options|party)\.go' \
		|| true); \
	if [ -n "$$matches" ]; then \
		echo "$$matches"; \
		echo "shim-guard: new non-test caller(s) of deprecated RSA shims — use scheme handles (KeyPair.Signer / cryptoutil.PublicKey) instead"; \
		exit 1; \
	fi; \
	echo "shim-guard: OK"

# obs-smoke boots a transient nrserver with the observability endpoint
# and curls /healthz and /metrics — the cheapest end-to-end proof that
# the operational surface actually serves.
obs-smoke:
	@tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp ./cmd/pkitool ./cmd/nrserver && \
	$$tmp/pkitool init -state $$tmp/state -bits 1024 >/dev/null && \
	$$tmp/nrserver -state $$tmp/state -listen 127.0.0.1:29771 -store $$tmp/blobs \
		-wal-dir $$tmp/wal -obs-addr 127.0.0.1:29772 & pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:29772/healthz >/dev/null 2>&1 && break; sleep 0.1; done; \
	curl -fsS http://127.0.0.1:29772/healthz && echo && \
	curl -fsS http://127.0.0.1:29772/metrics | head -n 5 && \
	echo "obs-smoke: OK"

# verify is the tier-1 gate: vet, compile everything, a quick chaos
# pass, the full suite under the race detector (the concurrency tests
# depend on it; race also reruns chaos with the full seed set), and a
# one-iteration benchmark smoke so the benchmark suite cannot rot.
verify: vet build chaos-short race bench-smoke
