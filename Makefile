# Offline stdlib-only Go module; these targets are the whole toolchain.
GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# verify is the tier-1 gate: vet, compile everything, then the full
# suite under the race detector (the concurrency tests depend on it).
verify: vet build race
