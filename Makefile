# Offline stdlib-only Go module; these targets are the whole toolchain.
GO ?= go

.PHONY: build vet test race bench chaos chaos-short verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# chaos runs the crash-fault injection suite: every registered
# faultpoint plus the randomized crash-restart rounds, always under
# the race detector and with the fixed seeds baked into the tests.
chaos:
	$(GO) test -race -count=1 -v -run 'TestChaos|TestPool' ./internal/chaos/

# chaos-short is the cheap variant (one seed, fewer rounds) used as an
# early gate inside verify.
chaos-short:
	$(GO) test -race -count=1 -short -run 'TestChaos|TestPool' ./internal/chaos/

# verify is the tier-1 gate: vet, compile everything, a quick chaos
# pass, then the full suite under the race detector (the concurrency
# tests depend on it; race also reruns chaos with the full seed set).
verify: vet build chaos-short race
