// Package repro holds the top-level benchmark harness: one benchmark
// family per experiment in DESIGN.md's E1–E11 index. Run with
//
//	go test -bench=. -benchmem
//
// The absolute numbers are machine-dependent; the SHAPES the paper
// commits to (TPNR's two-message normal mode beating the traditional
// four-step baseline, fixed crypto cost amortizing with payload size,
// platform checks being cheap but blind) are asserted by the test
// suites and visible here as relative magnitudes.
package repro

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/auditlog"
	"repro/internal/bigobject"
	"repro/internal/bridging"
	"repro/internal/cloudsim/awssim"
	"repro/internal/cloudsim/azuresim"
	"repro/internal/cloudsim/gaesim"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/pki"
	"repro/internal/session"
	"repro/internal/sks"
	"repro/internal/storage"
	"repro/internal/traditional"
	"repro/internal/transport"
	"repro/internal/wal"
)

// --- E1: Azure SharedKey authorization ---------------------------------

func BenchmarkE1AzureSharedKeySign(b *testing.B) {
	svc := azuresim.New(storage.NewMem(nil), time.Now)
	key, err := svc.CreateAccount("bench")
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, 4096)
	req := &azuresim.Request{
		Method: "PUT", Resource: "/c/b", Account: "bench", Date: time.Now(),
		ContentMD5: cryptoutil.Sum(cryptoutil.MD5, body).Base64(), Body: body,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req.Sign(key)
	}
}

func BenchmarkE1AzureSharedKeyHandlePut(b *testing.B) {
	svc := azuresim.New(storage.NewMem(nil), time.Now)
	key, err := svc.CreateAccount("bench")
	if err != nil {
		b.Fatal(err)
	}
	client := azuresim.NewClient(svc, "bench", key)
	body := make([]byte, 4096)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, resp := client.PutBlock(fmt.Sprintf("/c/b%d", i), body)
		if resp.Status != 201 {
			b.Fatalf("status %d", resp.Status)
		}
	}
}

// --- E2: AWS manifest + import job --------------------------------------

func BenchmarkE2AWSManifestSignVerify(b *testing.B) {
	svc := awssim.New(storage.NewMem(nil), awssim.DefaultParams())
	secret, err := svc.CreateAccount("AKIA")
	if err != nil {
		b.Fatal(err)
	}
	u := &awssim.User{AccessKeyID: "AKIA", Secret: secret}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, sig := u.BuildManifest(fmt.Sprintf("J%d", i), "D", "bucket/x", "import")
		if !cryptoutil.VerifyHMACSHA256(secret, m.CanonicalBytes(), sig.MAC) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkE2AWSImportJob(b *testing.B) {
	svc := awssim.New(storage.NewMem(nil), awssim.DefaultParams())
	secret, err := svc.CreateAccount("AKIA")
	if err != nil {
		b.Fatal(err)
	}
	u := &awssim.User{AccessKeyID: "AKIA", Secret: secret}
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		job := fmt.Sprintf("J%d", i)
		m, sig := u.BuildManifest(job, "D", "bucket/x", "import")
		svc.ReceiveManifestMail(awssim.Email{Manifest: m})
		dev := awssim.NewDevice("D")
		dev.Files["f"] = data
		if _, err := svc.ProcessImport(sig, dev); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: Azure put/get round trip ----------------------------------------

func BenchmarkE3AzurePutGet(b *testing.B) {
	svc := azuresim.New(storage.NewMem(nil), time.Now)
	key, err := svc.CreateAccount("bench")
	if err != nil {
		b.Fatal(err)
	}
	client := azuresim.NewClient(svc, "bench", key)
	body := make([]byte, 16<<10)
	b.SetBytes(int64(len(body)) * 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		client.PutBlock("/c/rt", body)
		_, resp := client.GetBlock("/c/rt")
		if !azuresim.VerifyMD5(resp) {
			b.Fatal("verify failed")
		}
	}
}

// --- E4: SDC signed request -----------------------------------------------

func BenchmarkE4SDCSignedRequest(b *testing.B) {
	src := storage.NewMem(nil)
	src.Put("r/doc", make([]byte, 4096), cryptoutil.Digest{})
	tunnel := gaesim.NewTunnelServer()
	key := cryptoutil.InsecureTestKey(110)
	der, err := cryptoutil.MarshalPublicKey(key.Public())
	if err != nil {
		b.Fatal(err)
	}
	tunnel.RegisterConsumer("c", der)
	token, err := tunnel.IssueToken()
	if err != nil {
		b.Fatal(err)
	}
	dep := &gaesim.Deployment{Tunnel: tunnel, Agent: gaesim.NewAgent(src, []gaesim.Rule{{ViewerID: "*", ResourcePrefix: "r/"}})}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req, err := gaesim.BuildSignedRequest(key, "o", "v", "i", "a", "c", token, "r/doc")
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := dep.Request(req); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: tamper detection via the agreed digest ---------------------------

func BenchmarkE5TamperDetectionCheck(b *testing.B) {
	// The hot path of the E5 defense: verifying served data against
	// the both-signed agreed digest.
	data := make([]byte, 1<<20)
	h := &evidence.Header{Kind: evidence.KindNRR, TxnID: "t", SenderID: "bob", RecipientID: "alice"}
	h.SetDigests(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !h.MatchesData(data) {
			b.Fatal("mismatch")
		}
	}
}

// --- E6: the four bridging solutions --------------------------------------

func benchBridge(b *testing.B, sol bridging.Solution) {
	ca := pki.NewAuthority("bench-ca", cryptoutil.InsecureTestKey(111))
	now := time.Now()
	mk := func(name string, slot int) *pki.Identity {
		id, err := pki.NewIdentity(ca, name, cryptoutil.InsecureTestKey(slot), now.Add(-time.Hour), now.Add(24*time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		return id
	}
	user, prov, tac := mk("u", 112), mk("p", 113), mk("t", 114)
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := bridging.New(sol, user, prov, tac, ca.Lookup, storage.NewMem(nil))
		if err != nil {
			b.Fatal(err)
		}
		if err := br.Upload(context.Background(), "k", data); err != nil {
			b.Fatal(err)
		}
		if _, err := br.Dispute(context.Background(), "k"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6BridgingS1(b *testing.B) { benchBridge(b, bridging.S1NoTACNoSKS) }
func BenchmarkE6BridgingS2(b *testing.B) { benchBridge(b, bridging.S2SKSOnly) }
func BenchmarkE6BridgingS3(b *testing.B) { benchBridge(b, bridging.S3TACOnly) }
func BenchmarkE6BridgingS4(b *testing.B) { benchBridge(b, bridging.S4TACAndSKS) }

// --- E7: TPNR modes ---------------------------------------------------------

func newBenchDeploy(b *testing.B) *deploy.Deployment {
	b.Helper()
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 30 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return d
}

func BenchmarkE7TPNRNormalUpload(b *testing.B) {
	d := newBenchDeploy(b)
	conn, err := d.DialProvider()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := fmt.Sprintf("bench-n-%d", i)
		if _, err := d.Client.Upload(context.Background(), conn, txn, "k"+txn, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7TPNRDownload(b *testing.B) {
	d := newBenchDeploy(b)
	conn, err := d.DialProvider()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	data := make([]byte, 64<<10)
	if _, err := d.Client.Upload(context.Background(), conn, "bench-up", "obj", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := fmt.Sprintf("bench-d-%d", i)
		if _, err := d.Client.Download(context.Background(), conn, txn, "obj", "bench-up"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7TPNRAbort(b *testing.B) {
	d := newBenchDeploy(b)
	conn, err := d.DialProvider()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := fmt.Sprintf("bench-a-%d", i)
		if _, err := d.Client.Abort(context.Background(), conn, txn, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7TPNRResolve(b *testing.B) {
	d := newBenchDeploy(b)
	conn, err := d.DialProvider()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	// One stalled upload per iteration, then resolve through the TTP.
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	short, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 50 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer short.Close()
	short.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	sconn, err := short.DialProvider()
	if err != nil {
		b.Fatal(err)
	}
	defer sconn.Close()
	data := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := fmt.Sprintf("bench-r-%d", i)
		short.Client.Upload(context.Background(), sconn, txn, "k"+txn, data) // times out
		short.Provider.SetMisbehavior(core.Misbehavior{})
		ttpConn, err := short.DialTTP()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := short.Client.Resolve(context.Background(), ttpConn, txn, "bench"); err != nil {
			b.Fatal(err)
		}
		ttpConn.Close()
		short.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	}
}

// --- E8: TPNR vs traditional ------------------------------------------------

func BenchmarkE8TPNRUpload64K(b *testing.B)        { benchTPNRUpload(b, 64<<10) }
func BenchmarkE8TraditionalUpload64K(b *testing.B) { benchTraditionalUpload(b, 64<<10) }

func benchTPNRUpload(b *testing.B, size int) {
	d := newBenchDeploy(b)
	conn, err := d.DialProvider()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	data := make([]byte, size)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := fmt.Sprintf("bench-e8-%d", i)
		if _, err := d.Client.Upload(context.Background(), conn, txn, "k"+txn, data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTraditionalUpload(b *testing.B, size int) {
	ca := pki.NewAuthority("bench-ca", cryptoutil.InsecureTestKey(115))
	now := time.Now()
	mk := func(name string, slot int) *pki.Identity {
		id, err := pki.NewIdentity(ca, name, cryptoutil.InsecureTestKey(slot), now.Add(-time.Hour), now.Add(24*time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		return id
	}
	a, bb, tt := mk("a", 116), mk("b", 117), mk("t", 118)
	client := traditional.NewClient(a, ca.Lookup, &metrics.Counters{})
	provider := traditional.NewProvider(bb, ca.Lookup, storage.NewMem(nil), &metrics.Counters{})
	ttp := traditional.NewTTP(tt, ca.Lookup, &metrics.Counters{})
	data := make([]byte, size)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Upload(context.Background(), fmt.Sprintf("L%d", i), "k", data, provider, ttp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: attack-defense hot paths -------------------------------------------

func BenchmarkE9ReplayGuardCheck(b *testing.B) {
	g := session.NewGuard(1 << 16)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nonce := make([]byte, 16)
		nonce[0], nonce[1], nonce[2], nonce[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		if err := g.Check("txn", uint64(i+1), nonce, time.Time{}, now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9EvidenceOpenVerify(b *testing.B) {
	alice := cryptoutil.InsecureTestKey(119)
	bob := cryptoutil.InsecureTestKey(120)
	h := &evidence.Header{Kind: evidence.KindNRO, TxnID: "t", SenderID: "alice", RecipientID: "bob"}
	h.SetDigests(make([]byte, 4096))
	_, sealed, err := evidence.Build(alice, bob.Public(), h)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := evidence.Open(bob, alice.Public(), sealed, h); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: overhead sweep and primitives --------------------------------------

func BenchmarkE10TPNRUpload(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size=%dKiB", size>>10), func(b *testing.B) {
			benchTPNRUpload(b, size)
		})
	}
}

func BenchmarkE10RawStorePut(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size=%dKiB", size>>10), func(b *testing.B) {
			s := storage.NewMem(nil)
			data := make([]byte, size)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Put("k", data, cryptoutil.Digest{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE10HashMD5(b *testing.B)    { benchHash(b, cryptoutil.MD5) }
func BenchmarkE10HashSHA256(b *testing.B) { benchHash(b, cryptoutil.SHA256) }

func benchHash(b *testing.B, alg cryptoutil.HashAlg) {
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cryptoutil.Sum(alg, data)
	}
}

func BenchmarkE10EvidenceBuild(b *testing.B) {
	alice := cryptoutil.InsecureTestKey(121)
	bob := cryptoutil.InsecureTestKey(122)
	h := &evidence.Header{Kind: evidence.KindNRO, TxnID: "t", SenderID: "alice", RecipientID: "bob"}
	h.SetDigests(make([]byte, 4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := evidence.Build(alice, bob.Public(), h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10SKSSplitReconstruct(b *testing.B) {
	secret := make([]byte, 16) // an MD5 value
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shares, err := sks.Split(secret, 3, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sks.Reconstruct(shares[:2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10TransportPipe(b *testing.B) {
	x, y := transport.Pipe(64)
	defer x.Close()
	defer y.Close()
	msg := make([]byte, 4096)
	go func() {
		for {
			buf, err := y.Recv()
			if err != nil {
				return
			}
			// Recv transfers ownership; returning the buffer to the
			// transport pool is what keeps the steady state alloc-free.
			transport.Recycle(buf)
		}
	}()
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := x.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension features: Merkle chunking, audit log, chunked objects ---

func BenchmarkXMerkleTree(b *testing.B) {
	for _, chunks := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("chunks=%d", chunks), func(b *testing.B) {
			data := make([][]byte, chunks)
			for i := range data {
				data[i] = make([]byte, 4096)
				data[i][0] = byte(i)
			}
			b.SetBytes(int64(chunks) * 4096)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := merkle.New(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkXMerkleProveVerify(b *testing.B) {
	data := make([][]byte, 1024)
	for i := range data {
		data[i] = make([]byte, 1024)
		data[i][0] = byte(i)
	}
	tr, err := merkle.New(data)
	if err != nil {
		b.Fatal(err)
	}
	root := tr.Root()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx := i % len(data)
		p, err := tr.Prove(idx)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Verify(root, data[idx]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXAuditAppend(b *testing.B) {
	l := auditlog.New(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append("upload", "txn", "benchmark event")
	}
}

func BenchmarkXAuditVerifyChain(b *testing.B) {
	l := auditlog.New(nil)
	for i := 0; i < 1000; i++ {
		l.Append("upload", "txn", "event")
	}
	entries := l.Entries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := auditlog.Verify(entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXBigObjectUpload(b *testing.B) {
	d := newBenchDeploy(b)
	conn, err := d.DialProvider()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("big/%d", i)
		if _, err := bigobject.Upload(context.Background(), d.Client, conn, fmt.Sprintf("bx-%d", i), key, data, 16<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10EvidenceSignOnly ablates the paper's confidentiality
// requirement: evidence WITHOUT the hybrid encryption (signatures
// only). Compare with BenchmarkE10EvidenceBuild to see what
// "encrypted with the recipient's public key" (§4.1) costs.
func BenchmarkE10EvidenceSignOnly(b *testing.B) {
	alice := cryptoutil.InsecureTestKey(121)
	h := &evidence.Header{Kind: evidence.KindNRO, TxnID: "t", SenderID: "alice", RecipientID: "bob"}
	h.SetDigests(make([]byte, 4096))
	hdr := h.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cryptoutil.Sign(alice, hdr); err != nil {
			b.Fatal(err)
		}
		if _, err := cryptoutil.Sign(alice, hdr[:64]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10 concurrent session engine ------------------------------------------
//
// The sweep below measures the tentpole of the concurrent runtime: N
// client workers multiplex protocol runs through a SessionPool against
// one core.Server. Every client-side send pays a simulated WAN latency
// (benchWANDelay), which is exactly the cost a session pool exists to
// overlap; ops/sec should therefore scale with the client count until
// the single provider's CPU saturates. p50/p99 per-operation latency
// comes from metrics.Latencies.

// benchWANDelay is the simulated one-way network latency added to each
// client-side message send.
const benchWANDelay = 20 * time.Millisecond

// newBenchPool wires a SessionPool whose provider connections model a
// WAN link. The fault layer's Stats feed a wire-msgs metric so the
// report shows how many messages the WAN actually carried per op.
func newBenchPool(b *testing.B, d *deploy.Deployment, clients int) *core.SessionPool {
	b.Helper()
	var mu sync.Mutex
	var conns []*transport.FaultyConn
	b.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, fc := range conns {
			total += fc.Stats().Sent
		}
		if b.N > 0 {
			b.ReportMetric(float64(total)/float64(b.N), "wire-msgs/op")
		}
	})
	return core.NewSessionPool(d.Client, func(ctx context.Context) (transport.Conn, error) {
		conn, err := d.Net.DialContext(ctx, deploy.ProviderName)
		if err != nil {
			return nil, err
		}
		fc := transport.Faulty(conn, transport.FaultSpec{Delay: benchWANDelay})
		mu.Lock()
		conns = append(conns, fc)
		mu.Unlock()
		return fc, nil
	}, core.PoolMaxConns(clients))
}

// runConcurrent distributes b.N operations over `clients` workers via
// an atomic iteration counter and reports ops/sec plus p50/p99
// operation latency.
func runConcurrent(b *testing.B, clients int, op func(worker, iter int) error) {
	b.Helper()
	var lat metrics.Latencies
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i > b.N {
					return
				}
				t0 := time.Now()
				if err := op(w, i); err != nil {
					b.Error(err)
					return
				}
				lat.Record(time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "ops/s")
	}
	b.ReportMetric(float64(lat.Percentile(50))/1e6, "p50-ms")
	b.ReportMetric(float64(lat.Percentile(99))/1e6, "p99-ms")
}

func BenchmarkE10ConcurrentUpload(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			d := newBenchDeploy(b)
			pool := newBenchPool(b, d, clients)
			defer pool.Close()
			data := make([]byte, 4<<10)
			b.SetBytes(int64(len(data)))
			runConcurrent(b, clients, func(w, i int) error {
				txn := fmt.Sprintf("bcu-%d-%d", w, i)
				_, err := pool.Upload(context.Background(), txn, "k/"+txn, data)
				return err
			})
		})
	}
}

func BenchmarkE10ConcurrentDownload(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			d := newBenchDeploy(b)
			conn, err := d.DialProvider()
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			if _, err := d.Client.Upload(context.Background(), conn, "bench-seed", "obj", make([]byte, 4<<10)); err != nil {
				b.Fatal(err)
			}
			pool := newBenchPool(b, d, clients)
			defer pool.Close()
			b.SetBytes(4 << 10)
			runConcurrent(b, clients, func(w, i int) error {
				txn := fmt.Sprintf("bcd-%d-%d", w, i)
				_, err := pool.Download(context.Background(), txn, "obj", "bench-seed")
				return err
			})
		})
	}
}

// --- E11: hot-path throughput (PR 3) -----------------------------------------
//
// The four families below back EXPERIMENTS.md E11 and BENCH_PR3.json:
// WAL group commit vs per-append fsync, multi-algorithm hashing,
// Merkle tree construction after the streamed leaf hash, and the
// evidence verification cache. cmd/benchreport runs them and computes
// the acceptance ratios.

// BenchmarkE11WALAppend measures journal append throughput under the
// per-append-fsync policy (always) and group commit, at 1 and 16
// concurrent appenders. fsyncs/op makes the coalescing visible: group
// mode at 16 appenders should show a small fraction of one fsync per
// record while keeping the acked ⇒ synced guarantee.
func BenchmarkE11WALAppend(b *testing.B) {
	rec := make([]byte, 256)
	for _, pol := range []struct {
		name string
		opt  wal.Options
	}{
		{"always", wal.Options{Policy: wal.SyncAlways}},
		{"group", wal.Options{Policy: wal.SyncGroup}},
	} {
		for _, appenders := range []int{1, 16} {
			b.Run(fmt.Sprintf("policy=%s/appenders=%d", pol.name, appenders), func(b *testing.B) {
				w, err := wal.Open(b.TempDir(), pol.opt)
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				b.SetBytes(int64(len(rec)))
				b.ReportAllocs()
				var next atomic.Int64
				var wg sync.WaitGroup
				b.ResetTimer()
				for g := 0; g < appenders; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for next.Add(1) <= int64(b.N) {
							if err := w.Append(rec); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				if b.N > 0 {
					b.ReportMetric(float64(w.Syncs())/float64(b.N), "fsyncs/op")
				}
			})
		}
	}
}

// BenchmarkE11ParallelHash compares computing the evidence digest pair
// (MD5 + SHA256 over the same payload) sequentially vs via
// cryptoutil.SumParallel, which runs the two sequential hash chains on
// separate goroutines. At GOMAXPROCS=1 SumParallel deliberately falls
// back to the serial path, so the ratio honestly reports ~1.0 there.
func BenchmarkE11ParallelHash(b *testing.B) {
	data := make([]byte, 4<<20)
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cryptoutil.Sum(cryptoutil.MD5, data)
			cryptoutil.Sum(cryptoutil.SHA256, data)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cryptoutil.SumParallel(data, cryptoutil.MD5, cryptoutil.SHA256)
		}
	})
}

// BenchmarkE11MerkleBuild measures tree construction over a 16 MiB
// object in 4 KiB chunks — the bigobject upload shape. The streamed
// leaf hash (no per-leaf prefix+chunk copy) is the allocation win
// visible against the pre-PR XMerkleTree numbers; level-parallel
// construction engages when GOMAXPROCS allows.
func BenchmarkE11MerkleBuild(b *testing.B) {
	chunks := make([][]byte, 4096)
	for i := range chunks {
		chunks[i] = make([]byte, 4096)
		chunks[i][0] = byte(i)
	}
	b.SetBytes(int64(len(chunks)) * 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := merkle.New(chunks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11VerifyCache measures evidence signature verification
// cold (two RSA verifies per call) vs warm (repeat verification of the
// same evidence through the VerifyCache — two hash lookups). The warm
// path is what the TTP resolve handler and the arbitrator hit when the
// same evidence is resubmitted.
func BenchmarkE11VerifyCache(b *testing.B) {
	signer := cryptoutil.InsecureTestKey(123)
	peer := cryptoutil.InsecureTestKey(124)
	// Hot paths hold parsed key handles (the keystore World and the
	// party peer cache), so the benchmark reuses one handle too —
	// fingerprints memoize inside the handle.
	signerPub := signer.Signer().Public()
	h := &evidence.Header{Kind: evidence.KindNRO, TxnID: "t", SenderID: "alice", RecipientID: "bob"}
	h.SetDigests(make([]byte, 4096))
	ev, _, err := evidence.BuildFor(signer.Signer(), peer.Signer().Public(), h)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ev.VerifyWith(signerPub); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := evidence.NewVerifyCache(64)
		if err := ev.VerifyCachedWith(signerPub, c); err != nil {
			b.Fatal(err) // prime
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ev.VerifyCachedWith(signerPub, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E12: scheme-agnostic crypto, batch verification, aggregation ---

// e12Keys returns one production-strength key pair per (scheme, slot):
// DefaultRSABits RSA or Ed25519. The insecure cached test keys are
// 1024-bit and would understate RSA's per-message private-key cost —
// exactly the quantity the scheme comparison is about — so the E12
// families generate real keys once and memoize them.
var (
	e12KeyMu   sync.Mutex
	e12KeyMemo = map[[2]int]cryptoutil.KeyPair{}
)

func e12Keys(b *testing.B, scheme cryptoutil.Scheme, slot int) cryptoutil.KeyPair {
	b.Helper()
	e12KeyMu.Lock()
	defer e12KeyMu.Unlock()
	id := [2]int{int(scheme), slot}
	if k, ok := e12KeyMemo[id]; ok {
		return k
	}
	var k cryptoutil.KeyPair
	var err error
	if scheme == cryptoutil.SchemeRSA {
		k, err = cryptoutil.GenerateKeyBits(cryptoutil.DefaultRSABits)
	} else {
		k, err = cryptoutil.GenerateKeyPair(scheme)
	}
	if err != nil {
		b.Fatal(err)
	}
	e12KeyMemo[id] = k
	return k
}

// e12Evidence builds one sealed evidence item under the given scheme
// and returns the pieces a receive-side benchmark needs.
func e12Evidence(b *testing.B, scheme cryptoutil.Scheme, txn string) (sender, recipient cryptoutil.KeyPair, h *evidence.Header, ev *evidence.Evidence, sealed []byte) {
	b.Helper()
	sender = e12Keys(b, scheme, 0)
	recipient = e12Keys(b, scheme, 1)
	h = &evidence.Header{Kind: evidence.KindNRO, TxnID: txn, SenderID: "alice", RecipientID: "bob"}
	h.SetDigests(make([]byte, 4096))
	var err error
	ev, sealed, err = evidence.BuildFor(sender.Signer(), recipient.Signer().Public(), h)
	if err != nil {
		b.Fatal(err)
	}
	return
}

// BenchmarkE12EvidenceColdOpen measures the receive side of one
// evidence item with no cache: unseal plus two signature checks. This
// is where the schemes diverge hardest — RSA pays a private-key
// decrypt per message, Ed25519's hybrid unseal is a scalar
// multiplication (the >=5x Ed25519 target applies here).
func BenchmarkE12EvidenceColdOpen(b *testing.B) {
	for _, tc := range []struct {
		name   string
		scheme cryptoutil.Scheme
	}{{"rsa", cryptoutil.SchemeRSA}, {"ed25519", cryptoutil.SchemeEd25519}} {
		b.Run("scheme="+tc.name, func(b *testing.B) {
			sender, recipient, h, _, sealed := e12Evidence(b, tc.scheme, "t")
			b.ReportAllocs()
			b.ResetTimer() // key generation runs once, outside the measurement
			for i := 0; i < b.N; i++ {
				ev, err := evidence.OpenWith(recipient.Signer(), sender.Signer().Public(), sealed, h)
				if err != nil || ev == nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12BatchVerify compares verifying n opened evidence items
// one by one against one VerifyBatch call (parallel workers,
// per-scheme grouping). ns/op covers the whole round of n items, so
// the singles/batch ratio at equal n is the speedup directly.
func BenchmarkE12BatchVerify(b *testing.B) {
	build := func(b *testing.B, n int) []evidence.BatchEntry {
		entries := make([]evidence.BatchEntry, n)
		for i := range entries {
			sender, _, _, ev, _ := e12Evidence(b, cryptoutil.SchemeRSA, fmt.Sprintf("t%d", i))
			entries[i] = evidence.BatchEntry{Ev: ev, Sender: sender.Signer().Public()}
		}
		return entries
	}
	for _, n := range []int{8, 64} {
		entries := build(b, n)
		b.Run(fmt.Sprintf("mode=singles/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, e := range entries {
					if err := e.Ev.VerifyWith(e.Sender); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("mode=batch/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if failed := evidence.VerifyBatch(entries, nil); len(failed) != 0 {
					b.Fatal("batch verification failed")
				}
			}
		})
	}
}

// BenchmarkE12AggregateReceipt prices settling a session of k uploads:
// one signature over a Merkle root of the k evidence digests (plus one
// verification on the other side) against k individual receipt
// signatures and verifications. The signature count is the paper-level
// claim; the wall clock shows what it buys.
func BenchmarkE12AggregateReceipt(b *testing.B) {
	const k = 64
	signer := e12Keys(b, cryptoutil.SchemeRSA, 2)
	pub := signer.Signer().Public()
	txns := make([]string, k)
	leaves := make([]cryptoutil.Digest, k)
	for i := range txns {
		txns[i] = fmt.Sprintf("txn-%d", i)
		_, _, _, ev, _ := e12Evidence(b, cryptoutil.SchemeRSA, txns[i])
		leaves[i] = evidence.LeafDigest(ev)
	}
	now := time.Now()
	b.Run(fmt.Sprintf("mode=singles/k=%d", k), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < k; j++ {
				sig, err := signer.Signer().Sign(leaves[j].Sum)
				if err != nil {
					b.Fatal(err)
				}
				if err := pub.Verify(leaves[j].Sum, sig); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("mode=aggregate/k=%d", k), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, _, err := evidence.BuildAggregateReceipt(signer.Signer(), "sess", "bob", txns, leaves, now)
			if err != nil {
				b.Fatal(err)
			}
			if err := r.VerifySig(pub); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E15: storage-dwell audit (DESIGN.md §14) --------------------------------

// BenchmarkE15Audit compares the audit sub-protocol against the only
// other way a client can verify the provider still holds its data:
// re-downloading the object. mode=download runs a full download
// session over the 1 MiB object; mode=challenge runs an n-leaf
// challenge-response round — the provider returns n random 4 KiB
// chunks with inclusion proofs against the Merkle root it committed
// to in the NRR, and the client rehashes the chunks and verifies the
// proofs and the response signature. The audit moves n chunks plus
// O(n log m) hashes instead of the whole object, so it must win by a
// growing margin as objects grow; cmd/benchreport pins the
// audit_vs_download_speedup_n4 floor.
func BenchmarkE15Audit(b *testing.B) {
	d := newBenchDeploy(b)
	conn, err := d.DialProvider()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := d.Client.Upload(context.Background(), conn, "bench-audit", "obj-audit", data); err != nil {
		b.Fatal(err)
	}

	b.Run("mode=download", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			txn := fmt.Sprintf("bench-ad-%d", i)
			if _, err := d.Client.Download(context.Background(), conn, txn, "obj-audit", "bench-audit"); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("mode=challenge/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := d.Client.AuditObject(context.Background(), conn, "bench-audit", n)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Response.Entries) != n {
					b.Fatalf("proved %d leaves, want %d", len(rep.Response.Entries), n)
				}
			}
		})
	}
}

// BenchmarkE15AuditArbitrate prices the off-line half of the audit
// protocol: given an archived challenge and response, how fast can an
// arbitrator (or any verifier) re-check the response against the
// committed root? This is the cost of conviction — it runs once per
// dispute, with no network and no data.
func BenchmarkE15AuditArbitrate(b *testing.B) {
	d := newBenchDeploy(b)
	conn, err := d.DialProvider()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	data := make([]byte, 1<<20)
	if _, err := d.Client.Upload(context.Background(), conn, "bench-arb", "obj-arb", data); err != nil {
		b.Fatal(err)
	}
	rep, err := d.Client.AuditObject(context.Background(), conn, "bench-arb", 4)
	if err != nil {
		b.Fatal(err)
	}
	providerKey, err := d.CA.Lookup(deploy.ProviderName)
	if err != nil {
		b.Fatal(err)
	}
	pub, err := providerKey.Key()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.Response.Verify(pub, rep.Challenge, rep.Root); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E16: quorum-replicated evidence journal (DESIGN.md §15) -----------------

// BenchmarkE16Replication prices journal-on-quorum-before-ack: the
// same journaled 64 KiB upload with the provider's evidence journal
// unreplicated (mode=local — acks gate on the leader's own fsync, the
// pre-PR-10 shape) versus quorum-replicated at R=3 / write quorum 2
// (mode=quorum — every ack additionally waits for one of two
// in-process follower journals to fsync the record). The follower
// appends run in parallel with each other and overlap the protocol's
// crypto, so the structural claim benchreport pins is an overhead
// CEILING, not a speedup floor: surviving the loss of any single node
// must cost less than replication_quorum_overhead_r3 per acked upload.
func BenchmarkE16Replication(b *testing.B) {
	run := func(b *testing.B, replicated bool) {
		dir := b.TempDir()
		pw, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { pw.Close() })
		cfg := deploy.Config{
			TestKeys:        true,
			ResponseTimeout: 30 * time.Second,
			ProviderOpts:    []core.Option{core.WithJournal(pw)},
		}
		if replicated {
			cfg.ProviderReplicas = 3
			cfg.ReplicaWAL = func(s, r int) (*wal.WAL, error) {
				return wal.Open(filepath.Join(dir, fmt.Sprintf("replica-%02d", r)), wal.Options{})
			}
		}
		d, err := deploy.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { d.Close() })
		conn, err := d.DialProvider()
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		data := make([]byte, 64<<10)
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			txn := fmt.Sprintf("bench-repl-%d", i)
			if _, err := d.Client.Upload(context.Background(), conn, txn, "k"+txn, data); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if replicated {
			// The quorum needs one follower per append; report how far the
			// slowest replica trails the leader when the run ends — the
			// anti-entropy backlog the repair loop drains.
			b.ReportMetric(float64(d.ReplicaGroups[0].Lag()), "lag-records")
		}
	}
	b.Run("mode=local", func(b *testing.B) { run(b, false) })
	b.Run("mode=quorum/r=3", func(b *testing.B) { run(b, true) })
}
