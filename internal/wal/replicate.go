package wal

import (
	"errors"
	"fmt"
	"time"
)

// ErrCompacted reports an LSN-ranged read that starts below the
// journal's checkpoint boundary: the records were truncated away and
// only the snapshot covers them. A replication leader seeing this must
// ship the snapshot itself (InstallSnapshot on the follower) and then
// stream the tail.
var ErrCompacted = errors.New("wal: requested records compacted into the checkpoint")

// errStopReplay is the internal sentinel ReadBatchFromLSN uses to end
// a replay walk once the batch is full; it never escapes the package.
var errStopReplay = errors.New("wal: stop replay")

// ReadBatchFromLSN copies up to max records with LSN strictly greater
// than `after` out of the journal — oldest first, contiguous, so the
// i-th record returned has LSN after+1+i — and reports whether more
// records remain past the batch. It is the replication read path: a
// leader streams a follower everything past the follower's durable
// high-water mark, and the same call serves live streaming, restart
// catch-up and anti-entropy backfill — they differ only in how far
// behind `after` is.
//
// The copies are taken under one lock acquisition and the lock is
// released before the caller touches them: this is the replication
// send path, and network writes must never happen under the journal
// lock (a stalled follower connection would otherwise block every
// concurrent Append). Pinning the checkpoint boundary and walking the
// segments under the same acquisition also means a concurrent
// Checkpoint cannot shift the LSN counting mid-read; LSNs are assigned
// positionally — the first live record has LSN base+1 where base is
// the checkpoint LSN (0 without a snapshot), valid because Checkpoint
// rotates segments so the snapshot boundary is always a segment
// boundary.
//
// When `after` precedes the checkpoint boundary the requested records
// no longer exist as records and ErrCompacted is returned; the caller
// bootstraps the follower from the snapshot instead (LoadCheckpoint +
// InstallSnapshot) and retries from the snapshot LSN.
func (w *WAL) ReadBatchFromLSN(after uint64, max int) (recs [][]byte, more bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	base := uint64(0)
	minSeg := 0
	if w.ckpt != nil {
		base = w.ckpt.LSN
		minSeg = w.ckpt.TailSeg
	}
	if after < base {
		return nil, false, fmt.Errorf("%w: tail starts after LSN %d, requested after %d", ErrCompacted, base, after)
	}
	lsn := base
	err = w.replayLocked(minSeg, func(rec []byte) error {
		lsn++
		if lsn <= after {
			return nil
		}
		if len(recs) >= max {
			more = true
			return errStopReplay
		}
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil && !errors.Is(err, errStopReplay) {
		return nil, false, err
	}
	return recs, more, nil
}

// InstallSnapshot makes state the journal's checkpoint at the given
// (leader-assigned) LSN, discarding every local record — the follower
// bootstrap path when its high-water mark fell below the leader's
// compaction horizon. After it returns, the journal's LSN numbering is
// aligned with the leader's: the next appended record gets lsn+1, and
// a recovery over this journal restores the snapshot and replays the
// replicated tail exactly as the leader itself would.
func (w *WAL) InstallSnapshot(state []byte, lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.ioErr != nil {
		return w.ioErr
	}
	if w.syncErr != nil {
		return w.syncErr
	}
	w.waitFlush()
	if w.closed {
		return ErrClosed
	}
	if err := w.fsyncLocked(); err != nil {
		return fmt.Errorf("wal: snapshot-install fsync: %w", err)
	}
	// Rotate so the installed boundary is a segment boundary, exactly
	// like a locally taken checkpoint.
	if err := w.f.Close(); err != nil {
		w.setErrLocked(fmt.Errorf("wal: closing segment for snapshot install: %w", err))
		return w.ioErr
	}
	if err := w.newSegment(w.segIndex + 1); err != nil {
		w.setErrLocked(err)
		return w.ioErr
	}
	walRotations.Inc()

	ck := &Checkpoint{
		LSN:     lsn,
		TailSeg: w.segIndex,
		Taken:   time.Now(),
		payload: append([]byte(nil), state...),
	}
	if err := w.writeCheckpointFile(ck); err != nil {
		return err
	}
	prev := w.ckpt
	w.ckpt = ck
	// The local records are all below the installed boundary now; the
	// truncation below removes them and the counters reset with them.
	w.lsn = lsn
	w.records = 0
	w.tailRecords = 0
	w.sinceSync = 0
	walCheckpoints.Inc()
	w.pruneCheckpoints(ck, prev)
	return w.truncateCoveredLocked(ck.TailSeg)
}
