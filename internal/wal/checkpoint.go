package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/wire"
)

// Checkpoint/compaction faultpoints: the chaos suite kills the process
// at each of them and proves recovery still resolves every in-flight
// dispute. pre-rename leaves only a tmp file (the snapshot never
// happened); post-rename leaves a durable snapshot with the covered
// segments still on disk; mid-truncate leaves the covered segments
// partially removed.
var (
	fpCheckpointPreRename  = faultpoint.Register("wal.checkpoint.pre-rename")
	fpCheckpointPostRename = faultpoint.Register("wal.checkpoint.post-rename")
	fpCompactMidTruncate   = faultpoint.Register("wal.compact.mid-truncate")
)

const (
	// ckptMagic heads every checkpoint file.
	ckptMagic = "TPNRCKP1"
	// ckptFmt names checkpoint files by the tail segment index their
	// snapshot points at, so names are monotonic and self-ordering.
	ckptFmt = "ckpt-%08d.snap"
	// ckptTmp is the atomic-write staging name. At most one checkpoint
	// is in flight per journal (w.mu serializes them), and a stale tmp
	// from a crashed checkpoint is removed at Open.
	ckptTmp = "ckpt.tmp"
)

// Checkpoint is one durable snapshot of the journal owner's state.
//
// LSN semantics: a record's LSN is its 1-based position in the journal
// since genesis — truncated segments keep counting, so LSNs never
// reuse. A checkpoint covers exactly the records with LSN <= its LSN;
// because Checkpoint rotates the segment before writing the snapshot,
// that boundary is also a segment boundary: every record in segments
// >= TailSeg has LSN > the snapshot LSN, and segments < TailSeg are
// fully covered and safe to truncate.
type Checkpoint struct {
	// LSN is the last record covered by the snapshot.
	LSN uint64
	// TailSeg is the first segment whose records the snapshot does NOT
	// cover — recovery replays segments >= TailSeg over the snapshot.
	TailSeg int
	// Taken is the wall time the snapshot was written (drives the
	// wal_snapshot_age_seconds gauge).
	Taken time.Time

	payload []byte
}

// encodeCheckpoint frames a checkpoint file: magic, then a CRC-guarded
// body. One CRC over the whole body is enough — a checkpoint file is
// all-or-nothing, unlike the record-granular journal segments.
func encodeCheckpoint(ck *Checkpoint) []byte {
	e := wire.NewEncoder(32 + len(ck.payload))
	e.U64(ck.LSN)
	e.U64(uint64(ck.TailSeg))
	e.I64(ck.Taken.UnixNano())
	e.Bytes32(ck.payload)
	body := e.Bytes()
	buf := make([]byte, 0, len(ckptMagic)+8+len(body))
	buf = append(buf, ckptMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	return append(buf, body...)
}

// readCheckpointFile parses and validates one checkpoint file. Any
// damage — short file, bad magic, CRC mismatch, malformed body — is an
// error; the caller discards the file and falls back.
func readCheckpointFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < len(ckptMagic)+8 || string(b[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("wal: %s: bad checkpoint header", filepath.Base(path))
	}
	n := binary.BigEndian.Uint32(b[len(ckptMagic):])
	crc := binary.BigEndian.Uint32(b[len(ckptMagic)+4:])
	body := b[len(ckptMagic)+8:]
	if uint32(len(body)) != n {
		return nil, fmt.Errorf("wal: %s: truncated checkpoint body", filepath.Base(path))
	}
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("wal: %s: checkpoint checksum mismatch", filepath.Base(path))
	}
	d := wire.NewDecoder(body)
	ck := &Checkpoint{}
	ck.LSN = d.U64()
	ck.TailSeg = int(d.U64())
	ck.Taken = time.Unix(0, d.I64())
	ck.payload = d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("wal: %s: malformed checkpoint: %v", filepath.Base(path), err)
	}
	return ck, nil
}

func (w *WAL) ckptPath(tailSeg int) string {
	return filepath.Join(w.dir, fmt.Sprintf(ckptFmt, tailSeg))
}

// Checkpoint makes state the journal's durable snapshot and compacts
// the segments it covers. The sequence is crash-safe at every step:
//
//  1. flush and fsync everything appended so far (the snapshot must not
//     claim records that are not durable);
//  2. rotate to a fresh segment, so the snapshot boundary is a segment
//     boundary;
//  3. write the checkpoint file via tmp + fsync + rename + dir fsync —
//     a crash leaves either the old snapshot or the new one, never a
//     half-written current one;
//  4. truncate segments older than the boundary — a crash mid-way
//     leaves extra covered segments that the next Open removes.
//
// The previous checkpoint file is retained as the fall-back for a torn
// current one; older files are pruned. Returns the snapshot LSN.
//
// The caller owns snapshot consistency: state must describe everything
// the records with LSN <= the returned value built up, which in
// practice means the owner quiesces its own journal-and-mutate paths
// around Checkpoint (core does this with a party-level RWMutex).
func (w *WAL) Checkpoint(state []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.ioErr != nil {
		return 0, w.ioErr
	}
	if w.syncErr != nil {
		return 0, w.syncErr
	}
	w.waitFlush()
	if w.closed {
		return 0, ErrClosed
	}
	if err := w.fsyncLocked(); err != nil {
		return 0, fmt.Errorf("wal: checkpoint fsync: %w", err)
	}
	snapLSN := w.lsn
	if err := w.f.Close(); err != nil {
		w.setErrLocked(fmt.Errorf("wal: closing segment for checkpoint: %w", err))
		return 0, w.ioErr
	}
	if err := w.newSegment(w.segIndex + 1); err != nil {
		w.setErrLocked(err)
		return 0, w.ioErr
	}
	walRotations.Inc()

	ck := &Checkpoint{
		LSN:     snapLSN,
		TailSeg: w.segIndex,
		Taken:   time.Now(),
		payload: append([]byte(nil), state...),
	}
	if err := w.writeCheckpointFile(ck); err != nil {
		return 0, err
	}
	prev := w.ckpt
	w.ckpt = ck
	w.tailRecords = 0
	walCheckpoints.Inc()
	w.pruneCheckpoints(ck, prev)
	if err := w.truncateCoveredLocked(ck.TailSeg); err != nil {
		return 0, err
	}
	return snapLSN, nil
}

// writeCheckpointFile stages, fsyncs and atomically publishes one
// checkpoint file, then fsyncs the directory so the rename survives a
// crash. Callers hold w.mu.
func (w *WAL) writeCheckpointFile(ck *Checkpoint) error {
	tmp := filepath.Join(w.dir, ckptTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: staging checkpoint: %w", err)
	}
	if _, err := f.Write(encodeCheckpoint(ck)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing checkpoint: %w", err)
	}
	faultpoint.Hit(fpCheckpointPreRename)
	if err := os.Rename(tmp, w.ckptPath(ck.TailSeg)); err != nil {
		return fmt.Errorf("wal: publishing checkpoint: %w", err)
	}
	if d, err := os.Open(w.dir); err == nil {
		d.Sync()
		d.Close()
	}
	faultpoint.Hit(fpCheckpointPostRename)
	return nil
}

// pruneCheckpoints removes checkpoint files other than the current one
// and its predecessor (kept as the torn-snapshot fall-back). Callers
// hold w.mu.
func (w *WAL) pruneCheckpoints(cur, prev *Checkpoint) {
	keep := map[int]bool{cur.TailSeg: true}
	if prev != nil {
		keep[prev.TailSeg] = true
	}
	for _, tailSeg := range w.checkpointFiles() {
		if !keep[tailSeg] {
			os.Remove(w.ckptPath(tailSeg))
		}
	}
}

// checkpointFiles lists on-disk checkpoint tail-segment indices in
// ascending order.
func (w *WAL) checkpointFiles() []int {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range ents {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), ckptFmt, &idx); err == nil {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// truncateCoveredLocked removes segments fully covered by the snapshot
// pointing at tailSeg. The checkpoint file is already durable, so a
// crash anywhere in here merely leaves covered segments behind for the
// next Open to finish removing. Callers hold w.mu.
func (w *WAL) truncateCoveredLocked(tailSeg int) error {
	segs, err := w.segments()
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx >= tailSeg {
			break
		}
		if err := os.Remove(w.segPath(idx)); err != nil {
			return fmt.Errorf("wal: truncating covered segment: %w", err)
		}
		delete(w.segBytes, idx)
		walCompactedSegs.Inc()
		faultpoint.Hit(fpCompactMidTruncate)
	}
	if d, err := os.Open(w.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// loadCheckpoint selects the newest usable snapshot at Open: files are
// tried newest-first; a torn or corrupt file is discarded (counted in
// wal_checkpoint_discarded_total) and the previous one is tried — its
// longer tail still covers the gap, because a newer checkpoint's
// covered segments are only removed AFTER its file is durable. A
// checkpoint whose tail segment no longer exists cannot be used and is
// skipped. Callers hold no locks (Open).
func (w *WAL) loadCheckpoint(segs []int) {
	have := make(map[int]bool, len(segs))
	for _, idx := range segs {
		have[idx] = true
	}
	files := w.checkpointFiles()
	for i := len(files) - 1; i >= 0; i-- {
		path := w.ckptPath(files[i])
		ck, err := readCheckpointFile(path)
		if err != nil {
			os.Remove(path)
			walCkptDiscarded.Inc()
			continue
		}
		if !have[ck.TailSeg] {
			continue
		}
		w.ckpt = ck
		return
	}
}

// LoadCheckpoint returns the snapshot payload recovered at Open (and
// updated by successful Checkpoint calls) with its LSN. ok is false
// when the journal has no usable snapshot — the owner replays from
// genesis.
func (w *WAL) LoadCheckpoint() (payload []byte, lsn uint64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ckpt == nil {
		return nil, 0, false
	}
	return append([]byte(nil), w.ckpt.payload...), w.ckpt.LSN, true
}

// LastCheckpoint reports the current snapshot's LSN and wall time.
func (w *WAL) LastCheckpoint() (lsn uint64, taken time.Time, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ckpt == nil {
		return 0, time.Time{}, false
	}
	return w.ckpt.LSN, w.ckpt.Taken, true
}

// LSN reports the log sequence number of the last appended record —
// records since genesis, surviving compaction.
func (w *WAL) LSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lsn
}

// TailRecords reports how many intact records Open found in segments
// the current snapshot does not cover — the replay work a recovery
// pays after restoring the snapshot. Without a snapshot it equals
// Records().
func (w *WAL) TailRecords() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tailRecords
}

// ReplayTail is Replay restricted to records the current snapshot does
// not cover: the owner restores the snapshot first, then replays only
// this tail. Without a snapshot it replays everything.
func (w *WAL) ReplayTail(fn func(rec []byte) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	minSeg := 0
	if w.ckpt != nil {
		minSeg = w.ckpt.TailSeg
	}
	return w.replayLocked(minSeg, fn)
}

// checkpointTime reports when the current snapshot was taken (gauge
// callback).
func (w *WAL) checkpointTime() (time.Time, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ckpt == nil {
		return time.Time{}, false
	}
	return w.ckpt.Taken, true
}

// segmentCount and activeBytes feed the process-wide size gauges.
func (w *WAL) segmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segBytes)
}

func (w *WAL) activeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	for _, n := range w.segBytes {
		total += n
	}
	return total
}
