// Package wal is the durable write-ahead journal under the protocol
// engines' crash recovery. The TPNR dispute story only works if NRO/NRR
// evidence survives until an Arbitrator can see it (§4.4); evidence
// that lives in an in-process map dies with the process, silently
// unbinding both parties. Every protocol transition is therefore
// appended here — length-prefixed, CRC-checksummed, fsynced per the
// configured policy — BEFORE the corresponding message is acked, and
// replayed on startup to rebuild the party's archive and session state.
//
// On-disk layout: dir/wal-%08d.seg, each segment an 8-byte magic header
// followed by records of the form
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// Appends go to the highest-numbered segment and roll to a new one past
// SegmentSize. A crash mid-append leaves a torn record at the tail of
// the last segment; Open detects it (short read or CRC mismatch) and
// truncates the file back to the last intact record — a torn tail means
// the corresponding message was never acked, so dropping it is exactly
// the §4.3 semantics (the peer escalates to Resolve). Corruption
// anywhere BEFORE the tail is not survivable and surfaces as
// ErrCorrupt: silently skipping interior records could un-bind a party
// that was already acked.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Errors.
var (
	// ErrCorrupt reports a damaged record before the journal tail —
	// unlike a torn tail, interior corruption cannot be safely dropped.
	ErrCorrupt = errors.New("wal: corrupt record before journal tail")
	// ErrClosed is returned from operations on a closed journal.
	ErrClosed = errors.New("wal: journal closed")
	// ErrTooLarge rejects records beyond MaxRecordSize.
	ErrTooLarge = errors.New("wal: record exceeds maximum size")
)

const (
	segMagic = "TPNRWAL1" // 8 bytes at the head of every segment
	segFmt   = "wal-%08d.seg"

	// MaxRecordSize bounds one journal record (evidence plus framing;
	// bulk blob data never enters the journal).
	MaxRecordSize = 16 << 20

	// DefaultSegmentSize is the rotation threshold when Options leaves
	// SegmentSize zero.
	DefaultSegmentSize = 4 << 20

	recHeaderLen = 8 // u32 length + u32 crc
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

// Policies, strongest first. SyncAlways is the default: the journal
// exists to survive crashes, so opting OUT of durability is the
// explicit choice.
const (
	// SyncAlways fsyncs after every append — no acked transition can be
	// lost to a crash.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs every Options.BatchSize appends (and on rotation
	// and Close). A crash can lose up to BatchSize-1 acked records.
	SyncBatch
	// SyncNever leaves flushing to the OS. Tests and benchmarks only.
	SyncNever
)

// String names the policy for flags and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNever:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options tune a journal. The zero value is a safe production default:
// fsync on every append, 4 MiB segments.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (0 means
	// DefaultSegmentSize).
	SegmentSize int64
	// Policy selects the fsync schedule.
	Policy SyncPolicy
	// BatchSize is the append count between fsyncs under SyncBatch
	// (0 means 16).
	BatchSize int
}

// WAL is an append-only crash-safe record journal. Safe for concurrent
// use.
type WAL struct {
	mu  sync.Mutex
	dir string
	opt Options

	f        *os.File // current (highest) segment, positioned at its end
	segIndex int      // index of the current segment
	segSize  int64    // bytes written to the current segment

	records   int // records appended + replayed-intact at Open
	sinceSync int
	truncated bool
	closed    bool
}

// Open creates dir if needed, scans existing segments, truncates a torn
// final record, and positions the journal for appending.
func Open(dir string, opt Options) (*WAL, error) {
	if opt.SegmentSize <= 0 {
		opt.SegmentSize = DefaultSegmentSize
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 16
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	w := &WAL{dir: dir, opt: opt}

	segs, err := w.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.newSegment(1); err != nil {
			return nil, err
		}
		return w, nil
	}
	for i, idx := range segs {
		last := i == len(segs)-1
		n, end, err := scanSegment(w.segPath(idx), last)
		if err != nil {
			return nil, err
		}
		w.records += n
		if last {
			fi, err := os.Stat(w.segPath(idx))
			if err != nil {
				return nil, fmt.Errorf("wal: stat segment: %w", err)
			}
			if end < fi.Size() {
				if err := os.Truncate(w.segPath(idx), end); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
				}
				w.truncated = true
			}
			f, err := os.OpenFile(w.segPath(idx), os.O_RDWR, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: opening segment: %w", err)
			}
			if _, err := f.Seek(end, io.SeekStart); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: seeking segment end: %w", err)
			}
			w.f, w.segIndex, w.segSize = f, idx, end
		}
	}
	return w, nil
}

// segments lists existing segment indices in ascending order.
func (w *WAL) segments() ([]int, error) {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", w.dir, err)
	}
	var out []int
	for _, e := range ents {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), segFmt, &idx); err == nil {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

func (w *WAL) segPath(idx int) string {
	return filepath.Join(w.dir, fmt.Sprintf(segFmt, idx))
}

// newSegment creates segment idx with its header and makes it current.
func (w *WAL) newSegment(idx int) error {
	f, err := os.OpenFile(w.segPath(idx), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment header: %w", err)
	}
	// Persist the directory entry so the segment itself survives a
	// crash right after rotation.
	if d, err := os.Open(w.dir); err == nil {
		d.Sync()
		d.Close()
	}
	w.f, w.segIndex, w.segSize = f, idx, int64(len(segMagic))
	return nil
}

// scanSegment validates one segment, returning its intact record count
// and the byte offset just past the last intact record. In the last
// segment a damaged tail is reported via end < file size; anywhere else
// it is ErrCorrupt. A last segment whose header itself is torn scans as
// zero records ending at offset 0, so Open truncates it to empty and
// rewrites nothing (the next append recreates the header path via the
// existing file — handled by treating end 0 as "rewrite header").
func scanSegment(path string, last bool) (n int, end int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: reading segment: %w", err)
	}
	if len(b) < len(segMagic) || string(b[:len(segMagic)]) != segMagic {
		if last && len(b) < len(segMagic) {
			return 0, 0, nil // torn during creation; truncated + rebuilt by Open
		}
		return 0, 0, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, filepath.Base(path))
	}
	off := int64(len(segMagic))
	for int64(len(b))-off >= recHeaderLen {
		length := binary.BigEndian.Uint32(b[off:])
		crc := binary.BigEndian.Uint32(b[off+4:])
		if length > MaxRecordSize {
			if last {
				return n, off, nil // garbage length: torn tail
			}
			return 0, 0, fmt.Errorf("%w: %s: record length %d at offset %d", ErrCorrupt, filepath.Base(path), length, off)
		}
		body := off + recHeaderLen
		if body+int64(length) > int64(len(b)) {
			if last {
				return n, off, nil // short payload: torn tail
			}
			return 0, 0, fmt.Errorf("%w: %s: short record at offset %d", ErrCorrupt, filepath.Base(path), off)
		}
		if crc32.ChecksumIEEE(b[body:body+int64(length)]) != crc {
			if last {
				return n, off, nil // checksum mismatch: torn tail
			}
			return 0, 0, fmt.Errorf("%w: %s: checksum mismatch at offset %d", ErrCorrupt, filepath.Base(path), off)
		}
		off = body + int64(length)
		n++
	}
	if off < int64(len(b)) {
		if last {
			return n, off, nil // trailing partial header: torn tail
		}
		return 0, 0, fmt.Errorf("%w: %s: trailing bytes at offset %d", ErrCorrupt, filepath.Base(path), off)
	}
	return n, off, nil
}

// Append writes one record and applies the sync policy. The record is
// durable (per the policy) when Append returns — callers ack the
// corresponding protocol message only after that.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	// A last segment whose header was torn scans to size 0; lazily
	// rewrite the header before the first append lands in it.
	if w.segSize == 0 {
		if _, err := w.f.Write([]byte(segMagic)); err != nil {
			return fmt.Errorf("wal: rewriting segment header: %w", err)
		}
		w.segSize = int64(len(segMagic))
	}
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: appending record header: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	w.segSize += recHeaderLen + int64(len(payload))
	w.records++
	w.sinceSync++

	switch w.opt.Policy {
	case SyncAlways:
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		w.sinceSync = 0
	case SyncBatch:
		if w.sinceSync >= w.opt.BatchSize {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("wal: fsync: %w", err)
			}
			w.sinceSync = 0
		}
	}

	if w.segSize >= w.opt.SegmentSize {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync before rotation: %w", err)
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("wal: closing rotated segment: %w", err)
		}
		if err := w.newSegment(w.segIndex + 1); err != nil {
			return err
		}
		w.sinceSync = 0
	}
	return nil
}

// Replay reads every intact record oldest-first and passes it to fn;
// a non-nil fn error stops the replay and is returned. Replay reads
// from disk with fresh handles, so it sees exactly what a restarted
// process would.
func (w *WAL) Replay(fn func(rec []byte) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	// Flush buffered appends so the read-back below sees them.
	if w.f != nil && w.opt.Policy != SyncNever {
		w.f.Sync()
	}
	segs, err := w.segments()
	if err != nil {
		return err
	}
	for i, idx := range segs {
		last := i == len(segs)-1
		b, err := os.ReadFile(w.segPath(idx))
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		_, end, err := scanSegment(w.segPath(idx), last)
		if err != nil {
			return err
		}
		off := int64(len(segMagic))
		if end < off {
			continue // empty torn segment
		}
		for off < end {
			length := int64(binary.BigEndian.Uint32(b[off:]))
			body := off + recHeaderLen
			if err := fn(b[body : body+length : body+length]); err != nil {
				return err
			}
			off = body + length
		}
	}
	return nil
}

// Sync forces buffered appends to stable storage regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.sinceSync = 0
	return nil
}

// Close syncs and releases the journal. Further operations return
// ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: fsync on close: %w", err)
	}
	return w.f.Close()
}

// Truncated reports whether Open dropped a torn final record.
func (w *WAL) Truncated() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.truncated
}

// Records reports intact records currently in the journal.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Segments reports how many segment files exist.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := w.segments()
	if err != nil {
		return 0
	}
	return len(segs)
}

// Dir returns the journal directory.
func (w *WAL) Dir() string { return w.dir }

// ParsePolicy maps a -fsync flag value onto Options fields:
// "always", "none", or "batch:<n>".
func ParsePolicy(s string) (SyncPolicy, int, error) {
	switch {
	case s == "always" || s == "":
		return SyncAlways, 0, nil
	case s == "none":
		return SyncNever, 0, nil
	default:
		var n int
		if _, err := fmt.Sscanf(s, "batch:%d", &n); err == nil && n > 0 {
			return SyncBatch, n, nil
		}
		return 0, 0, fmt.Errorf("wal: bad fsync policy %q (want always, none, or batch:<n>)", s)
	}
}
