// Package wal is the durable write-ahead journal under the protocol
// engines' crash recovery. The TPNR dispute story only works if NRO/NRR
// evidence survives until an Arbitrator can see it (§4.4); evidence
// that lives in an in-process map dies with the process, silently
// unbinding both parties. Every protocol transition is therefore
// appended here — length-prefixed, CRC-checksummed, fsynced per the
// configured policy — BEFORE the corresponding message is acked, and
// replayed on startup to rebuild the party's archive and session state.
//
// On-disk layout: dir/wal-%08d.seg, each segment an 8-byte magic header
// followed by records of the form
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// Appends go to the highest-numbered segment and roll to a new one past
// SegmentSize. A crash mid-append leaves a torn record at the tail of
// the last segment; Open detects it (short read or CRC mismatch) and
// truncates the file back to the last intact record — a torn tail means
// the corresponding message was never acked, so dropping it is exactly
// the §4.3 semantics (the peer escalates to Resolve). Corruption
// anywhere BEFORE the tail is not survivable and surfaces as
// ErrCorrupt: silently skipping interior records could un-bind a party
// that was already acked.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/faultpoint"
)

// fpAppendENOSPC injects a disk-full/EIO failure at the head of Append
// — the chaos harness uses it to prove degraded mode: a poisoned
// journal refuses new evidence but the provider keeps serving reads.
var fpAppendENOSPC = faultpoint.Register("wal.append.enospc")

// Errors.
var (
	// ErrCorrupt reports a damaged record before the journal tail —
	// unlike a torn tail, interior corruption cannot be safely dropped.
	ErrCorrupt = errors.New("wal: corrupt record before journal tail")
	// ErrClosed is returned from operations on a closed journal.
	ErrClosed = errors.New("wal: journal closed")
	// ErrTooLarge rejects records beyond MaxRecordSize.
	ErrTooLarge = errors.New("wal: record exceeds maximum size")
)

const (
	segMagic = "TPNRWAL1" // 8 bytes at the head of every segment
	segFmt   = "wal-%08d.seg"

	// MaxRecordSize bounds one journal record (evidence plus framing;
	// bulk blob data never enters the journal).
	MaxRecordSize = 16 << 20

	// DefaultSegmentSize is the rotation threshold when Options leaves
	// SegmentSize zero.
	DefaultSegmentSize = 4 << 20

	recHeaderLen = 8 // u32 length + u32 crc
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

// Policies, strongest first. SyncAlways is the default: the journal
// exists to survive crashes, so opting OUT of durability is the
// explicit choice.
const (
	// SyncAlways fsyncs after every append — no acked transition can be
	// lost to a crash.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs every Options.BatchSize appends (and on rotation
	// and Close). A crash can lose up to BatchSize-1 acked records.
	SyncBatch
	// SyncNever leaves flushing to the OS. Tests and benchmarks only.
	SyncNever
	// SyncGroup gives the durability of SyncAlways at a fraction of the
	// fsync count: Append returns only once its record is on stable
	// storage, but concurrent appenders coalesce under a single fsync.
	// The first appender to need a flush becomes the leader and fsyncs
	// on behalf of every record written before the flush; followers
	// just wait for the leader's fsync to cover them. N goroutines
	// journaling concurrently pay ~1 fsync instead of N, and the
	// "acked ⇒ synced" guarantee is unchanged.
	SyncGroup
)

// String names the policy for flags and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNever:
		return "none"
	case SyncGroup:
		return "group"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options tune a journal. The zero value is a safe production default:
// fsync on every append, 4 MiB segments.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (0 means
	// DefaultSegmentSize).
	SegmentSize int64
	// Policy selects the fsync schedule.
	Policy SyncPolicy
	// BatchSize is the append count between fsyncs under SyncBatch
	// (0 means 16). Under SyncGroup it is the max-batch bound: at most
	// BatchSize records may be awaiting one leader fsync (0 means
	// unbounded); an appender past the bound waits for the in-flight
	// flush before writing, trading a little latency for a cap on
	// commit-group size. Other policies ignore it.
	BatchSize int
}

// WAL is an append-only crash-safe record journal. Safe for concurrent
// use.
type WAL struct {
	mu  sync.Mutex
	dir string
	opt Options

	f        *os.File // current (highest) segment, positioned at its end
	segIndex int      // index of the current segment
	segSize  int64    // bytes written to the current segment

	records   int // records appended + replayed-intact at Open
	sinceSync int
	truncated bool
	closed    bool
	syncs     uint64 // fsync syscalls issued (observability)

	// Checkpoint/compaction state. lsn numbers records since genesis —
	// unlike records, it survives compaction, so a snapshot can say
	// exactly which prefix of history it covers. tailRecords counts
	// records the current snapshot does NOT cover; segBytes mirrors the
	// size of each live segment for the process gauges.
	lsn         uint64
	tailRecords int
	ckpt        *Checkpoint
	segBytes    map[int]int64

	// Group-commit state (SyncGroup only), guarded by mu. Appends are
	// numbered; the leader fsyncs with mu RELEASED so followers keep
	// appending into the commit window, then advances syncedSeq to
	// everything written before the flush and broadcasts on commitCond.
	commitCond *sync.Cond // lazily initialized, condition variable on mu
	appendSeq  uint64     // records written to the OS
	syncedSeq  uint64     // records known durable
	flushing   bool       // a leader fsync is in flight
	syncErr    error      // sticky: a failed group fsync poisons the journal

	// ioErr is sticky across ALL policies: once a record write or fsync
	// fails (ENOSPC, EIO), no further appends are accepted — an append
	// the journal cannot promise durable must never be acked. Reads
	// (Replay) still work; Healthy surfaces the state so the provider
	// can degrade instead of dying.
	ioErr error
}

// cond returns the group-commit condition variable, creating it on
// first use (keeps the zero-value-ish construction in Open simple).
func (w *WAL) cond() *sync.Cond {
	if w.commitCond == nil {
		w.commitCond = sync.NewCond(&w.mu)
	}
	return w.commitCond
}

// Open creates dir if needed, scans existing segments, truncates a torn
// final record, and positions the journal for appending.
func Open(dir string, opt Options) (*WAL, error) {
	if opt.SegmentSize <= 0 {
		opt.SegmentSize = DefaultSegmentSize
	}
	// BatchSize 0 means "unbounded group" under SyncGroup but "default
	// batch of 16" under SyncBatch; normalize only the latter.
	if opt.Policy == SyncBatch && opt.BatchSize <= 0 {
		opt.BatchSize = 16
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	w := &WAL{dir: dir, opt: opt, segBytes: make(map[int]int64)}
	// A tmp file here is a checkpoint that never got renamed into place
	// — the snapshot it staged simply did not happen.
	os.Remove(filepath.Join(dir, ckptTmp))

	segs, err := w.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.newSegment(1); err != nil {
			return nil, err
		}
		trackInstance(w)
		return w, nil
	}
	// Existing segments mean this Open is a recovery (a restart over a
	// prior journal), which operators want to see distinctly from a
	// fresh start.
	walRecoveries.Inc()
	w.loadCheckpoint(segs)
	if w.ckpt != nil {
		w.lsn = w.ckpt.LSN
		// Finish a truncation the crash interrupted: segments below the
		// snapshot boundary are fully covered by the durable snapshot.
		if err := w.truncateCoveredLocked(w.ckpt.TailSeg); err != nil {
			return nil, err
		}
		if segs, err = w.segments(); err != nil {
			return nil, err
		}
	} else if segs[0] > 1 {
		// History was compacted away but no snapshot covers it — replay
		// would silently miss acked records.
		return nil, fmt.Errorf("%w: journal starts at segment %d with no usable checkpoint", ErrCorrupt, segs[0])
	}
	for i, idx := range segs {
		last := i == len(segs)-1
		n, end, err := scanSegment(w.segPath(idx), last)
		if err != nil {
			return nil, err
		}
		w.records += n
		w.segBytes[idx] = end
		if last {
			fi, err := os.Stat(w.segPath(idx))
			if err != nil {
				return nil, fmt.Errorf("wal: stat segment: %w", err)
			}
			if end < fi.Size() {
				if err := os.Truncate(w.segPath(idx), end); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
				}
				w.truncated = true
				walTornTails.Inc()
			}
			f, err := os.OpenFile(w.segPath(idx), os.O_RDWR, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: opening segment: %w", err)
			}
			if _, err := f.Seek(end, io.SeekStart); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: seeking segment end: %w", err)
			}
			w.f, w.segIndex, w.segSize = f, idx, end
		}
	}
	// After truncation every surviving record is snapshot tail; the LSN
	// of the last record is the snapshot LSN plus the tail length.
	w.tailRecords = w.records
	w.lsn += uint64(w.records)
	walRecovered.Add(int64(w.records))
	trackInstance(w)
	return w, nil
}

// segments lists existing segment indices in ascending order.
func (w *WAL) segments() ([]int, error) {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", w.dir, err)
	}
	var out []int
	for _, e := range ents {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), segFmt, &idx); err == nil {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

func (w *WAL) segPath(idx int) string {
	return filepath.Join(w.dir, fmt.Sprintf(segFmt, idx))
}

// newSegment creates segment idx with its header and makes it current.
func (w *WAL) newSegment(idx int) error {
	f, err := os.OpenFile(w.segPath(idx), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment header: %w", err)
	}
	// Persist the directory entry so the segment itself survives a
	// crash right after rotation.
	if d, err := os.Open(w.dir); err == nil {
		d.Sync()
		d.Close()
	}
	w.f, w.segIndex, w.segSize = f, idx, int64(len(segMagic))
	w.segBytes[idx] = w.segSize
	return nil
}

// scanSegment validates one segment, returning its intact record count
// and the byte offset just past the last intact record. In the last
// segment a damaged tail is reported via end < file size; anywhere else
// it is ErrCorrupt. A last segment whose header itself is torn scans as
// zero records ending at offset 0, so Open truncates it to empty and
// rewrites nothing (the next append recreates the header path via the
// existing file — handled by treating end 0 as "rewrite header").
func scanSegment(path string, last bool) (n int, end int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: reading segment: %w", err)
	}
	if len(b) < len(segMagic) || string(b[:len(segMagic)]) != segMagic {
		if last && len(b) < len(segMagic) {
			return 0, 0, nil // torn during creation; truncated + rebuilt by Open
		}
		return 0, 0, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, filepath.Base(path))
	}
	off := int64(len(segMagic))
	for int64(len(b))-off >= recHeaderLen {
		length := binary.BigEndian.Uint32(b[off:])
		crc := binary.BigEndian.Uint32(b[off+4:])
		if length > MaxRecordSize {
			if last {
				return n, off, nil // garbage length: torn tail
			}
			return 0, 0, fmt.Errorf("%w: %s: record length %d at offset %d", ErrCorrupt, filepath.Base(path), length, off)
		}
		body := off + recHeaderLen
		if body+int64(length) > int64(len(b)) {
			if last {
				return n, off, nil // short payload: torn tail
			}
			return 0, 0, fmt.Errorf("%w: %s: short record at offset %d", ErrCorrupt, filepath.Base(path), off)
		}
		if crc32.ChecksumIEEE(b[body:body+int64(length)]) != crc {
			if last {
				return n, off, nil // checksum mismatch: torn tail
			}
			return 0, 0, fmt.Errorf("%w: %s: checksum mismatch at offset %d", ErrCorrupt, filepath.Base(path), off)
		}
		off = body + int64(length)
		n++
	}
	if off < int64(len(b)) {
		if last {
			return n, off, nil // trailing partial header: torn tail
		}
		return 0, 0, fmt.Errorf("%w: %s: trailing bytes at offset %d", ErrCorrupt, filepath.Base(path), off)
	}
	return n, off, nil
}

// recBufPool recycles record-framing buffers: header + payload are
// assembled into one pooled buffer so each record costs a single
// write(2) and zero per-append allocations.
var recBufPool = sync.Pool{New: func() any { return new([]byte) }}

// Append writes one record and applies the sync policy. The record is
// durable (per the policy) when Append returns — callers ack the
// corresponding protocol message only after that. Under SyncGroup,
// concurrent Append calls coalesce under a shared leader fsync; the
// durability guarantee on return is identical to SyncAlways.
func (w *WAL) Append(payload []byte) error {
	_, err := w.AppendLSN(payload)
	return err
}

// AppendLSN is Append returning the genesis-stable LSN assigned to the
// record. The assignment happens under the journal lock, so concurrent
// appenders each learn exactly which position their record occupies —
// the handle a replication layer needs to wait for a quorum of
// followers to durably ack THIS record (calling LSN() after Append
// would race with other appenders).
func (w *WAL) AppendLSN(payload []byte) (uint64, error) {
	if err := faultpoint.HitErr(fpAppendENOSPC); err != nil {
		err = fmt.Errorf("wal: appending record: %w", err)
		w.mu.Lock()
		w.setErrLocked(err)
		w.mu.Unlock()
		return 0, err
	}
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	bp := recBufPool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:recHeaderLen], crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)
	defer func() { *bp = buf[:0]; recBufPool.Put(bp) }()

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.ioErr != nil {
		return 0, w.ioErr
	}
	if w.opt.Policy == SyncGroup {
		if w.syncErr != nil {
			return 0, w.syncErr
		}
		// Max-batch backpressure: while a flush is in flight and the
		// pending group is full, hold the record back so one fsync never
		// covers more than BatchSize records.
		for w.opt.BatchSize > 0 && w.flushing &&
			w.appendSeq-w.syncedSeq >= uint64(w.opt.BatchSize) {
			w.cond().Wait()
			if w.closed {
				return 0, ErrClosed
			}
			if w.syncErr != nil {
				return 0, w.syncErr
			}
		}
	}
	// A last segment whose header was torn scans to size 0; lazily
	// rewrite the header before the first append lands in it.
	if w.segSize == 0 {
		if _, err := w.f.Write([]byte(segMagic)); err != nil {
			return 0, fmt.Errorf("wal: rewriting segment header: %w", err)
		}
		w.segSize = int64(len(segMagic))
	}
	if _, err := w.f.Write(buf); err != nil {
		err = fmt.Errorf("wal: appending record: %w", err)
		w.setErrLocked(err)
		return 0, err
	}
	w.segSize += int64(len(buf))
	w.segBytes[w.segIndex] = w.segSize
	w.records++
	w.lsn++
	lsn := w.lsn
	w.tailRecords++
	w.sinceSync++
	w.appendSeq++
	walAppends.Inc()

	switch w.opt.Policy {
	case SyncAlways:
		if err := w.fsyncLocked(); err != nil {
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
	case SyncBatch:
		if w.sinceSync >= w.opt.BatchSize {
			if err := w.fsyncLocked(); err != nil {
				return 0, fmt.Errorf("wal: fsync: %w", err)
			}
		}
	case SyncGroup:
		if err := w.groupCommit(w.appendSeq); err != nil {
			return 0, err
		}
	}

	// Rotation is skipped while a group leader's fsync is in flight (the
	// leader holds the file outside the lock); the segment overshoots by
	// at most a few records and the next append rotates it.
	if w.segSize >= w.opt.SegmentSize && !w.flushing {
		if err := w.fsyncLocked(); err != nil {
			return 0, fmt.Errorf("wal: fsync before rotation: %w", err)
		}
		if err := w.f.Close(); err != nil {
			return 0, fmt.Errorf("wal: closing rotated segment: %w", err)
		}
		if err := w.newSegment(w.segIndex + 1); err != nil {
			return 0, err
		}
		walRotations.Inc()
	}
	return lsn, nil
}

// fsyncLocked syncs the current segment with the lock held and marks
// everything written so far durable. Callers hold w.mu.
func (w *WAL) fsyncLocked() error {
	if err := w.f.Sync(); err != nil {
		walSyncErrors.Inc()
		w.setErrLocked(fmt.Errorf("wal: fsync: %w", err))
		return err
	}
	w.syncs++
	walFsyncs.Inc()
	w.sinceSync = 0
	if w.appendSeq > w.syncedSeq {
		w.syncedSeq = w.appendSeq
		if w.commitCond != nil {
			w.commitCond.Broadcast()
		}
	}
	return nil
}

// groupCommit blocks until record id is durable, electing this
// goroutine as the fsync leader when no flush is in flight. Called
// with w.mu held; the leader releases the lock for the fsync itself so
// followers keep appending into the next commit window.
func (w *WAL) groupCommit(id uint64) error {
	for w.syncedSeq < id {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.flushing {
			// The in-flight fsync may have started before this record
			// was written; wait for the leader's broadcast and re-check.
			w.cond().Wait()
			continue
		}
		w.flushing = true
		target := w.appendSeq
		prevSynced := w.syncedSeq
		f := w.f
		w.mu.Unlock()
		err := f.Sync()
		w.mu.Lock()
		w.flushing = false
		w.syncs++
		walFsyncs.Inc()
		if err != nil {
			// A record that may not be durable must never be reported
			// synced; poison the journal rather than guess.
			walSyncErrors.Inc()
			w.syncErr = fmt.Errorf("wal: group fsync: %w", err)
			walDegraded.Set(1)
		} else if target > w.syncedSeq {
			// The commit-group size is the fsync amortization SyncGroup
			// buys; its distribution is the policy's health signal.
			walGroupBatch.Observe(int64(target - prevSynced))
			w.syncedSeq = target
			w.sinceSync = 0
		}
		w.cond().Broadcast()
	}
	return nil
}

// Replay reads every intact record oldest-first and passes it to fn;
// a non-nil fn error stops the replay and is returned. Replay reads
// from disk with fresh handles, so it sees exactly what a restarted
// process would.
func (w *WAL) Replay(fn func(rec []byte) error) error {
	return w.replayFrom(0, fn)
}

// replayFrom is Replay restricted to segments >= minSeg — the
// snapshot-tail read path (ReplayTail) shares everything but the lower
// bound with a full replay.
func (w *WAL) replayFrom(minSeg int, fn func(rec []byte) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.replayLocked(minSeg, fn)
}

// replayLocked is replayFrom with w.mu already held — the LSN-ranged
// read path must pin the checkpoint boundary and walk the segments
// under ONE lock acquisition, or a concurrent Checkpoint could move
// the boundary between the two and shift every counted LSN.
func (w *WAL) replayLocked(minSeg int, fn func(rec []byte) error) error {
	if w.closed {
		return ErrClosed
	}
	// Flush buffered appends so the read-back below sees them.
	if w.f != nil && w.opt.Policy != SyncNever {
		w.waitFlush()
		w.f.Sync()
	}
	segs, err := w.segments()
	if err != nil {
		return err
	}
	for i, idx := range segs {
		if idx < minSeg {
			continue
		}
		last := i == len(segs)-1
		b, err := os.ReadFile(w.segPath(idx))
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		_, end, err := scanSegment(w.segPath(idx), last)
		if err != nil {
			return err
		}
		off := int64(len(segMagic))
		if end < off {
			continue // empty torn segment
		}
		for off < end {
			length := int64(binary.BigEndian.Uint32(b[off:]))
			body := off + recHeaderLen
			if err := fn(b[body : body+length : body+length]); err != nil {
				return err
			}
			off = body + length
		}
	}
	return nil
}

// waitFlush blocks until no group leader fsync is in flight. Called
// with w.mu held; the file must not be synced or closed under the
// leader's feet.
func (w *WAL) waitFlush() {
	for w.flushing {
		w.cond().Wait()
	}
}

// Sync forces buffered appends to stable storage regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	w.waitFlush()
	if err := w.fsyncLocked(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Close syncs and releases the journal. Further operations return
// ErrClosed.
func (w *WAL) Close() error {
	// Before w.mu: the gauge callbacks lock instMu then w.mu, so the
	// reverse order here would deadlock a Close racing a scrape.
	untrackInstance(w)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.waitFlush()
	w.closed = true
	if w.commitCond != nil {
		w.commitCond.Broadcast() // release any backpressure waiters
	}
	if err := w.fsyncLocked(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: fsync on close: %w", err)
	}
	return w.f.Close()
}

// setErrLocked makes err the journal's sticky I/O error (first failure
// wins) and raises the process degraded gauge. Callers hold w.mu.
func (w *WAL) setErrLocked(err error) {
	if w.ioErr == nil {
		w.ioErr = err
		walDegraded.Set(1)
	}
}

// Healthy returns nil while the journal can still accept appends, or
// the sticky error (first write/fsync failure) that poisoned it. A
// poisoned journal still replays — degraded mode serves evidence reads
// while refusing new sessions.
func (w *WAL) Healthy() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ioErr != nil {
		return w.ioErr
	}
	return w.syncErr
}

// Truncated reports whether Open dropped a torn final record.
func (w *WAL) Truncated() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.truncated
}

// Records reports intact records currently in the journal.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Segments reports how many segment files exist.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := w.segments()
	if err != nil {
		return 0
	}
	return len(segs)
}

// Syncs reports fsync syscalls issued so far. Under SyncGroup this is
// the number of commit groups, not appends — the coalescing the policy
// exists for, asserted by tests and surfaced by the benchmark report.
func (w *WAL) Syncs() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Dir returns the journal directory.
func (w *WAL) Dir() string { return w.dir }

// ParsePolicy maps a -fsync flag value onto Options fields: "always",
// "none", "batch[:<n>]" (bare "batch" means n=16), or
// "group[:<max-batch>]" (bare "group" means an unbounded commit group).
func ParsePolicy(s string) (SyncPolicy, int, error) {
	switch {
	case s == "always" || s == "":
		return SyncAlways, 0, nil
	case s == "none":
		return SyncNever, 0, nil
	case s == "batch":
		return SyncBatch, 16, nil
	case s == "group":
		return SyncGroup, 0, nil
	default:
		var n int
		if _, err := fmt.Sscanf(s, "batch:%d", &n); err == nil {
			if n <= 0 {
				return 0, 0, fmt.Errorf("wal: fsync policy %q: batch size must be at least 1 (use \"none\" to opt out of fsync entirely)", s)
			}
			return SyncBatch, n, nil
		}
		if _, err := fmt.Sscanf(s, "group:%d", &n); err == nil {
			if n <= 0 {
				return 0, 0, fmt.Errorf("wal: fsync policy %q: group max-batch must be at least 1 (use bare \"group\" for an unbounded group)", s)
			}
			return SyncGroup, n, nil
		}
		return 0, 0, fmt.Errorf("wal: bad fsync policy %q (want always, none, batch[:<n>], or group[:<max-batch>])", s)
	}
}
