package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func collect(t *testing.T, w *WAL) [][]byte {
	t.Helper()
	var out [][]byte
	if err := w.Replay(func(rec []byte) error {
		out = append(out, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	got := collect(t, w)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: same records, no truncation.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if w2.Truncated() {
		t.Fatal("clean journal reported Truncated")
	}
	if n := w2.Records(); n != len(want) {
		t.Fatalf("Records() = %d, want %d", n, len(want))
	}
	got = collect(t, w2)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("after reopen record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentSize: 256, Policy: SyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := bytes.Repeat([]byte("x"), 100)
	const n = 20
	for i := 0; i < n; i++ {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if segs := w.Segments(); segs < 2 {
		t.Fatalf("Segments() = %d, want rotation past 1", segs)
	}
	if got := collect(t, w); len(got) != n {
		t.Fatalf("replayed %d, want %d", len(got), n)
	}
	w.Close()

	// Records must replay in order across segments after reopen.
	w2, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if got := collect(t, w2); len(got) != n {
		t.Fatalf("after reopen replayed %d, want %d", len(got), n)
	}
}

// tornTail appends garbage or a truncated record to the last segment,
// simulating a crash mid-write.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, ents[len(ents)-1].Name())
}

func TestTornTailTruncated(t *testing.T) {
	cases := []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"partial-header", func(t *testing.T, path string) {
			f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			f.Write([]byte{0, 0, 0})
			f.Close()
		}},
		{"short-payload", func(t *testing.T, path string) {
			var hdr [8]byte
			binary.BigEndian.PutUint32(hdr[:4], 1000)
			binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE([]byte("whatever")))
			f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			f.Write(hdr[:])
			f.Write([]byte("only a little"))
			f.Close()
		}},
		{"bad-crc", func(t *testing.T, path string) {
			payload := []byte("torn payload")
			var hdr [8]byte
			binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
			binary.BigEndian.PutUint32(hdr[4:], 0xdeadbeef)
			f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			f.Write(hdr[:])
			f.Write(payload)
			f.Close()
		}},
		{"garbage-length", func(t *testing.T, path string) {
			var hdr [8]byte
			binary.BigEndian.PutUint32(hdr[:4], 0xffffffff)
			f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			f.Write(hdr[:])
			f.Close()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			for i := 0; i < 5; i++ {
				if err := w.Append([]byte(fmt.Sprintf("intact-%d", i))); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			w.Close()
			tc.tear(t, lastSegment(t, dir))

			w2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open after tear: %v", err)
			}
			defer w2.Close()
			if !w2.Truncated() {
				t.Fatal("torn tail not reported via Truncated()")
			}
			got := collect(t, w2)
			if len(got) != 5 {
				t.Fatalf("replayed %d records after tear, want 5", len(got))
			}
			// The journal must still accept appends after truncation.
			if err := w2.Append([]byte("post-recovery")); err != nil {
				t.Fatalf("Append after truncation: %v", err)
			}
			if got := collect(t, w2); len(got) != 6 {
				t.Fatalf("replayed %d after post-recovery append, want 6", len(got))
			}
		})
	}
}

func TestInteriorCorruptionIsError(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentSize: 128, Policy: SyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(bytes.Repeat([]byte{byte('a' + i)}, 64)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if w.Segments() < 2 {
		t.Fatal("test needs multiple segments")
	}
	w.Close()

	// Flip a payload byte in the FIRST segment — not a torn tail.
	first := filepath.Join(dir, fmt.Sprintf(segFmt, 1))
	b, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b[len(segMagic)+recHeaderLen] ^= 0x01
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on interior corruption = %v, want ErrCorrupt", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, opt := range []Options{
		{Policy: SyncAlways},
		{Policy: SyncBatch, BatchSize: 4},
		{Policy: SyncNever},
		{Policy: SyncGroup},
		{Policy: SyncGroup, BatchSize: 4},
	} {
		t.Run(opt.Policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, opt)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			for i := 0; i < 10; i++ {
				if err := w.Append([]byte{byte(i)}); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := w.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			w2, err := Open(dir, opt)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer w2.Close()
			if n := w2.Records(); n != 10 {
				t.Fatalf("Records() = %d, want 10", n)
			}
		})
	}
}

func TestClosedOperations(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	w.Close()
	if err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := w.Replay(func([]byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay after Close = %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close = %v, want nil", err)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in    string
		p     SyncPolicy
		batch int
		ok    bool
	}{
		{"always", SyncAlways, 0, true},
		{"", SyncAlways, 0, true},
		{"none", SyncNever, 0, true},
		{"batch", SyncBatch, 16, true},
		{"batch:8", SyncBatch, 8, true},
		{"batch:1", SyncBatch, 1, true},
		{"batch:0", 0, 0, false},
		{"batch:-3", 0, 0, false},
		{"group", SyncGroup, 0, true},
		{"group:32", SyncGroup, 32, true},
		{"group:0", 0, 0, false},
		{"group:-1", 0, 0, false},
		{"sometimes", 0, 0, false},
		{"batch:", 0, 0, false},
	}
	for _, tc := range cases {
		p, batch, err := ParsePolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParsePolicy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && (p != tc.p || batch != tc.batch) {
			t.Fatalf("ParsePolicy(%q) = (%v, %d), want (%v, %d)", tc.in, p, batch, tc.p, tc.batch)
		}
	}
}

func TestReplayStopsOnError(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	for i := 0; i < 5; i++ {
		w.Append([]byte{byte(i)})
	}
	sentinel := errors.New("stop")
	n := 0
	err = w.Replay(func([]byte) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Replay = %v, want sentinel", err)
	}
	if n != 3 {
		t.Fatalf("fn called %d times, want 3", n)
	}
}
