package wal

import (
	"errors"
	"testing"

	"repro/internal/faultpoint"
)

// TestAppendENOSPCPoisonsJournal checks the degraded-mode contract: a
// simulated disk-full failure makes the sticky error surface on
// Healthy, every later Append refuses fast, and Replay still reads the
// records that made it to disk.
func TestAppendENOSPCPoisonsJournal(t *testing.T) {
	defer faultpoint.Reset()
	w, err := Open(t.TempDir(), Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if err := w.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := w.Healthy(); err != nil {
		t.Fatalf("Healthy()=%v before fault, want nil", err)
	}

	enospc := errors.New("no space left on device")
	faultpoint.ArmErr("wal.append.enospc", func() error { return enospc })
	if err := w.Append([]byte("lost")); !errors.Is(err, enospc) {
		t.Fatalf("Append under fault = %v, want wrapped ENOSPC", err)
	}
	faultpoint.Reset()

	// Sticky: the fault is gone but the journal stays poisoned.
	if err := w.Healthy(); !errors.Is(err, enospc) {
		t.Fatalf("Healthy()=%v, want sticky ENOSPC", err)
	}
	if err := w.Append([]byte("after")); !errors.Is(err, enospc) {
		t.Fatalf("Append after fault = %v, want sticky refusal", err)
	}

	// Reads survive: degraded mode keeps serving evidence.
	var got []string
	if err := w.Replay(func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	}); err != nil {
		t.Fatalf("Replay on poisoned journal: %v", err)
	}
	if len(got) != 1 || got[0] != "before" {
		t.Fatalf("Replay=%v, want [before]", got)
	}
}

// TestHealthySurfacesGroupSyncErr checks Healthy reports the
// group-commit sticky syncErr path too (it predates ioErr).
func TestHealthySurfacesGroupSyncErr(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Policy: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Healthy(); err != nil {
		t.Fatalf("Healthy()=%v on fresh group journal, want nil", err)
	}
	w.mu.Lock()
	w.syncErr = errors.New("group fsync failed")
	w.mu.Unlock()
	if err := w.Healthy(); err == nil {
		t.Fatal("Healthy()=nil, want group syncErr surfaced")
	}
}
