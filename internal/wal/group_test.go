package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestGroupCommitConcurrent drives many concurrent appenders through a
// SyncGroup journal and checks the two properties the policy promises:
// every acked record is present after reopen, and the fsync count is
// well below one-per-append (the whole point of coalescing).
func TestGroupCommitConcurrent(t *testing.T) {
	const (
		appenders = 16
		perG      = 25
	)
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncGroup})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rec := []byte(fmt.Sprintf("g%02d-rec%03d", g, i))
				if err := w.Append(rec); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := appenders * perG
	if n := w.Records(); n != total {
		t.Fatalf("Records() = %d, want %d", n, total)
	}
	syncs := w.Syncs()
	if syncs == 0 {
		t.Fatal("Syncs() = 0: group commit never fsynced")
	}
	if syncs >= uint64(total) {
		t.Fatalf("Syncs() = %d for %d appends: no coalescing happened", syncs, total)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Acked ⇒ synced: a reopen (what a restarted process sees) must
	// replay every record that Append acked.
	w2, err := Open(dir, Options{Policy: SyncGroup})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	seen := make(map[string]bool, total)
	if err := w2.Replay(func(rec []byte) error {
		seen[string(rec)] = true
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(seen) != total {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), total)
	}
}

// TestGroupCommitMaxBatch bounds the commit-group size: with BatchSize
// set, appenders past the bound wait out the in-flight flush, so the
// journal still accepts every record and stays consistent.
func TestGroupCommitMaxBatch(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncGroup, BatchSize: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var wg sync.WaitGroup
	const total = 200
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < total/8; i++ {
				if err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := w.Records(); n != total {
		t.Fatalf("Records() = %d, want %d", n, total)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestGroupCommitSingleAppender checks the degenerate case: with no
// concurrency every append elects itself leader, giving SyncAlways
// semantics (one fsync per append, every record durable in order).
func TestGroupCommitSingleAppender(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncGroup})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("solo-%02d", i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if s := w.Syncs(); s < 20 {
		t.Fatalf("Syncs() = %d, want one per append without concurrency", s)
	}
	got := collect(t, w)
	if len(got) != len(want) {
		t.Fatalf("replayed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	w.Close()
}

// TestGroupCommitRotation exercises segment rotation under concurrent
// group-committed appends: rotation defers while a leader fsync is in
// flight, but must still happen and must not lose records.
func TestGroupCommitRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncGroup, SegmentSize: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var wg sync.WaitGroup
	const total = 160
	rec := bytes.Repeat([]byte("r"), 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/8; i++ {
				if err := w.Append(rec); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if segs := w.Segments(); segs < 2 {
		t.Fatalf("Segments() = %d, want rotation past 1", segs)
	}
	if got := collect(t, w); len(got) != total {
		t.Fatalf("replayed %d, want %d", len(got), total)
	}
	w.Close()

	w2, err := Open(dir, Options{Policy: SyncGroup, SegmentSize: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if n := w2.Records(); n != total {
		t.Fatalf("after reopen Records() = %d, want %d", n, total)
	}
}
