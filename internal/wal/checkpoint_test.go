package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultpoint"
)

// fillSegments appends n records sized so the journal rotates through a
// few segments, returning the payloads in order.
func fillSegments(t *testing.T, w *WAL, n int) [][]byte {
	t.Helper()
	var recs [][]byte
	for i := 0; i < n; i++ {
		rec := []byte(fmt.Sprintf("record-%04d", i))
		if err := w.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func replayAll(t *testing.T, w *WAL) []string {
	t.Helper()
	var got []string
	if err := w.Replay(func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func replayTail(t *testing.T, w *WAL) []string {
	t.Helper()
	var got []string
	if err := w.ReplayTail(func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	}); err != nil {
		t.Fatalf("replay tail: %v", err)
	}
	return got
}

func TestCheckpointTruncatesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, w, 50)
	if w.Segments() < 3 {
		t.Fatalf("test wants multiple segments, got %d", w.Segments())
	}
	lsn, err := w.Checkpoint([]byte("snapshot-state"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 50 {
		t.Fatalf("snapshot LSN = %d, want 50", lsn)
	}
	// Everything before the boundary is compacted: one fresh tail
	// segment remains and a full replay yields nothing.
	if got := w.Segments(); got != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1", got)
	}
	if got := replayAll(t, w); len(got) != 0 {
		t.Fatalf("replay after checkpoint returned %d records", len(got))
	}
	payload, ckLSN, ok := w.LoadCheckpoint()
	if !ok || ckLSN != 50 || string(payload) != "snapshot-state" {
		t.Fatalf("LoadCheckpoint = %q, %d, %v", payload, ckLSN, ok)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRecoverSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, w, 30)
	if _, err := w.Checkpoint([]byte("state-at-30")); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 40; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	payload, lsn, ok := w2.LoadCheckpoint()
	if !ok || lsn != 30 || string(payload) != "state-at-30" {
		t.Fatalf("LoadCheckpoint after reopen = %q, %d, %v", payload, lsn, ok)
	}
	if got := w2.TailRecords(); got != 10 {
		t.Fatalf("TailRecords = %d, want 10", got)
	}
	if got := w2.LSN(); got != 40 {
		t.Fatalf("LSN = %d, want 40", got)
	}
	tail := replayTail(t, w2)
	if len(tail) != 10 || tail[0] != "record-0030" || tail[9] != "record-0039" {
		t.Fatalf("tail replay = %v", tail)
	}
}

func TestCheckpointTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, w, 20)
	if _, err := w.Checkpoint([]byte("first")); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 40; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The second checkpoint crashes after rename but before truncation:
	// its covered segments (the first snapshot's tail) stay on disk.
	faultpoint.Arm(fpCheckpointPostRename, faultpoint.Kill(fpCheckpointPostRename))
	defer faultpoint.Reset()
	func() {
		defer func() {
			if _, ok := recover().(*faultpoint.Crash); !ok {
				t.Fatal("expected faultpoint crash")
			}
		}()
		w.Checkpoint([]byte("second"))
	}()
	faultpoint.Reset()

	// Tear the newest snapshot file: flip a payload byte.
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.snap"))
	if len(files) != 2 {
		t.Fatalf("want 2 checkpoint files, got %v", files)
	}
	newest := files[len(files)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// And tear the tail of the post-snapshot segment: a partial record.
	w2, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload, lsn, ok := w2.LoadCheckpoint()
	if !ok || string(payload) != "first" || lsn != 20 {
		t.Fatalf("fallback snapshot = %q, %d, %v (want first/20)", payload, lsn, ok)
	}
	// The discarded file must be gone so the next Open does not retry it.
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatalf("torn snapshot not removed: %v", err)
	}
	tail := replayTail(t, w2)
	if len(tail) != 20 || tail[0] != "record-0020" || tail[19] != "record-0039" {
		t.Fatalf("fallback tail replay: %d records, %v", len(tail), tail)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTornSnapshotAndTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, w, 10)
	if _, err := w.Checkpoint([]byte("good")); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Fabricate the combined wreckage a dying disk can leave: a newer
	// snapshot file whose body did not fully reach the platter (torn
	// mid-body despite the rename landing) plus a half-written record at
	// the tail of the post-snapshot segment.
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.snap"))
	if len(files) != 1 {
		t.Fatalf("want 1 checkpoint file, got %v", files)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, fmt.Sprintf(ckptFmt, 99))
	if err := os.WriteFile(torn, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Half a record header: length claims 64 bytes, nothing follows.
	if _, err := f.Write([]byte{0, 0, 0, 64, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn snapshot not discarded: %v", err)
	}
	if !w2.Truncated() {
		t.Fatal("torn tail record not truncated")
	}
	payload, lsn, ok := w2.LoadCheckpoint()
	if !ok || string(payload) != "good" || lsn != 10 {
		t.Fatalf("snapshot after double tear = %q, %d, %v", payload, lsn, ok)
	}
	tail := replayTail(t, w2)
	if len(tail) != 5 || tail[0] != "record-0010" || tail[4] != "record-0014" {
		t.Fatalf("tail after double tear = %v", tail)
	}
}

func TestCheckpointCrashPreRenameKeepsOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	recs := fillSegments(t, w, 25)
	if _, err := w.Checkpoint([]byte("one")); err != nil {
		t.Fatal(err)
	}
	for i := 25; i < 35; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = recs
	faultpoint.Arm(fpCheckpointPreRename, faultpoint.Kill(fpCheckpointPreRename))
	defer faultpoint.Reset()
	func() {
		defer func() {
			if _, ok := recover().(*faultpoint.Crash); !ok {
				t.Fatal("expected faultpoint crash")
			}
		}()
		w.Checkpoint([]byte("two"))
	}()
	faultpoint.Reset()

	w2, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// The rename never happened: the tmp file is swept, the previous
	// snapshot stands, and its full tail is still replayable.
	if _, err := os.Stat(filepath.Join(dir, ckptTmp)); !os.IsNotExist(err) {
		t.Fatalf("stale checkpoint tmp survives Open: %v", err)
	}
	payload, lsn, ok := w2.LoadCheckpoint()
	if !ok || string(payload) != "one" || lsn != 25 {
		t.Fatalf("snapshot = %q, %d, %v", payload, lsn, ok)
	}
	tail := replayTail(t, w2)
	if len(tail) != 10 || tail[0] != "record-0025" {
		t.Fatalf("tail = %v", tail)
	}
}

func TestCheckpointCrashMidTruncateCompletesAtOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, w, 50)
	if w.Segments() < 4 {
		t.Fatalf("test wants >=4 segments, got %d", w.Segments())
	}
	// Die after removing the FIRST covered segment, with more covered
	// segments still on disk.
	faultpoint.Arm(fpCompactMidTruncate, faultpoint.Kill(fpCompactMidTruncate))
	defer faultpoint.Reset()
	func() {
		defer func() {
			if _, ok := recover().(*faultpoint.Crash); !ok {
				t.Fatal("expected faultpoint crash")
			}
		}()
		w.Checkpoint([]byte("mid"))
	}()
	faultpoint.Reset()
	if n, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg")); len(n) < 2 {
		t.Fatalf("crash scenario degenerate: %d segments left", len(n))
	}

	w2, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// Open finishes the truncation: only the snapshot tail remains.
	if got := w2.Segments(); got != 1 {
		t.Fatalf("segments after recovery = %d, want 1", got)
	}
	payload, lsn, ok := w2.LoadCheckpoint()
	if !ok || string(payload) != "mid" || lsn != 50 {
		t.Fatalf("snapshot = %q, %d, %v", payload, lsn, ok)
	}
	if got := replayTail(t, w2); len(got) != 0 {
		t.Fatalf("tail after complete compaction = %v", got)
	}
}

func TestCheckpointLSNSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, w, 10)
	if _, err := w.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	fillSegments(t, w, 10)
	lsn, err := w.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 20 {
		t.Fatalf("second snapshot LSN = %d, want 20 (LSNs must not reset at compaction)", lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.LSN(); got != 20 {
		t.Fatalf("LSN after reopen = %d, want 20", got)
	}
}

func TestCheckpointRetainsOnlyTwoFiles(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for round := 0; round < 5; round++ {
		fillSegments(t, w, 10)
		if _, err := w.Checkpoint([]byte{byte(round)}); err != nil {
			t.Fatal(err)
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.snap"))
	if len(files) != 2 {
		t.Fatalf("checkpoint retention = %d files (%v), want 2", len(files), files)
	}
}

func TestOpenRejectsCompactedJournalWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, w, 30)
	if _, err := w.Checkpoint([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete every snapshot: now the journal visibly starts past
	// segment 1 with nothing covering the missing history.
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.snap"))
	for _, f := range files {
		os.Remove(f)
	}
	if _, err := Open(dir, Options{Policy: SyncNever, SegmentSize: 256}); err == nil {
		t.Fatal("Open accepted a compacted journal with no usable snapshot")
	}
}
