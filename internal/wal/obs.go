package wal

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Package-level metric handles on the process default registry,
// resolved once at init so Append/fsync pay a single atomic add. The
// WAL is package-instrumented (not per-instance) because a process
// owns at most a couple of journals and operators care about the
// aggregate fsync pressure.
var (
	walAppends    = obs.Default().Counter("wal_appends_total")
	walFsyncs     = obs.Default().Counter("wal_fsyncs_total")
	walGroupBatch = obs.Default().Histogram("wal_group_batch_records", obs.SizeBuckets)
	walRecoveries = obs.Default().Counter("wal_recoveries_total")
	walRecovered  = obs.Default().Counter("wal_recovered_records_total")
	walTornTails  = obs.Default().Counter("wal_torn_tails_total")
	walSyncErrors = obs.Default().Counter("wal_sync_errors_total")
	walRotations  = obs.Default().Counter("wal_rotations_total")
	// walDegraded is 1 while any journal in the process is poisoned by a
	// sticky I/O error (ENOSPC, failed fsync) — the signal /healthz keys
	// degraded mode off.
	walDegraded = obs.Default().Gauge("wal_degraded")

	// Checkpoint/compaction counters.
	walCheckpoints = obs.Default().Counter("wal_checkpoints_total")
	// walCkptDiscarded counts torn or corrupt snapshot files detected and
	// dropped at Open — each one is a fall-back to the previous snapshot
	// plus a longer tail replay.
	walCkptDiscarded = obs.Default().Counter("wal_checkpoint_discarded_total")
	walCompactedSegs = obs.Default().Counter("wal_compacted_segments_total")
)

// Open journals are tracked in a process-wide set so the size gauges
// below can be callback gauges summed at scrape time instead of values
// mirrored on every append.
var (
	instMu    sync.Mutex
	instances = make(map[*WAL]struct{})
)

func trackInstance(w *WAL)   { instMu.Lock(); instances[w] = struct{}{}; instMu.Unlock() }
func untrackInstance(w *WAL) { instMu.Lock(); delete(instances, w); instMu.Unlock() }

func init() {
	r := obs.Default()
	r.GaugeFunc("wal_segments", func() int64 {
		instMu.Lock()
		defer instMu.Unlock()
		var total int64
		for w := range instances {
			total += int64(w.segmentCount())
		}
		return total
	})
	r.GaugeFunc("wal_active_bytes", func() int64 {
		instMu.Lock()
		defer instMu.Unlock()
		var total int64
		for w := range instances {
			total += w.activeBytes()
		}
		return total
	})
	// wal_snapshot_age_seconds is the age of the OLDEST live snapshot
	// across the process's journals — the operator alarm that a
	// checkpoint loop has stalled. -1 means no journal has a snapshot.
	r.GaugeFunc("wal_snapshot_age_seconds", func() int64 {
		instMu.Lock()
		defer instMu.Unlock()
		age := int64(-1)
		for w := range instances {
			if taken, ok := w.checkpointTime(); ok {
				if a := int64(time.Since(taken).Seconds()); a > age {
					age = a
				}
			}
		}
		return age
	})
}
