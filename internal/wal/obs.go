package wal

import "repro/internal/obs"

// Package-level metric handles on the process default registry,
// resolved once at init so Append/fsync pay a single atomic add. The
// WAL is package-instrumented (not per-instance) because a process
// owns at most a couple of journals and operators care about the
// aggregate fsync pressure.
var (
	walAppends    = obs.Default().Counter("wal_appends_total")
	walFsyncs     = obs.Default().Counter("wal_fsyncs_total")
	walGroupBatch = obs.Default().Histogram("wal_group_batch_records", obs.SizeBuckets)
	walRecoveries = obs.Default().Counter("wal_recoveries_total")
	walRecovered  = obs.Default().Counter("wal_recovered_records_total")
	walTornTails  = obs.Default().Counter("wal_torn_tails_total")
	walSyncErrors = obs.Default().Counter("wal_sync_errors_total")
	walRotations  = obs.Default().Counter("wal_rotations_total")
	// walDegraded is 1 while any journal in the process is poisoned by a
	// sticky I/O error (ENOSPC, failed fsync) — the signal /healthz keys
	// degraded mode off.
	walDegraded = obs.Default().Gauge("wal_degraded")
)
