package wal

import (
	"errors"
	"fmt"
	"testing"
)

// TestReadBatchFromLSN covers the replication read path: batches are
// bounded, contiguous from after+1, report whether records remain, and
// an `after` below the compaction horizon surfaces ErrCompacted.
func TestReadBatchFromLSN(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	recs := fillSegments(t, w, 10)

	// Bounded batch from genesis: the first max records, more pending.
	batch, more, err := w.ReadBatchFromLSN(0, 4)
	if err != nil {
		t.Fatalf("ReadBatchFromLSN(0, 4): %v", err)
	}
	if len(batch) != 4 || !more {
		t.Fatalf("got %d records, more=%v; want 4 records, more=true", len(batch), more)
	}
	for i, rec := range batch {
		if string(rec) != string(recs[i]) {
			t.Fatalf("batch[%d] = %q, want %q", i, rec, recs[i])
		}
	}

	// Resume mid-journal with headroom: the rest, nothing pending.
	batch, more, err = w.ReadBatchFromLSN(4, 100)
	if err != nil {
		t.Fatalf("ReadBatchFromLSN(4, 100): %v", err)
	}
	if len(batch) != 6 || more {
		t.Fatalf("got %d records, more=%v; want 6 records, more=false", len(batch), more)
	}
	if string(batch[0]) != string(recs[4]) {
		t.Fatalf("batch[0] = %q, want %q (LSN contiguity from after+1)", batch[0], recs[4])
	}

	// Caught up: empty batch, no error.
	batch, more, err = w.ReadBatchFromLSN(10, 4)
	if err != nil || len(batch) != 0 || more {
		t.Fatalf("caught-up read = %d records, more=%v, err=%v; want empty", len(batch), more, err)
	}
}

func TestReadBatchFromLSNCompacted(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Policy: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fillSegments(t, w, 8)
	if _, err := w.Checkpoint([]byte("state")); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	var tail [][]byte
	for i := 0; i < 3; i++ {
		rec := []byte(fmt.Sprintf("tail-%d", i))
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, rec)
	}

	// Below the horizon: the records were compacted into the snapshot.
	if _, _, err := w.ReadBatchFromLSN(0, 100); !errors.Is(err, ErrCompacted) {
		t.Fatalf("read below compaction horizon = %v, want ErrCompacted", err)
	}
	// At the snapshot boundary: exactly the live tail.
	batch, more, err := w.ReadBatchFromLSN(8, 100)
	if err != nil {
		t.Fatalf("ReadBatchFromLSN(8, 100): %v", err)
	}
	if len(batch) != len(tail) || more {
		t.Fatalf("got %d records, more=%v; want %d, more=false", len(batch), more, len(tail))
	}
	for i := range tail {
		if string(batch[i]) != string(tail[i]) {
			t.Fatalf("tail[%d] = %q, want %q", i, batch[i], tail[i])
		}
	}
}
