// Package audit implements the continuous storage-dwell audit
// sub-protocol (ROADMAP item 2; Proofs-of-Retrievability, arXiv
// 1711.06039, and VICOS-style verify-don't-trust object auditing,
// arXiv 1502.04496). TPNR proves integrity only at transfer
// boundaries — nothing checks the data *while it sits in storage*, so
// a lazy or failing provider is indistinguishable from an honest one
// until the next download. This package closes that gap:
//
//   - At upload-binding time the provider commits to a Merkle root
//     over the object's chunks inside the signed NRR header (the Note
//     field carries RootNote), so the commitment itself is
//     non-repudiable.
//   - Over the dwell time the client or TTP issues
//     KindAuditChallenge messages carrying crypto/rand leaf indices
//     and a fresh nonce (a predictable challenge would let a lazy
//     provider precompute responses and discard the data).
//   - The provider answers with KindAuditResponse: the challenged
//     chunk BYTES, their inclusion proofs, and a signature over
//     (txn, nonce, root, chunks, proofs). The response must carry the
//     data itself, not its leaf hashes: leaf hashes plus proofs are
//     computable from a stored Merkle tree (~32 bytes per 4 KiB
//     chunk), so a hash-only response would let a provider discard
//     the object, keep the tree, and pass every audit. The verifier
//     recomputes each leaf hash from the returned chunk, which only a
//     party holding the challenged chunks can produce.
//
// Both the challenge and the response ride inside the evidence
// header's Note field (base64 of their canonical encodings), so the
// journaled evidence alone — no payload, no download — lets the
// arbitrator re-verify a response or convict a provider that never
// produced one.
package audit

import (
	"crypto/rand"
	"encoding/base64"
	"errors"
	"fmt"
	"math/big"
	"strconv"
	"strings"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/merkle"
	"repro/internal/wire"
)

// Proof bytes reuse the evidence package's pinned
// "tpnr-merkle-proof-v1" encoding, so one proof codec serves both the
// aggregated receipts and the audit responses.
func encodeProof(p *merkle.Proof) []byte          { return evidence.EncodeProof(p) }
func decodeProof(b []byte) (*merkle.Proof, error) { return evidence.DecodeProof(b) }

// ChunkSize is the audit chunking granularity: every object is split
// into ChunkSize-byte leaves for the upload-time commitment and every
// later challenge. The root note records the size used, so it can
// evolve without breaking old commitments.
const ChunkSize = 4096

// MaxChallengeIndices bounds one challenge; a verifier rejects
// anything larger before allocating.
const MaxChallengeIndices = 256

// Encoding magics. The response codec is v2: v1 carried only leaf
// hashes, which a provider can precompute and serve without holding
// the data, so v1 responses are rejected outright.
const (
	challengeMagic  = "tpnr-audit-chal-v1"
	responseMagic   = "tpnr-audit-resp-v2"
	signedRespMagic = "tpnr-audit-resp-signed-v2"
)

// Note prefixes: the header Note field distinguishes the three audit
// artifacts it can carry.
const (
	rootNotePrefix      = "tpnr-audit-root:"
	challengeNotePrefix = "tpnr-audit-chal:"
	responseNotePrefix  = "tpnr-audit-resp:"
)

// Errors.
var (
	ErrMalformed     = errors.New("audit: malformed encoding")
	ErrNoCommitment  = errors.New("audit: no root commitment in note")
	ErrNonceMismatch = errors.New("audit: response nonce does not match challenge")
	ErrRootMismatch  = errors.New("audit: response root does not match commitment")
	ErrBadProof      = errors.New("audit: inclusion proof does not verify")
	ErrBadSig        = errors.New("audit: response signature invalid")
	ErrIndexMismatch = errors.New("audit: response does not cover the challenged indices")
)

// ObjectTree chunks data at ChunkSize and builds its Merkle tree.
// Empty data is one empty leaf, matching merkle.Split.
func ObjectTree(data []byte) (*merkle.Tree, [][]byte, error) {
	chunks := merkle.Split(data, ChunkSize)
	t, err := merkle.New(chunks)
	if err != nil {
		return nil, nil, err
	}
	return t, chunks, nil
}

// LeafCount is the number of ChunkSize leaves an object of objectLen
// bytes commits to (empty objects commit to a single empty leaf).
func LeafCount(objectLen uint64) uint32 { return LeafCountFor(objectLen, ChunkSize) }

// LeafCountFor is LeafCount under an explicit chunk size (the size
// recorded in the NRR's root note), so a challenger stays correct if
// the commitment granularity ever changes.
func LeafCountFor(objectLen uint64, chunkSize int) uint32 {
	if objectLen == 0 {
		return 1
	}
	n := (objectLen + uint64(chunkSize) - 1) / uint64(chunkSize)
	return uint32(n)
}

// RootNote renders the upload-time commitment for the NRR header's
// Note field: the Merkle root plus the chunk size it was built with.
func RootNote(root cryptoutil.Digest) string {
	return rootNotePrefix + root.String() + ";chunk=" + strconv.Itoa(ChunkSize)
}

// ParseRootNote reverses RootNote. It returns ErrNoCommitment when
// the note carries no audit commitment at all (old NRRs), so callers
// can distinguish "provider never committed" from a malformed note.
func ParseRootNote(note string) (cryptoutil.Digest, int, error) {
	if !strings.HasPrefix(note, rootNotePrefix) {
		return cryptoutil.Digest{}, 0, ErrNoCommitment
	}
	rest := strings.TrimPrefix(note, rootNotePrefix)
	i := strings.Index(rest, ";chunk=")
	if i < 0 {
		return cryptoutil.Digest{}, 0, fmt.Errorf("%w: root note missing chunk size", ErrMalformed)
	}
	root, err := cryptoutil.ParseDigest(rest[:i])
	if err != nil {
		return cryptoutil.Digest{}, 0, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	size, err := strconv.Atoi(rest[i+len(";chunk="):])
	if err != nil || size <= 0 {
		return cryptoutil.Digest{}, 0, fmt.Errorf("%w: bad chunk size", ErrMalformed)
	}
	return root, size, nil
}

// Challenge is one storage-dwell spot check: prove possession of
// these leaves, bound to this nonce.
type Challenge struct {
	// TxnID names the audited transaction.
	TxnID string
	// ChunkSize echoes the commitment's chunking so the prover
	// rebuilds the identical tree.
	ChunkSize uint32
	// LeafCount is the challenger's view of the committed leaf count
	// (derived from the NRR's ObjectLen).
	LeafCount uint32
	// Indices are the challenged leaves, drawn from crypto/rand — a
	// predictable challenge lets a lazy provider precompute responses.
	Indices []uint32
	// Nonce binds the response to this challenge (crypto/rand).
	Nonce []byte
}

// NewChallenge draws n distinct leaf indices in [0, leafCount) and a
// fresh nonce, both from crypto/rand. n is clamped to leafCount and
// MaxChallengeIndices.
func NewChallenge(txnID string, leafCount uint32, n int) (*Challenge, error) {
	if leafCount == 0 {
		return nil, fmt.Errorf("audit: challenge over zero leaves")
	}
	if n < 1 {
		n = 1
	}
	if n > MaxChallengeIndices {
		n = MaxChallengeIndices
	}
	if uint32(n) > leafCount {
		n = int(leafCount)
	}
	seen := make(map[uint32]bool, n)
	indices := make([]uint32, 0, n)
	max := big.NewInt(int64(leafCount))
	for len(indices) < n {
		v, err := rand.Int(rand.Reader, max)
		if err != nil {
			return nil, fmt.Errorf("audit: drawing challenge index: %w", err)
		}
		idx := uint32(v.Int64())
		if seen[idx] {
			continue
		}
		seen[idx] = true
		indices = append(indices, idx)
	}
	nonce, err := cryptoutil.Nonce(cryptoutil.NonceSize)
	if err != nil {
		return nil, fmt.Errorf("audit: drawing challenge nonce: %w", err)
	}
	return &Challenge{
		TxnID:     txnID,
		ChunkSize: ChunkSize,
		LeafCount: leafCount,
		Indices:   indices,
		Nonce:     nonce,
	}, nil
}

// Encode renders the canonical challenge bytes.
func (c *Challenge) Encode() []byte {
	e := wire.NewEncoder(64 + 4*len(c.Indices))
	e.String(challengeMagic)
	e.String(c.TxnID)
	e.U32(c.ChunkSize)
	e.U32(c.LeafCount)
	e.U32(uint32(len(c.Indices)))
	for _, idx := range c.Indices {
		e.U32(idx)
	}
	e.Bytes32(c.Nonce)
	return e.Bytes()
}

// DecodeChallenge reverses Encode.
func DecodeChallenge(b []byte) (*Challenge, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); d.Err() == nil && magic != challengeMagic {
		return nil, fmt.Errorf("%w: bad challenge magic %q", ErrMalformed, magic)
	}
	c := &Challenge{}
	c.TxnID = d.String()
	c.ChunkSize = d.U32()
	c.LeafCount = d.U32()
	n := d.U32()
	if d.Err() == nil && n > MaxChallengeIndices {
		return nil, fmt.Errorf("%w: %d challenge indices (max %d)", ErrMalformed, n, MaxChallengeIndices)
	}
	c.Indices = make([]uint32, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		c.Indices = append(c.Indices, d.U32())
	}
	c.Nonce = append([]byte(nil), d.Bytes32()...)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return c, nil
}

// Note renders the challenge for an evidence header's Note field, so
// the journaled challenge evidence is self-contained.
func (c *Challenge) Note() string {
	return challengeNotePrefix + base64.StdEncoding.EncodeToString(c.Encode())
}

// ParseChallengeNote reverses Note. ErrNoCommitment reports a note
// that is not an audit challenge at all.
func ParseChallengeNote(note string) (*Challenge, error) {
	if !strings.HasPrefix(note, challengeNotePrefix) {
		return nil, ErrNoCommitment
	}
	raw, err := base64.StdEncoding.DecodeString(strings.TrimPrefix(note, challengeNotePrefix))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return DecodeChallenge(raw)
}

// Entry is one challenged leaf in a response: the chunk's BYTES and
// the inclusion proof tying it to the committed root. Carrying the
// bytes (not their hash) is what makes the audit a proof of
// possession — the verifier recomputes merkle.LeafHash over the
// chunk, and a prover that kept only the tree cannot fabricate the
// preimage.
type Entry struct {
	Chunk []byte
	Proof *merkle.Proof
}

// Response is the prover's signed answer to a Challenge.
type Response struct {
	TxnID    string
	SignerID string
	// Nonce echoes the challenge nonce.
	Nonce []byte
	// Root is the Merkle root the proofs verify against; the verifier
	// checks it equals the NRR commitment.
	Root cryptoutil.Digest
	// Entries answer the challenge indices in order.
	Entries   []Entry
	Timestamp time.Time
	// Sig is the prover's signature over CanonicalBytes — the §4.1-style
	// non-repudiable binding of (txn, nonce, root, chunks, proofs).
	Sig []byte
}

// CanonicalBytes is what Sig covers.
func (r *Response) CanonicalBytes() []byte {
	e := wire.NewEncoder(128 + (ChunkSize+128)*len(r.Entries))
	e.String(responseMagic)
	e.String(r.TxnID)
	e.String(r.SignerID)
	e.Bytes32(r.Nonce)
	e.U8(uint8(r.Root.Alg))
	e.Bytes32(r.Root.Sum)
	e.U32(uint32(len(r.Entries)))
	for _, ent := range r.Entries {
		e.Bytes32(ent.Chunk)
		e.Bytes32(encodeProof(ent.Proof))
	}
	e.Time(r.Timestamp)
	return e.Bytes()
}

// Encode renders the signed response.
func (r *Response) Encode() []byte {
	canonical := r.CanonicalBytes()
	e := wire.NewEncoder(64 + len(canonical) + len(r.Sig))
	e.String(signedRespMagic)
	e.Bytes32(canonical)
	e.Bytes32(r.Sig)
	return e.Bytes()
}

// DecodeResponse reverses Encode.
func DecodeResponse(b []byte) (*Response, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); d.Err() == nil && magic != signedRespMagic {
		return nil, fmt.Errorf("%w: bad response magic %q", ErrMalformed, magic)
	}
	canonical := d.Bytes32()
	sig := append([]byte(nil), d.Bytes32()...)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	r, err := decodeCanonical(canonical)
	if err != nil {
		return nil, err
	}
	r.Sig = sig
	return r, nil
}

func decodeCanonical(b []byte) (*Response, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); d.Err() == nil && magic != responseMagic {
		return nil, fmt.Errorf("%w: bad canonical magic %q", ErrMalformed, magic)
	}
	r := &Response{}
	r.TxnID = d.String()
	r.SignerID = d.String()
	r.Nonce = append([]byte(nil), d.Bytes32()...)
	r.Root.Alg = cryptoutil.HashAlg(d.U8())
	r.Root.Sum = append([]byte(nil), d.Bytes32()...)
	n := d.U32()
	if d.Err() == nil && n > MaxChallengeIndices {
		return nil, fmt.Errorf("%w: %d response entries (max %d)", ErrMalformed, n, MaxChallengeIndices)
	}
	r.Entries = make([]Entry, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var ent Entry
		ent.Chunk = append([]byte(nil), d.Bytes32()...)
		p, err := decodeProof(d.Bytes32())
		if err != nil {
			return nil, err
		}
		ent.Proof = p
		r.Entries = append(r.Entries, ent)
	}
	r.Timestamp = d.Time()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// Note renders the response for an evidence header's Note field.
func (r *Response) Note() string {
	return responseNotePrefix + base64.StdEncoding.EncodeToString(r.Encode())
}

// ParseResponseNote reverses Note.
func ParseResponseNote(note string) (*Response, error) {
	if !strings.HasPrefix(note, responseNotePrefix) {
		return nil, ErrNoCommitment
	}
	raw, err := base64.StdEncoding.DecodeString(strings.TrimPrefix(note, responseNotePrefix))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return DecodeResponse(raw)
}

// BuildResponse answers ch from the prover's current copy of the
// object: it rebuilds the tree, returns each challenged chunk with
// its inclusion proof, and signs (txn, nonce, root, chunks, proofs).
func BuildResponse(signer cryptoutil.Signer, signerID string, ch *Challenge, tree *merkle.Tree, chunks [][]byte, now time.Time) (*Response, error) {
	r := &Response{
		TxnID:     ch.TxnID,
		SignerID:  signerID,
		Nonce:     append([]byte(nil), ch.Nonce...),
		Root:      tree.Root(),
		Entries:   make([]Entry, 0, len(ch.Indices)),
		Timestamp: now,
	}
	for _, idx := range ch.Indices {
		if int(idx) >= len(chunks) {
			return nil, fmt.Errorf("audit: challenged leaf %d outside object (%d leaves)", idx, len(chunks))
		}
		p, err := tree.Prove(int(idx))
		if err != nil {
			return nil, err
		}
		r.Entries = append(r.Entries, Entry{Chunk: append([]byte(nil), chunks[idx]...), Proof: p})
	}
	sig, err := signer.Sign(r.CanonicalBytes())
	if err != nil {
		return nil, fmt.Errorf("audit: signing response: %w", err)
	}
	r.Sig = sig
	return r, nil
}

// Verify checks a response against the challenge it should answer and
// the committed root: the nonce must echo, the root must match the
// commitment, every challenged index must carry the chunk bytes whose
// recomputed leaf hash opens the committed root through its inclusion
// proof, and the signature must verify under the prover's key.
// Recomputing the leaf hash from the returned bytes is the possession
// proof — a prover holding only the tree's hashes cannot pass.
func (r *Response) Verify(pub cryptoutil.PublicKey, ch *Challenge, committed cryptoutil.Digest) error {
	if r.TxnID != ch.TxnID {
		return fmt.Errorf("%w: txn %q answers %q", ErrIndexMismatch, r.TxnID, ch.TxnID)
	}
	if len(r.Nonce) == 0 || string(r.Nonce) != string(ch.Nonce) {
		return ErrNonceMismatch
	}
	if !r.Root.Equal(committed) {
		return ErrRootMismatch
	}
	if len(r.Entries) != len(ch.Indices) {
		return fmt.Errorf("%w: %d entries for %d indices", ErrIndexMismatch, len(r.Entries), len(ch.Indices))
	}
	for i, ent := range r.Entries {
		if ent.Proof == nil || ent.Proof.Index != int(ch.Indices[i]) {
			return fmt.Errorf("%w: entry %d proves wrong leaf", ErrIndexMismatch, i)
		}
		if ch.ChunkSize > 0 && uint32(len(ent.Chunk)) > ch.ChunkSize {
			return fmt.Errorf("%w: entry %d carries %d bytes, chunk size is %d", ErrMalformed, i, len(ent.Chunk), ch.ChunkSize)
		}
		if err := ent.Proof.VerifyLeaf(committed, merkle.LeafHash(ent.Chunk)); err != nil {
			return fmt.Errorf("%w: leaf %d: %v", ErrBadProof, ch.Indices[i], err)
		}
	}
	if err := pub.Verify(r.CanonicalBytes(), r.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSig, err)
	}
	return nil
}
