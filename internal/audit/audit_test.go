package audit

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/merkle"
)

func testObject(t *testing.T, n int) ([]byte, *merkle.Tree, [][]byte) {
	t.Helper()
	data := bytes.Repeat([]byte("storage-dwell audited bytes. "), n)
	tree, chunks, err := ObjectTree(data)
	if err != nil {
		t.Fatal(err)
	}
	return data, tree, chunks
}

func testRound(t *testing.T) (cryptoutil.KeyPair, *Challenge, *Response, *merkle.Tree, [][]byte) {
	t.Helper()
	_, tree, chunks := testObject(t, 1200) // several ChunkSize leaves
	key := cryptoutil.InsecureTestKey(0)
	ch, err := NewChallenge("txn-a", uint32(len(chunks)), 4)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := BuildResponse(key.Signer(), "bob", ch, tree, chunks, time.Unix(1700000000, 0).UTC())
	if err != nil {
		t.Fatal(err)
	}
	return key, ch, resp, tree, chunks
}

// TestResponseCarriesChunkBytes pins the proof-of-possession property:
// a response must carry the challenged chunks' BYTES, which the
// verifier hashes itself — leaf hashes plus proofs are computable from
// a stored tree without the data, so a hash-only response format would
// let a lazy provider discard the object and still pass every audit.
func TestResponseCarriesChunkBytes(t *testing.T) {
	key, ch, resp, tree, chunks := testRound(t)
	for i, ent := range resp.Entries {
		if !bytes.Equal(ent.Chunk, chunks[ch.Indices[i]]) {
			t.Fatalf("entry %d does not carry the bytes of challenged chunk %d", i, ch.Indices[i])
		}
	}
	if err := resp.Verify(key.Signer().Public(), ch, tree.Root()); err != nil {
		t.Fatalf("honest response rejected: %v", err)
	}
}

// TestHashOnlyProverFails plays the lazy provider the v1 format let
// through: it kept the Merkle tree (every leaf hash and proof) but
// discarded the object, and answers with leaf-hash bytes in place of
// chunk bytes. The verifier must reject — it recomputes the leaf hash
// from the returned bytes, and H(H(chunk)) != H(chunk).
func TestHashOnlyProverFails(t *testing.T) {
	key, ch, resp, tree, _ := testRound(t)
	for i := range resp.Entries {
		leaf := merkle.LeafHash(resp.Entries[i].Chunk)
		resp.Entries[i].Chunk = leaf.Sum // all the lazy prover still holds
	}
	// The lazy prover can still sign its fabricated answer.
	sig, err := key.Signer().Sign(resp.CanonicalBytes())
	if err != nil {
		t.Fatal(err)
	}
	resp.Sig = sig
	if err := resp.Verify(key.Signer().Public(), ch, tree.Root()); !errors.Is(err, ErrBadProof) {
		t.Fatalf("hash-only response verified (err=%v); the audit no longer proves possession", err)
	}
}

// TestTamperedChunkFails: flipping one byte of a returned chunk breaks
// its recomputed leaf hash against the committed root.
func TestTamperedChunkFails(t *testing.T) {
	key, ch, resp, tree, _ := testRound(t)
	resp.Entries[0].Chunk[0] ^= 0xFF
	sig, err := key.Signer().Sign(resp.CanonicalBytes())
	if err != nil {
		t.Fatal(err)
	}
	resp.Sig = sig
	if err := resp.Verify(key.Signer().Public(), ch, tree.Root()); !errors.Is(err, ErrBadProof) {
		t.Fatalf("tampered chunk verified: err=%v", err)
	}
}

// TestNonceBindsResponse: an answer to a different challenge (stale
// round) is rejected on its nonce even when every proof verifies.
func TestNonceBindsResponse(t *testing.T) {
	key, _, resp, tree, chunks := testRound(t)
	ch2, err := NewChallenge("txn-a", uint32(len(chunks)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Verify(key.Signer().Public(), ch2, tree.Root()); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("stale response accepted against a fresh challenge: err=%v", err)
	}
}

// TestResponseRoundTrip: the signed encoding survives encode/decode
// with chunk bytes intact and still verifies.
func TestResponseRoundTrip(t *testing.T) {
	key, ch, resp, tree, _ := testRound(t)
	got, err := DecodeResponse(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(resp.Entries) {
		t.Fatalf("round trip lost entries: %d -> %d", len(resp.Entries), len(got.Entries))
	}
	for i := range got.Entries {
		if !bytes.Equal(got.Entries[i].Chunk, resp.Entries[i].Chunk) {
			t.Fatalf("entry %d chunk bytes changed across encode/decode", i)
		}
	}
	if err := got.Verify(key.Signer().Public(), ch, tree.Root()); err != nil {
		t.Fatalf("decoded response rejected: %v", err)
	}
	// And through the Note envelope the evidence header carries.
	noted, err := ParseResponseNote(resp.Note())
	if err != nil {
		t.Fatal(err)
	}
	if err := noted.Verify(key.Signer().Public(), ch, tree.Root()); err != nil {
		t.Fatalf("note round trip rejected: %v", err)
	}
}

// TestOversizedChunkRejected: an entry longer than the challenge's
// chunk size is malformed, whatever it hashes to.
func TestOversizedChunkRejected(t *testing.T) {
	key, ch, resp, tree, _ := testRound(t)
	resp.Entries[0].Chunk = make([]byte, ChunkSize+1)
	sig, err := key.Signer().Sign(resp.CanonicalBytes())
	if err != nil {
		t.Fatal(err)
	}
	resp.Sig = sig
	if err := resp.Verify(key.Signer().Public(), ch, tree.Root()); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized chunk entry verified: err=%v", err)
	}
}
