package audit

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestNoMathRandImport pins the security property that challenge
// indices and nonces come from crypto/rand only: a provider that can
// predict which leaves will be challenged can keep just those chunks
// and discard the rest, which defeats the storage-dwell audit
// entirely (DESIGN.md §14). Any import of math/rand — including
// math/rand/v2 — in a non-test file of this package is a bug.
func TestNoMathRandImport(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	checked := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		checked++
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatal(err)
			}
			if path == "math/rand" || strings.HasPrefix(path, "math/rand/") {
				t.Errorf("%s imports %q: audit challenges must be unpredictable, use crypto/rand", name, path)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no non-test Go files found to check")
	}
}
