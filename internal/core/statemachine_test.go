package core_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
)

// TestRandomOperationSequences is a model-based test: a random
// interleaving of uploads, duplicate uploads, downloads, aborts and
// overwrites runs against the provider while a simple model tracks
// what SHOULD be stored. After every operation the store must agree
// with the model, and no operation may wedge the engines.
func TestRandomOperationSequences(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomSequence(t, seed)
		})
	}
}

func runRandomSequence(t *testing.T, seed int64) {
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rng := rand.New(rand.NewSource(seed))
	model := map[string][]byte{}     // key → expected stored content
	uploadTxn := map[string]string{} // key → last successful upload txn
	txnDone := map[string]bool{}     // txn → completed
	txnCounter := 0

	newTxn := func() string {
		txnCounter++
		return fmt.Sprintf("sm-%d-%d", seed, txnCounter)
	}
	keys := []string{"obj/a", "obj/b", "obj/c"}

	const ops = 40
	for i := 0; i < ops; i++ {
		key := keys[rng.Intn(len(keys))]
		switch rng.Intn(5) {
		case 0, 1: // upload (possibly overwrite)
			data := make([]byte, 16+rng.Intn(64))
			rng.Read(data)
			txn := newTxn()
			if _, err := d.Client.Upload(context.Background(), conn, txn, key, data); err != nil {
				t.Fatalf("op %d upload: %v", i, err)
			}
			model[key] = data
			uploadTxn[key] = txn
			txnDone[txn] = true

		case 2: // download and verify against the model
			txn := newTxn()
			res, err := d.Client.Download(context.Background(), conn, txn, key, uploadTxn[key])
			if model[key] == nil {
				if !errors.Is(err, core.ErrPeerRejected) {
					t.Fatalf("op %d download of absent key: %v", i, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d download: %v", i, err)
			}
			if !bytes.Equal(res.Data, model[key]) {
				t.Fatalf("op %d: downloaded %d bytes, model has %d", i, len(res.Data), len(model[key]))
			}

		case 3: // abort a completed txn → must be rejected, data intact
			if tk := uploadTxn[key]; tk != "" && txnDone[tk] {
				res, err := d.Client.Abort(context.Background(), conn, tk, "model test late abort")
				if err != nil {
					t.Fatalf("op %d abort: %v", i, err)
				}
				if res.Accepted {
					t.Fatalf("op %d: abort of completed txn %s accepted", i, tk)
				}
			}

		case 4: // abort an unknown txn → accepted, no effect
			res, err := d.Client.Abort(context.Background(), conn, newTxn(), "abort of nothing")
			if err != nil {
				t.Fatalf("op %d abort-unknown: %v", i, err)
			}
			if !res.Accepted {
				t.Fatalf("op %d: abort of unknown txn rejected", i)
			}
		}

		// Invariant: every modeled object is stored exactly as modeled.
		for k, want := range model {
			obj, err := d.Store.Get(k)
			if err != nil {
				t.Fatalf("op %d: model has %q but store lost it: %v", i, k, err)
			}
			if !bytes.Equal(obj.Data, want) {
				t.Fatalf("op %d: store diverged from model at %q", i, k)
			}
		}
	}
	// Final cross-check: no extra keys appeared.
	storeKeys := d.Store.Keys()
	if len(storeKeys) != len(model) {
		t.Fatalf("store has %d keys, model has %d", len(storeKeys), len(model))
	}
}
