package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Storage-dwell audit wiring (DESIGN.md §14). The provider committed
// to a Merkle root over the object's chunks inside the signed NRR at
// upload time; this file runs the challenge-response sub-protocol
// against that commitment: the client (or TTP) sends a
// KindAuditChallenge whose header Note carries crypto/rand leaf
// indices + nonce, and the provider answers with a KindAuditResponse
// whose Note carries the challenged chunk bytes, inclusion proofs,
// and a signature over (txn, nonce, root, chunks, proofs). Both
// artifacts are
// journaled like any other evidence, so the arbitrator can settle a
// dwell-integrity dispute from the archives alone — no download.

// Audit metric names (per-party via the obs label convention).
const (
	metricAuditChallenges = "audit_challenges_total"
	metricAuditFailures   = "audit_failures_total"
	metricAuditLatency    = "audit_response_latency_ns"
)

// Package-level handles: parties carry no obs registry reference (the
// Server and SessionPool do), so the per-party audit counters follow
// the coreDegradedSkips pattern on the default registry.
var (
	auditChallengesClient   = obs.Default().Counter(obs.Labeled(metricAuditChallenges, "party", "client"))
	auditChallengesProvider = obs.Default().Counter(obs.Labeled(metricAuditChallenges, "party", "provider"))
	auditFailuresClient     = obs.Default().Counter(obs.Labeled(metricAuditFailures, "party", "client"))
	auditFailuresProvider   = obs.Default().Counter(obs.Labeled(metricAuditFailures, "party", "provider"))
	auditLatency            = obs.Default().Histogram(metricAuditLatency, obs.DurationBuckets)
)

// auditRootNote computes the upload-time commitment the NRR carries:
// audit.RootNote over the object's chunk tree. Empty on failure — an
// upload must not fail because the commitment could not be built; the
// NRR then simply carries no auditable root (and AuditObject reports
// audit.ErrNoCommitment).
func auditRootNote(data []byte) string {
	t, _, err := audit.ObjectTree(data)
	if err != nil {
		return ""
	}
	return audit.RootNote(t.Root())
}

// AuditReport is a completed, verified storage-dwell audit round held
// by the challenger.
type AuditReport struct {
	TxnID string
	// Challenge is what was asked (journaled as RoleOwn evidence).
	Challenge *audit.Challenge
	// Root is the NRR commitment the response proved against.
	Root cryptoutil.Digest
	// Response is the provider's verified answer (journaled as
	// RolePeer evidence).
	Response *audit.Response
	// Latency is the challenger-observed round-trip.
	Latency time.Duration
}

// AuditObject runs one challenge-response round for a completed upload
// (ROADMAP item 2: continuous storage-dwell auditing). It loads the
// NRR commitment from the archive (hot or cold), draws n crypto/rand
// leaf indices and a nonce, journals the challenge as its own
// evidence BEFORE sending — so a provider that never answers leaves
// the client holding conviction material — and journals the provider's
// authenticated response before verifying it against the committed
// root, so a failing answer is preserved as the provider's own signed
// admission.
//
// A verification failure (or no response) returns an error wrapping
// ErrIntegrity/ErrTimeout; the journaled evidence stays, and
// arbitrator.CaseFromBundles turns it into an audit-failure verdict —
// immediately for a journaled bad response, or once the challenge's
// deadline lapses for silence.
func (c *Client) AuditObject(ctx context.Context, conn transport.Conn, txnID string, n int) (*AuditReport, error) {
	if err := CheckContext(ctx); err != nil {
		return nil, err
	}
	defer applyDeadline(ctx, conn)()

	nrr, err := c.EvidenceByKind(txnID, evidence.RolePeer, evidence.KindNRR)
	if err != nil {
		return nil, fmt.Errorf("core: no NRR to audit %s against: %w", txnID, err)
	}
	root, chunkSize, err := audit.ParseRootNote(nrr.Header.Note)
	if err != nil {
		return nil, fmt.Errorf("core: NRR for %s carries no audit commitment: %w", txnID, err)
	}
	ch, err := audit.NewChallenge(txnID, audit.LeafCountFor(nrr.Header.ObjectLen, chunkSize), n)
	if err != nil {
		return nil, fmt.Errorf("core: building audit challenge: %w", err)
	}

	// Audits outlive the uploading process: a fresh challenger (the
	// nrclient CLI) starts its per-txn counter at zero, but the
	// provider's replay guard already holds the sequences this party
	// used during the upload. Re-derive the floor from the archived
	// headers so the challenge sequence strictly exceeds everything the
	// provider has seen — bumpSeqTo never moves the counter backwards,
	// so an in-process challenger that is already ahead is unaffected.
	h := c.newHeader(evidence.KindAuditChallenge, txnID, c.ProviderID, c.TTPID,
		c.bumpSeqTo(txnID, c.archivedMaxSeq(txnID)))
	h.ObjectKey = nrr.Header.ObjectKey
	h.Note = ch.Note()
	h.SetDigests(nil)
	providerKey, err := c.peerKey(c.ProviderID)
	if err != nil {
		return nil, err
	}
	msg, own, err := c.buildMessage(h, nil, providerKey)
	if err != nil {
		return nil, err
	}
	// Journal the challenge before it goes on the wire: if the provider
	// stays silent, the durable unanswered challenge IS the claim.
	if err := c.putEvidence(txnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	auditChallengesClient.Inc()
	start := time.Now()
	if err := c.send(conn, msg); err != nil {
		auditFailuresClient.Inc()
		return nil, fmt.Errorf("core: sending audit challenge: %w", err)
	}
	c.ctr.Inc(metrics.Rounds, 1)

	pu := c.pumpFor(conn)
	raw, err := pu.recv(ctx, c.clk, c.timeout)
	if err != nil {
		auditFailuresClient.Inc()
		return nil, err
	}
	m, err := DecodeMessage(raw)
	if err != nil {
		auditFailuresClient.Inc()
		return nil, wrapProto(err)
	}
	rh, rev, err := c.checkInbound(m)
	if err != nil {
		auditFailuresClient.Inc()
		return nil, err
	}
	c.ctr.Inc(metrics.MsgsRecv, 1)
	if rh.Kind == evidence.KindError {
		auditFailuresClient.Inc()
		return nil, peerErr(rh.Note)
	}
	if rh.Kind != evidence.KindAuditResponse || rh.TxnID != txnID || rh.SenderID != c.ProviderID {
		auditFailuresClient.Inc()
		return nil, fmt.Errorf("%w: expected audit response for %s, got %s for %s from %s",
			ErrProtocol, txnID, rh.Kind, rh.TxnID, rh.SenderID)
	}
	// Journal the provider's authenticated answer BEFORE judging it: a
	// response that fails the proof is itself conviction material — the
	// provider non-repudiably answered THIS nonce wrongly, which
	// convicts at arbitration immediately, with no need to wait out the
	// challenge deadline the way silence does.
	if err := c.putEvidence(txnID, evidence.RolePeer, rev); err != nil {
		return nil, err
	}
	resp, err := audit.ParseResponseNote(rh.Note)
	if err != nil {
		auditFailuresClient.Inc()
		return nil, fmt.Errorf("%w: audit response malformed: %v", ErrProtocol, err)
	}
	if err := resp.Verify(providerKey, ch, root); err != nil {
		c.ctr.Inc(metrics.AuthFailures, 1)
		auditFailuresClient.Inc()
		return nil, fmt.Errorf("%w: %v", ErrIntegrity, err)
	}
	c.ctr.Inc(metrics.VerifyOps, 1)
	latency := time.Since(start)
	auditLatency.Observe(int64(latency))
	return &AuditReport{TxnID: txnID, Challenge: ch, Root: root, Response: resp, Latency: latency}, nil
}

// handleAuditChallenge answers a storage-dwell challenge: journal the
// challenge, rebuild the chunk tree from the STORED copy of the
// object, prove the challenged leaves, and sign (txn, nonce, root,
// proofs). The response rides in the reply header's Note field and is
// journaled as the provider's own evidence before the send — a crash
// after that leaves the restarted provider able to prove it answered.
func (b *Provider) handleAuditChallenge(h *evidence.Header, ev *evidence.Evidence, payload []byte) (*Message, error) {
	auditChallengesProvider.Inc()
	if b.misbehavior().IgnoreAudit {
		// The lazy provider of the threat model: the challenge is
		// dropped on the floor and the challenger's journaled copy
		// becomes the conviction material.
		return nil, nil
	}
	if err := faultpoint.HitErr(fpProviderAuditDropChallenge); err != nil {
		return nil, nil
	}
	if !h.MatchesData(payload) {
		b.ctr.Inc(metrics.AuthFailures, 1)
		return b.errorReply(h, "audit challenge payload does not match signed digests")
	}
	ch, err := audit.ParseChallengeNote(h.Note)
	if err != nil {
		auditFailuresProvider.Inc()
		return b.errorReply(h, "malformed audit challenge: "+err.Error())
	}
	// Journal the inbound challenge first: even a challenge we cannot
	// answer is dispute material both sides should hold.
	if err := b.putEvidence(h.TxnID, evidence.RolePeer, ev); err != nil {
		return nil, err
	}

	b.txnMu.Lock()
	objKey := b.txnObject[h.TxnID]
	b.txnMu.Unlock()
	if objKey == "" {
		objKey = h.ObjectKey
	}
	if objKey == "" {
		auditFailuresProvider.Inc()
		return b.errorReply(h, "audit: unknown transaction "+h.TxnID)
	}
	obj, err := b.store.Get(objKey)
	if err != nil {
		auditFailuresProvider.Inc()
		return b.errorReply(h, "audit: object unavailable: "+err.Error())
	}
	data := obj.Data
	if b.misbehavior().CorruptAuditProof {
		data = corruptCopy(data)
	}
	if err := faultpoint.HitErr(fpProviderAuditStaleProof); err != nil {
		// Chaos: the provider proves against a stale copy; the response
		// root cannot match the commitment and the verifier rejects it.
		data = corruptCopy(data)
	}
	tree, chunks, err := audit.ObjectTree(data)
	if err != nil {
		auditFailuresProvider.Inc()
		return b.errorReply(h, "audit: cannot rebuild chunk tree: "+err.Error())
	}
	resp, err := audit.BuildResponse(b.id.Key.Signer(), b.id.Name, ch, tree, chunks, b.clk.Now())
	if err != nil {
		auditFailuresProvider.Inc()
		return b.errorReply(h, "audit: cannot prove challenge: "+err.Error())
	}
	b.ctr.Inc(metrics.SignOps, 1)

	senderKey, err := b.peerKey(h.SenderID)
	if err != nil {
		return nil, err
	}
	rh := b.newHeader(evidence.KindAuditResponse, h.TxnID, h.SenderID, h.TTPID, b.bumpSeqTo(h.TxnID, h.Seq))
	rh.ObjectKey = objKey
	rh.Note = resp.Note()
	rh.SetDigests(nil)
	msg, own, err := b.buildMessage(rh, nil, senderKey)
	if err != nil {
		return nil, err
	}
	if err := b.putEvidence(h.TxnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	faultpoint.Hit(fpProviderAuditCrashMid)
	b.ctr.Inc(metrics.Rounds, 1)
	b.auditAppend("audit", h.TxnID, fmt.Sprintf("answered %d-leaf challenge on %q", len(ch.Indices), objKey))
	return msg, nil
}

// corruptCopy returns a mutated copy of data (never the original):
// the stale-proof adversary's view of the object.
func corruptCopy(data []byte) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return []byte{0xFF}
	}
	out[0] ^= 0xFF
	return out
}

// VerifyStorage is the provider's proactive self-audit (the nrserver
// -audit-interval sweep): rebuild the chunk tree from the stored
// object and compare it to the commitment inside the provider's own
// archived NRR. A mismatch means bit-rot or a lost blob — the
// provider learns it is about to fail external audits BEFORE a
// challenger convicts it.
func (b *Provider) VerifyStorage(txnID string) error {
	own, err := b.EvidenceByKind(txnID, evidence.RoleOwn, evidence.KindNRR)
	if err != nil {
		return fmt.Errorf("core: no NRR for %s: %w", txnID, err)
	}
	root, _, err := audit.ParseRootNote(own.Header.Note)
	if err != nil {
		return fmt.Errorf("core: NRR for %s carries no audit commitment: %w", txnID, err)
	}
	b.txnMu.Lock()
	objKey := b.txnObject[txnID]
	b.txnMu.Unlock()
	if objKey == "" {
		objKey = own.Header.ObjectKey
	}
	obj, err := b.store.Get(objKey)
	if err != nil {
		auditFailuresProvider.Inc()
		return fmt.Errorf("%w: audited object %q unavailable: %v", ErrIntegrity, objKey, err)
	}
	tree, _, err := audit.ObjectTree(obj.Data)
	if err != nil {
		return err
	}
	if !tree.Root().Equal(root) {
		auditFailuresProvider.Inc()
		return fmt.Errorf("%w: stored object %q diverged from NRR commitment", ErrIntegrity, objKey)
	}
	return nil
}

// AuditableTxns lists the transactions whose object binding this
// provider still holds — the candidate set for a self-audit sweep.
func (b *Provider) AuditableTxns() []string {
	b.txnMu.Lock()
	defer b.txnMu.Unlock()
	out := make([]string, 0, len(b.txnObject))
	for txn := range b.txnObject {
		out = append(out, txn)
	}
	return out
}

// VerifyStorage routes the self-audit to the shard owning txnID, then
// sweeps the rest — mirroring EvidenceByKind, because a misrouted
// frame (shard.route.wrong-shard) can leave the NRR on a non-owner
// shard.
func (e *ShardedEngine) VerifyStorage(txnID string) error {
	owner := e.ring.Shard(txnID)
	err := e.shards[owner].VerifyStorage(txnID)
	if err == nil {
		return nil
	}
	for i, s := range e.shards {
		if i == owner {
			continue
		}
		if serr := s.VerifyStorage(txnID); serr == nil {
			return nil
		}
	}
	return err
}

// AuditableTxns concatenates every shard's candidate set.
func (e *ShardedEngine) AuditableTxns() []string {
	var out []string
	for _, s := range e.shards {
		out = append(out, s.AuditableTxns()...)
	}
	return out
}
