package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"
)

// TestControlFrameRoundTrip checks that an overload shed frame decodes
// to the retryable sentinel, note intact, and that unknown control
// codes surface as protocol violations rather than silent retries.
func TestControlFrameRoundTrip(t *testing.T) {
	frame := encodeControl(ctlOverloaded, "server at max in-flight handlers")
	m, err := DecodeMessage(frame)
	if m != nil {
		t.Fatal("control frame decoded as a protocol message")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if want := "server at max in-flight handlers"; err == nil || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("missing note %q in %v", want, err)
	}

	if _, err := DecodeMessage(encodeControl(0x7f, "??")); !errors.Is(err, ErrProtocol) {
		t.Fatalf("unknown control code: want ErrProtocol, got %v", err)
	}

	// A truncated control frame is malformed, not retryable.
	trunc := frame[:len(frame)-2]
	if _, err := DecodeMessage(trunc); err == nil || errors.Is(err, ErrOverloaded) {
		t.Fatalf("truncated control frame: want non-retryable decode error, got %v", err)
	}
}

// TestPeerErrMapping checks the signed KindError note prefixes map back
// onto their typed sentinels at the receiving side.
func TestPeerErrMapping(t *testing.T) {
	cases := []struct {
		note string
		want error
	}{
		{expiredNotePrefix + "session exceeded its step deadline", ErrExpired},
		{degradedNotePrefix + "journal unavailable", ErrDegraded},
		{"data does not match NRO digests", ErrPeerRejected},
		{"", ErrPeerRejected},
		// Prefix must be at the start, not merely present.
		{"note mentions expired: but is a plain rejection", ErrPeerRejected},
	}
	for _, tc := range cases {
		if err := peerErr(tc.note); !errors.Is(err, tc.want) {
			t.Errorf("peerErr(%q) = %v, want %v", tc.note, err, tc.want)
		}
	}
}

func TestWrapProtoPassesOverloadThrough(t *testing.T) {
	shed := fmt.Errorf("%w: busy", ErrOverloaded)
	if err := wrapProto(shed); !errors.Is(err, ErrOverloaded) || errors.Is(err, ErrProtocol) {
		t.Fatalf("wrapProto(shed) = %v", err)
	}
	if err := wrapProto(errors.New("garbled")); !errors.Is(err, ErrProtocol) {
		t.Fatalf("wrapProto(garbled) = %v", err)
	}
}

func TestDeadlinePolicySweepInterval(t *testing.T) {
	cases := []struct {
		policy DeadlinePolicy
		want   time.Duration
	}{
		{DeadlinePolicy{Step: time.Second}, 250 * time.Millisecond},
		{DeadlinePolicy{Step: time.Second, Sweep: 100 * time.Millisecond}, 100 * time.Millisecond},
		{DeadlinePolicy{Step: 20 * time.Millisecond}, 10 * time.Millisecond}, // clamped floor
	}
	for _, tc := range cases {
		if got := tc.policy.SweepInterval(); got != tc.want {
			t.Errorf("SweepInterval(%+v) = %v, want %v", tc.policy, got, tc.want)
		}
	}
	if (DeadlinePolicy{}).enabled() {
		t.Error("zero policy reports enabled")
	}
	if !(DeadlinePolicy{Step: time.Millisecond}).enabled() {
		t.Error("set policy reports disabled")
	}
}

// timeoutNetErr fakes a transport-level timeout that is neither a
// context error nor os.ErrDeadlineExceeded — the shape some net.Conn
// implementations return from a read past SetDeadline.
type timeoutNetErr struct{ timeout bool }

func (e timeoutNetErr) Error() string   { return "fake i/o timeout" }
func (e timeoutNetErr) Timeout() bool   { return e.timeout }
func (e timeoutNetErr) Temporary() bool { return false }

var _ net.Error = timeoutNetErr{}

// TestCancelErrClassification pins the transport audit: every deadline
// and cancellation shape a socket can produce must unwrap to
// ErrCancelled, and genuine failures must pass through untouched.
func TestCancelErrClassification(t *testing.T) {
	cases := []struct {
		name      string
		in        error
		cancelled bool
	}{
		{"context.Canceled", context.Canceled, true},
		{"context.DeadlineExceeded", context.DeadlineExceeded, true},
		{"os.ErrDeadlineExceeded", os.ErrDeadlineExceeded, true},
		{"wrapped context.Canceled", fmt.Errorf("recv: %w", context.Canceled), true},
		{"wrapped os.ErrDeadlineExceeded", fmt.Errorf("read tcp: %w", os.ErrDeadlineExceeded), true},
		{"net.Error timeout", timeoutNetErr{timeout: true}, true},
		{"wrapped net.Error timeout", fmt.Errorf("recv frame: %w", timeoutNetErr{timeout: true}), true},
		{"net.Error non-timeout", timeoutNetErr{timeout: false}, false},
		{"plain error", errors.New("connection reset by peer"), false},
		{"protocol sentinel", ErrProtocol, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := cancelErr(tc.in)
			if got := errors.Is(out, ErrCancelled); got != tc.cancelled {
				t.Fatalf("cancelErr(%v): cancelled=%v, want %v", tc.in, got, tc.cancelled)
			}
			if !tc.cancelled && out != tc.in {
				t.Fatalf("cancelErr(%v) rewrote a non-cancellation to %v", tc.in, out)
			}
		})
	}
}

// TestCancelErrRealSocketDeadline drives cancelErr with the error a
// real TCP read past its deadline produces, end to end through the
// OS — the table above uses fakes; this one keeps us honest against
// the actual net package.
func TestCancelErrRealSocketDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			defer c.Close()
			// Hold the conn open, never write: the client read must end
			// by deadline, not EOF.
			buf := make([]byte, 1)
			c.Read(buf)
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	_, rerr := conn.Read(make([]byte, 1))
	if rerr == nil {
		t.Fatal("read past deadline succeeded")
	}
	if err := cancelErr(rerr); !errors.Is(err, ErrCancelled) {
		t.Fatalf("real deadline error %v did not classify as ErrCancelled (got %v)", rerr, err)
	}
}
