package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/metrics"
)

// uploadSession runs K uploads on one connection and returns the txn ids.
func uploadSession(t testing.TB, d *deploy.Deployment, k int) []string {
	t.Helper()
	conn := mustDial(t, d)
	txns := make([]string, k)
	for i := range txns {
		txns[i] = fmt.Sprintf("txn-sess-%d", i)
		data := []byte(fmt.Sprintf("object %d payload", i))
		if _, err := d.Client.Upload(context.Background(), conn, txns[i], fmt.Sprintf("obj/%d", i), data); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	return txns
}

func TestSettleSession(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	txns := uploadSession(t, d, 8)
	conn := mustDial(t, d)

	signsBefore := d.ProviderCounters.Get(metrics.SignOps)
	res, err := d.Client.SettleSession(context.Background(), conn, "sess-1", txns)
	if err != nil {
		t.Fatal(err)
	}
	// The headline property: K uploads, ONE receipt signature. The
	// provider signs the receipt once plus the response evidence pair.
	if got := d.ProviderCounters.Get(metrics.SignOps) - signsBefore; got > 3 {
		t.Errorf("settle cost %d provider signatures, want one receipt + one evidence pair", got)
	}
	r := res.Receipt
	if r.SessionID != "sess-1" || r.SignerID != deploy.ProviderName {
		t.Fatalf("receipt names session %q signer %q", r.SessionID, r.SignerID)
	}
	if len(r.TxnIDs) != len(txns) {
		t.Fatalf("receipt settles %d txns, want %d", len(r.TxnIDs), len(txns))
	}

	// Every settled upload is individually provable: receipt + inclusion
	// proof + the client's own archived evidence survive an encode round
	// trip and bind together.
	for i, txn := range txns {
		proof, err := res.Proof(i)
		if err != nil {
			t.Fatal(err)
		}
		proof2, err := evidence.DecodeProof(evidence.EncodeProof(proof))
		if err != nil {
			t.Fatalf("proof %d round trip: %v", i, err)
		}
		nro, err := d.Client.Archive().ByKind(txn, evidence.RoleOwn, evidence.KindNRO)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.VerifyLeaf(nro, proof2); err != nil {
			t.Errorf("leaf %d: %v", i, err)
		}
	}

	// Forgery: evidence from one settled txn cannot prove into another
	// txn's slot.
	proof0, _ := res.Proof(0)
	nro1, _ := d.Client.Archive().ByKind(txns[1], evidence.RoleOwn, evidence.KindNRO)
	if err := r.VerifyLeaf(nro1, proof0); err == nil {
		t.Error("evidence for txn 1 accepted under txn 0's proof")
	}
}

func TestSettleSessionUnknownTxn(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	txns := uploadSession(t, d, 2)
	conn := mustDial(t, d)

	// A transaction this client never committed to cannot settle: the
	// client refuses before anything goes on the wire.
	_, err := d.Client.SettleSession(context.Background(), conn, "sess-x",
		append(append([]string(nil), txns...), "txn-never-happened"))
	if err == nil {
		t.Fatal("settle of an unknown transaction succeeded")
	}
	if !strings.Contains(err.Error(), "no archived NRO") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestServerBatchDrain(t *testing.T) {
	d, err := deploy.New(deploy.Config{
		TestKeys:           true,
		ResponseTimeout:    5 * time.Second,
		ProviderServerOpts: []core.ServerOption{core.ServerBatchDrain(16)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	// Concurrent clients hammer the batched server; every upload and the
	// follow-up download must come back correct and in order.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := d.DialProvider()
			if err != nil {
				errs[w] = err
				return
			}
			defer conn.Close()
			for i := 0; i < 8; i++ {
				txn := fmt.Sprintf("txn-b%d-%d", w, i)
				obj := fmt.Sprintf("batch/%d-%d", w, i)
				if _, err := d.Client.Upload(context.Background(), conn, txn, obj, []byte(obj)); err != nil {
					errs[w] = fmt.Errorf("upload %s: %w", txn, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Settlement rides the same batched connection path.
	conn := mustDial(t, d)
	txns := []string{"txn-b0-0", "txn-b0-1", "txn-b0-2"}
	res, err := d.Client.SettleSession(context.Background(), conn, "sess-b", txns)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Receipt.TxnIDs); got != 3 {
		t.Fatalf("settled %d txns, want 3", got)
	}
}

// TestSchemeEd25519Deployment runs the full protocol under the fast
// scheme: every identity (CA included) is Ed25519, so certificates,
// evidence signatures, sealing and aggregate receipts all exercise the
// non-RSA code paths end to end.
func TestSchemeEd25519Deployment(t *testing.T) {
	d, err := deploy.New(deploy.Config{
		TestKeys:        true,
		Scheme:          cryptoutil.SchemeEd25519,
		ResponseTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	txns := uploadSession(t, d, 4)
	conn := mustDial(t, d)
	res, err := d.Client.SettleSession(context.Background(), conn, "sess-ed", txns)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := res.Proof(2)
	if err != nil {
		t.Fatal(err)
	}
	nro, err := d.Client.Archive().ByKind(txns[2], evidence.RoleOwn, evidence.KindNRO)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Receipt.VerifyLeaf(nro, proof); err != nil {
		t.Error(err)
	}
	// A download still verifies the upload linkage under Ed25519.
	dres, err := d.Client.Download(context.Background(), conn, "txn-ed-d", "obj/1", txns[1])
	if err != nil {
		t.Fatal(err)
	}
	if !dres.IntegrityOK {
		t.Error("integrity link not verified under ed25519")
	}
}

// TestBatchDrainFaultIsolation feeds the batched provider a round where
// one message is corrupt: the good ones must still settle and the bad
// one must be the only failure.
func TestBatchDrainFaultIsolation(t *testing.T) {
	d, err := deploy.New(deploy.Config{
		TestKeys:           true,
		ResponseTimeout:    5 * time.Second,
		ProviderServerOpts: []core.ServerOption{core.ServerBatchDrain(16)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	conn := mustDial(t, d)
	if _, err := d.Client.Upload(context.Background(), conn, "txn-ok-1", "a", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Raw garbage on the wire: the batched path must not take down the
	// connection loop or poison subsequent messages.
	if err := conn.Send([]byte("not a tpnr message")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Client.Upload(context.Background(), conn, "txn-ok-2", "b", []byte("b")); err != nil {
		// The garbage frame yields no reply; if the pump surfaced an
		// error here it must be a timeout, not a protocol failure.
		if !errors.Is(err, core.ErrTimeout) {
			t.Fatalf("upload after garbage frame: %v", err)
		}
	}
	if _, err := d.Provider.Archive().ByKind("txn-ok-1", evidence.RolePeer, evidence.KindNRO); err != nil {
		t.Error("good upload lost after corrupt frame")
	}
}
