package core_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/deploy"
)

// ExampleClient_Upload shows the Normal-mode uploading session: two
// messages, no TTP, both parties left holding signed evidence.
func ExampleClient_Upload() {
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	res, err := d.Client.Upload(context.Background(), conn, "txn-example", "docs/hello", []byte("hello"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("NRO signed by:", res.NRO.Header.SenderID)
	fmt.Println("NRR signed by:", res.NRR.Header.SenderID)
	fmt.Println("digests agree:", res.NRO.Header.DataMD5.Equal(res.NRR.Header.DataMD5))
	// Output:
	// NRO signed by: alice
	// NRR signed by: bob
	// digests agree: true
}

// ExampleClient_Download shows the downloading session with the
// upload-to-download integrity link the paper's §2.4 calls for.
func ExampleClient_Download() {
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	if _, err := d.Client.Upload(context.Background(), conn, "txn-up", "docs/x", []byte("stored once")); err != nil {
		log.Fatal(err)
	}
	res, err := d.Client.Download(context.Background(), conn, "txn-dl", "docs/x", "txn-up")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data: %s\n", res.Data)
	fmt.Println("integrity verified against upload:", res.IntegrityOK)
	// Output:
	// data: stored once
	// integrity verified against upload: true
}

// ExampleClient_Abort shows the §4.2 Abort mode: Alice cancels a
// transaction with evidence, still without involving the TTP.
func ExampleClient_Abort() {
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	res, err := d.Client.Abort(context.Background(), conn, "txn-never-completed", "changed my mind")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accepted:", res.Accepted)
	fmt.Println("receipt kind:", res.Receipt.Header.Kind)
	// Output:
	// accepted: true
	// receipt kind: abort-accept
}
