package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/breaker"
	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/transport"
)

// DialFunc opens a fresh connection toward a fixed peer, honoring the
// context while connecting.
type DialFunc func(ctx context.Context) (transport.Conn, error)

// ShardDialFunc opens a connection toward a specific provider shard,
// for deployments where shards answer on distinct endpoints.
type ShardDialFunc func(ctx context.Context, shard int) (transport.Conn, error)

// ErrRetriesExhausted reports that every transport-level retry of an
// operation failed; it wraps nothing protocol-fatal, so Upload
// escalates it to Resolve when a TTP dialer is configured.
var ErrRetriesExhausted = errors.New("core: retries exhausted on transient transport faults")

// PoolOptions tune a SessionPool.
type PoolOptions struct {
	// MaxConns bounds concurrently open provider connections (and
	// therefore concurrent protocol runs). Default 8.
	MaxConns int
	// Retries is how many times an operation is retried on transient
	// transport faults before giving up. Default 3.
	Retries int
	// Backoff is the initial retry delay, doubled per attempt.
	// Default 10ms.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay. Without a cap the delay both
	// overflows int64 after ~45 doublings and grows absurd long before
	// that; with one, retries settle into a steady jittered cadence.
	// Default 2s.
	MaxBackoff time.Duration
	// BackoffSeed fixes the jitter randomness for deterministic tests;
	// 0 (the default) seeds from the global random source. Every delay
	// is jittered ±50% around the capped base so N clients retrying a
	// flapped provider spread out instead of synchronizing into retry
	// storms.
	BackoffSeed int64
	// TTPDial, when set, lets Upload escalate a silent provider or
	// exhausted retries to the in-line TTP per §4.3.
	TTPDial DialFunc
	// Breaker, when set, gates every TTP escalation through a circuit
	// breaker: while it is open, Resolve fails fast with
	// ErrTTPUnavailable instead of dialing a TTP known to be down, and
	// the escalation retry loop backs off until the breaker probes.
	Breaker *breaker.Breaker
	// Registry receives the pool's operational metrics (retries,
	// escalations, idle hits/misses); nil means the process default.
	Registry *obs.Registry
	// ShardRing, when set, makes the pool shard-aware: each operation
	// computes its transaction's shard from the same pinned ring the
	// server-side ShardedEngine routes by, BEFORE borrowing a
	// connection, and pins the borrowed connection to that shard's idle
	// list. With a single endpoint this keeps each shard's traffic on
	// warmed connections of its own; with ShardDial it routes to
	// per-shard endpoints outright.
	ShardRing *shard.Ring
	// ShardDial, when set (requires ShardRing), dials the specific
	// shard an operation's transaction routes to instead of the pool's
	// default dialer.
	ShardDial ShardDialFunc
	// AuditInterval, when positive, starts a background storage-dwell
	// audit loop (DESIGN.md §14): every completed upload is challenged
	// on this cadence, and each failure journals conviction-grade
	// evidence in the client archive.
	AuditInterval time.Duration
	// AuditChallenges is how many random leaves each background audit
	// challenges; <=0 means DefaultAuditChallenges.
	AuditChallenges int
}

// PoolOption adjusts PoolOptions.
type PoolOption func(*PoolOptions)

// PoolMaxConns bounds the pool's concurrently open connections.
func PoolMaxConns(n int) PoolOption { return func(o *PoolOptions) { o.MaxConns = n } }

// PoolRetries sets the transient-fault retry budget per operation.
func PoolRetries(n int) PoolOption { return func(o *PoolOptions) { o.Retries = n } }

// PoolBackoff sets the initial retry delay (doubled per attempt).
func PoolBackoff(d time.Duration) PoolOption { return func(o *PoolOptions) { o.Backoff = d } }

// PoolMaxBackoff caps the doubled retry delay.
func PoolMaxBackoff(d time.Duration) PoolOption { return func(o *PoolOptions) { o.MaxBackoff = d } }

// PoolBackoffSeed makes the retry jitter deterministic (tests).
func PoolBackoffSeed(seed int64) PoolOption { return func(o *PoolOptions) { o.BackoffSeed = seed } }

// PoolTTPDial enables §4.3 escalation through the given TTP dialer.
func PoolTTPDial(d DialFunc) PoolOption { return func(o *PoolOptions) { o.TTPDial = d } }

// PoolBreaker gates TTP escalations through b (see PoolOptions.Breaker).
func PoolBreaker(b *breaker.Breaker) PoolOption { return func(o *PoolOptions) { o.Breaker = b } }

// PoolRegistry directs the pool's metrics into r instead of the
// process-wide default registry.
func PoolRegistry(r *obs.Registry) PoolOption { return func(o *PoolOptions) { o.Registry = r } }

// PoolShardRing makes the pool route operations by transaction shard
// (see PoolOptions.ShardRing). Pass the same shard count the provider
// runs with.
func PoolShardRing(r *shard.Ring) PoolOption { return func(o *PoolOptions) { o.ShardRing = r } }

// PoolShardDial supplies a per-shard dialer (see PoolOptions.ShardDial).
func PoolShardDial(d ShardDialFunc) PoolOption { return func(o *PoolOptions) { o.ShardDial = d } }

// PoolAuditInterval starts the background storage-dwell audit loop on
// the given cadence (see PoolOptions.AuditInterval).
func PoolAuditInterval(d time.Duration) PoolOption {
	return func(o *PoolOptions) { o.AuditInterval = d }
}

// PoolAuditChallenges sets how many leaves each background audit
// challenges (see PoolOptions.AuditChallenges).
func PoolAuditChallenges(n int) PoolOption {
	return func(o *PoolOptions) { o.AuditChallenges = n }
}

// SessionPool multiplexes N concurrent TPNR protocol runs over a
// bounded set of provider connections. Each operation borrows a
// connection (dialing one when the free list is empty), runs the full
// protocol exchange on it, and returns it; transient transport faults
// are retried with exponential backoff on a fresh connection, and an
// upload whose provider stays silent escalates to Resolve exactly as
// §4.3 prescribes.
type SessionPool struct {
	c    *Client
	dial DialFunc
	opt  PoolOptions
	met  *poolMetrics

	sem chan struct{}

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter

	mu sync.Mutex
	// idle holds one free list per shard (a single list when no ring
	// is configured): a released connection is only reused by
	// operations routing to the shard it served.
	idle   [][]transport.Conn
	closed bool

	// auditor tracks auditable uploads and the background sweep loop
	// (poolaudit.go).
	auditor poolAuditor
}

// NewSessionPool builds a pool running client's protocol over
// connections from dial.
func NewSessionPool(client *Client, dial DialFunc, opts ...PoolOption) *SessionPool {
	o := PoolOptions{MaxConns: 8, Retries: 3, Backoff: 10 * time.Millisecond, MaxBackoff: 2 * time.Second}
	for _, fn := range opts {
		fn(&o)
	}
	if o.MaxConns < 1 {
		o.MaxConns = 1
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	seed := o.BackoffSeed
	if seed == 0 {
		seed = rand.Int63()
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.Default()
	}
	lists := 1
	if o.ShardRing != nil {
		lists = o.ShardRing.N()
	}
	p := &SessionPool{
		c:    client,
		dial: dial,
		opt:  o,
		met:  newPoolMetrics(reg),
		sem:  make(chan struct{}, o.MaxConns),
		rng:  rand.New(rand.NewSource(seed)),
		idle: make([][]transport.Conn, lists),
	}
	p.startAuditLoop()
	return p
}

// ShardOf reports which provider shard txnID's operations route to —
// 0 always, without a ring. Exposed so callers (and tests) can verify
// the pool and the server-side engine agree on placement.
func (p *SessionPool) ShardOf(txnID string) int {
	if p.opt.ShardRing == nil {
		return 0
	}
	return p.opt.ShardRing.Shard(txnID)
}

// Client exposes the underlying protocol engine (evidence archive,
// counters).
func (p *SessionPool) Client() *Client { return p.c }

// Upload runs an uploading session through the pool. On ErrTimeout
// (provider went silent after the NRO) or exhausted transport retries,
// and when a TTP dialer is configured, it escalates to Resolve and —
// when the TTP relays the provider's NRR — still returns a complete
// UploadResult.
func (p *SessionPool) Upload(ctx context.Context, txnID, objectKey string, data []byte) (*UploadResult, error) {
	var res *UploadResult
	err := p.do(ctx, txnID, func(conn transport.Conn) error {
		r, err := p.c.Upload(ctx, conn, txnID, objectKey, data)
		if err == nil {
			res = r
		}
		return err
	})
	if err == nil {
		p.auditor.recordAuditable(txnID)
		return res, nil
	}
	if p.opt.TTPDial == nil || !escalableUpload(err) {
		return nil, err
	}
	nro, nroErr := p.c.PendingNRO(txnID)
	if nroErr != nil {
		// The NRO never left this side; there is no claim to resolve.
		return nil, err
	}
	p.met.escalations.Inc()
	rr, rerr := p.resolveRetry(ctx, txnID, "no NRR before time limit: "+err.Error())
	if rerr != nil {
		return nil, fmt.Errorf("core: upload failed (%v); resolve also failed: %w", err, rerr)
	}
	if rr.PeerEvidence == nil {
		return nil, fmt.Errorf("%w: TTP outcome %q without provider evidence", ErrTimeout, rr.Outcome)
	}
	if rr.PeerEvidence.Header.Kind == evidence.KindAbortAccept {
		// The provider expired (or abort-closed) the session; the relayed
		// receipt is archived and the transaction is provably aborted —
		// not a completed upload.
		return nil, fmt.Errorf("%w: transaction %s closed by provider abort receipt", ErrExpired, txnID)
	}
	p.auditor.recordAuditable(txnID)
	return &UploadResult{TxnID: txnID, NRO: nro, NRR: rr.PeerEvidence}, nil
}

// Download runs a downloading session through the pool.
func (p *SessionPool) Download(ctx context.Context, txnID, objectKey, uploadTxn string) (*DownloadResult, error) {
	var res *DownloadResult
	err := p.do(ctx, txnID, func(conn transport.Conn) error {
		r, err := p.c.Download(ctx, conn, txnID, objectKey, uploadTxn)
		if err == nil {
			res = r
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Abort cancels a transaction through the pool.
func (p *SessionPool) Abort(ctx context.Context, txnID, reason string) (*AbortResult, error) {
	var res *AbortResult
	err := p.do(ctx, txnID, func(conn transport.Conn) error {
		r, err := p.c.Abort(ctx, conn, txnID, reason)
		if err == nil {
			res = r
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Resolve escalates a transaction to the TTP over a dedicated
// connection from the configured TTP dialer, gated by the circuit
// breaker when one is configured: an open breaker fails fast with
// ErrTTPUnavailable, and each attempt's outcome feeds the breaker.
func (p *SessionPool) Resolve(ctx context.Context, txnID, report string) (*ResolveResult, error) {
	if p.opt.TTPDial == nil {
		return nil, fmt.Errorf("core: pool has no TTP dialer (use PoolTTPDial)")
	}
	if br := p.opt.Breaker; br != nil && !br.Allow() {
		p.met.ttpFastFails.Inc()
		return nil, fmt.Errorf("%w: not dialing for txn %s", ErrTTPUnavailable, txnID)
	}
	if err := faultpoint.HitErr(fpPoolTTPBlackhole); err != nil {
		err = fmt.Errorf("core: dialing TTP: %w", err)
		p.breakerResult(err)
		return nil, err
	}
	conn, err := p.opt.TTPDial(ctx)
	if err != nil {
		err = fmt.Errorf("core: dialing TTP: %w", err)
		p.breakerResult(err)
		return nil, err
	}
	defer conn.Close()
	res, err := p.c.Resolve(ctx, conn, txnID, report)
	p.breakerResult(err)
	return res, err
}

// breakerResult feeds one escalation outcome to the breaker. Caller
// cancellation says nothing about the TTP and records neither way; a
// definitive protocol answer (even a rejection) proves the TTP is up.
func (p *SessionPool) breakerResult(err error) {
	br := p.opt.Breaker
	if br == nil {
		return
	}
	switch {
	case err == nil:
		br.OnSuccess()
	case errors.Is(err, ErrCancelled):
	case errors.Is(err, ErrPeerRejected), errors.Is(err, ErrProtocol):
		br.OnSuccess()
	default:
		br.OnFailure()
	}
}

// resolveRetry is the queued-retry escalation loop: a fast-failed
// (breaker open), timed-out or transport-broken Resolve is retried
// with the pool's jittered backoff budget rather than abandoned, so a
// TTP blip does not strand a disputable transaction.
func (p *SessionPool) resolveRetry(ctx context.Context, txnID, report string) (*ResolveResult, error) {
	backoff := p.opt.Backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := CheckContext(ctx); err != nil {
			return nil, err
		}
		res, err := p.Resolve(ctx, txnID, report)
		if err == nil {
			return res, nil
		}
		if !retryableResolve(err) {
			return nil, err
		}
		lastErr = err
		if attempt >= p.opt.Retries {
			return nil, fmt.Errorf("%w: last error: %w", ErrRetriesExhausted, lastErr)
		}
		p.met.retries.Inc()
		var delay time.Duration
		delay, backoff = jitterBackoff(backoff, p.opt.MaxBackoff, p.randInt63n)
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, CheckContext(ctx)
		}
	}
}

// retryableResolve classifies escalation errors: breaker fast-fails
// and TTP timeouts are retried (the whole point of queued retry), on
// top of the ordinary transient transport faults.
func retryableResolve(err error) bool {
	if errors.Is(err, ErrTTPUnavailable) || errors.Is(err, ErrTimeout) {
		return true
	}
	return transientFault(err)
}

// do borrows a connection slot and runs op, retrying transient
// transport faults on a fresh connection with capped, jittered
// exponential backoff. Protocol-level outcomes (ErrTimeout,
// ErrProtocol, ErrPeerRejected, ErrIntegrity, ErrUnknownIdentity) and
// caller cancellation are never retried — retrying cannot change them.
// The transaction's shard is computed once, up front, so every
// acquire/release (including retries) pins to the same shard.
func (p *SessionPool) do(ctx context.Context, txnID string, op func(transport.Conn) error) error {
	si := p.ShardOf(txnID)
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return CheckContext(ctx)
	}
	defer func() { <-p.sem }()

	backoff := p.opt.Backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := CheckContext(ctx); err != nil {
			return err
		}
		conn, err := p.acquire(ctx, si)
		if err == nil {
			err = op(conn)
			if err == nil {
				p.release(conn, si)
				return nil
			}
			// The connection's protocol state is unknown mid-failure:
			// discard it rather than poison the free list.
			conn.Close()
			if !transientFault(err) {
				return err
			}
		} else if !transientFault(err) {
			return err
		}
		lastErr = err
		if attempt >= p.opt.Retries {
			// %w on the last error: callers classify the exhausted result
			// (was it overload? degraded mode?) through the chain.
			return fmt.Errorf("%w: last error: %w", ErrRetriesExhausted, lastErr)
		}
		p.met.retries.Inc()
		var delay time.Duration
		delay, backoff = jitterBackoff(backoff, p.opt.MaxBackoff, p.randInt63n)
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return CheckContext(ctx)
		}
	}
}

// randInt63n draws from the pool's jitter source (do runs on many
// goroutines; math/rand.Rand is not concurrency-safe).
func (p *SessionPool) randInt63n(n int64) int64 {
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return p.rng.Int63n(n)
}

// jitterBackoff turns the current backoff base into the actual sleep
// and the next base. The base is capped at max BEFORE jittering, the
// sleep is drawn uniformly from [base/2, 3*base/2) — ±50%, so clients
// that failed together desynchronize — and the next base doubles with
// an overflow-proof clamp (the old unbounded doubling overflowed int64
// after ~45 attempts and produced negative timer values).
func jitterBackoff(cur, max time.Duration, randInt63n func(int64) int64) (delay, next time.Duration) {
	if cur > max {
		cur = max
	}
	if cur <= 0 {
		cur = time.Millisecond
	}
	delay = cur/2 + time.Duration(randInt63n(int64(cur)))
	if cur > max/2 {
		next = max
	} else {
		next = cur * 2
	}
	return delay, next
}

// escalableUpload reports whether a failed upload is §4.3 grounds for
// the TTP escalation path: a silent provider (ErrTimeout), an expired
// session (the provider holds an abort receipt for us to collect), or
// exhausted transport retries. Overload, degraded-mode and
// quorum-unavailable refusals are NOT — the provider answered; there
// is no dispute, only a peer asking us to come back later.
func escalableUpload(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrExpired) ||
		(errors.Is(err, ErrRetriesExhausted) &&
			!errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrDegraded) &&
			!errors.Is(err, ErrQuorumUnavailable))
}

// transientFault reports whether an error is worth retrying on a new
// connection: transport breakage and overload sheds are, definitive
// protocol outcomes (including permanent rejections, expiry and
// degraded-mode refusals) and cancellation are not — retrying cannot
// change a signed answer.
func transientFault(err error) bool {
	if errors.Is(err, ErrOverloaded) {
		// The peer shed us under admission control: explicitly retryable
		// (with backoff), and checked first because the control frame
		// carries no protocol sentinel to trip the list below.
		return true
	}
	if errors.Is(err, ErrQuorumUnavailable) {
		// The provider's replication group lost its write quorum — a
		// transient cluster condition that anti-entropy repairs without
		// operator action, so retry with backoff (and, above, never
		// escalate: the provider answered with a signed refusal).
		return true
	}
	switch {
	case errors.Is(err, ErrCancelled),
		errors.Is(err, ErrTimeout),
		errors.Is(err, ErrProtocol),
		errors.Is(err, ErrPeerRejected),
		errors.Is(err, ErrIntegrity),
		errors.Is(err, ErrUnknownIdentity),
		errors.Is(err, ErrExpired),
		errors.Is(err, ErrDegraded):
		return false
	}
	return true
}

// acquire pops an idle connection from shard si's free list or dials a
// new one (through the per-shard dialer when configured).
func (p *SessionPool) acquire(ctx context.Context, si int) (transport.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: session pool closed", ErrCancelled)
	}
	if n := len(p.idle[si]); n > 0 {
		conn := p.idle[si][n-1]
		p.idle[si] = p.idle[si][:n-1]
		p.mu.Unlock()
		p.met.idleHits.Inc()
		return conn, nil
	}
	p.mu.Unlock()
	p.met.idleMisses.Inc()
	if p.opt.ShardDial != nil {
		return p.opt.ShardDial(ctx, si)
	}
	return p.dial(ctx)
}

// release returns a healthy connection to shard si's free list.
func (p *SessionPool) release(conn transport.Conn, si int) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.idle[si] = append(p.idle[si], conn)
	p.mu.Unlock()
}

// Close stops the background audit loop and discards the pool's idle
// connections; operations already in flight finish on their borrowed
// connections.
func (p *SessionPool) Close() error {
	p.stopAuditLoop()
	p.mu.Lock()
	idle := p.idle
	p.idle = make([][]transport.Conn, len(p.idle))
	p.closed = true
	p.mu.Unlock()
	for _, list := range idle {
		for _, c := range list {
			c.Close()
		}
	}
	return nil
}
