// Package core implements the paper's primary contribution: the
// Two-Party Non-Repudiation (TPNR) protocol for cloud storage (§4).
//
// Four roles participate (Fig. 6a): the Client (Alice), the Cloud
// Storage Provider (Bob), a Trusted Third Party, and an Arbitrator.
// This package provides the Client and Provider engines and the wire
// message format; the TTP and Arbitrator live in internal/ttp and
// internal/arbitrator.
//
// Three modes (§4.4):
//
//   - Normal: Alice and Bob exchange message + evidence directly in two
//     steps, TTP off-line (Fig. 6b). Alice's step carries the NRO, Bob's
//     reply the NRR.
//   - Abort: Alice cancels an ongoing transaction by sending the
//     transaction ID with an abort NRO; Bob answers Accept or Reject
//     with an NRR — still without TTP (§4.2).
//   - Resolve: when a response does not arrive before the time limit,
//     the disadvantaged party escalates to the in-line TTP, which
//     queries the peer and either relays its evidence or issues a
//     signed unresponsiveness statement (§4.3).
//
// Disputes are settled off-line by the arbitrator over the archived
// evidence (Fig. 6d).
package core

import (
	"fmt"

	"repro/internal/evidence"
	"repro/internal/wire"
)

// Message is the TPNR wire unit: a plaintext header, an optional bulk
// payload (object data), and the sealed evidence for the recipient.
type Message struct {
	// HeaderBytes is the canonical encoding of the plaintext header.
	// Kept in encoded form so signatures verify against exactly what
	// traveled.
	HeaderBytes []byte
	// Payload carries object data on upload (NRO) and download
	// response messages; empty otherwise.
	Payload []byte
	// Sealed is the evidence ciphertext, encrypted for the recipient.
	Sealed []byte
}

// Header decodes the plaintext header.
func (m *Message) Header() (*evidence.Header, error) {
	return evidence.DecodeHeader(m.HeaderBytes)
}

// Encode serializes the message for framing.
func (m *Message) Encode() []byte {
	e := wire.NewEncoder(len(m.HeaderBytes) + len(m.Payload) + len(m.Sealed) + 32)
	e.String("tpnr-msg-v1")
	e.Bytes32(m.HeaderBytes)
	e.Bytes32(m.Payload)
	e.Bytes32(m.Sealed)
	return e.Bytes()
}

// DecodeMessage reverses Encode. Unsigned control frames (overload
// sheds) decode to their typed error so every receive site classifies
// them without caring about framing.
func DecodeMessage(b []byte) (*Message, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != "tpnr-msg-v1" {
		if magic == ctlMagic {
			return nil, decodeControlErr(d)
		}
		return nil, fmt.Errorf("core: bad message magic %q", magic)
	}
	m := &Message{
		HeaderBytes: d.Bytes32(),
		Payload:     d.Bytes32(),
		Sealed:      d.Bytes32(),
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("core: decoding message: %w", err)
	}
	return m, nil
}
