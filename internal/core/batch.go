package core

import (
	"fmt"
	"sort"

	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// BatchHandler is optionally implemented by handlers that can process
// a drained round of inbound messages together — decrypting each, then
// verifying every evidence signature in one batched call instead of
// message-by-message. Replies align with raws (nil = deliberate
// silence); errs align likewise (nil = handled cleanly).
type BatchHandler interface {
	HandleBatch(raws [][]byte) (replies [][]byte, errs []error)
}

// HandleBatch processes a round of encoded messages: each is decoded,
// guarded and decrypted individually, then ALL evidence signatures are
// verified in one evidence.VerifyBatch call (parallel workers,
// per-scheme batching, cache peel-off) before the per-kind handlers
// run in order. One bad item only fails its own slot — the batch
// verifier falls back to singles to pinpoint it.
func (b *Provider) HandleBatch(raws [][]byte) ([][]byte, []error) {
	replies := make([][]byte, len(raws))
	errs := make([]error, len(raws))
	msgs := make([]*Message, len(raws))
	headers := make([]*evidence.Header, len(raws))
	evs := make([]*evidence.Evidence, len(raws))

	entries := make([]evidence.BatchEntry, 0, len(raws))
	entryIdx := make([]int, 0, len(raws))
	for i, raw := range raws {
		b.ctr.Inc(metrics.MsgsRecv, 1)
		m, err := DecodeMessage(raw)
		if err != nil {
			errs[i] = fmt.Errorf("%w: %v", ErrProtocol, err)
			continue
		}
		msgs[i] = m
		h, ev, key, err := b.checkInboundNoVerify(m)
		if err != nil {
			errs[i] = err
			continue
		}
		headers[i], evs[i] = h, ev
		entries = append(entries, evidence.BatchEntry{Ev: ev, Sender: key})
		entryIdx = append(entryIdx, i)
	}

	failed := evidence.VerifyBatch(entries, b.vcache)
	for j, i := range entryIdx {
		if err, bad := failed[j]; bad {
			b.ctr.Inc(metrics.AuthFailures, 1)
			errs[i] = fmt.Errorf("%w: %v", ErrProtocol, err)
			headers[i] = nil // reroute to the error-reply path below
			continue
		}
		b.ctr.Inc(metrics.VerifyOps, 2)
	}

	for i := range raws {
		var reply *Message
		var err error
		switch {
		case headers[i] != nil:
			reply, err = b.dispatch(headers[i], evs[i], msgs[i].Payload)
		case errs[i] != nil && msgs[i] != nil:
			// Same contract as the serial path: answer with a signed
			// error when the header at least decodes, else stay silent.
			if hdr, herr := msgs[i].Header(); herr == nil && hdr.SenderID != "" {
				reply, _ = b.errorReply(hdr, errs[i].Error())
			}
			err = errs[i]
		default:
			err = errs[i]
		}
		errs[i] = err
		if reply != nil {
			enc := reply.Encode()
			b.ctr.Inc(metrics.MsgsSent, 1)
			b.ctr.Inc(metrics.BytesSent, int64(len(enc)))
			replies[i] = enc
		}
	}
	return replies, errs
}

// serveConnBatched is the batch-drain variant of the per-connection
// loop (ServerBatchDrain): a reader goroutine pumps raw messages into
// a bounded channel; each round blocks for the first message, then
// drains whatever else has already arrived (up to the round cap) and
// hands the whole round to the BatchHandler, which verifies all
// signatures in one batched call. Replies go back in arrival order, so
// per-connection request/response ordering is preserved.
func (s *Server) serveConnBatched(conn transport.Conn, bh BatchHandler) {
	recvCh := make(chan []byte, s.batchCap)
	go func() {
		defer close(recvCh)
		for {
			raw, err := conn.Recv()
			if err != nil {
				return
			}
			recvCh <- raw
		}
	}()
	for {
		first, ok := <-recvCh
		if !ok {
			return
		}
		raws := [][]byte{first}
	drain:
		for len(raws) < s.batchCap {
			select {
			case raw, ok := <-recvCh:
				if !ok {
					break drain
				}
				raws = append(raws, raw)
			default:
				break drain
			}
		}
		if s.overloaded() {
			for _, raw := range raws {
				s.shed(conn, nil, raw)
			}
			continue
		}
		if !s.beginMsg() {
			return
		}
		s.inflightNow.Add(1)
		replies, errs := s.handleRound(bh, raws)
		s.inflightNow.Add(-1)
		s.inflight.Done()
		for i, raw := range raws {
			s.met.msgs.Inc()
			if errs != nil && errs[i] != nil {
				s.recordHandlerError(errs[i])
			}
			transport.Recycle(raw)
			if replies != nil && replies[i] != nil {
				if err := conn.Send(replies[i]); err != nil {
					return
				}
			}
		}
	}
}

// handleRound runs one drained round under every involved transaction
// shard lock (acquired in shard order, so concurrent rounds on other
// connections cannot deadlock), converting a handler panic into
// per-message errors like handleOne does.
func (s *Server) handleRound(bh BatchHandler, raws [][]byte) (replies [][]byte, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.met.panics.Inc()
			replies = make([][]byte, len(raws))
			errs = make([]error, len(raws))
			for i := range errs {
				errs[i] = fmt.Errorf("%w: %w: %v", ErrProtocol, errHandlerPanic, r)
			}
		}
	}()
	faultpoint.Hit(fpServerHandleSlow)
	seen := make(map[uint32]bool, len(raws))
	shards := make([]int, 0, len(raws))
	for _, raw := range raws {
		if txn, ok := txnOf(raw); ok {
			if sh := shardOf(txn); !seen[sh] {
				seen[sh] = true
				shards = append(shards, int(sh))
			}
		}
	}
	sort.Ints(shards)
	for _, sh := range shards {
		s.shards[sh].Lock()
	}
	defer func() {
		for _, sh := range shards {
			s.shards[sh].Unlock()
		}
	}()
	return bh.HandleBatch(raws)
}

// Compile-time check: the Provider supports batched verification.
var _ BatchHandler = (*Provider)(nil)
