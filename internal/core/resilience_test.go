package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/leakcheck"
	"repro/internal/wal"
)

// newDeadlineDeploy wires a deployment whose provider enforces a step
// deadline; the short response timeout keeps the stalled-upload tests
// fast.
func newDeadlineDeploy(t testing.TB, step time.Duration, extra ...core.ServerOption) *deploy.Deployment {
	t.Helper()
	d, err := deploy.New(deploy.Config{
		TestKeys:           true,
		ResponseTimeout:    150 * time.Millisecond,
		ProviderOpts:       []core.Option{core.WithDeadlinePolicy(core.DeadlinePolicy{Step: step})},
		ProviderServerOpts: extra,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestExpireStaleIssuesAbortReceipt drives the tentpole end to end: a
// provider bound by an NRO whose client never completes is expired,
// the blob is deleted, and the client recovers a provable abort via
// Resolve — the transaction ends decided, not dangling.
func TestExpireStaleIssuesAbortReceipt(t *testing.T) {
	leakcheck.At(t)
	d := newDeadlineDeploy(t, 30*time.Millisecond)
	conn := mustDial(t, d)

	// Bob stores the data and the NRO but withholds the receipt; Alice
	// times out with the session stuck at EvidenceReceived.
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	_, err := d.Client.Upload(context.Background(), conn, "txn-exp", "k/expired", []byte("stale payload"))
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("stalled upload: want ErrTimeout, got %v", err)
	}
	d.Provider.SetMisbehavior(core.Misbehavior{})

	// Reap with a far-future now so the test does not sleep.
	if n := d.Provider.ExpireStale(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("ExpireStale expired %d sessions, want 1", n)
	}
	// Expiry must unbind the provider: blob deleted, abort receipt
	// archived. Holding the data while refusing the receipt is exactly
	// the §3 repudiation position the protocol exists to prevent.
	if _, err := d.Store.Get("k/expired"); err == nil {
		t.Fatal("expired session left its blob in the store")
	}
	if _, err := d.Provider.Archive().ByKind("txn-exp", evidence.RoleOwn, evidence.KindAbortAccept); err != nil {
		t.Fatalf("expired session has no abort receipt: %v", err)
	}
	// A second reap finds nothing: expiry is exactly-once.
	if n := d.Provider.ExpireStale(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("second ExpireStale expired %d sessions, want 0", n)
	}

	// Alice resolves and receives the relayed abort receipt — her
	// provable outcome for the dispute invariant.
	ttpConn, err := d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	rr, err := d.Client.Resolve(context.Background(), ttpConn, "txn-exp", "no NRR before timeout")
	if err != nil {
		t.Fatalf("resolve after expiry: %v", err)
	}
	if rr.PeerEvidence == nil || rr.PeerEvidence.Header.Kind != evidence.KindAbortAccept {
		t.Fatalf("resolve outcome %q did not relay the abort receipt", rr.Outcome)
	}
}

// TestLateMessageOnExpiredSession checks the lazy half of expiry: a
// message arriving for an overdue session expires it inline and the
// sender gets a typed ErrExpired, not a hung session.
func TestLateMessageOnExpiredSession(t *testing.T) {
	leakcheck.At(t)
	d := newDeadlineDeploy(t, 30*time.Millisecond)
	conn := mustDial(t, d)

	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	if _, err := d.Client.Upload(context.Background(), conn, "txn-late", "k/late", []byte("v")); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("stalled upload: want ErrTimeout, got %v", err)
	}
	d.Provider.SetMisbehavior(core.Misbehavior{})

	// The 150ms client timeout already overran the 30ms step deadline;
	// the retried NRO must hit the inline expiry check.
	conn2 := mustDial(t, d)
	_, err := d.Client.Upload(context.Background(), conn2, "txn-late", "k/late", []byte("v"))
	if !errors.Is(err, core.ErrExpired) {
		t.Fatalf("late retry: want ErrExpired, got %v", err)
	}
}

// TestServerExpiryReaper runs the background reaper inside
// core.Server and checks a stale session is expired without any
// explicit ExpireStale call — and that the reaper goroutine stops on
// Shutdown (leakcheck).
func TestServerExpiryReaper(t *testing.T) {
	leakcheck.At(t)
	var d *deploy.Deployment
	d = newDeadlineDeploy(t, 30*time.Millisecond,
		core.ServerExpiry(clock.Real(), 10*time.Millisecond, func(now time.Time) int {
			return d.Provider.ExpireStale(now)
		}))
	conn := mustDial(t, d)

	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	if _, err := d.Client.Upload(context.Background(), conn, "txn-reap", "k/reap", []byte("v")); !errors.Is(err, core.ErrTimeout) {
		t.Fatal("expected stalled upload to time out")
	}
	d.Provider.SetMisbehavior(core.Misbehavior{})

	// The client blocked 150ms; deadline passed at 30ms; the 10ms
	// reaper should have expired the session already — poll briefly to
	// absorb scheduler noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := d.Provider.Archive().ByKind("txn-reap", evidence.RoleOwn, evidence.KindAbortAccept); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reaper never expired the stale session")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := d.Store.Get("k/reap"); err == nil {
		t.Fatal("reaper left the expired session's blob behind")
	}
}

// TestOverloadShedsWithRetryableError holds the server's one handler
// slot busy and checks the next request is shed with the typed,
// unsigned, retryable overload frame.
func TestOverloadShedsWithRetryableError(t *testing.T) {
	leakcheck.At(t)
	block := make(chan struct{})
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(block) }) }
	entered := make(chan struct{}, 1)
	faultpoint.Arm("server.handle.slow", func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-block
	})
	defer faultpoint.Reset()
	defer release()

	d, err := deploy.New(deploy.Config{
		TestKeys:           true,
		ResponseTimeout:    2 * time.Second,
		ProviderServerOpts: []core.ServerOption{core.ServerMaxInflight(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	// First upload occupies the only handler slot.
	first := make(chan error, 1)
	conn1 := mustDial(t, d)
	go func() {
		_, err := d.Client.Upload(context.Background(), conn1, "txn-slow", "k/slow", []byte("a"))
		first <- err
	}()
	<-entered

	// Second upload must be shed, not queued behind the stuck handler.
	conn2 := mustDial(t, d)
	_, err = d.Client.Upload(context.Background(), conn2, "txn-shed", "k/shed", []byte("b"))
	if !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("second upload under full server: want ErrOverloaded, got %v", err)
	}

	// Release the slot; the first upload completes normally — shedding
	// never cancels admitted work.
	faultpoint.Disarm("server.handle.slow")
	release()
	if err := <-first; err != nil {
		t.Fatalf("admitted upload failed after slot freed: %v", err)
	}
}

// TestDegradedJournalRefusesNewServesOld poisons the provider's WAL
// mid-run (ENOSPC at append) and checks the §4 degradation contract:
// new sessions are refused with a typed ErrDegraded, while reads on
// already-stored objects keep working.
func TestDegradedJournalRefusesNewServesOld(t *testing.T) {
	leakcheck.At(t)
	journal, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	d, err := deploy.New(deploy.Config{
		TestKeys:        true,
		ResponseTimeout: 150 * time.Millisecond,
		ProviderOpts:    []core.Option{core.WithJournal(journal)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	conn := mustDial(t, d)

	if _, err := d.Client.Upload(context.Background(), conn, "txn-ok", "k/ok", []byte("healthy")); err != nil {
		t.Fatalf("healthy upload: %v", err)
	}

	// The disk fills: the next append fails and the WAL goes sticky
	// read-only.
	faultpoint.ArmErr("wal.append.enospc", func() error {
		return errors.New("write: no space left on device")
	})
	defer faultpoint.Reset()
	// This upload's journal append fails before the ack; the client
	// times out (the provider will not ack what it cannot persist).
	if _, err := d.Client.Upload(context.Background(), conn, "txn-trip", "k/trip", []byte("x")); err == nil {
		t.Fatal("upload with failing journal succeeded")
	}
	faultpoint.Disarm("wal.append.enospc")

	if d.Provider.Health() == nil || !d.Provider.Degraded() {
		t.Fatal("provider not degraded after journal append failure")
	}

	// New sessions are refused with the typed sentinel...
	conn2 := mustDial(t, d)
	if _, err := d.Client.Upload(context.Background(), conn2, "txn-new", "k/new", []byte("y")); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("upload to degraded provider: want ErrDegraded, got %v", err)
	}
	// ...while existing data stays retrievable: degraded, not dead.
	res, err := d.Client.Download(context.Background(), conn2, "txn-dl", "k/ok", "txn-ok")
	if err != nil {
		t.Fatalf("download from degraded provider: %v", err)
	}
	if string(res.Data) != "healthy" {
		t.Fatal("degraded provider served wrong bytes")
	}
}

// TestBreakerFastFailsThenRecovers trips the session pool's TTP
// breaker with a dial blackhole, checks escalation fast-fails with
// ErrTTPUnavailable instead of burning dial timeouts, and then checks
// a half-open probe after the cooldown closes the breaker and the
// resolve completes.
func TestBreakerFastFailsThenRecovers(t *testing.T) {
	leakcheck.At(t)
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	br := breaker.New(breaker.Options{
		Window:       4,
		MinSamples:   2,
		FailureRatio: 0.5,
		Cooldown:     50 * time.Millisecond,
	})
	pool := d.NewPool(
		core.PoolRetries(2),
		core.PoolBackoff(time.Millisecond),
		core.PoolBreaker(br),
	)
	t.Cleanup(func() { pool.Close() })

	// TTP dials vanish; Bob also goes silent so the upload escalates.
	faultpoint.ArmErr("pool.ttp.dial-blackhole", func() error {
		return errors.New("dial ttp: network unreachable")
	})
	defer faultpoint.Reset()
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	_, err = pool.Upload(context.Background(), "txn-br", "k/br", []byte("v"))
	d.Provider.SetMisbehavior(core.Misbehavior{})
	if err == nil {
		t.Fatal("escalation with blackholed TTP succeeded")
	}
	// Attempt 1 and 2 fail at the dial; the breaker trips at two
	// samples, so the final attempt must be the fast-fail.
	if !errors.Is(err, core.ErrTTPUnavailable) {
		t.Fatalf("want ErrTTPUnavailable in chain, got %v", err)
	}
	if br.State() != breaker.Open {
		t.Fatalf("breaker state %v after repeated dial failures, want Open", br.State())
	}

	// Network heals; after the cooldown one probe is admitted, the
	// resolve reaches the TTP (Bob holds the NRO, so it relays the
	// receipt) and the breaker closes.
	faultpoint.Disarm("pool.ttp.dial-blackhole")
	time.Sleep(60 * time.Millisecond)
	rr, err := pool.Resolve(context.Background(), "txn-br", "NRR withheld; retrying after breaker cooldown")
	if err != nil {
		t.Fatalf("resolve after breaker cooldown: %v", err)
	}
	if rr.PeerEvidence == nil {
		t.Fatalf("resolve outcome %q carried no relayed evidence", rr.Outcome)
	}
	if br.State() != breaker.Closed {
		t.Fatalf("breaker state %v after successful probe, want Closed", br.State())
	}
}
