package core

import (
	"errors"

	"repro/internal/obs"
)

// Metric names the core runtime reports (DESIGN.md §9). Error classes
// are a small fixed set encoded into the counter name with
// obs.Labeled, so each class is one atomic add on the error path.
const (
	metricServerMsgs       = "server_msgs_total"
	metricServerErrors     = "server_handler_errors_total"
	metricServerPanics     = "server_panics_total"
	metricServerActive     = "server_active_conns"
	metricServerLatency    = "server_handle_latency_ns"
	metricServerShed       = "server_shed_total"
	metricServerExpired    = "server_expired_sessions_total"
	metricPoolRetries      = "pool_retries_total"
	metricPoolEscalations  = "pool_escalations_total"
	metricPoolIdleHits     = "pool_idle_hits_total"
	metricPoolIdleMisses   = "pool_idle_misses_total"
	metricPoolTTPFastFails = "pool_ttp_fast_fails_total"
)

// errorClasses is the closed set of handler-error classes; "other"
// catches anything outside the protocol sentinels.
var errorClasses = []string{
	"panic", "protocol", "timeout", "peer_rejected", "integrity",
	"unknown_identity", "cancelled", "expired", "overloaded",
	"degraded", "other",
}

// errHandlerPanic tags errors synthesized from a recovered handler
// panic so they classify as "panic" rather than the generic protocol
// violation they also wrap.
var errHandlerPanic = errors.New("handler panic")

// errorClass buckets a handler error for the per-class counters.
// Order matters: a recovered panic wraps ErrProtocol too, so the panic
// tag is checked first.
func errorClass(err error) string {
	switch {
	case errors.Is(err, errHandlerPanic):
		return "panic"
	case errors.Is(err, ErrProtocol):
		return "protocol"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrPeerRejected):
		return "peer_rejected"
	case errors.Is(err, ErrIntegrity):
		return "integrity"
	case errors.Is(err, ErrUnknownIdentity):
		return "unknown_identity"
	case errors.Is(err, ErrCancelled):
		return "cancelled"
	case errors.Is(err, ErrExpired):
		return "expired"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrDegraded):
		return "degraded"
	default:
		return "other"
	}
}

// coreDegradedSkips counts journal appends skipped because the journal
// was already poisoned (degraded mode keeps draining sessions
// memory-only). Package-level because the skip happens in party
// plumbing that carries no registry reference.
var coreDegradedSkips = obs.Default().Counter("core_journal_degraded_skips_total")

// serverMetrics holds the Server's pre-resolved metric handles: one
// registry lookup at construction, one atomic op per event on the hot
// path.
type serverMetrics struct {
	msgs       *obs.Counter
	errs       *obs.Counter
	errByClass map[string]*obs.Counter
	panics     *obs.Counter
	active     *obs.Gauge
	latency    *obs.Histogram
	shed       *obs.Counter
	expired    *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		msgs:       reg.Counter(metricServerMsgs),
		errs:       reg.Counter(metricServerErrors),
		errByClass: make(map[string]*obs.Counter, len(errorClasses)),
		panics:     reg.Counter(metricServerPanics),
		active:     reg.Gauge(metricServerActive),
		latency:    reg.Histogram(metricServerLatency, obs.DurationBuckets),
		shed:       reg.Counter(metricServerShed),
		expired:    reg.Counter(metricServerExpired),
	}
	for _, class := range errorClasses {
		m.errByClass[class] = reg.Counter(obs.Labeled(metricServerErrors, "class", class))
	}
	return m
}

// poolMetrics is the SessionPool counterpart.
type poolMetrics struct {
	retries      *obs.Counter
	escalations  *obs.Counter
	idleHits     *obs.Counter
	idleMisses   *obs.Counter
	ttpFastFails *obs.Counter
}

func newPoolMetrics(reg *obs.Registry) *poolMetrics {
	return &poolMetrics{
		retries:      reg.Counter(metricPoolRetries),
		escalations:  reg.Counter(metricPoolEscalations),
		idleHits:     reg.Counter(metricPoolIdleHits),
		idleMisses:   reg.Counter(metricPoolIdleMisses),
		ttpFastFails: reg.Counter(metricPoolTTPFastFails),
	}
}
