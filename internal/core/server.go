package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Handler processes one encoded protocol message and returns the
// encoded reply (nil for deliberate silence) plus the handling error.
// Provider and the ttp package's Server both satisfy it, so one
// Server implementation fronts every daemon in the system.
type Handler interface {
	Handle(raw []byte) ([]byte, error)
}

// txnShards sizes the sharded per-transaction mutex. 64 shards keep
// lock contention negligible for hundreds of concurrent transactions
// while bounding memory to a fixed array.
const txnShards = 64

// Server is the concurrent TPNR runtime: it accepts connections from a
// transport.Listener, serves each on its own goroutine, serializes
// messages of the same transaction through a sharded mutex (so
// independent uploads/downloads/resolves proceed in parallel while
// same-txn messages never interleave inside the handler), isolates
// handler panics per connection, and drains in-flight sessions on
// graceful shutdown.
type Server struct {
	h Handler
	// th is non-nil when h also routes on the transaction ID (the
	// ShardedEngine): the txn peeked for lock sharding is passed down
	// so the handler never parses the frame a second time.
	th  TxnHandler
	met *serverMetrics
	log *obs.Logger

	shards [txnShards]sync.Mutex

	mu        sync.Mutex
	draining  bool
	listeners []transport.Listener
	conns     map[transport.Conn]struct{}

	// inflight counts message handlings in progress; Shutdown waits for
	// it before closing connections. Add happens under mu with a
	// draining check, so no Add can race a Wait.
	inflight sync.WaitGroup
	// connWG counts per-connection goroutines.
	connWG sync.WaitGroup

	panics atomic.Int64

	// Admission control (ServerMaxInflight / ServerConnPending).
	// maxInflight==0 means unlimited; pendingCap<=1 keeps the strict
	// serial per-connection path.
	maxInflight int64
	pendingCap  int
	batchCap    int
	inflightNow atomic.Int64

	// Expiry reaper (ServerExpiry). The goroutine starts in NewServer
	// and stops in Shutdown.
	expClk   clock.Clock
	expEvery time.Duration
	expFn    func(now time.Time) int
	expStop  chan struct{}
	expDone  chan struct{}
	expOnce  sync.Once
}

// ServerOption adjusts a Server's observability wiring.
type ServerOption func(*serverConfig)

type serverConfig struct {
	reg *obs.Registry
	log *obs.Logger

	maxInflight int64
	pendingCap  int
	batchCap    int

	expClk   clock.Clock
	expEvery time.Duration
	expFn    func(now time.Time) int
}

// ServerRegistry directs the server's metrics (messages handled,
// handler errors by class, panics, active connections, per-message
// latency histogram) into reg instead of the process-wide default.
func ServerRegistry(r *obs.Registry) ServerOption {
	return func(c *serverConfig) { c.reg = r }
}

// ServerLogger attaches a structured-event logger; handler errors and
// panics emit events through it. Nil (the default) logs nothing.
func ServerLogger(l *obs.Logger) ServerOption {
	return func(c *serverConfig) { c.log = l }
}

// ServerMaxInflight caps concurrently executing handlers across all
// connections. A message arriving over the cap is shed with an
// unsigned overload control frame (the client sees ErrOverloaded and
// backs off) instead of queueing without bound — bounded work beats
// unbounded latency under a burst. 0 (the default) means unlimited.
func ServerMaxInflight(n int) ServerOption {
	return func(c *serverConfig) { c.maxInflight = int64(n) }
}

// ServerConnPending sets the per-connection pipeline depth: how many
// messages from one connection may be handled at once, replies sent as
// each completes. 1 (the default) preserves the strict serial
// receive→handle→reply loop; >1 enables pipelining with receive-side
// backpressure once the depth is reached.
func ServerConnPending(n int) ServerOption {
	return func(c *serverConfig) { c.pendingCap = n }
}

// ServerBatchDrain enables batched inbound verification for handlers
// that implement BatchHandler (the Provider does): each connection
// round blocks for one message, drains up to n-1 more that have
// already arrived, and verifies the whole round's evidence signatures
// in one batched call. n <= 1 (the default) keeps the serial path.
// Mutually exclusive with ServerConnPending's pipelining; batch drain
// wins when both are set.
func ServerBatchDrain(n int) ServerOption {
	return func(c *serverConfig) { c.batchCap = n }
}

// ServerExpiry runs a reaper goroutine that calls expire with the
// current time every interval; expire returns how many sessions it
// expired (counted on server_expired_sessions_total). Wire a
// Provider's ExpireStale here to enforce its DeadlinePolicy. The
// reaper starts with the server and stops in Shutdown.
func ServerExpiry(clk clock.Clock, every time.Duration, expire func(now time.Time) int) ServerOption {
	return func(c *serverConfig) {
		c.expClk, c.expEvery, c.expFn = clk, every, expire
	}
}

// NewServer wraps a message handler in a concurrent server.
func NewServer(h Handler, opts ...ServerOption) *Server {
	cfg := serverConfig{reg: obs.Default()}
	for _, fn := range opts {
		fn(&cfg)
	}
	th, _ := h.(TxnHandler)
	s := &Server{
		h:           h,
		th:          th,
		met:         newServerMetrics(cfg.reg),
		log:         cfg.log,
		conns:       make(map[transport.Conn]struct{}),
		maxInflight: cfg.maxInflight,
		pendingCap:  cfg.pendingCap,
		batchCap:    cfg.batchCap,
	}
	if cfg.expFn != nil {
		s.expClk, s.expEvery, s.expFn = cfg.expClk, cfg.expEvery, cfg.expFn
		if s.expClk == nil {
			s.expClk = clock.Real()
		}
		if s.expEvery <= 0 {
			s.expEvery = time.Second
		}
		s.expStop = make(chan struct{})
		s.expDone = make(chan struct{})
		go s.reap()
	}
	return s
}

// reap is the expiry reaper loop: every expEvery it hands the current
// time to the configured expire callback and counts what it reaped.
func (s *Server) reap() {
	defer close(s.expDone)
	for {
		select {
		case <-s.expStop:
			return
		case <-s.expClk.After(s.expEvery):
			if n := s.expFn(s.expClk.Now()); n > 0 {
				s.met.expired.Add(int64(n))
				s.log.Info("sessions_expired", obs.F("count", n))
			}
		}
	}
}

// stopReaper halts the expiry goroutine; safe to call repeatedly.
func (s *Server) stopReaper() {
	if s.expFn == nil {
		return
	}
	s.expOnce.Do(func() { close(s.expStop) })
	<-s.expDone
}

// Serve accepts connections on l until the listener closes, Shutdown
// is called (returning nil), or ctx terminates (returning
// ErrCancelled; connections then close as their in-flight message
// completes). Serve may be called on several listeners concurrently —
// one Server can front an in-memory and a TCP listener at once.
func (s *Server) Serve(ctx context.Context, l transport.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("core: server is shut down")
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()

	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()

	for {
		conn, err := l.Accept()
		if err != nil {
			if cerr := CheckContext(ctx); cerr != nil {
				return cerr
			}
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		if !s.register(conn) {
			conn.Close()
			return nil
		}
		go s.serveConn(ctx, conn)
	}
}

// register tracks an accepted connection; it refuses (false) while
// draining so Shutdown never loses a connection it should close. The
// connWG.Add must happen here, under the same mutex that Shutdown
// uses to set draining: a bare Add after register returns could race
// with Shutdown's Wait when the accepting goroutine deschedules
// between the two.
func (s *Server) register(conn transport.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[conn] = struct{}{}
	s.connWG.Add(1)
	s.met.active.Inc()
	return true
}

func (s *Server) unregister(conn transport.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.met.active.Dec()
}

// serveConn is the per-connection loop: receive, handle under the
// transaction lock, reply. A handler panic is confined to this
// connection — it is counted, the connection closes, and every other
// session proceeds undisturbed.
func (s *Server) serveConn(ctx context.Context, conn transport.Conn) {
	defer s.connWG.Done()
	defer s.unregister(conn)
	defer conn.Close()
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.met.panics.Inc()
			s.log.Error("conn_panic", obs.F("panic", r))
		}
	}()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close() // unblock the pending Recv
		case <-done:
		}
	}()
	if s.batchCap > 1 {
		if bh, ok := s.h.(BatchHandler); ok {
			s.serveConnBatched(conn, bh)
			return
		}
	}
	if s.pendingCap > 1 {
		s.serveConnPipelined(conn)
		return
	}
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		if s.overloaded() {
			s.shed(conn, nil, raw)
			continue
		}
		if !s.beginMsg() {
			return
		}
		s.inflightNow.Add(1)
		start := time.Now()
		reply, err := s.handleOne(raw)
		s.met.latency.ObserveSince(start)
		s.met.msgs.Inc()
		s.inflightNow.Add(-1)
		s.inflight.Done()
		if err != nil {
			// Handler errors used to be dropped on the floor here,
			// leaving protocol rejections, auth failures and recovered
			// panics invisible to operators. Count them by class and emit
			// a structured event; the wire behavior (reply or deliberate
			// silence) is unchanged.
			s.recordHandlerError(err)
		}
		// The handler decoded (copied) what it needed; the inbound
		// buffer can go back to the transport pool.
		transport.Recycle(raw)
		if reply != nil {
			if err := conn.Send(reply); err != nil {
				return
			}
		}
	}
}

// serveConnPipelined is the depth-N variant of the per-connection
// loop: up to pendingCap messages from this connection are handled
// concurrently (still serialized per transaction by the shard locks),
// replies sent as each completes under a per-connection send mutex.
// The slot channel gives receive-side backpressure — once the depth is
// reached the loop stops reading, which is TCP's own flow control
// doing the queueing instead of this process's memory.
func (s *Server) serveConnPipelined(conn transport.Conn) {
	var sendMu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	slots := make(chan struct{}, s.pendingCap)
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		if s.overloaded() {
			s.shed(conn, &sendMu, raw)
			continue
		}
		slots <- struct{}{}
		if !s.beginMsg() {
			<-slots
			return
		}
		s.inflightNow.Add(1)
		wg.Add(1)
		go func(raw []byte) {
			defer wg.Done()
			defer func() { <-slots }()
			start := time.Now()
			reply, err := s.handleOne(raw)
			s.met.latency.ObserveSince(start)
			s.met.msgs.Inc()
			s.inflightNow.Add(-1)
			s.inflight.Done()
			if err != nil {
				s.recordHandlerError(err)
			}
			transport.Recycle(raw)
			if reply != nil {
				sendMu.Lock()
				conn.Send(reply)
				sendMu.Unlock()
			}
		}(raw)
	}
}

// overloaded reports whether admission control refuses new work right
// now. The load check is read-then-add, so a burst can briefly exceed
// the cap by the number of racing connections — an approximate cap is
// fine; the point is that queue depth stays bounded.
func (s *Server) overloaded() bool {
	return s.maxInflight > 0 && s.inflightNow.Load() >= s.maxInflight
}

// shed refuses one message under overload: the buffer goes straight
// back to the pool and the client gets an unsigned control frame
// telling it to back off and retry. Deliberately unsigned — shedding
// exists to protect the server from work, and two RSA signatures per
// refusal would make the refusal as expensive as the service (see the
// cost note on errorReply). The frame is a retry hint, not evidence.
func (s *Server) shed(conn transport.Conn, sendMu *sync.Mutex, raw []byte) {
	transport.Recycle(raw)
	s.met.shed.Inc()
	s.log.Warn("overload_shed", obs.F("inflight", s.inflightNow.Load()))
	frame := encodeControl(ctlOverloaded, "server at max in-flight handlers")
	if sendMu != nil {
		sendMu.Lock()
		defer sendMu.Unlock()
	}
	conn.Send(frame)
}

// beginMsg registers an in-flight handling unless the server is
// draining.
func (s *Server) beginMsg() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// handleOne runs the handler under the message's transaction shard
// lock, converting a handler panic into an error so the in-flight
// accounting in serveConn stays balanced.
func (s *Server) handleOne(raw []byte) (reply []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.met.panics.Inc()
			reply, err = nil, fmt.Errorf("%w: %w: %v", ErrProtocol, errHandlerPanic, r)
		}
	}()
	faultpoint.Hit(fpServerHandleSlow)
	if txn, ok := txnOf(raw); ok {
		mu := &s.shards[shardOf(txn)]
		mu.Lock()
		defer mu.Unlock()
		if s.th != nil {
			return s.th.HandleTxn(txn, raw)
		}
	}
	return s.h.Handle(raw)
}

// recordHandlerError counts a handler error under its class and emits
// a structured event. Runs off the reply path's critical section (no
// locks held), so instrumentation never extends a transaction's shard
// hold time.
func (s *Server) recordHandlerError(err error) {
	class := errorClass(err)
	s.met.errs.Inc()
	s.met.errByClass[class].Inc()
	s.log.Warn("handler_error", obs.F("class", class), obs.F("err", err.Error()))
}

// txnOf extracts the transaction ID from an encoded message without
// any cryptography — and without the full decode: a zero-copy peek at
// the header's routing field, so picking the lock shard costs one
// small string allocation rather than copying header, payload and
// sealed evidence. Unparseable messages get no lock — the handler
// rejects them anyway.
func txnOf(raw []byte) (string, bool) {
	d := wire.NewDecoder(raw)
	if string(d.View32()) != "tpnr-msg-v1" {
		return "", false
	}
	headerBytes := d.View32()
	if d.Err() != nil {
		return "", false
	}
	return evidence.PeekTxnID(headerBytes)
}

// shardOf maps a transaction ID onto its mutex shard (FNV-1a).
func shardOf(txn string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(txn))
	return h.Sum32() % txnShards
}

// Shutdown gracefully stops the server: new connections and messages
// are refused, listeners close, in-flight handlings drain (bounded by
// ctx — an expired ctx abandons the drain and reports ErrCancelled),
// then every connection closes and the per-connection goroutines are
// reaped. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopReaper()
	s.mu.Lock()
	s.draining = true
	ls := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = CheckContext(ctx)
	}

	s.mu.Lock()
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.connWG.Wait()
	return err
}

// ActiveConns reports connections currently being served (tests and
// operational introspection).
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Panics reports how many handler panics the server has absorbed.
func (s *Server) Panics() int64 { return s.panics.Load() }

// Compile-time wiring checks: the Provider fronts a Server and both
// parties satisfy the unified Resolver interface.
var (
	_ Handler  = (*Provider)(nil)
	_ Resolver = (*Client)(nil)
	_ Resolver = (*Provider)(nil)
)
