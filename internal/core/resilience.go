package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/wire"
)

// Resilience-layer errors. These extend the protocol sentinels in
// party.go with the bounded-time and partial-failure outcomes the
// deadline/breaker/degraded machinery produces.
var (
	// ErrExpired reports that the provider expired the session under its
	// step-deadline policy (the server-side enforcement of the paper's
	// §4 per-step time limits). The provider has issued an abort receipt
	// for the transaction; the client recovers it through Resolve.
	ErrExpired = errors.New("core: session expired by step deadline")
	// ErrOverloaded reports that the peer shed the message under
	// admission control. Retryable with backoff — and never grounds for
	// escalation: an overloaded peer is not a misbehaving one.
	ErrOverloaded = errors.New("core: peer overloaded, retry later")
	// ErrDegraded reports that the provider refused a NEW session
	// because its journal can no longer accept appends (disk full,
	// persistent fsync failure). Existing sessions keep being served.
	ErrDegraded = errors.New("core: provider degraded, new sessions refused")
	// ErrTTPUnavailable is the circuit breaker's fast-fail: the TTP has
	// been failing recently and escalation was not attempted. Callers
	// queue a retry instead of burning a dial-and-wait timeout.
	ErrTTPUnavailable = errors.New("core: TTP unavailable, circuit breaker open")
	// ErrQuorumUnavailable reports that the provider refused a NEW
	// session because its evidence-journal replication group cannot
	// currently reach its write quorum. Unlike ErrDegraded (a sticky
	// local-disk failure) this is a transient cluster condition: the
	// anti-entropy loop restores quorum once followers return, so the
	// rejection is retryable and never grounds for TTP escalation.
	ErrQuorumUnavailable = errors.New("core: replication quorum unavailable, new sessions refused")
)

// DeadlinePolicy bounds how long a transaction may sit between protocol
// steps at the party enforcing it (the provider). Each accepted state
// transition restamps the transaction's deadline at now+Step; a reaper
// (core.Server's ServerExpiry, or a direct ExpireStale call) drives
// overdue transactions to a provable abort, so no session stays pending
// forever — the liveness half of the paper's §4 timeliness claim.
type DeadlinePolicy struct {
	// Step is the maximum time between protocol steps of one
	// transaction. Zero disables deadline enforcement.
	Step time.Duration
	// Sweep is the reaper interval; zero means Step/4 clamped to at
	// least 10ms.
	Sweep time.Duration
}

// enabled reports whether the policy does anything.
func (d DeadlinePolicy) enabled() bool { return d.Step > 0 }

// SweepInterval returns the effective reaper interval: Sweep if set,
// else Step/4 clamped to at least 10ms. Daemons pass it to
// ServerExpiry so flag defaults and the in-process default agree.
func (d DeadlinePolicy) SweepInterval() time.Duration {
	if d.Sweep > 0 {
		return d.Sweep
	}
	s := d.Step / 4
	if s < 10*time.Millisecond {
		s = 10 * time.Millisecond
	}
	return s
}

// WithDeadlinePolicy enables server-side step deadlines on the party
// (the provider enforces them; other parties ignore the policy).
func WithDeadlinePolicy(d DeadlinePolicy) Option {
	return func(o *Options) { o.deadline = d }
}

// Error-note prefixes carried in signed KindError replies. The note is
// the only channel a signed rejection has for typing itself, so the
// resilience layer prefixes it and peerErr maps the prefix back onto
// the sentinel on the receiving side.
const (
	expiredNotePrefix  = "expired: "
	degradedNotePrefix = "degraded: "
	quorumNotePrefix   = "quorum: "
)

// peerErr maps a signed KindError note onto the most specific sentinel:
// deadline expiry, degraded-mode and quorum-unavailable refusals carry
// their prefix, all other rejections stay ErrPeerRejected.
func peerErr(note string) error {
	switch {
	case strings.HasPrefix(note, expiredNotePrefix):
		return fmt.Errorf("%w: %s", ErrExpired, note)
	case strings.HasPrefix(note, degradedNotePrefix):
		return fmt.Errorf("%w: %s", ErrDegraded, note)
	case strings.HasPrefix(note, quorumNotePrefix):
		return fmt.Errorf("%w: %s", ErrQuorumUnavailable, note)
	}
	return fmt.Errorf("%w: %s", ErrPeerRejected, note)
}

// wrapProto wraps a message-decode error as a protocol violation,
// passing typed control-frame outcomes (ErrOverloaded) through
// unchanged so the retry classification sees them.
func wrapProto(err error) error {
	if errors.Is(err, ErrOverloaded) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrProtocol, err)
}

// Control frames are the one unsigned message in the system: a shed
// decision must not cost the overloaded server two RSA signatures (that
// would turn admission control into an amplifier), so the frame is a
// bare retry hint. It is deliberately NOT evidence — it binds nobody,
// and a forged one can at worst make a client back off and retry.
const ctlMagic = "tpnr-ctl-v1"

// Control codes.
const ctlOverloaded uint8 = 1

// encodeControl frames a control message.
func encodeControl(code uint8, note string) []byte {
	e := wire.NewEncoder(len(ctlMagic) + len(note) + 16)
	e.String(ctlMagic)
	e.U8(code)
	e.String(note)
	return e.Bytes()
}

// decodeControlErr turns a control frame (magic already consumed from
// d) into its typed error.
func decodeControlErr(d *wire.Decoder) error {
	code := d.U8()
	note := d.String()
	if err := d.Finish(); err != nil {
		return fmt.Errorf("%w: malformed control frame: %v", ErrProtocol, err)
	}
	switch code {
	case ctlOverloaded:
		return fmt.Errorf("%w: %s", ErrOverloaded, note)
	default:
		return fmt.Errorf("%w: unknown control code %d", ErrProtocol, code)
	}
}
