package core

import (
	"context"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Aggregated session settlement.
//
// A session of K uploads normally leaves the client with K individual
// NRRs — K provider signatures issued and K client verifications spent.
// Settlement replaces the per-upload receipts' role in bulk disputes:
// the client lists the session's transactions, the provider builds a
// Merkle tree over the K archived NRO evidence digests and signs ONE
// aggregate receipt over the root. Both sides hold byte-identical
// evidence encodings (the sender its own copy, the recipient the opened
// one), so the client recomputes the same leaves from its own archive
// and checks the signed root locally — no per-leaf signatures travel.
// Any single upload is later provable to the arbitrator as (receipt,
// inclusion proof, evidence).

// maxSettleTxns bounds one settlement request; a session larger than
// this settles in chunks.
const maxSettleTxns = 4096

// encodeSettleRequest serializes the transaction list a settle request
// carries in its payload. The session ID rides in the header's TxnID.
func encodeSettleRequest(txns []string) []byte {
	e := wire.NewEncoder(24 + 24*len(txns))
	e.String("tpnr-settle-req-v1")
	e.U32(uint32(len(txns)))
	for _, t := range txns {
		e.String(t)
	}
	return e.Bytes()
}

// decodeSettleRequest reverses encodeSettleRequest.
func decodeSettleRequest(b []byte) ([]string, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != "tpnr-settle-req-v1" {
		return nil, fmt.Errorf("bad settle request magic %q", magic)
	}
	n := d.U32()
	if n == 0 || n > maxSettleTxns {
		return nil, fmt.Errorf("settle request lists %d transactions (max %d)", n, maxSettleTxns)
	}
	txns := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		txns = append(txns, d.String())
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return txns, nil
}

// SettleResult is a verified session settlement held by the client.
type SettleResult struct {
	// SessionID names the settled session.
	SessionID string
	// Receipt is the provider's one signature over all K uploads.
	Receipt *evidence.AggregateReceipt
	// Tree is the Merkle tree the client rebuilt from its OWN archived
	// evidence; its root equals the signed receipt root. Inclusion
	// proofs for individual uploads come from Tree.Prove.
	Tree *merkle.Tree
}

// Proof returns the inclusion proof for the i'th settled transaction,
// ready for EncodeProof / the arbitrator's leaf check.
func (r *SettleResult) Proof(i int) (*merkle.Proof, error) { return r.Tree.Prove(i) }

// SettleSession asks the provider to settle a session of completed
// uploads with one aggregated receipt. txnIDs lists upload transactions
// whose NROs this client sent (and archived); sessionID names the
// settlement and serves as its transaction ID on the wire.
//
// The returned result is fully verified: the receipt signature checks
// under the provider's authenticated key, and the signed Merkle root
// equals the root the client recomputed from its own archived evidence
// — the provider has non-repudiably acknowledged every listed upload.
func (c *Client) SettleSession(ctx context.Context, conn transport.Conn, sessionID string, txnIDs []string) (*SettleResult, error) {
	if err := CheckContext(ctx); err != nil {
		return nil, err
	}
	if len(txnIDs) == 0 || len(txnIDs) > maxSettleTxns {
		return nil, fmt.Errorf("core: settle of %d transactions (want 1..%d)", len(txnIDs), maxSettleTxns)
	}
	defer applyDeadline(ctx, conn)()

	// Recompute the expected leaves from this side's archive before
	// anything goes on the wire: a transaction we never committed to
	// cannot be settled.
	leaves := make([]cryptoutil.Digest, 0, len(txnIDs))
	for _, txn := range txnIDs {
		nro, err := c.archive.ByKind(txn, evidence.RoleOwn, evidence.KindNRO)
		if err != nil {
			return nil, fmt.Errorf("core: no archived NRO for %s: %w", txn, err)
		}
		leaves = append(leaves, evidence.LeafDigest(nro))
	}
	tree, err := merkle.FromLeaves(leaves)
	if err != nil {
		return nil, fmt.Errorf("core: building settle tree: %w", err)
	}

	payload := encodeSettleRequest(txnIDs)
	h := c.newHeader(evidence.KindSettleRequest, sessionID, c.ProviderID, c.TTPID, c.nextSeq(sessionID))
	h.SetDigests(payload)
	c.ctr.Inc(metrics.HashOps, 2)
	providerKey, err := c.peerKey(c.ProviderID)
	if err != nil {
		return nil, err
	}
	msg, own, err := c.buildMessage(h, payload, providerKey)
	if err != nil {
		return nil, err
	}
	c.tracker.Begin(sessionID)
	if err := c.putEvidence(sessionID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	if err := c.send(conn, msg); err != nil {
		return nil, fmt.Errorf("core: sending settle request: %w", err)
	}
	c.ctr.Inc(metrics.Rounds, 1)

	pu := c.pumpFor(conn)
	raw, err := pu.recv(ctx, c.clk, c.timeout)
	if err != nil {
		return nil, err
	}
	m, err := DecodeMessage(raw)
	if err != nil {
		return nil, wrapProto(err)
	}
	rh, rev, err := c.checkInbound(m)
	if err != nil {
		return nil, err
	}
	c.ctr.Inc(metrics.MsgsRecv, 1)
	if rh.Kind == evidence.KindError {
		return nil, peerErr(rh.Note)
	}
	if rh.Kind != evidence.KindSettleResponse || rh.TxnID != sessionID || rh.SenderID != c.ProviderID {
		return nil, fmt.Errorf("%w: expected settle response for %s, got %s for %s from %s",
			ErrProtocol, sessionID, rh.Kind, rh.TxnID, rh.SenderID)
	}
	if !rh.MatchesData(m.Payload) {
		c.ctr.Inc(metrics.AuthFailures, 1)
		return nil, fmt.Errorf("%w: settle payload does not match signed digests", ErrProtocol)
	}
	c.ctr.Inc(metrics.HashOps, 2)
	r, err := evidence.DecodeAggregateReceipt(m.Payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if r.SessionID != sessionID || r.SignerID != c.ProviderID {
		return nil, fmt.Errorf("%w: receipt names session %q signer %q", ErrProtocol, r.SessionID, r.SignerID)
	}
	if len(r.TxnIDs) != len(txnIDs) {
		return nil, fmt.Errorf("%w: receipt settles %d txns, requested %d", ErrProtocol, len(r.TxnIDs), len(txnIDs))
	}
	for i := range txnIDs {
		if r.TxnIDs[i] != txnIDs[i] {
			return nil, fmt.Errorf("%w: receipt leaf %d is %q, requested %q", ErrProtocol, i, r.TxnIDs[i], txnIDs[i])
		}
	}
	if err := r.VerifySig(providerKey); err != nil {
		c.ctr.Inc(metrics.AuthFailures, 1)
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	c.ctr.Inc(metrics.VerifyOps, 1)
	// The signed root must be the root over OUR archived evidence.
	if !tree.Root().Equal(r.Root) {
		c.ctr.Inc(metrics.AuthFailures, 1)
		return nil, fmt.Errorf("%w: receipt root does not match this side's evidence", ErrProtocol)
	}
	if err := c.putEvidence(sessionID, evidence.RolePeer, rev); err != nil {
		return nil, err
	}
	c.setState(sessionID, session.StateCompleted)
	return &SettleResult{SessionID: sessionID, Receipt: r, Tree: tree}, nil
}

// handleSettle answers a settle request: one aggregate signature over
// the Merkle root of the session's archived NRO evidence digests,
// replacing K per-upload receipt signatures in bulk disputes.
func (b *Provider) handleSettle(h *evidence.Header, ev *evidence.Evidence, payload []byte) (*Message, error) {
	txns, err := decodeSettleRequest(payload)
	if err != nil {
		return b.errorReply(h, "malformed settle request: "+err.Error())
	}
	if !h.MatchesData(payload) {
		b.ctr.Inc(metrics.AuthFailures, 1)
		return b.errorReply(h, "settle payload does not match signed digests")
	}
	b.ctr.Inc(metrics.HashOps, 2)
	leaves := make([]cryptoutil.Digest, 0, len(txns))
	for _, txn := range txns {
		nro, aerr := b.archive.ByKind(txn, evidence.RolePeer, evidence.KindNRO)
		if aerr != nil {
			return b.errorReply(h, fmt.Sprintf("cannot settle %s: no archived evidence", txn))
		}
		if nro.Header.SenderID != h.SenderID {
			return b.errorReply(h, fmt.Sprintf("cannot settle %s: not this client's upload", txn))
		}
		leaves = append(leaves, evidence.LeafDigest(nro))
	}
	if err := b.putEvidence(h.TxnID, evidence.RolePeer, ev); err != nil {
		return nil, err
	}
	r, _, err := evidence.BuildAggregateReceipt(b.id.Key.Signer(), h.TxnID, b.id.Name, txns, leaves, b.clk.Now())
	if err != nil {
		return b.errorReply(h, "cannot build aggregate receipt: "+err.Error())
	}
	b.ctr.Inc(metrics.SignOps, 1)
	enc := r.Encode()

	senderKey, err := b.peerKey(h.SenderID)
	if err != nil {
		return nil, err
	}
	rh := b.newHeader(evidence.KindSettleResponse, h.TxnID, h.SenderID, h.TTPID, b.bumpSeqTo(h.TxnID, h.Seq))
	rh.SetDigests(enc)
	b.ctr.Inc(metrics.HashOps, 2)
	msg, own, err := b.buildMessage(rh, enc, senderKey)
	if err != nil {
		return nil, err
	}
	if err := b.putEvidence(h.TxnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	b.setState(h.TxnID, session.StateCompleted)
	b.ctr.Inc(metrics.Rounds, 1)
	b.auditAppend("settle", h.TxnID, fmt.Sprintf("settled %d txns under one receipt", len(txns)))
	return msg, nil
}
