package core

import (
	"crypto/rsa"
	"time"

	"repro/internal/archive"
	"repro/internal/clock"
	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/metrics"
	"repro/internal/pki"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Option configures a protocol party. Constructors take a variadic
// list of options; the legacy Options struct remains available through
// WithOptions for callers that have not migrated yet.
type Option func(*Options)

// WithIdentity sets the party's name, key pair and certificate
// (required).
func WithIdentity(id *pki.Identity) Option {
	return func(o *Options) { o.Identity = id }
}

// WithCAKey sets the CA public key used to verify directory
// certificates.
//
// Deprecated: use WithCAPublicKey, which accepts any scheme's key
// handle. One of the two is required.
func WithCAKey(k *rsa.PublicKey) Option {
	return func(o *Options) { o.CAKey = k }
}

// WithCAPublicKey sets the CA key handle used to verify directory
// certificates. Either this or WithCAKey is required; this form wins
// when both are set.
func WithCAPublicKey(k cryptoutil.PublicKey) Option {
	return func(o *Options) { o.caPub = k }
}

// WithDirectory sets the peer-certificate directory (required).
func WithDirectory(d Directory) Option {
	return func(o *Options) { o.Directory = d }
}

// WithClock overrides the clock driving timestamps and timeouts.
func WithClock(c clock.Clock) Option {
	return func(o *Options) { o.Clock = c }
}

// WithCounters directs protocol metrics into an existing counter set.
func WithCounters(c *metrics.Counters) Option {
	return func(o *Options) { o.Counters = c }
}

// WithMessageLifetime sets the §5.5 time-limit window stamped on
// outbound messages.
func WithMessageLifetime(d time.Duration) Option {
	return func(o *Options) { o.MessageLifetime = d }
}

// WithResponseTimeout bounds waits for peer responses before Resolve
// becomes available.
func WithResponseTimeout(d time.Duration) Option {
	return func(o *Options) { o.ResponseTimeout = d }
}

// WithStore sets the provider's blob store. Only NewProvider consults
// it; other constructors ignore it.
func WithStore(s storage.Store) Option {
	return func(o *Options) { o.store = s }
}

// WithTTPID names the TTP the provider escalates to in its own Resolve
// calls. Only NewProvider consults it.
func WithTTPID(id string) Option {
	return func(o *Options) { o.ttpID = id }
}

// WithJournal attaches a crash-safe write-ahead journal: every protocol
// transition (evidence archived, state changed, resolve opened/closed)
// is appended — and made durable per the journal's sync policy — before
// the corresponding message is acked. After a restart, the party's
// Recover method replays the journal to rebuild its archive and session
// state. Without a journal the party runs in-memory only, as before.
func WithJournal(w *wal.WAL) Option {
	return func(o *Options) { o.journal = w }
}

// WithArchive attaches a cold evidence archive: Checkpoint moves
// terminal sessions' evidence out of the in-memory store (and, via the
// journal snapshot, out of the replay path) into this append-only,
// CRC-protected tier. Dispute reads fall back to it transparently.
// Without an archive, Checkpoint still snapshots and compacts the
// journal but keeps all evidence hot.
func WithArchive(s *archive.Store) Option {
	return func(o *Options) { o.cold = s }
}

// WithReplicator attaches a quorum replication group to the party's
// journal: every appended record must reach the group's write quorum
// before the corresponding protocol step is acked, and quorum
// unavailability is folded into the provider's Health so admission
// refuses new sessions while the cluster is below quorum. Requires
// WithJournal; without a journal the replicator is never consulted.
func WithReplicator(r Replicator) Option {
	return func(o *Options) { o.repl = r }
}

// WithVerifyCache shares a bounded evidence-verification cache across
// parties (or sizes it differently from the default). Every party gets
// a private cache when this option is absent; pass a common cache to
// co-located daemons so the TTP's resolve path and the serving party
// hit each other's verifications.
func WithVerifyCache(c *evidence.VerifyCache) Option {
	return func(o *Options) { o.verifyCache = c }
}

// WithOptions applies a legacy Options struct wholesale, preserving
// any store or TTP id set by earlier options.
//
// Deprecated: construct parties with individual With* options instead.
func WithOptions(legacy Options) Option {
	return func(o *Options) {
		store, ttpID, journal, vcache, deadline, caPub, cold, repl :=
			o.store, o.ttpID, o.journal, o.verifyCache, o.deadline, o.caPub, o.cold, o.repl
		*o = legacy
		if o.repl == nil {
			o.repl = repl
		}
		if o.cold == nil {
			o.cold = cold
		}
		if o.caPub == nil {
			o.caPub = caPub
		}
		if o.store == nil {
			o.store = store
		}
		if o.ttpID == "" {
			o.ttpID = ttpID
		}
		if o.journal == nil {
			o.journal = journal
		}
		if o.verifyCache == nil {
			o.verifyCache = vcache
		}
		if !o.deadline.enabled() {
			o.deadline = deadline
		}
	}
}

// buildOptions folds a variadic option list into one Options value.
func buildOptions(opts []Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}
