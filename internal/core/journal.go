package core

import (
	"context"
	"fmt"

	"repro/internal/evidence"
	"repro/internal/session"
	"repro/internal/wire"
)

// Journal record kinds. One record per protocol transition; the union
// of replayed records reconstructs a party's archive, tracker, replay
// guard and sequence counters after a crash.
const (
	jrEvidence uint8 = iota + 1 // an archived evidence item (own or peer)
	jrState                     // a tracker state transition
	jrObject                    // provider: txn → stored object key binding
	jrResolve                   // TTP: a resolve opened (aux=1) or closed (aux=2)
)

// Resolve phases carried in journalRecord.Aux for jrResolve.
const (
	jrResolveOpen   uint8 = 1
	jrResolveClosed uint8 = 2
)

// journalRecord is the decoded form of one WAL payload.
type journalRecord struct {
	Kind uint8
	Txn  string
	// Aux is kind-dependent: the evidence.Role for jrEvidence, the
	// session.State for jrState, the phase for jrResolve.
	Aux uint8
	// Note is kind-dependent: the object key for jrObject, the outcome
	// note for jrResolve.
	Note string
	// Blob is the encoded evidence for jrEvidence.
	Blob []byte
}

const journalMagic = "tpnr-journal-v1"

func (r *journalRecord) encode() []byte {
	e := wire.NewEncoder(64 + len(r.Note) + len(r.Blob))
	e.String(journalMagic)
	e.U8(r.Kind)
	e.String(r.Txn)
	e.U8(r.Aux)
	e.String(r.Note)
	e.Bytes32(r.Blob)
	return e.Bytes()
}

func decodeJournalRecord(b []byte) (*journalRecord, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != journalMagic {
		return nil, fmt.Errorf("core: bad journal record magic %q", magic)
	}
	r := &journalRecord{}
	r.Kind = d.U8()
	r.Txn = d.String()
	r.Aux = d.U8()
	r.Note = d.String()
	r.Blob = d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("core: malformed journal record: %v", err)
	}
	return r, nil
}

// Replicator is the evidence-journal replication hook (implemented by
// replica.Group): after a record lands in the local WAL at lsn,
// Replicate blocks until a write quorum of followers holds it durably
// — only then may the party ack the protocol step that journaled it
// (journal-on-quorum-before-ack). Quorum reports nil while the write
// quorum is reachable; a non-nil result is folded into the provider's
// Health so admission refuses NEW sessions until anti-entropy repair
// restores the quorum.
type Replicator interface {
	Replicate(lsn uint64) error
	Quorum() error
}

// journalAppend encodes and appends one record; a nil journal is a
// no-op (parties without a WAL run exactly as before). On a journal
// already poisoned by a sticky I/O error the append is skipped rather
// than failed: degraded mode refuses NEW bindings at admission
// (handleUpload), and failing every in-flight transition here would
// also break the abort/resolve paths that must keep working to drain
// existing sessions.
//
// With a Replicator attached the append only returns once the record
// is durable on the write quorum, extending journal-before-ack across
// machines: the NRR at upload-binding is not signed until quorum nodes
// could each prove the binding after losing any single node. A quorum
// timeout fails THIS append (its step is correctly not acked) and
// degrades the group; while degraded, Replicate drains without waiting
// — mirroring the local degraded-skip policy above — and admission
// refuses new sessions via Health until repair restores the quorum.
func (p *party) journalAppend(r *journalRecord) error {
	if p.journal == nil {
		return nil
	}
	if p.journal.Healthy() != nil {
		coreDegradedSkips.Inc()
		return nil
	}
	lsn, err := p.journal.AppendLSN(r.encode())
	if err != nil {
		return fmt.Errorf("core: journaling %s transition: %w", p.id.Name, err)
	}
	if p.repl != nil {
		if err := p.repl.Replicate(lsn); err != nil {
			return fmt.Errorf("%w: %s journal LSN %d not on quorum: %v",
				ErrQuorumUnavailable, p.id.Name, lsn, err)
		}
	}
	return nil
}

// putEvidence journals an evidence item and then archives it. The
// journal write comes FIRST: once the item is in the in-memory archive
// the engine will act on it (send the ack, issue the receipt), and an
// acked transition that is not durable is exactly the half-bound state
// recovery exists to prevent. On journal failure the item is not
// archived and the caller must not ack.
// The journal+archive pair holds ckptMu's read side so a concurrent
// Checkpoint cannot snapshot between the two: the record would land in
// the truncated prefix while its effect missed the snapshot.
func (p *party) putEvidence(txn string, role evidence.Role, ev *evidence.Evidence) error {
	p.ckptMu.RLock()
	defer p.ckptMu.RUnlock()
	if err := p.journalAppend(&journalRecord{
		Kind: jrEvidence, Txn: txn, Aux: uint8(role), Blob: ev.Encode(),
	}); err != nil {
		return err
	}
	p.archive.Put(txn, role, ev)
	return nil
}

// setState journals and applies a tracker transition. The transition is
// attempted first — an illegal transition (e.g. out of a terminal
// state) must not be journaled, because replay applies journaled
// transitions unconditionally. Callers that previously ignored
// Transition errors keep doing so; the journal mirrors exactly what the
// tracker accepted.
//
// Like putEvidence, the mutate+journal pair is bracketed by ckptMu's
// read side — a snapshot built mid-pair would capture the transition
// while the record lands past the checkpoint boundary (harmless), or
// miss the transition while the record is truncated (lost) depending on
// interleaving; the bracket forbids both.
func (p *party) setState(txn string, next session.State) error {
	p.ckptMu.RLock()
	defer p.ckptMu.RUnlock()
	if _, err := p.tracker.Get(txn); err != nil {
		p.tracker.Begin(txn)
	}
	if err := p.tracker.Transition(txn, next); err != nil {
		return err
	}
	// Step-deadline bookkeeping: every accepted transition restamps the
	// transaction's deadline; reaching a terminal state clears it. Only
	// parties configured with WithDeadlinePolicy pay this.
	if p.deadline.enabled() {
		if session.Terminal(next) {
			p.tracker.ClearDeadline(txn)
		} else {
			p.tracker.SetDeadline(txn, p.clk.Now().Add(p.deadline.Step))
		}
	}
	return p.journalAppend(&journalRecord{Kind: jrState, Txn: txn, Aux: uint8(next)})
}

// RecoveryReport summarizes a journal replay for the operator and the
// recovery driver.
type RecoveryReport struct {
	// Records is how many journal records were replayed.
	Records int
	// TornTail is true when the WAL dropped a torn final record — the
	// crash hit mid-append, so the corresponding message was never
	// acked.
	TornTail bool
	// Transactions is every transaction seen in the journal.
	Transactions []string
	// NeedsResolve lists transactions left non-terminal by the crash;
	// per §4.3 the party should escalate them to the TTP.
	NeedsResolve []string
	// HonoredAborts lists aborted transactions whose stored objects were
	// re-deleted during recovery (provider only).
	HonoredAborts []string
	// OpenResolves lists resolve procedures opened but not closed (TTP
	// only).
	OpenResolves []string
	// SnapshotLSN is the journal position the loaded checkpoint covers;
	// zero when recovery replayed from genesis (no usable snapshot).
	SnapshotLSN uint64
	// TailRecords is how many journal records sat past the snapshot —
	// the bounded portion recovery actually replayed.
	TailRecords int
	// ArchivedSessions counts terminal sessions resident in the cold
	// archive after recovery.
	ArchivedSessions int
	// SkippedArchived counts tail records ignored because their
	// transaction was already compacted into the cold archive.
	SkippedArchived int
}

// recoverBase rebuilds the state every party shares — evidence archive,
// tracker, replay guard and outbound sequence counters — from the
// newest usable checkpoint snapshot plus the journal tail past it. With
// no snapshot the tail IS the whole journal, which degrades to the old
// full-replay behaviour. extra (may be nil) sees each tail record for
// role-specific state (the provider's object map, the TTP's resolve
// ledger); records for transactions already compacted into the cold
// archive are skipped — their evidence is served from the archive, not
// re-materialised hot. Every restore path is idempotent (PutIfAbsent,
// Restore, SkipTo, Observe), so calling Recover twice yields the state
// of calling it once.
func (p *party) recoverBase(ctx context.Context, extra func(*journalRecord) error) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	if p.journal == nil {
		return rep, nil
	}
	seen := make(map[string]bool)
	if payload, lsn, ok := p.journal.LoadCheckpoint(); ok {
		if err := p.restoreSnapshot(payload, rep, seen); err != nil {
			return nil, err
		}
		rep.SnapshotLSN = lsn
	}
	err := p.journal.ReplayTail(func(raw []byte) error {
		if err := CheckContext(ctx); err != nil {
			return err
		}
		r, err := decodeJournalRecord(raw)
		if err != nil {
			return err
		}
		rep.TailRecords++
		if p.isArchived(r.Txn) {
			// Post-compaction record for an archived session (late resolve
			// traffic): the archive already serves this session's evidence.
			rep.SkippedArchived++
			return nil
		}
		rep.Records++
		if r.Txn != "" && !seen[r.Txn] {
			seen[r.Txn] = true
			rep.Transactions = append(rep.Transactions, r.Txn)
		}
		switch r.Kind {
		case jrEvidence:
			ev, err := evidence.Decode(r.Blob)
			if err != nil {
				return fmt.Errorf("core: journal evidence for %s: %w", r.Txn, err)
			}
			role := evidence.Role(r.Aux)
			p.archive.PutIfAbsent(r.Txn, role, ev)
			h := ev.Header
			if role == evidence.RoleOwn && h.SenderID == p.id.Name {
				// Our own outbound message: the counter must never reuse
				// its sequence number.
				p.seqMu.Lock()
				c, ok := p.seqs[r.Txn]
				if !ok {
					c = &session.Counter{}
					p.seqs[r.Txn] = c
				}
				p.seqMu.Unlock()
				c.SkipTo(h.Seq)
			} else if role == evidence.RolePeer {
				// A peer message we accepted: the guard must keep
				// rejecting replays of it.
				p.guard.Observe(h.TxnID+"|"+h.SenderID, h.Seq, h.Nonce)
			}
		case jrState:
			p.tracker.Restore(r.Txn, session.State(r.Aux))
		}
		if extra != nil {
			return extra(r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.TornTail = p.journal.Truncated()
	rep.ArchivedSessions = p.archivedCount()
	for _, txn := range rep.Transactions {
		st, err := p.tracker.Get(txn)
		if err != nil {
			// Evidence without any state transition: the crash hit between
			// archiving and the first transition — treat as unfinished.
			rep.NeedsResolve = append(rep.NeedsResolve, txn)
			continue
		}
		if !session.Terminal(st) {
			rep.NeedsResolve = append(rep.NeedsResolve, txn)
		}
	}
	return rep, nil
}
