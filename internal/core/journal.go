package core

import (
	"context"
	"fmt"

	"repro/internal/evidence"
	"repro/internal/session"
	"repro/internal/wire"
)

// Journal record kinds. One record per protocol transition; the union
// of replayed records reconstructs a party's archive, tracker, replay
// guard and sequence counters after a crash.
const (
	jrEvidence uint8 = iota + 1 // an archived evidence item (own or peer)
	jrState                     // a tracker state transition
	jrObject                    // provider: txn → stored object key binding
	jrResolve                   // TTP: a resolve opened (aux=1) or closed (aux=2)
)

// Resolve phases carried in journalRecord.Aux for jrResolve.
const (
	jrResolveOpen   uint8 = 1
	jrResolveClosed uint8 = 2
)

// journalRecord is the decoded form of one WAL payload.
type journalRecord struct {
	Kind uint8
	Txn  string
	// Aux is kind-dependent: the evidence.Role for jrEvidence, the
	// session.State for jrState, the phase for jrResolve.
	Aux uint8
	// Note is kind-dependent: the object key for jrObject, the outcome
	// note for jrResolve.
	Note string
	// Blob is the encoded evidence for jrEvidence.
	Blob []byte
}

const journalMagic = "tpnr-journal-v1"

func (r *journalRecord) encode() []byte {
	e := wire.NewEncoder(64 + len(r.Note) + len(r.Blob))
	e.String(journalMagic)
	e.U8(r.Kind)
	e.String(r.Txn)
	e.U8(r.Aux)
	e.String(r.Note)
	e.Bytes32(r.Blob)
	return e.Bytes()
}

func decodeJournalRecord(b []byte) (*journalRecord, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != journalMagic {
		return nil, fmt.Errorf("core: bad journal record magic %q", magic)
	}
	r := &journalRecord{}
	r.Kind = d.U8()
	r.Txn = d.String()
	r.Aux = d.U8()
	r.Note = d.String()
	r.Blob = d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("core: malformed journal record: %v", err)
	}
	return r, nil
}

// journalAppend encodes and appends one record; a nil journal is a
// no-op (parties without a WAL run exactly as before). On a journal
// already poisoned by a sticky I/O error the append is skipped rather
// than failed: degraded mode refuses NEW bindings at admission
// (handleUpload), and failing every in-flight transition here would
// also break the abort/resolve paths that must keep working to drain
// existing sessions.
func (p *party) journalAppend(r *journalRecord) error {
	if p.journal == nil {
		return nil
	}
	if p.journal.Healthy() != nil {
		coreDegradedSkips.Inc()
		return nil
	}
	if err := p.journal.Append(r.encode()); err != nil {
		return fmt.Errorf("core: journaling %s transition: %w", p.id.Name, err)
	}
	return nil
}

// putEvidence journals an evidence item and then archives it. The
// journal write comes FIRST: once the item is in the in-memory archive
// the engine will act on it (send the ack, issue the receipt), and an
// acked transition that is not durable is exactly the half-bound state
// recovery exists to prevent. On journal failure the item is not
// archived and the caller must not ack.
func (p *party) putEvidence(txn string, role evidence.Role, ev *evidence.Evidence) error {
	if err := p.journalAppend(&journalRecord{
		Kind: jrEvidence, Txn: txn, Aux: uint8(role), Blob: ev.Encode(),
	}); err != nil {
		return err
	}
	p.archive.Put(txn, role, ev)
	return nil
}

// setState journals and applies a tracker transition. The transition is
// attempted first — an illegal transition (e.g. out of a terminal
// state) must not be journaled, because replay applies journaled
// transitions unconditionally. Callers that previously ignored
// Transition errors keep doing so; the journal mirrors exactly what the
// tracker accepted.
func (p *party) setState(txn string, next session.State) error {
	if _, err := p.tracker.Get(txn); err != nil {
		p.tracker.Begin(txn)
	}
	if err := p.tracker.Transition(txn, next); err != nil {
		return err
	}
	// Step-deadline bookkeeping: every accepted transition restamps the
	// transaction's deadline; reaching a terminal state clears it. Only
	// parties configured with WithDeadlinePolicy pay this.
	if p.deadline.enabled() {
		if session.Terminal(next) {
			p.tracker.ClearDeadline(txn)
		} else {
			p.tracker.SetDeadline(txn, p.clk.Now().Add(p.deadline.Step))
		}
	}
	return p.journalAppend(&journalRecord{Kind: jrState, Txn: txn, Aux: uint8(next)})
}

// RecoveryReport summarizes a journal replay for the operator and the
// recovery driver.
type RecoveryReport struct {
	// Records is how many journal records were replayed.
	Records int
	// TornTail is true when the WAL dropped a torn final record — the
	// crash hit mid-append, so the corresponding message was never
	// acked.
	TornTail bool
	// Transactions is every transaction seen in the journal.
	Transactions []string
	// NeedsResolve lists transactions left non-terminal by the crash;
	// per §4.3 the party should escalate them to the TTP.
	NeedsResolve []string
	// HonoredAborts lists aborted transactions whose stored objects were
	// re-deleted during recovery (provider only).
	HonoredAborts []string
	// OpenResolves lists resolve procedures opened but not closed (TTP
	// only).
	OpenResolves []string
}

// recoverBase replays the journal rebuilding the state every party
// shares: evidence archive, tracker, replay guard and outbound
// sequence counters. extra (may be nil) sees each record for
// role-specific state (the provider's object map, the TTP's resolve
// ledger). Returns the replayed transaction set in journal order.
func (p *party) recoverBase(ctx context.Context, extra func(*journalRecord) error) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	if p.journal == nil {
		return rep, nil
	}
	seen := make(map[string]bool)
	err := p.journal.Replay(func(raw []byte) error {
		if err := CheckContext(ctx); err != nil {
			return err
		}
		r, err := decodeJournalRecord(raw)
		if err != nil {
			return err
		}
		rep.Records++
		if r.Txn != "" && !seen[r.Txn] {
			seen[r.Txn] = true
			rep.Transactions = append(rep.Transactions, r.Txn)
		}
		switch r.Kind {
		case jrEvidence:
			ev, err := evidence.Decode(r.Blob)
			if err != nil {
				return fmt.Errorf("core: journal evidence for %s: %w", r.Txn, err)
			}
			role := evidence.Role(r.Aux)
			p.archive.Put(r.Txn, role, ev)
			h := ev.Header
			if role == evidence.RoleOwn && h.SenderID == p.id.Name {
				// Our own outbound message: the counter must never reuse
				// its sequence number.
				p.seqMu.Lock()
				c, ok := p.seqs[r.Txn]
				if !ok {
					c = &session.Counter{}
					p.seqs[r.Txn] = c
				}
				p.seqMu.Unlock()
				c.SkipTo(h.Seq)
			} else if role == evidence.RolePeer {
				// A peer message we accepted: the guard must keep
				// rejecting replays of it.
				p.guard.Observe(h.TxnID+"|"+h.SenderID, h.Seq, h.Nonce)
			}
		case jrState:
			p.tracker.Restore(r.Txn, session.State(r.Aux))
		}
		if extra != nil {
			return extra(r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.TornTail = p.journal.Truncated()
	for _, txn := range rep.Transactions {
		st, err := p.tracker.Get(txn)
		if err != nil {
			// Evidence without any state transition: the crash hit between
			// archiving and the first transition — treat as unfinished.
			rep.NeedsResolve = append(rep.NeedsResolve, txn)
			continue
		}
		if !session.Terminal(st) {
			rep.NeedsResolve = append(rep.NeedsResolve, txn)
		}
	}
	return rep, nil
}
