package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/auditlog"
	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/metrics"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Provider is Bob: the cloud storage service running the TPNR protocol
// over a blob store. One Provider serves many client connections
// concurrently.
type Provider struct {
	*party
	store storage.Store
	// ttpID names the TTP this provider escalates to in Resolve
	// (configured with WithTTPID).
	ttpID string

	txnMu sync.Mutex
	// txnObject remembers which object each upload transaction stored,
	// for abort and resolve handling.
	txnObject map[string]string

	// Behaviour switches used by experiments and the attack lab to
	// model a malicious or broken provider. All default to honest.
	behaviorMu sync.Mutex
	behavior   Misbehavior

	// audit, when set, receives a hash-chained record of every protocol
	// event — the provider's own tamper-evident defense material.
	audit *auditlog.Log
}

// Misbehavior flags let experiments instantiate a dishonest Bob — the
// §2.4 threat analysis and the E7/E9 experiments need an executable
// adversary, not just an honest implementation.
type Misbehavior struct {
	// SilentAfterNRO: accept and store the upload but never send the
	// NRR — the unfairness scenario that motivates Resolve (§4.1:
	// "if Bob ... does not respond after he has received the NRO from
	// Alice, then Alice will be in a disadvantage position").
	SilentAfterNRO bool
	// IgnoreResolve: also refuse to answer the TTP (forces the TTP
	// unresponsiveness statement path).
	IgnoreResolve bool
	// TamperOnDownload mutates served bytes (the provider serves
	// corrupted data but must still sign it — showing the client
	// catches the digest mismatch against the agreed upload digest).
	TamperOnDownload func([]byte) []byte
	// IgnoreAudit: the lazy provider of the storage-dwell threat model.
	// It completes uploads honestly (and may even have discarded the
	// data afterwards) but never answers KindAuditChallenge — the
	// journaled unanswered challenge becomes the claimant's conviction
	// material.
	IgnoreAudit bool
	// CorruptAuditProof: answer audit challenges with proofs built over
	// a mutated copy of the object — the "stale proof" adversary whose
	// response root can no longer match the NRR commitment.
	CorruptAuditProof bool
}

// NewProvider constructs a provider engine from functional options.
// The blob store arrives via WithStore (a fresh in-memory store when
// omitted) and the escalation TTP via WithTTPID.
func NewProvider(opts ...Option) (*Provider, error) {
	o := buildOptions(opts)
	p, err := newParty(o)
	if err != nil {
		return nil, err
	}
	store := o.store
	if store == nil {
		store = storage.NewMem(p.clk.Now)
	}
	b := &Provider{party: p, store: store, ttpID: o.ttpID, txnObject: make(map[string]string)}
	b.initCheckpointHooks()
	return b, nil
}

// NewProviderFromOptions constructs a provider engine over the given
// store from a legacy Options struct.
//
// Deprecated: use NewProvider with WithStore (and WithTTPID for
// provider-initiated Resolve).
func NewProviderFromOptions(o Options, store storage.Store) (*Provider, error) {
	p, err := newParty(o)
	if err != nil {
		return nil, err
	}
	if store == nil {
		store = storage.NewMem(p.clk.Now)
	}
	b := &Provider{party: p, store: store, ttpID: o.ttpID, txnObject: make(map[string]string)}
	b.initCheckpointHooks()
	return b, nil
}

// initCheckpointHooks wires the provider's role-specific state — the
// transaction → object-key map — into the checkpoint snapshot: each
// live transaction's binding rides the snapshot's note field, so a
// recovery that never replays the pre-checkpoint journal still knows
// which blob each session stored.
func (b *Provider) initCheckpointHooks() {
	b.snapExtra = func(txn string) (string, bool) {
		b.txnMu.Lock()
		key := b.txnObject[txn]
		b.txnMu.Unlock()
		return key, false
	}
	b.restoreExtra = func(txn, note string, _ bool) {
		if note == "" {
			return
		}
		b.txnMu.Lock()
		b.txnObject[txn] = note
		b.txnMu.Unlock()
	}
}

// SetMisbehavior swaps the provider's behaviour at runtime.
func (b *Provider) SetMisbehavior(m Misbehavior) {
	b.behaviorMu.Lock()
	b.behavior = m
	b.behaviorMu.Unlock()
}

func (b *Provider) misbehavior() Misbehavior {
	b.behaviorMu.Lock()
	defer b.behaviorMu.Unlock()
	return b.behavior
}

// Store exposes the provider's blob store (insider view).
func (b *Provider) Store() storage.Store { return b.store }

// SetAuditLog attaches a tamper-evident event log; every subsequent
// protocol event is appended to it.
func (b *Provider) SetAuditLog(l *auditlog.Log) {
	b.behaviorMu.Lock()
	b.audit = l
	b.behaviorMu.Unlock()
}

// auditAppend records an event if an audit log is attached.
func (b *Provider) auditAppend(kind, txn, detail string) {
	b.behaviorMu.Lock()
	l := b.audit
	b.behaviorMu.Unlock()
	if l != nil {
		l.Append(kind, txn, detail)
	}
}

// Serve handles messages on one client connection until it closes or
// ctx terminates (surfacing ErrCancelled). Run it in a goroutine per
// accepted connection — or hand the Provider to a core.Server, which
// does that plus per-transaction locking and graceful shutdown.
func (b *Provider) Serve(ctx context.Context, conn transport.Conn) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close() // unblock the pending Recv
		case <-done:
		}
	}()
	for {
		raw, err := conn.Recv()
		if err != nil {
			if cerr := CheckContext(ctx); cerr != nil {
				return cerr
			}
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		reply, _ := b.Handle(raw)
		if reply == nil {
			// Unverifiable garbage or deliberate silence: no reply at all
			// (responding to an unauthenticated blob would create an
			// oracle).
			continue
		}
		if err := conn.Send(reply); err != nil {
			if cerr := CheckContext(ctx); cerr != nil {
				return cerr
			}
			return err
		}
	}
}

// Handle processes one encoded message and returns the encoded reply
// (nil when the protocol calls for silence) together with the handling
// error. A non-nil reply can accompany a non-nil error: the reply is
// then the signed Error message the peer receives while the error
// explains the rejection to the embedding server.
func (b *Provider) Handle(raw []byte) ([]byte, error) {
	b.ctr.Inc(metrics.MsgsRecv, 1)
	reply, err := b.handle(raw)
	if reply == nil {
		return nil, err
	}
	enc := reply.Encode()
	b.ctr.Inc(metrics.MsgsSent, 1)
	b.ctr.Inc(metrics.BytesSent, int64(len(enc)))
	return enc, err
}

// HandleRaw processes one encoded message and returns the encoded
// reply (nil when the protocol calls for silence), swallowing the
// handling error.
//
// Deprecated: use Handle, which reports why a message was rejected.
func (b *Provider) HandleRaw(raw []byte) []byte {
	reply, _ := b.Handle(raw)
	return reply
}

func (b *Provider) handle(raw []byte) (*Message, error) {
	m, err := DecodeMessage(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	h, ev, err := b.checkInbound(m)
	if err != nil {
		// If the header at least decodes we can answer with a signed
		// error message; otherwise stay silent. The validation error
		// rides alongside the reply so Handle reports why.
		if hdr, herr := m.Header(); herr == nil && hdr.SenderID != "" {
			reply, rerr := b.errorReply(hdr, err.Error())
			if rerr != nil {
				return nil, err
			}
			return reply, err
		}
		return nil, err
	}
	return b.dispatch(h, ev, m.Payload)
}

// dispatch routes one validated inbound message to its per-kind
// handler. Both the serial path (handle) and the batch-drain path
// (HandleBatch) converge here after their respective verification.
func (b *Provider) dispatch(h *evidence.Header, ev *evidence.Evidence, payload []byte) (*Message, error) {
	if b.expireIfStale(h) {
		// The session blew its step deadline; it has just been driven to
		// its abort state, so this late message is answered with a signed
		// expiry rejection the client maps to ErrExpired and resolves.
		reply, rerr := b.errorReply(h, expiredNotePrefix+"session exceeded its step deadline")
		if rerr != nil {
			return nil, fmt.Errorf("%w: %s", ErrExpired, h.TxnID)
		}
		return reply, fmt.Errorf("%w: %s", ErrExpired, h.TxnID)
	}
	switch h.Kind {
	case evidence.KindNRO:
		return b.handleUpload(h, ev, payload)
	case evidence.KindDownloadRequest:
		return b.handleDownload(h, ev)
	case evidence.KindAbortRequest:
		return b.handleAbort(h, ev)
	case evidence.KindResolveRequest:
		return b.handleResolve(h, ev, payload)
	case evidence.KindSettleRequest:
		return b.handleSettle(h, ev, payload)
	case evidence.KindAuditChallenge:
		return b.handleAuditChallenge(h, ev, payload)
	default:
		return b.errorReply(h, fmt.Sprintf("unsupported message kind %s", h.Kind))
	}
}

// errorReply builds a signed Error message toward the sender of h.
//
// Cost note: answering costs the provider two RSA signatures and one
// hybrid encryption, so a flood of bogus-but-well-formed messages is an
// asymmetric-work amplifier. Production deployments should rate-limit
// error replies per peer; the protocol itself is unaffected (silence is
// always a safe fallback, and the client treats it as a timeout).
func (b *Provider) errorReply(h *evidence.Header, note string) (*Message, error) {
	senderKey, err := b.peerKey(h.SenderID)
	if err != nil {
		return nil, err // cannot even address the peer: silence
	}
	rh := b.newHeader(evidence.KindError, h.TxnID, h.SenderID, h.TTPID, b.bumpSeqTo(h.TxnID, h.Seq))
	rh.Note = note
	rh.SetDigests(nil)
	msg, _, err := b.buildMessage(rh, nil, senderKey)
	return msg, err
}

// handleUpload is step 2 of the Normal uploading session: verify the
// NRO and data, store the object, archive the NRO, reply with the NRR.
func (b *Provider) handleUpload(h *evidence.Header, ev *evidence.Evidence, data []byte) (*Message, error) {
	if herr := b.Health(); herr != nil {
		if _, serr := b.tracker.Get(h.TxnID); serr != nil {
			// Degraded mode: the journal cannot promise durability (or —
			// quorum-unavailable — cannot promise it survives losing a
			// node), so a NEW session must not bind evidence here:
			// accepting the NRO and crashing would leave the client
			// provably bound to an upload we cannot prove we received.
			// Known transactions (and downloads, aborts, resolves) keep
			// being served. The note prefix types the rejection for the
			// client's retry classification: quorum loss is transient
			// (anti-entropy repairs it), a sticky journal fault is not.
			note := degradedNotePrefix + "journal unavailable; not accepting new sessions"
			sentinel := ErrDegraded
			if errors.Is(herr, ErrQuorumUnavailable) {
				note = quorumNotePrefix + "replication quorum unavailable; not accepting new sessions"
				sentinel = ErrQuorumUnavailable
			}
			reply, rerr := b.errorReply(h, note)
			if rerr != nil {
				return nil, fmt.Errorf("%w: %v", sentinel, herr)
			}
			return reply, fmt.Errorf("%w: %v", sentinel, herr)
		}
	}
	if !h.MatchesData(data) {
		b.ctr.Inc(metrics.AuthFailures, 1)
		return b.errorReply(h, "data does not match NRO digests")
	}
	b.ctr.Inc(metrics.HashOps, 2)
	if _, err := b.store.Put(h.ObjectKey, data, h.DataMD5); err != nil {
		return b.errorReply(h, "storage error: "+err.Error())
	}
	faultpoint.Hit(fpProviderUploadBeforeJournal)
	// Journal the NRO and the object binding before anything is acked: a
	// crash past this line leaves the provider bound (it holds Alice's
	// NRO durably) and recovery must know which blob that binds.
	if err := b.putEvidence(h.TxnID, evidence.RolePeer, ev); err != nil {
		return nil, err // no ack; the client times out and resolves
	}
	if err := b.journalObject(h.TxnID, h.ObjectKey); err != nil {
		return nil, err
	}
	b.setState(h.TxnID, session.StateEvidenceReceived)
	b.auditAppend("upload", h.TxnID, fmt.Sprintf("stored %q (%d bytes, md5 %s)", h.ObjectKey, len(data), h.DataMD5.Hex()))
	faultpoint.Hit(fpProviderUploadBeforeNRR)

	if b.misbehavior().SilentAfterNRO {
		// Malicious Bob keeps the data and the NRO but withholds the
		// receipt.
		return nil, nil
	}
	return b.buildNRR(h, auditRootNote(data))
}

// buildNRR constructs the receipt for an upload header and archives
// the provider's own copy. auditNote, when non-empty, is the signed
// storage-dwell commitment (audit.RootNote over the object's chunk
// tree) that later KindAuditChallenge responses must prove against.
func (b *Provider) buildNRR(h *evidence.Header, auditNote string) (*Message, error) {
	senderKey, err := b.peerKey(h.SenderID)
	if err != nil {
		return nil, err
	}
	rh := b.newHeader(evidence.KindNRR, h.TxnID, h.SenderID, h.TTPID, b.bumpSeqTo(h.TxnID, h.Seq))
	rh.ObjectKey = h.ObjectKey
	rh.ObjectLen = h.ObjectLen
	rh.Note = auditNote
	// The NRR commits to the digests from the NRO: both sides now hold
	// a signature from the other over the same agreed value.
	rh.DataMD5 = h.DataMD5.Clone()
	rh.DataSHA256 = h.DataSHA256.Clone()
	msg, own, err := b.buildMessage(rh, nil, senderKey)
	if err != nil {
		return nil, err
	}
	if err := b.putEvidence(h.TxnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	b.setState(h.TxnID, session.StateCompleted)
	b.ctr.Inc(metrics.Rounds, 1)
	faultpoint.Hit(fpProviderUploadNRRBeforeSend)
	return msg, nil
}

// issueNRR (re)creates the receipt evidence for an upload whose NRO we
// hold, archiving the provider's own copy. Used by the resolve path
// when the direct NRR was withheld or lost.
func (b *Provider) issueNRR(nroHeader *evidence.Header) (*evidence.Evidence, error) {
	clientKey, err := b.peerKey(nroHeader.SenderID)
	if err != nil {
		return nil, err
	}
	rh := b.newHeader(evidence.KindNRR, nroHeader.TxnID, nroHeader.SenderID, nroHeader.TTPID, b.bumpSeqTo(nroHeader.TxnID, nroHeader.Seq))
	rh.ObjectKey = nroHeader.ObjectKey
	rh.ObjectLen = nroHeader.ObjectLen
	// Recompute the storage-dwell commitment from the stored copy: a
	// re-issued receipt carries the same auditable root as a direct one
	// (the upload path verified the bytes against the NRO digests, so
	// the recomputed root equals the one the direct NRR would carry).
	if obj, gerr := b.store.Get(nroHeader.ObjectKey); gerr == nil {
		rh.Note = auditRootNote(obj.Data)
	}
	rh.DataMD5 = nroHeader.DataMD5.Clone()
	rh.DataSHA256 = nroHeader.DataSHA256.Clone()
	_, own, err := b.buildMessage(rh, nil, clientKey)
	if err != nil {
		return nil, err
	}
	if err := b.putEvidence(nroHeader.TxnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	return own, nil
}

// handleDownload serves the downloading session: return the object
// with a signed receipt over the served bytes.
func (b *Provider) handleDownload(h *evidence.Header, ev *evidence.Evidence) (*Message, error) {
	obj, err := b.store.Get(h.ObjectKey)
	if err != nil {
		return b.errorReply(h, "no such object: "+h.ObjectKey)
	}
	data := obj.Data
	if mut := b.misbehavior().TamperOnDownload; mut != nil {
		data = mut(data)
	}
	if err := b.putEvidence(h.TxnID, evidence.RolePeer, ev); err != nil {
		return nil, err
	}

	senderKey, err := b.peerKey(h.SenderID)
	if err != nil {
		return nil, err
	}
	rh := b.newHeader(evidence.KindDownloadResponse, h.TxnID, h.SenderID, h.TTPID, b.bumpSeqTo(h.TxnID, h.Seq))
	rh.ObjectKey = h.ObjectKey
	rh.SetDigests(data)
	b.ctr.Inc(metrics.HashOps, 2)
	msg, own, err := b.buildMessage(rh, data, senderKey)
	if err != nil {
		return nil, err
	}
	if err := b.putEvidence(h.TxnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	b.ctr.Inc(metrics.Rounds, 1)
	b.auditAppend("download", h.TxnID, fmt.Sprintf("served %q (%d bytes)", h.ObjectKey, len(data)))
	return msg, nil
}

// handleAbort implements §4.2: on a consistent abort request, answer
// Accept (dropping the transaction's stored object) or Reject (when
// the transaction already completed); the checkInbound validation
// failing would instead have produced the Error reply inviting a
// corrected resubmission.
func (b *Provider) handleAbort(h *evidence.Header, ev *evidence.Evidence) (*Message, error) {
	if err := b.putEvidence(h.TxnID, evidence.RolePeer, ev); err != nil {
		return nil, err
	}
	senderKey, err := b.peerKey(h.SenderID)
	if err != nil {
		return nil, err
	}
	state, serr := b.tracker.Get(h.TxnID)
	kind := evidence.KindAbortAccept
	note := "transaction aborted"
	switch {
	case serr != nil:
		// Unknown transaction: nothing to abort; accepting is safe and
		// gives Alice her evidence of cancellation.
		note = "transaction unknown; abort recorded"
	case state == session.StateCompleted:
		kind = evidence.KindAbortReject
		note = "transaction already completed; abort rejected"
	default:
		// Journal the aborted state before dropping the blob: a crash in
		// between leaves a durable abort that recovery honors by
		// re-deleting the object, whereas the reverse order would leave a
		// deleted object behind a transaction recovery still thinks is
		// live.
		b.setState(h.TxnID, session.StateAborted)
		b.txnMu.Lock()
		objKey := b.txnObject[h.TxnID]
		b.txnMu.Unlock()
		if objKey != "" {
			b.store.Delete(objKey)
		}
	}
	rh := b.newHeader(kind, h.TxnID, h.SenderID, h.TTPID, b.bumpSeqTo(h.TxnID, h.Seq))
	rh.Note = note
	rh.SetDigests(nil)
	msg, own, err := b.buildMessage(rh, nil, senderKey)
	if err != nil {
		return nil, err
	}
	if err := b.putEvidence(h.TxnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	b.ctr.Inc(metrics.Aborts, 1)
	b.auditAppend("abort", h.TxnID, note)
	faultpoint.Hit(fpProviderAbortBeforeAck)
	return msg, nil
}

// handleResolve answers a TTP-forwarded resolve query (§4.3). The
// payload carries the claimant's original NRO (encoded). The provider
// responds to the TTP with its NRR for the transaction (re-signed, to
// be relayed) or asks for a session restart when it never received the
// data.
func (b *Provider) handleResolve(h *evidence.Header, ev *evidence.Evidence, payload []byte) (*Message, error) {
	if mb := b.misbehavior(); mb.IgnoreResolve {
		return nil, nil
	}
	if h.SenderID != h.TTPID {
		// Resolve queries must come through the TTP.
		return b.errorReply(h, "resolve not sent by TTP")
	}
	if err := b.putEvidence(h.TxnID, evidence.RolePeer, ev); err != nil {
		return nil, err
	}
	ttpKey, err := b.peerKey(h.SenderID)
	if err != nil {
		return nil, err
	}
	rh := b.newHeader(evidence.KindResolveResponse, h.TxnID, h.SenderID, h.TTPID, b.bumpSeqTo(h.TxnID, h.Seq))
	rh.SetDigests(nil)

	var relay []byte
	if st, serr := b.tracker.Get(h.TxnID); serr == nil && st == session.StateAborted {
		// The transaction was aborted — possibly honored again during
		// crash recovery. Re-presenting (or newly issuing) an NRR here
		// would re-bind us to a blob we deleted; relay the abort receipt
		// instead so the claimant gains its counter-evidence.
		rh.Note = "aborted"
		if own, err := b.EvidenceByKind(h.TxnID, evidence.RoleOwn, evidence.KindAbortAccept); err == nil {
			relay = own.Encode()
		}
	} else if own, err := b.EvidenceByKind(h.TxnID, evidence.RoleOwn, evidence.KindNRR); err == nil {
		// We completed our side before: re-present the receipt; the
		// transaction can continue. EvidenceByKind reads through to the
		// cold archive, so a resolve against a checkpointed session still
		// finds the receipt.
		rh.Note = "continue"
		relay = own.Encode()
	} else if nro, err := b.EvidenceByKind(h.TxnID, evidence.RolePeer, evidence.KindNRO); err == nil {
		// We hold the claimant's NRO and (if honest storage) the data,
		// but never issued the NRR — issue it now so the transaction
		// continues. This is the §4.3 case where Bob's receipt was
		// withheld or lost.
		nrr, err := b.issueNRR(nro.Header)
		if err != nil {
			return b.errorReply(h, "cannot issue receipt: "+err.Error())
		}
		rh.Note = "continue"
		relay = nrr.Encode()
	} else if nroBytes := payload; len(nroBytes) > 0 {
		// We never saw this transaction. Verify the claimant's NRO; if
		// genuine, the data never arrived (the TTP does not forward
		// bulk data in the cloud setting, §4.3) — ask for a restart.
		claimed, derr := evidence.Decode(nroBytes)
		if derr != nil {
			return b.errorReply(h, "resolve carries malformed evidence")
		}
		claimantKey, kerr := b.peerKey(claimed.Header.SenderID)
		if kerr != nil || claimed.VerifyWith(claimantKey) != nil {
			return b.errorReply(h, "resolve evidence does not verify")
		}
		b.ctr.Inc(metrics.VerifyOps, 2)
		rh.Note = "restart"
	} else {
		return b.errorReply(h, "resolve without evidence for unknown transaction")
	}
	msg, own, err := b.buildMessage(rh, relay, ttpKey)
	if err != nil {
		return nil, err
	}
	if err := b.putEvidence(h.TxnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	b.ctr.Inc(metrics.Resolves, 1)
	b.ctr.Inc(metrics.TTPMsgs, 1)
	b.auditAppend("resolve", h.TxnID, rh.Note)
	return msg, nil
}

// Resolve lets the PROVIDER initiate the §4.3 procedure: "Only when
// there is no further response or specified following activities after
// he has sent NRR, Bob needs to initiate the Resolve procedure in case
// disputation happens." Bob submits his NRR for the transaction; the
// TTP relays the query to the client or issues a statement (typically
// "peer-unreachable" for an offline client) that Bob archives as proof
// he attempted completion.
//
// The TTP's identity comes from WithTTPID, making the signature
// identical to the Client's — both sides satisfy the Resolver
// interface.
func (b *Provider) Resolve(ctx context.Context, ttpConn transport.Conn, txnID, report string) (*ResolveResult, error) {
	if err := CheckContext(ctx); err != nil {
		return nil, err
	}
	ttpID := b.ttpID
	if ttpID == "" {
		return nil, fmt.Errorf("core: provider has no TTP configured (construct with WithTTPID)")
	}
	defer applyDeadline(ctx, ttpConn)()
	own, err := b.EvidenceByKind(txnID, evidence.RoleOwn, evidence.KindNRR)
	if err != nil {
		return nil, fmt.Errorf("core: provider has no NRR for %s: %w", txnID, err)
	}
	h := b.newHeader(evidence.KindResolveRequest, txnID, ttpID, ttpID, b.nextSeq(txnID))
	h.Note = report
	h.SetDigests(nil)
	ttpKey, err := b.peerKey(ttpID)
	if err != nil {
		return nil, err
	}
	msg, _, err := b.buildMessage(h, own.Encode(), ttpKey)
	if err != nil {
		return nil, err
	}
	if err := b.send(ttpConn, msg); err != nil {
		return nil, fmt.Errorf("core: sending provider resolve: %w", err)
	}
	b.ctr.Inc(metrics.Resolves, 1)
	b.ctr.Inc(metrics.TTPMsgs, 1)

	pu := b.pumpFor(ttpConn)
	raw, err := pu.recv(ctx, b.clk, 4*b.timeout)
	if err != nil {
		return nil, err
	}
	m, err := DecodeMessage(raw)
	if err != nil {
		return nil, wrapProto(err)
	}
	rh, ev, err := b.checkInbound(m)
	if err != nil {
		return nil, err
	}
	b.ctr.Inc(metrics.MsgsRecv, 1)
	if rh.Kind != evidence.KindResolveResponse || rh.SenderID != ttpID {
		return nil, fmt.Errorf("%w: unexpected resolve answer %s from %s", ErrProtocol, rh.Kind, rh.SenderID)
	}
	res := &ResolveResult{TxnID: txnID, Outcome: rh.Note, TTPStatement: ev}
	if err := b.putEvidence(txnID, evidence.RolePeer, ev); err != nil {
		return nil, err
	}
	b.auditAppend("resolve-initiated", txnID, rh.Note)
	return res, nil
}

// journalObject records the transaction → object-key binding — journal
// record plus in-memory map, bracketed by ckptMu's read side like every
// journal+mutate pair — so recovery knows which blob an abort must
// drop.
func (b *Provider) journalObject(txn, objectKey string) error {
	b.ckptMu.RLock()
	defer b.ckptMu.RUnlock()
	if err := b.journalAppend(&journalRecord{Kind: jrObject, Txn: txn, Note: objectKey}); err != nil {
		return err
	}
	b.txnMu.Lock()
	b.txnObject[txn] = objectKey
	b.txnMu.Unlock()
	return nil
}

// Health returns nil while the provider is fully serving, or a named
// reason while it is degraded (new sessions refused; downloads, aborts
// and resolves still served): the journal's sticky I/O error, or —
// wrapped in ErrQuorumUnavailable — the replication group's quorum
// outage. Wire it into the /healthz endpoint: the handler answers 503
// with the reason text.
func (b *Provider) Health() error {
	if b.journal == nil {
		return nil
	}
	if err := b.journal.Healthy(); err != nil {
		return err
	}
	if b.repl != nil {
		if err := b.repl.Quorum(); err != nil {
			return fmt.Errorf("%w: %v", ErrQuorumUnavailable, err)
		}
	}
	return nil
}

// Degraded reports whether the provider is refusing new sessions
// because its journal can no longer accept appends (or replicate them
// to a write quorum).
func (b *Provider) Degraded() bool { return b.Health() != nil }

// Journal exposes the provider's WAL so a deployment can attach a
// replication group to it (the group's streamers read the journal by
// LSN range). Nil without WithJournal.
func (b *Provider) Journal() *wal.WAL { return b.journal }

// SetReplicator attaches the quorum replication group after
// construction — deployments build providers first, then the per-shard
// groups over the providers' journals. Must be called before the
// provider starts serving; it is not synchronized with in-flight
// handlers.
func (b *Provider) SetReplicator(r Replicator) { b.repl = r }

// ExpireStale drives every live transaction whose step deadline is at
// or before now to its abort state, returning how many were expired.
// Wire it to a core.Server reaper (ServerExpiry) or call it directly;
// it is a no-op without WithDeadlinePolicy because no deadlines are
// ever stamped.
func (b *Provider) ExpireStale(now time.Time) int {
	n := 0
	for _, txn := range b.tracker.ExpireBefore(now) {
		if err := b.expireTxn(txn); err == nil {
			n++
		}
	}
	return n
}

// expireIfStale lazily expires the transaction behind an inbound
// message when its deadline has passed but the reaper has not swept
// yet. Only session-advancing kinds are gated: an abort or resolve on
// an overdue transaction must still be served — those are exactly the
// messages that drain it.
func (b *Provider) expireIfStale(h *evidence.Header) bool {
	if !b.deadline.enabled() {
		return false
	}
	if h.Kind != evidence.KindNRO && h.Kind != evidence.KindDownloadRequest {
		return false
	}
	dl := b.tracker.Deadline(h.TxnID)
	if dl.IsZero() || b.clk.Now().Before(dl) {
		return false
	}
	b.tracker.ClearDeadline(h.TxnID)
	return b.expireTxn(h.TxnID) == nil
}

// expireTxn drives one overdue transaction to its §4.2 abort outcome:
// claim the terminal transition (first-wins against a concurrently
// completing handler — setState refuses transitions out of terminal
// states), issue and archive the abort receipt the resolve path will
// relay to the client, and drop the stored blob so the abort means
// what it says.
func (b *Provider) expireTxn(txn string) error {
	if err := b.setState(txn, session.StateAborted); err != nil {
		return err // lost the race to a completing handler: nothing to expire
	}
	note := expiredNotePrefix + "step deadline exceeded"
	if nro, err := b.EvidenceByKind(txn, evidence.RolePeer, evidence.KindNRO); err == nil {
		if _, rerr := b.issueAbortReceipt(nro.Header, note); rerr != nil {
			return rerr
		}
	}
	b.txnMu.Lock()
	objKey := b.txnObject[txn]
	b.txnMu.Unlock()
	if objKey != "" {
		b.store.Delete(objKey)
	}
	b.ctr.Inc(metrics.Aborts, 1)
	b.auditAppend("expire", txn, note)
	return nil
}

// issueAbortReceipt creates and archives the signed abort-accept the
// expiry path issues toward the NRO's sender; the resolve path relays
// it exactly like a client-requested abort receipt.
func (b *Provider) issueAbortReceipt(nroHeader *evidence.Header, note string) (*evidence.Evidence, error) {
	clientKey, err := b.peerKey(nroHeader.SenderID)
	if err != nil {
		return nil, err
	}
	rh := b.newHeader(evidence.KindAbortAccept, nroHeader.TxnID, nroHeader.SenderID, nroHeader.TTPID, b.bumpSeqTo(nroHeader.TxnID, nroHeader.Seq))
	rh.Note = note
	rh.SetDigests(nil)
	_, own, err := b.buildMessage(rh, nil, clientKey)
	if err != nil {
		return nil, err
	}
	if err := b.putEvidence(nroHeader.TxnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	return own, nil
}

// Recover replays the provider's journal after a restart: the evidence
// archive, session tracker, replay guard, sequence counters and the
// transaction → object map are rebuilt, and acked aborts are honored by
// re-deleting their stored objects (a crash may have hit between
// journaling the abort and dropping the blob). Transactions the crash
// left non-terminal are listed in NeedsResolve; per §4.3 the provider
// may escalate them itself (Resolve) or simply wait — its journaled
// evidence already answers any TTP query about them.
func (b *Provider) Recover(ctx context.Context) (*RecoveryReport, error) {
	rep, err := b.recoverBase(ctx, func(r *journalRecord) error {
		if r.Kind == jrObject {
			b.txnMu.Lock()
			b.txnObject[r.Txn] = r.Note
			b.txnMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, txn := range rep.Transactions {
		st, serr := b.tracker.Get(txn)
		if serr != nil || st != session.StateAborted {
			continue
		}
		b.txnMu.Lock()
		objKey := b.txnObject[txn]
		b.txnMu.Unlock()
		if objKey == "" {
			continue
		}
		if err := b.store.Delete(objKey); err == nil {
			rep.HonoredAborts = append(rep.HonoredAborts, txn)
		} else if errors.Is(err, storage.ErrNotFound) {
			// Already gone — the delete landed before the crash.
			rep.HonoredAborts = append(rep.HonoredAborts, txn)
		} else {
			return rep, fmt.Errorf("core: honoring abort of %s: %w", txn, err)
		}
	}
	b.auditAppend("recover", "", fmt.Sprintf("replayed %d records, %d txns, %d unfinished, %d aborts honored, torn tail: %v",
		rep.Records, len(rep.Transactions), len(rep.NeedsResolve), len(rep.HonoredAborts), rep.TornTail))
	return rep, nil
}
