package core

import "repro/internal/faultpoint"

// Faultpoint names at the crash-sensitive instants of the protocol
// engines. Each marks a boundary the recovery design §4.3 reasoning
// cares about: before the journal write (crash loses the transition —
// the message was never acked, peer escalates), between journal and
// send (transition durable, peer unserved — recovery re-presents it),
// and after send before the reply lands (both sides hold evidence but
// neither knows it — resolve reconciles). The chaos suite arms each in
// turn with faultpoint.Kill and asserts the dispute invariant.
var (
	fpClientUploadBeforeJournal     = faultpoint.Register("client.upload.before-journal")
	fpClientUploadBeforeSend        = faultpoint.Register("client.upload.after-journal-before-send")
	fpClientUploadBeforeAck         = faultpoint.Register("client.upload.after-send-before-ack")
	fpProviderUploadBeforeJournal   = faultpoint.Register("provider.upload.after-store-before-journal")
	fpProviderUploadBeforeNRR       = faultpoint.Register("provider.upload.after-journal-before-nrr")
	fpProviderUploadNRRBeforeSend   = faultpoint.Register("provider.upload.after-nrr-journal-before-send")
	fpProviderAbortBeforeAck        = faultpoint.Register("provider.abort.after-journal-before-ack")
	fpClientResolveBeforeCompletion = faultpoint.Register("client.resolve.after-send-before-outcome")

	// Resilience sites (PR 5): a handler wedged mid-message (arm with a
	// sleep for the slow-handler scenario, Kill for the crash sweep) and
	// the pool's TTP dial (arm with an error for the blackhole/breaker
	// scenario).
	fpServerHandleSlow = faultpoint.Register("server.handle.slow")
	fpPoolTTPBlackhole = faultpoint.Register("pool.ttp.dial-blackhole")

	// Sharding sites (PR 8): a frame routed to the wrong shard (arm
	// with an error to force the misroute; the engine's cross-shard
	// evidence sweep must keep the dispute invariant anyway) and a
	// shard's recovery goroutine failing partway through the parallel
	// fan-out (the other shards must still come back, and a retry must
	// converge because per-shard recovery is idempotent).
	fpShardRouteWrongShard = faultpoint.Register("shard.route.wrong-shard")
	fpShardRecoverPartial  = faultpoint.Register("shard.recover.partial")

	// Storage-dwell audit sites (PR 9): the provider silently dropping a
	// challenge (arm with an error for the lazy-provider scenario, Kill
	// for the crash sweep — either way the claimant is left holding an
	// unanswered journaled challenge), the provider answering with
	// proofs built over a stale copy of the object (arm with an error;
	// the response root cannot match the NRR commitment, so the verifier
	// must reject it), and a crash between journaling the response
	// evidence and sending it (the restarted provider holds proof it
	// answered; the claimant retries or convicts on the deadline).
	fpProviderAuditDropChallenge = faultpoint.Register("provider.audit.drop-challenge")
	fpProviderAuditStaleProof    = faultpoint.Register("provider.audit.stale-proof")
	fpProviderAuditCrashMid      = faultpoint.Register("provider.audit.crash-mid-audit")
)
