package core

import (
	"testing"
	"time"

	"repro/internal/transport"
)

// TestPumpEviction: closing a connection must evict its cached pump so
// long-lived parties do not leak one entry per past connection.
func TestPumpEviction(t *testing.T) {
	p := &party{pumps: make(map[transport.Conn]*pump)}

	a, b := transport.Pipe(0)
	pu := p.pumpFor(a)
	if p.pumpCount() != 1 {
		t.Fatalf("pumpCount = %d, want 1", p.pumpCount())
	}
	// Same conn → same pump, no duplicate entry.
	if p.pumpFor(a) != pu {
		t.Fatal("pumpFor returned a different pump for the same conn")
	}
	b.Close()
	a.Close()
	deadline := time.Now().Add(2 * time.Second)
	for p.pumpCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pump not evicted after close; pumpCount = %d", p.pumpCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
