package core_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

// TestPoolBackoffCappedUnderRetries drives a real pool whose dialer
// always fails transiently: with Backoff far above MaxBackoff the cap
// must bound the total retry wait (the old uncapped doubling would have
// slept the full hour-scale sequence).
func TestPoolBackoffCappedUnderRetries(t *testing.T) {
	d := newDeploy(t, time.Second)
	dial := func(ctx context.Context) (transport.Conn, error) {
		return nil, errors.New("dial: connection refused") // transient
	}
	pool := core.NewSessionPool(d.Client, dial,
		core.PoolRetries(4),
		core.PoolBackoff(time.Hour), // ~an hour per retry if uncapped
		core.PoolMaxBackoff(20*time.Millisecond),
		core.PoolBackoffSeed(1),
	)
	defer pool.Close()

	start := time.Now()
	_, err := pool.Upload(context.Background(), "txn-backoff", "k", []byte("d"))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	// 4 retries × at most 30ms jittered delay, plus slack for slow CI.
	if elapsed > 2*time.Second {
		t.Fatalf("retries took %v; MaxBackoff cap not applied", elapsed)
	}
}

// TestPoolRetryMetrics checks the pool reports retries and idle reuse
// through its registry.
func TestPoolRetryMetrics(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	reg := obs.NewRegistry()
	fails := 2
	dial := func(ctx context.Context) (transport.Conn, error) {
		if fails > 0 {
			fails--
			return nil, errors.New("flap")
		}
		return d.DialProvider()
	}
	pool := core.NewSessionPool(d.Client, dial,
		core.PoolRetries(5),
		core.PoolBackoff(time.Millisecond),
		core.PoolBackoffSeed(1),
		core.PoolRegistry(reg),
	)
	defer pool.Close()

	if _, err := pool.Upload(context.Background(), "txn-retry-met", "k", []byte("d")); err != nil {
		t.Fatalf("upload: %v", err)
	}
	if got := reg.Counter("pool_retries_total").Value(); got != 2 {
		t.Errorf("pool_retries_total = %d, want 2", got)
	}
	// Second op on the warm pool must reuse the idle connection.
	if _, err := pool.Download(context.Background(), "txn-retry-met-2", "k", "txn-retry-met"); err != nil {
		t.Fatalf("download: %v", err)
	}
	if got := reg.Counter("pool_idle_hits_total").Value(); got < 1 {
		t.Errorf("pool_idle_hits_total = %d, want >= 1", got)
	}
	if got := reg.Counter("pool_idle_misses_total").Value(); got < 1 {
		t.Errorf("pool_idle_misses_total = %d, want >= 1", got)
	}
}

// errHandler fails every message with a fixed error (or panics).
type errHandler struct {
	err     error
	doPanic bool
}

func (h errHandler) Handle(raw []byte) ([]byte, error) {
	if h.doPanic {
		panic("handler exploded")
	}
	return nil, h.err
}

// waitCounter polls a counter until it reaches want or the deadline
// passes (the server records errors asynchronously to the test).
func waitCounter(t *testing.T, c *obs.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Value() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter stuck at %d, want >= %d", c.Value(), want)
}

// TestServerCountsHandlerErrors is the regression test for the
// swallowed handler error: an erroring handler must increment
// server_handler_errors_total under the right class and emit a
// structured handler_error event. Before the fix the error vanished
// (`reply, _ := s.handleOne(raw)`).
func TestServerCountsHandlerErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		h     errHandler
		class string
	}{
		{"peer_rejected", errHandler{err: core.ErrPeerRejected}, "peer_rejected"},
		{"integrity", errHandler{err: core.ErrIntegrity}, "integrity"},
		{"other", errHandler{err: errors.New("disk full")}, "other"},
		{"panic", errHandler{doPanic: true}, "panic"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			var logBuf bytes.Buffer
			srv := core.NewServer(tc.h,
				core.ServerRegistry(reg),
				core.ServerLogger(obs.NewLogger(&logBuf, obs.LevelDebug)),
			)
			net := transport.NewNetwork()
			l, err := net.Listen("stub")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(context.Background(), l)

			conn, err := net.Dial("stub")
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if err := conn.Send([]byte("trigger")); err != nil {
				t.Fatal(err)
			}

			classed := reg.Counter(obs.Labeled("server_handler_errors_total", "class", tc.class))
			waitCounter(t, classed, 1)
			waitCounter(t, reg.Counter("server_handler_errors_total"), 1)
			waitCounter(t, reg.Counter("server_msgs_total"), 1)
			if tc.class == "panic" {
				waitCounter(t, reg.Counter("server_panics_total"), 1)
			}

			// Shutdown drains the connection goroutines, so reading the
			// log buffer afterwards cannot race the logger.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			logged := logBuf.String()
			if !strings.Contains(logged, "event=handler_error") {
				t.Errorf("no handler_error event logged:\n%s", logged)
			}
			if !strings.Contains(logged, `class=`+tc.class) {
				t.Errorf("handler_error event missing class=%s:\n%s", tc.class, logged)
			}
		})
	}
}

// TestServerLatencyAndActiveConnMetrics covers the remaining server
// gauges on a healthy deployment: handled-message counter, latency
// histogram population, and the active-connection gauge returning to
// zero after the client disconnects.
func TestServerObsOnDeployment(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	if _, err := d.Client.Upload(context.Background(), conn, "txn-obs", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	snap := obs.Default().Snapshot()
	if snap.Counters["server_msgs_total"] == 0 {
		t.Error("server_msgs_total not incremented on the default registry")
	}
	h, ok := snap.Histograms["server_handle_latency_ns"]
	if !ok || h.Count == 0 {
		t.Error("server_handle_latency_ns histogram empty")
	}
}
