package core

// ShardedEngine partitions one provider's session space across N
// independent Provider shards. The TPNR protocol shards on the
// transaction ID: every evidence chain, session state machine, journal
// record and object binding is keyed by exactly one txn, so routing
// whole transactions to shards needs no cross-shard coordination at
// all. Each shard owns its own WAL, evidence archive, session tracker,
// replay guard and checkpoint schedule; throughput scales with cores
// (independent txn-lock spaces) and with disks (independent fsync
// streams), and crash recovery fans out one goroutine per shard.
//
// Routing uses shard.Ring's pinned consistent hash, so the same txn
// lands on the same shard across restarts — a shard's WAL is reopened
// by the shard that wrote it — and the client-side SessionPool can
// compute the same mapping without talking to the server.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/auditlog"
	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/obs"
	"repro/internal/shard"
)

// TxnHandler is optionally implemented by handlers that route
// internally on the transaction ID. The Server already peeks the txn
// from each frame (zero-copy, for its lock sharding); implementing
// this lets the handler reuse that peek instead of parsing the frame a
// second time.
type TxnHandler interface {
	Handler
	HandleTxn(txn string, raw []byte) ([]byte, error)
}

// ProviderEngine is the provider-shaped surface the daemons and the
// deploy harness program against: a single Provider and a
// ShardedEngine are interchangeable behind it.
type ProviderEngine interface {
	Handler
	SetMisbehavior(Misbehavior)
	SetAuditLog(l *auditlog.Log)
	EvidenceByKind(txn string, role evidence.Role, kind evidence.Kind) (*evidence.Evidence, error)
	Recover(ctx context.Context) (*RecoveryReport, error)
	Checkpoint() (*CheckpointReport, error)
	Health() error
	Degraded() bool
	ExpireStale(now time.Time) int
	// Storage-dwell self-audit surface (DESIGN.md §14): the daemons'
	// -audit-interval sweep re-verifies stored objects against their
	// own NRR commitments without any network round.
	VerifyStorage(txnID string) error
	AuditableTxns() []string
}

// Per-shard metric names; each carries an obs.Labeled shard index.
const (
	metricShardMsgs        = "shard_msgs_total"
	metricShardDegraded    = "shard_degraded"
	metricShardRecovered   = "shard_recovered_records_total"
	metricShardCheckpoints = "shard_checkpoints_total"
)

// shardMetrics holds per-shard pre-resolved handles, indexed by shard.
type shardMetrics struct {
	msgs        []*obs.Counter
	degraded    []*obs.Gauge
	recovered   []*obs.Counter
	checkpoints []*obs.Counter
}

func newShardMetrics(reg *obs.Registry, n int) *shardMetrics {
	m := &shardMetrics{
		msgs:        make([]*obs.Counter, n),
		degraded:    make([]*obs.Gauge, n),
		recovered:   make([]*obs.Counter, n),
		checkpoints: make([]*obs.Counter, n),
	}
	for i := 0; i < n; i++ {
		label := strconv.Itoa(i)
		m.msgs[i] = reg.Counter(obs.Labeled(metricShardMsgs, "shard", label))
		m.degraded[i] = reg.Gauge(obs.Labeled(metricShardDegraded, "shard", label))
		m.recovered[i] = reg.Counter(obs.Labeled(metricShardRecovered, "shard", label))
		m.checkpoints[i] = reg.Counter(obs.Labeled(metricShardCheckpoints, "shard", label))
	}
	return m
}

// ShardedOption adjusts a ShardedEngine's wiring.
type ShardedOption func(*shardedConfig)

type shardedConfig struct {
	reg *obs.Registry
}

// ShardedRegistry directs the engine's per-shard metrics into reg
// instead of the process-wide default.
func ShardedRegistry(r *obs.Registry) ShardedOption {
	return func(c *shardedConfig) { c.reg = r }
}

// ShardedEngine fronts N Provider shards behind the ProviderEngine
// surface. Immutable after construction; each shard provides its own
// internal synchronization exactly as it does standalone.
type ShardedEngine struct {
	ring   *shard.Ring
	shards []*Provider
	met    *shardMetrics
}

// NewShardedEngine builds the engine over the given shards. The slice
// order is the shard numbering — it must match the per-shard directory
// layout (shard.DirName) the shards' journals were opened under.
func NewShardedEngine(shards []*Provider, opts ...ShardedOption) (*ShardedEngine, error) {
	if len(shards) == 0 {
		return nil, errors.New("core: sharded engine needs at least one shard")
	}
	for i, p := range shards {
		if p == nil {
			return nil, fmt.Errorf("core: shard %d is nil", i)
		}
	}
	cfg := shardedConfig{reg: obs.Default()}
	for _, fn := range opts {
		fn(&cfg)
	}
	return &ShardedEngine{
		ring:   shard.New(len(shards)),
		shards: shards,
		met:    newShardMetrics(cfg.reg, len(shards)),
	}, nil
}

// N reports the shard count.
func (e *ShardedEngine) N() int { return len(e.shards) }

// Shard exposes shard i (tests, per-shard checkpoint drivers).
func (e *ShardedEngine) Shard(i int) *Provider { return e.shards[i] }

// ShardIndex is the pinned ring routing for txn, with no fault
// injection — the ground truth the SessionPool and tests align on.
func (e *ShardedEngine) ShardIndex(txn string) int { return e.ring.Shard(txn) }

// ShardFor returns the Provider owning txn.
func (e *ShardedEngine) ShardFor(txn string) *Provider { return e.shards[e.ring.Shard(txn)] }

// routeIndex is ShardIndex plus the wrong-shard faultpoint: arming
// shard.route.wrong-shard with an error deflects the frame to the next
// shard, modelling a routing bug or a stale ring. The dispute read
// path (EvidenceByKind) sweeps all shards, so even a misrouted session
// can still be arbitrated.
func (e *ShardedEngine) routeIndex(txn string) int {
	i := e.ring.Shard(txn)
	if err := faultpoint.HitErr(fpShardRouteWrongShard); err != nil {
		i = (i + 1) % len(e.shards)
	}
	return i
}

// Handle routes one frame by its peeked transaction ID. Frames whose
// txn cannot be peeked go to shard 0, whose handler rejects them the
// same way an unsharded provider would.
func (e *ShardedEngine) Handle(raw []byte) ([]byte, error) {
	if txn, ok := txnOf(raw); ok {
		return e.HandleTxn(txn, raw)
	}
	return e.shards[0].Handle(raw)
}

// HandleTxn routes a frame whose transaction ID the caller already
// peeked (the Server does, for its lock sharding) — no second parse.
func (e *ShardedEngine) HandleTxn(txn string, raw []byte) ([]byte, error) {
	i := e.routeIndex(txn)
	e.met.msgs[i].Inc()
	return e.shards[i].Handle(raw)
}

// HandleBatch implements BatchHandler: the round's frames are grouped
// by owning shard, each group batch-verified by its shard, and the
// replies reassembled in frame order so the Server's batched drain
// path works unchanged over a sharded engine.
func (e *ShardedEngine) HandleBatch(raws [][]byte) ([][]byte, []error) {
	replies := make([][]byte, len(raws))
	errs := make([]error, len(raws))
	groups := make(map[int][]int, len(e.shards))
	for fi, raw := range raws {
		si := 0
		if txn, ok := txnOf(raw); ok {
			si = e.routeIndex(txn)
		}
		groups[si] = append(groups[si], fi)
	}
	for si, idxs := range groups {
		sub := make([][]byte, len(idxs))
		for j, fi := range idxs {
			sub[j] = raws[fi]
		}
		srep, serr := e.shards[si].HandleBatch(sub)
		e.met.msgs[si].Add(int64(len(idxs)))
		for j, fi := range idxs {
			replies[fi], errs[fi] = srep[j], serr[j]
		}
	}
	return replies, errs
}

// SetMisbehavior broadcasts the behaviour switch to every shard.
func (e *ShardedEngine) SetMisbehavior(m Misbehavior) {
	for _, p := range e.shards {
		p.SetMisbehavior(m)
	}
}

// SetAuditLog attaches one audit log to every shard. auditlog.Append
// is mutex-serialized, so a single hash chain spanning all shards
// stays consistent.
func (e *ShardedEngine) SetAuditLog(l *auditlog.Log) {
	for _, p := range e.shards {
		p.SetAuditLog(l)
	}
}

// EvidenceByKind is the dispute read path: the owning shard answers in
// the common case, and a miss falls back to sweeping the other shards
// so evidence written under a misrouting bug (or before a shard-count
// change) is still found. Arbitration correctness must never hinge on
// routing correctness.
func (e *ShardedEngine) EvidenceByKind(txn string, role evidence.Role, kind evidence.Kind) (*evidence.Evidence, error) {
	owner := e.ring.Shard(txn)
	ev, err := e.shards[owner].EvidenceByKind(txn, role, kind)
	if err == nil {
		return ev, nil
	}
	for i, p := range e.shards {
		if i == owner {
			continue
		}
		if ev, serr := p.EvidenceByKind(txn, role, kind); serr == nil {
			return ev, nil
		}
	}
	return nil, err
}

// RecoverShards replays every shard's journal in parallel, one
// goroutine per shard — recovery wall time is the slowest shard, not
// the sum. The returned slice is indexed by shard; a shard that failed
// has a nil report and contributes to the joined error. Shards that
// succeeded stay recovered either way: per-shard recovery is
// idempotent, so the caller may simply retry after a partial failure.
func (e *ShardedEngine) RecoverShards(ctx context.Context) ([]*RecoveryReport, error) {
	reps := make([]*RecoveryReport, len(e.shards))
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, p := range e.shards {
		wg.Add(1)
		go func(i int, p *Provider) {
			defer wg.Done()
			// Confine panics (including an armed faultpoint.Kill) to this
			// shard's slot: a wedged shard must not take down the shards
			// that recovered cleanly.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("core: shard %d recovery panic: %v", i, r)
				}
			}()
			if err := faultpoint.HitErr(fpShardRecoverPartial); err != nil {
				errs[i] = fmt.Errorf("core: shard %d recovery: %w", i, err)
				return
			}
			rep, err := p.Recover(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("core: shard %d recovery: %w", i, err)
				return
			}
			e.met.recovered[i].Add(int64(rep.Records))
			reps[i] = rep
		}(i, p)
	}
	wg.Wait()
	return reps, errors.Join(errs...)
}

// Recover fans recovery out across the shards and merges the per-shard
// reports into one provider-shaped summary.
func (e *ShardedEngine) Recover(ctx context.Context) (*RecoveryReport, error) {
	reps, err := e.RecoverShards(ctx)
	if err != nil {
		return nil, err
	}
	return MergeRecoveryReports(reps), nil
}

// MergeRecoveryReports folds per-shard reports into one. Counters sum,
// transaction lists concatenate, TornTail is any-shard, and
// SnapshotLSN — per-shard positions in unrelated journals — reports
// the max purely as a "some shard has checkpointed this far" signal.
func MergeRecoveryReports(reps []*RecoveryReport) *RecoveryReport {
	m := &RecoveryReport{}
	for _, r := range reps {
		if r == nil {
			continue
		}
		m.Records += r.Records
		m.TornTail = m.TornTail || r.TornTail
		m.Transactions = append(m.Transactions, r.Transactions...)
		m.NeedsResolve = append(m.NeedsResolve, r.NeedsResolve...)
		m.HonoredAborts = append(m.HonoredAborts, r.HonoredAborts...)
		m.OpenResolves = append(m.OpenResolves, r.OpenResolves...)
		if r.SnapshotLSN > m.SnapshotLSN {
			m.SnapshotLSN = r.SnapshotLSN
		}
		m.TailRecords += r.TailRecords
		m.ArchivedSessions += r.ArchivedSessions
		m.SkippedArchived += r.SkippedArchived
	}
	return m
}

// CheckpointShard compacts one shard. Per-shard checkpoint schedules
// are the point of the split: compaction of one shard never stalls the
// other shards' journal+mutate pairs.
func (e *ShardedEngine) CheckpointShard(i int) (*CheckpointReport, error) {
	rep, err := e.shards[i].Checkpoint()
	if err == nil {
		e.met.checkpoints[i].Inc()
	}
	return rep, err
}

// Checkpoint compacts every shard sequentially and merges the reports
// (Archived/Retained sum; LSN is the max across journals, same caveat
// as the recovery merge). Daemons prefer per-shard tickers via
// CheckpointShard; this exists for the ProviderEngine surface.
func (e *ShardedEngine) Checkpoint() (*CheckpointReport, error) {
	m := &CheckpointReport{}
	for i := range e.shards {
		rep, err := e.CheckpointShard(i)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d checkpoint: %w", i, err)
		}
		m.Archived += rep.Archived
		m.Retained += rep.Retained
		if rep.LSN > m.LSN {
			m.LSN = rep.LSN
		}
	}
	return m, nil
}

// DegradedShards lists shards whose journal has gone sticky-degraded,
// updating the per-shard gauges as a side effect.
func (e *ShardedEngine) DegradedShards() []int {
	var out []int
	for i, p := range e.shards {
		if p.Degraded() {
			e.met.degraded[i].Set(1)
			out = append(out, i)
		} else {
			e.met.degraded[i].Set(0)
		}
	}
	return out
}

// Health reports nil while every shard is fully serving, or an error
// naming the degraded shards. One degraded shard degrades /healthz for
// the whole daemon — an orchestrator should stop routing NEW sessions
// here (a new txn may hash onto the sick shard) — while the healthy
// shards keep serving everything and the sick shard keeps serving its
// existing sessions memory-only, exactly like an unsharded degraded
// provider.
func (e *ShardedEngine) Health() error {
	deg := e.DegradedShards()
	if len(deg) == 0 {
		return nil
	}
	errs := make([]error, 0, len(deg))
	for _, i := range deg {
		errs = append(errs, fmt.Errorf("shard %d: %w", i, e.shards[i].Health()))
	}
	return fmt.Errorf("core: %d/%d shards degraded: %w", len(deg), len(e.shards), errors.Join(errs...))
}

// Degraded reports whether any shard is refusing new sessions.
func (e *ShardedEngine) Degraded() bool { return e.Health() != nil }

// ExpireStale sweeps every shard's deadline reaper and sums the count;
// one Server-side reaper drives all shards.
func (e *ShardedEngine) ExpireStale(now time.Time) int {
	n := 0
	for _, p := range e.shards {
		n += p.ExpireStale(now)
	}
	return n
}

// Compile-time wiring checks: both engine shapes serve the daemons
// interchangeably, and the sharded engine keeps the zero-copy and
// batched dispatch paths.
var (
	_ ProviderEngine = (*Provider)(nil)
	_ ProviderEngine = (*ShardedEngine)(nil)
	_ TxnHandler     = (*ShardedEngine)(nil)
	_ BatchHandler   = (*ShardedEngine)(nil)
)
