package core_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/auditlog"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/deploy"
	"repro/internal/pki"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestServerConcurrent32InMemory hammers the deployment's core.Server
// with 32 goroutines mixing uploads, downloads, aborts and resolves
// over the in-memory transport. Afterwards every stored object must
// hold exactly the bytes its own transaction uploaded (no cross-talk),
// the evidence archive must hold every NRR, and the server must not
// have absorbed any panic.
func TestServerConcurrent32InMemory(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	ctx := context.Background()
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := d.DialProvider()
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			key := fmt.Sprintf("c32/obj-%02d", i)
			data := bytes.Repeat([]byte{byte(i + 1)}, 256+i)
			upTxn := fmt.Sprintf("c32-up-%02d", i)
			up, err := d.Client.Upload(ctx, conn, upTxn, key, data)
			if err != nil {
				errs <- fmt.Errorf("upload %d: %w", i, err)
				return
			}
			if up.NRR == nil || up.NRR.Header.TxnID != upTxn {
				errs <- fmt.Errorf("upload %d: NRR for wrong txn", i)
				return
			}
			switch i % 4 {
			case 0, 1:
				res, err := d.Client.Download(ctx, conn, fmt.Sprintf("c32-dl-%02d", i), key, upTxn)
				if err != nil {
					errs <- fmt.Errorf("download %d: %w", i, err)
					return
				}
				if !bytes.Equal(res.Data, data) || !res.IntegrityOK {
					errs <- fmt.Errorf("download %d: wrong bytes (cross-talk?)", i)
					return
				}
			case 2:
				res, err := d.Client.Abort(ctx, conn, fmt.Sprintf("c32-ab-%02d", i), "concurrent abort")
				if err != nil {
					errs <- fmt.Errorf("abort %d: %w", i, err)
					return
				}
				if !res.Accepted {
					errs <- fmt.Errorf("abort %d: rejected", i)
					return
				}
			case 3:
				ttpConn, err := d.DialTTP()
				if err != nil {
					errs <- err
					return
				}
				defer ttpConn.Close()
				res, err := d.Client.Resolve(ctx, ttpConn, upTxn, "concurrent probe")
				if err != nil {
					errs <- fmt.Errorf("resolve %d: %w", i, err)
					return
				}
				if res.Outcome != "continue" || res.PeerEvidence == nil {
					errs <- fmt.Errorf("resolve %d: outcome %q", i, res.Outcome)
					return
				}
				if res.PeerEvidence.Header.TxnID != upTxn {
					errs <- fmt.Errorf("resolve %d: evidence for txn %q", i, res.PeerEvidence.Header.TxnID)
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("c32/obj-%02d", i)
		obj, err := d.Store.Get(key)
		if err != nil {
			t.Fatalf("object %s missing: %v", key, err)
		}
		if want := bytes.Repeat([]byte{byte(i + 1)}, 256+i); !bytes.Equal(obj.Data, want) {
			t.Fatalf("object %s: stored bytes differ (cross-talk)", key)
		}
	}
	if p := d.ProviderServer.Panics(); p != 0 {
		t.Fatalf("provider server absorbed %d panics", p)
	}
	if p := d.TTPRuntime.Panics(); p != 0 {
		t.Fatalf("TTP runtime absorbed %d panics", p)
	}
}

// TestSetMisbehaviorDuringServe is the -race regression for the
// provider's runtime toggles: SetMisbehavior and SetAuditLog must be
// safe while 32 goroutines drive sessions through Serve.
func TestSetMisbehaviorDuringServe(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	ctx := context.Background()
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := d.DialProvider()
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			txn := fmt.Sprintf("race-%02d", i)
			if _, err := d.Client.Upload(ctx, conn, txn, "race/"+txn, []byte("v")); err != nil {
				t.Errorf("upload %d: %v", i, err)
			}
		}(i)
	}
	// Flip the toggles concurrently with the sessions above. The
	// misbehavior stays benign so every upload still succeeds; the race
	// detector is the assertion.
	log := auditlog.New(nil)
	flip := make(chan struct{})
	go func() {
		defer close(flip)
		for j := 0; j < 200; j++ {
			d.Provider.SetMisbehavior(core.Misbehavior{})
			if j%2 == 0 {
				d.Provider.SetAuditLog(log)
			} else {
				d.Provider.SetAuditLog(nil)
			}
		}
	}()
	wg.Wait()
	<-flip
}

// slowHandler is a Handler stub whose processing takes a fixed time;
// finished flips once the in-flight handling completed, so tests can
// observe whether Shutdown actually drained it.
type slowHandler struct {
	delay    time.Duration
	finished atomic.Bool
}

func (h *slowHandler) Handle(raw []byte) ([]byte, error) {
	time.Sleep(h.delay)
	h.finished.Store(true)
	return []byte("done"), nil
}

// TestServerShutdownDrainsInflight: Shutdown must wait for a handling
// already in progress before tearing connections down.
func TestServerShutdownDrainsInflight(t *testing.T) {
	h := &slowHandler{delay: 300 * time.Millisecond}
	srv := core.NewServer(h)
	net := transport.NewNetwork()
	l, err := net.Listen("slow")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), l)

	conn, err := net.Dial("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("work")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the handling start
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !h.finished.Load() {
		t.Fatal("Shutdown returned before the in-flight handling completed")
	}
}

// TestServerShutdownDeadline: a Shutdown context that expires before
// the drain completes reports ErrCancelled instead of hanging.
func TestServerShutdownDeadline(t *testing.T) {
	h := &slowHandler{delay: 2 * time.Second}
	srv := core.NewServer(h)
	net := transport.NewNetwork()
	l, err := net.Listen("stuck")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), l)

	conn, err := net.Dial("stuck")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("work")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("shutdown err = %v, want ErrCancelled", err)
	}
}

// panicHandler panics on a marker payload and echoes everything else.
type panicHandler struct{}

func (panicHandler) Handle(raw []byte) ([]byte, error) {
	if bytes.Equal(raw, []byte("boom")) {
		panic("injected handler failure")
	}
	return raw, nil
}

// TestServerPanicIsolation: a handler panic kills at most its own
// connection; other connections keep working and the panic is counted.
func TestServerPanicIsolation(t *testing.T) {
	srv := core.NewServer(panicHandler{})
	net := transport.NewNetwork()
	l, err := net.Listen("panicky")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), l)
	defer srv.Shutdown(context.Background())

	bad, err := net.Dial("panicky")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	good, err := net.Dial("panicky")
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	if err := bad.Send([]byte("boom")); err != nil {
		t.Fatal(err)
	}
	// The healthy connection must still round-trip.
	if err := good.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	reply, err := good.Recv()
	if err != nil || !bytes.Equal(reply, []byte("hello")) {
		t.Fatalf("healthy conn broken after sibling panic: %v %q", err, reply)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Panics() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Panics() == 0 {
		t.Fatal("panic not counted")
	}
}

// TestSessionPoolConcurrentUploads drives 32 concurrent protocol runs
// through a pool bounded to 4 connections: all succeed, all bytes are
// stored intact.
func TestSessionPoolConcurrentUploads(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	pool := d.NewPool(core.PoolMaxConns(4))
	defer pool.Close()
	ctx := context.Background()
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			txn := fmt.Sprintf("pool-%02d", i)
			data := bytes.Repeat([]byte{byte(i + 1)}, 128)
			if _, err := pool.Upload(ctx, txn, "pool/"+txn, data); err != nil {
				t.Errorf("pool upload %d: %v", i, err)
				return
			}
			res, err := pool.Download(ctx, txn+"-dl", "pool/"+txn, txn)
			if err != nil {
				t.Errorf("pool download %d: %v", i, err)
				return
			}
			if !bytes.Equal(res.Data, data) {
				t.Errorf("pool download %d: wrong bytes", i)
			}
		}(i)
	}
	wg.Wait()
}

// TestSessionPoolRetriesTransientDialFaults: the first dials fail, the
// retry path (fresh connection + backoff) recovers without surfacing
// the fault.
func TestSessionPoolRetriesTransientDialFaults(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	var fails atomic.Int32
	fails.Store(2)
	dial := func(ctx context.Context) (transport.Conn, error) {
		if fails.Add(-1) >= 0 {
			return nil, errors.New("transient network blip")
		}
		return d.Net.DialContext(ctx, deploy.ProviderName)
	}
	pool := core.NewSessionPool(d.Client, dial,
		core.PoolRetries(3), core.PoolBackoff(time.Millisecond))
	defer pool.Close()
	if _, err := pool.Upload(context.Background(), "pool-retry", "k", []byte("v")); err != nil {
		t.Fatalf("upload with transient dial faults: %v", err)
	}
}

// TestSessionPoolExhaustsRetries: a dialer that always fails surfaces
// ErrRetriesExhausted (no TTP configured, so no escalation).
func TestSessionPoolExhaustsRetries(t *testing.T) {
	d := newDeploy(t, time.Second)
	dial := func(ctx context.Context) (transport.Conn, error) {
		return nil, errors.New("network down")
	}
	pool := core.NewSessionPool(d.Client, dial,
		core.PoolRetries(2), core.PoolBackoff(time.Millisecond))
	defer pool.Close()
	if _, err := pool.Upload(context.Background(), "pool-dead", "k", []byte("v")); !errors.Is(err, core.ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

// TestSessionPoolEscalatesToResolve: the provider goes silent after
// the NRO, the pooled upload times out and escalates per §4.3 — and
// because the TTP relays Bob's NRR, the caller still receives a
// complete UploadResult.
func TestSessionPoolEscalatesToResolve(t *testing.T) {
	d := newDeploy(t, 400*time.Millisecond)
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	pool := d.NewPool()
	defer pool.Close()
	res, err := pool.Upload(context.Background(), "pool-esc", "k", []byte("v"))
	if err != nil {
		t.Fatalf("escalated upload: %v", err)
	}
	if res.NRO == nil || res.NRR == nil {
		t.Fatal("escalated result incomplete")
	}
	if res.NRR.Header.TxnID != "pool-esc" {
		t.Fatalf("relayed NRR for txn %q", res.NRR.Header.TxnID)
	}
}

// TestContextCancellationMapsToErrCancelled: a cancelled context
// surfaces as core.ErrCancelled from every public entry point.
func TestContextCancellationMapsToErrCancelled(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Client.Upload(ctx, conn, "ctx-up", "k", []byte("v")); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("Upload err = %v, want ErrCancelled", err)
	}
	if _, err := d.Client.Download(ctx, conn, "ctx-dl", "k", ""); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("Download err = %v, want ErrCancelled", err)
	}
	if _, err := d.Client.Abort(ctx, conn, "ctx-ab", "x"); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("Abort err = %v, want ErrCancelled", err)
	}
	pool := d.NewPool()
	defer pool.Close()
	if _, err := pool.Upload(ctx, "ctx-pool", "k", []byte("v")); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("pool Upload err = %v, want ErrCancelled", err)
	}
}

// TestContextCancelUnblocksMidProtocol: cancelling while the client
// waits for the provider's NRR returns promptly with ErrCancelled
// instead of waiting out the response timeout.
func TestContextCancelUnblocksMidProtocol(t *testing.T) {
	d := newDeploy(t, 30*time.Second) // timeout long enough to hang without ctx
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	conn := mustDial(t, d)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := d.Client.Upload(ctx, conn, "ctx-hang", "k", []byte("v"))
	if !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, should be prompt", elapsed)
	}
}

// TestDeprecatedOptionsShimStillWorks: the legacy Options struct,
// routed through the deprecated constructors, still produces a working
// provider/client pair.
func TestDeprecatedOptionsShimStillWorks(t *testing.T) {
	d := newDeploy(t, 5*time.Second) // supplies the CA
	now := time.Now()
	bobID, err := pki.NewIdentity(d.CA, "bob2", cryptoutil.InsecureTestKey(60), now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	aliceID, err := pki.NewIdentity(d.CA, "alice2", cryptoutil.InsecureTestKey(61), now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewMem(nil)
	provider, err := core.NewProviderFromOptions(core.Options{
		Identity:  bobID,
		CAKey:     d.CA.PublicKey(),
		Directory: core.Directory(d.CA.Lookup),
	}, store)
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClientFromOptions(core.Options{
		Identity:  aliceID,
		CAKey:     d.CA.PublicKey(),
		Directory: core.Directory(d.CA.Lookup),
	}, "bob2", deploy.TTPName)
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe(0)
	go provider.Serve(context.Background(), b)
	defer a.Close()
	if _, err := client.Upload(context.Background(), a, "legacy-1", "k", []byte("v")); err != nil {
		t.Fatalf("legacy-constructed pair failed: %v", err)
	}
	if _, err := store.Get("k"); err != nil {
		t.Fatal("legacy provider did not store the object")
	}
}
