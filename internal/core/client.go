package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/metrics"
	"repro/internal/session"
	"repro/internal/transport"
)

// Client is Alice: the storage customer running the TPNR protocol
// against a Provider, escalating to the TTP when the provider does not
// answer in time.
type Client struct {
	*party
	// ProviderID and TTPID name the counterparties for header fields.
	ProviderID string
	TTPID      string
}

// NewClient constructs a client engine from functional options.
func NewClient(providerID, ttpID string, opts ...Option) (*Client, error) {
	return NewClientFromOptions(buildOptions(opts), providerID, ttpID)
}

// NewClientFromOptions constructs a client engine from a legacy
// Options struct.
//
// Deprecated: use NewClient with functional options.
func NewClientFromOptions(o Options, providerID, ttpID string) (*Client, error) {
	p, err := newParty(o)
	if err != nil {
		return nil, err
	}
	return &Client{party: p, ProviderID: providerID, TTPID: ttpID}, nil
}

// UploadResult carries the outcome of a completed upload: the client's
// own NRO (what it committed to) and the provider's NRR (what it can
// show an arbitrator).
type UploadResult struct {
	TxnID string
	NRO   *evidence.Evidence
	NRR   *evidence.Evidence
}

// Upload runs the Normal-mode uploading session (Fig. 6b):
//
//	step 1  Alice → Bob: data + sealed NRO
//	step 2  Bob → Alice: sealed NRR
//
// On ErrTimeout the caller still holds the transaction (see
// PendingNRO) and should escalate with Resolve. The context cancels
// the session mid-protocol (mapped to ErrCancelled) and its deadline
// propagates onto deadline-capable transports.
func (c *Client) Upload(ctx context.Context, conn transport.Conn, txnID, objectKey string, data []byte) (*UploadResult, error) {
	if err := CheckContext(ctx); err != nil {
		return nil, err
	}
	defer applyDeadline(ctx, conn)()
	h := c.newHeader(evidence.KindNRO, txnID, c.ProviderID, c.TTPID, c.nextSeq(txnID))
	h.ObjectKey = objectKey
	h.SetDigests(data)
	c.ctr.Inc(metrics.HashOps, 2)

	providerKey, err := c.peerKey(c.ProviderID)
	if err != nil {
		return nil, err
	}
	msg, nro, err := c.buildMessage(h, data, providerKey)
	if err != nil {
		return nil, err
	}
	c.tracker.Begin(txnID)
	faultpoint.Hit(fpClientUploadBeforeJournal)
	// Journal the NRO before it leaves: once Bob holds it Alice is
	// committed, so the commitment must survive an immediate crash.
	if err := c.putEvidence(txnID, evidence.RoleOwn, nro); err != nil {
		return nil, err
	}
	faultpoint.Hit(fpClientUploadBeforeSend)
	if err := c.send(conn, msg); err != nil {
		return nil, fmt.Errorf("core: sending NRO: %w", err)
	}
	c.setState(txnID, session.StateEvidenceSent)
	c.ctr.Inc(metrics.Rounds, 1)
	faultpoint.Hit(fpClientUploadBeforeAck)

	pu := c.pumpFor(conn)
	nrr, err := c.awaitNRR(ctx, pu, txnID, h)
	if err != nil {
		return nil, err
	}
	c.setState(txnID, session.StateCompleted)
	return &UploadResult{TxnID: txnID, NRO: nro, NRR: nrr}, nil
}

// awaitNRR waits for and validates the provider's NRR matching the
// sent NRO header.
func (c *Client) awaitNRR(ctx context.Context, pu *pump, txnID string, sent *evidence.Header) (*evidence.Evidence, error) {
	raw, err := pu.recv(ctx, c.clk, c.timeout)
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			return nil, fmt.Errorf("%w: no NRR for %s", ErrTimeout, txnID)
		}
		return nil, fmt.Errorf("core: receiving NRR: %w", err)
	}
	m, err := DecodeMessage(raw)
	if err != nil {
		return nil, wrapProto(err)
	}
	h, ev, err := c.checkInbound(m)
	if err != nil {
		return nil, err
	}
	c.ctr.Inc(metrics.MsgsRecv, 1)
	if h.Kind == evidence.KindError {
		return nil, peerErr(h.Note)
	}
	if h.Kind != evidence.KindNRR {
		return nil, fmt.Errorf("%w: expected NRR, got %s", ErrProtocol, h.Kind)
	}
	if h.TxnID != txnID || h.SenderID != c.ProviderID {
		return nil, fmt.Errorf("%w: NRR transaction/sender mismatch", ErrProtocol)
	}
	// The receipt must commit to exactly the digests Alice sent: this
	// is the agreed digest the dispute procedure relies on.
	if !h.DataMD5.Equal(sent.DataMD5) || !h.DataSHA256.Equal(sent.DataSHA256) {
		return nil, fmt.Errorf("%w: NRR digests differ from uploaded data", ErrProtocol)
	}
	if err := c.putEvidence(txnID, evidence.RolePeer, ev); err != nil {
		return nil, err
	}
	return ev, nil
}

// DownloadResult carries a completed download.
type DownloadResult struct {
	TxnID string
	Data  []byte
	// Receipt is the provider's evidence over the served bytes.
	Receipt *evidence.Evidence
	// AgreedUpload, when the client archived an upload NRR for the same
	// object, is that original receipt; IntegrityOK reports whether the
	// served data matches it — the upload-to-download integrity link
	// the paper's §2.4 asks for.
	AgreedUpload *evidence.Evidence
	IntegrityOK  bool
}

// Download runs the downloading session: a signed request, then the
// provider's data + receipt. uploadTxn optionally names the upload
// transaction whose agreed digest the data must match; empty means
// "verify against any archived receipt for the object key, if one
// exists".
func (c *Client) Download(ctx context.Context, conn transport.Conn, txnID, objectKey, uploadTxn string) (*DownloadResult, error) {
	if err := CheckContext(ctx); err != nil {
		return nil, err
	}
	defer applyDeadline(ctx, conn)()
	h := c.newHeader(evidence.KindDownloadRequest, txnID, c.ProviderID, c.TTPID, c.nextSeq(txnID))
	h.ObjectKey = objectKey
	h.SetDigests(nil) // request carries no data; digests cover the empty string
	c.ctr.Inc(metrics.HashOps, 2)

	providerKey, err := c.peerKey(c.ProviderID)
	if err != nil {
		return nil, err
	}
	msg, own, err := c.buildMessage(h, nil, providerKey)
	if err != nil {
		return nil, err
	}
	c.tracker.Begin(txnID)
	if err := c.putEvidence(txnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	if err := c.send(conn, msg); err != nil {
		return nil, fmt.Errorf("core: sending download request: %w", err)
	}
	c.ctr.Inc(metrics.Rounds, 1)

	pu := c.pumpFor(conn)
	raw, err := pu.recv(ctx, c.clk, c.timeout)
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			return nil, fmt.Errorf("%w: no download response for %s", ErrTimeout, txnID)
		}
		return nil, err
	}
	m, err := DecodeMessage(raw)
	if err != nil {
		return nil, wrapProto(err)
	}
	rh, ev, err := c.checkInbound(m)
	if err != nil {
		return nil, err
	}
	c.ctr.Inc(metrics.MsgsRecv, 1)
	if rh.Kind == evidence.KindError {
		return nil, peerErr(rh.Note)
	}
	if rh.Kind != evidence.KindDownloadResponse || rh.TxnID != txnID {
		return nil, fmt.Errorf("%w: expected download response for %s, got %s for %s", ErrProtocol, txnID, rh.Kind, rh.TxnID)
	}
	// The served payload must match the digests the provider signed.
	if !rh.MatchesData(m.Payload) {
		c.ctr.Inc(metrics.AuthFailures, 1)
		return nil, fmt.Errorf("%w: served data does not match provider-signed digests", ErrProtocol)
	}
	c.ctr.Inc(metrics.HashOps, 2)
	if err := c.putEvidence(txnID, evidence.RolePeer, ev); err != nil {
		return nil, err
	}

	res := &DownloadResult{TxnID: txnID, Data: m.Payload, Receipt: ev, IntegrityOK: true}
	// Upload-to-download integrity: compare against the archived
	// agreed digest from the uploading session.
	if agreed := c.agreedReceipt(uploadTxn, objectKey); agreed != nil {
		res.AgreedUpload = agreed
		res.IntegrityOK = agreed.Header.DataMD5.Equal(rh.DataMD5) &&
			agreed.Header.DataSHA256.Equal(rh.DataSHA256)
		if !res.IntegrityOK {
			c.setState(txnID, session.StateFailed)
			return res, fmt.Errorf("%w: object %q, upload txn %s", ErrIntegrity, objectKey, agreed.Header.TxnID)
		}
	}
	c.setState(txnID, session.StateCompleted)
	return res, nil
}

// agreedReceipt finds the upload NRR fixing the object's agreed
// digest. Compacted upload sessions are consulted in the cold archive —
// without the fallback, downloading an object whose upload session was
// checkpointed away would silently skip the upload-to-download
// integrity check.
func (c *Client) agreedReceipt(uploadTxn, objectKey string) *evidence.Evidence {
	if uploadTxn != "" {
		if ev, err := c.EvidenceByKind(uploadTxn, evidence.RolePeer, evidence.KindNRR); err == nil {
			return ev
		}
		return nil
	}
	for _, txn := range c.archive.Transactions() {
		if ev, err := c.archive.ByKind(txn, evidence.RolePeer, evidence.KindNRR); err == nil && ev.Header.ObjectKey == objectKey {
			return ev
		}
	}
	if c.cold != nil {
		for _, txn := range c.cold.Transactions() {
			if ev, err := c.coldByKind(txn, evidence.RolePeer, evidence.KindNRR); err == nil && ev.Header.ObjectKey == objectKey {
				return ev
			}
		}
	}
	return nil
}

// AbortResult reports the provider's answer to an abort.
type AbortResult struct {
	TxnID string
	// Accepted is true when the provider agreed to cancel.
	Accepted bool
	// Receipt is the provider's NRR over the abort decision.
	Receipt *evidence.Evidence
}

// Abort cancels an ongoing transaction (§4.2, off-line TTP): Alice
// sends the transaction ID with an abort NRO; Bob responds Accept or
// Reject with an NRR. An Error answer (inconsistent request) surfaces
// as ErrPeerRejected, inviting the caller to regenerate and resubmit.
func (c *Client) Abort(ctx context.Context, conn transport.Conn, txnID, reason string) (*AbortResult, error) {
	if err := CheckContext(ctx); err != nil {
		return nil, err
	}
	defer applyDeadline(ctx, conn)()
	h := c.newHeader(evidence.KindAbortRequest, txnID, c.ProviderID, c.TTPID, c.nextSeq(txnID))
	h.Note = reason
	h.SetDigests(nil)
	providerKey, err := c.peerKey(c.ProviderID)
	if err != nil {
		return nil, err
	}
	msg, own, err := c.buildMessage(h, nil, providerKey)
	if err != nil {
		return nil, err
	}
	if err := c.putEvidence(txnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	if err := c.send(conn, msg); err != nil {
		return nil, fmt.Errorf("core: sending abort: %w", err)
	}
	c.ctr.Inc(metrics.Aborts, 1)
	c.ctr.Inc(metrics.Rounds, 1)

	pu := c.pumpFor(conn)
	raw, err := pu.recv(ctx, c.clk, c.timeout)
	if err != nil {
		return nil, err
	}
	m, err := DecodeMessage(raw)
	if err != nil {
		return nil, wrapProto(err)
	}
	rh, ev, err := c.checkInbound(m)
	if err != nil {
		return nil, err
	}
	c.ctr.Inc(metrics.MsgsRecv, 1)
	switch rh.Kind {
	case evidence.KindAbortAccept:
		if err := c.putEvidence(txnID, evidence.RolePeer, ev); err != nil {
			return nil, err
		}
		c.setState(txnID, session.StateAborted)
		return &AbortResult{TxnID: txnID, Accepted: true, Receipt: ev}, nil
	case evidence.KindAbortReject:
		if err := c.putEvidence(txnID, evidence.RolePeer, ev); err != nil {
			return nil, err
		}
		return &AbortResult{TxnID: txnID, Accepted: false, Receipt: ev}, nil
	case evidence.KindError:
		return nil, peerErr(rh.Note)
	default:
		return nil, fmt.Errorf("%w: unexpected %s to abort", ErrProtocol, rh.Kind)
	}
}

// ResolveResult reports the outcome of a TTP-mediated resolve (§4.3).
type ResolveResult struct {
	TxnID string
	// Outcome is the provider's action ("continue", "restart") or the
	// TTP's statement ("peer-unresponsive").
	Outcome string
	// PeerEvidence is the provider's NRR relayed through the TTP, when
	// the provider answered.
	PeerEvidence *evidence.Evidence
	// TTPStatement is the TTP's signed statement when the provider did
	// not answer — Alice's proof that "this session is failed and Bob
	// did not respond".
	TTPStatement *evidence.Evidence
}

// Resolver is the unified §4.3 escalation interface: either
// disadvantaged party — Client or Provider — submits a stalled
// transaction with its own evidence to the in-line TTP and receives
// the peer's relayed evidence or a signed TTP statement.
type Resolver interface {
	Resolve(ctx context.Context, ttpConn transport.Conn, txnID, report string) (*ResolveResult, error)
}

// Resolve escalates a stalled transaction to the in-line TTP: Alice
// sends the transaction ID, her NRO, and a report of anomalies; the
// TTP queries Bob and relays his evidence, or issues a signed
// unresponsiveness statement after the timeout.
func (c *Client) Resolve(ctx context.Context, ttpConn transport.Conn, txnID, report string) (*ResolveResult, error) {
	if err := CheckContext(ctx); err != nil {
		return nil, err
	}
	defer applyDeadline(ctx, ttpConn)()
	nro, err := c.archive.Get(txnID, evidence.RoleOwn)
	if err != nil {
		return nil, fmt.Errorf("core: no own evidence for %s: %w", txnID, err)
	}
	h := c.newHeader(evidence.KindResolveRequest, txnID, c.TTPID, c.TTPID, c.nextSeq(txnID))
	h.Note = report
	h.SetDigests(nil)
	ttpKey, err := c.peerKey(c.TTPID)
	if err != nil {
		return nil, err
	}
	// The original NRO travels in the payload so the TTP can verify
	// the claim's genuineness (§4.3).
	msg, own, err := c.buildMessage(h, nro.Encode(), ttpKey)
	if err != nil {
		return nil, err
	}
	if err := c.putEvidence(txnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	if err := c.send(ttpConn, msg); err != nil {
		return nil, fmt.Errorf("core: sending resolve request: %w", err)
	}
	c.ctr.Inc(metrics.Resolves, 1)
	c.ctr.Inc(metrics.TTPMsgs, 1)
	c.setState(txnID, session.StateResolving)
	faultpoint.Hit(fpClientResolveBeforeCompletion)

	pu := c.pumpFor(ttpConn)
	raw, err := pu.recv(ctx, c.clk, 4*c.timeout) // TTP needs its own round to Bob
	if err != nil {
		return nil, err
	}
	m, err := DecodeMessage(raw)
	if err != nil {
		return nil, wrapProto(err)
	}
	rh, ev, err := c.checkInbound(m)
	if err != nil {
		return nil, err
	}
	c.ctr.Inc(metrics.MsgsRecv, 1)
	if rh.Kind != evidence.KindResolveResponse {
		return nil, fmt.Errorf("%w: unexpected %s from TTP", ErrProtocol, rh.Kind)
	}
	res := &ResolveResult{TxnID: txnID, Outcome: rh.Note}
	if rh.SenderID == c.TTPID {
		// TTP's own statement (provider unresponsive, or relayed
		// verdict).
		res.TTPStatement = ev
		if err := c.putEvidence(txnID, evidence.RolePeer, ev); err != nil {
			return nil, err
		}
		if len(m.Payload) > 0 {
			// Relayed provider evidence rides in the payload.
			peer, err := evidence.Decode(m.Payload)
			if err == nil {
				provKey, kerr := c.peerKey(c.ProviderID)
				if kerr == nil && peer.VerifyWith(provKey) == nil {
					res.PeerEvidence = peer
					if err := c.putEvidence(txnID, evidence.RolePeer, peer); err != nil {
						return nil, err
					}
					if peer.Header.Kind == evidence.KindAbortAccept {
						// The provider honored an abort (possibly during its
						// own crash recovery): the relayed receipt closes the
						// transaction as aborted, not completed.
						c.setState(txnID, session.StateAborted)
					} else {
						c.setState(txnID, session.StateCompleted)
					}
				}
			}
		}
		return res, nil
	}
	return nil, fmt.Errorf("%w: resolve response from %q, want TTP %q", ErrProtocol, rh.SenderID, c.TTPID)
}

// PendingNRO returns the archived own-NRO for a transaction, used when
// escalating to Resolve after a timeout. Reads through to the cold
// archive for compacted sessions.
func (c *Client) PendingNRO(txnID string) (*evidence.Evidence, error) {
	return c.EvidenceByKind(txnID, evidence.RoleOwn, evidence.KindNRO)
}

// Recover replays the client's journal after a restart, rebuilding the
// evidence archive, session tracker, replay guard and sequence
// counters. Transactions the crash left non-terminal (NRO sent but no
// NRR archived, or a resolve opened but not concluded) are listed in
// NeedsResolve; the caller escalates each via Resolve, per §4.3.
func (c *Client) Recover(ctx context.Context) (*RecoveryReport, error) {
	return c.recoverBase(ctx, nil)
}
