package core

import (
	"context"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/clock"
	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/metrics"
	"repro/internal/pki"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Protocol errors surfaced to callers.
var (
	ErrTimeout         = errors.New("core: timed out waiting for peer response")
	ErrProtocol        = errors.New("core: protocol violation")
	ErrPeerRejected    = errors.New("core: peer rejected the request")
	ErrIntegrity       = errors.New("core: downloaded data fails the agreed digest")
	ErrUnknownIdentity = errors.New("core: cannot resolve peer identity")
	// ErrCancelled wraps context.Canceled / context.DeadlineExceeded (and
	// transport deadline expiry derived from a context) so callers can
	// distinguish "the caller gave up" from the protocol-level ErrTimeout
	// that licenses escalation to Resolve.
	ErrCancelled = errors.New("core: operation cancelled")
)

// CheckContext reports ctx cancellation or deadline expiry mapped onto
// ErrCancelled, or nil when the context is still live. Exported so
// sibling protocol packages (traditional, bridging) surface the same
// sentinel for caller-initiated termination.
func CheckContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	}
	return nil
}

// cancelErr maps an error produced by context or deadline machinery
// onto ErrCancelled; other errors pass through unchanged. Socket
// deadline expiry surfaces differently per transport — os.Err-
// DeadlineExceeded wrapped by net.OpError on TCP, or only a net.Error
// whose Timeout() reports true — so both shapes are checked: a
// deadline planted by applyDeadline is the context speaking through
// the socket and must not be mistaken for the protocol-level
// ErrTimeout that licenses escalation.
func cancelErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, os.ErrDeadlineExceeded) {
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	}
	return err
}

// applyDeadline maps the context deadline onto the connection when the
// transport supports absolute deadlines (TCP), so a blocked socket
// read unblocks when the context expires. The returned restore func
// clears the deadline again.
func applyDeadline(ctx context.Context, conn transport.Conn) func() {
	dc, ok := conn.(transport.DeadlineConn)
	if !ok {
		return func() {}
	}
	d, ok := ctx.Deadline()
	if !ok {
		return func() {}
	}
	dc.SetDeadline(d)
	return func() { dc.SetDeadline(time.Time{}) }
}

// Directory resolves a party name to its current certificate — the
// §5.1 requirement that parties "authenticate the validity" of each
// other's public keys before use.
type Directory func(name string) (*pki.Certificate, error)

// Options configure a protocol party.
//
// Deprecated: pass functional options (WithIdentity, WithClock, …) to
// the constructors instead; an existing struct can be bridged with
// WithOptions.
type Options struct {
	// Identity is this party's name, key pair and certificate.
	Identity *pki.Identity
	// CAKey verifies certificates from the directory.
	//
	// Deprecated: use WithCAPublicKey, which accepts any scheme's key.
	// Setting either field satisfies the constructor.
	CAKey *rsa.PublicKey
	// Directory resolves peer certificates.
	Directory Directory
	// Clock drives timestamps and timeouts; nil means the real clock.
	Clock clock.Clock
	// Counters receives protocol metrics; nil allocates a private set.
	Counters *metrics.Counters
	// MessageLifetime is the time-limit window stamped on outbound
	// messages (§5.5). Zero means DefaultMessageLifetime.
	MessageLifetime time.Duration
	// ResponseTimeout bounds waits for peer responses before Resolve
	// becomes available. Zero means DefaultResponseTimeout.
	ResponseTimeout time.Duration

	// store and ttpID are set by WithStore / WithTTPID; only NewProvider
	// consults them. Unexported so the legacy struct stays source-
	// compatible.
	store storage.Store
	ttpID string
	// journal is set by WithJournal: the crash-safe WAL every protocol
	// transition is appended to before the corresponding ack.
	journal *wal.WAL
	// cold is set by WithArchive: the append-only evidence archive that
	// Checkpoint compacts terminal sessions into.
	cold *archive.Store
	// verifyCache is set by WithVerifyCache; nil means a private
	// default-sized cache per party.
	verifyCache *evidence.VerifyCache
	// deadline is set by WithDeadlinePolicy; only the provider enforces
	// it (step deadlines + expiry reaper).
	deadline DeadlinePolicy
	// caPub is set by WithCAPublicKey: the scheme-agnostic CA key
	// handle. Takes precedence over the legacy CAKey field.
	caPub cryptoutil.PublicKey
	// repl is set by WithReplicator: the quorum replication group every
	// journal append must clear before the transition is acked.
	repl Replicator
}

// Default protocol timing parameters.
const (
	DefaultMessageLifetime = 5 * time.Minute
	DefaultResponseTimeout = 30 * time.Second

	// defaultVerifyCacheSize bounds each party's private verification
	// cache (entries, not bytes; an entry is a 32-byte key).
	defaultVerifyCacheSize = 1024
)

// party is the plumbing shared by Client, Provider and the TTP server:
// identity, peer authentication, replay guard, evidence archive,
// sequence allocation and instrumented send/receive.
type party struct {
	id    *pki.Identity
	caKey cryptoutil.PublicKey
	dir   Directory
	clk   clock.Clock
	ctr   *metrics.Counters

	lifetime time.Duration
	timeout  time.Duration

	guard    *session.Guard
	archive  *evidence.Store
	tracker  *session.Tracker
	journal  *wal.WAL
	repl     Replicator
	vcache   *evidence.VerifyCache
	deadline DeadlinePolicy
	seqMu    sync.Mutex
	seqs     map[string]*session.Counter

	// Tiered evidence storage. cold is the append-only archive terminal
	// sessions compact into; archived records which transactions have
	// been moved (and their terminal state) so recovery can skip their
	// journal records. ckptMu serialises checkpoints against the
	// journal+mutate pairs: every handler that appends a journal record
	// and applies its effect holds the read side across BOTH, so a
	// snapshot can never capture a state the journal boundary splits.
	cold     *archive.Store
	archMu   sync.Mutex
	archived map[string]session.State
	ckptMu   sync.RWMutex

	// Per-role hooks into checkpoint/recovery. snapExtra contributes a
	// (note, flag) pair per live transaction to the snapshot; restore-
	// Extra replays it; eligible overrides which transactions count as
	// compactable (nil means "tracker state is terminal").
	snapExtra    func(txn string) (note string, flag bool)
	restoreExtra func(txn, note string, flag bool)
	eligible     func(txn string) (session.State, bool)

	// peers memoizes CA-verified peer keys: one CA signature check and
	// one key parse per distinct certificate, instead of per message.
	// Entries are invalidated by certificate change (serial or CA
	// signature differs) and by validity-window expiry at lookup time.
	peerMu sync.Mutex
	peers  map[string]*peerEntry

	pumpMu sync.Mutex
	pumps  map[transport.Conn]*pump
}

// peerEntry caches one directory certificate's verification outcome.
type peerEntry struct {
	serial    uint64
	sigSum    [32]byte
	notBefore time.Time
	notAfter  time.Time
	key       cryptoutil.PublicKey
}

func newParty(o Options) (*party, error) {
	if o.Identity == nil {
		return nil, fmt.Errorf("core: Options.Identity is required")
	}
	caKey := o.caPub
	if caKey == nil && o.CAKey != nil {
		caKey = cryptoutil.NewRSAPublicKey(o.CAKey)
	}
	if caKey == nil {
		return nil, fmt.Errorf("core: a CA key is required (WithCAPublicKey or Options.CAKey)")
	}
	if o.Directory == nil {
		return nil, fmt.Errorf("core: Options.Directory is required")
	}
	p := &party{
		id:       o.Identity,
		caKey:    caKey,
		dir:      o.Directory,
		clk:      o.Clock,
		ctr:      o.Counters,
		lifetime: o.MessageLifetime,
		timeout:  o.ResponseTimeout,
		guard:    session.NewGuard(0),
		archive:  evidence.NewStore(),
		tracker:  session.NewTracker(),
		journal:  o.journal,
		repl:     o.repl,
		vcache:   o.verifyCache,
		deadline: o.deadline,
		cold:     o.cold,
		archived: make(map[string]session.State),
		seqs:     make(map[string]*session.Counter),
		peers:    make(map[string]*peerEntry),
		pumps:    make(map[transport.Conn]*pump),
	}
	if p.vcache == nil {
		// Re-verifications cluster on resolve/dispute traffic; a modest
		// bound keeps the win without letting the cache grow with load.
		p.vcache = evidence.NewVerifyCache(defaultVerifyCacheSize)
	}
	if p.clk == nil {
		p.clk = clock.Real()
	}
	if p.ctr == nil {
		p.ctr = &metrics.Counters{}
	}
	if p.lifetime == 0 {
		p.lifetime = DefaultMessageLifetime
	}
	if p.timeout == 0 {
		p.timeout = DefaultResponseTimeout
	}
	return p, nil
}

// Archive exposes the party's evidence store (for disputes and tests).
func (p *party) Archive() *evidence.Store { return p.archive }

// Counters exposes the party's metrics.
func (p *party) Counters() *metrics.Counters { return p.ctr }

// ID returns the party name.
func (p *party) ID() string { return p.id.Name }

// nextSeq issues the next outbound sequence number for a transaction.
func (p *party) nextSeq(txn string) uint64 {
	p.seqMu.Lock()
	c, ok := p.seqs[txn]
	if !ok {
		c = &session.Counter{}
		p.seqs[txn] = c
	}
	p.seqMu.Unlock()
	return c.Next()
}

// archivedMaxSeq returns the highest header sequence recorded in the
// party's archive for txn across both roles, or zero when nothing is
// archived. A process that restarts mid-transaction (the nrclient CLI
// reloading evidence from its state directory) starts its in-memory
// counters from scratch, but the peer's replay guard remembers every
// sequence this party already used — the archived headers are the
// durable record of that floor.
func (p *party) archivedMaxSeq(txn string) uint64 {
	var max uint64
	for _, role := range []evidence.Role{evidence.RoleOwn, evidence.RolePeer} {
		for _, ev := range p.archive.All(txn, role) {
			if ev.Header.Seq > max {
				max = ev.Header.Seq
			}
		}
	}
	return max
}

// bumpSeqTo advances the outbound counter past an observed inbound
// sequence so replies always exceed what the peer sent.
func (p *party) bumpSeqTo(txn string, seen uint64) uint64 {
	p.seqMu.Lock()
	c, ok := p.seqs[txn]
	if !ok {
		c = &session.Counter{}
		p.seqs[txn] = c
	}
	p.seqMu.Unlock()
	c.SkipTo(seen)
	return c.Next()
}

// peerKey resolves and authenticates a peer's public key via the
// directory and CA key. Verified certificates are memoized per name:
// as long as the directory serves the same certificate (serial + CA
// signature) and the clock sits inside its validity window, the cached
// handle is returned without re-running the CA signature check or
// re-parsing the key — the per-message authentication cost the paper's
// §5.1 step otherwise adds to every inbound/outbound exchange.
func (p *party) peerKey(name string) (cryptoutil.PublicKey, error) {
	cert, err := p.dir(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrUnknownIdentity, name, err)
	}
	now := p.clk.Now()
	sigSum := sha256.Sum256(cert.Signature)
	p.peerMu.Lock()
	e, ok := p.peers[name]
	p.peerMu.Unlock()
	if ok && e.serial == cert.Serial && e.sigSum == sigSum &&
		!now.Before(e.notBefore) && !now.After(e.notAfter) {
		return e.key, nil
	}
	if err := pki.VerifyCertificateWith(p.caKey, cert, now, nil); err != nil {
		p.ctr.Inc(metrics.AuthFailures, 1)
		return nil, fmt.Errorf("%w: %q: %v", ErrUnknownIdentity, name, err)
	}
	p.ctr.Inc(metrics.VerifyOps, 1)
	key, err := cert.Key()
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrUnknownIdentity, name, err)
	}
	p.peerMu.Lock()
	p.peers[name] = &peerEntry{
		serial: cert.Serial, sigSum: sigSum,
		notBefore: cert.NotBefore, notAfter: cert.NotAfter, key: key,
	}
	p.peerMu.Unlock()
	return key, nil
}

// newHeader assembles an outbound header with this party as sender.
func (p *party) newHeader(kind evidence.Kind, txn, recipient, ttp string, seq uint64) *evidence.Header {
	now := p.clk.Now()
	return &evidence.Header{
		Kind:        kind,
		TxnID:       txn,
		Seq:         seq,
		Nonce:       cryptoutil.MustNonce(),
		SenderID:    p.id.Name,
		RecipientID: recipient,
		TTPID:       ttp,
		Timestamp:   now,
		TimeLimit:   now.Add(p.lifetime),
	}
}

// buildMessage signs and seals evidence for the header and packages it
// with the payload.
func (p *party) buildMessage(h *evidence.Header, payload []byte, recipientKey cryptoutil.PublicKey) (*Message, *evidence.Evidence, error) {
	ev, sealed, err := evidence.BuildFor(p.id.Key.Signer(), recipientKey, h)
	if err != nil {
		return nil, nil, err
	}
	p.ctr.Inc(metrics.SignOps, 2)
	p.ctr.Inc(metrics.EncryptOps, 1)
	return &Message{HeaderBytes: h.Encode(), Payload: payload, Sealed: sealed}, ev, nil
}

// send transmits a message with instrumentation.
func (p *party) send(conn transport.Conn, m *Message) error {
	raw := m.Encode()
	p.ctr.Inc(metrics.MsgsSent, 1)
	p.ctr.Inc(metrics.BytesSent, int64(len(raw)))
	return conn.Send(raw)
}

// checkInbound runs the generic inbound validation sequence on a
// received message: decode header, header addressing, replay guard,
// time limit, open + verify the sealed evidence against the sender's
// authenticated key. Returns the header and opened evidence.
func (p *party) checkInbound(m *Message) (*evidence.Header, *evidence.Evidence, error) {
	h, err := m.Header()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if h.RecipientID != p.id.Name {
		return nil, nil, fmt.Errorf("%w: message for %q arrived at %q", ErrProtocol, h.RecipientID, p.id.Name)
	}
	// Sequence spaces are per (transaction, sender): Alice, Bob and the
	// TTP each number their own messages within a transaction.
	if err := p.guard.Check(h.TxnID+"|"+h.SenderID, h.Seq, h.Nonce, h.TimeLimit, p.clk.Now()); err != nil {
		p.ctr.Inc(metrics.ReplaysSeen, 1)
		return nil, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	senderKey, err := p.peerKey(h.SenderID)
	if err != nil {
		return nil, nil, err
	}
	ev, err := evidence.OpenCachedWith(p.id.Key.Signer(), senderKey, m.Sealed, h, p.vcache)
	if err != nil {
		p.ctr.Inc(metrics.AuthFailures, 1)
		return nil, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	p.ctr.Inc(metrics.DecryptOps, 1)
	p.ctr.Inc(metrics.VerifyOps, 2)
	return h, ev, nil
}

// checkInboundNoVerify runs every inbound check EXCEPT the two
// signature verifications: decode, addressing, replay guard, time
// limit, peer key resolution and decryption. The sender's key handle is
// returned so the caller can verify the evidence signatures itself —
// the batch-drain path collects a round of these and verifies them in
// one cryptoutil.VerifyBatch call.
func (p *party) checkInboundNoVerify(m *Message) (*evidence.Header, *evidence.Evidence, cryptoutil.PublicKey, error) {
	h, err := m.Header()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if h.RecipientID != p.id.Name {
		return nil, nil, nil, fmt.Errorf("%w: message for %q arrived at %q", ErrProtocol, h.RecipientID, p.id.Name)
	}
	if err := p.guard.Check(h.TxnID+"|"+h.SenderID, h.Seq, h.Nonce, h.TimeLimit, p.clk.Now()); err != nil {
		p.ctr.Inc(metrics.ReplaysSeen, 1)
		return nil, nil, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	senderKey, err := p.peerKey(h.SenderID)
	if err != nil {
		return nil, nil, nil, err
	}
	ev, err := evidence.OpenNoVerify(p.id.Key.Signer(), m.Sealed, h)
	if err != nil {
		p.ctr.Inc(metrics.AuthFailures, 1)
		return nil, nil, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	p.ctr.Inc(metrics.DecryptOps, 1)
	return h, ev, senderKey, nil
}

// pumpFor returns the single pump owning conn's receive side. Repeated
// operations on one connection share the pump, so no message can be
// stolen by a stale reader goroutine. When the connection closes, the
// pump's reader goroutine evicts the cache entry, so long-lived
// parties (the TTP daemon dials one connection per resolve) do not
// accumulate dead pumps.
func (p *party) pumpFor(conn transport.Conn) *pump {
	p.pumpMu.Lock()
	defer p.pumpMu.Unlock()
	pu, ok := p.pumps[conn]
	if !ok {
		pu = newPump(conn, func() {
			p.pumpMu.Lock()
			delete(p.pumps, conn)
			p.pumpMu.Unlock()
		})
		p.pumps[conn] = pu
	}
	return pu
}

// pumpCount reports cached pumps (tests assert eviction).
func (p *party) pumpCount() int {
	p.pumpMu.Lock()
	defer p.pumpMu.Unlock()
	return len(p.pumps)
}

// pump adapts a blocking Conn to timeout-capable receives. One pump
// owns the connection's receive side.
type pump struct {
	ch   chan []byte
	errc chan error
}

// newPump starts the reader goroutine; onExit (may be nil) runs when
// the connection stops delivering.
func newPump(conn transport.Conn, onExit func()) *pump {
	pu := &pump{ch: make(chan []byte, 16), errc: make(chan error, 1)}
	go func() {
		for {
			msg, err := conn.Recv()
			if err != nil {
				pu.errc <- err
				if onExit != nil {
					onExit()
				}
				return
			}
			pu.ch <- msg
		}
	}()
	return pu
}

// recv waits up to d (on clk) for the next message, returning early
// with ErrCancelled when ctx terminates first.
func (pu *pump) recv(ctx context.Context, clk clock.Clock, d time.Duration) ([]byte, error) {
	select {
	case msg := <-pu.ch:
		return msg, nil
	case err := <-pu.errc:
		// Keep the error available for later recv calls on the same
		// (shared) pump.
		select {
		case pu.errc <- err:
		default:
		}
		// A transport deadline expiry planted by applyDeadline is the
		// context speaking through the socket.
		return nil, cancelErr(err)
	case <-clk.After(d):
		return nil, ErrTimeout
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", ErrCancelled, ctx.Err())
	}
}
