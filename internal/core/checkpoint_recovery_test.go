package core_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ckptWorld is a journaled deployment whose three parties also carry
// cold evidence archives, plus the handles to "restart" it on the same
// disk.
type ckptWorld struct {
	d          *deploy.Deployment
	store      storage.Store
	cw, pw, tw *wal.WAL
	ca, pa, ta *archive.Store
}

func openCkptWorld(t *testing.T, dir string, store storage.Store) *ckptWorld {
	t.Helper()
	openWAL := func(sub string) *wal.WAL {
		w, err := wal.Open(filepath.Join(dir, sub, "wal"), wal.Options{})
		if err != nil {
			t.Fatalf("opening %s journal: %v", sub, err)
		}
		return w
	}
	openArc := func(sub string) *archive.Store {
		s, err := archive.Open(filepath.Join(dir, sub, "archive"))
		if err != nil {
			t.Fatalf("opening %s archive: %v", sub, err)
		}
		return s
	}
	cw, pw, tw := openWAL("client"), openWAL("provider"), openWAL("ttp")
	ca, pa, ta := openArc("client"), openArc("provider"), openArc("ttp")
	d, err := deploy.New(deploy.Config{
		TestKeys:        true,
		ResponseTimeout: 2 * time.Second,
		ProviderStore:   store,
		ClientOpts:      []core.Option{core.WithJournal(cw), core.WithArchive(ca)},
		ProviderOpts:    []core.Option{core.WithJournal(pw), core.WithArchive(pa)},
		TTPOpts:         []core.Option{core.WithJournal(tw), core.WithArchive(ta)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &ckptWorld{d: d, store: store, cw: cw, pw: pw, tw: tw, ca: ca, pa: pa, ta: ta}
}

func (w *ckptWorld) crash() {
	w.d.Close()
	w.cw.Close()
	w.pw.Close()
	w.tw.Close()
	w.ca.Close()
	w.pa.Close()
	w.ta.Close()
}

func (w *ckptWorld) upload(t *testing.T, ctx context.Context, txn, key string, data []byte) {
	t.Helper()
	conn, err := w.d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := w.d.Client.Upload(ctx, conn, txn, key, data); err != nil {
		t.Fatalf("upload %s: %v", txn, err)
	}
}

func TestCheckpointCompactsAndRecoversSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	ctx := context.Background()

	w := openCkptWorld(t, dir, store)
	for i := 0; i < 3; i++ {
		w.upload(t, ctx, fmt.Sprintf("txn-ck-%d", i), fmt.Sprintf("ck/obj-%d", i), []byte("payload"))
	}
	crep, err := w.d.Client.Checkpoint()
	if err != nil {
		t.Fatalf("client checkpoint: %v", err)
	}
	prep, err := w.d.Provider.Checkpoint()
	if err != nil {
		t.Fatalf("provider checkpoint: %v", err)
	}
	if _, err := w.d.TTPServer.Checkpoint(); err != nil {
		t.Fatalf("ttp checkpoint: %v", err)
	}
	if crep.Archived != 3 || prep.Archived != 3 {
		t.Fatalf("archived: client %d, provider %d, want 3 each", crep.Archived, prep.Archived)
	}
	if crep.LSN == 0 {
		t.Fatal("checkpoint reported LSN 0")
	}
	// Compacted sessions left the hot store but remain cold-readable.
	if len(w.d.Client.Archive().Transactions()) != 0 {
		t.Fatalf("hot evidence survived compaction: %v", w.d.Client.Archive().Transactions())
	}
	if !w.pa.Has("txn-ck-0") {
		t.Fatal("provider cold archive missing compacted session")
	}
	if _, err := w.d.Provider.EvidenceByKind("txn-ck-1", evidence.RolePeer, evidence.KindNRO); err != nil {
		t.Fatalf("cold read-through failed: %v", err)
	}

	// One more session lands past the checkpoint: it is the tail.
	w.upload(t, ctx, "txn-ck-tail", "ck/tail", []byte("tail payload"))
	w.crash()

	w2 := openCkptWorld(t, dir, store)
	defer w2.crash()
	rep, err := w2.d.Provider.Recover(ctx)
	if err != nil {
		t.Fatalf("provider recover: %v", err)
	}
	if rep.SnapshotLSN == 0 {
		t.Fatal("recovery ignored the snapshot")
	}
	if rep.ArchivedSessions != 3 {
		t.Fatalf("ArchivedSessions = %d, want 3", rep.ArchivedSessions)
	}
	// Only the tail session's records were replayed; the three archived
	// sessions cost nothing.
	if rep.TailRecords == 0 || rep.TailRecords > 8 {
		t.Fatalf("TailRecords = %d, want a handful (tail session only)", rep.TailRecords)
	}
	if len(rep.Transactions) != 1 || rep.Transactions[0] != "txn-ck-tail" {
		t.Fatalf("replayed transactions = %v, want [txn-ck-tail]", rep.Transactions)
	}
	if len(rep.NeedsResolve) != 0 {
		t.Fatalf("NeedsResolve = %v, want none", rep.NeedsResolve)
	}
	if _, err := w2.d.Client.Recover(ctx); err != nil {
		t.Fatalf("client recover: %v", err)
	}
	if _, err := w2.d.TTPServer.Recover(ctx); err != nil {
		t.Fatalf("ttp recover: %v", err)
	}

	// The compacted upload still anchors the integrity check on a fresh
	// download — the agreed receipt is found in the cold tier.
	conn, err := w2.d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := w2.d.Client.Download(ctx, conn, "txn-ck-dl", "ck/obj-0", "txn-ck-0")
	if err != nil {
		t.Fatalf("download after compaction: %v", err)
	}
	if !res.IntegrityOK || res.AgreedUpload == nil || !bytes.Equal(res.Data, []byte("payload")) {
		t.Fatal("cold archive did not anchor the integrity check")
	}
}

// TestRecoverTwiceIsIdempotent asserts the regression the issue calls
// out: running Recover twice on the same journal must yield the state
// of running it once — no duplicated evidence, no changed reports.
func TestRecoverTwiceIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	ctx := context.Background()

	w := openCkptWorld(t, dir, store)
	w.upload(t, ctx, "txn-idem-0", "idem/obj-0", []byte("zero"))
	w.upload(t, ctx, "txn-idem-1", "idem/obj-1", []byte("one"))
	if _, err := w.d.Provider.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	w.upload(t, ctx, "txn-idem-2", "idem/obj-2", []byte("two"))
	w.crash()

	w2 := openCkptWorld(t, dir, store)
	defer w2.crash()
	rep1, err := w2.d.Provider.Recover(ctx)
	if err != nil {
		t.Fatalf("first recover: %v", err)
	}
	snap1 := providerStateFingerprint(w2.d.Provider)
	rep2, err := w2.d.Provider.Recover(ctx)
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	snap2 := providerStateFingerprint(w2.d.Provider)
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("recovery reports differ:\n  first:  %+v\n  second: %+v", rep1, rep2)
	}
	if !reflect.DeepEqual(snap1, snap2) {
		t.Fatalf("recovering twice changed state:\n  first:  %v\n  second: %v", snap1, snap2)
	}
}

// providerStateFingerprint captures the externally observable recovery
// state: per-transaction evidence counts by role.
func providerStateFingerprint(p *core.Provider) map[string][2]int {
	out := make(map[string][2]int)
	for _, txn := range p.Archive().Transactions() {
		out[txn] = [2]int{
			len(p.Archive().All(txn, evidence.RoleOwn)),
			len(p.Archive().All(txn, evidence.RolePeer)),
		}
	}
	return out
}

// TestResolveAfterCompaction drives a §4.3 resolve against a session
// the provider has already compacted into its cold archive: the
// provider must re-present its NRR from the cold tier, and the client
// must receive it relayed through the TTP.
func TestResolveAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	ctx := context.Background()

	w := openCkptWorld(t, dir, store)
	defer w.crash()
	w.upload(t, ctx, "txn-cold-res", "cold/obj", []byte("disputed payload"))
	prep, err := w.d.Provider.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if prep.Archived != 1 {
		t.Fatalf("provider archived %d sessions, want 1", prep.Archived)
	}
	if list := w.d.Provider.Archive().Transactions(); len(list) != 0 {
		t.Fatalf("session still hot after compaction: %v", list)
	}

	ttpConn, err := w.d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	res, err := w.d.Client.Resolve(ctx, ttpConn, "txn-cold-res", "claims receipt lost")
	if err != nil {
		t.Fatalf("resolve against compacted session: %v", err)
	}
	if res.Outcome != "continue" {
		t.Fatalf("outcome = %q, want continue (provider holds the NRR cold)", res.Outcome)
	}
	if res.PeerEvidence == nil || res.PeerEvidence.Header.Kind != evidence.KindNRR {
		t.Fatalf("relayed evidence = %+v, want the provider's NRR", res.PeerEvidence)
	}
}

// TestCheckpointMergesLateEvidence covers re-compaction: evidence that
// arrives for an already-archived session (the resolve traffic above)
// lands hot again; the next checkpoint must MERGE it into the cold
// bundle rather than overwrite the original NRO/NRR away.
func TestCheckpointMergesLateEvidence(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	ctx := context.Background()

	w := openCkptWorld(t, dir, store)
	defer w.crash()
	w.upload(t, ctx, "txn-merge", "merge/obj", []byte("payload"))
	if _, err := w.d.Provider.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A resolve adds fresh hot evidence for the compacted session.
	ttpConn, err := w.d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	if _, err := w.d.Client.Resolve(ctx, ttpConn, "txn-merge", "late dispute"); err != nil {
		t.Fatal(err)
	}
	if len(w.d.Provider.Archive().All("txn-merge", evidence.RolePeer)) == 0 {
		t.Fatal("resolve left no hot evidence; test premise broken")
	}
	if _, err := w.d.Provider.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The re-compacted bundle still holds the ORIGINAL upload evidence.
	if _, err := w.d.Provider.EvidenceByKind("txn-merge", evidence.RolePeer, evidence.KindNRO); err != nil {
		t.Fatalf("re-compaction destroyed the original NRO: %v", err)
	}
	if _, err := w.d.Provider.EvidenceByKind("txn-merge", evidence.RoleOwn, evidence.KindNRR); err != nil {
		t.Fatalf("re-compaction destroyed the original NRR: %v", err)
	}
	// And the late resolve-query evidence made it cold too.
	if _, err := w.d.Provider.EvidenceByKind("txn-merge", evidence.RolePeer, evidence.KindResolveRequest); err != nil {
		t.Fatalf("late evidence missing from merged bundle: %v", err)
	}
}

// TestTTPKeepsOpenResolveHot asserts the TTP's compaction rule: a
// session whose resolve procedure is open survives checkpointing hot
// (the claimant's retry needs it), and the open resolve is still
// reported after a crash+recover of the checkpointed journal.
func TestTTPKeepsOpenResolveHot(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	ctx := context.Background()

	w := openCkptWorld(t, dir, store)
	w.upload(t, ctx, "txn-open", "open/obj", []byte("payload"))
	// Wedge the provider so the TTP's resolve stays open: the provider
	// ignores the TTP's query and the TTP times out into a statement.
	w.d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true, IgnoreResolve: true})

	ttpConn, err := w.d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.d.Client.Resolve(ctx, ttpConn, "txn-open", "provider silent"); err != nil {
		t.Logf("resolve returned %v (statement path)", err)
	}
	ttpConn.Close()
	if _, err := w.d.TTPServer.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	w.crash()

	w2 := openCkptWorld(t, dir, store)
	defer w2.crash()
	rep, err := w2.d.TTPServer.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Whether the resolve closed (statement issued) or stayed open, the
	// recovered ledger must agree with the pre-crash one — and if it was
	// open, the session's evidence must still be hot.
	for _, txn := range rep.OpenResolves {
		if len(w2.d.TTPServer.Archive().All(txn, evidence.RolePeer)) == 0 &&
			len(w2.d.TTPServer.Archive().All(txn, evidence.RoleOwn)) == 0 {
			t.Fatalf("open resolve %s was compacted away", txn)
		}
	}
}
