package core

// BenchmarkE14Sharded* measures what sharding buys at the durable
// core, versus shard count (1→2→4→8) on identical hardware.
//
// Upload: concurrent workers drive the journaled state-transition
// sequence of a completed upload session (peer NRO, own NRR, two state
// transitions — what handleUpload/buildNRR journal) through the
// engine's consistent-hash routing, with SyncAlways journals: every
// append is an fsync, so one shard serializes the entire offered load
// behind one journal lock and one fsync stream, while N shards run N
// independent streams. Evidence is fabricated e13-style — crypto
// parallelizes trivially and would only dilute the serialization
// under test.
//
// Recovery: the same session history is journaled across N shards,
// closed, and recovered — one goroutine per shard replaying its own
// journal. Replay is decode-bound CPU, so recovery wall time should
// drop toward 1/N with shard count (the tentpole's ≥2x-at-4-shards
// acceptance bound; cmd/benchreport computes the ratios).

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/evidence"
	"repro/internal/session"
	"repro/internal/wal"
)

var e14ShardCounts = []int{1, 2, 4, 8}

func BenchmarkE14ShardedUpload(b *testing.B) {
	for _, n := range e14ShardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			e, closer := e14Engine(b, b.TempDir(), n, wal.SyncAlways)
			defer closer()
			var ctr atomic.Int64
			// Pin the offered concurrency at 16 workers regardless of
			// GOMAXPROCS: the contended resource is the per-shard fsync
			// stream (workers overlap fsync WAITS even on one core), and a
			// fixed worker count keeps shards=1 vs shards=8 comparing
			// journal parallelism, not scheduler width.
			if gmp := runtime.GOMAXPROCS(0); gmp < 16 {
				b.SetParallelism((16 + gmp - 1) / gmp)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				sig := make([]byte, 256)
				for pb.Next() {
					txn := fmt.Sprintf("txn-%08d", ctr.Add(1))
					p := e.ShardFor(txn)
					if err := p.putEvidence(txn, evidence.RolePeer, e13Evidence(evidence.KindNRO, txn, "alice", "bob", sig)); err != nil {
						b.Fatal(err)
					}
					if err := p.setState(txn, session.StateEvidenceReceived); err != nil {
						b.Fatal(err)
					}
					if err := p.putEvidence(txn, evidence.RoleOwn, e13Evidence(evidence.KindNRR, txn, "bob", "alice", sig)); err != nil {
						b.Fatal(err)
					}
					if err := p.setState(txn, session.StateCompleted); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkE14ShardedRecovery(b *testing.B) {
	const sessions = 3000
	ctx := context.Background()
	for _, n := range e14ShardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			e, closer := e14Engine(b, dir, n, wal.SyncNever)
			e14Populate(b, e, 0, sessions)
			closer()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e2, closer2 := e14Engine(b, dir, n, wal.SyncNever)
				rep, err := e2.Recover(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Transactions) != sessions {
					b.Fatalf("recovered %d sessions, want %d", len(rep.Transactions), sessions)
				}
				closer2()
			}
		})
	}
}
