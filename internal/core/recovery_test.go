package core_test

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wal"
)

// journaledWorld is a deployment whose three parties write crash
// journals, plus the handles needed to "restart" it: reopening the
// same WAL directories and blob store models a process coming back on
// the same disk.
type journaledWorld struct {
	d          *deploy.Deployment
	store      storage.Store
	cw, pw, tw *wal.WAL
}

func openJournaledWorld(t *testing.T, dir string, store storage.Store) *journaledWorld {
	t.Helper()
	open := func(sub string) *wal.WAL {
		w, err := wal.Open(filepath.Join(dir, sub), wal.Options{})
		if err != nil {
			t.Fatalf("opening %s journal: %v", sub, err)
		}
		return w
	}
	cw, pw, tw := open("client"), open("provider"), open("ttp")
	d, err := deploy.New(deploy.Config{
		TestKeys:        true,
		ResponseTimeout: 2 * time.Second,
		ProviderStore:   store,
		ClientOpts:      []core.Option{core.WithJournal(cw)},
		ProviderOpts:    []core.Option{core.WithJournal(pw)},
		TTPOpts:         []core.Option{core.WithJournal(tw)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &journaledWorld{d: d, store: store, cw: cw, pw: pw, tw: tw}
}

// crash tears the world down without any graceful protocol steps.
func (w *journaledWorld) crash() {
	w.d.Close()
	w.cw.Close()
	w.pw.Close()
	w.tw.Close()
}

func TestJournalRecoveryRebuildsCompletedUpload(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	ctx := context.Background()
	data := []byte("journaled payload")

	w := openJournaledWorld(t, dir, store)
	conn, err := w.d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.d.Client.Upload(ctx, conn, "txn-rec-1", "rec/obj", data); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	w.crash()

	// Restart on the same disk.
	w2 := openJournaledWorld(t, dir, store)
	defer w2.crash()
	crep, err := w2.d.Client.Recover(ctx)
	if err != nil {
		t.Fatalf("client recover: %v", err)
	}
	prep, err := w2.d.Provider.Recover(ctx)
	if err != nil {
		t.Fatalf("provider recover: %v", err)
	}
	if _, err := w2.d.TTPServer.Recover(ctx); err != nil {
		t.Fatalf("ttp recover: %v", err)
	}
	if crep.Records == 0 || prep.Records == 0 {
		t.Fatalf("no records replayed: client %d, provider %d", crep.Records, prep.Records)
	}
	if len(crep.NeedsResolve) != 0 || len(prep.NeedsResolve) != 0 {
		t.Fatalf("completed txn flagged for resolve: client %v, provider %v", crep.NeedsResolve, prep.NeedsResolve)
	}
	// All four evidence items survive the restart.
	if _, err := w2.d.Client.Archive().ByKind("txn-rec-1", evidence.RoleOwn, evidence.KindNRO); err != nil {
		t.Error("client lost its NRO across restart")
	}
	if _, err := w2.d.Client.Archive().ByKind("txn-rec-1", evidence.RolePeer, evidence.KindNRR); err != nil {
		t.Error("client lost the NRR across restart")
	}
	if _, err := w2.d.Provider.Archive().ByKind("txn-rec-1", evidence.RolePeer, evidence.KindNRO); err != nil {
		t.Error("provider lost the NRO across restart")
	}
	if _, err := w2.d.Provider.Archive().ByKind("txn-rec-1", evidence.RoleOwn, evidence.KindNRR); err != nil {
		t.Error("provider lost its NRR across restart")
	}

	// The recovered archive still anchors the upload-to-download
	// integrity check: a download on the restarted world verifies the
	// served bytes against the replayed agreed digest.
	conn2, err := w2.d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	res, err := w2.d.Client.Download(ctx, conn2, "txn-rec-dl", "rec/obj", "txn-rec-1")
	if err != nil {
		t.Fatalf("download after recovery: %v", err)
	}
	if !res.IntegrityOK || res.AgreedUpload == nil || !bytes.Equal(res.Data, data) {
		t.Fatal("recovered archive did not anchor the integrity check")
	}
}

func TestProviderRecoverHonorsAckedAbort(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	ctx := context.Background()

	w := openJournaledWorld(t, dir, store)
	conn, err := w.d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.d.Client.Upload(ctx, conn, "txn-ab-1", "ab/obj", []byte("to be aborted")); err != nil {
		t.Fatal(err)
	}
	// Completed transactions reject aborts, so run the abort on a fresh
	// transaction the provider holds in EvidenceReceived: silence Bob
	// first so the upload stalls there.
	w.d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	if _, err := w.d.Client.Upload(ctx, conn, "txn-ab-2", "ab/obj2", []byte("stalled")); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("silent provider upload = %v, want ErrTimeout", err)
	}
	w.d.Provider.SetMisbehavior(core.Misbehavior{})
	ab, err := w.d.Client.Abort(ctx, conn, "txn-ab-2", "stalled upload")
	if err != nil || !ab.Accepted {
		t.Fatalf("abort = %+v, %v", ab, err)
	}
	conn.Close()
	w.crash()

	// Model the crash window between journaling the abort and dropping
	// the blob: the abort record is durable but the object is back on
	// disk when the provider restarts.
	if _, err := store.Put("ab/obj2", []byte("stalled"), cryptoutil.Sum(cryptoutil.MD5, []byte("stalled"))); err != nil {
		t.Fatal(err)
	}

	w2 := openJournaledWorld(t, dir, store)
	defer w2.crash()
	rep, err := w2.d.Provider.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.HonoredAborts) != 1 || rep.HonoredAborts[0] != "txn-ab-2" {
		t.Fatalf("HonoredAborts = %v, want [txn-ab-2]", rep.HonoredAborts)
	}
	if _, err := store.Get("ab/obj2"); err == nil {
		t.Fatal("recovery left the aborted object in the store")
	}
	// The unaborted transaction's object survives.
	if _, err := store.Get("ab/obj"); err != nil {
		t.Fatalf("recovery touched an unrelated object: %v", err)
	}
}

func TestCorruptedUploadRejectedNotStored(t *testing.T) {
	d := newDeploy(t, 2*time.Second)
	raw, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	// Every client→provider message arrives with one flipped bit; the
	// provider must reject it outright rather than store anything.
	conn := transport.Faulty(raw, transport.FaultSpec{CorruptProb: 1.0, Seed: 3})

	_, err = d.Client.Upload(context.Background(), conn, "txn-corrupt-1", "corrupt/obj", []byte("bit-flipped in flight"))
	if err == nil {
		t.Fatal("upload over a corrupting link succeeded")
	}
	if conn.Stats().Corrupted == 0 {
		t.Fatal("fault layer reports no corruption")
	}
	if _, err := d.Store.Get("corrupt/obj"); err == nil {
		t.Fatal("provider stored an object from a corrupted message")
	}
	if _, err := d.Provider.Archive().ByKind("txn-corrupt-1", evidence.RolePeer, evidence.KindNRO); err == nil {
		t.Fatal("provider archived evidence from a corrupted message")
	}
	// The client's session is recoverable: its own NRO is archived, so
	// escalation to Resolve stays available.
	if _, err := d.Client.PendingNRO("txn-corrupt-1"); err != nil {
		t.Fatalf("client lost its pending NRO: %v", err)
	}
}

// Ensure the session additions behave as recovery expects.
func TestGuardObserveBlocksReplays(t *testing.T) {
	g := session.NewGuard(0)
	nonce := []byte("nonce-1")
	g.Observe("txn|alice", 3, nonce)
	if err := g.Check("txn|alice", 3, []byte("nonce-2"), time.Time{}, time.Now()); err == nil {
		t.Fatal("observed sequence re-admitted after Observe")
	}
	if err := g.Check("txn|alice", 4, nonce, time.Time{}, time.Now()); err == nil {
		t.Fatal("observed nonce re-admitted after Observe")
	}
	if err := g.Check("txn|alice", 4, []byte("nonce-3"), time.Time{}, time.Now()); err != nil {
		t.Fatalf("fresh message rejected after Observe: %v", err)
	}
}
