package core

import (
	"math/rand"
	"testing"
	"time"
)

// TestJitterBackoffCapAndSpread is the regression test for the
// unbounded doubling: the base must saturate at MaxBackoff instead of
// overflowing, and every delay must be jittered ±50% around the capped
// base with real spread (no retry-storm synchronization).
func TestJitterBackoffCapAndSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	max := 2 * time.Second

	// Doubling sequence: 10ms → 20ms → ... must clamp at max and stay
	// there; 100 further rounds would have overflowed the old code.
	cur := 10 * time.Millisecond
	for i := 0; i < 100; i++ {
		var delay time.Duration
		delay, cur = jitterBackoff(cur, max, rng.Int63n)
		if delay <= 0 {
			t.Fatalf("round %d: non-positive delay %v (overflow?)", i, delay)
		}
		if delay >= 3*max/2 {
			t.Fatalf("round %d: delay %v above the jittered cap %v", i, delay, 3*max/2)
		}
		if cur > max {
			t.Fatalf("round %d: base %v exceeds cap %v", i, cur, max)
		}
	}
	if cur != max {
		t.Fatalf("base did not saturate at the cap: %v", cur)
	}

	// At saturation every delay lands in [max/2, 3*max/2) and the draws
	// actually spread across that window.
	lo, hi := max, time.Duration(0)
	for i := 0; i < 1000; i++ {
		delay, next := jitterBackoff(max, max, rng.Int63n)
		if next != max {
			t.Fatalf("saturated base moved to %v", next)
		}
		if delay < max/2 || delay >= 3*max/2 {
			t.Fatalf("delay %v outside [%v, %v)", delay, max/2, 3*max/2)
		}
		if delay < lo {
			lo = delay
		}
		if delay > hi {
			hi = delay
		}
	}
	if lo > 3*max/4 {
		t.Errorf("jitter never went low: min delay %v", lo)
	}
	if hi < 5*max/4 {
		t.Errorf("jitter never went high: max delay %v", hi)
	}
}

// TestJitterBackoffDeterministicSeed checks the jitter sequence is
// reproducible under a fixed seed.
func TestJitterBackoffDeterministicSeed(t *testing.T) {
	draw := func() []time.Duration {
		rng := rand.New(rand.NewSource(42))
		cur := 10 * time.Millisecond
		var out []time.Duration
		for i := 0; i < 10; i++ {
			var d time.Duration
			d, cur = jitterBackoff(cur, time.Second, rng.Int63n)
			out = append(out, d)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
