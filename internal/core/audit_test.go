package core_test

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/evidence"
)

// TestAuditSurvivesProcessRestart reproduces the nrclient CLI shape:
// the process that audits is not the process that uploaded. A fresh
// client restarts its per-transaction sequence counter at zero while
// the provider's replay guard remembers the numbers the upload burned,
// so AuditObject must re-derive its sequence floor from the archived
// evidence instead of trusting the in-memory counter. Two deployments
// built with TestKeys share the process-wide cached identity keys, so
// the second deployment's client IS alice restarted — only its archive
// seeding differs from the first.
func TestAuditSurvivesProcessRestart(t *testing.T) {
	ctx := context.Background()
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)

	data := bytes.Repeat([]byte("dwell-audited bytes "), 1024)
	const txn = "txn-audit-restart"
	res, err := d.Client.Upload(ctx, conn, txn, "docs/audited", data)
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: a restarted client holding only the reloaded NRR — the
	// minimum the CLI audit path seeds before calling AuditObject.
	fresh := newDeploy(t, 5*time.Second)
	fresh.Client.Archive().Put(txn, evidence.RolePeer, res.NRR)
	conn1 := mustDial(t, d)
	if _, err := fresh.Client.AuditObject(ctx, conn1, txn, 4); err != nil {
		t.Fatalf("fresh-process audit rejected: %v", err)
	}
	ch1, err := fresh.Client.Archive().ByKind(txn, evidence.RoleOwn, evidence.KindAuditChallenge)
	if err != nil {
		t.Fatal(err)
	}
	if ch1.Header.Seq <= res.NRR.Header.Seq {
		t.Errorf("challenge seq %d does not exceed the upload's last seq %d",
			ch1.Header.Seq, res.NRR.Header.Seq)
	}

	// Round 2: yet another restart, now reloading the NRR plus the first
	// round's challenge and response — the floor must keep advancing
	// past the previous audit, not just past the upload.
	resp1, err := fresh.Client.Archive().ByKind(txn, evidence.RolePeer, evidence.KindAuditResponse)
	if err != nil {
		t.Fatal(err)
	}
	again := newDeploy(t, 5*time.Second)
	again.Client.Archive().Put(txn, evidence.RolePeer, res.NRR)
	again.Client.Archive().Put(txn, evidence.RoleOwn, ch1)
	again.Client.Archive().Put(txn, evidence.RolePeer, resp1)
	conn2 := mustDial(t, d)
	if _, err := again.Client.AuditObject(ctx, conn2, txn, 4); err != nil {
		t.Fatalf("second restarted audit rejected: %v", err)
	}

	// Note the single-writer assumption this encodes: each restart must
	// reload ALL prior evidence for the transaction (the CLI's state
	// directory does), because the provider's replay guard is keyed by
	// sender identity — two live processes sharing alice's keys without
	// sharing her archive cannot both stay ahead of it.
}

// TestPoolConcurrentCloseWithAuditLoop pins the stop-channel teardown:
// two Close calls racing must not both observe the live audit-loop
// channel and double-close it (a panic under the old unguarded reads).
// Run with -race.
func TestPoolConcurrentCloseWithAuditLoop(t *testing.T) {
	d := newDeploy(t, 2*time.Second)
	for i := 0; i < 50; i++ {
		p := d.NewPool(core.PoolAuditInterval(time.Millisecond))
		var wg sync.WaitGroup
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Close()
			}()
		}
		wg.Wait()
	}
}
