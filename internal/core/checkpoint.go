package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/archive"
	"repro/internal/evidence"
	"repro/internal/session"
	"repro/internal/wire"
)

// snapshotMagic versions the checkpoint payload a party hands the WAL.
const snapshotMagic = "tpnr-snapshot-v1"

// CheckpointReport summarises one Checkpoint call.
type CheckpointReport struct {
	// LSN is the journal position the snapshot covers: every record at
	// or below it is subsumed by the snapshot (and, for archived
	// sessions, by the cold archive).
	LSN uint64
	// Archived counts terminal sessions compacted into the cold archive
	// by this checkpoint.
	Archived int
	// Retained counts live (non-archived) sessions captured in the
	// snapshot.
	Retained int
}

// Checkpoint compacts terminal sessions into the cold archive (when one
// is attached), snapshots the remaining live-session state, and hands
// the snapshot to the journal — which truncates every sealed segment
// the snapshot covers. After a crash, Recover loads the snapshot and
// replays only the journal tail, so recovery time is bounded by the
// checkpoint interval instead of the journal's lifetime length.
//
// Ordering is what makes a crash at any point safe: evidence moves to
// the archive (appended, synced) strictly BEFORE the journal forgets
// it. If the process dies after archiving but before the snapshot
// rename, the old snapshot plus the still-intact tail re-materialise
// the sessions hot, and the next checkpoint re-appends them — the
// archive's last-wins reads make the re-append idempotent.
func (p *party) Checkpoint() (*CheckpointReport, error) {
	if p.journal == nil {
		return nil, errors.New("core: checkpoint requires a journal (WithJournal)")
	}
	// Writer side of ckptMu: no journal+mutate pair may straddle the
	// snapshot while it is built.
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()

	rep := &CheckpointReport{}
	if p.cold != nil {
		n, err := p.compactTerminalLocked()
		if err != nil {
			return nil, err
		}
		rep.Archived = n
	}
	snap, retained, err := p.encodeSnapshotLocked()
	if err != nil {
		return nil, err
	}
	rep.Retained = retained
	lsn, err := p.journal.Checkpoint(snap)
	if err != nil {
		return nil, err
	}
	rep.LSN = lsn
	return rep, nil
}

// eligibleFor reports whether txn may be compacted, and with which
// terminal state. The default rule — tracker state exists and is
// terminal — is overridden by roles with extra liveness (the TTP keeps
// sessions with open resolves hot).
func (p *party) eligibleFor(txn string) (session.State, bool) {
	if p.eligible != nil {
		return p.eligible(txn)
	}
	st, err := p.tracker.Get(txn)
	if err != nil || !session.Terminal(st) {
		return 0, false
	}
	return st, true
}

// compactTerminalLocked moves every eligible terminal session's
// evidence from the hot store into the cold archive. Caller holds
// ckptMu.
func (p *party) compactTerminalLocked() (int, error) {
	n := 0
	for _, txn := range p.archive.Transactions() {
		st, ok := p.eligibleFor(txn)
		if !ok {
			continue
		}
		b := &archive.Bundle{Txn: txn, State: uint8(st)}
		if p.isArchived(txn) {
			// Late evidence for an already-compacted session (a resolve
			// query, say) landed hot again. The re-append below replaces
			// the cold bundle last-wins, so it must carry the original
			// items too or the session's NRO/NRR would be destroyed.
			if old, err := p.cold.Get(txn); err == nil {
				b.Items = old.Items
			}
		}
		for _, role := range []evidence.Role{evidence.RoleOwn, evidence.RolePeer} {
			for _, ev := range p.archive.All(txn, role) {
				b.Items = append(b.Items, archive.Item{Role: uint8(role), Blob: ev.Encode()})
			}
		}
		if err := p.cold.Append(b); err != nil {
			return n, fmt.Errorf("core: archiving %s: %w", txn, err)
		}
		p.archive.Drop(txn)
		p.markArchived(txn, st)
		n++
	}
	if n > 0 {
		// One sync for the whole batch: the WAL still holds every record
		// for these sessions until the snapshot lands, so the archive
		// write needs no per-bundle durability.
		if err := p.cold.Sync(); err != nil {
			return n, fmt.Errorf("core: syncing archive: %w", err)
		}
	}
	return n, nil
}

func (p *party) isArchived(txn string) bool {
	p.archMu.Lock()
	defer p.archMu.Unlock()
	_, ok := p.archived[txn]
	return ok
}

func (p *party) markArchived(txn string, st session.State) {
	p.archMu.Lock()
	p.archived[txn] = st
	p.archMu.Unlock()
}

func (p *party) archivedCount() int {
	p.archMu.Lock()
	defer p.archMu.Unlock()
	return len(p.archived)
}

// archivedSorted returns the archived set as (txn, state) pairs in
// deterministic order for the snapshot.
func (p *party) archivedSorted() ([]string, map[string]session.State) {
	p.archMu.Lock()
	defer p.archMu.Unlock()
	txns := make([]string, 0, len(p.archived))
	states := make(map[string]session.State, len(p.archived))
	for txn, st := range p.archived {
		txns = append(txns, txn)
		states[txn] = st
	}
	sort.Strings(txns)
	return txns, states
}

// encodeSnapshotLocked serialises the party's live-session state — hot
// evidence, tracker states, outbound sequence counters, role extras —
// plus the terminal-session index. Caller holds ckptMu, so no
// journal+mutate pair is in flight.
func (p *party) encodeSnapshotLocked() ([]byte, int, error) {
	live := make(map[string]bool)
	for _, txn := range p.archive.Transactions() {
		live[txn] = true
	}
	for _, txn := range p.tracker.Transactions() {
		if !p.isArchived(txn) {
			live[txn] = true
		}
	}
	txns := make([]string, 0, len(live))
	for txn := range live {
		txns = append(txns, txn)
	}
	sort.Strings(txns)

	e := wire.NewEncoder(1024)
	e.String(snapshotMagic)
	e.U32(uint32(len(txns)))
	for _, txn := range txns {
		e.String(txn)
		st, serr := p.tracker.Get(txn)
		e.Bool(serr == nil)
		e.U8(uint8(st))
		p.seqMu.Lock()
		c := p.seqs[txn]
		p.seqMu.Unlock()
		var cur uint64
		if c != nil {
			cur = c.Current()
		}
		e.U64(cur)
		note, flag := "", false
		if p.snapExtra != nil {
			note, flag = p.snapExtra(txn)
		}
		e.String(note)
		e.Bool(flag)
		for _, role := range []evidence.Role{evidence.RoleOwn, evidence.RolePeer} {
			items := p.archive.All(txn, role)
			e.U32(uint32(len(items)))
			for _, ev := range items {
				e.Bytes32(ev.Encode())
			}
		}
	}
	archTxns, archStates := p.archivedSorted()
	e.U32(uint32(len(archTxns)))
	for _, txn := range archTxns {
		e.String(txn)
		e.U8(uint8(archStates[txn]))
	}
	return e.Bytes(), len(txns), nil
}

// restoreSnapshot rebuilds party state from a checkpoint payload. Items
// land via PutIfAbsent so restoring over an already-warm party (a
// second Recover call) changes nothing.
func (p *party) restoreSnapshot(payload []byte, rep *RecoveryReport, seen map[string]bool) error {
	d := wire.NewDecoder(payload)
	if magic := d.String(); d.Err() == nil && magic != snapshotMagic {
		return fmt.Errorf("core: unrecognised snapshot format %q", magic)
	}
	nLive := int(d.U32())
	for i := 0; i < nLive && d.Err() == nil; i++ {
		txn := d.String()
		hasState := d.Bool()
		st := session.State(d.U8())
		seqCur := d.U64()
		note := d.String()
		flag := d.Bool()
		if d.Err() != nil {
			break
		}
		if hasState {
			p.tracker.Restore(txn, st)
		}
		if seqCur > 0 {
			p.seqMu.Lock()
			c, ok := p.seqs[txn]
			if !ok {
				c = &session.Counter{}
				p.seqs[txn] = c
			}
			p.seqMu.Unlock()
			c.SkipTo(seqCur)
		}
		for _, role := range []evidence.Role{evidence.RoleOwn, evidence.RolePeer} {
			n := int(d.U32())
			for j := 0; j < n && d.Err() == nil; j++ {
				ev, err := evidence.Decode(d.Bytes32())
				if err != nil {
					return fmt.Errorf("core: snapshot evidence for %s: %w", txn, err)
				}
				p.archive.PutIfAbsent(txn, role, ev)
				if role == evidence.RolePeer {
					h := ev.Header
					p.guard.Observe(h.TxnID+"|"+h.SenderID, h.Seq, h.Nonce)
				}
			}
		}
		if p.restoreExtra != nil {
			p.restoreExtra(txn, note, flag)
		}
		if txn != "" && !seen[txn] {
			seen[txn] = true
			rep.Transactions = append(rep.Transactions, txn)
		}
	}
	nArch := int(d.U32())
	for i := 0; i < nArch && d.Err() == nil; i++ {
		txn := d.String()
		st := session.State(d.U8())
		if d.Err() != nil {
			break
		}
		p.markArchived(txn, st)
		// The tracker keeps the terminal state so resolve handlers can
		// still consult it for compacted sessions.
		p.tracker.Restore(txn, st)
	}
	return d.Finish()
}

// EvidenceByKind returns the latest evidence of the given role and kind
// for txn, consulting the hot store first and falling back to the cold
// archive for compacted sessions. This is the dispute read path: it
// never replays the journal.
func (p *party) EvidenceByKind(txn string, role evidence.Role, kind evidence.Kind) (*evidence.Evidence, error) {
	if ev, err := p.archive.ByKind(txn, role, kind); err == nil {
		return ev, nil
	}
	if ev, err := p.coldByKind(txn, role, kind); err == nil {
		return ev, nil
	}
	return nil, fmt.Errorf("%w: %s (%s, %s)", evidence.ErrNoEvidence, txn, role, kind)
}

// coldByKind searches the cold archive bundle for txn, newest item
// first (compaction appends in arrival order).
func (p *party) coldByKind(txn string, role evidence.Role, kind evidence.Kind) (*evidence.Evidence, error) {
	if p.cold == nil {
		return nil, fmt.Errorf("%w: %s (no cold archive)", evidence.ErrNoEvidence, txn)
	}
	b, err := p.cold.Get(txn)
	if err != nil {
		return nil, err
	}
	for i := len(b.Items) - 1; i >= 0; i-- {
		it := b.Items[i]
		if evidence.Role(it.Role) != role {
			continue
		}
		ev, derr := evidence.Decode(it.Blob)
		if derr != nil {
			return nil, fmt.Errorf("core: cold evidence for %s: %w", txn, derr)
		}
		if ev.Header.Kind == kind {
			return ev, nil
		}
	}
	return nil, fmt.Errorf("%w: %s (%s, %s)", evidence.ErrNoEvidence, txn, role, kind)
}

// ColdArchive exposes the attached cold archive (nil when absent).
func (p *party) ColdArchive() *archive.Store { return p.cold }
