package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/transport"
)

// DefaultAuditChallenges is how many leaves a sweep challenges per
// session when the caller does not say (a handful keeps audits cheap
// while each sweep samples fresh random leaves).
const DefaultAuditChallenges = 4

// Background storage-dwell auditing for the session pool (DESIGN.md
// §14). Every successful pool Upload registers its transaction as
// auditable; when PoolAuditInterval is set, a background loop sweeps
// the registered sessions on that cadence, borrowing connections
// through the same shard-pinned free lists the foreground traffic
// uses. Each failed audit leaves a journaled unanswered (or
// ill-answered) challenge — conviction material, not just a metric.

// poolAuditor tracks the pool's auditable sessions and the sweep
// goroutine's lifecycle.
type poolAuditor struct {
	mu   sync.Mutex
	txns []string
	seen map[string]bool

	// stop is guarded by mu; the running loop holds its own reference.
	stop chan struct{}
	wg   sync.WaitGroup
}

// recordAuditable registers a completed upload for future audit
// sweeps. Duplicate registrations (e.g. an upload retried through
// Resolve) collapse.
func (a *poolAuditor) recordAuditable(txnID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.seen == nil {
		a.seen = make(map[string]bool)
	}
	if a.seen[txnID] {
		return
	}
	a.seen[txnID] = true
	a.txns = append(a.txns, txnID)
}

// snapshot returns the current auditable set.
func (a *poolAuditor) snapshot() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.txns))
	copy(out, a.txns)
	return out
}

// AuditableTxns lists the sessions the pool will sweep.
func (p *SessionPool) AuditableTxns() []string { return p.auditor.snapshot() }

// Audit runs one n-leaf challenge-response round for txnID through
// the pool, with the same shard pinning, retry and backoff policy as
// the protocol operations. The report's challenge and any response
// are journaled in the client archive either way.
func (p *SessionPool) Audit(ctx context.Context, txnID string, n int) (*AuditReport, error) {
	var rep *AuditReport
	err := p.do(ctx, txnID, func(conn transport.Conn) error {
		r, aerr := p.c.AuditObject(ctx, conn, txnID, n)
		if aerr == nil {
			rep = r
		}
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// startAuditLoop launches the periodic sweep when an interval is
// configured. Challenge content randomness (indices, nonces) comes
// from crypto/rand inside the audit package; only the sweep cadence
// lives here. The stop channel is captured locally and handed to the
// goroutine so the loop never races stopAuditLoop's teardown writes.
func (p *SessionPool) startAuditLoop() {
	if p.opt.AuditInterval <= 0 {
		return
	}
	stop := make(chan struct{})
	p.auditor.mu.Lock()
	p.auditor.stop = stop
	p.auditor.mu.Unlock()
	p.auditor.wg.Add(1)
	go func() {
		defer p.auditor.wg.Done()
		t := time.NewTicker(p.opt.AuditInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				p.auditSweep(stop)
			}
		}
	}()
}

// auditSweep challenges every registered session once. Failures are
// already counted and journaled by AuditObject; the sweep keeps going
// so one lazy session cannot shield the rest.
func (p *SessionPool) auditSweep(stop <-chan struct{}) {
	n := p.opt.AuditChallenges
	if n <= 0 {
		n = DefaultAuditChallenges
	}
	for _, txn := range p.auditor.snapshot() {
		select {
		case <-stop:
			return
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.c.timeout)
		_, _ = p.Audit(ctx, txn, n)
		cancel()
	}
}

// stopAuditLoop terminates the sweep goroutine, if one is running.
// The swap-under-lock makes concurrent Close calls safe: exactly one
// caller observes the live channel and closes it.
func (p *SessionPool) stopAuditLoop() {
	p.auditor.mu.Lock()
	stop := p.auditor.stop
	p.auditor.stop = nil
	p.auditor.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	p.auditor.wg.Wait()
}
