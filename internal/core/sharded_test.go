package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/pki"
	"repro/internal/session"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wal"
)

// e14Engine builds an n-shard engine whose shard i journals under
// dir/shard-NN — the daemon's on-disk layout — so close-and-reopen
// tests exercise the exact restart path.
func e14Engine(tb testing.TB, dir string, n int, policy wal.SyncPolicy) (*ShardedEngine, func()) {
	tb.Helper()
	ca := pki.NewAuthority("bench-ca", cryptoutil.InsecureTestKey(30))
	id, err := pki.NewIdentity(ca, "bob", cryptoutil.InsecureTestKey(31),
		time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	if err != nil {
		tb.Fatal(err)
	}
	store := storage.NewMem(nil)
	providers := make([]*Provider, n)
	wals := make([]*wal.WAL, n)
	for i := range providers {
		w, err := wal.Open(filepath.Join(dir, shard.DirName(i)), wal.Options{Policy: policy})
		if err != nil {
			tb.Fatal(err)
		}
		wals[i] = w
		providers[i], err = NewProvider(
			WithIdentity(id),
			WithCAPublicKey(ca.Key()),
			WithDirectory(ca.Lookup),
			WithStore(store),
			WithJournal(w),
		)
		if err != nil {
			tb.Fatal(err)
		}
	}
	e, err := NewShardedEngine(providers)
	if err != nil {
		tb.Fatal(err)
	}
	return e, func() {
		for _, w := range wals {
			w.Close()
		}
	}
}

// e14Populate journals count completed upload sessions through the
// engine's own routing (owner shard per txn), e13-style: peer NRO, own
// NRR, two state transitions. Returns the per-shard session counts.
func e14Populate(tb testing.TB, e *ShardedEngine, from, count int) []int {
	tb.Helper()
	sig := make([]byte, 256)
	perShard := make([]int, e.N())
	for i := from; i < from+count; i++ {
		txn := fmt.Sprintf("txn-%06d", i)
		p := e.ShardFor(txn)
		perShard[e.ShardIndex(txn)]++
		if err := p.putEvidence(txn, evidence.RolePeer, e13Evidence(evidence.KindNRO, txn, "alice", "bob", sig)); err != nil {
			tb.Fatal(err)
		}
		if err := p.setState(txn, session.StateEvidenceReceived); err != nil {
			tb.Fatal(err)
		}
		if err := p.putEvidence(txn, evidence.RoleOwn, e13Evidence(evidence.KindNRR, txn, "bob", "alice", sig)); err != nil {
			tb.Fatal(err)
		}
		if err := p.setState(txn, session.StateCompleted); err != nil {
			tb.Fatal(err)
		}
	}
	return perShard
}

func TestShardedRoutingMatchesRing(t *testing.T) {
	e, closer := e14Engine(t, t.TempDir(), 4, wal.SyncNever)
	defer closer()
	ring := shard.New(4)
	for i := 0; i < 2000; i++ {
		txn := fmt.Sprintf("txn-%06d", i)
		want := ring.Shard(txn)
		if got := e.ShardIndex(txn); got != want {
			t.Fatalf("engine routes %q to shard %d, standalone ring says %d", txn, got, want)
		}
		if e.ShardFor(txn) != e.Shard(want) {
			t.Fatalf("ShardFor(%q) is not shard %d", txn, want)
		}
	}
}

// A crash with live sessions spread over every shard must recover in
// full: per-shard reports match what each shard journaled, the merged
// report matches their sum, and the dispute read path serves every
// receipt afterwards.
func TestShardedCrossShardRecovery(t *testing.T) {
	dir := t.TempDir()
	const n, sessions = 4, 64

	e, closer := e14Engine(t, dir, n, wal.SyncNever)
	perShard := e14Populate(t, e, 0, sessions)
	closer() // crash

	spread := 0
	for _, c := range perShard {
		if c > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("sessions landed on %d shard(s); the cross-shard scenario needs at least 2 (per-shard: %v)", spread, perShard)
	}

	e2, closer2 := e14Engine(t, dir, n, wal.SyncNever)
	defer closer2()
	reps, err := e2.RecoverShards(context.Background())
	if err != nil {
		t.Fatalf("RecoverShards: %v", err)
	}
	if len(reps) != n {
		t.Fatalf("got %d per-shard reports, want %d", len(reps), n)
	}
	total := 0
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("shard %d report is nil", i)
		}
		if len(rep.Transactions) != perShard[i] {
			t.Errorf("shard %d recovered %d txns, journaled %d", i, len(rep.Transactions), perShard[i])
		}
		total += len(rep.Transactions)
	}
	if total != sessions {
		t.Fatalf("recovered %d sessions across shards, want %d", total, sessions)
	}
	merged := MergeRecoveryReports(reps)
	if len(merged.Transactions) != sessions || merged.TornTail {
		t.Fatalf("merged report off: %d txns (want %d), torn=%v", len(merged.Transactions), sessions, merged.TornTail)
	}

	// Every receipt is reachable through the engine's dispute read path.
	for i := 0; i < sessions; i++ {
		txn := fmt.Sprintf("txn-%06d", i)
		if _, err := e2.EvidenceByKind(txn, evidence.RoleOwn, evidence.KindNRR); err != nil {
			t.Fatalf("NRR for %s unreachable after recovery: %v", txn, err)
		}
	}
}

// A shard failing mid-fanout (shard.recover.partial) must not wedge
// the others, and — because per-shard recovery is idempotent — a plain
// retry after the fault clears must converge to full recovery.
func TestShardedRecoverPartialRetry(t *testing.T) {
	dir := t.TempDir()
	const n, sessions = 4, 32

	e, closer := e14Engine(t, dir, n, wal.SyncNever)
	e14Populate(t, e, 0, sessions)
	closer()

	e2, closer2 := e14Engine(t, dir, n, wal.SyncNever)
	defer closer2()
	faultpoint.ArmErr("shard.recover.partial", func() error {
		return errors.New("injected: shard recovery failed")
	})
	if _, err := e2.Recover(context.Background()); err == nil {
		faultpoint.Reset()
		t.Fatal("Recover with armed shard.recover.partial succeeded")
	}
	faultpoint.Reset()

	rep, err := e2.Recover(context.Background())
	if err != nil {
		t.Fatalf("retry after fault cleared: %v", err)
	}
	if len(rep.Transactions) != sessions {
		t.Fatalf("retry recovered %d sessions, want %d", len(rep.Transactions), sessions)
	}
}

// A recovery goroutine panicking (Kill-armed faultpoint, or a bug in
// one shard's replay) must be confined to that shard's error slot, not
// crash the process.
func TestShardedRecoverPanicConfined(t *testing.T) {
	dir := t.TempDir()
	e, closer := e14Engine(t, dir, 2, wal.SyncNever)
	e14Populate(t, e, 0, 8)
	closer()

	e2, closer2 := e14Engine(t, dir, 2, wal.SyncNever)
	defer closer2()
	faultpoint.Arm("shard.recover.partial", faultpoint.Kill("shard.recover.partial"))
	_, err := e2.Recover(context.Background())
	faultpoint.Reset()
	if err == nil {
		t.Fatal("Recover with killing faultpoint succeeded")
	}
	if _, err := e2.Recover(context.Background()); err != nil {
		t.Fatalf("retry after panic: %v", err)
	}
}

// Evidence written to the WRONG shard (routing bug, stale ring) must
// still be found by the dispute read path: arbitration correctness
// never hinges on routing correctness.
func TestShardedEvidenceWrongShardFallback(t *testing.T) {
	e, closer := e14Engine(t, t.TempDir(), 4, wal.SyncNever)
	defer closer()
	sig := make([]byte, 64)
	txn := "txn-misrouted"
	wrong := (e.ShardIndex(txn) + 1) % e.N()
	if err := e.Shard(wrong).putEvidence(txn, evidence.RoleOwn, e13Evidence(evidence.KindNRR, txn, "bob", "alice", sig)); err != nil {
		t.Fatal(err)
	}
	ev, err := e.EvidenceByKind(txn, evidence.RoleOwn, evidence.KindNRR)
	if err != nil {
		t.Fatalf("evidence on wrong shard not found: %v", err)
	}
	if ev.Header.TxnID != txn {
		t.Fatalf("found evidence for %q, want %q", ev.Header.TxnID, txn)
	}
}

// The wrong-shard faultpoint misroutes live traffic; the engine must
// still answer disputes for the misrouted transaction.
func TestShardedWrongShardFaultpointRouting(t *testing.T) {
	e, closer := e14Engine(t, t.TempDir(), 4, wal.SyncNever)
	defer closer()
	txn := "txn-deflected"
	owner := e.ShardIndex(txn)
	faultpoint.ArmErr("shard.route.wrong-shard", func() error {
		return errors.New("injected: stale ring")
	})
	got := e.routeIndex(txn)
	faultpoint.Reset()
	if got == owner {
		t.Fatal("armed wrong-shard faultpoint did not deflect routing")
	}
	if clean := e.routeIndex(txn); clean != owner {
		t.Fatalf("disarmed routing gives %d, want owner %d", clean, owner)
	}
}

// One shard's journal going sticky-degraded degrades the whole
// daemon's health report — naming the shard — while the other shards
// stay healthy and DegradedShards pinpoints the sick one.
func TestShardedHealthDegradedShard(t *testing.T) {
	e, closer := e14Engine(t, t.TempDir(), 4, wal.SyncAlways)
	defer closer()
	if err := e.Health(); err != nil {
		t.Fatalf("fresh engine unhealthy: %v", err)
	}

	// Fill the disk under exactly one shard's next append.
	sick := 2
	faultpoint.ArmErr("wal.append.enospc", func() error {
		return errors.New("write: no space left on device")
	})
	sig := make([]byte, 64)
	if err := e.Shard(sick).putEvidence("txn-degrade", evidence.RolePeer, e13Evidence(evidence.KindNRO, "txn-degrade", "alice", "bob", sig)); err == nil {
		faultpoint.Reset()
		t.Fatal("append with ENOSPC armed succeeded")
	}
	faultpoint.Reset()

	if err := e.Health(); err == nil {
		t.Fatal("engine healthy with a degraded shard")
	}
	if !e.Degraded() {
		t.Fatal("Degraded() false with a degraded shard")
	}
	deg := e.DegradedShards()
	if len(deg) != 1 || deg[0] != sick {
		t.Fatalf("DegradedShards() = %v, want [%d]", deg, sick)
	}
	for i := 0; i < e.N(); i++ {
		if i != sick && e.Shard(i).Degraded() {
			t.Fatalf("healthy shard %d reports degraded", i)
		}
	}
}

// e14ColdEngine is e14Engine plus a per-shard cold archive under
// dir/shard-NN/cold, so checkpoint compaction has somewhere to move
// terminal sessions' evidence.
func e14ColdEngine(tb testing.TB, dir string, n int) (*ShardedEngine, func()) {
	tb.Helper()
	ca := pki.NewAuthority("bench-ca", cryptoutil.InsecureTestKey(30))
	id, err := pki.NewIdentity(ca, "bob", cryptoutil.InsecureTestKey(31),
		time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	if err != nil {
		tb.Fatal(err)
	}
	store := storage.NewMem(nil)
	providers := make([]*Provider, n)
	closers := make([]func(), 0, 2*n)
	for i := range providers {
		w, err := wal.Open(filepath.Join(dir, shard.DirName(i)), wal.Options{Policy: wal.SyncNever})
		if err != nil {
			tb.Fatal(err)
		}
		cold, err := archive.Open(filepath.Join(dir, shard.DirName(i), "cold"))
		if err != nil {
			tb.Fatal(err)
		}
		closers = append(closers, func() { w.Close() }, func() { cold.Close() })
		providers[i], err = NewProvider(
			WithIdentity(id),
			WithCAPublicKey(ca.Key()),
			WithDirectory(ca.Lookup),
			WithStore(store),
			WithJournal(w),
			WithArchive(cold),
		)
		if err != nil {
			tb.Fatal(err)
		}
	}
	e, err := NewShardedEngine(providers)
	if err != nil {
		tb.Fatal(err)
	}
	return e, func() {
		for _, fn := range closers {
			fn()
		}
	}
}

// e14AuditSession journals a completed upload session WITH storage-dwell
// audit evidence (challenge as peer, response as own — the provider's
// view of a round it answered, DESIGN.md §14) directly onto shard p.
func e14AuditSession(tb testing.TB, p *Provider, txn string) {
	tb.Helper()
	sig := make([]byte, 64)
	put := func(role evidence.Role, kind evidence.Kind, seq uint64) {
		tb.Helper()
		ev := e13Evidence(kind, txn, "alice", "bob", sig)
		if role == evidence.RoleOwn {
			ev.Header.SenderID, ev.Header.RecipientID = "bob", "alice"
		}
		ev.Header.Seq = seq
		ev.Header.Nonce = []byte(fmt.Sprintf("%s-%d", txn, seq))
		if err := p.putEvidence(txn, role, ev); err != nil {
			tb.Fatal(err)
		}
	}
	put(evidence.RolePeer, evidence.KindNRO, 1)
	if err := p.setState(txn, session.StateEvidenceReceived); err != nil {
		tb.Fatal(err)
	}
	put(evidence.RoleOwn, evidence.KindNRR, 2)
	if err := p.setState(txn, session.StateCompleted); err != nil {
		tb.Fatal(err)
	}
	put(evidence.RolePeer, evidence.KindAuditChallenge, 3)
	put(evidence.RoleOwn, evidence.KindAuditResponse, 4)
}

// Audit evidence compacted into a shard's COLD archive must stay
// reachable through the engine's dispute read path (owner shard first,
// then the all-shard sweep) — including when the session was deflected
// onto the wrong shard by shard.route.wrong-shard. A lazy-provider
// conviction (DESIGN.md §14) can hinge on a challenge journaled long
// before arbitration, so hot→cold movement and misrouting must both be
// invisible to EvidenceByKind.
func TestShardedColdArchiveAuditEvidence(t *testing.T) {
	e, closer := e14ColdEngine(t, t.TempDir(), 4)
	defer closer()

	// Correctly routed session on its owner shard.
	txnOwned := "txn-audit-cold"
	owner := e.ShardIndex(txnOwned)
	e14AuditSession(t, e.Shard(owner), txnOwned)

	// Session deflected by the wrong-shard faultpoint: route through the
	// engine's own (armed) routing to land on whatever shard a stale
	// ring would pick, exactly as live traffic would.
	txnDeflected := "txn-audit-deflected"
	faultpoint.ArmErr("shard.route.wrong-shard", func() error {
		return errors.New("injected: stale ring")
	})
	deflected := e.routeIndex(txnDeflected)
	faultpoint.Reset()
	if deflected == e.ShardIndex(txnDeflected) {
		t.Fatal("armed wrong-shard faultpoint did not deflect routing")
	}
	e14AuditSession(t, e.Shard(deflected), txnDeflected)

	// Compact every shard: both sessions are terminal, so their evidence
	// moves hot→cold.
	rep, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if rep.Archived < 2 {
		t.Fatalf("checkpoint archived %d sessions, want >= 2", rep.Archived)
	}

	for _, tc := range []struct {
		txn   string
		shard int
	}{
		{txnOwned, owner},
		{txnDeflected, deflected},
	} {
		// The hot store really is empty — what follows must come from the
		// cold archive, not a lingering hot copy.
		if _, err := e.Shard(tc.shard).archive.ByKind(tc.txn, evidence.RolePeer, evidence.KindAuditChallenge); err == nil {
			t.Fatalf("%s: audit challenge still hot after checkpoint", tc.txn)
		}
		ch, err := e.EvidenceByKind(tc.txn, evidence.RolePeer, evidence.KindAuditChallenge)
		if err != nil {
			t.Fatalf("%s: compacted audit challenge unreachable: %v", tc.txn, err)
		}
		if ch.Header.Kind != evidence.KindAuditChallenge || ch.Header.TxnID != tc.txn {
			t.Fatalf("%s: wrong evidence returned: kind=%v txn=%q", tc.txn, ch.Header.Kind, ch.Header.TxnID)
		}
		resp, err := e.EvidenceByKind(tc.txn, evidence.RoleOwn, evidence.KindAuditResponse)
		if err != nil {
			t.Fatalf("%s: compacted audit response unreachable: %v", tc.txn, err)
		}
		if resp.Header.Kind != evidence.KindAuditResponse {
			t.Fatalf("%s: wrong response kind %v", tc.txn, resp.Header.Kind)
		}
	}
}

// The shard-aware pool pins released connections to their shard's free
// list: a txn's retries and follow-ups reuse a connection warmed for
// its shard, and a different shard's operations never steal it.
func TestPoolShardPinning(t *testing.T) {
	net := transport.NewNetwork()
	l, err := net.Listen("bob")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	dials := 0
	pool := NewSessionPool(nil, func(ctx context.Context) (transport.Conn, error) {
		dials++
		return net.DialContext(ctx, "bob")
	}, PoolShardRing(shard.New(4)))
	defer pool.Close()

	// Two transactions on different shards.
	txnA := "txn-000000"
	var txnB string
	for i := 1; ; i++ {
		txnB = fmt.Sprintf("txn-%06d", i)
		if pool.ShardOf(txnB) != pool.ShardOf(txnA) {
			break
		}
	}
	sa, sb := pool.ShardOf(txnA), pool.ShardOf(txnB)

	ctx := context.Background()
	connA, err := pool.acquire(ctx, sa)
	if err != nil {
		t.Fatal(err)
	}
	pool.release(connA, sa)
	if dials != 1 {
		t.Fatalf("dials = %d, want 1", dials)
	}

	// txnB's shard must NOT reuse txnA's connection.
	connB, err := pool.acquire(ctx, sb)
	if err != nil {
		t.Fatal(err)
	}
	if connB == connA {
		t.Fatal("shard B reused shard A's pinned connection")
	}
	pool.release(connB, sb)
	if dials != 2 {
		t.Fatalf("dials = %d, want 2", dials)
	}

	// txnA's shard DOES reuse its own.
	again, err := pool.acquire(ctx, sa)
	if err != nil {
		t.Fatal(err)
	}
	if again != connA {
		t.Fatal("shard A did not reuse its pinned connection")
	}
	pool.release(again, sa)
	if dials != 2 {
		t.Fatalf("dials = %d after reuse, want 2", dials)
	}
}

// Routing stability across "reconnects": a fresh pool over a fresh
// ring — a client restart — must place every txn on the same shard.
func TestPoolShardRoutingStability(t *testing.T) {
	mk := func() *SessionPool {
		return NewSessionPool(nil, func(ctx context.Context) (transport.Conn, error) {
			return nil, errors.New("no dial in this test")
		}, PoolShardRing(shard.New(8)))
	}
	p1, p2 := mk(), mk()
	defer p1.Close()
	defer p2.Close()
	e, closer := e14Engine(t, t.TempDir(), 8, wal.SyncNever)
	defer closer()
	for i := 0; i < 5000; i++ {
		txn := fmt.Sprintf("txn-%08d", i)
		if p1.ShardOf(txn) != p2.ShardOf(txn) {
			t.Fatalf("txn %q moved shards across pool restarts", txn)
		}
		if p1.ShardOf(txn) != e.ShardIndex(txn) {
			t.Fatalf("pool and engine disagree on %q: %d vs %d", txn, p1.ShardOf(txn), e.ShardIndex(txn))
		}
	}
}
