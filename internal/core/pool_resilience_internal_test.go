package core

import (
	"errors"
	"fmt"
	"net"
	"testing"

	"repro/internal/transport"
)

// TestTransientFaultClassification pins which outcomes the session
// pool may retry. Permanent protocol rejections must be terminal —
// retrying a signed rejection just burns the peer's CPU — while
// overload sheds are the one typed outcome that is explicitly a retry
// hint.
func TestTransientFaultClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		transient bool
	}{
		{"overload shed", fmt.Errorf("%w: busy", ErrOverloaded), true},
		{"transport closed", transport.ErrClosed, true},
		{"plain dial refusal", &net.OpError{Op: "dial", Err: errors.New("connection refused")}, true},
		{"protocol violation", fmt.Errorf("%w: bad magic", ErrProtocol), false},
		{"peer rejection", fmt.Errorf("%w: data mismatch", ErrPeerRejected), false},
		{"integrity failure", fmt.Errorf("%w: md5", ErrIntegrity), false},
		{"unknown identity", fmt.Errorf("%w: mallory", ErrUnknownIdentity), false},
		{"timeout (escalate, not retry)", fmt.Errorf("%w: NRR", ErrTimeout), false},
		{"cancelled", fmt.Errorf("%w: ctx", ErrCancelled), false},
		{"expired session", fmt.Errorf("%w: txn-1", ErrExpired), false},
		{"degraded provider", fmt.Errorf("%w: journal", ErrDegraded), false},
		{"quorum unavailable", fmt.Errorf("%w: shard-00", ErrQuorumUnavailable), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := transientFault(tc.err); got != tc.transient {
				t.Fatalf("transientFault(%v) = %v, want %v", tc.err, got, tc.transient)
			}
		})
	}
}

// TestRetryableResolveClassification pins the escalation-path retry
// set: a breaker fast-fail and a TTP timeout are worth another
// attempt after backoff; everything else follows the transport rules.
func TestRetryableResolveClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		retryable bool
	}{
		{"breaker open", fmt.Errorf("%w: txn-9", ErrTTPUnavailable), true},
		{"ttp timeout", fmt.Errorf("%w: statement", ErrTimeout), true},
		{"overload shed", fmt.Errorf("%w: busy", ErrOverloaded), true},
		{"peer rejection", fmt.Errorf("%w: bad claim", ErrPeerRejected), false},
		{"cancelled", fmt.Errorf("%w: ctx", ErrCancelled), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryableResolve(tc.err); got != tc.retryable {
				t.Fatalf("retryableResolve(%v) = %v, want %v", tc.err, got, tc.retryable)
			}
		})
	}
}

// TestEscalableUploadClassification pins which upload failures may
// open a §4.3 dispute at the TTP. A quorum-unavailable refusal is the
// load-bearing negative case: it is retryable (above) but NEVER
// escalation grounds — the provider answered with a signed refusal, so
// there is no silence to dispute — even when wrapped in a
// retries-exhausted chain.
func TestEscalableUploadClassification(t *testing.T) {
	wrapExhausted := func(last error) error {
		return fmt.Errorf("%w: last error: %w", ErrRetriesExhausted, last)
	}
	cases := []struct {
		name      string
		err       error
		escalable bool
	}{
		{"silent provider", fmt.Errorf("%w: NRR", ErrTimeout), true},
		{"expired session", fmt.Errorf("%w: txn-1", ErrExpired), true},
		{"retries exhausted on transport", wrapExhausted(transport.ErrClosed), true},
		{"quorum unavailable", fmt.Errorf("%w: shard-00", ErrQuorumUnavailable), false},
		{"retries exhausted on quorum", wrapExhausted(fmt.Errorf("%w: shard-00", ErrQuorumUnavailable)), false},
		{"retries exhausted on overload", wrapExhausted(fmt.Errorf("%w: busy", ErrOverloaded)), false},
		{"retries exhausted on degraded", wrapExhausted(fmt.Errorf("%w: journal", ErrDegraded)), false},
		{"peer rejection", fmt.Errorf("%w: bad claim", ErrPeerRejected), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := escalableUpload(tc.err); got != tc.escalable {
				t.Fatalf("escalableUpload(%v) = %v, want %v", tc.err, got, tc.escalable)
			}
		})
	}
}

// TestRetriesExhaustedUnwraps checks the S1 fix: the exhaustion error
// carries the last underlying fault in its %w chain, so callers can
// see both "we gave up" and "why".
func TestRetriesExhaustedUnwraps(t *testing.T) {
	last := fmt.Errorf("%w: busy", ErrOverloaded)
	err := fmt.Errorf("%w: last error: %w", ErrRetriesExhausted, last)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatal("lost ErrRetriesExhausted")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("exhaustion chain dropped the underlying cause")
	}
}
