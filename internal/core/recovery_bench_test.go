package core

// BenchmarkE13Recovery measures crash recovery with and without a
// checkpoint, at two journal sizes. It lives inside the package so the
// setup can fabricate journal history directly through putEvidence and
// setState — the records a real workload would have written — without
// paying for the network round-trips and sealing that produced them.
// Evidence items are fabricated structurally (Decode never verifies
// signatures), which keeps setup for the 10k-session shape under a
// second while replay still decodes every record exactly as it would
// after a real crash.
//
// mode=replay   — no checkpoint was ever taken: recovery replays the
//                 whole journal from genesis (the pre-E13 behaviour).
// mode=snapshot — a checkpoint compacted every terminal session into
//                 the cold archive; recovery loads the snapshot and
//                 replays only the short tail written after it.
//
// Both modes recover the SAME logical history (n terminal sessions
// plus a small post-checkpoint tail), so the ratio
// recovery_snapshot_speedup_10k in cmd/benchreport is a like-for-like
// bound on restart time (target ≥ 5× at 10k sessions).

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/pki"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/wal"
)

// e13TailSessions is the post-checkpoint traffic both modes share: the
// bounded portion snapshot-mode recovery actually replays.
const e13TailSessions = 16

func e13Provider(b *testing.B, w *wal.WAL, cold *archive.Store) *Provider {
	b.Helper()
	ca := pki.NewAuthority("bench-ca", cryptoutil.InsecureTestKey(30))
	id, err := pki.NewIdentity(ca, "bob", cryptoutil.InsecureTestKey(31),
		time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	opts := []Option{
		WithIdentity(id),
		WithCAPublicKey(ca.Key()),
		WithDirectory(ca.Lookup),
		WithStore(storage.NewMem(nil)),
		WithJournal(w),
	}
	if cold != nil {
		opts = append(opts, WithArchive(cold))
	}
	p, err := NewProvider(opts...)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// e13Evidence fabricates a decodable evidence item. The signatures are
// placeholders — journal replay decodes, it never verifies — so the
// benchmark pays the honest decode cost per record and nothing else.
func e13Evidence(kind evidence.Kind, txn, sender, recipient string, sig []byte) *evidence.Evidence {
	h := &evidence.Header{
		Kind: kind, TxnID: txn, Seq: 1, Nonce: []byte(txn),
		SenderID: sender, RecipientID: recipient,
		ObjectKey: "bench/" + txn, ObjectLen: 4096,
		Timestamp: time.Unix(1700000000, 0),
	}
	h.SetDigests([]byte(txn))
	return &evidence.Evidence{Header: h, DataSig: sig, HeaderSig: sig}
}

// e13Populate journals count completed upload sessions starting at
// index from: peer NRO, own NRR, two state transitions each — the
// record mix a provider's journal holds after real traffic.
func e13Populate(b *testing.B, p *Provider, from, count int) {
	b.Helper()
	sig := make([]byte, 256)
	for i := from; i < from+count; i++ {
		txn := fmt.Sprintf("txn-%06d", i)
		if err := p.putEvidence(txn, evidence.RolePeer, e13Evidence(evidence.KindNRO, txn, "alice", "bob", sig)); err != nil {
			b.Fatal(err)
		}
		if err := p.setState(txn, session.StateEvidenceReceived); err != nil {
			b.Fatal(err)
		}
		if err := p.putEvidence(txn, evidence.RoleOwn, e13Evidence(evidence.KindNRR, txn, "bob", "alice", sig)); err != nil {
			b.Fatal(err)
		}
		if err := p.setState(txn, session.StateCompleted); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13Recovery(b *testing.B) {
	ctx := context.Background()
	for _, mode := range []string{"replay", "snapshot"} {
		for _, n := range []int{1000, 10000} {
			b.Run(fmt.Sprintf("mode=%s/sessions=%d", mode, n), func(b *testing.B) {
				dir := b.TempDir()
				walDir := filepath.Join(dir, "wal")
				arcDir := filepath.Join(dir, "archive")

				// Fabricate the pre-crash history. SyncNever: durability is
				// not under test, replay cost is.
				w, err := wal.Open(walDir, wal.Options{Policy: wal.SyncNever})
				if err != nil {
					b.Fatal(err)
				}
				var cold *archive.Store
				if mode == "snapshot" {
					if cold, err = archive.Open(arcDir); err != nil {
						b.Fatal(err)
					}
				}
				p := e13Provider(b, w, cold)
				e13Populate(b, p, 0, n)
				if mode == "snapshot" {
					rep, err := p.Checkpoint()
					if err != nil {
						b.Fatal(err)
					}
					if rep.Archived != n {
						b.Fatalf("checkpoint archived %d sessions, want %d", rep.Archived, n)
					}
				}
				e13Populate(b, p, n, e13TailSessions)
				w.Close()
				if cold != nil {
					cold.Close()
				}

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w2, err := wal.Open(walDir, wal.Options{Policy: wal.SyncNever})
					if err != nil {
						b.Fatal(err)
					}
					var c2 *archive.Store
					if mode == "snapshot" {
						if c2, err = archive.Open(arcDir); err != nil {
							b.Fatal(err)
						}
					}
					p2 := e13Provider(b, w2, c2)
					rep, err := p2.Recover(ctx)
					if err != nil {
						b.Fatal(err)
					}
					switch mode {
					case "replay":
						if len(rep.Transactions) != n+e13TailSessions {
							b.Fatalf("replay recovered %d txns, want %d", len(rep.Transactions), n+e13TailSessions)
						}
					case "snapshot":
						if rep.SnapshotLSN == 0 || rep.ArchivedSessions != n || len(rep.Transactions) != e13TailSessions {
							b.Fatalf("snapshot recovery off: LSN=%d archived=%d live=%d",
								rep.SnapshotLSN, rep.ArchivedSessions, len(rep.Transactions))
						}
					}
					w2.Close()
					if c2 != nil {
						c2.Close()
					}
				}
			})
		}
	}
}
