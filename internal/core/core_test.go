package core_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/auditlog"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/metrics"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/transport"
)

// newDeploy builds a fast test deployment with cached keys.
func newDeploy(t testing.TB, timeout time.Duration) *deploy.Deployment {
	t.Helper()
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func mustDial(t testing.TB, d *deploy.Deployment) transport.Conn {
	t.Helper()
	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestUploadNormalMode(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	data := []byte("company financial data, Q3")

	res, err := d.Client.Upload(context.Background(), conn, "txn-up-1", "finance/q3.xls", data)
	if err != nil {
		t.Fatal(err)
	}
	if res.NRO == nil || res.NRR == nil {
		t.Fatal("upload result missing evidence")
	}
	// Both commitments cover the same digests — the agreed value.
	if !res.NRO.Header.DataMD5.Equal(res.NRR.Header.DataMD5) {
		t.Error("NRO and NRR disagree on MD5")
	}
	// The provider stored the exact bytes.
	obj, err := d.Store.Get("finance/q3.xls")
	if err != nil || !bytes.Equal(obj.Data, data) {
		t.Fatalf("stored object: %v", err)
	}
	// Both sides archived both roles of evidence.
	if _, err := d.Client.Archive().ByKind("txn-up-1", evidence.RoleOwn, evidence.KindNRO); err != nil {
		t.Error("client lost its NRO")
	}
	if _, err := d.Client.Archive().ByKind("txn-up-1", evidence.RolePeer, evidence.KindNRR); err != nil {
		t.Error("client did not archive the NRR")
	}
	if _, err := d.Provider.Archive().ByKind("txn-up-1", evidence.RolePeer, evidence.KindNRO); err != nil {
		t.Error("provider did not archive the NRO")
	}
	if _, err := d.Provider.Archive().ByKind("txn-up-1", evidence.RoleOwn, evidence.KindNRR); err != nil {
		t.Error("provider lost its NRR")
	}
}

// TestTwoStepClaim verifies the §4.4 headline: the Normal mode takes
// exactly two protocol messages and zero TTP messages.
func TestTwoStepClaim(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	if _, err := d.Client.Upload(context.Background(), conn, "txn-steps", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := d.ClientCounters.Get(metrics.MsgsSent); got != 1 {
		t.Errorf("client sent %d messages, want 1", got)
	}
	if got := d.ClientCounters.Get(metrics.MsgsRecv); got != 1 {
		t.Errorf("client received %d messages, want 1", got)
	}
	if got := d.ProviderCounters.Get(metrics.MsgsSent); got != 1 {
		t.Errorf("provider sent %d messages, want 1", got)
	}
	if got := d.ClientCounters.Get(metrics.TTPMsgs) + d.ProviderCounters.Get(metrics.TTPMsgs) + d.TTPCounters.Get(metrics.MsgsRecv); got != 0 {
		t.Errorf("TTP was involved in a Normal-mode run: %d messages", got)
	}
}

func TestUploadDownloadIntegrityLink(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	data := []byte("the agreed content")
	if _, err := d.Client.Upload(context.Background(), conn, "txn-u", "docs/a", data); err != nil {
		t.Fatal(err)
	}
	res, err := d.Client.Download(context.Background(), conn, "txn-d", "docs/a", "txn-u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("downloaded bytes differ")
	}
	if !res.IntegrityOK || res.AgreedUpload == nil {
		t.Fatal("upload-to-download link not verified")
	}
}

// TestDownloadDetectsInStorageTamper is the repository's headline test:
// the provider tampers in storage and fixes the platform metadata (the
// move that defeats Azure/AWS/GAE checks in E5) — and the TPNR client
// still detects it, because the agreed digest is signed by both sides.
func TestDownloadDetectsInStorageTamper(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	if _, err := d.Client.Upload(context.Background(), conn, "txn-u", "ledger", []byte("total = 1000")); err != nil {
		t.Fatal(err)
	}
	tam := d.Store.(storage.Tamperer)
	if err := tam.Tamper("ledger", true, func(b []byte) []byte {
		return bytes.Replace(b, []byte("1000"), []byte("9999"), 1)
	}); err != nil {
		t.Fatal(err)
	}
	res, err := d.Client.Download(context.Background(), conn, "txn-d", "ledger", "txn-u")
	if !errors.Is(err, core.ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
	// The client still holds the provider's signature over the
	// tampered bytes — exactly the evidence a dispute needs.
	if res == nil || res.Receipt == nil || res.IntegrityOK {
		t.Fatal("failed download must still carry the provider receipt")
	}
}

// TestProviderTamperOnDownload covers the serving-side variant: the
// provider serves modified bytes (signing them, as it must for the
// message to pass checkInbound) and the agreed-digest comparison
// catches it.
func TestProviderTamperOnDownload(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	if _, err := d.Client.Upload(context.Background(), conn, "txn-u", "k", []byte("honest bytes")); err != nil {
		t.Fatal(err)
	}
	d.Provider.SetMisbehavior(core.Misbehavior{TamperOnDownload: func(b []byte) []byte {
		return append(b, []byte(" [altered]")...)
	}})
	if _, err := d.Client.Download(context.Background(), conn, "txn-d", "k", "txn-u"); !errors.Is(err, core.ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
}

func TestUploadTimeoutOnSilentProvider(t *testing.T) {
	d := newDeploy(t, 150*time.Millisecond)
	conn := mustDial(t, d)
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	_, err := d.Client.Upload(context.Background(), conn, "txn-silent", "k", []byte("v"))
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The client still holds its NRO for escalation.
	if _, err := d.Client.PendingNRO("txn-silent"); err != nil {
		t.Fatalf("PendingNRO: %v", err)
	}
	// And the provider has the data + NRO: the exact unfairness window
	// the Resolve sub-protocol exists for.
	if _, err := d.Store.Get("k"); err != nil {
		t.Fatal("provider should have stored the data before going silent")
	}
}

func TestResolveAfterSilentProvider(t *testing.T) {
	d := newDeploy(t, 300*time.Millisecond)
	conn := mustDial(t, d)
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	if _, err := d.Client.Upload(context.Background(), conn, "txn-r", "k", []byte("v")); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("setup: %v", err)
	}
	// Bob answers the TTP even though he stonewalled Alice (he has no
	// incentive to defy the TTP — and if he did, the statement path
	// covers it; see the next test).
	d.Provider.SetMisbehavior(core.Misbehavior{})

	ttpConn, err := d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	res, err := d.Client.Resolve(context.Background(), ttpConn, "txn-r", "no NRR before time limit")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "continue" {
		t.Fatalf("outcome = %q, want continue", res.Outcome)
	}
	if res.PeerEvidence == nil || res.PeerEvidence.Header.Kind != evidence.KindNRR {
		t.Fatal("resolve did not deliver the provider's NRR")
	}
	// The relayed NRR commits to the same digests as the upload —
	// Alice now holds everything a completed Normal run would give.
	nro, _ := d.Client.PendingNRO("txn-r")
	if !res.PeerEvidence.Header.DataMD5.Equal(nro.Header.DataMD5) {
		t.Fatal("relayed NRR digests differ from the NRO")
	}
}

func TestResolveUnresponsiveProvider(t *testing.T) {
	d := newDeploy(t, 300*time.Millisecond)
	conn := mustDial(t, d)
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true, IgnoreResolve: true})
	if _, err := d.Client.Upload(context.Background(), conn, "txn-ur", "k", []byte("v")); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("setup: %v", err)
	}
	ttpConn, err := d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	res, err := d.Client.Resolve(context.Background(), ttpConn, "txn-ur", "no NRR before time limit")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "peer-unresponsive" {
		t.Fatalf("outcome = %q, want peer-unresponsive", res.Outcome)
	}
	if res.TTPStatement == nil {
		t.Fatal("no signed TTP statement")
	}
	if res.PeerEvidence != nil {
		t.Fatal("unexpected peer evidence from an unresponsive provider")
	}
}

func TestResolveUnknownTransactionRestart(t *testing.T) {
	// Alice's NRO never reached Bob (dropped). Resolve must end with
	// Bob asking for a session restart, since the TTP does not forward
	// bulk data.
	d := newDeploy(t, 300*time.Millisecond)

	// Simulate the lost NRO by uploading through a connection that
	// drops everything.
	conn := mustDial(t, d)
	lossy := transport.Faulty(conn, transport.FaultSpec{DropProb: 1.0, Seed: 42})
	if _, err := d.Client.Upload(context.Background(), lossy, "txn-lost", "k", []byte("v")); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("setup: %v", err)
	}
	if _, err := d.Store.Get("k"); err == nil {
		t.Fatal("provider should never have received the data")
	}

	ttpConn, err := d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	res, err := d.Client.Resolve(context.Background(), ttpConn, "txn-lost", "request dropped in transit")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "restart" {
		t.Fatalf("outcome = %q, want restart", res.Outcome)
	}
}

func TestAbortPendingTransaction(t *testing.T) {
	d := newDeploy(t, 300*time.Millisecond)
	conn := mustDial(t, d)
	// Bob stores the data but never sends the NRR; Alice aborts.
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	if _, err := d.Client.Upload(context.Background(), conn, "txn-a", "k", []byte("v")); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("setup: %v", err)
	}
	d.Provider.SetMisbehavior(core.Misbehavior{})

	res, err := d.Client.Abort(context.Background(), conn, "txn-a", "undesired situation; canceling")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("abort of a pending transaction must be accepted")
	}
	if res.Receipt == nil || res.Receipt.Header.Kind != evidence.KindAbortAccept {
		t.Fatal("abort receipt missing or wrong kind")
	}
	// The provider dropped the partial object.
	if _, err := d.Store.Get("k"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("aborted object still stored: %v", err)
	}
}

func TestAbortCompletedTransactionRejected(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	if _, err := d.Client.Upload(context.Background(), conn, "txn-done", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	res, err := d.Client.Abort(context.Background(), conn, "txn-done", "changed my mind")
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("abort of a completed transaction must be rejected")
	}
	if res.Receipt.Header.Kind != evidence.KindAbortReject {
		t.Fatalf("receipt kind = %v", res.Receipt.Header.Kind)
	}
	// The object survives.
	if _, err := d.Store.Get("k"); err != nil {
		t.Fatal("object deleted despite rejected abort")
	}
}

func TestAbortUnknownTransactionAccepted(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	res, err := d.Client.Abort(context.Background(), conn, "txn-never-started", "never sent anything")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("abort of an unknown transaction should be accepted")
	}
}

func TestDownloadMissingObject(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	_, err := d.Client.Download(context.Background(), conn, "txn-miss", "no/such/object", "")
	if !errors.Is(err, core.ErrPeerRejected) {
		t.Fatalf("err = %v, want ErrPeerRejected", err)
	}
}

// TestReplayedNRORejected replays a captured upload message; the
// provider must reject it (unique sequence number + nonce, §5.4) and
// the store must hold exactly one version.
func TestReplayedNRORejected(t *testing.T) {
	d := newDeploy(t, 5*time.Second)

	var captured []byte
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir == transport.ClientToServer && captured == nil {
			captured = append([]byte(nil), msg...)
		}
		return msg, true
	}
	conn, tap, err := transport.Spliced(d.DialProvider, ic)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()

	if _, err := d.Client.Upload(context.Background(), conn, "txn-rp", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("tap captured nothing")
	}
	// Replay the identical NRO from the MITM position.
	if err := tap.Inject(transport.ClientToServer, captured); err != nil {
		t.Fatal(err)
	}
	// Give the provider a moment to process the replay.
	time.Sleep(100 * time.Millisecond)
	mem := d.Store.(*storage.Mem)
	if n, _ := mem.Versions("k"); n != 1 {
		t.Fatalf("replay created version %d", n)
	}
	if d.ProviderCounters.Get(metrics.ReplaysSeen) == 0 {
		t.Error("provider did not count the replay")
	}
}

// TestCorruptedPayloadRejected flips payload bytes in flight: the
// provider must answer with a signed error, surfacing as
// ErrPeerRejected at the client.
func TestCorruptedPayloadRejected(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir != transport.ClientToServer {
			return msg, true
		}
		m, err := core.DecodeMessage(msg)
		if err != nil || len(m.Payload) == 0 {
			return msg, true
		}
		m.Payload[0] ^= 0xFF
		return m.Encode(), true
	}
	conn, tap, err := transport.Spliced(d.DialProvider, ic)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	_, err = d.Client.Upload(context.Background(), conn, "txn-corrupt", "k", []byte("vital data"))
	if !errors.Is(err, core.ErrPeerRejected) {
		t.Fatalf("err = %v, want ErrPeerRejected", err)
	}
	if _, err := d.Store.Get("k"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("corrupted upload must not be stored")
	}
}

func TestMessageEncodeDecode(t *testing.T) {
	m := &core.Message{HeaderBytes: []byte("hdr"), Payload: []byte("pay"), Sealed: []byte("sealed")}
	got, err := core.DecodeMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.HeaderBytes, m.HeaderBytes) || !bytes.Equal(got.Payload, m.Payload) || !bytes.Equal(got.Sealed, m.Sealed) {
		t.Fatal("message round trip mismatch")
	}
	if _, err := core.DecodeMessage([]byte("garbage")); err == nil {
		t.Fatal("garbage message decoded")
	}
	if _, err := core.DecodeMessage(append(m.Encode(), 1)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestConcurrentUploads(t *testing.T) {
	d := newDeploy(t, 10*time.Second)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			conn, err := d.DialProvider()
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			txn := session.NewTransactionID()
			_, err = d.Client.Upload(context.Background(), conn, txn, "obj/"+txn, bytes.Repeat([]byte{byte(i)}, 512))
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(d.Store.Keys()); got != n {
		t.Fatalf("stored %d objects, want %d", got, n)
	}
}

// TestProviderAuditLog: every protocol event lands in the provider's
// hash-chained log and the chain verifies.
func TestProviderAuditLog(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	log := auditlog.New(nil)
	d.Provider.SetAuditLog(log)
	conn := mustDial(t, d)

	if _, err := d.Client.Upload(context.Background(), conn, "txn-log", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Client.Download(context.Background(), conn, "txn-log-dl", "k", "txn-log"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Client.Abort(context.Background(), conn, "txn-log-2", "never mind"); err != nil {
		t.Fatal(err)
	}
	entries := log.Entries()
	if len(entries) != 3 {
		t.Fatalf("audit log has %d entries: %+v", len(entries), entries)
	}
	if entries[0].Kind != "upload" || entries[1].Kind != "download" || entries[2].Kind != "abort" {
		t.Fatalf("kinds = %s %s %s", entries[0].Kind, entries[1].Kind, entries[2].Kind)
	}
	if err := auditlog.Verify(entries); err != nil {
		t.Fatalf("audit chain invalid: %v", err)
	}
	if got := log.ByTxn("txn-log"); len(got) != 1 || got[0].Kind != "upload" {
		t.Fatalf("ByTxn = %+v", got)
	}
}

// TestProviderInitiatedResolve: Bob escalates to the TTP after sending
// his NRR. The client is not reachable through the TTP (clients do not
// listen), so Bob receives the TTP's signed unreachability statement —
// his proof of attempted completion.
func TestProviderInitiatedResolve(t *testing.T) {
	d := newDeploy(t, 400*time.Millisecond)
	conn := mustDial(t, d)
	if _, err := d.Client.Upload(context.Background(), conn, "txn-pr", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	ttpConn, err := d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	res, err := d.Provider.Resolve(context.Background(), ttpConn, "txn-pr", "no further client activity after NRR")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "peer-unreachable" {
		t.Fatalf("outcome = %q, want peer-unreachable", res.Outcome)
	}
	if res.TTPStatement == nil {
		t.Fatal("no TTP statement archived")
	}
}

// TestProviderResolveWithoutNRR: a provider that never issued an NRR
// has nothing to resolve with.
func TestProviderResolveWithoutNRR(t *testing.T) {
	d := newDeploy(t, 400*time.Millisecond)
	ttpConn, err := d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	if _, err := d.Provider.Resolve(context.Background(), ttpConn, "txn-ghost", "x"); err == nil {
		t.Fatal("resolve without NRR succeeded")
	}
}

// TestUploadOverDuplicatingLink: duplicated messages are absorbed by
// the replay guard without breaking the happy path.
func TestUploadOverDuplicatingLink(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	conn := mustDial(t, d)
	dup := transport.Faulty(conn, transport.FaultSpec{DupProb: 1.0, Seed: 3})
	if _, err := d.Client.Upload(context.Background(), dup, "txn-dup", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	mem := d.Store.(*storage.Mem)
	if n, _ := mem.Versions("k"); n != 1 {
		t.Fatalf("duplicate NRO created version %d", n)
	}
	if d.ProviderCounters.Get(metrics.ReplaysSeen) == 0 {
		t.Error("duplicate not counted as replay")
	}
}

// TestProviderHandleRawNeverPanics feeds random garbage at the
// provider's message entry point: it must neither panic nor store
// anything.
func TestProviderHandleRawNeverPanics(t *testing.T) {
	d := newDeploy(t, time.Second)
	rng := rand.New(rand.NewSource(99))
	f := func(raw []byte) bool {
		// Mix in mutated real messages for deeper coverage.
		if rng.Intn(2) == 0 && len(raw) > 0 {
			m := &core.Message{HeaderBytes: raw, Payload: raw, Sealed: raw}
			raw = m.Encode()
		}
		d.Provider.Handle(raw) // must not panic
		return len(d.Store.Keys()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestProviderRejectsBitFlippedMessages mutates a REAL captured NRO at
// every byte region; none of the variants may be accepted or stored.
func TestProviderRejectsBitFlippedMessages(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	var captured []byte
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir == transport.ClientToServer && captured == nil {
			captured = append([]byte(nil), msg...)
		}
		return msg, true
	}
	conn, tap, err := transport.Spliced(d.DialProvider, ic)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	if _, err := d.Client.Upload(context.Background(), conn, "txn-flip", "k", []byte("genuine")); err != nil {
		t.Fatal(err)
	}
	mem := d.Store.(*storage.Mem)
	base, _ := mem.Versions("k")

	step := len(captured) / 64
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(captured); i += step {
		mutated := append([]byte(nil), captured...)
		mutated[i] ^= 0x55
		reply, _ := d.Provider.Handle(mutated)
		if reply == nil {
			continue // silence is a rejection
		}
		m, err := core.DecodeMessage(reply)
		if err != nil {
			continue
		}
		h, err := m.Header()
		if err != nil {
			continue
		}
		if h.Kind == evidence.KindNRR {
			t.Fatalf("bit flip at byte %d produced an accepted NRR", i)
		}
	}
	if n, _ := mem.Versions("k"); n != base {
		t.Fatalf("bit-flipped replays changed storage: %d versions", n)
	}
}

// TestAbortErrorThenResubmit covers the §4.2 recovery path: "Bob will
// send an Error message that request Alice double check the parameters
// included in the Abort request, regenerate it, and re-submit the
// request." A corrupted abort elicits the signed Error; a regenerated
// abort then succeeds.
func TestAbortErrorThenResubmit(t *testing.T) {
	d := newDeploy(t, 5*time.Second)
	corruptNext := true
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir != transport.ClientToServer || !corruptNext {
			return msg, true
		}
		m, err := core.DecodeMessage(msg)
		if err != nil {
			return msg, true
		}
		// Corrupt the sealed evidence: header still decodes, so Bob can
		// answer with a signed Error instead of silence.
		if len(m.Sealed) > 0 {
			m.Sealed[len(m.Sealed)/2] ^= 0xFF
		}
		corruptNext = false
		return m.Encode(), true
	}
	conn, tap, err := transport.Spliced(d.DialProvider, ic)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()

	// First attempt: corrupted in flight → signed Error → ErrPeerRejected.
	if _, err := d.Client.Abort(context.Background(), conn, "txn-ab-retry", "first attempt"); !errors.Is(err, core.ErrPeerRejected) {
		t.Fatalf("corrupted abort: err = %v, want ErrPeerRejected", err)
	}
	// Regenerated resubmission sails through.
	res, err := d.Client.Abort(context.Background(), conn, "txn-ab-retry", "regenerated attempt")
	if err != nil {
		t.Fatalf("resubmitted abort: %v", err)
	}
	if !res.Accepted {
		t.Fatal("resubmitted abort not accepted")
	}
}
