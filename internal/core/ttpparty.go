package core

import (
	"context"
	"crypto/rsa"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/metrics"
	"repro/internal/session"
	"repro/internal/transport"
)

// TTPParty exposes the shared party plumbing to the ttp package, which
// lives outside core but participates in the protocol with the same
// identity, guard, archive and instrumentation machinery.
type TTPParty struct {
	p *party

	// openRes tracks resolve procedures opened but not yet closed. It
	// is the TTP's in-memory mirror of the jrResolve journal records:
	// Recover rebuilds it, checkpoints snapshot it (per-transaction flag
	// in the snapshot extras), and compaction refuses to archive a
	// session while its resolve is still open.
	resMu   sync.Mutex
	openRes map[string]bool
}

// NewTTPParty constructs the plumbing for a TTP server from functional
// options.
func NewTTPParty(opts ...Option) (*TTPParty, error) {
	return NewTTPPartyFromOptions(buildOptions(opts))
}

// NewTTPPartyFromOptions constructs the plumbing for a TTP server from
// a legacy Options struct.
//
// Deprecated: use NewTTPParty with functional options.
func NewTTPPartyFromOptions(o Options) (*TTPParty, error) {
	p, err := newParty(o)
	if err != nil {
		return nil, err
	}
	t := &TTPParty{p: p, openRes: make(map[string]bool)}
	// The TTP writes no tracker state of its own, so the default
	// "tracker state is terminal" compaction rule would never fire.
	// Its rule instead: any session whose evidence has stopped moving
	// (no open resolve) may be compacted; sessions with an open resolve
	// stay hot because the claimant's retry will need them.
	p.eligible = func(txn string) (session.State, bool) {
		t.resMu.Lock()
		open := t.openRes[txn]
		t.resMu.Unlock()
		if open {
			return 0, false
		}
		if st, err := p.tracker.Get(txn); err == nil {
			if !session.Terminal(st) {
				return 0, false
			}
			return st, true
		}
		return session.StateCompleted, true
	}
	p.snapExtra = func(txn string) (string, bool) {
		t.resMu.Lock()
		open := t.openRes[txn]
		t.resMu.Unlock()
		return "", open
	}
	p.restoreExtra = func(txn, _ string, flag bool) {
		if !flag {
			return
		}
		t.resMu.Lock()
		t.openRes[txn] = true
		t.resMu.Unlock()
	}
	return t, nil
}

// ID returns the TTP's party name.
func (t *TTPParty) ID() string { return t.p.ID() }

// Archive exposes the evidence store.
func (t *TTPParty) Archive() *evidence.Store { return t.p.Archive() }

// Counters exposes the metrics counters.
func (t *TTPParty) Counters() *metrics.Counters { return t.p.Counters() }

// PeerPublicKey resolves and authenticates a party's public key as a
// scheme handle (cached per certificate).
func (t *TTPParty) PeerPublicKey(name string) (cryptoutil.PublicKey, error) {
	return t.p.peerKey(name)
}

// PeerKey resolves and authenticates a party's public key.
//
// Deprecated: use PeerPublicKey — this fails for non-RSA peers.
func (t *TTPParty) PeerKey(name string) (*rsa.PublicKey, error) {
	key, err := t.p.peerKey(name)
	if err != nil {
		return nil, err
	}
	if pub, ok := cryptoutil.RSAPublicKeyOf(key); ok {
		return pub, nil
	}
	return nil, fmt.Errorf("%w: %q uses %s, not RSA", ErrUnknownIdentity, name, key.Scheme())
}

// NewHeader assembles an outbound header with the TTP as sender.
func (t *TTPParty) NewHeader(kind evidence.Kind, txn, recipient, ttp string, seq uint64) *evidence.Header {
	return t.p.newHeader(kind, txn, recipient, ttp, seq)
}

// NextSeq issues the next outbound sequence number for a transaction.
func (t *TTPParty) NextSeq(txn string) uint64 { return t.p.nextSeq(txn) }

// BumpSeqTo advances the outbound counter past an observed inbound
// sequence.
func (t *TTPParty) BumpSeqTo(txn string, seen uint64) uint64 { return t.p.bumpSeqTo(txn, seen) }

// BuildMessageFor signs and seals evidence for a header, addressed to
// a recipient key handle.
func (t *TTPParty) BuildMessageFor(h *evidence.Header, payload []byte, recipientKey cryptoutil.PublicKey) (*Message, *evidence.Evidence, error) {
	return t.p.buildMessage(h, payload, recipientKey)
}

// BuildMessage signs and seals evidence for a header.
//
// Deprecated: use BuildMessageFor with a scheme handle.
func (t *TTPParty) BuildMessage(h *evidence.Header, payload []byte, recipientKey *rsa.PublicKey) (*Message, *evidence.Evidence, error) {
	return t.p.buildMessage(h, payload, cryptoutil.NewRSAPublicKey(recipientKey))
}

// CheckInbound runs the generic inbound validation sequence.
func (t *TTPParty) CheckInbound(m *Message) (*evidence.Header, *evidence.Evidence, error) {
	return t.p.checkInbound(m)
}

// VerifyCache exposes the party's verification cache so the ttp
// package can route its own explicit evidence checks (the resolve
// claim verification) through the same memo the inbound path uses.
func (t *TTPParty) VerifyCache() *evidence.VerifyCache { return t.p.vcache }

// RecvTimeout waits the party's response timeout for one message on
// conn, returning early with ErrCancelled when ctx terminates.
func (t *TTPParty) RecvTimeout(ctx context.Context, conn transport.Conn) ([]byte, error) {
	return t.p.pumpFor(conn).recv(ctx, t.p.clk, t.p.timeout)
}

// ResponseTimeout reports the configured peer-response deadline.
func (t *TTPParty) ResponseTimeout() time.Duration { return t.p.timeout }

// PutEvidence journals (when a WAL is attached) and archives an
// evidence item — the TTP's durable record of what passed through it.
func (t *TTPParty) PutEvidence(txn string, role evidence.Role, ev *evidence.Evidence) error {
	return t.p.putEvidence(txn, role, ev)
}

// JournalResolveOpen durably records that a resolve procedure was
// accepted for txn, before the peer query goes out. Journal record and
// ledger update are bracketed by the checkpoint read-lock like every
// journal+mutate pair.
func (t *TTPParty) JournalResolveOpen(txn, note string) error {
	t.p.ckptMu.RLock()
	defer t.p.ckptMu.RUnlock()
	if err := t.p.journalAppend(&journalRecord{Kind: jrResolve, Txn: txn, Aux: jrResolveOpen, Note: note}); err != nil {
		return err
	}
	t.resMu.Lock()
	t.openRes[txn] = true
	t.resMu.Unlock()
	return nil
}

// JournalResolveClosed durably records the resolve outcome, before the
// statement is sent to the claimant.
func (t *TTPParty) JournalResolveClosed(txn, note string) error {
	t.p.ckptMu.RLock()
	defer t.p.ckptMu.RUnlock()
	if err := t.p.journalAppend(&journalRecord{Kind: jrResolve, Txn: txn, Aux: jrResolveClosed, Note: note}); err != nil {
		return err
	}
	t.resMu.Lock()
	delete(t.openRes, txn)
	t.resMu.Unlock()
	return nil
}

// Checkpoint compacts settled sessions into the cold archive (when one
// is attached) and snapshots the TTP's live state into the journal.
func (t *TTPParty) Checkpoint() (*CheckpointReport, error) { return t.p.Checkpoint() }

// ColdArchive exposes the attached cold archive (nil when absent).
func (t *TTPParty) ColdArchive() *archive.Store { return t.p.ColdArchive() }

// EvidenceByKind returns the latest matching evidence, reading through
// to the cold archive for compacted sessions.
func (t *TTPParty) EvidenceByKind(txn string, role evidence.Role, kind evidence.Kind) (*evidence.Evidence, error) {
	return t.p.EvidenceByKind(txn, role, kind)
}

// Recover replays the TTP's journal after a restart: the evidence
// archive, replay guard and sequence counters are rebuilt, and resolve
// procedures that were opened but never closed are listed in
// OpenResolves — the claimant never got its statement, so it will
// retry, and the journal guarantees the retry sees the archived
// evidence from the first attempt.
func (t *TTPParty) Recover(ctx context.Context) (*RecoveryReport, error) {
	rep, err := t.p.recoverBase(ctx, func(r *journalRecord) error {
		if r.Kind == jrResolve {
			t.resMu.Lock()
			switch r.Aux {
			case jrResolveOpen:
				t.openRes[r.Txn] = true
			case jrResolveClosed:
				delete(t.openRes, r.Txn)
			}
			t.resMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The TTP holds no sessions of its own: NeedsResolve (derived from
	// tracker state the TTP never writes) is meaningless here.
	rep.NeedsResolve = nil
	t.resMu.Lock()
	for txn := range t.openRes {
		rep.OpenResolves = append(rep.OpenResolves, txn)
	}
	t.resMu.Unlock()
	sort.Strings(rep.OpenResolves)
	return rep, nil
}
