package core

import (
	"context"
	"crypto/rsa"
	"time"

	"repro/internal/evidence"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// TTPParty exposes the shared party plumbing to the ttp package, which
// lives outside core but participates in the protocol with the same
// identity, guard, archive and instrumentation machinery.
type TTPParty struct {
	p *party
}

// NewTTPParty constructs the plumbing for a TTP server from functional
// options.
func NewTTPParty(opts ...Option) (*TTPParty, error) {
	return NewTTPPartyFromOptions(buildOptions(opts))
}

// NewTTPPartyFromOptions constructs the plumbing for a TTP server from
// a legacy Options struct.
//
// Deprecated: use NewTTPParty with functional options.
func NewTTPPartyFromOptions(o Options) (*TTPParty, error) {
	p, err := newParty(o)
	if err != nil {
		return nil, err
	}
	return &TTPParty{p: p}, nil
}

// ID returns the TTP's party name.
func (t *TTPParty) ID() string { return t.p.ID() }

// Archive exposes the evidence store.
func (t *TTPParty) Archive() *evidence.Store { return t.p.Archive() }

// Counters exposes the metrics counters.
func (t *TTPParty) Counters() *metrics.Counters { return t.p.Counters() }

// PeerKey resolves and authenticates a party's public key.
func (t *TTPParty) PeerKey(name string) (*rsa.PublicKey, error) { return t.p.peerKey(name) }

// NewHeader assembles an outbound header with the TTP as sender.
func (t *TTPParty) NewHeader(kind evidence.Kind, txn, recipient, ttp string, seq uint64) *evidence.Header {
	return t.p.newHeader(kind, txn, recipient, ttp, seq)
}

// NextSeq issues the next outbound sequence number for a transaction.
func (t *TTPParty) NextSeq(txn string) uint64 { return t.p.nextSeq(txn) }

// BumpSeqTo advances the outbound counter past an observed inbound
// sequence.
func (t *TTPParty) BumpSeqTo(txn string, seen uint64) uint64 { return t.p.bumpSeqTo(txn, seen) }

// BuildMessage signs and seals evidence for a header.
func (t *TTPParty) BuildMessage(h *evidence.Header, payload []byte, recipientKey *rsa.PublicKey) (*Message, *evidence.Evidence, error) {
	return t.p.buildMessage(h, payload, recipientKey)
}

// CheckInbound runs the generic inbound validation sequence.
func (t *TTPParty) CheckInbound(m *Message) (*evidence.Header, *evidence.Evidence, error) {
	return t.p.checkInbound(m)
}

// RecvTimeout waits the party's response timeout for one message on
// conn, returning early with ErrCancelled when ctx terminates.
func (t *TTPParty) RecvTimeout(ctx context.Context, conn transport.Conn) ([]byte, error) {
	return t.p.pumpFor(conn).recv(ctx, t.p.clk, t.p.timeout)
}

// ResponseTimeout reports the configured peer-response deadline.
func (t *TTPParty) ResponseTimeout() time.Duration { return t.p.timeout }
