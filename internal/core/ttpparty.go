package core

import (
	"context"
	"crypto/rsa"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// TTPParty exposes the shared party plumbing to the ttp package, which
// lives outside core but participates in the protocol with the same
// identity, guard, archive and instrumentation machinery.
type TTPParty struct {
	p *party
}

// NewTTPParty constructs the plumbing for a TTP server from functional
// options.
func NewTTPParty(opts ...Option) (*TTPParty, error) {
	return NewTTPPartyFromOptions(buildOptions(opts))
}

// NewTTPPartyFromOptions constructs the plumbing for a TTP server from
// a legacy Options struct.
//
// Deprecated: use NewTTPParty with functional options.
func NewTTPPartyFromOptions(o Options) (*TTPParty, error) {
	p, err := newParty(o)
	if err != nil {
		return nil, err
	}
	return &TTPParty{p: p}, nil
}

// ID returns the TTP's party name.
func (t *TTPParty) ID() string { return t.p.ID() }

// Archive exposes the evidence store.
func (t *TTPParty) Archive() *evidence.Store { return t.p.Archive() }

// Counters exposes the metrics counters.
func (t *TTPParty) Counters() *metrics.Counters { return t.p.Counters() }

// PeerPublicKey resolves and authenticates a party's public key as a
// scheme handle (cached per certificate).
func (t *TTPParty) PeerPublicKey(name string) (cryptoutil.PublicKey, error) {
	return t.p.peerKey(name)
}

// PeerKey resolves and authenticates a party's public key.
//
// Deprecated: use PeerPublicKey — this fails for non-RSA peers.
func (t *TTPParty) PeerKey(name string) (*rsa.PublicKey, error) {
	key, err := t.p.peerKey(name)
	if err != nil {
		return nil, err
	}
	if pub, ok := cryptoutil.RSAPublicKeyOf(key); ok {
		return pub, nil
	}
	return nil, fmt.Errorf("%w: %q uses %s, not RSA", ErrUnknownIdentity, name, key.Scheme())
}

// NewHeader assembles an outbound header with the TTP as sender.
func (t *TTPParty) NewHeader(kind evidence.Kind, txn, recipient, ttp string, seq uint64) *evidence.Header {
	return t.p.newHeader(kind, txn, recipient, ttp, seq)
}

// NextSeq issues the next outbound sequence number for a transaction.
func (t *TTPParty) NextSeq(txn string) uint64 { return t.p.nextSeq(txn) }

// BumpSeqTo advances the outbound counter past an observed inbound
// sequence.
func (t *TTPParty) BumpSeqTo(txn string, seen uint64) uint64 { return t.p.bumpSeqTo(txn, seen) }

// BuildMessageFor signs and seals evidence for a header, addressed to
// a recipient key handle.
func (t *TTPParty) BuildMessageFor(h *evidence.Header, payload []byte, recipientKey cryptoutil.PublicKey) (*Message, *evidence.Evidence, error) {
	return t.p.buildMessage(h, payload, recipientKey)
}

// BuildMessage signs and seals evidence for a header.
//
// Deprecated: use BuildMessageFor with a scheme handle.
func (t *TTPParty) BuildMessage(h *evidence.Header, payload []byte, recipientKey *rsa.PublicKey) (*Message, *evidence.Evidence, error) {
	return t.p.buildMessage(h, payload, cryptoutil.NewRSAPublicKey(recipientKey))
}

// CheckInbound runs the generic inbound validation sequence.
func (t *TTPParty) CheckInbound(m *Message) (*evidence.Header, *evidence.Evidence, error) {
	return t.p.checkInbound(m)
}

// VerifyCache exposes the party's verification cache so the ttp
// package can route its own explicit evidence checks (the resolve
// claim verification) through the same memo the inbound path uses.
func (t *TTPParty) VerifyCache() *evidence.VerifyCache { return t.p.vcache }

// RecvTimeout waits the party's response timeout for one message on
// conn, returning early with ErrCancelled when ctx terminates.
func (t *TTPParty) RecvTimeout(ctx context.Context, conn transport.Conn) ([]byte, error) {
	return t.p.pumpFor(conn).recv(ctx, t.p.clk, t.p.timeout)
}

// ResponseTimeout reports the configured peer-response deadline.
func (t *TTPParty) ResponseTimeout() time.Duration { return t.p.timeout }

// PutEvidence journals (when a WAL is attached) and archives an
// evidence item — the TTP's durable record of what passed through it.
func (t *TTPParty) PutEvidence(txn string, role evidence.Role, ev *evidence.Evidence) error {
	return t.p.putEvidence(txn, role, ev)
}

// JournalResolveOpen durably records that a resolve procedure was
// accepted for txn, before the peer query goes out.
func (t *TTPParty) JournalResolveOpen(txn, note string) error {
	return t.p.journalAppend(&journalRecord{Kind: jrResolve, Txn: txn, Aux: jrResolveOpen, Note: note})
}

// JournalResolveClosed durably records the resolve outcome, before the
// statement is sent to the claimant.
func (t *TTPParty) JournalResolveClosed(txn, note string) error {
	return t.p.journalAppend(&journalRecord{Kind: jrResolve, Txn: txn, Aux: jrResolveClosed, Note: note})
}

// Recover replays the TTP's journal after a restart: the evidence
// archive, replay guard and sequence counters are rebuilt, and resolve
// procedures that were opened but never closed are listed in
// OpenResolves — the claimant never got its statement, so it will
// retry, and the journal guarantees the retry sees the archived
// evidence from the first attempt.
func (t *TTPParty) Recover(ctx context.Context) (*RecoveryReport, error) {
	open := make(map[string]bool)
	rep, err := t.p.recoverBase(ctx, func(r *journalRecord) error {
		if r.Kind == jrResolve {
			switch r.Aux {
			case jrResolveOpen:
				open[r.Txn] = true
			case jrResolveClosed:
				delete(open, r.Txn)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The TTP holds no sessions of its own: NeedsResolve (derived from
	// tracker state the TTP never writes) is meaningless here.
	rep.NeedsResolve = nil
	for _, txn := range rep.Transactions {
		if open[txn] {
			rep.OpenResolves = append(rep.OpenResolves, txn)
		}
	}
	return rep, nil
}
