package evidence

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cryptoutil"
)

var (
	alice = cryptoutil.InsecureTestKey(30)
	bob   = cryptoutil.InsecureTestKey(31)
	eve   = cryptoutil.InsecureTestKey(32)
)

func testHeader(data []byte) *Header {
	h := &Header{
		Kind:        KindNRO,
		TxnID:       "txn-0001",
		Seq:         1,
		Nonce:       cryptoutil.MustNonce(),
		SenderID:    "alice",
		RecipientID: "bob",
		TTPID:       "ttp",
		Timestamp:   time.Date(2010, 9, 13, 10, 0, 0, 0, time.UTC),
		TimeLimit:   time.Date(2010, 9, 13, 10, 5, 0, 0, time.UTC),
		ObjectKey:   "finance/q3.xls",
	}
	h.SetDigests(data)
	return h
}

func TestHeaderEncodeDecodeRoundTrip(t *testing.T) {
	h := testHeader([]byte("payload"))
	got, err := DecodeHeader(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), h.Encode()) {
		t.Fatal("header round trip is not canonical")
	}
	if got.Kind != KindNRO || got.TxnID != h.TxnID || got.Seq != h.Seq ||
		got.SenderID != "alice" || got.RecipientID != "bob" || got.TTPID != "ttp" ||
		!got.Timestamp.Equal(h.Timestamp) || !got.TimeLimit.Equal(h.TimeLimit) ||
		got.ObjectKey != h.ObjectKey || got.ObjectLen != 7 ||
		!got.DataMD5.Equal(h.DataMD5) || !got.DataSHA256.Equal(h.DataSHA256) {
		t.Fatalf("decoded header differs: %+v", got)
	}
}

func TestDecodeHeaderRejectsGarbage(t *testing.T) {
	if _, err := DecodeHeader([]byte("junk")); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	h := testHeader([]byte("d"))
	enc := h.Encode()
	if _, err := DecodeHeader(enc[:len(enc)-3]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated: %v", err)
	}
	if _, err := DecodeHeader(append(enc, 0)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing: %v", err)
	}
}

func TestBuildOpenRoundTrip(t *testing.T) {
	data := []byte("the stored object")
	h := testHeader(data)
	own, sealed, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(bob, alice.Public(), sealed, h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.DataSig, own.DataSig) || !bytes.Equal(got.HeaderSig, own.HeaderSig) {
		t.Fatal("opened evidence differs from built evidence")
	}
	if err := got.VerifyAgainstData(alice.Public(), data); err != nil {
		t.Fatal(err)
	}
}

func TestOpenWrongRecipient(t *testing.T) {
	h := testHeader([]byte("d"))
	_, sealed, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	// Eve intercepts but cannot open: confidentiality of evidence.
	if _, err := Open(eve, alice.Public(), sealed, h); err == nil {
		t.Fatal("evidence opened by non-recipient")
	}
}

func TestOpenWrongSenderKey(t *testing.T) {
	h := testHeader([]byte("d"))
	_, sealed, err := Build(eve, bob.Public(), h) // eve impersonates alice
	if err != nil {
		t.Fatal(err)
	}
	_, err = Open(bob, alice.Public(), sealed, h)
	if !errors.Is(err, ErrBadHeaderSig) && !errors.Is(err, ErrBadDataSig) {
		t.Fatalf("err = %v, want signature failure", err)
	}
}

func TestOpenHeaderMismatch(t *testing.T) {
	h := testHeader([]byte("d"))
	_, sealed, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	// The plaintext header claims a different object: the sealed copy
	// must win and the mismatch be detected.
	tampered := *h
	tampered.ObjectKey = "finance/other.xls"
	if _, err := Open(bob, alice.Public(), sealed, &tampered); !errors.Is(err, ErrHeaderMismatch) {
		t.Fatalf("err = %v, want ErrHeaderMismatch", err)
	}
}

func TestOpenWithoutPlainHeader(t *testing.T) {
	h := testHeader([]byte("d"))
	_, sealed, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bob, alice.Public(), sealed, nil); err != nil {
		t.Fatalf("Open with nil plain header: %v", err)
	}
}

func TestVerifyAgainstDataDetectsTampering(t *testing.T) {
	data := []byte("ledger total = 1000")
	h := testHeader(data)
	ev, _, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte("ledger total = 9999")
	if err := ev.VerifyAgainstData(alice.Public(), tampered); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("err = %v, want ErrDigestMismatch", err)
	}
}

func TestEvidenceBitFlipsRejected(t *testing.T) {
	data := []byte("d")
	h := testHeader(data)
	ev, _, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in each signature.
	badData := &Evidence{Header: h, DataSig: append([]byte(nil), ev.DataSig...), HeaderSig: ev.HeaderSig}
	badData.DataSig[0] ^= 1
	if err := badData.Verify(alice.Public()); !errors.Is(err, ErrBadDataSig) {
		t.Fatalf("flipped DataSig: %v", err)
	}
	badHdr := &Evidence{Header: h, DataSig: ev.DataSig, HeaderSig: append([]byte(nil), ev.HeaderSig...)}
	badHdr.HeaderSig[0] ^= 1
	if err := badHdr.Verify(alice.Public()); !errors.Is(err, ErrBadHeaderSig) {
		t.Fatalf("flipped HeaderSig: %v", err)
	}
	// Mutate a header field: the header signature must break.
	mutated := *h
	mutated.Seq++
	bad := &Evidence{Header: &mutated, DataSig: ev.DataSig, HeaderSig: ev.HeaderSig}
	if err := bad.Verify(alice.Public()); !errors.Is(err, ErrBadHeaderSig) {
		t.Fatalf("mutated header: %v", err)
	}
}

func TestEvidencePlainEncodeDecode(t *testing.T) {
	h := testHeader([]byte("archive me"))
	ev, _, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := got.VerifyAgainstData(alice.Public(), []byte("archive me")); err != nil {
		t.Fatalf("decoded evidence fails verification: %v", err)
	}
	if _, err := Decode([]byte("garbage")); !errors.Is(err, ErrMalformed) {
		t.Fatalf("garbage: %v", err)
	}
}

func TestSealedEvidenceTamperRejected(t *testing.T) {
	h := testHeader([]byte("d"))
	_, sealed, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	sealed[len(sealed)/2] ^= 1
	if _, err := Open(bob, alice.Public(), sealed, h); err == nil {
		t.Fatal("tampered sealed evidence accepted")
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := KindNRO; k <= KindError; k++ {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

func TestMatchesDataQuick(t *testing.T) {
	f := func(data, other []byte) bool {
		h := testHeader(data)
		if !h.MatchesData(data) {
			return false
		}
		if bytes.Equal(data, other) {
			return h.MatchesData(other)
		}
		return !h.MatchesData(other)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
