package evidence

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/cryptoutil"
)

func buildKind(t *testing.T, kind Kind, txn string) *Evidence {
	t.Helper()
	h := testHeader([]byte("data"))
	h.Kind = kind
	h.TxnID = txn
	ev, _, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	ev := buildKind(t, KindNRO, "t1")
	s.Put("t1", RoleOwn, ev)

	got, err := s.Get("t1", RoleOwn)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.TxnID != "t1" {
		t.Fatalf("got txn %s", got.Header.TxnID)
	}
	if _, err := s.Get("t1", RolePeer); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("missing role: %v", err)
	}
	if _, err := s.Get("ghost", RoleOwn); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("missing txn: %v", err)
	}
}

func TestStoreLatestWins(t *testing.T) {
	s := NewStore()
	first := buildKind(t, KindNRO, "t1")
	second := buildKind(t, KindNRR, "t1")
	s.Put("t1", RolePeer, first)
	s.Put("t1", RolePeer, second)
	got, err := s.Get("t1", RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Kind != KindNRR {
		t.Fatalf("latest = %v, want NRR", got.Header.Kind)
	}
	if all := s.All("t1", RolePeer); len(all) != 2 || all[0].Header.Kind != KindNRO {
		t.Fatalf("All = %d items", len(all))
	}
}

func TestStoreByKind(t *testing.T) {
	s := NewStore()
	s.Put("t1", RolePeer, buildKind(t, KindNRO, "t1"))
	s.Put("t1", RolePeer, buildKind(t, KindAbortAccept, "t1"))

	got, err := s.ByKind("t1", RolePeer, KindNRO)
	if err != nil || got.Header.Kind != KindNRO {
		t.Fatalf("ByKind NRO: %v %v", got, err)
	}
	if _, err := s.ByKind("t1", RolePeer, KindNRR); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("absent kind: %v", err)
	}
}

func TestStoreTransactions(t *testing.T) {
	s := NewStore()
	for _, txn := range []string{"t-c", "t-a", "t-b"} {
		s.Put(txn, RoleOwn, buildKind(t, KindNRO, txn))
	}
	got := s.Transactions()
	want := []string{"t-a", "t-b", "t-c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Transactions = %v", got)
		}
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	ev := buildKind(t, KindNRO, "t1")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Put("t1", RoleOwn, ev)
				s.Get("t1", RoleOwn)
				s.Transactions()
			}
		}()
	}
	wg.Wait()
	if n := len(s.All("t1", RoleOwn)); n != 800 {
		t.Fatalf("stored %d items, want 800", n)
	}
}

func TestRoleString(t *testing.T) {
	if RoleOwn.String() == RolePeer.String() {
		t.Fatal("roles stringify identically")
	}
	_ = cryptoutil.MustNonce() // keep import used consistently with helpers
}
