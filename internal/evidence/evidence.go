// Package evidence implements the paper's non-repudiation evidence
// (§4.1). Each transmission attaches evidence — for the originator
// (Alice) the Non-Repudiation of Origin (NRO), for the recipient (Bob)
// the Non-Repudiation of Receipt (NRR):
//
//	evidence = Encrypt_pk(recipient){ Sign(HashOfData), Sign(Plaintext) }
//
// The plaintext header carries, per the paper: a flag labeling the
// process, the IDs of sender, recipient and TTP, a random number and a
// strictly increasing sequence number (replay protection, §5.4), a
// time limit (timeliness, §5.5), and the hash of the data. The sender
// signs with its private key, so it "makes it impossible for the
// sender to deny his/her activity"; encrypting under the recipient's
// public key keeps the evidence confidential in transit.
package evidence

import (
	"bytes"
	"crypto/rsa"
	"errors"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// Kind is the header flag labeling which protocol step a message and
// its evidence belong to.
type Kind uint8

// Protocol message kinds. NRO/NRR are the §4.1 evidence roles; the
// remaining kinds serve the Abort (§4.2), Resolve (§4.3), settlement
// and storage-dwell audit sub-protocols.
const (
	KindNRO Kind = iota + 1
	KindNRR
	KindDownloadRequest
	KindDownloadResponse
	KindAbortRequest
	KindAbortAccept
	KindAbortReject
	KindResolveRequest
	KindResolveResponse
	KindError
	KindSettleRequest
	KindSettleResponse
	KindAuditChallenge
	KindAuditResponse
)

// String names the kind for transcripts.
func (k Kind) String() string {
	switch k {
	case KindNRO:
		return "NRO"
	case KindNRR:
		return "NRR"
	case KindDownloadRequest:
		return "download-request"
	case KindDownloadResponse:
		return "download-response"
	case KindAbortRequest:
		return "abort-request"
	case KindAbortAccept:
		return "abort-accept"
	case KindAbortReject:
		return "abort-reject"
	case KindResolveRequest:
		return "resolve-request"
	case KindResolveResponse:
		return "resolve-response"
	case KindError:
		return "error"
	case KindSettleRequest:
		return "settle-request"
	case KindSettleResponse:
		return "settle-response"
	case KindAuditChallenge:
		return "audit-challenge"
	case KindAuditResponse:
		return "audit-response"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Validation errors.
var (
	ErrBadHeaderSig   = errors.New("evidence: header signature invalid")
	ErrBadDataSig     = errors.New("evidence: data-hash signature invalid")
	ErrDigestMismatch = errors.New("evidence: data does not match header digests")
	ErrHeaderMismatch = errors.New("evidence: sealed header differs from plaintext header")
	ErrMalformed      = errors.New("evidence: malformed encoding")
)

// Header is the plaintext part of a protocol message; its canonical
// encoding is what Sign(Plaintext) covers.
type Header struct {
	Kind        Kind
	TxnID       string
	Seq         uint64
	Nonce       []byte
	SenderID    string
	RecipientID string
	TTPID       string
	// Timestamp is the sender's send time.
	Timestamp time.Time
	// TimeLimit bounds when the message may be accepted (§5.5); zero
	// means no limit.
	TimeLimit time.Time
	// ObjectKey and ObjectLen describe the stored blob the transaction
	// concerns.
	ObjectKey string
	ObjectLen uint64
	// Note carries sub-protocol annotations: the abort reason, the
	// resolve report of anomalies (§4.3), a TTP statement, or a
	// provider action ("continue", "restart").
	Note string
	// DataMD5 is the paper's digest; DataSHA256 rides alongside (the
	// modern choice, ablated in experiment E10).
	DataMD5    cryptoutil.Digest
	DataSHA256 cryptoutil.Digest
}

// Encode returns the canonical header bytes.
func (h *Header) Encode() []byte {
	e := wire.NewEncoder(128 + len(h.ObjectKey))
	e.String("tpnr-header-v1")
	e.U8(uint8(h.Kind))
	e.String(h.TxnID)
	e.U64(h.Seq)
	e.Bytes32(h.Nonce)
	e.String(h.SenderID)
	e.String(h.RecipientID)
	e.String(h.TTPID)
	e.Time(h.Timestamp)
	e.Time(h.TimeLimit)
	e.String(h.ObjectKey)
	e.U64(h.ObjectLen)
	e.String(h.Note)
	e.U8(uint8(h.DataMD5.Alg))
	e.Bytes32(h.DataMD5.Sum)
	e.U8(uint8(h.DataSHA256.Alg))
	e.Bytes32(h.DataSHA256.Sum)
	return e.Bytes()
}

// DecodeHeader reverses Encode.
func DecodeHeader(b []byte) (*Header, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != "tpnr-header-v1" {
		return nil, fmt.Errorf("%w: bad magic %q", ErrMalformed, magic)
	}
	h := &Header{}
	h.Kind = Kind(d.U8())
	h.TxnID = d.String()
	h.Seq = d.U64()
	h.Nonce = d.Bytes32()
	h.SenderID = d.String()
	h.RecipientID = d.String()
	h.TTPID = d.String()
	h.Timestamp = d.Time()
	h.TimeLimit = d.Time()
	h.ObjectKey = d.String()
	h.ObjectLen = d.U64()
	h.Note = d.String()
	h.DataMD5 = cryptoutil.Digest{Alg: cryptoutil.HashAlg(d.U8()), Sum: d.Bytes32()}
	h.DataSHA256 = cryptoutil.Digest{Alg: cryptoutil.HashAlg(d.U8()), Sum: d.Bytes32()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return h, nil
}

// PeekTxnID extracts just the transaction ID from an encoded header
// without decoding (or copying) the rest — the server's routing path
// needs only this one field to pick a transaction lock. Returns false
// on anything unparseable.
func PeekTxnID(headerBytes []byte) (string, bool) {
	d := wire.NewDecoder(headerBytes)
	if string(d.View32()) != "tpnr-header-v1" {
		return "", false
	}
	d.U8() // kind
	txn := d.String()
	if d.Err() != nil {
		return "", false
	}
	return txn, true
}

// SetDigests computes and installs both data digests and the length.
// The two hash passes run concurrently for large payloads (SumParallel
// degrades to sequential below its threshold or on one core).
func (h *Header) SetDigests(data []byte) {
	ds := cryptoutil.SumParallel(data, cryptoutil.MD5, cryptoutil.SHA256)
	h.DataMD5 = ds[0]
	h.DataSHA256 = ds[1]
	h.ObjectLen = uint64(len(data))
}

// digestBytes is the canonical byte string Sign(HashOfData) covers:
// both digests, tagged.
func (h *Header) digestBytes() []byte {
	e := wire.NewEncoder(80)
	e.String("tpnr-datahash-v1")
	e.U8(uint8(h.DataMD5.Alg))
	e.Bytes32(h.DataMD5.Sum)
	e.U8(uint8(h.DataSHA256.Alg))
	e.Bytes32(h.DataSHA256.Sum)
	return e.Bytes()
}

// MatchesData reports whether data hashes to the header's digests.
func (h *Header) MatchesData(data []byte) bool {
	return cryptoutil.Sum(cryptoutil.MD5, data).Equal(h.DataMD5) &&
		cryptoutil.Sum(cryptoutil.SHA256, data).Equal(h.DataSHA256)
}

// Evidence is the opened (verified or verifiable) evidence content.
type Evidence struct {
	// Header is the plaintext the signatures cover.
	Header *Header
	// DataSig is Sign(HashOfData) under the sender's key.
	DataSig []byte
	// HeaderSig is Sign(Plaintext) under the sender's key.
	HeaderSig []byte
}

// BuildFor constructs evidence for header under the sender's signer
// and seals it for the recipient's public key, whatever scheme either
// uses. Returns the evidence (the sender's own copy) and the sealed
// ciphertext to transmit.
//
// The header must already carry the data digests (SetDigests).
func BuildFor(sender cryptoutil.Signer, recipient cryptoutil.PublicKey, h *Header) (*Evidence, []byte, error) {
	if sender == nil {
		return nil, nil, fmt.Errorf("evidence: nil sender signer")
	}
	dataSig, err := sender.Sign(h.digestBytes())
	if err != nil {
		return nil, nil, fmt.Errorf("evidence: signing data hash: %w", err)
	}
	headerBytes := h.Encode()
	headerSig, err := sender.Sign(headerBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("evidence: signing header: %w", err)
	}
	ev := &Evidence{Header: h, DataSig: dataSig, HeaderSig: headerSig}

	e := wire.NewEncoder(len(headerBytes) + len(dataSig) + len(headerSig) + 32)
	e.String("tpnr-evidence-v1")
	e.Bytes32(headerBytes)
	e.Bytes32(dataSig)
	e.Bytes32(headerSig)
	sealed, err := recipient.Seal(e.Bytes())
	if err != nil {
		return nil, nil, fmt.Errorf("evidence: sealing: %w", err)
	}
	return ev, sealed, nil
}

// Build is BuildFor restricted to RSA recipients.
//
// Deprecated: use BuildFor with scheme handles.
func Build(sender cryptoutil.KeyPair, recipient *rsa.PublicKey, h *Header) (*Evidence, []byte, error) {
	return BuildFor(sender.Signer(), cryptoutil.NewRSAPublicKey(recipient), h)
}

// OpenWith decrypts sealed evidence with the recipient's signer and
// verifies both signatures under the sender's public key. If
// plainHeader is non-nil, the sealed header must byte-equal it ("The
// peers should check the consistency between the hash of the plaintext
// and the plaintext at first", §4.1).
func OpenWith(recipient cryptoutil.Signer, senderPub cryptoutil.PublicKey, sealed []byte, plainHeader *Header) (*Evidence, error) {
	ev, err := open(recipient, sealed, plainHeader)
	if err != nil {
		return nil, err
	}
	if err := ev.VerifyWith(senderPub); err != nil {
		return nil, err
	}
	return ev, nil
}

// Open is OpenWith restricted to RSA senders.
//
// Deprecated: use OpenWith with scheme handles.
func Open(recipient cryptoutil.KeyPair, senderPub *rsa.PublicKey, sealed []byte, plainHeader *Header) (*Evidence, error) {
	return OpenWith(recipient.Signer(), cryptoutil.NewRSAPublicKey(senderPub), sealed, plainHeader)
}

// OpenNoVerify decrypts and decodes sealed evidence WITHOUT checking
// its signatures. The caller must verify (VerifyWith or VerifyBatch)
// before trusting the result — the server's batch-drain path uses this
// to decrypt a drained round first, then verifies every signature in
// one batched call.
func OpenNoVerify(recipient cryptoutil.Signer, sealed []byte, plainHeader *Header) (*Evidence, error) {
	return open(recipient, sealed, plainHeader)
}

// open decrypts and decodes sealed evidence without verifying the
// signatures; OpenWith and OpenCached layer their verification on top.
func open(recipient cryptoutil.Signer, sealed []byte, plainHeader *Header) (*Evidence, error) {
	if recipient == nil {
		return nil, fmt.Errorf("evidence: nil recipient signer")
	}
	plain, err := recipient.Unseal(sealed)
	if err != nil {
		return nil, fmt.Errorf("evidence: unsealing: %w", err)
	}
	d := wire.NewDecoder(plain)
	if magic := d.String(); magic != "tpnr-evidence-v1" {
		return nil, fmt.Errorf("%w: bad magic %q", ErrMalformed, magic)
	}
	headerBytes := d.Bytes32()
	dataSig := d.Bytes32()
	headerSig := d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	h, err := DecodeHeader(headerBytes)
	if err != nil {
		return nil, err
	}
	if plainHeader != nil && !bytes.Equal(plainHeader.Encode(), headerBytes) {
		return nil, ErrHeaderMismatch
	}
	return &Evidence{Header: h, DataSig: dataSig, HeaderSig: headerSig}, nil
}

// VerifyWith checks both signatures under the claimed sender's public
// key handle, whatever its scheme.
func (ev *Evidence) VerifyWith(senderPub cryptoutil.PublicKey) error {
	if senderPub == nil {
		return fmt.Errorf("%w: nil sender public key", ErrBadHeaderSig)
	}
	if err := senderPub.Verify(ev.Header.Encode(), ev.HeaderSig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeaderSig, err)
	}
	if err := senderPub.Verify(ev.Header.digestBytes(), ev.DataSig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadDataSig, err)
	}
	return nil
}

// Verify checks both signatures under the claimed sender's public key.
//
// Deprecated: use VerifyWith with a scheme handle.
func (ev *Evidence) Verify(senderPub *rsa.PublicKey) error {
	return ev.VerifyWith(cryptoutil.NewRSAPublicKey(senderPub))
}

// VerifyAgainstDataWith additionally checks that data matches the
// header's digests — the full check a downloader runs before accepting
// content.
func (ev *Evidence) VerifyAgainstDataWith(senderPub cryptoutil.PublicKey, data []byte) error {
	if err := ev.VerifyWith(senderPub); err != nil {
		return err
	}
	if !ev.Header.MatchesData(data) {
		return fmt.Errorf("%w: object %q", ErrDigestMismatch, ev.Header.ObjectKey)
	}
	return nil
}

// VerifyAgainstData is VerifyAgainstDataWith for RSA senders.
//
// Deprecated: use VerifyAgainstDataWith with a scheme handle.
func (ev *Evidence) VerifyAgainstData(senderPub *rsa.PublicKey, data []byte) error {
	return ev.VerifyAgainstDataWith(cryptoutil.NewRSAPublicKey(senderPub), data)
}

// Encode serializes opened evidence (for storage and for submission to
// the arbitrator — at that point confidentiality no longer applies,
// only the signatures matter).
func (ev *Evidence) Encode() []byte {
	e := wire.NewEncoder(256)
	e.String("tpnr-evidence-plain-v1")
	e.Bytes32(ev.Header.Encode())
	e.Bytes32(ev.DataSig)
	e.Bytes32(ev.HeaderSig)
	return e.Bytes()
}

// Decode reverses Encode without verifying signatures (the arbitrator
// verifies explicitly).
func Decode(b []byte) (*Evidence, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != "tpnr-evidence-plain-v1" {
		return nil, fmt.Errorf("%w: bad magic %q", ErrMalformed, magic)
	}
	headerBytes := d.Bytes32()
	dataSig := d.Bytes32()
	headerSig := d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	h, err := DecodeHeader(headerBytes)
	if err != nil {
		return nil, err
	}
	return &Evidence{Header: h, DataSig: dataSig, HeaderSig: headerSig}, nil
}
