package evidence

import (
	"fmt"
	"sync"
	"testing"
)

func TestVerifyCachedHitsOnRepeat(t *testing.T) {
	h := testHeader([]byte("cached object"))
	ev, _, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	c := NewVerifyCache(64)
	for i := 0; i < 5; i++ {
		if err := ev.VerifyCached(alice.Public(), c); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	hits, misses := c.Stats()
	// Two signatures per evidence: first round misses both, the other
	// four rounds hit both.
	if misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
	if hits != 8 {
		t.Fatalf("hits = %d, want 8", hits)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("Len() = %d, want 2", n)
	}
}

func TestVerifyCachedNilCache(t *testing.T) {
	h := testHeader([]byte("d"))
	ev, _, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.VerifyCached(alice.Public(), nil); err != nil {
		t.Fatalf("nil cache: %v", err)
	}
}

// TestVerifyCacheNeverCachesFailures checks the security property: a
// failed verification leaves no trace, so repeat failures re-verify
// every time and the bounded LRU cannot be flushed by garbage.
func TestVerifyCacheNeverCachesFailures(t *testing.T) {
	h := testHeader([]byte("d"))
	ev, _, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	c := NewVerifyCache(64)
	// Wrong sender key: both attempts must fail and cache nothing.
	for i := 0; i < 2; i++ {
		if err := ev.VerifyCached(eve.Public(), c); err == nil {
			t.Fatal("verified under the wrong key")
		}
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("failed verifications cached %d entries", n)
	}
	hits, _ := c.Stats()
	if hits != 0 {
		t.Fatalf("failed verifications produced %d hits", hits)
	}
	// The right key must still verify (no poisoned negative entry).
	if err := ev.VerifyCached(alice.Public(), c); err != nil {
		t.Fatalf("correct key after failures: %v", err)
	}
}

func TestVerifyCacheBounded(t *testing.T) {
	const capacity = 32
	c := NewVerifyCache(capacity)
	for i := 0; i < 3*capacity; i++ {
		h := testHeader([]byte(fmt.Sprintf("object-%d", i)))
		ev, _, err := Build(alice, bob.Public(), h)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.VerifyCached(alice.Public(), c); err != nil {
			t.Fatal(err)
		}
	}
	// Sharding rounds capacity up to shard granularity; the bound to
	// enforce is "capacity-ish, far below everything inserted".
	if n := c.Len(); n > 2*capacity {
		t.Fatalf("Len() = %d after %d inserts, cap %d: LRU not evicting", n, 6*capacity, capacity)
	}
}

// TestVerifyCacheConcurrent is the race test from the issue: 32
// goroutines hammering a shared cache with a mix of repeat evidence
// (hits), distinct evidence (inserts + eviction), and bad keys
// (failures that must not cache), under -race.
func TestVerifyCacheConcurrent(t *testing.T) {
	const verifiers = 32
	shared := make([]*Evidence, 4)
	for i := range shared {
		h := testHeader([]byte(fmt.Sprintf("shared-%d", i)))
		ev, _, err := Build(alice, bob.Public(), h)
		if err != nil {
			t.Fatal(err)
		}
		shared[i] = ev
	}
	c := NewVerifyCache(16) // small: force concurrent eviction too
	var wg sync.WaitGroup
	for g := 0; g < verifiers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ev := shared[(g+i)%len(shared)]
				if err := ev.VerifyCached(alice.Public(), c); err != nil {
					t.Errorf("g%d round %d: %v", g, i, err)
					return
				}
				if err := ev.VerifyCached(eve.Public(), c); err == nil {
					t.Errorf("g%d round %d: wrong key verified", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits == 0 {
		t.Fatal("no cache hits under concurrent repeat verification")
	}
	if misses == 0 {
		t.Fatal("no misses recorded")
	}
}

func TestOpenCachedMatchesOpen(t *testing.T) {
	data := []byte("the stored object")
	h := testHeader(data)
	_, sealed, err := Build(alice, bob.Public(), h)
	if err != nil {
		t.Fatal(err)
	}
	c := NewVerifyCache(64)
	for i := 0; i < 3; i++ {
		ev, err := OpenCached(bob, alice.Public(), sealed, h, c)
		if err != nil {
			t.Fatalf("OpenCached round %d: %v", i, err)
		}
		if err := ev.VerifyAgainstData(alice.Public(), data); err != nil {
			t.Fatal(err)
		}
	}
	hits, _ := c.Stats()
	if hits == 0 {
		t.Fatal("repeat OpenCached produced no cache hits")
	}
	// Wrong sender key must still fail through the cached path.
	if _, err := OpenCached(bob, eve.Public(), sealed, h, c); err == nil {
		t.Fatal("OpenCached verified under the wrong key")
	}
	// Nil cache must behave exactly like Open.
	if _, err := OpenCached(bob, alice.Public(), sealed, h, nil); err != nil {
		t.Fatalf("OpenCached nil cache: %v", err)
	}
}
