package evidence

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/merkle"
	"repro/internal/wire"
)

// Aggregated session receipts.
//
// The paper issues one NRR per upload, so a session of K uploads costs
// the provider K signatures and the client K verifications. An
// aggregated receipt settles the whole session with ONE signature: the
// provider builds a Merkle tree over the K evidence digests and signs
// the root. Any single upload's receipt is then (receipt, inclusion
// proof, evidence) — verifiable leaf-by-leaf by the arbitrator without
// the other K-1 items, and the provider cannot later repudiate any
// leaf under the signed root.

// Aggregate receipt errors.
var (
	ErrBadReceiptSig = errors.New("evidence: aggregate receipt signature invalid")
	ErrBadLeafProof  = errors.New("evidence: aggregate receipt leaf proof invalid")
)

// LeafDigest is the Merkle leaf for one evidence item: the SHA-256 of
// its canonical plain encoding. Both sides hold byte-identical encoded
// evidence (the sender its own copy, the recipient the opened one), so
// both derive the same leaf independently.
func LeafDigest(ev *Evidence) cryptoutil.Digest {
	return cryptoutil.Sum(cryptoutil.SHA256, ev.Encode())
}

// AggregateReceipt is one signature settling a session of K uploads.
type AggregateReceipt struct {
	// SessionID names the settled session (the client proposes it).
	SessionID string
	// SignerID is the issuing party (the provider).
	SignerID string
	// TxnIDs lists the settled transactions in leaf order: leaf i of
	// the tree is the evidence of TxnIDs[i].
	TxnIDs []string
	// Root is the Merkle root over the K evidence leaf digests.
	Root cryptoutil.Digest
	// Timestamp is the settlement time.
	Timestamp time.Time
	// Nonce prevents replaying a settlement into another session.
	Nonce []byte
	// Sig signs CanonicalBytes under the issuer's key.
	Sig []byte
}

// CanonicalBytes is the byte string Sig covers.
func (r *AggregateReceipt) CanonicalBytes() []byte {
	e := wire.NewEncoder(128 + 24*len(r.TxnIDs))
	e.String("tpnr-agg-receipt-v1")
	e.String(r.SessionID)
	e.String(r.SignerID)
	e.U32(uint32(len(r.TxnIDs)))
	for _, t := range r.TxnIDs {
		e.String(t)
	}
	e.U8(uint8(r.Root.Alg))
	e.Bytes32(r.Root.Sum)
	e.Time(r.Timestamp)
	e.Bytes32(r.Nonce)
	return e.Bytes()
}

// BuildAggregateReceipt signs one receipt over the session's evidence
// leaves (LeafDigest of each settled item, in txn order) and returns
// it with the tree, from which the caller extracts per-leaf inclusion
// proofs (Tree.Prove).
func BuildAggregateReceipt(signer cryptoutil.Signer, sessionID, signerID string, txnIDs []string, leaves []cryptoutil.Digest, now time.Time) (*AggregateReceipt, *merkle.Tree, error) {
	if signer == nil {
		return nil, nil, fmt.Errorf("evidence: nil receipt signer")
	}
	if len(txnIDs) != len(leaves) || len(leaves) == 0 {
		return nil, nil, fmt.Errorf("evidence: %d txn ids for %d leaves", len(txnIDs), len(leaves))
	}
	tree, err := merkle.FromLeaves(leaves)
	if err != nil {
		return nil, nil, fmt.Errorf("evidence: building receipt tree: %w", err)
	}
	r := &AggregateReceipt{
		SessionID: sessionID,
		SignerID:  signerID,
		TxnIDs:    append([]string(nil), txnIDs...),
		Root:      tree.Root(),
		Timestamp: now,
		Nonce:     cryptoutil.MustNonce(),
	}
	sig, err := signer.Sign(r.CanonicalBytes())
	if err != nil {
		return nil, nil, fmt.Errorf("evidence: signing aggregate receipt: %w", err)
	}
	r.Sig = sig
	return r, tree, nil
}

// VerifySig checks the receipt signature under the issuer's key.
func (r *AggregateReceipt) VerifySig(signerPub cryptoutil.PublicKey) error {
	if signerPub == nil {
		return fmt.Errorf("%w: nil signer key", ErrBadReceiptSig)
	}
	if err := signerPub.Verify(r.CanonicalBytes(), r.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadReceiptSig, err)
	}
	return nil
}

// VerifyLeaf checks that ev is covered by this receipt: its leaf
// digest must prove into the signed root at the proof's index, and
// that index must name the evidence's transaction. Callers verify the
// receipt signature (VerifySig) and the evidence signatures
// (VerifyWith) separately — this method binds the two together.
func (r *AggregateReceipt) VerifyLeaf(ev *Evidence, proof *merkle.Proof) error {
	if ev == nil || proof == nil {
		return fmt.Errorf("%w: missing evidence or proof", ErrBadLeafProof)
	}
	if proof.Index < 0 || proof.Index >= len(r.TxnIDs) {
		return fmt.Errorf("%w: proof index %d outside %d settled txns", ErrBadLeafProof, proof.Index, len(r.TxnIDs))
	}
	if got, want := ev.Header.TxnID, r.TxnIDs[proof.Index]; got != want {
		return fmt.Errorf("%w: leaf %d settles txn %q, evidence is for %q", ErrBadLeafProof, proof.Index, want, got)
	}
	if proof.LeafCount != len(r.TxnIDs) {
		return fmt.Errorf("%w: proof built for %d leaves, receipt settles %d", ErrBadLeafProof, proof.LeafCount, len(r.TxnIDs))
	}
	if err := proof.VerifyLeaf(r.Root, LeafDigest(ev)); err != nil {
		return fmt.Errorf("%w: %v", ErrBadLeafProof, err)
	}
	return nil
}

// Encode serializes the receipt (canonical bytes plus signature).
func (r *AggregateReceipt) Encode() []byte {
	canon := r.CanonicalBytes()
	e := wire.NewEncoder(len(canon) + len(r.Sig) + 16)
	e.String("tpnr-agg-receipt-signed-v1")
	e.Bytes32(canon)
	e.Bytes32(r.Sig)
	return e.Bytes()
}

// DecodeAggregateReceipt reverses Encode without verifying.
func DecodeAggregateReceipt(b []byte) (*AggregateReceipt, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != "tpnr-agg-receipt-signed-v1" {
		return nil, fmt.Errorf("%w: bad receipt magic %q", ErrMalformed, magic)
	}
	canon := d.Bytes32()
	sig := d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	cd := wire.NewDecoder(canon)
	if magic := cd.String(); magic != "tpnr-agg-receipt-v1" {
		return nil, fmt.Errorf("%w: bad receipt body magic %q", ErrMalformed, magic)
	}
	r := &AggregateReceipt{Sig: sig}
	r.SessionID = cd.String()
	r.SignerID = cd.String()
	n := cd.U32()
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: absurd txn count %d", ErrMalformed, n)
	}
	r.TxnIDs = make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		r.TxnIDs = append(r.TxnIDs, cd.String())
	}
	r.Root = cryptoutil.Digest{Alg: cryptoutil.HashAlg(cd.U8()), Sum: cd.Bytes32()}
	r.Timestamp = cd.Time()
	r.Nonce = cd.Bytes32()
	if err := cd.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return r, nil
}

// EncodeProof serializes a Merkle inclusion proof for the wire (the
// merkle package itself stays wire-agnostic).
func EncodeProof(p *merkle.Proof) []byte {
	e := wire.NewEncoder(16 + 40*len(p.Steps))
	e.String("tpnr-merkle-proof-v1")
	e.U32(uint32(p.Index))
	e.U32(uint32(p.LeafCount))
	e.U32(uint32(len(p.Steps)))
	for _, s := range p.Steps {
		e.U8(uint8(s.Sibling.Alg))
		e.Bytes32(s.Sibling.Sum)
		e.Bool(s.Left)
	}
	return e.Bytes()
}

// DecodeProof reverses EncodeProof.
func DecodeProof(b []byte) (*merkle.Proof, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != "tpnr-merkle-proof-v1" {
		return nil, fmt.Errorf("%w: bad proof magic %q", ErrMalformed, magic)
	}
	p := &merkle.Proof{}
	p.Index = int(d.U32())
	p.LeafCount = int(d.U32())
	n := d.U32()
	if n > 64 {
		return nil, fmt.Errorf("%w: absurd proof depth %d", ErrMalformed, n)
	}
	p.Steps = make([]merkle.ProofStep, 0, n)
	for i := uint32(0); i < n; i++ {
		st := merkle.ProofStep{}
		st.Sibling = cryptoutil.Digest{Alg: cryptoutil.HashAlg(d.U8()), Sum: d.Bytes32()}
		st.Left = d.Bool()
		p.Steps = append(p.Steps, st)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return p, nil
}
