package evidence

import (
	"container/list"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
)

// Cache traffic is mirrored onto the process default registry so
// /metrics shows hit rates without plumbing a registry through every
// verifier. Handles resolve once at init; a hit stays two atomic adds.
var (
	obsCacheHits      = obs.Default().Counter("verify_cache_hits_total")
	obsCacheMisses    = obs.Default().Counter("verify_cache_misses_total")
	obsCacheEvictions = obs.Default().Counter("verify_cache_evictions_total")
)

// VerifyCache memoizes SUCCESSFUL RSA signature verifications. The TTP
// resolve path and the arbitrator re-verify the same NRO/NRR evidence
// on every dispute round; an RSA verify costs tens of microseconds
// while a cache hit costs one SHA-256 over the key material.
//
// Entries are keyed by SHA-256 over (signer key fingerprint, message
// digest, signature) — all three, so a hit proves exactly "this key
// verified this signature over this message" and nothing weaker.
//
// Negative results are NEVER cached: a failed verification is
// attacker-controlled input (any garbage signature mints a fresh key),
// so caching failures would let an adversary flush legitimate entries
// out of the bounded LRU at will — and a transient mismatch must not
// stick to a message that a later, correctly-supplied key would verify.
//
// The cache is sharded to keep concurrent verifiers (32+ server
// goroutines) off a single mutex; each shard is an independent LRU.
type VerifyCache struct {
	shards    [verifyShards]verifyShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

const verifyShards = 16

type verifyShard struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recent; values are [32]byte keys
	keys map[[32]byte]*list.Element
}

// NewVerifyCache returns a cache bounded to roughly `capacity` entries
// total across shards. Capacities below one entry per shard are
// rounded up so every shard can hold something.
func NewVerifyCache(capacity int) *VerifyCache {
	per := capacity / verifyShards
	if per < 1 {
		per = 1
	}
	c := &VerifyCache{}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].ll = list.New()
		c.shards[i].keys = make(map[[32]byte]*list.Element, per)
	}
	return c
}

// Stats reports cache hits and misses so far.
func (c *VerifyCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions reports entries displaced by the LRU bound so far — the
// signal that the configured capacity is too small for the working set.
func (c *VerifyCache) Evictions() uint64 {
	return c.evictions.Load()
}

// Len reports the number of cached verifications.
func (c *VerifyCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.keys)
		s.mu.Unlock()
	}
	return n
}

// cacheKey binds signer, message, and signature into one lookup key.
func cacheKey(pub *rsa.PublicKey, msg, sig []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("tpnr-verify-cache-v1"))
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(pub.E))
	h.Write(e[:])
	h.Write(pub.N.Bytes())
	md := sha256.Sum256(msg)
	h.Write(md[:])
	h.Write(sig)
	var k [32]byte
	h.Sum(k[:0])
	return k
}

// verify checks one signature, consulting the cache first and caching
// only success. A nil cache degrades to a plain verification.
func (c *VerifyCache) verify(pub *rsa.PublicKey, msg, sig []byte) error {
	if c == nil {
		return cryptoutil.Verify(pub, msg, sig)
	}
	k := cacheKey(pub, msg, sig)
	s := &c.shards[k[0]%verifyShards]
	s.mu.Lock()
	if el, ok := s.keys[k]; ok {
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		c.hits.Add(1)
		obsCacheHits.Inc()
		return nil
	}
	s.mu.Unlock()
	c.misses.Add(1)
	obsCacheMisses.Inc()
	if err := cryptoutil.Verify(pub, msg, sig); err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.keys[k]; !ok {
		s.keys[k] = s.ll.PushFront(k)
		for s.ll.Len() > s.cap {
			old := s.ll.Back()
			s.ll.Remove(old)
			delete(s.keys, old.Value.([32]byte))
			c.evictions.Add(1)
			obsCacheEvictions.Inc()
		}
	}
	s.mu.Unlock()
	return nil
}

// VerifyCached checks both evidence signatures like Verify, but
// consults the cache so repeat verifications of the same evidence
// under the same key cost two hash lookups instead of two RSA
// operations. A nil cache is allowed and means no caching.
func (ev *Evidence) VerifyCached(senderPub *rsa.PublicKey, c *VerifyCache) error {
	if c == nil {
		return ev.Verify(senderPub)
	}
	if err := c.verify(senderPub, ev.Header.Encode(), ev.HeaderSig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeaderSig, err)
	}
	if err := c.verify(senderPub, ev.Header.digestBytes(), ev.DataSig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadDataSig, err)
	}
	return nil
}

// OpenCached is Open with the signature checks routed through the
// cache. Decryption is never cached (the ciphertext is fresh per seal).
func OpenCached(recipient cryptoutil.KeyPair, senderPub *rsa.PublicKey, sealed []byte, plainHeader *Header, c *VerifyCache) (*Evidence, error) {
	if c == nil {
		return Open(recipient, senderPub, sealed, plainHeader)
	}
	ev, err := open(recipient, sealed, plainHeader)
	if err != nil {
		return nil, err
	}
	if err := ev.VerifyCached(senderPub, c); err != nil {
		return nil, err
	}
	return ev, nil
}
