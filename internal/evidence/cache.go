package evidence

import (
	"container/list"
	"crypto/rsa"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
)

// Cache traffic is mirrored onto the process default registry so
// /metrics shows hit rates without plumbing a registry through every
// verifier. Handles resolve once at init; a hit stays two atomic adds.
var (
	obsCacheHits      = obs.Default().Counter("verify_cache_hits_total")
	obsCacheMisses    = obs.Default().Counter("verify_cache_misses_total")
	obsCacheEvictions = obs.Default().Counter("verify_cache_evictions_total")
)

// VerifyCache memoizes SUCCESSFUL signature verifications. The TTP
// resolve path and the arbitrator re-verify the same NRO/NRR evidence
// on every dispute round; a public-key verify costs tens of
// microseconds while a cache hit costs one SHA-256 over the key
// fingerprint and message.
//
// Entries are keyed by SHA-256 over (signer key fingerprint, message
// digest, signature) — all three, so a hit proves exactly "this key
// verified this signature over this message" and nothing weaker. The
// fingerprint is the scheme handle's cached Fingerprint(), so keying
// costs no key re-serialization per lookup (it used to hash the raw
// RSA modulus every time) and works identically across schemes.
//
// Negative results are NEVER cached: a failed verification is
// attacker-controlled input (any garbage signature mints a fresh key),
// so caching failures would let an adversary flush legitimate entries
// out of the bounded LRU at will — and a transient mismatch must not
// stick to a message that a later, correctly-supplied key would verify.
//
// The cache is sharded to keep concurrent verifiers (32+ server
// goroutines) off a single mutex; each shard is an independent LRU.
type VerifyCache struct {
	shards    [verifyShards]verifyShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

const verifyShards = 16

type verifyShard struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recent; values are [32]byte keys
	keys map[[32]byte]*list.Element
}

// NewVerifyCache returns a cache bounded to roughly `capacity` entries
// total across shards. Capacities below one entry per shard are
// rounded up so every shard can hold something.
func NewVerifyCache(capacity int) *VerifyCache {
	per := capacity / verifyShards
	if per < 1 {
		per = 1
	}
	c := &VerifyCache{}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].ll = list.New()
		c.shards[i].keys = make(map[[32]byte]*list.Element, per)
	}
	return c
}

// Stats reports cache hits and misses so far.
func (c *VerifyCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions reports entries displaced by the LRU bound so far — the
// signal that the configured capacity is too small for the working set.
func (c *VerifyCache) Evictions() uint64 {
	return c.evictions.Load()
}

// Len reports the number of cached verifications.
func (c *VerifyCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.keys)
		s.mu.Unlock()
	}
	return n
}

// cacheKey binds signer, message, and signature into one lookup key.
// The handle's fingerprint is cached inside the handle, so the key
// costs one SHA-256 over ~100 bytes regardless of key scheme or size.
func cacheKey(pub cryptoutil.PublicKey, msg, sig []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("tpnr-verify-cache-v2"))
	fp := pub.Fingerprint()
	h.Write([]byte{byte(pub.Scheme())})
	h.Write(fp.Sum)
	md := sha256.Sum256(msg)
	h.Write(md[:])
	h.Write(sig)
	var k [32]byte
	h.Sum(k[:0])
	return k
}

// lookup reports whether k is cached, refreshing its LRU position and
// counting the hit or miss.
func (c *VerifyCache) lookup(k [32]byte) bool {
	s := &c.shards[k[0]%verifyShards]
	s.mu.Lock()
	el, ok := s.keys[k]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		obsCacheHits.Inc()
	} else {
		c.misses.Add(1)
		obsCacheMisses.Inc()
	}
	return ok
}

// insert records a successful verification under k.
func (c *VerifyCache) insert(k [32]byte) {
	s := &c.shards[k[0]%verifyShards]
	s.mu.Lock()
	if _, ok := s.keys[k]; !ok {
		s.keys[k] = s.ll.PushFront(k)
		for s.ll.Len() > s.cap {
			old := s.ll.Back()
			s.ll.Remove(old)
			delete(s.keys, old.Value.([32]byte))
			c.evictions.Add(1)
			obsCacheEvictions.Inc()
		}
	}
	s.mu.Unlock()
}

// verify checks one signature, consulting the cache first and caching
// only success. A nil cache degrades to a plain verification.
func (c *VerifyCache) verify(pub cryptoutil.PublicKey, msg, sig []byte) error {
	if c == nil {
		return pub.Verify(msg, sig)
	}
	k := cacheKey(pub, msg, sig)
	if c.lookup(k) {
		return nil
	}
	if err := pub.Verify(msg, sig); err != nil {
		return err
	}
	c.insert(k)
	return nil
}

// VerifyCachedWith checks both evidence signatures like VerifyWith,
// but consults the cache so repeat verifications of the same evidence
// under the same key cost two hash lookups instead of two public-key
// operations. A nil cache is allowed and means no caching.
func (ev *Evidence) VerifyCachedWith(senderPub cryptoutil.PublicKey, c *VerifyCache) error {
	if c == nil {
		return ev.VerifyWith(senderPub)
	}
	if err := c.verify(senderPub, ev.Header.Encode(), ev.HeaderSig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeaderSig, err)
	}
	if err := c.verify(senderPub, ev.Header.digestBytes(), ev.DataSig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadDataSig, err)
	}
	return nil
}

// VerifyCached is VerifyCachedWith for RSA senders.
//
// Deprecated: use VerifyCachedWith with a scheme handle.
func (ev *Evidence) VerifyCached(senderPub *rsa.PublicKey, c *VerifyCache) error {
	return ev.VerifyCachedWith(cryptoutil.NewRSAPublicKey(senderPub), c)
}

// OpenCachedWith is OpenWith with the signature checks routed through
// the cache. Decryption is never cached (the ciphertext is fresh per
// seal).
func OpenCachedWith(recipient cryptoutil.Signer, senderPub cryptoutil.PublicKey, sealed []byte, plainHeader *Header, c *VerifyCache) (*Evidence, error) {
	if c == nil {
		return OpenWith(recipient, senderPub, sealed, plainHeader)
	}
	ev, err := open(recipient, sealed, plainHeader)
	if err != nil {
		return nil, err
	}
	if err := ev.VerifyCachedWith(senderPub, c); err != nil {
		return nil, err
	}
	return ev, nil
}

// OpenCached is OpenCachedWith for RSA key pairs.
//
// Deprecated: use OpenCachedWith with scheme handles.
func OpenCached(recipient cryptoutil.KeyPair, senderPub *rsa.PublicKey, sealed []byte, plainHeader *Header, c *VerifyCache) (*Evidence, error) {
	return OpenCachedWith(recipient.Signer(), cryptoutil.NewRSAPublicKey(senderPub), sealed, plainHeader, c)
}

// BatchEntry is one (evidence, claimed sender) pair in a batch
// verification.
type BatchEntry struct {
	Ev     *Evidence
	Sender cryptoutil.PublicKey
}

// VerifyBatch verifies many opened evidence items in one call — the
// server's inbound drain path. Cache hits are peeled off first; the
// remaining signatures (two per evidence: header and data hash) go
// through cryptoutil.VerifyBatch, which groups per scheme and fans out
// across workers, falling back to single verifications to pinpoint
// failures. Successes are inserted into the cache.
//
// The result maps evidence index → verification error for exactly the
// entries that failed; a nil map means every entry verified. Failures
// are isolated: one corrupt entry never poisons its batch neighbors.
func VerifyBatch(entries []BatchEntry, c *VerifyCache) map[int]error {
	var failed map[int]error
	fail := func(i int, err error) {
		if failed == nil {
			failed = make(map[int]error)
		}
		failed[i] = err
	}
	type pending struct {
		entry int      // index into entries
		key   [32]byte // cache key to insert on success
		bad   error    // which evidence error class a failure maps to
	}
	items := make([]cryptoutil.BatchItem, 0, 2*len(entries))
	meta := make([]pending, 0, 2*len(entries))
	for i, en := range entries {
		if en.Ev == nil || en.Sender == nil {
			fail(i, fmt.Errorf("%w: missing evidence or sender key", ErrMalformed))
			continue
		}
		sigs := []struct {
			msg []byte
			sig []byte
			bad error
		}{
			{en.Ev.Header.Encode(), en.Ev.HeaderSig, ErrBadHeaderSig},
			{en.Ev.Header.digestBytes(), en.Ev.DataSig, ErrBadDataSig},
		}
		for _, sg := range sigs {
			var k [32]byte
			if c != nil {
				k = cacheKey(en.Sender, sg.msg, sg.sig)
				if c.lookup(k) {
					continue
				}
			}
			items = append(items, cryptoutil.BatchItem{Pub: en.Sender, Msg: sg.msg, Sig: sg.sig})
			meta = append(meta, pending{entry: i, key: k, bad: sg.bad})
		}
	}

	var batchFail map[int]error
	if err := cryptoutil.VerifyBatch(items); err != nil {
		be, ok := err.(*cryptoutil.BatchError)
		if !ok {
			// Defensive: treat an untyped error as "everything failed".
			for j := range items {
				if batchFail == nil {
					batchFail = make(map[int]error, len(items))
				}
				batchFail[j] = err
			}
		} else {
			batchFail = be.Failed
		}
	}
	for j, m := range meta {
		if err, bad := batchFail[j]; bad {
			if _, seen := failed[m.entry]; !seen {
				fail(m.entry, fmt.Errorf("%w: %v", m.bad, err))
			}
			continue
		}
		if c != nil {
			c.insert(m.key)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return failed
}
