package evidence

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

// buildSession signs K NRO evidence items under sender, sealed for
// recipient, and returns the opened evidence in txn order.
func buildSession(t *testing.T, scheme cryptoutil.Scheme, k int) (evs []*Evidence, txns []string, sender, recipient cryptoutil.KeyPair) {
	t.Helper()
	sender = cryptoutil.InsecureTestKeyScheme(0, scheme)
	recipient = cryptoutil.InsecureTestKeyScheme(1, scheme)
	for i := 0; i < k; i++ {
		h := &Header{
			Kind: KindNRO, TxnID: fmt.Sprintf("txn-%03d", i), Seq: uint64(i + 1),
			Nonce: cryptoutil.MustNonce(), SenderID: "alice", RecipientID: "bob", TTPID: "ttp",
			Timestamp: time.Unix(1700000000+int64(i), 0).UTC(), ObjectKey: fmt.Sprintf("obj-%d", i),
		}
		h.SetDigests([]byte(fmt.Sprintf("payload %d", i)))
		ev, sealed, err := BuildFor(sender.Signer(), recipient.Signer().Public(), h)
		if err != nil {
			t.Fatalf("BuildFor: %v", err)
		}
		opened, err := OpenWith(recipient.Signer(), sender.Signer().Public(), sealed, h)
		if err != nil {
			t.Fatalf("OpenWith: %v", err)
		}
		// Sender copy and recipient copy must agree on the leaf digest —
		// that is what makes one root settle both sides.
		if !LeafDigest(ev).Equal(LeafDigest(opened)) {
			t.Fatalf("leaf digest differs between sender and recipient copies")
		}
		evs = append(evs, opened)
		txns = append(txns, h.TxnID)
	}
	return evs, txns, sender, recipient
}

// TestVerifyBatchFaultIsolation is the satellite-mandated test: one
// corrupt item in a batch of 64 is pinpointed exactly, for both
// schemes, with and without a cache.
func TestVerifyBatchFaultIsolation(t *testing.T) {
	for _, scheme := range []cryptoutil.Scheme{cryptoutil.SchemeRSA, cryptoutil.SchemeEd25519} {
		for _, withCache := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/cache=%v", scheme, withCache), func(t *testing.T) {
				evs, _, sender, _ := buildSession(t, scheme, 64)
				pub := sender.Signer().Public()
				entries := make([]BatchEntry, len(evs))
				for i, ev := range evs {
					entries[i] = BatchEntry{Ev: ev, Sender: pub}
				}
				var c *VerifyCache
				if withCache {
					c = NewVerifyCache(256)
				}
				if failed := VerifyBatch(entries, c); failed != nil {
					t.Fatalf("clean batch of 64 failed: %v", failed)
				}

				// Corrupt exactly item 37's header signature.
				bad := *evs[37]
				bad.HeaderSig = append([]byte(nil), bad.HeaderSig...)
				bad.HeaderSig[5] ^= 0xA5
				entries[37] = BatchEntry{Ev: &bad, Sender: pub}
				failed := VerifyBatch(entries, c)
				if len(failed) != 1 || failed[37] == nil {
					t.Fatalf("failed = %v, want exactly index 37", failed)
				}
				if !errors.Is(failed[37], ErrBadHeaderSig) {
					t.Errorf("error class = %v, want ErrBadHeaderSig", failed[37])
				}
				if withCache {
					// The 63 good entries should now be fully cached: a
					// re-run of the clean batch must verify from cache alone.
					hitsBefore, _ := c.Stats()
					entries[37] = BatchEntry{Ev: evs[37], Sender: pub}
					if failed := VerifyBatch(entries, c); failed != nil {
						t.Fatalf("cached re-run failed: %v", failed)
					}
					hitsAfter, _ := c.Stats()
					if hitsAfter-hitsBefore < 2*63 {
						t.Errorf("cache hits grew by %d, want >= %d", hitsAfter-hitsBefore, 2*63)
					}
				}
			})
		}
	}
}

// TestVerifyBatchEntryErrors checks nil-entry isolation and data-sig
// classification.
func TestVerifyBatchEntryErrors(t *testing.T) {
	evs, _, sender, _ := buildSession(t, cryptoutil.SchemeRSA, 4)
	pub := sender.Signer().Public()
	bad := *evs[2]
	bad.DataSig = append([]byte(nil), bad.DataSig...)
	bad.DataSig[0] ^= 1
	entries := []BatchEntry{
		{Ev: evs[0], Sender: pub},
		{Ev: nil, Sender: pub},
		{Ev: &bad, Sender: pub},
		{Ev: evs[3], Sender: nil},
	}
	failed := VerifyBatch(entries, nil)
	if len(failed) != 3 {
		t.Fatalf("failed = %v, want indices 1,2,3", failed)
	}
	if !errors.Is(failed[2], ErrBadDataSig) {
		t.Errorf("index 2 error = %v, want ErrBadDataSig", failed[2])
	}
}

// TestAggregateReceipt covers the settle flow: K=64 uploads settle
// with one signature, each leaf verifiable independently; forged
// leaves, substituted evidence and cross-txn proofs are rejected.
func TestAggregateReceipt(t *testing.T) {
	for _, scheme := range []cryptoutil.Scheme{cryptoutil.SchemeRSA, cryptoutil.SchemeEd25519} {
		t.Run(scheme.String(), func(t *testing.T) {
			const k = 64
			evs, txns, _, provider := buildSession(t, scheme, k)
			leaves := make([]cryptoutil.Digest, k)
			for i, ev := range evs {
				leaves[i] = LeafDigest(ev)
			}
			now := time.Unix(1700001000, 0).UTC()
			r, tree, err := BuildAggregateReceipt(provider.Signer(), "sess-1", "bob", txns, leaves, now)
			if err != nil {
				t.Fatalf("BuildAggregateReceipt: %v", err)
			}
			if err := r.VerifySig(provider.Signer().Public()); err != nil {
				t.Fatalf("VerifySig: %v", err)
			}

			// Wire round-trip of the receipt.
			r2, err := DecodeAggregateReceipt(r.Encode())
			if err != nil {
				t.Fatalf("DecodeAggregateReceipt: %v", err)
			}
			if err := r2.VerifySig(provider.Signer().Public()); err != nil {
				t.Fatalf("decoded receipt signature: %v", err)
			}
			if len(r2.TxnIDs) != k || !r2.Root.Equal(r.Root) {
				t.Fatalf("receipt fields lost in round-trip")
			}

			// Every leaf verifies via its (wire round-tripped) proof.
			for i, ev := range evs {
				p, err := tree.Prove(i)
				if err != nil {
					t.Fatal(err)
				}
				p2, err := DecodeProof(EncodeProof(p))
				if err != nil {
					t.Fatalf("proof round-trip: %v", err)
				}
				if err := r2.VerifyLeaf(ev, p2); err != nil {
					t.Fatalf("leaf %d: %v", i, err)
				}
			}

			// Forgeries: substituted evidence under a real proof.
			p17, _ := tree.Prove(17)
			forged := *evs[17]
			forged.Header = &Header{}
			*forged.Header = *evs[17].Header
			forged.Header.ObjectLen++
			if err := r2.VerifyLeaf(&forged, p17); !errors.Is(err, ErrBadLeafProof) {
				t.Errorf("forged evidence accepted: %v", err)
			}
			// Real evidence under another txn's proof.
			p3, _ := tree.Prove(3)
			if err := r2.VerifyLeaf(evs[17], p3); !errors.Is(err, ErrBadLeafProof) {
				t.Errorf("cross-txn proof accepted: %v", err)
			}
			// Tampered receipt signature.
			r3 := *r2
			r3.Sig = append([]byte(nil), r3.Sig...)
			r3.Sig[3] ^= 0x10
			if err := r3.VerifySig(provider.Signer().Public()); !errors.Is(err, ErrBadReceiptSig) {
				t.Errorf("tampered receipt sig accepted: %v", err)
			}
			// Receipt signed by someone else.
			mallory := cryptoutil.InsecureTestKeyScheme(7, scheme)
			if err := r2.VerifySig(mallory.Signer().Public()); !errors.Is(err, ErrBadReceiptSig) {
				t.Errorf("wrong signer accepted: %v", err)
			}
		})
	}
}

// TestCrossSchemeEvidence checks a full BuildFor/OpenWith round-trip
// where sender and recipient use DIFFERENT schemes — sealing follows
// the recipient's key, signing the sender's.
func TestCrossSchemeEvidence(t *testing.T) {
	sender := cryptoutil.InsecureTestKeyScheme(0, cryptoutil.SchemeEd25519)
	recipient := cryptoutil.InsecureTestKey(1) // RSA
	h := &Header{
		Kind: KindNRO, TxnID: "txn-x", Seq: 1, Nonce: cryptoutil.MustNonce(),
		SenderID: "alice", RecipientID: "bob", TTPID: "ttp",
		Timestamp: time.Unix(1700000000, 0).UTC(),
	}
	h.SetDigests([]byte("cross-scheme payload"))
	_, sealed, err := BuildFor(sender.Signer(), recipient.Signer().Public(), h)
	if err != nil {
		t.Fatalf("BuildFor: %v", err)
	}
	opened, err := OpenWith(recipient.Signer(), sender.Signer().Public(), sealed, h)
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	if err := opened.VerifyAgainstDataWith(sender.Signer().Public(), []byte("cross-scheme payload")); err != nil {
		t.Fatalf("VerifyAgainstDataWith: %v", err)
	}
}
