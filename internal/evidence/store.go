package evidence

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Role distinguishes which side of a transaction a stored evidence
// item plays for its holder.
type Role uint8

// Evidence roles: Own is evidence this party generated (its commitment
// to the peer); Peer is evidence received from the counterparty (what
// this party shows an arbitrator).
const (
	RoleOwn Role = iota + 1
	RolePeer
)

// String names the role.
func (r Role) String() string {
	if r == RoleOwn {
		return "own"
	}
	return "peer"
}

// ErrNoEvidence is returned when a transaction has no stored item.
var ErrNoEvidence = errors.New("evidence: none stored for transaction")

// Store archives evidence per transaction. The paper requires both
// parties to retain evidence — "MSU is stored at the user side, and MSP
// is stored at the service provider side" (§3.1) and the NRO/NRR
// likewise (§4.1) — so a dispute can be arbitrated long after the
// session. Safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	items map[string]map[Role][]*Evidence // txn → role → items in arrival order
}

// NewStore returns an empty evidence archive.
func NewStore() *Store {
	return &Store{items: make(map[string]map[Role][]*Evidence)}
}

// Put archives an evidence item for a transaction.
func (s *Store) Put(txn string, role Role, ev *Evidence) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.items[txn] == nil {
		s.items[txn] = make(map[Role][]*Evidence)
	}
	s.items[txn][role] = append(s.items[txn][role], ev)
}

// PutIfAbsent archives an evidence item unless an identical one (same
// header kind, sequence and nonce) of that role is already stored for
// the transaction. Recovery uses it so replaying the same history twice
// — snapshot restore plus tail, or a second Recover call — cannot
// duplicate items. Reports whether the item was stored.
func (s *Store) PutIfAbsent(txn string, role Role, ev *Evidence) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, old := range s.items[txn][role] {
		if old.Header.Kind == ev.Header.Kind && old.Header.Seq == ev.Header.Seq &&
			bytes.Equal(old.Header.Nonce, ev.Header.Nonce) {
			return false
		}
	}
	if s.items[txn] == nil {
		s.items[txn] = make(map[Role][]*Evidence)
	}
	s.items[txn][role] = append(s.items[txn][role], ev)
	return true
}

// Drop removes every stored item for txn — compaction calls it after
// the transaction's evidence has been moved to the cold archive.
func (s *Store) Drop(txn string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.items, txn)
}

// Get returns the latest evidence of the given role for txn.
func (s *Store) Get(txn string, role Role) (*Evidence, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	list := s.items[txn][role]
	if len(list) == 0 {
		return nil, fmt.Errorf("%w: %s (%s)", ErrNoEvidence, txn, role)
	}
	return list[len(list)-1], nil
}

// All returns every item of the given role for txn, oldest first.
func (s *Store) All(txn string, role Role) []*Evidence {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Evidence(nil), s.items[txn][role]...)
}

// ByKind returns the latest item of the given role and header kind.
func (s *Store) ByKind(txn string, role Role, kind Kind) (*Evidence, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	list := s.items[txn][role]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].Header.Kind == kind {
			return list[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %s (%s, %s)", ErrNoEvidence, txn, role, kind)
}

// Transactions lists transaction IDs with stored evidence, sorted.
func (s *Store) Transactions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.items))
	for txn := range s.items {
		out = append(out, txn)
	}
	sort.Strings(out)
	return out
}
