package evidence

import (
	"encoding/hex"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

// Golden vectors pin the canonical encodings. Signatures cover these
// bytes, so any accidental format change silently invalidates every
// archived evidence item — these tests make such a change loud.

// goldenHeader is fully deterministic (fixed nonce, fixed times).
func goldenHeader() *Header {
	h := &Header{
		Kind:        KindNRO,
		TxnID:       "txn-golden",
		Seq:         7,
		Nonce:       []byte{0x01, 0x02, 0x03, 0x04},
		SenderID:    "alice",
		RecipientID: "bob",
		TTPID:       "ttp",
		Timestamp:   time.Unix(1284372625, 0).UTC(), // 2010-09-13T10:30:25-07:00 in stamps
		TimeLimit:   time.Unix(1284372925, 0).UTC(),
		ObjectKey:   "finance/q3.xls",
		Note:        "golden",
	}
	h.DataMD5 = cryptoutil.Sum(cryptoutil.MD5, []byte("golden data"))
	h.DataSHA256 = cryptoutil.Sum(cryptoutil.SHA256, []byte("golden data"))
	h.ObjectLen = 11
	return h
}

const goldenHeaderHex = "0000000e74706e722d6865616465722d763101" + // magic + kind
	"0000000a74786e2d676f6c64656e" + // txn
	"0000000000000007" + // seq
	"0000000401020304" + // nonce
	"00000005616c696365" + // alice
	"00000003626f62" + // bob
	"00000003747470" + // ttp
	"11d30218f85c6a00" + // timestamp unixnano
	"11d3025ed1c12200" + // time limit unixnano
	"0000000e66696e616e63652f71332e786c73" + // object key
	"000000000000000b" + // object len
	"00000006676f6c64656e" + // note
	"01" + "00000010" + "c89e54219c2bedd792715bfb2c1a515c" + // md5
	"02" + "00000020" + "032ed9315e5fbd50f631992565035491210718c1da2ea14064a5c87f36ff38ab" // sha256

func TestGoldenHeaderEncoding(t *testing.T) {
	got := hex.EncodeToString(goldenHeader().Encode())
	if got != goldenHeaderHex {
		t.Fatalf("canonical header encoding changed:\n got %s\nwant %s", got, goldenHeaderHex)
	}
}

func TestGoldenHeaderDecodes(t *testing.T) {
	raw, err := hex.DecodeString(goldenHeaderHex)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	if h.TxnID != "txn-golden" || h.Seq != 7 || h.SenderID != "alice" || h.Note != "golden" {
		t.Fatalf("decoded golden header: %+v", h)
	}
	if !h.Timestamp.Equal(time.Unix(1284372625, 0)) {
		t.Fatalf("timestamp = %v", h.Timestamp)
	}
}

func TestGoldenDigestValues(t *testing.T) {
	// Pin the md5/sha256 of the golden data independently.
	if got := cryptoutil.Sum(cryptoutil.MD5, []byte("golden data")).Hex(); got != "c89e54219c2bedd792715bfb2c1a515c" {
		t.Fatalf("md5(golden data) = %s", got)
	}
	if got := cryptoutil.Sum(cryptoutil.SHA256, []byte("golden data")).Hex(); got != "032ed9315e5fbd50f631992565035491210718c1da2ea14064a5c87f36ff38ab" {
		t.Fatalf("sha256(golden data) = %s", got)
	}
}
