package attack

import (
	"bytes"
	"testing"
)

// TestGauntletMatrix is the executable form of the paper's Table of §5
// claims: every attack must FAIL against TPNR and SUCCEED against the
// naive baseline.
func TestGauntletMatrix(t *testing.T) {
	outcomes, err := Gauntlet()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2*len(AllAttacks) {
		t.Fatalf("gauntlet produced %d outcomes", len(outcomes))
	}
	for _, o := range outcomes {
		switch o.Target {
		case "TPNR":
			if o.Succeeded {
				t.Errorf("%s SUCCEEDED against TPNR: %s", o.Attack, o.Detail)
			}
		case "naive":
			if !o.Succeeded {
				t.Errorf("%s FAILED against the naive baseline (it should succeed): %s", o.Attack, o.Detail)
			}
		default:
			t.Errorf("unknown target %q", o.Target)
		}
		if o.Detail == "" {
			t.Errorf("%s vs %s: empty detail", o.Attack, o.Target)
		}
	}
}

func TestUnknownAttackRejected(t *testing.T) {
	if _, err := RunTPNR("teleportation"); err == nil {
		t.Error("unknown attack accepted for TPNR")
	}
	if _, err := RunNaive("teleportation"); err == nil {
		t.Error("unknown attack accepted for naive")
	}
}

func TestNaiveMsgRoundTrip(t *testing.T) {
	m := NaivePut("alice", "tok", "key/1", []byte("data"))
	got, err := DecodeNaive(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != "put" || got.User != "alice" || got.Key != "key/1" || !bytes.Equal(got.Data, []byte("data")) {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := DecodeNaive([]byte("junk")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestNaiveServerBasics(t *testing.T) {
	s := NewNaiveServer()
	tok := s.Register("u")

	// Valid put.
	resp := s.Handle(NaivePut("u", tok, "k", []byte("v")).Encode())
	m, err := DecodeNaive(resp)
	if err != nil || m.Op != "ok" {
		t.Fatalf("put: %+v %v", m, err)
	}
	// Wrong token.
	resp = s.Handle(NaivePut("u", "bad", "k", []byte("v")).Encode())
	if m, _ := DecodeNaive(resp); m.Op != "err:auth-failed" {
		t.Fatalf("wrong token: %+v", m)
	}
	// Unknown user.
	resp = s.Handle(NaivePut("ghost", tok, "k", []byte("v")).Encode())
	if m, _ := DecodeNaive(resp); m.Op != "err:auth-failed" {
		t.Fatalf("unknown user: %+v", m)
	}
	// MD5 mismatch.
	bad := NaivePut("u", tok, "k", []byte("v"))
	bad.MD5 = "00000000000000000000000000000000"
	resp = s.Handle(bad.Encode())
	if m, _ := DecodeNaive(resp); m.Op != "err:md5-mismatch" {
		t.Fatalf("md5 mismatch: %+v", m)
	}
	// Get round trip.
	resp = s.Handle((&NaiveMsg{Op: "get", User: "u", Token: tok, Key: "k"}).Encode())
	m, _ = DecodeNaive(resp)
	if m.Op != "ok" || !bytes.Equal(m.Data, []byte("v")) {
		t.Fatalf("get: %+v", m)
	}
	// Missing object.
	resp = s.Handle((&NaiveMsg{Op: "get", User: "u", Token: tok, Key: "ghost"}).Encode())
	if m, _ := DecodeNaive(resp); m.Op != "err:not-found" {
		t.Fatalf("missing: %+v", m)
	}
	// Bad op.
	resp = s.Handle((&NaiveMsg{Op: "rm", User: "u", Token: tok}).Encode())
	if m, _ := DecodeNaive(resp); m.Op != "err:bad-op" {
		t.Fatalf("bad op: %+v", m)
	}
}

func TestRewriteNaivePut(t *testing.T) {
	orig := NaivePut("u", "t", "k", []byte("data")).Encode()
	rewritten, ok := RewriteNaivePut(orig, func(b []byte) []byte { return []byte("evil") })
	if !ok {
		t.Fatal("rewrite reported failure")
	}
	m, err := DecodeNaive(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data, []byte("evil")) {
		t.Fatalf("data = %q", m.Data)
	}
	// The rewritten MD5 is self-consistent — that is the vulnerability.
	s := NewNaiveServer()
	tok := s.Register("u")
	re, _ := RewriteNaivePut(NaivePut("u", tok, "k", []byte("data")).Encode(), func(b []byte) []byte { return []byte("evil") })
	resp := s.Handle(re)
	if rm, _ := DecodeNaive(resp); rm.Op != "ok" {
		t.Fatalf("server rejected self-consistent rewrite: %+v", rm)
	}
	// Identity mutation reports no rewrite.
	if _, ok := RewriteNaivePut(orig, func(b []byte) []byte { return b }); ok {
		t.Fatal("identity mutation reported as rewrite")
	}
	// Non-put passes through.
	g := (&NaiveMsg{Op: "get"}).Encode()
	if _, ok := RewriteNaivePut(g, func(b []byte) []byte { return []byte("x") }); ok {
		t.Fatal("get rewritten")
	}
}

func TestNaivePutAccepted(t *testing.T) {
	req := NaivePut("u", "t", "k", []byte("v"))
	// A genuine ok response.
	resp := (&NaiveMsg{Op: "ok", MD5: req.MD5}).Encode()
	if !NaivePutAccepted(resp, req.MD5) {
		t.Error("genuine response rejected")
	}
	// The client's own echoed request also passes — the reflection bug.
	if !NaivePutAccepted(req.Encode(), req.MD5) {
		t.Error("echoed request rejected; the naive client should (wrongly) accept it")
	}
	// A response with a different MD5 is rejected.
	other := (&NaiveMsg{Op: "ok", MD5: "beef"}).Encode()
	if NaivePutAccepted(other, req.MD5) {
		t.Error("mismatched MD5 accepted")
	}
	if NaivePutAccepted([]byte("junk"), req.MD5) {
		t.Error("garbage accepted")
	}
}
