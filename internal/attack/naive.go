// Package attack makes the paper's §5 robustness analysis executable:
// it implements the five classic adversaries — man-in-the-middle,
// reflection, interleaving, replay, and timeliness — and runs each one
// against two targets: the TPNR deployment (which must resist) and a
// deliberately naive MD5-only storage protocol standing in for the
// "conventional mechanisms" of §2 (which must fall). Experiment E9
// renders the resulting matrix.
package attack

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
)

// The naive protocol is a distilled §2 baseline: static bearer-token
// authentication, bare MD5 transfer integrity, and — the §5-relevant
// sins — the SAME message format in both directions (reflection bait),
// no nonces or sequence numbers (replay/interleaving bait), and no
// deadlines (timeliness bait).

// NaiveMsg is both request and response ("a challenge-response
// authentication system that uses the same protocol in both
// directions", §5.2 — the precondition for reflection).
type NaiveMsg struct {
	Op    string // "put", "get", "ok", "err:<reason>"
	User  string
	Token string
	Key   string
	MD5   string
	Data  []byte
}

// Encode serializes the message.
func (m *NaiveMsg) Encode() []byte {
	e := wire.NewEncoder(len(m.Data) + 64)
	e.String(m.Op)
	e.String(m.User)
	e.String(m.Token)
	e.String(m.Key)
	e.String(m.MD5)
	e.Bytes32(m.Data)
	return e.Bytes()
}

// DecodeNaive parses a message.
func DecodeNaive(raw []byte) (*NaiveMsg, error) {
	d := wire.NewDecoder(raw)
	m := &NaiveMsg{
		Op:    d.String(),
		User:  d.String(),
		Token: d.String(),
		Key:   d.String(),
		MD5:   d.String(),
		Data:  d.Bytes32(),
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// NaiveServer is the baseline storage endpoint.
type NaiveServer struct {
	store *storage.Mem

	mu     sync.Mutex
	tokens map[string]string // user → static bearer token
}

// NewNaiveServer creates the baseline server.
func NewNaiveServer() *NaiveServer {
	return &NaiveServer{store: storage.NewMem(nil), tokens: make(map[string]string)}
}

// Register provisions a user and returns its static token (reused for
// every request — the §5.3 interleaving weakness).
func (s *NaiveServer) Register(user string) string {
	tok := fmt.Sprintf("token-%x", cryptoutil.MustNonce())
	s.mu.Lock()
	s.tokens[user] = tok
	s.mu.Unlock()
	return tok
}

// Store exposes the backing store.
func (s *NaiveServer) Store() *storage.Mem { return s.store }

// Serve handles one connection.
func (s *NaiveServer) Serve(conn transport.Conn) {
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		if err := conn.Send(s.Handle(raw)); err != nil {
			return
		}
	}
}

// Handle processes one request and returns the encoded response.
func (s *NaiveServer) Handle(raw []byte) []byte {
	m, err := DecodeNaive(raw)
	if err != nil {
		return (&NaiveMsg{Op: "err:bad-request"}).Encode()
	}
	s.mu.Lock()
	want := s.tokens[m.User]
	s.mu.Unlock()
	if want == "" || m.Token != want {
		return (&NaiveMsg{Op: "err:auth-failed"}).Encode()
	}
	switch m.Op {
	case "put":
		sum := cryptoutil.Sum(cryptoutil.MD5, m.Data)
		if sum.Hex() != m.MD5 {
			return (&NaiveMsg{Op: "err:md5-mismatch"}).Encode()
		}
		if _, err := s.store.Put(m.Key, m.Data, sum); err != nil {
			return (&NaiveMsg{Op: "err:storage"}).Encode()
		}
		// The response echoes the request fields — same format, no
		// responder binding.
		return (&NaiveMsg{Op: "ok", User: m.User, Key: m.Key, MD5: sum.Hex()}).Encode()
	case "get":
		obj, err := s.store.Get(m.Key)
		if err != nil {
			return (&NaiveMsg{Op: "err:not-found"}).Encode()
		}
		return (&NaiveMsg{Op: "ok", User: m.User, Key: m.Key, MD5: obj.StoredMD5.Hex(), Data: obj.Data}).Encode()
	default:
		return (&NaiveMsg{Op: "err:bad-op"}).Encode()
	}
}

// NaivePut builds an upload request.
func NaivePut(user, token, key string, data []byte) *NaiveMsg {
	return &NaiveMsg{
		Op: "put", User: user, Token: token, Key: key,
		MD5:  cryptoutil.Sum(cryptoutil.MD5, data).Hex(),
		Data: data,
	}
}

// NaivePutAccepted is the naive client's response check: it compares
// only the echoed MD5 against what it sent — the sloppy-but-common
// check that makes the reflection attack land (the client's own
// request, echoed back, carries exactly that MD5).
func NaivePutAccepted(raw []byte, sentMD5 string) bool {
	m, err := DecodeNaive(raw)
	if err != nil {
		return false
	}
	return m.MD5 == sentMD5
}

// RewriteNaivePut mutates a captured upload's data, recomputing the
// MD5 — which any man-in-the-middle can do, since nothing is signed.
func RewriteNaivePut(raw []byte, mutate func([]byte) []byte) ([]byte, bool) {
	m, err := DecodeNaive(raw)
	if err != nil || m.Op != "put" {
		return raw, false
	}
	newData := mutate(m.Data)
	if bytes.Equal(newData, m.Data) {
		return raw, false
	}
	return NaivePut(m.User, m.Token, m.Key, newData).Encode(), true
}
