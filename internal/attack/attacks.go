package attack

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/arbitrator"
	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Outcome is one cell of the §5 robustness matrix.
type Outcome struct {
	// Attack names the adversary (§5.1–§5.5).
	Attack string
	// Target is "TPNR" or "naive".
	Target string
	// Succeeded reports whether the ATTACKER achieved their goal.
	Succeeded bool
	// Detail explains what happened.
	Detail string
}

// Attack names.
const (
	MITM         = "man-in-the-middle"
	Reflection   = "reflection"
	Interleaving = "interleaving"
	Replay       = "replay"
	Timeliness   = "timeliness"
	// LazyProvider is the storage-dwell adversary (DESIGN.md §14): a
	// provider that signs the receipt, then silently discards the data
	// and ignores every audit challenge, betting nobody can prove the
	// discard without downloading.
	LazyProvider = "lazy-provider"
)

// AllAttacks lists the five §5 adversaries in paper order, plus the
// storage-dwell lazy provider the audit sub-protocol exists to catch.
var AllAttacks = []string{MITM, Reflection, Interleaving, Replay, Timeliness, LazyProvider}

// tpnrDeploy builds a fresh TPNR deployment for one attack run.
func tpnrDeploy(lifetime time.Duration) (*deploy.Deployment, error) {
	return deploy.New(deploy.Config{
		TestKeys:        true,
		ResponseTimeout: 400 * time.Millisecond,
		MessageLifetime: lifetime,
	})
}

// naiveDeploy builds the naive target: server on an in-memory network.
type naiveEnv struct {
	server *NaiveServer
	net    *transport.Network
	user   string
	token  string
}

func naiveDeployEnv() (*naiveEnv, error) {
	env := &naiveEnv{server: NewNaiveServer(), net: transport.NewNetwork(), user: "alice"}
	env.token = env.server.Register("alice")
	l, err := env.net.Listen("naive")
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go env.server.Serve(c)
		}
	}()
	return env, nil
}

// RunTPNR executes the named attack against a fresh TPNR deployment.
func RunTPNR(name string) (Outcome, error) {
	switch name {
	case MITM:
		return mitmTPNR()
	case Reflection:
		return reflectionTPNR()
	case Interleaving:
		return interleavingTPNR()
	case Replay:
		return replayTPNR()
	case Timeliness:
		return timelinessTPNR()
	case LazyProvider:
		return lazyProviderTPNR()
	default:
		return Outcome{}, fmt.Errorf("attack: unknown attack %q", name)
	}
}

// RunNaive executes the named attack against the naive baseline.
func RunNaive(name string) (Outcome, error) {
	switch name {
	case MITM:
		return mitmNaive()
	case Reflection:
		return reflectionNaive()
	case Interleaving:
		return interleavingNaive()
	case Replay:
		return replayNaive()
	case Timeliness:
		return timelinessNaive()
	case LazyProvider:
		return lazyProviderNaive()
	default:
		return Outcome{}, fmt.Errorf("attack: unknown attack %q", name)
	}
}

// Gauntlet runs every attack against both targets: the E9 matrix.
func Gauntlet() ([]Outcome, error) {
	var out []Outcome
	for _, name := range AllAttacks {
		o, err := RunTPNR(name)
		if err != nil {
			return nil, fmt.Errorf("attack: %s vs TPNR: %w", name, err)
		}
		out = append(out, o)
		o, err = RunNaive(name)
		if err != nil {
			return nil, fmt.Errorf("attack: %s vs naive: %w", name, err)
		}
		out = append(out, o)
	}
	return out, nil
}

// --- §5.1 man-in-the-middle -------------------------------------------

// mitmTPNR: the attacker rewrites the upload payload in flight. Goal:
// make the provider store tampered data while the client believes the
// upload succeeded.
func mitmTPNR() (Outcome, error) {
	d, err := tpnrDeploy(0)
	if err != nil {
		return Outcome{}, err
	}
	defer d.Close()
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir != transport.ClientToServer {
			return msg, true
		}
		m, err := core.DecodeMessage(msg)
		if err != nil || len(m.Payload) == 0 {
			return msg, true
		}
		m.Payload = append([]byte("TAMPERED:"), m.Payload...)
		return m.Encode(), true
	}
	conn, tap, err := transport.Spliced(d.DialProvider, ic)
	if err != nil {
		return Outcome{}, err
	}
	defer tap.Close()

	_, upErr := d.Client.Upload(context.Background(), conn, "txn-mitm", "k", []byte("genuine"))
	stored, getErr := d.Store.Get("k")
	tamperedStored := getErr == nil && bytes.Contains(stored.Data, []byte("TAMPERED"))
	clientFooled := upErr == nil
	succeeded := tamperedStored || clientFooled
	detail := fmt.Sprintf("client error=%v, tampered data stored=%v — the NRO signature over the data hash exposes the rewrite", upErr != nil, tamperedStored)
	return Outcome{Attack: MITM, Target: "TPNR", Succeeded: succeeded, Detail: detail}, nil
}

// mitmNaive: the same rewrite, with the MD5 recomputed (nothing stops
// the attacker). Goal identical.
func mitmNaive() (Outcome, error) {
	env, err := naiveDeployEnv()
	if err != nil {
		return Outcome{}, err
	}
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir != transport.ClientToServer {
			return msg, true
		}
		out, _ := RewriteNaivePut(msg, func(b []byte) []byte {
			return append([]byte("TAMPERED:"), b...)
		})
		return out, true
	}
	conn, tap, err := transport.Spliced(func() (transport.Conn, error) { return env.net.Dial("naive") }, ic)
	if err != nil {
		return Outcome{}, err
	}
	defer tap.Close()

	req := NaivePut(env.user, env.token, "k", []byte("genuine"))
	if err := conn.Send(req.Encode()); err != nil {
		return Outcome{}, err
	}
	resp, err := conn.Recv()
	if err != nil {
		return Outcome{}, err
	}
	// The naive client cannot detect the rewrite: the response's MD5 is
	// the attacker's recomputed one; only a byte-for-byte comparison
	// against the sent MD5 would notice, and the attacker can rewrite
	// the response too. Here the server stored tampered data.
	stored, getErr := env.server.Store().Get("k")
	tamperedStored := getErr == nil && bytes.Contains(stored.Data, []byte("TAMPERED"))
	m, _ := DecodeNaive(resp)
	detail := fmt.Sprintf("server answered %q; tampered data stored=%v — bare MD5 authenticates nothing", m.Op, tamperedStored)
	return Outcome{Attack: MITM, Target: "naive", Succeeded: tamperedStored, Detail: detail}, nil
}

// --- §5.2 reflection ---------------------------------------------------

// reflectionTPNR: the attacker echoes the client's own message back as
// the "response". Goal: make the client accept it.
func reflectionTPNR() (Outcome, error) {
	d, err := tpnrDeploy(0)
	if err != nil {
		return Outcome{}, err
	}
	defer d.Close()
	var tapRef *transport.Tap
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir == transport.ClientToServer {
			// Swallow the message and reflect it to the sender.
			tapRef.Inject(transport.ServerToClient, msg)
			return nil, false
		}
		return msg, true
	}
	conn, tap, err := transport.Spliced(d.DialProvider, ic)
	if err != nil {
		return Outcome{}, err
	}
	tapRef = tap
	defer tap.Close()

	_, upErr := d.Client.Upload(context.Background(), conn, "txn-refl", "k", []byte("v"))
	// Success for the attacker = the client accepted its own message as
	// a receipt (upErr == nil). TPNR rejects: the reflected header
	// names Bob as recipient and Alice as sender.
	detail := fmt.Sprintf("client result: %v — messages are asymmetric and carry sender/recipient IDs", upErr)
	return Outcome{Attack: Reflection, Target: "TPNR", Succeeded: upErr == nil, Detail: detail}, nil
}

// reflectionNaive: same echo. The naive client's MD5-echo check
// accepts its own request.
func reflectionNaive() (Outcome, error) {
	env, err := naiveDeployEnv()
	if err != nil {
		return Outcome{}, err
	}
	var tapRef *transport.Tap
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir == transport.ClientToServer {
			tapRef.Inject(transport.ServerToClient, msg)
			return nil, false
		}
		return msg, true
	}
	conn, tap, err := transport.Spliced(func() (transport.Conn, error) { return env.net.Dial("naive") }, ic)
	if err != nil {
		return Outcome{}, err
	}
	tapRef = tap
	defer tap.Close()

	req := NaivePut(env.user, env.token, "k", []byte("v"))
	if err := conn.Send(req.Encode()); err != nil {
		return Outcome{}, err
	}
	resp, err := conn.Recv()
	if err != nil {
		return Outcome{}, err
	}
	accepted := NaivePutAccepted(resp, req.MD5)
	_, getErr := env.server.Store().Get("k")
	detail := fmt.Sprintf("client accepted echo=%v while object stored=%v — symmetric format + MD5-echo check", accepted, getErr == nil)
	return Outcome{Attack: Reflection, Target: "naive", Succeeded: accepted && getErr != nil, Detail: detail}, nil
}

// --- §5.3 interleaving -------------------------------------------------

// interleavingTPNR: the attacker lifts the signed NRO from one session
// and splices it into a parallel session under a different transaction
// ID. Goal: get the provider to accept the transplanted message.
func interleavingTPNR() (Outcome, error) {
	d, err := tpnrDeploy(0)
	if err != nil {
		return Outcome{}, err
	}
	defer d.Close()

	// Run a legitimate upload, capturing the NRO.
	var captured []byte
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir == transport.ClientToServer && captured == nil {
			captured = append([]byte(nil), msg...)
		}
		return msg, true
	}
	conn, tap, err := transport.Spliced(d.DialProvider, ic)
	if err != nil {
		return Outcome{}, err
	}
	defer tap.Close()
	if _, err := d.Client.Upload(context.Background(), conn, "txn-session-A", "k", []byte("v")); err != nil {
		return Outcome{}, err
	}

	// Transplant: rewrite the plaintext header to a new transaction and
	// inject into a fresh session. The sealed evidence cannot be
	// re-signed, so the header/evidence binding must break.
	m, err := core.DecodeMessage(captured)
	if err != nil {
		return Outcome{}, err
	}
	h, err := m.Header()
	if err != nil {
		return Outcome{}, err
	}
	h.TxnID = "txn-session-B"
	h.Nonce = append([]byte(nil), h.Nonce...)
	h.Nonce[0] ^= 1 // fresh-looking nonce
	m.HeaderBytes = h.Encode()

	reply, _ := d.Provider.Handle(m.Encode())
	accepted := replyIsNonError(reply)
	detail := fmt.Sprintf("provider accepted transplanted NRO=%v — Sign(Plaintext) binds the transaction ID", accepted)
	return Outcome{Attack: Interleaving, Target: "TPNR", Succeeded: accepted, Detail: detail}, nil
}

// interleavingNaive: the static token lifted from one session
// authorizes arbitrary attacker messages in another. Goal: store
// attacker data under the victim's account.
func interleavingNaive() (Outcome, error) {
	env, err := naiveDeployEnv()
	if err != nil {
		return Outcome{}, err
	}
	// Victim uploads once; the attacker observes the token.
	var stolenToken string
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir == transport.ClientToServer && stolenToken == "" {
			if m, err := DecodeNaive(msg); err == nil {
				stolenToken = m.Token
			}
		}
		return msg, true
	}
	conn, tap, err := transport.Spliced(func() (transport.Conn, error) { return env.net.Dial("naive") }, ic)
	if err != nil {
		return Outcome{}, err
	}
	defer tap.Close()
	req := NaivePut(env.user, env.token, "victim-doc", []byte("victim data"))
	conn.Send(req.Encode())
	conn.Recv()

	// The attacker opens their own session with the stolen token.
	atkConn, err := env.net.Dial("naive")
	if err != nil {
		return Outcome{}, err
	}
	defer atkConn.Close()
	forged := NaivePut(env.user, stolenToken, "victim-doc", []byte("attacker data"))
	atkConn.Send(forged.Encode())
	resp, err := atkConn.Recv()
	if err != nil {
		return Outcome{}, err
	}
	m, _ := DecodeNaive(resp)
	obj, _ := env.server.Store().Get("victim-doc")
	overwritten := bytes.Equal(obj.Data, []byte("attacker data"))
	detail := fmt.Sprintf("server answered %q; victim object overwritten=%v — static bearer token has no session binding", m.Op, overwritten)
	return Outcome{Attack: Interleaving, Target: "naive", Succeeded: overwritten, Detail: detail}, nil
}

// --- §5.4 replay ---------------------------------------------------------

func replayTPNR() (Outcome, error) {
	d, err := tpnrDeploy(0)
	if err != nil {
		return Outcome{}, err
	}
	defer d.Close()
	var captured []byte
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir == transport.ClientToServer && captured == nil {
			captured = append([]byte(nil), msg...)
		}
		return msg, true
	}
	conn, tap, err := transport.Spliced(d.DialProvider, ic)
	if err != nil {
		return Outcome{}, err
	}
	defer tap.Close()
	if _, err := d.Client.Upload(context.Background(), conn, "txn-replay", "k", []byte("v")); err != nil {
		return Outcome{}, err
	}
	reply, _ := d.Provider.Handle(captured)
	accepted := replyIsNonError(reply)
	versions := versionCount(d, "k")
	detail := fmt.Sprintf("replayed NRO accepted=%v, object versions=%d — unique sequence number + nonce", accepted, versions)
	return Outcome{Attack: Replay, Target: "TPNR", Succeeded: accepted || versions > 1, Detail: detail}, nil
}

func replayNaive() (Outcome, error) {
	env, err := naiveDeployEnv()
	if err != nil {
		return Outcome{}, err
	}
	req := NaivePut(env.user, env.token, "k", []byte("v")).Encode()
	env.server.Handle(req)
	resp := env.server.Handle(req) // verbatim replay
	m, _ := DecodeNaive(resp)
	n, _ := env.server.Store().Versions("k")
	detail := fmt.Sprintf("replay answered %q, object versions=%d — nothing distinguishes the copies", m.Op, n)
	return Outcome{Attack: Replay, Target: "naive", Succeeded: n > 1, Detail: detail}, nil
}

// --- §5.5 timeliness -------------------------------------------------------

// timelinessTPNR: the attacker delays the upload past its time limit.
// Goal: have the stale message accepted (or the client hang forever).
func timelinessTPNR() (Outcome, error) {
	d, err := tpnrDeploy(60 * time.Millisecond)
	if err != nil {
		return Outcome{}, err
	}
	defer d.Close()
	ic := func(dir transport.Direction, msg []byte) ([]byte, bool) {
		if dir == transport.ClientToServer {
			time.Sleep(150 * time.Millisecond) // hold the message hostage
		}
		return msg, true
	}
	conn, tap, err := transport.Spliced(d.DialProvider, ic)
	if err != nil {
		return Outcome{}, err
	}
	defer tap.Close()

	start := time.Now()
	_, upErr := d.Client.Upload(context.Background(), conn, "txn-late", "k", []byte("v"))
	elapsed := time.Since(start)
	_, getErr := d.Store.Get("k")
	staleAccepted := getErr == nil
	hung := elapsed > 5*time.Second
	detail := fmt.Sprintf("stale message stored=%v, client returned after %v (err=%v) — time-limit field bounds acceptance and timeouts bound execution", staleAccepted, elapsed.Round(time.Millisecond), upErr != nil)
	return Outcome{Attack: Timeliness, Target: "TPNR", Succeeded: staleAccepted || hung, Detail: detail}, nil
}

func timelinessNaive() (Outcome, error) {
	env, err := naiveDeployEnv()
	if err != nil {
		return Outcome{}, err
	}
	req := NaivePut(env.user, env.token, "k", []byte("v")).Encode()
	time.Sleep(150 * time.Millisecond) // the same hostage delay
	resp := env.server.Handle(req)
	m, _ := DecodeNaive(resp)
	_, getErr := env.server.Store().Get("k")
	detail := fmt.Sprintf("delayed message answered %q, stored=%v — no deadline exists", m.Op, getErr == nil)
	return Outcome{Attack: Timeliness, Target: "naive", Succeeded: getErr == nil, Detail: detail}, nil
}

// --- storage-dwell lazy provider (DESIGN.md §14) -----------------------

// lazyProviderTPNR: the provider completes the upload honestly — signed
// NRR, root commitment and all — then discards the data and ignores
// every audit challenge. Goal: escape accountability. TPNR defeats it
// off-line: the client's journaled unanswered challenge, compacted into
// its cold archive, convicts the provider at arbitration WITHOUT anyone
// downloading a byte.
func lazyProviderTPNR() (Outcome, error) {
	dir, err := os.MkdirTemp("", "tpnr-lazy-*")
	if err != nil {
		return Outcome{}, err
	}
	defer os.RemoveAll(dir)
	cw, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
	if err != nil {
		return Outcome{}, err
	}
	defer cw.Close()
	ca, err := archive.Open(filepath.Join(dir, "archive"))
	if err != nil {
		return Outcome{}, err
	}
	defer ca.Close()
	d, err := deploy.New(deploy.Config{
		TestKeys:        true,
		ResponseTimeout: 400 * time.Millisecond,
		ClientOpts:      []core.Option{core.WithJournal(cw), core.WithArchive(ca)},
	})
	if err != nil {
		return Outcome{}, err
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		return Outcome{}, err
	}
	defer conn.Close()
	ctx := context.Background()
	const txn, key = "txn-lazy", "k"
	if _, err := d.Client.Upload(ctx, conn, txn, key, []byte("precious archive")); err != nil {
		return Outcome{}, err
	}

	// The provider turns lazy: data gone, challenges ignored.
	d.Engine.SetMisbehavior(core.Misbehavior{IgnoreAudit: true})
	_ = d.Store.Delete(key)
	_, auditErr := d.Client.AuditObject(ctx, conn, txn, 4)

	// Compact the client's evidence — NRO, NRR with its root commitment,
	// and the unanswered challenge — into the cold archive, and
	// arbitrate from the bundle alone: no produced data, no download.
	if _, err := d.Client.Checkpoint(); err != nil {
		return Outcome{}, err
	}
	cb, err := ca.Get(txn)
	if err != nil {
		return Outcome{}, err
	}
	c, err := arbitrator.CaseFromBundles(cb, nil, nil)
	if err != nil {
		return Outcome{}, err
	}
	// The dispute is heard after the challenge's journaled response
	// deadline (its header TimeLimit) lapses: silence convicts only once
	// the provider provably ran out of time to answer, so the arbitrator
	// sits a day later — the realistic dispute timeline anyway.
	arb := arbitrator.NewWithKey(d.CA.Key(), d.CA.Lookup,
		func() time.Time { return time.Now().Add(24 * time.Hour) })
	dec := arb.Decide(c)
	convicted := dec.Verdict == arbitrator.VerdictAuditFailed
	detail := fmt.Sprintf("audit err=%v, cold-case verdict=%s — the journaled unanswered challenge convicts without a download", auditErr != nil, dec.Verdict)
	return Outcome{Attack: LazyProvider, Target: "TPNR", Succeeded: auditErr == nil || !convicted, Detail: detail}, nil
}

// lazyProviderNaive: the naive server acks the put, then discards the
// blob. The client only learns on its next read — and holds nothing
// signed, so there is no one to convict.
func lazyProviderNaive() (Outcome, error) {
	env, err := naiveDeployEnv()
	if err != nil {
		return Outcome{}, err
	}
	resp := env.server.Handle(NaivePut(env.user, env.token, "k", []byte("precious")).Encode())
	m, _ := DecodeNaive(resp)
	accepted := m.Op == "ok"
	_ = env.server.Store().Delete("k")
	resp = env.server.Handle((&NaiveMsg{Op: "get", User: env.user, Token: env.token, Key: "k"}).Encode())
	gm, _ := DecodeNaive(resp)
	gone := gm.Op != "ok"
	detail := fmt.Sprintf("put answered %q, later get answered %q — no receipt, no commitment, no audit: the discard is unattributable", m.Op, gm.Op)
	return Outcome{Attack: LazyProvider, Target: "naive", Succeeded: accepted && gone, Detail: detail}, nil
}

// --- helpers -----------------------------------------------------------

// replyIsNonError decodes a provider reply and reports whether it is a
// non-error protocol message (i.e. the provider ACCEPTED the input).
func replyIsNonError(reply []byte) bool {
	if reply == nil {
		return false
	}
	m, err := core.DecodeMessage(reply)
	if err != nil {
		return false
	}
	h, err := m.Header()
	if err != nil {
		return false
	}
	return h.Kind != evidence.KindError
}

// versionCount reads the version count of a key from the deployment's
// in-memory store.
func versionCount(d *deploy.Deployment, key string) int {
	type versioned interface {
		Versions(string) (int, error)
	}
	v, ok := d.Store.(versioned)
	if !ok {
		return -1
	}
	n, err := v.Versions(key)
	if err != nil {
		return 0
	}
	return n
}
