// Package bigobject extends TPNR to the paper's actual target
// workload: "Cloud storage is only attractive to large volume (TB)
// data backup" (§6). A large object is split into chunks under a
// Merkle manifest; the manifest travels through a normal TPNR
// transaction (so its root is covered by NRO/NRR evidence), each chunk
// through its own transaction; and a downloader verifies every chunk
// against the manifest — so tampering is not just detected but
// LOCALIZED to chunk indices, and a dispute can be argued per chunk
// instead of per terabyte.
package bigobject

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/merkle"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Errors.
var (
	ErrBadManifest = errors.New("bigobject: manifest malformed or inconsistent")
	ErrTampered    = errors.New("bigobject: one or more chunks fail the manifest")
)

// DefaultChunkSize is 4 MiB, a common object-store part size.
const DefaultChunkSize = 4 << 20

// Manifest fixes a chunked object's shape and content hashes.
type Manifest struct {
	// ObjectKey is the logical object name; chunks live under it.
	ObjectKey string
	// ChunkSize is the split size (last chunk may be shorter).
	ChunkSize int
	// TotalLen is the object's byte length.
	TotalLen uint64
	// Leaves are the per-chunk Merkle leaf hashes, in order.
	Leaves []cryptoutil.Digest
	// Root is the Merkle root over Leaves; TPNR evidence covers the
	// manifest encoding, hence the root, hence every chunk.
	Root cryptoutil.Digest
}

// ManifestKey names the stored manifest object for key.
func ManifestKey(key string) string { return key + "/manifest" }

// ChunkKey names the i-th stored chunk object for key.
func ChunkKey(key string, i int) string { return fmt.Sprintf("%s/chunk/%08d", key, i) }

// Encode serializes the manifest canonically.
func (m *Manifest) Encode() []byte {
	e := wire.NewEncoder(64 + len(m.Leaves)*40)
	e.String("tpnr-manifest-v1")
	e.String(m.ObjectKey)
	e.U64(uint64(m.ChunkSize))
	e.U64(m.TotalLen)
	e.U32(uint32(len(m.Leaves)))
	for _, l := range m.Leaves {
		e.Bytes32(l.Sum)
	}
	e.Bytes32(m.Root.Sum)
	return e.Bytes()
}

// DecodeManifest reverses Encode and validates internal consistency
// (the leaves must hash to the recorded root).
func DecodeManifest(b []byte) (*Manifest, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != "tpnr-manifest-v1" {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadManifest, magic)
	}
	m := &Manifest{}
	m.ObjectKey = d.String()
	m.ChunkSize = int(d.U64())
	m.TotalLen = d.U64()
	n := d.U32()
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, d.Err())
	}
	if n == 0 || n > 1<<24 {
		return nil, fmt.Errorf("%w: %d leaves", ErrBadManifest, n)
	}
	m.Leaves = make([]cryptoutil.Digest, n)
	for i := range m.Leaves {
		m.Leaves[i] = cryptoutil.Digest{Alg: cryptoutil.SHA256, Sum: d.Bytes32()}
	}
	m.Root = cryptoutil.Digest{Alg: cryptoutil.SHA256, Sum: d.Bytes32()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if m.ChunkSize <= 0 {
		return nil, fmt.Errorf("%w: chunk size %d", ErrBadManifest, m.ChunkSize)
	}
	tree, err := merkle.FromLeaves(m.Leaves)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if !tree.Root().Equal(m.Root) {
		return nil, fmt.Errorf("%w: leaves do not hash to the recorded root", ErrBadManifest)
	}
	return m, nil
}

// BuildManifest splits data and assembles its manifest.
func BuildManifest(key string, data []byte, chunkSize int) (*Manifest, [][]byte, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	chunks := merkle.Split(data, chunkSize)
	tree, err := merkle.New(chunks)
	if err != nil {
		return nil, nil, err
	}
	m := &Manifest{
		ObjectKey: key,
		ChunkSize: chunkSize,
		TotalLen:  uint64(len(data)),
		Root:      tree.Root(),
	}
	for _, c := range chunks {
		m.Leaves = append(m.Leaves, merkle.LeafHash(c))
	}
	return m, chunks, nil
}

// UploadResult records a completed chunked upload.
type UploadResult struct {
	Manifest *Manifest
	// ManifestTxn is the TPNR transaction whose evidence covers the
	// manifest (and therefore the Merkle root).
	ManifestTxn string
	// ChunkTxns are the per-chunk transactions.
	ChunkTxns []string
	// ManifestEvidence is the provider's NRR over the manifest.
	ManifestEvidence *evidence.Evidence
}

// Upload runs the chunked upload: one TPNR transaction for the
// manifest, one per chunk. baseTxn prefixes all transaction IDs.
func Upload(ctx context.Context, client *core.Client, conn transport.Conn, baseTxn, key string, data []byte, chunkSize int) (*UploadResult, error) {
	m, chunks, err := BuildManifest(key, data, chunkSize)
	if err != nil {
		return nil, err
	}
	manifestTxn := baseTxn + "-manifest"
	up, err := client.Upload(ctx, conn, manifestTxn, ManifestKey(key), m.Encode())
	if err != nil {
		return nil, fmt.Errorf("bigobject: uploading manifest: %w", err)
	}
	res := &UploadResult{Manifest: m, ManifestTxn: manifestTxn, ManifestEvidence: up.NRR}
	for i, c := range chunks {
		txn := fmt.Sprintf("%s-chunk-%08d", baseTxn, i)
		if _, err := client.Upload(ctx, conn, txn, ChunkKey(key, i), c); err != nil {
			return nil, fmt.Errorf("bigobject: uploading chunk %d: %w", i, err)
		}
		res.ChunkTxns = append(res.ChunkTxns, txn)
	}
	return res, nil
}

// DownloadResult reports a chunked download with per-chunk verdicts.
type DownloadResult struct {
	Manifest *Manifest
	// Data is the reassembled object (only complete when BadChunks is
	// empty).
	Data []byte
	// BadChunks lists indices whose content failed the manifest — the
	// localization a whole-object digest cannot give.
	BadChunks []int
}

// Download fetches the manifest (verified through TPNR against the
// upload transaction) and every chunk (each verified against the
// manifest). It returns ErrTampered, with the full result, when any
// chunk fails.
func Download(ctx context.Context, client *core.Client, conn transport.Conn, baseTxn, key, manifestTxn string) (*DownloadResult, error) {
	mres, err := client.Download(ctx, conn, baseTxn+"-manifest", ManifestKey(key), manifestTxn)
	if err != nil {
		return nil, fmt.Errorf("bigobject: downloading manifest: %w", err)
	}
	m, err := DecodeManifest(mres.Data)
	if err != nil {
		return nil, err
	}
	if m.ObjectKey != key {
		return nil, fmt.Errorf("%w: manifest is for %q, requested %q", ErrBadManifest, m.ObjectKey, key)
	}
	res := &DownloadResult{Manifest: m}
	var buf bytes.Buffer
	for i := range m.Leaves {
		txn := fmt.Sprintf("%s-chunk-%08d", baseTxn, i)
		cres, err := client.Download(ctx, conn, txn, ChunkKey(key, i), "")
		switch {
		case errors.Is(err, core.ErrIntegrity):
			// The provider served bytes that contradict its own earlier
			// receipt; definitely bad.
			res.BadChunks = append(res.BadChunks, i)
			continue
		case err != nil:
			return nil, fmt.Errorf("bigobject: downloading chunk %d: %w", i, err)
		}
		if !merkle.LeafHash(cres.Data).Equal(m.Leaves[i]) {
			res.BadChunks = append(res.BadChunks, i)
			continue
		}
		buf.Write(cres.Data)
	}
	res.Data = buf.Bytes()
	if len(res.BadChunks) > 0 {
		return res, fmt.Errorf("%w: chunks %v", ErrTampered, res.BadChunks)
	}
	if uint64(len(res.Data)) != m.TotalLen {
		return res, fmt.Errorf("%w: reassembled %d bytes, manifest says %d", ErrBadManifest, len(res.Data), m.TotalLen)
	}
	return res, nil
}
