package bigobject_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bigobject"
	"repro/internal/deploy"
	"repro/internal/storage"
	"repro/internal/transport"
)

func newDeploy(t *testing.T) (*deploy.Deployment, transport.Conn) {
	t.Helper()
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return d, conn
}

func testData(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + i>>8)
	}
	return data
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	d, conn := newDeploy(t)
	data := testData(10_000)
	up, err := bigobject.Upload(context.Background(), d.Client, conn, "big-1", "backups/tb", data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(up.ChunkTxns), 10; got != want {
		t.Fatalf("chunk transactions = %d, want %d", got, want)
	}
	if up.Manifest.TotalLen != 10_000 || len(up.Manifest.Leaves) != 10 {
		t.Fatalf("manifest: %+v", up.Manifest)
	}

	down, err := bigobject.Download(context.Background(), d.Client, conn, "big-1-dl", "backups/tb", up.ManifestTxn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(down.Data, data) {
		t.Fatal("reassembled data differs")
	}
	if len(down.BadChunks) != 0 {
		t.Fatalf("clean download reported bad chunks %v", down.BadChunks)
	}
}

// TestTamperLocalization is the feature's reason to exist: tamper two
// specific chunks in storage (metadata fixed) and the download names
// exactly those indices.
func TestTamperLocalization(t *testing.T) {
	d, conn := newDeploy(t)
	data := testData(8192)
	up, err := bigobject.Upload(context.Background(), d.Client, conn, "big-2", "backups/db", data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tam := d.Store.(storage.Tamperer)
	for _, i := range []int{2, 5} {
		if err := tam.Tamper(bigobject.ChunkKey("backups/db", i), true, func(b []byte) []byte {
			b[0] ^= 0xFF
			return b
		}); err != nil {
			t.Fatal(err)
		}
	}
	down, err := bigobject.Download(context.Background(), d.Client, conn, "big-2-dl", "backups/db", up.ManifestTxn)
	if !errors.Is(err, bigobject.ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
	if len(down.BadChunks) != 2 || down.BadChunks[0] != 2 || down.BadChunks[1] != 5 {
		t.Fatalf("BadChunks = %v, want [2 5]", down.BadChunks)
	}
}

// TestManifestTamperDetected: rewriting the manifest itself cannot
// help the provider — the manifest's own TPNR evidence catches it.
func TestManifestTamperDetected(t *testing.T) {
	d, conn := newDeploy(t)
	data := testData(4096)
	up, err := bigobject.Upload(context.Background(), d.Client, conn, "big-3", "backups/m", data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// The provider substitutes a self-consistent manifest for different
	// content (leaves and root recomputed, platform MD5 fixed).
	forged, _, err := bigobject.BuildManifest("backups/m", []byte("substituted content"), 1024)
	if err != nil {
		t.Fatal(err)
	}
	tam := d.Store.(storage.Tamperer)
	if err := tam.Tamper(bigobject.ManifestKey("backups/m"), true, func([]byte) []byte {
		return forged.Encode()
	}); err != nil {
		t.Fatal(err)
	}
	_, err = bigobject.Download(context.Background(), d.Client, conn, "big-3-dl", "backups/m", up.ManifestTxn)
	if err == nil {
		t.Fatal("forged manifest accepted")
	}
}

func TestManifestEncodeDecodeRoundTrip(t *testing.T) {
	m, _, err := bigobject.BuildManifest("k", testData(5000), 512)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bigobject.DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ObjectKey != "k" || got.TotalLen != 5000 || got.ChunkSize != 512 ||
		len(got.Leaves) != len(m.Leaves) || !got.Root.Equal(m.Root) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestDecodeManifestRejectsInconsistent(t *testing.T) {
	m, _, err := bigobject.BuildManifest("k", testData(3000), 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate one leaf: the root check must fail.
	m.Leaves[1].Sum[0] ^= 1
	if _, err := bigobject.DecodeManifest(m.Encode()); !errors.Is(err, bigobject.ErrBadManifest) {
		t.Fatalf("err = %v, want ErrBadManifest", err)
	}
	if _, err := bigobject.DecodeManifest([]byte("junk")); !errors.Is(err, bigobject.ErrBadManifest) {
		t.Fatalf("junk: %v", err)
	}
}

func TestChunkKeys(t *testing.T) {
	if bigobject.ManifestKey("a/b") != "a/b/manifest" {
		t.Error("ManifestKey")
	}
	if bigobject.ChunkKey("a/b", 7) != "a/b/chunk/00000007" {
		t.Errorf("ChunkKey = %q", bigobject.ChunkKey("a/b", 7))
	}
}

func TestSingleChunkObject(t *testing.T) {
	d, conn := newDeploy(t)
	data := []byte("small")
	up, err := bigobject.Upload(context.Background(), d.Client, conn, "big-4", "small", data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(up.ChunkTxns) != 1 {
		t.Fatalf("chunks = %d", len(up.ChunkTxns))
	}
	down, err := bigobject.Download(context.Background(), d.Client, conn, "big-4-dl", "small", up.ManifestTxn)
	if err != nil || !bytes.Equal(down.Data, data) {
		t.Fatalf("download: %q, %v", down.Data, err)
	}
}
