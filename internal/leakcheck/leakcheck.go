// Package leakcheck fails a test that leaves goroutines behind. The
// resilience layer is made of background loops — per-connection
// serving goroutines, pipeline workers, the expiry reaper, pump
// readers — and every one of them has a documented stop condition;
// this helper makes "did it actually stop" an assertion instead of a
// hope. Usage:
//
//	func TestServer(t *testing.T) {
//		defer leakcheck.Check(t)()
//		...
//	}
//
// or leakcheck.At(t) as a t.Cleanup variant.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// settleTimeout bounds how long Check waits for goroutine counts to
// fall back to the baseline. Goroutines legitimately take a moment to
// unwind after Close/Shutdown returns (deferred cleanups, channel
// drains), so the check polls instead of snapshotting once.
const settleTimeout = 2 * time.Second

// Check snapshots the goroutine count and returns a function that
// fails t if, after settleTimeout, more goroutines are running than at
// the snapshot. The returned func is designed for defer.
func Check(t testing.TB) func() {
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(settleTimeout)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutines before test, %d after:\n%s",
			before, now, stacks())
	}
}

// At registers Check as a t.Cleanup, for tests that prefer not to
// manage the defer themselves.
func At(t testing.TB) {
	t.Cleanup(Check(t))
}

// stacks dumps every goroutine's stack, trimmed to keep test output
// readable: the testing machinery's own goroutines are expected and
// filtered out.
func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var keep []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "testing.(*T).Run") ||
			strings.Contains(g, "testing.Main") ||
			strings.Contains(g, "runtime.goexit") && strings.Count(g, "\n") <= 2 ||
			strings.Contains(g, "leakcheck.stacks") {
			continue
		}
		keep = append(keep, g)
	}
	if len(keep) == 0 {
		return "(only runtime/testing goroutines remain)"
	}
	return fmt.Sprintf("%d suspect goroutines:\n%s", len(keep), strings.Join(keep, "\n\n"))
}
