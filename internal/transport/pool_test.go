package transport

import (
	"bytes"
	"sync"
	"testing"
)

func TestGrabRecycleClasses(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 4096, 1 << 20, 4 << 20, (4 << 20) + 1} {
		b := grab(n)
		if len(b) != n {
			t.Fatalf("grab(%d) len = %d", n, len(b))
		}
		Recycle(b)
	}
	// Foreign buffers (odd capacities) must be silently dropped.
	Recycle(make([]byte, 0, 777))
	Recycle(nil)
}

func TestPipeSendCopies(t *testing.T) {
	a, b := Pipe(4)
	msg := []byte("original payload")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	// The Conn contract: Send copied, so the sender may scribble.
	for i := range msg {
		msg[i] = 'X'
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("original payload")) {
		t.Fatalf("received %q, want the pre-scribble payload", got)
	}
	Recycle(got)
	a.Close()
}

// TestPipeConcurrentRecycle hammers send/recv/recycle from both ends
// under -race: pooled buffers must never be visible to two owners.
func TestPipeConcurrentRecycle(t *testing.T) {
	a, b := Pipe(16)
	const msgs = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		payload := bytes.Repeat([]byte("m"), 1024)
		for i := 0; i < msgs; i++ {
			payload[0] = byte(i)
			if err := a.Send(payload); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			got, err := b.Recv()
			if err != nil {
				t.Errorf("Recv: %v", err)
				return
			}
			if len(got) != 1024 || got[0] != byte(i) {
				t.Errorf("msg %d: len %d first byte %d", i, len(got), got[0])
				return
			}
			Recycle(got)
		}
	}()
	wg.Wait()
	a.Close()
}
