package transport

import "sync"

// Message buffers are pooled by size class so the per-message copy in
// the in-memory pipe and the frame assembly in the TCP transport reuse
// memory instead of allocating per message.
//
// Ownership rules (see Conn for the caller-facing contract):
//   - grab(n) hands out a buffer of length n whose ownership transfers
//     to the caller.
//   - Recycle(buf) gives a buffer back. It is OPTIONAL — a buffer that
//     is never recycled is ordinary garbage — but a buffer must not be
//     used after recycling, and must not be recycled twice.
//
// Classes are powers of two from 512 B to 4 MiB; requests past the top
// class fall through to plain make and Recycle drops them (pooling
// rare huge buffers would pin their memory forever).
const (
	poolMinClass = 9  // 512 B
	poolMaxClass = 22 // 4 MiB
)

var bufPools [poolMaxClass - poolMinClass + 1]sync.Pool

// boxPool recycles the *[]byte headers that carry buffers through
// bufPools. Without it every Recycle would heap-allocate a fresh box
// for the slice header, costing one allocation per message on the
// very path the pools exist to keep allocation-free; with it the
// boxes circulate alongside the buffers and the steady state is
// zero allocs per send/recv/recycle cycle.
var boxPool = sync.Pool{New: func() any { return new([]byte) }}

// classFor returns the pool index whose buffers hold n bytes, or -1
// when n is outside the pooled range.
func classFor(n int) int {
	if n > 1<<poolMaxClass {
		return -1
	}
	c := poolMinClass
	for 1<<c < n {
		c++
	}
	return c - poolMinClass
}

// grab returns a buffer of length n, pooled when possible.
func grab(n int) []byte {
	obsPoolGets.Inc()
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := bufPools[c].Get(); v != nil {
		box := v.(*[]byte)
		buf := (*box)[:n]
		*box = nil
		boxPool.Put(box)
		return buf
	}
	return make([]byte, n, 1<<(c+poolMinClass))
}

// Recycle returns a message buffer obtained from Conn.Recv (or any
// pool-backed API documenting Recycle) for reuse. Optional; safe to
// call with buffers of any origin (foreign sizes are simply dropped).
// The caller must not touch buf afterwards.
func Recycle(buf []byte) {
	c := cap(buf)
	if c < 1<<poolMinClass || c > 1<<poolMaxClass || c&(c-1) != 0 {
		// Not one of ours (wrong size class); let the GC have it rather
		// than poison a pool with odd capacities.
		return
	}
	box := boxPool.Get().(*[]byte)
	*box = buf[:0]
	bufPools[classFor(c)].Put(box)
	obsPoolPuts.Inc()
}
