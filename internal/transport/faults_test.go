package transport

import (
	"bytes"
	"sync"
	"testing"
)

func TestFaultyStatsCounting(t *testing.T) {
	a, b := Pipe(0)
	defer b.Close()
	f := Faulty(a, FaultSpec{DropProb: 0.5, DupProb: 0.3, Seed: 42})
	const n = 200
	for i := 0; i < n; i++ {
		if err := f.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	delivered := 0
	for {
		if _, err := b.Recv(); err != nil {
			break
		}
		delivered++
	}
	st := f.Stats()
	if st.Sent+st.Dropped != n {
		t.Fatalf("Sent %d + Dropped %d != %d sends", st.Sent, st.Dropped, n)
	}
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Fatalf("DropProb/DupProb produced no events: %+v", st)
	}
	if want := st.Sent + st.Duplicated; delivered != want {
		t.Fatalf("delivered %d messages, stats say %d", delivered, want)
	}
}

func TestFaultyCorruptsSingleBit(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()
	f := Faulty(a, FaultSpec{CorruptProb: 1.0, Seed: 9})
	orig := bytes.Repeat([]byte{0xAA}, 32)
	sent := append([]byte(nil), orig...)
	if err := f.Send(sent); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sent, orig) {
		t.Fatal("corruption mutated the caller's buffer")
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	diffBits := 0
	for i := range got {
		x := got[i] ^ orig[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corrupted delivery differs by %d bits, want exactly 1", diffBits)
	}
	if f.Stats().Corrupted != 1 {
		t.Fatalf("Stats().Corrupted = %d, want 1", f.Stats().Corrupted)
	}
}

func TestFaultyCorruptionDeterministic(t *testing.T) {
	deliver := func() []byte {
		a, b := Pipe(0)
		defer a.Close()
		defer b.Close()
		f := Faulty(a, FaultSpec{CorruptProb: 1.0, Seed: 77})
		f.Send(bytes.Repeat([]byte{0x55}, 64))
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if !bytes.Equal(deliver(), deliver()) {
		t.Fatal("same seed flipped different bits")
	}
}

// TestFaultyConnConcurrentSenders drives many goroutines through one
// FaultyConn's Send path (with concurrent Stats readers and a runtime
// Partition toggle) and checks the fault accounting still balances.
// The rng and counters share the conn's mutex; this test is the -race
// regression guard for that invariant — run it under `go test -race`.
func TestFaultyConnConcurrentSenders(t *testing.T) {
	a, b := Pipe(1024)
	defer b.Close()
	part := &Partition{}
	f := Faulty(a, FaultSpec{DropProb: 0.2, DupProb: 0.2, Seed: 1, Partition: part})

	const senders = 8
	const perSender = 100
	delivered := 0
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
			delivered++
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := f.Send([]byte{byte(g), byte(i)}); err != nil {
					t.Errorf("sender %d: %v", g, err)
					return
				}
				if i%10 == 0 {
					_ = f.Stats() // concurrent snapshot reads race the senders
				}
			}
		}(g)
	}
	// Flap the partition while sends are in flight: Engage/Heal are
	// lock-free and must stay safe against the locked Send path.
	flapDone := make(chan struct{})
	go func() {
		defer close(flapDone)
		for i := 0; i < 50; i++ {
			part.Engage()
			part.Heal()
		}
	}()
	wg.Wait()
	<-flapDone
	a.Close()
	<-drained

	st := f.Stats()
	total := senders * perSender
	if st.Sent+st.Dropped+st.Blackholed != total {
		t.Fatalf("Sent %d + Dropped %d + Blackholed %d != %d sends",
			st.Sent, st.Dropped, st.Blackholed, total)
	}
	if want := st.Sent + st.Duplicated; delivered != want {
		t.Fatalf("delivered %d messages, stats say %d", delivered, want)
	}
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Fatalf("DropProb/DupProb produced no events under concurrency: %+v", st)
	}
}

func TestPartitionTogglesAtRuntime(t *testing.T) {
	a, b := Pipe(4)
	defer a.Close()
	defer b.Close()
	part := &Partition{}
	f := Faulty(a, FaultSpec{Partition: part})

	if err := f.Send([]byte("before")); err != nil {
		t.Fatal(err)
	}
	part.Engage()
	if !part.Engaged() {
		t.Fatal("Engaged() false after Engage")
	}
	if err := f.Send([]byte("during")); err != nil {
		t.Fatal(err) // blackholed, not an error: the sender cannot tell
	}
	part.Heal()
	if err := f.Send([]byte("after")); err != nil {
		t.Fatal(err)
	}

	got1, err := b.Recv()
	if err != nil || string(got1) != "before" {
		t.Fatalf("first delivery = %q, %v", got1, err)
	}
	got2, err := b.Recv()
	if err != nil || string(got2) != "after" {
		t.Fatalf("second delivery = %q, %v (partitioned message leaked?)", got2, err)
	}
	st := f.Stats()
	if st.Blackholed != 1 || st.Sent != 2 {
		t.Fatalf("stats = %+v, want Blackholed 1, Sent 2", st)
	}
}
