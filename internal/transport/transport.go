// Package transport provides the message channels the protocol engines
// run over: an in-memory duplex pipe and named network for tests and
// experiments, a TCP transport for the real daemons, a fault-injection
// wrapper (drop/delay/duplicate) standing in for an unreliable
// Internet, and an interceptor wrapper that gives the attack package a
// programmable man-in-the-middle position.
//
// The paper assumes SSL-protected channels per session (§2); here the
// channel is a plain ordered message pipe, and the §5 adversaries are
// modeled explicitly by Intercept — which is strictly stronger than
// assuming TLS, since the experiments let the attacker read and rewrite
// traffic and then show the protocol's evidence layer still holds.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned from operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is an ordered, reliable, bidirectional message channel.
// Implementations must be safe for one concurrent sender and one
// concurrent receiver.
//
// Buffer ownership:
//   - Send never retains msg past its return: the bytes are copied (or
//     fully written) before Send comes back, so the caller keeps
//     ownership and may immediately reuse or recycle the slice.
//   - Recv transfers ownership of the returned slice to the caller. It
//     stays valid indefinitely; a caller that is done with it MAY hand
//     it to Recycle to return it to the shared buffer pool (that is
//     optional — unrecycled buffers are ordinary garbage — but the
//     slice must not be used after recycling).
type Conn interface {
	// Send transmits one message. The message is copied before Send
	// returns; the caller may reuse the slice.
	Send(msg []byte) error
	// Recv blocks until a message arrives or the connection closes, in
	// which case it returns ErrClosed (or the underlying error). The
	// returned buffer is owned by the caller (see ownership rules above).
	Recv() ([]byte, error)
	// Close tears the connection down, unblocking pending Recvs on both
	// ends.
	Close() error
}

// DeadlineConn is implemented by Conns whose blocking operations can be
// bounded by an absolute deadline (TCP). Protocol engines map a
// context deadline onto the connection through this interface; the
// in-memory pipe does not implement it because in-memory waits are
// already interruptible through the engines' context-aware receive.
type DeadlineConn interface {
	Conn
	// SetDeadline bounds pending and future Send/Recv calls. The zero
	// time clears the deadline.
	SetDeadline(t time.Time) error
}

// Dialer opens a connection to a named address, honoring the context
// for cancellation while connecting. Both the in-memory Network and
// the TCP transport satisfy this shape via method values / wrappers.
type Dialer func(ctx context.Context, addr string) (Conn, error)

// pipeEnd is one direction of an in-memory duplex pipe.
type pipeEnd struct {
	in  *msgQueue
	out *msgQueue
}

// Pipe returns the two ends of an in-memory duplex connection with the
// given per-direction buffer capacity (0 means a generous default).
func Pipe(capacity int) (Conn, Conn) {
	if capacity <= 0 {
		capacity = 1024
	}
	ab := newMsgQueue(capacity)
	ba := newMsgQueue(capacity)
	return &pipeEnd{in: ba, out: ab}, &pipeEnd{in: ab, out: ba}
}

// Send copies msg into a pool-backed buffer (the Conn contract requires
// a copy — the sender may reuse its slice immediately; the receiver
// owns the copy and may Recycle it).
func (p *pipeEnd) Send(msg []byte) error {
	buf := grab(len(msg))
	copy(buf, msg)
	if err := p.out.push(buf); err != nil {
		Recycle(buf)
		return err
	}
	return nil
}
func (p *pipeEnd) Recv() ([]byte, error) { return p.in.pop() }
func (p *pipeEnd) Close() error {
	p.in.close()
	p.out.close()
	return nil
}

// msgQueue is a closable FIFO of messages.
type msgQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    [][]byte
	cap    int
	closed bool
}

func newMsgQueue(capacity int) *msgQueue {
	q := &msgQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *msgQueue) push(msg []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) >= q.cap && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.buf = append(q.buf, msg)
	q.cond.Broadcast()
	return nil
}

func (q *msgQueue) pop() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.buf) == 0 {
		return nil, ErrClosed
	}
	msg := q.buf[0]
	q.buf = q.buf[1:]
	q.cond.Broadcast()
	return msg, nil
}

func (q *msgQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks until a connection arrives or the listener closes.
	Accept() (Conn, error)
	// Close stops the listener.
	Close() error
	// Addr returns the address peers dial.
	Addr() string
}

// Network is an in-memory address space: services Listen on names like
// "bob" or "ttp", clients Dial those names. It lets whole multi-party
// protocol deployments (Alice, Bob, TTP, Arbitrator) run in one process
// deterministically.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewNetwork returns an empty in-memory network.
func NewNetwork() *Network {
	return &Network{listeners: make(map[string]*memListener)}
}

// Listen registers addr and returns its listener.
func (n *Network) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &memListener{addr: addr, backlog: make(chan Conn, 64), network: n}
	n.listeners[addr] = l
	return l, nil
}

// DialContext connects to a listening address. The in-memory dial is
// instantaneous, so the context is only consulted for prior
// cancellation; it exists to satisfy the Dialer shape.
func (n *Network) DialContext(ctx context.Context, addr string) (Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return n.Dial(addr)
}

// Dial connects to a listening address.
func (n *Network) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := Pipe(0)
	select {
	case l.backlog <- server:
		return client, nil
	default:
		client.Close()
		return nil, fmt.Errorf("transport: backlog full at %q", addr)
	}
}

func (n *Network) remove(addr string) {
	n.mu.Lock()
	delete(n.listeners, addr)
	n.mu.Unlock()
}

type memListener struct {
	addr      string
	backlog   chan Conn
	network   *Network
	closeOnce sync.Once
	closed    chan struct{}
	initOnce  sync.Once
}

func (l *memListener) closedCh() chan struct{} {
	l.initOnce.Do(func() { l.closed = make(chan struct{}) })
	return l.closed
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closedCh():
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closedCh())
		l.network.remove(l.addr)
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }
