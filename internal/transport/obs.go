package transport

import "repro/internal/obs"

// Package-level metric handles on the process default registry. The
// transport is the hottest layer in the system (every protocol message
// crosses it, and BenchmarkE10TransportPipe holds it to zero
// allocations per message), so handles resolve once at init and each
// event costs exactly one atomic add — no map lookups, no allocation.
var (
	obsPoolGets   = obs.Default().Counter("transport_pool_gets_total")
	obsPoolPuts   = obs.Default().Counter("transport_pool_puts_total")
	obsFramesSent = obs.Default().Counter("transport_frames_sent_total")
	obsFramesRecv = obs.Default().Counter("transport_frames_recv_total")
	obsBytesSent  = obs.Default().Counter("transport_bytes_sent_total")
	obsBytesRecv  = obs.Default().Counter("transport_bytes_recv_total")

	obsFaultDropped    = obs.Default().Counter("transport_fault_dropped_total")
	obsFaultDuplicated = obs.Default().Counter("transport_fault_duplicated_total")
	obsFaultCorrupted  = obs.Default().Counter("transport_fault_corrupted_total")
	obsFaultBlackholed = obs.Default().Counter("transport_fault_blackholed_total")
)
