package transport

import "sync"

// Direction labels which way an intercepted message was traveling.
type Direction int

// Directions of intercepted traffic.
const (
	ClientToServer Direction = iota
	ServerToClient
)

// String names the direction for transcripts.
func (d Direction) String() string {
	if d == ClientToServer {
		return "client→server"
	}
	return "server→client"
}

// Interceptor decides the fate of each message crossing a MITM
// position. Returning (nil, false) drops the message; returning a
// slice forwards that (possibly rewritten) message. The interceptor
// may also call Inject on the tap to originate fresh messages.
type Interceptor func(dir Direction, msg []byte) (fwd []byte, deliver bool)

// Tap is a programmable man-in-the-middle splice between two
// connections. It gives the §5 adversaries their network position: the
// attacker "can intercept all messages going between the two victims
// and inject new ones".
type Tap struct {
	client Conn // toward the client (we act as server)
	server Conn // toward the server (we act as client)

	mu          sync.Mutex
	interceptor Interceptor
	log         []TapRecord
	done        chan struct{}
	closeOnce   sync.Once
}

// TapRecord is one observed message.
type TapRecord struct {
	Dir     Direction
	Msg     []byte
	Dropped bool
	Rewrote bool
}

// NewTap splices a relay between the given client-side and server-side
// connections and starts forwarding. With a nil interceptor every
// message passes through unmodified (a passive eavesdropper).
func NewTap(clientSide, serverSide Conn, ic Interceptor) *Tap {
	t := &Tap{client: clientSide, server: serverSide, interceptor: ic, done: make(chan struct{})}
	go t.relay(ClientToServer, t.client, t.server)
	go t.relay(ServerToClient, t.server, t.client)
	return t
}

// SetInterceptor swaps the interception policy at runtime.
func (t *Tap) SetInterceptor(ic Interceptor) {
	t.mu.Lock()
	t.interceptor = ic
	t.mu.Unlock()
}

func (t *Tap) relay(dir Direction, from, to Conn) {
	for {
		msg, err := from.Recv()
		if err != nil {
			t.Close()
			return
		}
		t.mu.Lock()
		ic := t.interceptor
		t.mu.Unlock()

		fwd, deliver := msg, true
		if ic != nil {
			fwd, deliver = ic(dir, msg)
		}
		rec := TapRecord{Dir: dir, Msg: append([]byte(nil), msg...), Dropped: !deliver}
		if deliver && string(fwd) != string(msg) {
			rec.Rewrote = true
		}
		t.mu.Lock()
		t.log = append(t.log, rec)
		t.mu.Unlock()

		if deliver {
			if err := to.Send(fwd); err != nil {
				t.Close()
				return
			}
		}
	}
}

// Inject originates a message from the MITM position in the given
// direction (toward the server for ClientToServer).
func (t *Tap) Inject(dir Direction, msg []byte) error {
	if dir == ClientToServer {
		return t.server.Send(msg)
	}
	return t.client.Send(msg)
}

// Log returns a copy of every message the tap has seen so far.
func (t *Tap) Log() []TapRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TapRecord, len(t.log))
	copy(out, t.log)
	return out
}

// Close tears down both legs of the splice.
func (t *Tap) Close() {
	t.closeOnce.Do(func() {
		close(t.done)
		t.client.Close()
		t.server.Close()
	})
}

// Spliced dials target through a fresh tap: it returns the connection
// the client should use, plus the tap controlling the splice.
func Spliced(dial func() (Conn, error), ic Interceptor) (Conn, *Tap, error) {
	serverSide, err := dial()
	if err != nil {
		return nil, nil, err
	}
	clientConn, tapClientSide := Pipe(0)
	tap := NewTap(tapClientSide, serverSide, ic)
	return clientConn, tap, nil
}
