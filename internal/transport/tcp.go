package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// tcpConn adapts a net.Conn to the message-oriented Conn interface
// using wire framing.
type tcpConn struct {
	nc      net.Conn
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	closeMu sync.Once
}

// WrapNetConn frames an arbitrary net.Conn as a message Conn.
func WrapNetConn(nc net.Conn) Conn { return &tcpConn{nc: nc} }

// Send assembles header+body into one pooled buffer and issues a
// single write — one syscall (and one TCP segment boundary decision)
// per message instead of two, with no per-message allocation.
func (c *tcpConn) Send(msg []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	buf := grab(4 + len(msg))
	frame, err := wire.AppendFrame(buf[:0], msg)
	if err != nil {
		Recycle(buf)
		return err
	}
	n, err := c.nc.Write(frame)
	Recycle(frame)
	if err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	obsFramesSent.Inc()
	obsBytesSent.Add(int64(n))
	return nil
}

// Recv reads the frame body into a pool-backed buffer; per the Conn
// contract the caller owns it and may Recycle when done.
func (c *tcpConn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	msg, err := wire.ReadFrameInto(c.nc, grab)
	if err == nil {
		obsFramesRecv.Inc()
		obsBytesRecv.Add(int64(4 + len(msg)))
	}
	return msg, err
}

func (c *tcpConn) Close() error {
	var err error
	c.closeMu.Do(func() { err = c.nc.Close() })
	return err
}

// SetDeadline bounds pending and future Send/Recv calls; tcpConn thus
// satisfies DeadlineConn so protocol engines can map context deadlines
// onto the socket.
func (c *tcpConn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// DialTCP connects to a TCP address and frames it.
func DialTCP(addr string) (Conn, error) {
	return DialTCPContext(context.Background(), addr)
}

// DialTCPContext connects to a TCP address honoring ctx for
// cancellation and deadline while the connection is established.
func DialTCPContext(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	return WrapNetConn(nc), nil
}

// tcpListener adapts net.Listener.
type tcpListener struct{ nl net.Listener }

// ListenTCP listens on a TCP address ("127.0.0.1:0" picks a free port;
// read the actual address back with Addr).
func ListenTCP(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addr, err)
	}
	return &tcpListener{nl: nl}, nil
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return WrapNetConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }
