package transport

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
)

// FaultSpec configures a lossy, slow, duplicating link. Probabilities
// are in [0,1] and applied per message on Send.
type FaultSpec struct {
	// DropProb is the probability a sent message silently vanishes —
	// the "her request was dropped and Bob has never received" case of
	// paper §4.3 that the Resolve sub-protocol exists for.
	DropProb float64
	// DupProb is the probability a sent message is delivered twice,
	// which exercises the replay window.
	DupProb float64
	// Delay is a fixed latency added to every delivered message.
	Delay time.Duration
	// Jitter adds a uniform random extra latency in [0, Jitter).
	Jitter time.Duration
	// Seed makes the fault sequence deterministic.
	Seed int64
	// Clock provides the delay timers; nil means the real clock.
	Clock clock.Clock
}

// Faulty wraps conn so that sends experience the configured faults.
// Receives are passed through untouched; wrap both ends to make a
// bidirectional lossy link.
func Faulty(conn Conn, spec FaultSpec) Conn {
	c := spec.Clock
	if c == nil {
		c = clock.Real()
	}
	return &faultyConn{
		Conn:  conn,
		spec:  spec,
		rng:   rand.New(rand.NewSource(spec.Seed)),
		clock: c,
	}
}

type faultyConn struct {
	Conn
	spec  FaultSpec
	mu    sync.Mutex
	rng   *rand.Rand
	clock clock.Clock
}

// Stats counts what the fault layer did, for experiment reporting.
type Stats struct {
	Sent, Dropped, Duplicated int
}

func (c *faultyConn) Send(msg []byte) error {
	c.mu.Lock()
	drop := c.rng.Float64() < c.spec.DropProb
	dup := !drop && c.rng.Float64() < c.spec.DupProb
	var extra time.Duration
	if c.spec.Jitter > 0 {
		extra = time.Duration(c.rng.Int63n(int64(c.spec.Jitter)))
	}
	c.mu.Unlock()

	if drop {
		return nil // silently lost; the sender cannot tell
	}
	if d := c.spec.Delay + extra; d > 0 {
		c.clock.Sleep(d)
	}
	if err := c.Conn.Send(msg); err != nil {
		return err
	}
	if dup {
		return c.Conn.Send(msg)
	}
	return nil
}
