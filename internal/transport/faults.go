package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// Partition is a directional blackhole, toggleable at runtime: while
// engaged, every Send on a FaultyConn carrying it silently vanishes.
// Share one *Partition across several connections to cut a whole
// direction of the network at once, then Heal it mid-test.
type Partition struct {
	engaged atomic.Bool
}

// Engage starts dropping every message.
func (p *Partition) Engage() { p.engaged.Store(true) }

// Heal resumes delivery.
func (p *Partition) Heal() { p.engaged.Store(false) }

// Engaged reports whether the partition is currently dropping.
func (p *Partition) Engaged() bool { return p.engaged.Load() }

// FaultSpec configures a lossy, slow, duplicating, corrupting link.
// Probabilities are in [0,1] and applied per message on Send.
type FaultSpec struct {
	// DropProb is the probability a sent message silently vanishes —
	// the "her request was dropped and Bob has never received" case of
	// paper §4.3 that the Resolve sub-protocol exists for.
	DropProb float64
	// DupProb is the probability a sent message is delivered twice,
	// which exercises the replay window.
	DupProb float64
	// CorruptProb is the probability a sent message is delivered with a
	// single deterministic bit flip — the in-flight tampering case the
	// receiver's evidence verification must reject rather than store.
	CorruptProb float64
	// Partition, when non-nil and engaged, blackholes every send in this
	// direction regardless of the probabilities. Toggleable at runtime.
	Partition *Partition
	// Delay is a fixed latency added to every delivered message.
	Delay time.Duration
	// Jitter adds a uniform random extra latency in [0, Jitter).
	Jitter time.Duration
	// Seed makes the fault sequence deterministic.
	Seed int64
	// Clock provides the delay timers; nil means the real clock.
	Clock clock.Clock
}

// Faulty wraps conn so that sends experience the configured faults.
// Receives are passed through untouched; wrap both ends to make a
// bidirectional lossy link. The concrete *FaultyConn exposes Stats.
func Faulty(conn Conn, spec FaultSpec) *FaultyConn {
	c := spec.Clock
	if c == nil {
		c = clock.Real()
	}
	return &FaultyConn{
		Conn:  conn,
		spec:  spec,
		rng:   rand.New(rand.NewSource(spec.Seed)),
		clock: c,
	}
}

// FaultyConn is a Conn whose sends experience the faults of its
// FaultSpec, counting what it did for experiment reporting.
type FaultyConn struct {
	Conn
	spec  FaultSpec
	mu    sync.Mutex
	rng   *rand.Rand
	clock clock.Clock
	stats Stats
}

// Stats counts what the fault layer did, for experiment reporting.
type Stats struct {
	// Sent counts Send calls that reached the underlying connection
	// (duplicates count once).
	Sent int
	// Dropped counts messages lost to DropProb.
	Dropped int
	// Duplicated counts messages delivered twice.
	Duplicated int
	// Corrupted counts messages delivered with a flipped bit.
	Corrupted int
	// Blackholed counts messages swallowed by an engaged Partition.
	Blackholed int
}

// Stats returns a snapshot of the fault counters.
func (c *FaultyConn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *FaultyConn) Send(msg []byte) error {
	if p := c.spec.Partition; p != nil && p.Engaged() {
		c.mu.Lock()
		c.stats.Blackholed++
		c.mu.Unlock()
		obsFaultBlackholed.Inc()
		return nil // swallowed; the sender cannot tell
	}
	c.mu.Lock()
	drop := c.rng.Float64() < c.spec.DropProb
	dup := !drop && c.rng.Float64() < c.spec.DupProb
	corrupt := !drop && c.rng.Float64() < c.spec.CorruptProb
	var flip int
	if corrupt && len(msg) > 0 {
		flip = c.rng.Intn(len(msg) * 8)
	}
	var extra time.Duration
	if c.spec.Jitter > 0 {
		extra = time.Duration(c.rng.Int63n(int64(c.spec.Jitter)))
	}
	if drop {
		c.stats.Dropped++
		c.mu.Unlock()
		obsFaultDropped.Inc()
		return nil // silently lost; the sender cannot tell
	}
	c.stats.Sent++
	if dup {
		c.stats.Duplicated++
	}
	if corrupt && len(msg) > 0 {
		c.stats.Corrupted++
	}
	c.mu.Unlock()
	if dup {
		obsFaultDuplicated.Inc()
	}
	if corrupt && len(msg) > 0 {
		obsFaultCorrupted.Inc()
	}

	if corrupt && len(msg) > 0 {
		// Flip one bit in a copy — the caller's buffer must stay intact.
		tampered := append([]byte(nil), msg...)
		tampered[flip/8] ^= 1 << (flip % 8)
		msg = tampered
	}
	if d := c.spec.Delay + extra; d > 0 {
		c.clock.Sleep(d)
	}
	if err := c.Conn.Send(msg); err != nil {
		return err
	}
	if dup {
		return c.Conn.Send(msg)
	}
	return nil
}
