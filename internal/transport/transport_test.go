package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	// And the reverse direction.
	if err := b.Send([]byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err = a.Recv()
	if err != nil || string(got) != "world" {
		t.Fatalf("reverse: %q, %v", got, err)
	}
}

func TestPipePreservesOrder(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 100; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("message %d arrived as %d", i, got[0])
		}
	}
}

func TestPipeSendCopiesMessage(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()
	msg := []byte("original")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X'
	got, _ := b.Recv()
	if string(got) != "original" {
		t.Fatalf("message aliased sender buffer: %q", got)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe(0)
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestPipeBackpressure(t *testing.T) {
	a, b := Pipe(2)
	defer a.Close()
	defer b.Close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			if err := a.Send([]byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				break
			}
		}
		close(done)
	}()
	// Drain slowly; the sender must block rather than grow unboundedly,
	// and everything must arrive in order.
	for i := 0; i < 10; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("out of order: %d at %d", got[0], i)
		}
	}
	<-done
}

func TestNetworkDialListen(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("bob")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		msg, err := c.Recv()
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		c.Send(append([]byte("echo:"), msg...))
	}()

	c, err := n.Dial("bob")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil || string(got) != "echo:hi" {
		t.Fatalf("got %q, %v", got, err)
	}
	wg.Wait()
}

func TestNetworkErrors(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("nobody"); err == nil {
		t.Error("dial to unknown address succeeded")
	}
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Error("duplicate listen succeeded")
	}
}

func TestListenerCloseReleasesAddress(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := n.Dial("svc"); err == nil {
		t.Error("dial succeeded after listener close")
	}
	if _, err := n.Listen("svc"); err != nil {
		t.Errorf("re-listen after close: %v", err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("accept on closed listener: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			c.Send(msg)
		}
	}()

	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte("tcp"), 10000)
	if err := c.Send(payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("TCP round trip corrupted the payload")
	}
}

func TestFaultyDropsDeterministically(t *testing.T) {
	send := func(seed int64) int {
		a, b := Pipe(0)
		defer a.Close()
		defer b.Close()
		f := Faulty(a, FaultSpec{DropProb: 0.5, Seed: seed})
		for i := 0; i < 200; i++ {
			f.Send([]byte{byte(i)})
		}
		a.Close()
		n := 0
		for {
			if _, err := b.Recv(); err != nil {
				break
			}
			n++
		}
		return n
	}
	n1, n2 := send(7), send(7)
	if n1 != n2 {
		t.Fatalf("same seed delivered %d then %d messages", n1, n2)
	}
	if n1 == 0 || n1 == 200 {
		t.Fatalf("drop probability 0.5 delivered %d/200", n1)
	}
}

func TestFaultyDuplicates(t *testing.T) {
	a, b := Pipe(0)
	defer b.Close()
	f := Faulty(a, FaultSpec{DupProb: 1.0, Seed: 1})
	f.Send([]byte("once"))
	a.Close()
	count := 0
	for {
		if _, err := b.Recv(); err != nil {
			break
		}
		count++
	}
	if count != 2 {
		t.Fatalf("DupProb=1 delivered %d copies, want 2", count)
	}
}

func TestFaultyPassThrough(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()
	f := Faulty(a, FaultSpec{})
	for i := 0; i < 50; i++ {
		if err := f.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		got, err := b.Recv()
		if err != nil || got[0] != byte(i) {
			t.Fatalf("message %d: %v %v", i, got, err)
		}
	}
}

func TestTapPassiveEavesdropping(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("server")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		msg, _ := c.Recv()
		c.Send(append([]byte("re:"), msg...))
	}()

	conn, tap, err := Spliced(func() (Conn, error) { return n.Dial("server") }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	conn.Send([]byte("secret"))
	got, err := conn.Recv()
	if err != nil || string(got) != "re:secret" {
		t.Fatalf("through tap: %q, %v", got, err)
	}
	log := tap.Log()
	if len(log) != 2 {
		t.Fatalf("tap saw %d messages, want 2", len(log))
	}
	if log[0].Dir != ClientToServer || string(log[0].Msg) != "secret" {
		t.Errorf("first record: %v %q", log[0].Dir, log[0].Msg)
	}
	if log[1].Dir != ServerToClient || log[0].Dropped || log[0].Rewrote {
		t.Errorf("unexpected tap records: %+v", log)
	}
}

func TestTapRewriteAndDrop(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("server")
	received := make(chan []byte, 4)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			received <- msg
		}
	}()

	ic := func(dir Direction, msg []byte) ([]byte, bool) {
		if bytes.Equal(msg, []byte("drop-me")) {
			return nil, false
		}
		if bytes.Equal(msg, []byte("rewrite-me")) {
			return []byte("rewritten"), true
		}
		return msg, true
	}
	conn, tap, err := Spliced(func() (Conn, error) { return n.Dial("server") }, ic)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()

	conn.Send([]byte("drop-me"))
	conn.Send([]byte("rewrite-me"))
	conn.Send([]byte("plain"))

	if got := <-received; string(got) != "rewritten" {
		t.Fatalf("first delivered = %q, want rewritten", got)
	}
	if got := <-received; string(got) != "plain" {
		t.Fatalf("second delivered = %q, want plain", got)
	}
	log := tap.Log()
	if len(log) != 3 || !log[0].Dropped || !log[1].Rewrote {
		t.Fatalf("tap log: %+v", log)
	}
}

func TestTapInject(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("server")
	received := make(chan []byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		msg, err := c.Recv()
		if err == nil {
			received <- msg
		}
	}()
	conn, tap, err := Spliced(func() (Conn, error) { return n.Dial("server") }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	defer conn.Close()
	if err := tap.Inject(ClientToServer, []byte("forged")); err != nil {
		t.Fatal(err)
	}
	if got := <-received; string(got) != "forged" {
		t.Fatalf("server received %q", got)
	}
}

func TestDirectionString(t *testing.T) {
	if fmt.Sprint(ClientToServer) == fmt.Sprint(ServerToClient) {
		t.Fatal("directions stringify identically")
	}
}

// TestTCPHostileFrameHeader: a raw TCP client announcing a 4 GiB frame
// must be rejected without a giant allocation, and the listener must
// keep serving other connections.
func TestTCPHostileFrameHeader(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					c.Send(msg)
				}
			}()
		}
	}()

	// Hostile client: raw oversized header.
	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	raw.Close()

	// A well-behaved client still gets service.
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("still alive")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil || string(got) != "still alive" {
		t.Fatalf("echo after hostile client: %q, %v", got, err)
	}
}
