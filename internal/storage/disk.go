package storage

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cryptoutil"
)

// Disk is a Store persisting each object as a data file plus a JSON
// metadata sidecar under a root directory. It is what the daemons use;
// it deliberately mirrors Mem's semantics (including Tamper) minus
// version history.
type Disk struct {
	root string
	mu   sync.Mutex
	now  func() time.Time
}

// NewDisk opens (creating if needed) a disk store rooted at dir.
func NewDisk(dir string, now func() time.Time) (*Disk, error) {
	if now == nil {
		now = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating root %s: %w", dir, err)
	}
	return &Disk{root: dir, now: now}, nil
}

type diskMeta struct {
	Key      string    `json:"key"`
	MD5Hex   string    `json:"md5_hex"`
	Version  int       `json:"version"`
	StoredAt time.Time `json:"stored_at"`
}

// encodeKey makes an arbitrary key filesystem-safe.
func encodeKey(key string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(key))
}

func decodeKey(name string) (string, bool) {
	b, err := base64.RawURLEncoding.DecodeString(name)
	if err != nil {
		return "", false
	}
	return string(b), true
}

func (d *Disk) paths(key string) (dataPath, metaPath string) {
	enc := encodeKey(key)
	return filepath.Join(d.root, enc+".blob"), filepath.Join(d.root, enc+".meta")
}

// Put implements Store.
func (d *Disk) Put(key string, data []byte, wantMD5 cryptoutil.Digest) (Object, error) {
	if key == "" {
		return Object{}, ErrEmptyKey
	}
	actual := cryptoutil.Sum(cryptoutil.MD5, data)
	if !wantMD5.IsZero() && !actual.Equal(wantMD5) {
		return Object{}, fmt.Errorf("%w: key %q", ErrChecksum, key)
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	version := 1
	if old, err := d.readMetaLocked(key); err == nil {
		version = old.Version + 1
	}
	obj := Object{Key: key, Data: append([]byte(nil), data...), StoredMD5: actual, Version: version, StoredAt: d.now()}
	if err := d.writeLocked(obj); err != nil {
		return Object{}, err
	}
	return obj.Clone(), nil
}

// writeLocked persists blob and metadata via write-to-temp + rename so
// a crash mid-write can never leave a new blob paired with stale
// metadata (which would be indistinguishable from insider tampering).
func (d *Disk) writeLocked(obj Object) error {
	dataPath, metaPath := d.paths(obj.Key)
	if err := atomicWrite(dataPath, obj.Data); err != nil {
		return fmt.Errorf("storage: writing blob %q: %w", obj.Key, err)
	}
	meta := diskMeta{Key: obj.Key, MD5Hex: obj.StoredMD5.Hex(), Version: obj.Version, StoredAt: obj.StoredAt}
	raw, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("storage: encoding metadata for %q: %w", obj.Key, err)
	}
	if err := atomicWrite(metaPath, raw); err != nil {
		return fmt.Errorf("storage: writing metadata for %q: %w", obj.Key, err)
	}
	return nil
}

// atomicWrite writes data to a temp file in the same directory, syncs,
// and renames it over path.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

func (d *Disk) readMetaLocked(key string) (diskMeta, error) {
	_, metaPath := d.paths(key)
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		return diskMeta{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	var meta diskMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return diskMeta{}, fmt.Errorf("storage: corrupt metadata for %q: %w", key, err)
	}
	return meta, nil
}

// Get implements Store.
func (d *Disk) Get(key string) (Object, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, err := d.readMetaLocked(key)
	if err != nil {
		return Object{}, err
	}
	dataPath, _ := d.paths(key)
	data, err := os.ReadFile(dataPath)
	if err != nil {
		return Object{}, fmt.Errorf("%w: %q (blob missing)", ErrNotFound, key)
	}
	md5d, err := cryptoutil.ParseDigest("md5:" + meta.MD5Hex)
	if err != nil {
		return Object{}, fmt.Errorf("storage: corrupt digest for %q: %w", key, err)
	}
	return Object{Key: key, Data: data, StoredMD5: md5d, Version: meta.Version, StoredAt: meta.StoredAt}, nil
}

// Delete implements Store.
func (d *Disk) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	dataPath, metaPath := d.paths(key)
	if _, err := os.Stat(metaPath); err != nil {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err := os.Remove(dataPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: deleting blob %q: %w", key, err)
	}
	if err := os.Remove(metaPath); err != nil {
		return fmt.Errorf("storage: deleting metadata %q: %w", key, err)
	}
	return nil
}

// Keys implements Store.
func (d *Disk) Keys() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".meta") {
			continue
		}
		if key, ok := decodeKey(strings.TrimSuffix(name, ".meta")); ok {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// Tamper implements Tamperer.
func (d *Disk) Tamper(key string, fixDigest bool, mutate func([]byte) []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, err := d.readMetaLocked(key)
	if err != nil {
		return err
	}
	dataPath, _ := d.paths(key)
	data, err := os.ReadFile(dataPath)
	if err != nil {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	data = mutate(data)
	md5d, err := cryptoutil.ParseDigest("md5:" + meta.MD5Hex)
	if err != nil {
		return fmt.Errorf("storage: corrupt digest for %q: %w", key, err)
	}
	if fixDigest {
		md5d = cryptoutil.Sum(cryptoutil.MD5, data)
	}
	obj := Object{Key: key, Data: data, StoredMD5: md5d, Version: meta.Version + 1, StoredAt: d.now()}
	return d.writeLocked(obj)
}
