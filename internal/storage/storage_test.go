package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cryptoutil"
)

// stores returns every Store implementation under test, so the same
// behaviours are checked across Mem and Disk.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMem(nil),
		"disk": disk,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("company financial data")
			put, err := s.Put("finance/q3.xls", data, cryptoutil.Digest{})
			if err != nil {
				t.Fatal(err)
			}
			if put.Version != 1 {
				t.Errorf("first Put version = %d", put.Version)
			}
			got, err := s.Get("finance/q3.xls")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Data, data) {
				t.Error("data round trip mismatch")
			}
			if !got.StoredMD5.Equal(cryptoutil.Sum(cryptoutil.MD5, data)) {
				t.Error("stored MD5 wrong")
			}
		})
	}
}

func TestPutChecksumValidation(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("payload")
			right := cryptoutil.Sum(cryptoutil.MD5, data)
			if _, err := s.Put("k", data, right); err != nil {
				t.Fatalf("matching MD5 rejected: %v", err)
			}
			wrong := cryptoutil.Sum(cryptoutil.MD5, []byte("other"))
			if _, err := s.Put("k2", data, wrong); !errors.Is(err, ErrChecksum) {
				t.Fatalf("mismatched MD5: err = %v, want ErrChecksum", err)
			}
		})
	}
}

func TestPutEmptyKey(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Put("", []byte("x"), cryptoutil.Digest{}); !errors.Is(err, ErrEmptyKey) {
				t.Fatalf("err = %v, want ErrEmptyKey", err)
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Put("k", []byte("x"), cryptoutil.Digest{}); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("k"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("get after delete: %v", err)
			}
			if err := s.Delete("k"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete: %v", err)
			}
		})
	}
}

func TestKeysSorted(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []string{"zeta", "alpha", "mid/dle"} {
				if _, err := s.Put(k, []byte(k), cryptoutil.Digest{}); err != nil {
					t.Fatal(err)
				}
			}
			got := s.Keys()
			want := []string{"alpha", "mid/dle", "zeta"}
			if len(got) != len(want) {
				t.Fatalf("Keys = %v", got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Keys = %v, want %v", got, want)
				}
			}
		})
	}
}

func TestOverwriteBumpsVersion(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Put("k", []byte("v1"), cryptoutil.Digest{}); err != nil {
				t.Fatal(err)
			}
			obj, err := s.Put("k", []byte("v2"), cryptoutil.Digest{})
			if err != nil {
				t.Fatal(err)
			}
			if obj.Version != 2 {
				t.Fatalf("version after overwrite = %d", obj.Version)
			}
		})
	}
}

// TestTamperWithoutDigestFix models the clumsy insider: data changes
// but the database MD5 goes stale, so a digest check WOULD catch it.
func TestTamperWithoutDigestFix(t *testing.T) {
	for name, s := range stores(t) {
		tam, ok := s.(Tamperer)
		if !ok {
			t.Fatalf("%s does not implement Tamperer", name)
		}
		t.Run(name, func(t *testing.T) {
			orig := []byte("ledger: 1000")
			if _, err := s.Put("ledger", orig, cryptoutil.Digest{}); err != nil {
				t.Fatal(err)
			}
			if err := tam.Tamper("ledger", false, func(b []byte) []byte {
				return bytes.Replace(b, []byte("1000"), []byte("9999"), 1)
			}); err != nil {
				t.Fatal(err)
			}
			obj, err := s.Get("ledger")
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(obj.Data, orig) {
				t.Fatal("tamper did not change data")
			}
			if obj.StoredMD5.Equal(obj.ComputedMD5()) {
				t.Fatal("stored digest should be stale after fixDigest=false")
			}
		})
	}
}

// TestTamperWithDigestFix models the careful insider: both data and
// metadata change, so no platform-side check can ever notice — the E5
// vulnerability.
func TestTamperWithDigestFix(t *testing.T) {
	for name, s := range stores(t) {
		tam := s.(Tamperer)
		t.Run(name, func(t *testing.T) {
			if _, err := s.Put("ledger", []byte("ledger: 1000"), cryptoutil.Digest{}); err != nil {
				t.Fatal(err)
			}
			if err := tam.Tamper("ledger", true, func(b []byte) []byte {
				return append(b, []byte(" [adjusted]")...)
			}); err != nil {
				t.Fatal(err)
			}
			obj, err := s.Get("ledger")
			if err != nil {
				t.Fatal(err)
			}
			if !obj.StoredMD5.Equal(obj.ComputedMD5()) {
				t.Fatal("fixDigest=true must leave metadata consistent")
			}
		})
	}
}

func TestTamperMissingKey(t *testing.T) {
	for name, s := range stores(t) {
		tam := s.(Tamperer)
		t.Run(name, func(t *testing.T) {
			err := tam.Tamper("ghost", true, func(b []byte) []byte { return b })
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestMemVersionHistory(t *testing.T) {
	now := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	m := NewMem(func() time.Time { return now })
	m.Put("k", []byte("v1"), cryptoutil.Digest{})
	m.Put("k", []byte("v2"), cryptoutil.Digest{})
	m.Tamper("k", true, func(b []byte) []byte { return []byte("v3-tampered") })

	n, err := m.Versions("k")
	if err != nil || n != 3 {
		t.Fatalf("Versions = %d, %v", n, err)
	}
	v1, err := m.GetVersion("k", 1)
	if err != nil || string(v1.Data) != "v1" {
		t.Fatalf("v1 = %q, %v", v1.Data, err)
	}
	v3, err := m.GetVersion("k", 3)
	if err != nil || string(v3.Data) != "v3-tampered" {
		t.Fatalf("v3 = %q, %v", v3.Data, err)
	}
	if _, err := m.GetVersion("k", 4); !errors.Is(err, ErrNoSuchVersion) {
		t.Fatalf("v4: %v", err)
	}
	if _, err := m.GetVersion("ghost", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost: %v", err)
	}
	if _, err := m.Versions("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost versions: %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("k", []byte("immutable"), cryptoutil.Digest{})
			a, _ := s.Get("k")
			a.Data[0] = 'X'
			b, _ := s.Get("k")
			if string(b.Data) != "immutable" {
				t.Fatal("Get result aliases store memory")
			}
		})
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.Put("persist/me", []byte("durable"), cryptoutil.Digest{}); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get("persist/me")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "durable" {
		t.Fatalf("reopened store returned %q", got.Data)
	}
	keys := d2.Keys()
	if len(keys) != 1 || keys[0] != "persist/me" {
		t.Fatalf("Keys after reopen = %v", keys)
	}
}

func TestMemPutGetQuick(t *testing.T) {
	m := NewMem(nil)
	f := func(key string, data []byte) bool {
		if key == "" {
			key = "k"
		}
		if _, err := m.Put(key, data, cryptoutil.Digest{}); err != nil {
			return false
		}
		got, err := m.Get(key)
		return err == nil && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
