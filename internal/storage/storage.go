// Package storage is the blob-store substrate under the cloud platform
// simulators. It stores objects with their upload-time MD5 metadata
// (the way Azure keeps the Content-MD5 "in the database", paper §2.4),
// supports version history, and — crucially for experiment E5 — exposes
// an administrative Tamper interface modeling the provider's power:
// "As the administrator of the storage service, Eve has the capability
// to play with the data in hand" (§2.4).
//
// Two implementations are provided: an in-memory store for tests and
// experiments, and a disk-backed store for the daemons.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cryptoutil"
)

// Store errors.
var (
	ErrNotFound      = errors.New("storage: object not found")
	ErrChecksum      = errors.New("storage: content digest mismatch")
	ErrEmptyKey      = errors.New("storage: empty object key")
	ErrNoSuchVersion = errors.New("storage: no such version")
)

// Object is a stored blob together with its metadata.
type Object struct {
	// Key is the object name.
	Key string
	// Data is the blob content.
	Data []byte
	// StoredMD5 is the digest recorded at upload time. This is the
	// platform's database copy — tampering with Data does NOT update it
	// unless the tamperer chooses to (that asymmetry is the §2.4 gap).
	StoredMD5 cryptoutil.Digest
	// Version is 1 for the first write of a key and increments per
	// overwrite or tamper.
	Version int
	// StoredAt is the server-side write time.
	StoredAt time.Time
}

// Clone deep-copies the object so callers cannot mutate store state.
func (o Object) Clone() Object {
	o.Data = append([]byte(nil), o.Data...)
	o.StoredMD5 = o.StoredMD5.Clone()
	return o
}

// ComputedMD5 recomputes the digest of the current content — what AWS
// does when it returns "the MD5 of the bytes" after a load (§2.1).
func (o Object) ComputedMD5() cryptoutil.Digest {
	return cryptoutil.Sum(cryptoutil.MD5, o.Data)
}

// Store is the minimal blob API the platform simulators build on.
type Store interface {
	// Put writes data under key. If wantMD5 is non-zero the store
	// verifies it against the content before accepting (the Azure
	// behaviour: "The MD5 checksum is checked by the server. If it does
	// not match, an error is returned", §2.2).
	Put(key string, data []byte, wantMD5 cryptoutil.Digest) (Object, error)
	// Get returns the current version of key.
	Get(key string) (Object, error)
	// Delete removes key. Deleting a missing key returns ErrNotFound.
	Delete(key string) error
	// Keys lists all object keys in sorted order.
	Keys() []string
}

// Tamperer is the provider-side capability: mutate stored bytes and
// choose whether the metadata digest is fixed up to match. A tamper
// that fixes the digest is undetectable by any per-session check and
// is exactly the E5 attack.
type Tamperer interface {
	// Tamper applies mutate to the stored content of key. If fixDigest
	// is true, StoredMD5 is recomputed to match the new content
	// (insider covering their tracks); otherwise the stale digest is
	// left in place.
	Tamper(key string, fixDigest bool, mutate func([]byte) []byte) error
}

// Versioned stores keep history.
type Versioned interface {
	// GetVersion returns a historical version (1-based).
	GetVersion(key string, version int) (Object, error)
	// Versions returns the number of versions of key.
	Versions(key string) (int, error)
}

// Mem is an in-memory Store with version history and tampering.
// The zero value is not usable; construct with NewMem.
type Mem struct {
	mu      sync.RWMutex
	objects map[string][]Object // version history, oldest first
	now     func() time.Time
}

// NewMem returns an empty in-memory store stamping writes with now
// (nil means time.Now).
func NewMem(now func() time.Time) *Mem {
	if now == nil {
		now = time.Now
	}
	return &Mem{objects: make(map[string][]Object), now: now}
}

// Put implements Store.
func (m *Mem) Put(key string, data []byte, wantMD5 cryptoutil.Digest) (Object, error) {
	if key == "" {
		return Object{}, ErrEmptyKey
	}
	actual := cryptoutil.Sum(cryptoutil.MD5, data)
	if !wantMD5.IsZero() && !actual.Equal(wantMD5) {
		return Object{}, fmt.Errorf("%w: key %q: got %s, declared %s", ErrChecksum, key, actual, wantMD5)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	obj := Object{
		Key:       key,
		Data:      append([]byte(nil), data...),
		StoredMD5: actual,
		Version:   len(m.objects[key]) + 1,
		StoredAt:  m.now(),
	}
	m.objects[key] = append(m.objects[key], obj)
	return obj.Clone(), nil
}

// Get implements Store.
func (m *Mem) Get(key string) (Object, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	hist := m.objects[key]
	if len(hist) == 0 {
		return Object{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return hist[len(hist)-1].Clone(), nil
}

// Delete implements Store.
func (m *Mem) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.objects[key]) == 0 {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	delete(m.objects, key)
	return nil
}

// Keys implements Store.
func (m *Mem) Keys() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.objects))
	for k := range m.objects {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Tamper implements Tamperer.
func (m *Mem) Tamper(key string, fixDigest bool, mutate func([]byte) []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	hist := m.objects[key]
	if len(hist) == 0 {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cur := hist[len(hist)-1].Clone()
	cur.Data = mutate(cur.Data)
	if fixDigest {
		cur.StoredMD5 = cryptoutil.Sum(cryptoutil.MD5, cur.Data)
	}
	cur.Version++
	cur.StoredAt = m.now()
	m.objects[key] = append(hist, cur)
	return nil
}

// GetVersion implements Versioned.
func (m *Mem) GetVersion(key string, version int) (Object, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	hist := m.objects[key]
	if len(hist) == 0 {
		return Object{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if version < 1 || version > len(hist) {
		return Object{}, fmt.Errorf("%w: %q v%d (have %d)", ErrNoSuchVersion, key, version, len(hist))
	}
	return hist[version-1].Clone(), nil
}

// Versions implements Versioned.
func (m *Mem) Versions(key string) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	hist := m.objects[key]
	if len(hist) == 0 {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return len(hist), nil
}
