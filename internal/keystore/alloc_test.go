package keystore

import (
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

// TestWorldLookupAllocs pins the satellite fix: World caches parsed
// key handles and fingerprints at load, so steady-state lookups must
// not re-parse DER (which allocated on every inbound message before).
func TestWorldLookupAllocs(t *testing.T) {
	dir := t.TempDir()
	if err := Init(dir, []string{"alice", "bob"}, 1024, time.Hour); err != nil {
		t.Fatal(err)
	}
	w, err := LoadWorld(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the lazily-computed fingerprint inside the handle once.
	if _, err := w.Fingerprint("alice"); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(200, func() {
		key, err := w.Key("alice")
		if err != nil || key == nil {
			t.Fatal("lookup failed")
		}
		_ = key.Fingerprint()
		_ = w.CAPublicKey()
	})
	if allocs > 0 {
		t.Errorf("Key+Fingerprint+CAPublicKey allocates %.1f/op, want 0", allocs)
	}
}

// TestInitSchemeEd25519 round-trips an ed25519 state directory through
// disk: identities load, sign, and their certs verify under the CA.
func TestInitSchemeEd25519(t *testing.T) {
	dir := t.TempDir()
	if err := InitScheme(dir, []string{"alice", "bob"}, 0, time.Hour, cryptoutil.SchemeEd25519); err != nil {
		t.Fatal(err)
	}
	w, err := LoadWorld(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.CAPublicKey().Scheme(); got != cryptoutil.SchemeEd25519 {
		t.Fatalf("CA scheme = %v, want ed25519", got)
	}
	id, err := LoadIdentity(dir, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if id.Key.Scheme() != cryptoutil.SchemeEd25519 {
		t.Fatalf("identity scheme = %v", id.Key.Scheme())
	}
	sig, err := id.Key.Signer().Sign([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	aliceKey, err := w.Key("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := aliceKey.Verify([]byte("hello"), sig); err != nil {
		t.Fatalf("loaded key rejects loaded signer: %v", err)
	}
	// The directory key must equal the identity's own public half.
	if !aliceKey.Equal(id.Key.Signer().Public()) {
		t.Fatalf("directory and identity disagree on alice's key")
	}
}
