// Package keystore persists identities, CA material and evidence to
// disk so the command-line daemons (nrserver, ttpd, nrclient,
// arbiterd) can share one PKI across processes — the operational glue
// the paper assumes but a runnable system needs.
//
// Layout under a state directory:
//
//	ca.json            CA name + private key (kept by the CA operator)
//	ca.pub.json        CA public key + every issued certificate
//	<party>.key.json   a party's private key + certificate
//	evidence/<txn>.<role>.<kind>.json   archived evidence items
package keystore

import (
	"crypto/rsa"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/pki"
)

// certJSON serializes a certificate.
type certJSON struct {
	Serial    uint64    `json:"serial"`
	Subject   string    `json:"subject"`
	PublicKey string    `json:"public_key_der_b64"`
	NotBefore time.Time `json:"not_before"`
	NotAfter  time.Time `json:"not_after"`
	Signature string    `json:"signature_b64"`
}

func certToJSON(c *pki.Certificate) certJSON {
	return certJSON{
		Serial:    c.Serial,
		Subject:   c.Subject,
		PublicKey: base64.StdEncoding.EncodeToString(c.PublicKeyDER),
		NotBefore: c.NotBefore,
		NotAfter:  c.NotAfter,
		Signature: base64.StdEncoding.EncodeToString(c.Signature),
	}
}

func certFromJSON(j certJSON) (*pki.Certificate, error) {
	der, err := base64.StdEncoding.DecodeString(j.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("keystore: decoding certificate key: %w", err)
	}
	sig, err := base64.StdEncoding.DecodeString(j.Signature)
	if err != nil {
		return nil, fmt.Errorf("keystore: decoding certificate signature: %w", err)
	}
	return &pki.Certificate{
		Serial: j.Serial, Subject: j.Subject, PublicKeyDER: der,
		NotBefore: j.NotBefore, NotAfter: j.NotAfter, Signature: sig,
	}, nil
}

type bundleJSON struct {
	CAPublicKey string     `json:"ca_public_key_der_b64"`
	Certs       []certJSON `json:"certificates"`
}

type partyJSON struct {
	Name       string   `json:"name"`
	PrivateKey string   `json:"private_key_der_b64"`
	Cert       certJSON `json:"certificate"`
}

// Init creates a state directory with a fresh RSA CA and one RSA
// identity per name, valid for the given duration.
func Init(dir string, names []string, keyBits int, validity time.Duration) error {
	return InitScheme(dir, names, keyBits, validity, cryptoutil.SchemeRSA)
}

// InitScheme is Init with a signature-scheme choice. keyBits applies
// to RSA only. Private keys are stored in the scheme's MarshalSigner
// form — for RSA that is the PKCS#1 DER this package has always
// written, so existing state directories keep loading.
func InitScheme(dir string, names []string, keyBits int, validity time.Duration, scheme cryptoutil.Scheme) error {
	if err := os.MkdirAll(filepath.Join(dir, "evidence"), 0o755); err != nil {
		return fmt.Errorf("keystore: creating %s: %w", dir, err)
	}
	genKey := func() (cryptoutil.KeyPair, error) {
		if scheme == cryptoutil.SchemeRSA {
			return cryptoutil.GenerateKeyBits(keyBits)
		}
		return cryptoutil.GenerateKeyPair(scheme)
	}
	caKey, err := genKey()
	if err != nil {
		return err
	}
	ca := pki.NewAuthority("repro-ca", caKey)
	now := time.Now()
	bundle := bundleJSON{}
	caPub := ca.Key()
	if caPub == nil {
		return fmt.Errorf("keystore: CA has no public key")
	}
	bundle.CAPublicKey = base64.StdEncoding.EncodeToString(caPub.Marshal())

	for _, name := range names {
		key, err := genKey()
		if err != nil {
			return err
		}
		id, err := pki.NewIdentity(ca, name, key, now.Add(-time.Minute), now.Add(validity))
		if err != nil {
			return err
		}
		privDER, err := cryptoutil.MarshalSigner(key.Signer())
		if err != nil {
			return err
		}
		bundle.Certs = append(bundle.Certs, certToJSON(id.Cert))
		pj := partyJSON{
			Name:       name,
			PrivateKey: base64.StdEncoding.EncodeToString(privDER),
			Cert:       certToJSON(id.Cert),
		}
		if err := writeJSON(filepath.Join(dir, name+".key.json"), pj); err != nil {
			return err
		}
	}
	return writeJSON(filepath.Join(dir, "ca.pub.json"), bundle)
}

// World is the loaded trust state: the CA public key and a directory
// of certificates. Keys are parsed ONCE at load into scheme handles —
// the old implementation re-parsed DER on every CAKey/per-message
// lookup, which showed up as per-request allocations on the daemons'
// hot paths (asserted by TestWorldLookupAllocs).
type World struct {
	CAKeyDER []byte
	caKey    cryptoutil.PublicKey
	certs    map[string]*pki.Certificate
	keys     map[string]cryptoutil.PublicKey
}

// LoadWorld reads ca.pub.json from a state directory, parsing every
// key into its cached handle up front.
func LoadWorld(dir string) (*World, error) {
	var bundle bundleJSON
	if err := readJSON(filepath.Join(dir, "ca.pub.json"), &bundle); err != nil {
		return nil, err
	}
	der, err := base64.StdEncoding.DecodeString(bundle.CAPublicKey)
	if err != nil {
		return nil, fmt.Errorf("keystore: decoding CA key: %w", err)
	}
	caKey, err := cryptoutil.ParseAnyPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("keystore: parsing CA key: %w", err)
	}
	w := &World{
		CAKeyDER: der,
		caKey:    caKey,
		certs:    make(map[string]*pki.Certificate),
		keys:     make(map[string]cryptoutil.PublicKey),
	}
	for _, cj := range bundle.Certs {
		cert, err := certFromJSON(cj)
		if err != nil {
			return nil, err
		}
		key, err := cert.Key()
		if err != nil {
			return nil, fmt.Errorf("keystore: parsing key for %q: %w", cert.Subject, err)
		}
		w.certs[cert.Subject] = cert
		w.keys[cert.Subject] = key
	}
	return w, nil
}

// CAPublicKey returns the CA key handle parsed at load time.
func (w *World) CAPublicKey() cryptoutil.PublicKey { return w.caKey }

// CAKey returns the CA public key.
//
// Deprecated: use CAPublicKey — it is parse-free and scheme-agnostic.
func (w *World) CAKey() (*rsa.PublicKey, error) {
	if pub, ok := cryptoutil.RSAPublicKeyOf(w.caKey); ok {
		return pub, nil
	}
	return nil, fmt.Errorf("keystore: CA key is %s, not RSA", w.caKey.Scheme())
}

// Key returns the cached public key handle for a known identity. The
// handle (and its fingerprint) is parsed once at LoadWorld, so calling
// this per inbound message costs a map lookup, not a DER parse.
func (w *World) Key(name string) (cryptoutil.PublicKey, error) {
	key, ok := w.keys[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", pki.ErrUnknownIdentity, name)
	}
	return key, nil
}

// Fingerprint returns the cached key fingerprint for a known identity.
func (w *World) Fingerprint(name string) (cryptoutil.Digest, error) {
	key, err := w.Key(name)
	if err != nil {
		return cryptoutil.Digest{}, err
	}
	return key.Fingerprint(), nil
}

// Lookup implements the core.Directory contract.
func (w *World) Lookup(name string) (*pki.Certificate, error) {
	cert, ok := w.certs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", pki.ErrUnknownIdentity, name)
	}
	return cert.Clone(), nil
}

// Names lists known identities, sorted.
func (w *World) Names() []string {
	out := make([]string, 0, len(w.certs))
	for n := range w.certs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LoadIdentity reads a party's private key + certificate. Both key
// encodings load: legacy PKCS#1 RSA files and scheme envelopes.
func LoadIdentity(dir, name string) (*pki.Identity, error) {
	var pj partyJSON
	if err := readJSON(filepath.Join(dir, name+".key.json"), &pj); err != nil {
		return nil, err
	}
	der, err := base64.StdEncoding.DecodeString(pj.PrivateKey)
	if err != nil {
		return nil, fmt.Errorf("keystore: decoding private key: %w", err)
	}
	signer, err := cryptoutil.ParseSigner(der)
	if err != nil {
		return nil, fmt.Errorf("keystore: parsing private key: %w", err)
	}
	cert, err := certFromJSON(pj.Cert)
	if err != nil {
		return nil, err
	}
	return &pki.Identity{Name: pj.Name, Key: cryptoutil.SignerKeyPair(signer), Cert: cert}, nil
}

// SaveEvidence archives one evidence item under the state directory.
func SaveEvidence(dir, txn string, role evidence.Role, ev *evidence.Evidence) error {
	name := fmt.Sprintf("%s.%s.%s.json", sanitize(txn), role, ev.Header.Kind)
	payload := map[string]string{
		"encoded_b64": base64.StdEncoding.EncodeToString(ev.Encode()),
	}
	return writeJSON(filepath.Join(dir, "evidence", name), payload)
}

// LoadEvidence reads one archived evidence item.
func LoadEvidence(dir, txn string, role evidence.Role, kind evidence.Kind) (*evidence.Evidence, error) {
	name := fmt.Sprintf("%s.%s.%s.json", sanitize(txn), role, kind)
	var payload map[string]string
	if err := readJSON(filepath.Join(dir, "evidence", name), &payload); err != nil {
		return nil, err
	}
	raw, err := base64.StdEncoding.DecodeString(payload["encoded_b64"])
	if err != nil {
		return nil, fmt.Errorf("keystore: decoding evidence: %w", err)
	}
	return evidence.Decode(raw)
}

// ListEvidence lists archived evidence file names.
func ListEvidence(dir string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(dir, "evidence"))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("keystore: encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		return fmt.Errorf("keystore: writing %s: %w", path, err)
	}
	return nil
}

func readJSON(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("keystore: reading %s: %w", path, err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("keystore: parsing %s: %w", path, err)
	}
	return nil
}
