package keystore

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/pki"
)

func initDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := Init(dir, []string{"alice", "bob", "ttp"}, 1024, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestInitAndLoadWorld(t *testing.T) {
	dir := initDir(t)
	w, err := LoadWorld(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := w.Names()
	if len(names) != 3 || names[0] != "alice" || names[1] != "bob" || names[2] != "ttp" {
		t.Fatalf("Names = %v", names)
	}
	caKey, err := w.CAKey()
	if err != nil {
		t.Fatal(err)
	}
	// Every certificate must verify under the published CA key.
	for _, name := range names {
		cert, err := w.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := pki.VerifyCertificate(caKey, cert, time.Now(), nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := w.Lookup("mallory"); !errors.Is(err, pki.ErrUnknownIdentity) {
		t.Errorf("unknown lookup: %v", err)
	}
}

func TestLoadIdentityRoundTrip(t *testing.T) {
	dir := initDir(t)
	id, err := LoadIdentity(dir, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if id.Name != "alice" || id.Cert.Subject != "alice" {
		t.Fatalf("identity: %+v", id)
	}
	// The loaded private key must actually sign verifiably under the
	// certified public key.
	sig, err := cryptoutil.Sign(id.Key, []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	pub, err := id.Cert.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := cryptoutil.Verify(pub, []byte("probe"), sig); err != nil {
		t.Fatalf("loaded key does not match certificate: %v", err)
	}
	if _, err := LoadIdentity(dir, "nobody"); err == nil {
		t.Fatal("loading a missing identity succeeded")
	}
}

func TestEvidencePersistence(t *testing.T) {
	dir := initDir(t)
	alice, err := LoadIdentity(dir, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := LoadIdentity(dir, "bob")
	if err != nil {
		t.Fatal(err)
	}
	bobPub, err := bob.Cert.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	h := &evidence.Header{
		Kind: evidence.KindNRO, TxnID: "txn/with:odd chars", Seq: 1,
		Nonce: cryptoutil.MustNonce(), SenderID: "alice", RecipientID: "bob",
		TTPID: "ttp", Timestamp: time.Now(), ObjectKey: "k",
	}
	h.SetDigests([]byte("data"))
	ev, _, err := evidence.Build(alice.Key, bobPub, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveEvidence(dir, h.TxnID, evidence.RoleOwn, ev); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEvidence(dir, h.TxnID, evidence.RoleOwn, evidence.KindNRO)
	if err != nil {
		t.Fatal(err)
	}
	alicePub, err := alice.Cert.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := got.VerifyAgainstData(alicePub, []byte("data")); err != nil {
		t.Fatalf("persisted evidence fails verification: %v", err)
	}
	files, err := ListEvidence(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("ListEvidence = %v, %v", files, err)
	}
	if _, err := LoadEvidence(dir, "ghost", evidence.RoleOwn, evidence.KindNRO); err == nil {
		t.Fatal("loading missing evidence succeeded")
	}
}

func TestLoadWorldMissingDir(t *testing.T) {
	if _, err := LoadWorld(t.TempDir()); err == nil {
		t.Fatal("LoadWorld on empty dir succeeded")
	}
}
