// Package session provides the transaction bookkeeping the TPNR
// protocol's anti-replay and timeliness mechanisms need (paper §4.1,
// §5.4, §5.5): transaction IDs, strictly increasing per-transaction
// sequence numbers, a replay window that rejects reused (transaction,
// sequence, nonce) triples, and message time limits.
package session

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cryptoutil"
)

// Validation errors.
var (
	ErrReplay       = errors.New("session: replayed message")
	ErrOutOfOrder   = errors.New("session: sequence number not increasing")
	ErrExpired      = errors.New("session: message past its time limit")
	ErrUnknownTxn   = errors.New("session: unknown transaction")
	ErrTxncompleted = errors.New("session: transaction already completed")
)

// NewTransactionID mints a globally unique transaction identifier.
func NewTransactionID() string {
	return fmt.Sprintf("txn-%x", cryptoutil.MustNonce())
}

// Counter issues strictly increasing sequence numbers for outbound
// messages of one transaction ("The sequence number increases one by
// one", §4.1).
type Counter struct {
	mu   sync.Mutex
	next uint64
}

// Next returns the next sequence number, starting at 1.
func (c *Counter) Next() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	return c.next
}

// Current returns the last issued number (0 if none).
func (c *Counter) Current() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next
}

// SkipTo advances the counter so the next issued number exceeds n.
// Constant-time regardless of the gap — a peer-supplied sequence number
// must never control a loop bound.
func (c *Counter) SkipTo(n uint64) {
	c.mu.Lock()
	if c.next < n {
		c.next = n
	}
	c.mu.Unlock()
}

// Guard validates inbound messages: per-transaction monotone sequence
// numbers, globally unique nonces within a bounded window, and time
// limits. One Guard protects one receiving endpoint.
//
// Memory note: lastSeq holds one entry per (transaction, sender) scope
// for the Guard's lifetime. Calling Forget after a transaction reaches
// a terminal state reclaims it, at the cost of re-admitting low
// sequence numbers for that transaction (the nonce window still covers
// recent replays). The protocol engines keep entries by default —
// correctness over memory — and leave Forget to deployments that
// recycle transaction IDs.
type Guard struct {
	mu sync.Mutex
	// lastSeq maps transaction ID → highest sequence number accepted.
	lastSeq map[string]uint64
	// nonces remembers recently seen nonces, bounded by window.
	nonces map[string]struct{}
	order  []string
	window int
}

// NewGuard creates a Guard remembering up to window nonces (0 means a
// generous default). The window bounds memory; experiment E10 ablates
// its size.
func NewGuard(window int) *Guard {
	if window <= 0 {
		window = 1 << 16
	}
	return &Guard{
		lastSeq: make(map[string]uint64),
		nonces:  make(map[string]struct{}),
		window:  window,
	}
}

// Check validates an inbound message's replay-protection fields:
//   - seq must exceed the highest accepted sequence for txn;
//   - nonce must be fresh within the window;
//   - timeLimit (if nonzero) must not be before now (§5.5).
//
// On success the guard records seq and nonce. Violations leave state
// unchanged so a retry with correct fields still succeeds.
func (g *Guard) Check(txn string, seq uint64, nonce []byte, timeLimit, now time.Time) error {
	if !timeLimit.IsZero() && now.After(timeLimit) {
		return fmt.Errorf("%w: limit %v, now %v", ErrExpired, timeLimit, now)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if last, ok := g.lastSeq[txn]; ok && seq <= last {
		return fmt.Errorf("%w: txn %s seq %d <= last %d", ErrOutOfOrder, txn, seq, last)
	}
	if _, seen := g.nonces[string(nonce)]; seen {
		return fmt.Errorf("%w: nonce reuse in txn %s", ErrReplay, txn)
	}
	g.lastSeq[txn] = seq
	g.remember(string(nonce))
	return nil
}

func (g *Guard) remember(nonce string) {
	g.nonces[nonce] = struct{}{}
	g.order = append(g.order, nonce)
	for len(g.order) > g.window {
		delete(g.nonces, g.order[0])
		g.order = g.order[1:]
	}
}

// Observe records a (sequence, nonce) pair without validating it —
// journal replay feeding the guard what it had already accepted before
// a crash. Validation would be wrong here: replayed records arrive in
// arrival order but past their time limits, and rejecting them would
// leave the guard ready to re-admit the very messages it once consumed.
func (g *Guard) Observe(txn string, seq uint64, nonce []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if last, ok := g.lastSeq[txn]; !ok || seq > last {
		g.lastSeq[txn] = seq
	}
	if _, seen := g.nonces[string(nonce)]; !seen {
		g.remember(string(nonce))
	}
}

// Forget drops a transaction's sequence state (after completion).
func (g *Guard) Forget(txn string) {
	g.mu.Lock()
	delete(g.lastSeq, txn)
	g.mu.Unlock()
}

// NonceCount reports how many nonces are currently remembered.
func (g *Guard) NonceCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.nonces)
}

// State is a transaction's lifecycle position at one party.
type State int

// Transaction states, in normal progression order.
const (
	StateInit State = iota
	StateEvidenceSent
	StateEvidenceReceived
	StateCompleted
	StateAborted
	StateResolving
	StateFailed
)

// String names the state for transcripts.
func (s State) String() string {
	switch s {
	case StateInit:
		return "init"
	case StateEvidenceSent:
		return "evidence-sent"
	case StateEvidenceReceived:
		return "evidence-received"
	case StateCompleted:
		return "completed"
	case StateAborted:
		return "aborted"
	case StateResolving:
		return "resolving"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Tracker records per-transaction state at one party, with legal
// transition enforcement. Terminal states (completed, aborted, failed)
// admit no further transitions.
//
// A tracker optionally carries per-transaction step deadlines: the
// instant by which the transaction must make its next state transition
// before the owner is entitled to expire it (paper §4's per-step time
// limits, enforced server-side). Deadlines are bookkeeping only — the
// tracker never acts on them; ExpireBefore hands the overdue set to the
// protocol engine, which owns issuing the abort evidence.
type Tracker struct {
	mu        sync.Mutex
	states    map[string]State
	deadlines map[string]time.Time
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		states:    make(map[string]State),
		deadlines: make(map[string]time.Time),
	}
}

// Begin registers a new transaction in StateInit.
func (t *Tracker) Begin(txn string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.states[txn]; ok {
		return fmt.Errorf("session: transaction %s already begun", txn)
	}
	t.states[txn] = StateInit
	return nil
}

// Get returns the transaction's current state.
func (t *Tracker) Get(txn string) (State, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.states[txn]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTxn, txn)
	}
	return s, nil
}

// Terminal reports whether a state admits no further transitions.
func Terminal(s State) bool {
	return s == StateCompleted || s == StateAborted || s == StateFailed
}

// Restore force-sets a transaction's state, registering it if unknown.
// Journal replay uses it: the legality of each transition was already
// enforced (and journaled) the first time around, so replay must accept
// the recorded history verbatim — including transitions out of states
// that Transition would now refuse to leave.
func (t *Tracker) Restore(txn string, s State) {
	t.mu.Lock()
	t.states[txn] = s
	t.mu.Unlock()
}

// Transactions lists every known transaction ID (unsorted).
func (t *Tracker) Transactions() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.states))
	for txn := range t.states {
		out = append(out, txn)
	}
	return out
}

// Transition moves txn to next, rejecting transitions out of terminal
// states and on unknown transactions.
func (t *Tracker) Transition(txn string, next State) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.states[txn]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTxn, txn)
	}
	if Terminal(cur) {
		return fmt.Errorf("%w: %s is %s", ErrTxncompleted, txn, cur)
	}
	t.states[txn] = next
	return nil
}

// SetDeadline stamps the instant by which txn must make its next
// transition. Restamping replaces the previous deadline — each
// successful step buys the counterparty a fresh step budget.
func (t *Tracker) SetDeadline(txn string, at time.Time) {
	t.mu.Lock()
	t.deadlines[txn] = at
	t.mu.Unlock()
}

// ClearDeadline removes txn's deadline (terminal state reached).
func (t *Tracker) ClearDeadline(txn string) {
	t.mu.Lock()
	delete(t.deadlines, txn)
	t.mu.Unlock()
}

// Deadline returns txn's step deadline, or the zero time if none is
// set.
func (t *Tracker) Deadline(txn string) time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deadlines[txn]
}

// ExpireBefore returns the non-terminal transactions whose deadline is
// at or before now, consuming their deadline entries so each expiry is
// reported exactly once. The caller (the protocol engine's reaper)
// drives the transactions to their abort state.
func (t *Tracker) ExpireBefore(now time.Time) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for txn, at := range t.deadlines {
		if at.After(now) {
			continue
		}
		delete(t.deadlines, txn)
		if s, ok := t.states[txn]; ok && !Terminal(s) {
			out = append(out, txn)
		}
	}
	return out
}
