package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

func TestNewTransactionIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 128; i++ {
		id := NewTransactionID()
		if seen[id] {
			t.Fatalf("duplicate transaction ID %s", id)
		}
		seen[id] = true
	}
}

func TestCounterMonotone(t *testing.T) {
	var c Counter
	if c.Current() != 0 {
		t.Fatal("fresh counter nonzero")
	}
	for want := uint64(1); want <= 100; want++ {
		if got := c.Next(); got != want {
			t.Fatalf("Next = %d, want %d", got, want)
		}
	}
	if c.Current() != 100 {
		t.Fatalf("Current = %d", c.Current())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	seen := make([]map[uint64]bool, 8)
	for i := range seen {
		seen[i] = make(map[uint64]bool)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				seen[i][c.Next()] = true
			}
		}(i)
	}
	wg.Wait()
	all := map[uint64]bool{}
	for _, m := range seen {
		for v := range m {
			if all[v] {
				t.Fatalf("sequence %d issued twice", v)
			}
			all[v] = true
		}
	}
	if len(all) != 4000 {
		t.Fatalf("issued %d unique sequence numbers, want 4000", len(all))
	}
}

func guardCheck(g *Guard, txn string, seq uint64) error {
	return g.Check(txn, seq, cryptoutil.MustNonce(), time.Time{}, time.Now())
}

func TestGuardAcceptsIncreasingSequences(t *testing.T) {
	g := NewGuard(0)
	for seq := uint64(1); seq <= 10; seq++ {
		if err := guardCheck(g, "t1", seq); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
	}
	// Gaps are fine; only monotonicity matters.
	if err := guardCheck(g, "t1", 100); err != nil {
		t.Fatalf("gap: %v", err)
	}
}

func TestGuardRejectsNonIncreasing(t *testing.T) {
	g := NewGuard(0)
	if err := guardCheck(g, "t1", 5); err != nil {
		t.Fatal(err)
	}
	if err := guardCheck(g, "t1", 5); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("equal seq: %v", err)
	}
	if err := guardCheck(g, "t1", 4); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("lower seq: %v", err)
	}
	// A different transaction has its own sequence space.
	if err := guardCheck(g, "t2", 1); err != nil {
		t.Fatalf("other txn: %v", err)
	}
}

func TestGuardRejectsNonceReplay(t *testing.T) {
	g := NewGuard(0)
	nonce := cryptoutil.MustNonce()
	if err := g.Check("t1", 1, nonce, time.Time{}, time.Now()); err != nil {
		t.Fatal(err)
	}
	// Same nonce, different transaction and sequence — still a replay.
	if err := g.Check("t2", 1, nonce, time.Time{}, time.Now()); !errors.Is(err, ErrReplay) {
		t.Fatalf("err = %v, want ErrReplay", err)
	}
}

func TestGuardTimeLimit(t *testing.T) {
	g := NewGuard(0)
	now := time.Date(2010, 9, 13, 12, 0, 0, 0, time.UTC)
	limit := now.Add(-time.Second)
	err := g.Check("t1", 1, cryptoutil.MustNonce(), limit, now)
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("expired message: %v", err)
	}
	// At or before the limit is fine.
	if err := g.Check("t1", 1, cryptoutil.MustNonce(), now, now); err != nil {
		t.Fatalf("at limit: %v", err)
	}
	// Zero limit means no deadline.
	if err := g.Check("t1", 2, cryptoutil.MustNonce(), time.Time{}, now); err != nil {
		t.Fatalf("no limit: %v", err)
	}
}

func TestGuardFailureLeavesStateUnchanged(t *testing.T) {
	g := NewGuard(0)
	nonce := cryptoutil.MustNonce()
	now := time.Now()
	// Expired message carrying seq 7 and a fresh nonce: rejected and
	// NOT recorded.
	if err := g.Check("t1", 7, nonce, now.Add(-time.Hour), now); !errors.Is(err, ErrExpired) {
		t.Fatal(err)
	}
	// The same seq and nonce must now be accepted with a valid limit.
	if err := g.Check("t1", 7, nonce, time.Time{}, now); err != nil {
		t.Fatalf("state leaked from rejected message: %v", err)
	}
}

func TestGuardWindowEviction(t *testing.T) {
	g := NewGuard(4)
	nonces := make([][]byte, 6)
	for i := range nonces {
		nonces[i] = cryptoutil.MustNonce()
		if err := g.Check("t", uint64(i+1), nonces[i], time.Time{}, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if g.NonceCount() != 4 {
		t.Fatalf("NonceCount = %d, want 4", g.NonceCount())
	}
	// The oldest nonce fell out of the window — its replay is no longer
	// detected (the documented window/memory trade-off)...
	if err := g.Check("t", 100, nonces[0], time.Time{}, time.Now()); err != nil {
		t.Fatalf("evicted nonce still tracked: %v", err)
	}
	// ...but a recent one still is.
	if err := g.Check("t", 101, nonces[5], time.Time{}, time.Now()); !errors.Is(err, ErrReplay) {
		t.Fatalf("recent nonce not tracked: %v", err)
	}
}

func TestGuardForget(t *testing.T) {
	g := NewGuard(0)
	guardCheck(g, "t1", 9)
	g.Forget("t1")
	if err := guardCheck(g, "t1", 1); err != nil {
		t.Fatalf("after Forget, low seq rejected: %v", err)
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	if err := tr.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Begin("t1"); err == nil {
		t.Fatal("double Begin accepted")
	}
	if s, err := tr.Get("t1"); err != nil || s != StateInit {
		t.Fatalf("Get = %v, %v", s, err)
	}
	for _, next := range []State{StateEvidenceSent, StateEvidenceReceived, StateCompleted} {
		if err := tr.Transition("t1", next); err != nil {
			t.Fatalf("to %v: %v", next, err)
		}
	}
	// Completed is terminal.
	if err := tr.Transition("t1", StateResolving); !errors.Is(err, ErrTxncompleted) {
		t.Fatalf("transition out of terminal: %v", err)
	}
	if _, err := tr.Get("ghost"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("unknown txn: %v", err)
	}
	if err := tr.Transition("ghost", StateFailed); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("transition unknown txn: %v", err)
	}
}

func TestTerminalStates(t *testing.T) {
	for s, want := range map[State]bool{
		StateInit: false, StateEvidenceSent: false, StateEvidenceReceived: false,
		StateResolving: false, StateCompleted: true, StateAborted: true, StateFailed: true,
	} {
		if Terminal(s) != want {
			t.Errorf("Terminal(%v) = %v, want %v", s, !want, want)
		}
	}
}

func TestStateStrings(t *testing.T) {
	seen := map[string]bool{}
	for s := StateInit; s <= StateFailed; s++ {
		str := fmt.Sprint(s)
		if seen[str] {
			t.Errorf("duplicate state string %q", str)
		}
		seen[str] = true
	}
}

func TestCounterSkipTo(t *testing.T) {
	var c Counter
	c.SkipTo(1 << 62) // must complete instantly, not iterate
	if got := c.Next(); got != 1<<62+1 {
		t.Fatalf("Next after SkipTo = %d", got)
	}
	// SkipTo never goes backwards.
	c.SkipTo(5)
	if got := c.Next(); got != 1<<62+2 {
		t.Fatalf("Next after backwards SkipTo = %d", got)
	}
}
