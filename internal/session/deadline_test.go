package session

import (
	"testing"
	"time"
)

// TestTrackerDeadlines covers stamp/restamp/clear and the exactly-once
// contract of ExpireBefore.
func TestTrackerDeadlines(t *testing.T) {
	tr := NewTracker()
	base := time.Unix(1000, 0)

	if err := tr.Begin("a"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Begin("b"); err != nil {
		t.Fatal(err)
	}
	tr.SetDeadline("a", base.Add(time.Second))
	tr.SetDeadline("b", base.Add(3*time.Second))

	if got := tr.Deadline("a"); !got.Equal(base.Add(time.Second)) {
		t.Fatalf("Deadline(a)=%v", got)
	}
	if got := tr.Deadline("missing"); !got.IsZero() {
		t.Fatalf("Deadline(missing)=%v, want zero", got)
	}

	// Nothing due yet.
	if got := tr.ExpireBefore(base); len(got) != 0 {
		t.Fatalf("ExpireBefore(base)=%v, want empty", got)
	}
	// a due (inclusive), b not.
	got := tr.ExpireBefore(base.Add(time.Second))
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("ExpireBefore=%v, want [a]", got)
	}
	// a's entry was consumed: not reported again.
	if got := tr.ExpireBefore(base.Add(2 * time.Second)); len(got) != 0 {
		t.Fatalf("second ExpireBefore=%v, want empty", got)
	}

	// Restamping replaces the deadline.
	tr.SetDeadline("b", base.Add(10*time.Second))
	if got := tr.ExpireBefore(base.Add(5 * time.Second)); len(got) != 0 {
		t.Fatalf("ExpireBefore after restamp=%v, want empty", got)
	}
	// Clearing removes it entirely.
	tr.ClearDeadline("b")
	if got := tr.ExpireBefore(base.Add(time.Hour)); len(got) != 0 {
		t.Fatalf("ExpireBefore after clear=%v, want empty", got)
	}
}

// TestExpireBeforeSkipsTerminal checks an overdue transaction already
// in a terminal state is dropped, not reported — expiring it again
// would double-issue abort evidence.
func TestExpireBeforeSkipsTerminal(t *testing.T) {
	tr := NewTracker()
	base := time.Unix(1000, 0)
	if err := tr.Begin("done"); err != nil {
		t.Fatal(err)
	}
	tr.SetDeadline("done", base)
	if err := tr.Transition("done", StateCompleted); err != nil {
		t.Fatal(err)
	}
	if got := tr.ExpireBefore(base.Add(time.Second)); len(got) != 0 {
		t.Fatalf("ExpireBefore=%v, want empty for terminal txn", got)
	}
	// Unknown transactions with stale deadlines are dropped too.
	tr.SetDeadline("ghost", base)
	if got := tr.ExpireBefore(base.Add(time.Second)); len(got) != 0 {
		t.Fatalf("ExpireBefore=%v, want empty for unknown txn", got)
	}
}
