package traditional

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/pki"
	"repro/internal/storage"
)

type env struct {
	ca       *pki.Authority
	client   *Client
	provider *Provider
	ttp      *TTP
	store    *storage.Mem
}

func newEnv(t *testing.T) *env {
	t.Helper()
	ca := pki.NewAuthority("zg-ca", cryptoutil.InsecureTestKey(70))
	now := time.Now()
	mk := func(name string, slot int) *pki.Identity {
		id, err := pki.NewIdentity(ca, name, cryptoutil.InsecureTestKey(slot), now.Add(-time.Hour), now.Add(24*time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a, b, tp := mk("alice", 71), mk("bob", 72), mk("ttp", 73)
	store := storage.NewMem(nil)
	return &env{
		ca:       ca,
		client:   NewClient(a, ca.Lookup, &metrics.Counters{}),
		provider: NewProvider(b, ca.Lookup, store, &metrics.Counters{}),
		ttp:      NewTTP(tp, ca.Lookup, &metrics.Counters{}),
		store:    store,
	}
}

func TestFullRun(t *testing.T) {
	e := newEnv(t)
	data := []byte("bulk backup payload")
	res, err := e.client.Upload(context.Background(), "L-1", "backups/x", data, e.provider, e.ttp)
	if err != nil {
		t.Fatal(err)
	}
	// B ended up with the plaintext object.
	obj, err := e.store.Get("backups/x")
	if err != nil || !bytes.Equal(obj.Data, data) {
		t.Fatalf("stored: %v %q", err, obj.Data)
	}
	// A holds the full evidence set.
	if res.NRO == nil || res.NRR == nil || res.ConK == nil {
		t.Fatal("missing evidence")
	}
}

// TestFourStepCost pins the §4.4 comparison: the traditional protocol
// needs at least 3 client sends (commit, submit, fetch) and TTP
// participation in every run — against TPNR's 1 send and 0 TTP.
func TestFourStepCost(t *testing.T) {
	e := newEnv(t)
	if _, err := e.client.Upload(context.Background(), "L-2", "k", []byte("v"), e.provider, e.ttp); err != nil {
		t.Fatal(err)
	}
	if got := e.client.Counters().Get(metrics.MsgsSent); got < 3 {
		t.Errorf("client sent %d messages, want >= 3", got)
	}
	if got := e.client.Counters().Get(metrics.TTPMsgs); got == 0 {
		t.Error("traditional protocol must involve the TTP")
	}
}

func TestFairnessKeyWithheldUntilDeposit(t *testing.T) {
	e := newEnv(t)
	// Run steps 1–2 manually: B holds only the ciphertext.
	key, _ := cryptoutil.NewSymmetricKey()
	c, _ := cryptoutil.SymmetricEncrypt(key, []byte("secret M"))
	hashC := cryptoutil.Sum(cryptoutil.SHA256, c)
	nro, err := cryptoutil.Sign(cryptoutil.InsecureTestKey(71), signBytes(flagNRO, "L-3", hashC.Sum))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.provider.ReceiveCommit(context.Background(), "L-3", "k", c, nro, "alice"); err != nil {
		t.Fatal(err)
	}
	// Without the key deposit, B cannot complete.
	if err := e.provider.Complete(context.Background(), "L-3", e.ttp); !errors.Is(err, ErrNoKey) {
		t.Fatalf("err = %v, want ErrNoKey", err)
	}
	if _, err := e.store.Get("k"); err == nil {
		t.Fatal("object stored before key deposit")
	}
}

func TestForgedNRORejected(t *testing.T) {
	e := newEnv(t)
	key, _ := cryptoutil.NewSymmetricKey()
	c, _ := cryptoutil.SymmetricEncrypt(key, []byte("m"))
	hashC := cryptoutil.Sum(cryptoutil.SHA256, c)
	// Signed by mallory (slot 74), claimed to be from alice.
	forged, err := cryptoutil.Sign(cryptoutil.InsecureTestKey(74), signBytes(flagNRO, "L-4", hashC.Sum))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.provider.ReceiveCommit(context.Background(), "L-4", "k", c, forged, "alice"); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestForgedSubKRejected(t *testing.T) {
	e := newEnv(t)
	key, _ := cryptoutil.NewSymmetricKey()
	forged, err := cryptoutil.Sign(cryptoutil.InsecureTestKey(74), signBytes(flagSUB, "L-5", key))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ttp.Submit(context.Background(), "L-5", key, forged, "alice"); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestFetchUnknownLabel(t *testing.T) {
	e := newEnv(t)
	if _, _, err := e.ttp.Fetch(context.Background(), "L-ghost"); !errors.Is(err, ErrNoKey) {
		t.Fatalf("err = %v, want ErrNoKey", err)
	}
}

func TestConKVerifiableByThirdParty(t *testing.T) {
	// The con_K signature must verify against the TTP's certificate —
	// that is what makes it evidence.
	e := newEnv(t)
	res, err := e.client.Upload(context.Background(), "L-6", "k", []byte("v"), e.provider, e.ttp)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := e.ca.Lookup("ttp")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := cert.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := cryptoutil.Verify(pub, signBytes(flagCON, "L-6", res.Key), res.ConK); err != nil {
		t.Fatalf("con_K does not verify: %v", err)
	}
}
