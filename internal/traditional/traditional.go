// Package traditional implements the baseline the paper compares TPNR
// against: a traditional fair non-repudiation protocol in the
// Zhou–Gollmann style, which "consist[s] of at least four steps"
// (§4) and keeps the TTP on-line for every transaction:
//
//	step 1  A → B:   L, C = E_K(M), NRO = Sign_A(fNRO ‖ L ‖ H(C))
//	step 2  B → A:   L, NRR = Sign_B(fNRR ‖ L ‖ H(C))
//	step 3  A → TTP: L, K, sub_K = Sign_A(fSUB ‖ L ‖ K)
//	step 4  B → TTP: L        → K, con_K = Sign_TTP(fCON ‖ L ‖ K)
//	        A → TTP: L        → con_K              (A's evidence fetch)
//
// Fairness comes from the TTP: B cannot read M before the key is
// deposited, and once the key is deposited both parties can always
// obtain it and the TTP's confirmation con_K. The cost — the §4.4
// comparison TPNR wins — is four protocol steps plus mandatory TTP
// participation in every single transaction.
package traditional

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/pki"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Step flags bound into signatures, mirroring Zhou–Gollmann's f-codes.
const (
	flagNRO = "fNRO"
	flagNRR = "fNRR"
	flagSUB = "fSUB"
	flagCON = "fCON"
)

// Errors.
var (
	ErrBadSignature = errors.New("traditional: signature verification failed")
	ErrNoKey        = errors.New("traditional: key not (yet) deposited")
	ErrChecksum     = errors.New("traditional: commitment hash mismatch")
)

func signBytes(flag, label string, body []byte) []byte {
	e := wire.NewEncoder(64 + len(body))
	e.String("zg-v1")
	e.String(flag)
	e.String(label)
	e.Bytes32(body)
	return e.Bytes()
}

// TTP is the on-line trusted third party: it stores deposited keys and
// issues signed confirmations.
type TTP struct {
	id  *pki.Identity
	dir func(string) (*pki.Certificate, error)
	ctr *metrics.Counters

	mu   sync.Mutex
	keys map[string][]byte // label → deposited key
	cons map[string][]byte // label → con_K signature
}

// NewTTP constructs the on-line TTP.
func NewTTP(id *pki.Identity, dir func(string) (*pki.Certificate, error), ctr *metrics.Counters) *TTP {
	if ctr == nil {
		ctr = &metrics.Counters{}
	}
	return &TTP{id: id, dir: dir, ctr: ctr, keys: make(map[string][]byte), cons: make(map[string][]byte)}
}

// Submit is step 3: A deposits the key with sub_K.
func (t *TTP) Submit(ctx context.Context, label string, key []byte, subK []byte, submitter string) error {
	if err := core.CheckContext(ctx); err != nil {
		return err
	}
	t.ctr.Inc(metrics.MsgsRecv, 1)
	t.ctr.Inc(metrics.TTPMsgs, 1)
	cert, err := t.dir(submitter)
	if err != nil {
		return err
	}
	pub, err := cert.Key()
	if err != nil {
		return err
	}
	if err := pub.Verify(signBytes(flagSUB, label, key), subK); err != nil {
		return fmt.Errorf("%w: sub_K: %v", ErrBadSignature, err)
	}
	con, err := t.id.Key.Signer().Sign(signBytes(flagCON, label, key))
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.keys[label] = append([]byte(nil), key...)
	t.cons[label] = con
	t.mu.Unlock()
	return nil
}

// Fetch is step 4: either party retrieves the key and con_K.
func (t *TTP) Fetch(ctx context.Context, label string) (key, conK []byte, err error) {
	if err := core.CheckContext(ctx); err != nil {
		return nil, nil, err
	}
	t.ctr.Inc(metrics.MsgsRecv, 1)
	t.ctr.Inc(metrics.MsgsSent, 1)
	t.ctr.Inc(metrics.TTPMsgs, 2)
	t.mu.Lock()
	defer t.mu.Unlock()
	k, ok := t.keys[label]
	if !ok {
		return nil, nil, fmt.Errorf("%w: label %q", ErrNoKey, label)
	}
	return append([]byte(nil), k...), append([]byte(nil), t.cons[label]...), nil
}

// PublicKeyID returns the TTP identity name (for con_K verification).
func (t *TTP) PublicKeyID() string { return t.id.Name }

// Provider is B: it receives commitments, issues NRRs, and completes
// transactions by fetching keys from the TTP.
type Provider struct {
	id    *pki.Identity
	dir   func(string) (*pki.Certificate, error)
	store storage.Store
	ctr   *metrics.Counters

	mu      sync.Mutex
	pending map[string]pendingCommit
}

type pendingCommit struct {
	objectKey string
	c         []byte // E_K(M)
	hashC     cryptoutil.Digest
	nro       []byte
	sender    string
}

// NewProvider constructs B over its blob store.
func NewProvider(id *pki.Identity, dir func(string) (*pki.Certificate, error), store storage.Store, ctr *metrics.Counters) *Provider {
	if ctr == nil {
		ctr = &metrics.Counters{}
	}
	return &Provider{id: id, dir: dir, store: store, ctr: ctr, pending: make(map[string]pendingCommit)}
}

// ReceiveCommit is step 1→2: B validates the NRO over the commitment
// and returns the NRR.
func (p *Provider) ReceiveCommit(ctx context.Context, label, objectKey string, c []byte, nro []byte, sender string) ([]byte, error) {
	if err := core.CheckContext(ctx); err != nil {
		return nil, err
	}
	p.ctr.Inc(metrics.MsgsRecv, 1)
	cert, err := p.dir(sender)
	if err != nil {
		return nil, err
	}
	pub, err := cert.Key()
	if err != nil {
		return nil, err
	}
	hashC := cryptoutil.Sum(cryptoutil.SHA256, c)
	p.ctr.Inc(metrics.HashOps, 1)
	if err := pub.Verify(signBytes(flagNRO, label, hashC.Sum), nro); err != nil {
		return nil, fmt.Errorf("%w: NRO: %v", ErrBadSignature, err)
	}
	p.ctr.Inc(metrics.VerifyOps, 1)
	nrr, err := p.id.Key.Signer().Sign(signBytes(flagNRR, label, hashC.Sum))
	if err != nil {
		return nil, err
	}
	p.ctr.Inc(metrics.SignOps, 1)
	p.mu.Lock()
	p.pending[label] = pendingCommit{objectKey: objectKey, c: c, hashC: hashC, nro: nro, sender: sender}
	p.mu.Unlock()
	p.ctr.Inc(metrics.MsgsSent, 1)
	return nrr, nil
}

// Complete is B's half of step 4: fetch the key, verify con_K, decrypt
// the commitment and store the plaintext object.
func (p *Provider) Complete(ctx context.Context, label string, ttp *TTP) error {
	if err := core.CheckContext(ctx); err != nil {
		return err
	}
	p.mu.Lock()
	commit, ok := p.pending[label]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("traditional: no pending commitment for %q", label)
	}
	key, conK, err := ttp.Fetch(ctx, label)
	if err != nil {
		return err
	}
	p.ctr.Inc(metrics.MsgsSent, 1) // the fetch request
	p.ctr.Inc(metrics.MsgsRecv, 1)
	p.ctr.Inc(metrics.TTPMsgs, 2)
	ttpCert, err := p.dir(ttp.PublicKeyID())
	if err != nil {
		return err
	}
	ttpPub, err := ttpCert.Key()
	if err != nil {
		return err
	}
	if err := ttpPub.Verify(signBytes(flagCON, label, key), conK); err != nil {
		return fmt.Errorf("%w: con_K: %v", ErrBadSignature, err)
	}
	p.ctr.Inc(metrics.VerifyOps, 1)
	plain, err := cryptoutil.SymmetricDecrypt(key, commit.c)
	if err != nil {
		return fmt.Errorf("traditional: decrypting commitment: %w", err)
	}
	if _, err := p.store.Put(commit.objectKey, plain, cryptoutil.Digest{}); err != nil {
		return err
	}
	p.mu.Lock()
	delete(p.pending, label)
	p.mu.Unlock()
	return nil
}

// Client is A.
type Client struct {
	id  *pki.Identity
	dir func(string) (*pki.Certificate, error)
	ctr *metrics.Counters
}

// NewClient constructs A.
func NewClient(id *pki.Identity, dir func(string) (*pki.Certificate, error), ctr *metrics.Counters) *Client {
	if ctr == nil {
		ctr = &metrics.Counters{}
	}
	return &Client{id: id, dir: dir, ctr: ctr}
}

// Result is the evidence set A holds after a completed run.
type Result struct {
	Label string
	NRO   []byte
	NRR   []byte
	ConK  []byte
	Key   []byte
	HashC cryptoutil.Digest
}

// Counters exposes A's metrics.
func (c *Client) Counters() *metrics.Counters { return c.ctr }

// Upload runs the full four-step protocol against B and the TTP.
func (c *Client) Upload(ctx context.Context, label, objectKey string, data []byte, provider *Provider, ttp *TTP) (*Result, error) {
	if err := core.CheckContext(ctx); err != nil {
		return nil, err
	}
	// Commit: C = E_K(M).
	key, err := cryptoutil.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	commitment, err := cryptoutil.SymmetricEncrypt(key, data)
	if err != nil {
		return nil, err
	}
	hashC := cryptoutil.Sum(cryptoutil.SHA256, commitment)
	c.ctr.Inc(metrics.HashOps, 1)

	// Step 1: A → B.
	nro, err := c.id.Key.Signer().Sign(signBytes(flagNRO, label, hashC.Sum))
	if err != nil {
		return nil, err
	}
	c.ctr.Inc(metrics.SignOps, 1)
	c.ctr.Inc(metrics.MsgsSent, 1)
	c.ctr.Inc(metrics.BytesSent, int64(len(commitment)))
	c.ctr.Inc(metrics.Rounds, 1)

	// Step 2: B → A.
	nrr, err := provider.ReceiveCommit(ctx, label, objectKey, commitment, nro, c.id.Name)
	if err != nil {
		return nil, err
	}
	c.ctr.Inc(metrics.MsgsRecv, 1)
	bCert, err := c.dir(providerName(provider))
	if err != nil {
		return nil, err
	}
	bPub, err := bCert.Key()
	if err != nil {
		return nil, err
	}
	if err := bPub.Verify(signBytes(flagNRR, label, hashC.Sum), nrr); err != nil {
		return nil, fmt.Errorf("%w: NRR: %v", ErrBadSignature, err)
	}
	c.ctr.Inc(metrics.VerifyOps, 1)

	// Step 3: A → TTP.
	subK, err := c.id.Key.Signer().Sign(signBytes(flagSUB, label, key))
	if err != nil {
		return nil, err
	}
	c.ctr.Inc(metrics.SignOps, 1)
	c.ctr.Inc(metrics.MsgsSent, 1)
	c.ctr.Inc(metrics.TTPMsgs, 1)
	c.ctr.Inc(metrics.Rounds, 1)
	if err := ttp.Submit(ctx, label, key, subK, c.id.Name); err != nil {
		return nil, err
	}

	// Step 4 (B's half): B fetches the key and completes storage.
	if err := provider.Complete(ctx, label, ttp); err != nil {
		return nil, err
	}

	// Step 4 (A's half): A fetches con_K as her evidence.
	_, conK, err := ttp.Fetch(ctx, label)
	if err != nil {
		return nil, err
	}
	c.ctr.Inc(metrics.MsgsSent, 1)
	c.ctr.Inc(metrics.MsgsRecv, 1)
	c.ctr.Inc(metrics.TTPMsgs, 2)

	return &Result{Label: label, NRO: nro, NRR: nrr, ConK: conK, Key: key, HashC: hashC}, nil
}

// providerName extracts B's identity name.
func providerName(p *Provider) string { return p.id.Name }
