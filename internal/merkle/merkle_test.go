package merkle

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func chunksOf(n int) [][]byte {
	chunks := make([][]byte, n)
	for i := range chunks {
		chunks[i] = []byte(fmt.Sprintf("chunk-%04d", i))
	}
	return chunks
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNoChunks) {
		t.Fatalf("err = %v, want ErrNoChunks", err)
	}
	if _, err := FromLeaves(nil); !errors.Is(err, ErrNoChunks) {
		t.Fatalf("FromLeaves: err = %v", err)
	}
}

func TestSingleLeaf(t *testing.T) {
	tr, err := New([][]byte{[]byte("only")})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().Equal(LeafHash([]byte("only"))) {
		t.Fatal("single-leaf root must equal the leaf hash")
	}
	p, err := tr.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 0 {
		t.Fatalf("single-leaf proof has %d steps", len(p.Steps))
	}
	if err := p.Verify(tr.Root(), []byte("only")); err != nil {
		t.Fatal(err)
	}
}

func TestRootDeterministicAndContentSensitive(t *testing.T) {
	a, _ := New(chunksOf(7))
	b, _ := New(chunksOf(7))
	if !a.Root().Equal(b.Root()) {
		t.Fatal("same chunks produced different roots")
	}
	mutated := chunksOf(7)
	mutated[3] = []byte("chunk-XXXX")
	c, _ := New(mutated)
	if a.Root().Equal(c.Root()) {
		t.Fatal("mutated chunk did not change the root")
	}
	// Order matters.
	swapped := chunksOf(7)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	d, _ := New(swapped)
	if a.Root().Equal(d.Root()) {
		t.Fatal("swapped chunks did not change the root")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// A leaf whose content equals the concatenation of two hashes must
	// not hash to their interior node.
	l, r := LeafHash([]byte("l")), LeafHash([]byte("r"))
	interior := interiorHash(l, r)
	fakeLeafContent := append(append([]byte(nil), l.Sum...), r.Sum...)
	if LeafHash(fakeLeafContent).Equal(interior) {
		t.Fatal("leaf/interior domains collide")
	}
}

func TestProveVerifyAllLeavesAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33} {
		chunks := chunksOf(n)
		tr, err := New(chunks)
		if err != nil {
			t.Fatal(err)
		}
		root := tr.Root()
		for i := 0; i < n; i++ {
			p, err := tr.Prove(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if err := p.Verify(root, chunks[i]); err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
		}
	}
}

func TestProofRejectsWrongChunk(t *testing.T) {
	chunks := chunksOf(9)
	tr, _ := New(chunks)
	p, _ := tr.Prove(4)
	if err := p.Verify(tr.Root(), []byte("tampered")); !errors.Is(err, ErrBadProof) {
		t.Fatalf("err = %v, want ErrBadProof", err)
	}
	// A proof for leaf 4 must not verify leaf 5's content.
	if err := p.Verify(tr.Root(), chunks[5]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("cross-leaf: err = %v", err)
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	chunks := chunksOf(6)
	tr, _ := New(chunks)
	p, _ := tr.Prove(2)
	other, _ := New(chunksOf(5))
	if err := p.Verify(other.Root(), chunks[2]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("err = %v, want ErrBadProof", err)
	}
}

func TestProofRejectsTamperedSteps(t *testing.T) {
	chunks := chunksOf(8)
	tr, _ := New(chunks)
	p, _ := tr.Prove(3)
	p.Steps[1].Sibling.Sum[0] ^= 1
	if err := p.Verify(tr.Root(), chunks[3]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("err = %v, want ErrBadProof", err)
	}
	// Truncated proof.
	p2, _ := tr.Prove(3)
	p2.Steps = p2.Steps[:len(p2.Steps)-1]
	if err := p2.Verify(tr.Root(), chunks[3]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("truncated: err = %v", err)
	}
	// Extended proof.
	p3, _ := tr.Prove(3)
	p3.Steps = append(p3.Steps, p3.Steps[0])
	if err := p3.Verify(tr.Root(), chunks[3]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("extended: err = %v", err)
	}
	// Flipped side bit.
	p4, _ := tr.Prove(3)
	p4.Steps[0].Left = !p4.Steps[0].Left
	if err := p4.Verify(tr.Root(), chunks[3]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("side flip: err = %v", err)
	}
}

func TestProveOutOfRange(t *testing.T) {
	tr, _ := New(chunksOf(4))
	for _, i := range []int{-1, 4, 100} {
		if _, err := tr.Prove(i); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("Prove(%d): %v", i, err)
		}
	}
}

func TestVerifyBadProofMetadata(t *testing.T) {
	tr, _ := New(chunksOf(4))
	p, _ := tr.Prove(0)
	bad := *p
	bad.LeafCount = 0
	if err := bad.Verify(tr.Root(), chunksOf(4)[0]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("zero leaf count: %v", err)
	}
	bad2 := *p
	bad2.Index = 9
	if err := bad2.Verify(tr.Root(), chunksOf(4)[0]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("index out of count: %v", err)
	}
}

func TestSplit(t *testing.T) {
	data := []byte("abcdefghij")
	chunks := Split(data, 4)
	if len(chunks) != 3 || string(chunks[0]) != "abcd" || string(chunks[2]) != "ij" {
		t.Fatalf("Split = %q", chunks)
	}
	if got := Split(nil, 4); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("Split(empty) = %q", got)
	}
	// Reassembly is lossless.
	var re []byte
	for _, c := range Split(data, 3) {
		re = append(re, c...)
	}
	if !bytes.Equal(re, data) {
		t.Fatal("Split lost data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Split with chunkSize 0 did not panic")
		}
	}()
	Split(data, 0)
}

func TestQuickSplitTreeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(data []byte) bool {
		chunkSize := 1 + rng.Intn(64)
		chunks := Split(data, chunkSize)
		tr, err := New(chunks)
		if err != nil {
			return false
		}
		i := rng.Intn(len(chunks))
		p, err := tr.Prove(i)
		if err != nil {
			return false
		}
		return p.Verify(tr.Root(), chunks[i]) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickTamperAlwaysDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		chunks := make([][]byte, n)
		for i := range chunks {
			chunks[i] = []byte(fmt.Sprintf("c%d-%d", i, r.Int63()))
		}
		tr, err := New(chunks)
		if err != nil {
			return false
		}
		i := rng.Intn(n)
		p, err := tr.Prove(i)
		if err != nil {
			return false
		}
		tampered := append([]byte(nil), chunks[i]...)
		tampered[r.Intn(len(tampered))] ^= 1 + byte(r.Intn(255))
		return p.Verify(tr.Root(), tampered) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLeavesCount(t *testing.T) {
	tr, _ := New(chunksOf(13))
	if tr.Leaves() != 13 {
		t.Fatalf("Leaves = %d", tr.Leaves())
	}
}
