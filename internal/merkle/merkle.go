// Package merkle implements a SHA-256 Merkle tree over object chunks.
//
// The paper targets terabyte-scale backups ("Cloud storage is only
// attractive to large volume (TB) data backup", §6) but its evidence
// covers a whole object with a single digest — so detecting tampering
// means re-reading the entire object, and a dispute cannot say WHICH
// part changed. This package is the natural extension: evidence signs
// the Merkle root, per-chunk inclusion proofs localize tampering, and
// a downloader can verify chunks incrementally. internal/bigobject
// builds the chunked TPNR flow on top.
package merkle

import (
	"errors"
	"fmt"

	"repro/internal/cryptoutil"
)

// Domain-separation prefixes: leaf and interior hashes must differ or
// an attacker could present an interior node as a leaf (the classic
// second-preimage trick).
var (
	leafPrefix     = []byte{0x00}
	interiorPrefix = []byte{0x01}
)

// Errors.
var (
	ErrNoChunks   = errors.New("merkle: no chunks")
	ErrBadProof   = errors.New("merkle: inclusion proof verification failed")
	ErrOutOfRange = errors.New("merkle: chunk index out of range")
)

// LeafHash hashes one chunk's content as a leaf.
func LeafHash(chunk []byte) cryptoutil.Digest {
	return cryptoutil.Sum(cryptoutil.SHA256, append(append([]byte(nil), leafPrefix...), chunk...))
}

func interiorHash(left, right cryptoutil.Digest) cryptoutil.Digest {
	buf := make([]byte, 0, 1+len(left.Sum)+len(right.Sum))
	buf = append(buf, interiorPrefix...)
	buf = append(buf, left.Sum...)
	buf = append(buf, right.Sum...)
	return cryptoutil.Sum(cryptoutil.SHA256, buf)
}

// Tree is a Merkle tree over a fixed sequence of leaf hashes. Levels
// are stored bottom-up: levels[0] is the leaves, the last level has
// one node (the root). An odd node at any level is promoted unpaired
// (Bitcoin-style duplication is avoided — promotion cannot create
// ambiguity given domain separation and a fixed leaf count, which the
// proof carries).
type Tree struct {
	levels [][]cryptoutil.Digest
}

// New builds a tree over the given chunks.
func New(chunks [][]byte) (*Tree, error) {
	if len(chunks) == 0 {
		return nil, ErrNoChunks
	}
	leaves := make([]cryptoutil.Digest, len(chunks))
	for i, c := range chunks {
		leaves[i] = LeafHash(c)
	}
	return FromLeaves(leaves)
}

// FromLeaves builds a tree over precomputed leaf hashes.
func FromLeaves(leaves []cryptoutil.Digest) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrNoChunks
	}
	t := &Tree{levels: [][]cryptoutil.Digest{append([]cryptoutil.Digest(nil), leaves...)}}
	for cur := t.levels[0]; len(cur) > 1; {
		next := make([]cryptoutil.Digest, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			if i+1 < len(cur) {
				next = append(next, interiorHash(cur[i], cur[i+1]))
			} else {
				next = append(next, cur[i]) // unpaired node promotes
			}
		}
		t.levels = append(t.levels, next)
		cur = next
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() cryptoutil.Digest { return t.levels[len(t.levels)-1][0].Clone() }

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return len(t.levels[0]) }

// ProofStep is one sibling on the path from a leaf to the root.
type ProofStep struct {
	// Sibling is the neighbouring hash at this level.
	Sibling cryptoutil.Digest
	// Left is true when the sibling is on the left of the path node.
	Left bool
}

// Proof is an inclusion proof for one leaf.
type Proof struct {
	// Index is the leaf position.
	Index int
	// LeafCount fixes the tree shape the proof was built for.
	LeafCount int
	// Steps are the siblings bottom-up. Levels where the path node is
	// unpaired contribute no step.
	Steps []ProofStep
}

// Prove builds the inclusion proof for leaf index i.
func (t *Tree) Prove(i int) (*Proof, error) {
	if i < 0 || i >= t.Leaves() {
		return nil, fmt.Errorf("%w: %d of %d", ErrOutOfRange, i, t.Leaves())
	}
	p := &Proof{Index: i, LeafCount: t.Leaves()}
	idx := i
	for level := 0; level < len(t.levels)-1; level++ {
		nodes := t.levels[level]
		if idx%2 == 0 {
			if idx+1 < len(nodes) {
				p.Steps = append(p.Steps, ProofStep{Sibling: nodes[idx+1].Clone(), Left: false})
			}
			// Unpaired: promoted without a step.
		} else {
			p.Steps = append(p.Steps, ProofStep{Sibling: nodes[idx-1].Clone(), Left: true})
		}
		idx /= 2
	}
	return p, nil
}

// Verify checks that chunk is the proof's leaf under root.
func (p *Proof) Verify(root cryptoutil.Digest, chunk []byte) error {
	return p.VerifyLeaf(root, LeafHash(chunk))
}

// VerifyLeaf checks a precomputed leaf hash against the root.
func (p *Proof) VerifyLeaf(root, leaf cryptoutil.Digest) error {
	if p.Index < 0 || p.Index >= p.LeafCount || p.LeafCount <= 0 {
		return fmt.Errorf("%w: index %d of %d", ErrBadProof, p.Index, p.LeafCount)
	}
	cur := leaf
	idx, width := p.Index, p.LeafCount
	step := 0
	for width > 1 {
		paired := idx%2 == 0 && idx+1 < width || idx%2 == 1
		if paired {
			if step >= len(p.Steps) {
				return fmt.Errorf("%w: proof too short", ErrBadProof)
			}
			s := p.Steps[step]
			if s.Left != (idx%2 == 1) {
				return fmt.Errorf("%w: step %d on wrong side", ErrBadProof, step)
			}
			if s.Left {
				cur = interiorHash(s.Sibling, cur)
			} else {
				cur = interiorHash(cur, s.Sibling)
			}
			step++
		}
		idx /= 2
		width = (width + 1) / 2
	}
	if step != len(p.Steps) {
		return fmt.Errorf("%w: %d unused proof steps", ErrBadProof, len(p.Steps)-step)
	}
	if !cur.Equal(root) {
		return fmt.Errorf("%w: computed root %s != %s", ErrBadProof, cur.Hex()[:16], root.Hex()[:16])
	}
	return nil
}

// Split cuts data into chunkSize pieces (the last may be shorter). A
// non-positive chunkSize panics: the caller owns that policy.
func Split(data []byte, chunkSize int) [][]byte {
	if chunkSize <= 0 {
		panic("merkle: non-positive chunk size")
	}
	if len(data) == 0 {
		return [][]byte{{}}
	}
	chunks := make([][]byte, 0, (len(data)+chunkSize-1)/chunkSize)
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, data[off:end])
	}
	return chunks
}
