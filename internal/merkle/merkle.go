// Package merkle implements a SHA-256 Merkle tree over object chunks.
//
// The paper targets terabyte-scale backups ("Cloud storage is only
// attractive to large volume (TB) data backup", §6) but its evidence
// covers a whole object with a single digest — so detecting tampering
// means re-reading the entire object, and a dispute cannot say WHICH
// part changed. This package is the natural extension: evidence signs
// the Merkle root, per-chunk inclusion proofs localize tampering, and
// a downloader can verify chunks incrementally. internal/bigobject
// builds the chunked TPNR flow on top.
package merkle

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cryptoutil"
)

// Domain-separation prefixes: leaf and interior hashes must differ or
// an attacker could present an interior node as a leaf (the classic
// second-preimage trick).
var (
	leafPrefix     = []byte{0x00}
	interiorPrefix = []byte{0x01}
)

// Errors.
var (
	ErrNoChunks   = errors.New("merkle: no chunks")
	ErrBadProof   = errors.New("merkle: inclusion proof verification failed")
	ErrOutOfRange = errors.New("merkle: chunk index out of range")
)

// LeafHash hashes one chunk's content as a leaf. The prefix and chunk
// are streamed into the hash state separately — copying the chunk just
// to prepend one byte would double the memory traffic of a tree build.
func LeafHash(chunk []byte) cryptoutil.Digest {
	h := cryptoutil.SHA256.New()
	h.Write(leafPrefix)
	h.Write(chunk)
	return cryptoutil.Digest{Alg: cryptoutil.SHA256, Sum: h.Sum(nil)}
}

func interiorHash(left, right cryptoutil.Digest) cryptoutil.Digest {
	h := cryptoutil.SHA256.New()
	h.Write(interiorPrefix)
	h.Write(left.Sum)
	h.Write(right.Sum)
	return cryptoutil.Digest{Alg: cryptoutil.SHA256, Sum: h.Sum(nil)}
}

// Tree is a Merkle tree over a fixed sequence of leaf hashes. Levels
// are stored bottom-up: levels[0] is the leaves, the last level has
// one node (the root). An odd node at any level is promoted unpaired
// (Bitcoin-style duplication is avoided — promotion cannot create
// ambiguity given domain separation and a fixed leaf count, which the
// proof carries).
type Tree struct {
	levels [][]cryptoutil.Digest
}

// parallelMinNodes is the per-level node count below which sharding
// hash work across goroutines costs more than it saves; narrow levels
// (and everything on a single-core box) build serially.
const parallelMinNodes = 64

// parallelFor runs fn over contiguous shards of [0, n) on up to
// `workers` goroutines. With one worker (or small n) it degenerates to
// a plain loop on the calling goroutine — no spawns, no allocation.
func parallelFor(n, workers int, fn func(lo, hi int)) {
	if workers > n/parallelMinNodes {
		workers = n / parallelMinNodes
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	shard := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += shard {
		hi := lo + shard
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// New builds a tree over the given chunks. Leaf hashing — the bulk of
// the work, one SHA-256 pass over the whole object — and each interior
// level are sharded across GOMAXPROCS workers when the level is wide
// enough; the resulting tree is bit-identical to a serial build.
func New(chunks [][]byte) (*Tree, error) {
	return newWith(chunks, runtime.GOMAXPROCS(0))
}

// newWith is New with an explicit worker bound so tests can pin the
// parallel path (or the serial one) regardless of the host's cores.
func newWith(chunks [][]byte, workers int) (*Tree, error) {
	if len(chunks) == 0 {
		return nil, ErrNoChunks
	}
	leaves := make([]cryptoutil.Digest, len(chunks))
	parallelFor(len(chunks), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			leaves[i] = LeafHash(chunks[i])
		}
	})
	return fromLeavesOwned(leaves, workers)
}

// FromLeaves builds a tree over precomputed leaf hashes.
func FromLeaves(leaves []cryptoutil.Digest) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrNoChunks
	}
	return fromLeavesOwned(append([]cryptoutil.Digest(nil), leaves...), runtime.GOMAXPROCS(0))
}

// fromLeavesOwned takes ownership of leaves and builds the levels
// above it. Pairs within a level are independent, so wide levels hash
// in parallel shards; the unpaired-promotion rule is applied after.
func fromLeavesOwned(leaves []cryptoutil.Digest, workers int) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrNoChunks
	}
	t := &Tree{levels: [][]cryptoutil.Digest{leaves}}
	for cur := t.levels[0]; len(cur) > 1; {
		next := make([]cryptoutil.Digest, (len(cur)+1)/2)
		pairs := len(cur) / 2
		parallelFor(pairs, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				next[i] = interiorHash(cur[2*i], cur[2*i+1])
			}
		})
		if len(cur)%2 == 1 {
			next[len(next)-1] = cur[len(cur)-1] // unpaired node promotes
		}
		t.levels = append(t.levels, next)
		cur = next
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() cryptoutil.Digest { return t.levels[len(t.levels)-1][0].Clone() }

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return len(t.levels[0]) }

// ProofStep is one sibling on the path from a leaf to the root.
type ProofStep struct {
	// Sibling is the neighbouring hash at this level.
	Sibling cryptoutil.Digest
	// Left is true when the sibling is on the left of the path node.
	Left bool
}

// Proof is an inclusion proof for one leaf.
type Proof struct {
	// Index is the leaf position.
	Index int
	// LeafCount fixes the tree shape the proof was built for.
	LeafCount int
	// Steps are the siblings bottom-up. Levels where the path node is
	// unpaired contribute no step.
	Steps []ProofStep
}

// Prove builds the inclusion proof for leaf index i.
func (t *Tree) Prove(i int) (*Proof, error) {
	if i < 0 || i >= t.Leaves() {
		return nil, fmt.Errorf("%w: %d of %d", ErrOutOfRange, i, t.Leaves())
	}
	p := &Proof{Index: i, LeafCount: t.Leaves()}
	idx := i
	for level := 0; level < len(t.levels)-1; level++ {
		nodes := t.levels[level]
		if idx%2 == 0 {
			if idx+1 < len(nodes) {
				p.Steps = append(p.Steps, ProofStep{Sibling: nodes[idx+1].Clone(), Left: false})
			}
			// Unpaired: promoted without a step.
		} else {
			p.Steps = append(p.Steps, ProofStep{Sibling: nodes[idx-1].Clone(), Left: true})
		}
		idx /= 2
	}
	return p, nil
}

// Verify checks that chunk is the proof's leaf under root.
func (p *Proof) Verify(root cryptoutil.Digest, chunk []byte) error {
	return p.VerifyLeaf(root, LeafHash(chunk))
}

// VerifyLeaf checks a precomputed leaf hash against the root.
func (p *Proof) VerifyLeaf(root, leaf cryptoutil.Digest) error {
	if p.Index < 0 || p.Index >= p.LeafCount || p.LeafCount <= 0 {
		return fmt.Errorf("%w: index %d of %d", ErrBadProof, p.Index, p.LeafCount)
	}
	cur := leaf
	idx, width := p.Index, p.LeafCount
	step := 0
	for width > 1 {
		paired := idx%2 == 0 && idx+1 < width || idx%2 == 1
		if paired {
			if step >= len(p.Steps) {
				return fmt.Errorf("%w: proof too short", ErrBadProof)
			}
			s := p.Steps[step]
			if s.Left != (idx%2 == 1) {
				return fmt.Errorf("%w: step %d on wrong side", ErrBadProof, step)
			}
			if s.Left {
				cur = interiorHash(s.Sibling, cur)
			} else {
				cur = interiorHash(cur, s.Sibling)
			}
			step++
		}
		idx /= 2
		width = (width + 1) / 2
	}
	if step != len(p.Steps) {
		return fmt.Errorf("%w: %d unused proof steps", ErrBadProof, len(p.Steps)-step)
	}
	if !cur.Equal(root) {
		return fmt.Errorf("%w: computed root %s != %s", ErrBadProof, cur.Hex()[:16], root.Hex()[:16])
	}
	return nil
}

// Split cuts data into chunkSize pieces (the last may be shorter). A
// non-positive chunkSize panics: the caller owns that policy.
func Split(data []byte, chunkSize int) [][]byte {
	if chunkSize <= 0 {
		panic("merkle: non-positive chunk size")
	}
	if len(data) == 0 {
		return [][]byte{{}}
	}
	chunks := make([][]byte, 0, (len(data)+chunkSize-1)/chunkSize)
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, data[off:end])
	}
	return chunks
}
