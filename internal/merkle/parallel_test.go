package merkle

import (
	"math/rand"
	"testing"

	"repro/internal/cryptoutil"
)

// serialTree is the reference build: plain loops, no sharding.
func serialTree(t *testing.T, chunks [][]byte) *Tree {
	t.Helper()
	leaves := make([]cryptoutil.Digest, len(chunks))
	for i, c := range chunks {
		leaves[i] = LeafHash(c)
	}
	tr, err := fromLeavesOwned(leaves, 1)
	if err != nil {
		t.Fatalf("serial build: %v", err)
	}
	return tr
}

// TestParallelBuildMatchesSerial pins the parallel path with a forced
// worker count (the host may have one core) and requires every level —
// not just the root — to match the serial build bit for bit.
func TestParallelBuildMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 129, 500, 1024} {
		chunks := make([][]byte, n)
		for i := range chunks {
			chunks[i] = make([]byte, 512)
			rng.Read(chunks[i])
		}
		want := serialTree(t, chunks)
		for _, workers := range []int{2, 4, 16} {
			got, err := newWith(chunks, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if len(got.levels) != len(want.levels) {
				t.Fatalf("n=%d workers=%d: %d levels, want %d", n, workers, len(got.levels), len(want.levels))
			}
			for lv := range want.levels {
				if len(got.levels[lv]) != len(want.levels[lv]) {
					t.Fatalf("n=%d workers=%d level %d: width %d, want %d", n, workers, lv, len(got.levels[lv]), len(want.levels[lv]))
				}
				for i := range want.levels[lv] {
					if !got.levels[lv][i].Equal(want.levels[lv][i]) {
						t.Fatalf("n=%d workers=%d: node (%d,%d) differs from serial build", n, workers, lv, i)
					}
				}
			}
		}
		// The exported entry point must agree too, whatever GOMAXPROCS is.
		got, err := New(chunks)
		if err != nil {
			t.Fatalf("New n=%d: %v", n, err)
		}
		if !got.Root().Equal(want.Root()) {
			t.Fatalf("n=%d: New root differs from serial build", n)
		}
	}
}

// TestParallelProofsVerify checks proofs from a parallel-built tree
// verify against a serial-built root and vice versa.
func TestParallelProofsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	chunks := make([][]byte, 300)
	for i := range chunks {
		chunks[i] = make([]byte, 256)
		rng.Read(chunks[i])
	}
	par, err := newWith(chunks, 8)
	if err != nil {
		t.Fatal(err)
	}
	ser := serialTree(t, chunks)
	for _, i := range []int{0, 1, 149, 298, 299} {
		p, err := par.Prove(i)
		if err != nil {
			t.Fatalf("Prove(%d): %v", i, err)
		}
		if err := p.Verify(ser.Root(), chunks[i]); err != nil {
			t.Fatalf("parallel proof %d against serial root: %v", i, err)
		}
		sp, err := ser.Prove(i)
		if err != nil {
			t.Fatalf("serial Prove(%d): %v", i, err)
		}
		if err := sp.Verify(par.Root(), chunks[i]); err != nil {
			t.Fatalf("serial proof %d against parallel root: %v", i, err)
		}
	}
}
