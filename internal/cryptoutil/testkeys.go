package cryptoutil

import "sync"

// InsecureTestKey returns a cached 1024-bit RSA key pair for the given
// slot. Key generation dominates test time, so tests and benchmarks
// across the repository share these cached keys instead of generating
// fresh 2048-bit identities per test. Never use these outside tests,
// examples, and experiment harnesses: 1024-bit RSA is undersized for
// production and the cache makes keys process-global.
func InsecureTestKey(slot int) KeyPair {
	testKeyMu.Lock()
	defer testKeyMu.Unlock()
	if k, ok := testKeys[slot]; ok {
		return k
	}
	k, err := GenerateKeyBits(1024)
	if err != nil {
		panic(err)
	}
	testKeys[slot] = k
	return k
}

var (
	testKeyMu sync.Mutex
	testKeys  = map[int]KeyPair{}
)
