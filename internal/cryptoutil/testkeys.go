package cryptoutil

import "sync"

// InsecureTestKey returns a cached 1024-bit RSA key pair for the given
// slot. Key generation dominates test time, so tests and benchmarks
// across the repository share these cached keys instead of generating
// fresh 2048-bit identities per test. Never use these outside tests,
// examples, and experiment harnesses: 1024-bit RSA is undersized for
// production and the cache makes keys process-global.
func InsecureTestKey(slot int) KeyPair { return InsecureTestKeyScheme(slot, SchemeRSA) }

// InsecureTestKeyScheme is InsecureTestKey with a scheme choice: the
// same slot yields independent cached keys per scheme, so a test can
// run its whole harness under either scheme (the chaos suite does,
// driven by the TPNR_SCHEME env var). RSA test keys are 1024-bit.
func InsecureTestKeyScheme(slot int, scheme Scheme) KeyPair {
	testKeyMu.Lock()
	defer testKeyMu.Unlock()
	k := testKey{slot: slot, scheme: scheme}
	if kp, ok := testKeys[k]; ok {
		return kp
	}
	var (
		kp  KeyPair
		err error
	)
	if scheme == SchemeRSA {
		kp, err = GenerateKeyBits(1024)
	} else {
		kp, err = GenerateKeyPair(scheme)
	}
	if err != nil {
		panic(err)
	}
	testKeys[k] = kp
	return kp
}

type testKey struct {
	slot   int
	scheme Scheme
}

var (
	testKeyMu sync.Mutex
	testKeys  = map[testKey]KeyPair{}
)
