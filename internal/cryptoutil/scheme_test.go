package cryptoutil

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
)

// Golden fixtures: fixed key material so the marshal forms, fingerprints
// and (deterministic) signatures are pinned across releases. Both
// PKCS#1 v1.5 and Ed25519 are deterministic signature schemes, so the
// signature bytes themselves are stable.
const (
	// goldenRSAPKCS1 is a fixed 1024-bit RSA private key, PKCS#1 DER —
	// the historical keystore encoding, parsed by ParseSigner.
	goldenRSAPKCS1 = "3082025c02010002818100c4577980fc66863a018e7b8c2a216fe18cd7f50fd33da445321506520f42d8388f8683587821daad292b27bfacff8872c01497b35c176ddb33b29fa341ab71a6c57188e5cfb733a1391eb75e64b80520b8595d7b6fd8ee43502ea01d110c6297f42ffa8016f25b0d353cc747504b1acad49f3832d272446b5d430e4ab02cd72702030100010281800eb6dd88c0a1b05a85865794fc0d5074af58f9e92b3419ed03a156bd6c9e5e54f2d0aa6445708812651cf258278f68faec913e83371a1c660a9c4ee16dc8faf5da3eb992e94300e5d00e783dce3d09b320b589ee31446f43951e0aa37cfc22fba1957c7d7d190bda97a674e023080c03684c2a569f7cebfad792b2885d1dc37d024100ff905c16fa292810a58108c2c50334261a1122c4bdf6176da9871de4cd96f030acbc8ad66a5278949f78fb1e4db7514e126a85fd42147fdbf72aa6ec3692d02b024100c4ad3e8c704900222847e61aa5c96870438083b3028a054d0b3e9295afd0a9be5f57ceaefc79790bc0bcc275e54d07414543a5f205aa71192143f259c6b5daf502400c07b29e0e4693b13ce9370d5c12cb88a39f7ce08004ae93a5f04b52f2ee90fde993b281675ddc793a8c8a5da1d0e84de1860c2aa0cab03e1d836f7a1d138a23024100a65b8bceaaa374d36f92f15594e9b9c74bb186b481ef50f08c144f5501b3d4004d112ea7e0b2b6ea740ab5c9973d0267f938714337fba552864abcd1a73ce78902406615e2eba30b4f3ea6fb5dd0a3c81a134298b243399a57bcf9368bf4f4e7e4cdc5a90c5b18aedde979dda948f04b2f2a7e9c4a1a2ac322c15b820c951a59723c"
	// goldenEdSeed / goldenXPriv are the fixed Ed25519 seed and X25519
	// scalar packed into the private envelope.
	goldenEdSeed = "030a11181f262d343b424950575e656c737a81888f969da4abb2b9c0c7ced5dc"
	goldenXPriv  = "05121f2c394653606d7a8794a1aebbc8d5e2effc091623303d4a5764717e8b98"

	goldenMsg = "tpnr golden fixture message"

	// Pinned outputs. If any of these change, archived evidence and
	// certificates stop verifying — that is a wire-format break, not a
	// test to update.
	goldenRSAFP  = "27234c18bc52625f29620bf4a4e176242a0cc52571f54339fae30e6335f3e8b5"
	goldenRSASig = "5bceb984550f64b0bf6d2179f0845c78dbb9acc0e35980a5d16a6260302a508f1c40a2d9a968b1cd00b71158044da901562b77abdf62a25a9b30097b2c77192078fae592adf72d616a22efcd1f1292fbbdd9f61cc420bdc94921e336926cce52f799d4ac760e5e954647b89c9f9d9d9ecf71fd59f7e379a94f1c485e5c243cf1"
	goldenEdEnv  = "74706e722d706b2d656432353531392d763100755c4cb9256ca7cdc4acfdc6cfeeda849017e5b9f9514e99191bd67e0b0d4276c25e8b84378b21071d603dfce3f947b162b6e715240344db0a18d99259a6de23"
	goldenEdFP   = "e395b594789b1071f9d646d68e16fb11dd2fa0d58062dc1e8aeb7f998ee706dc"
	goldenEdSig  = "662d6c9569a6838d540bf591565b84f805e87a0c96324d4a6cb282152fd1674edf8ab5bcd01af392e9f71b4981f35839d517d17c21392fb136784378c9658d0d"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex fixture: %v", err)
	}
	return b
}

// goldenSigner parses the fixed signer for a scheme from its marshal
// form, exercising ParseSigner on both encodings.
func goldenSigner(t *testing.T, s Scheme) Signer {
	t.Helper()
	var b []byte
	switch s {
	case SchemeRSA:
		b = unhex(t, goldenRSAPKCS1)
	case SchemeEd25519:
		b = append(append([]byte(nil), ed25519PrivMagic...), unhex(t, goldenEdSeed)...)
		b = append(b, unhex(t, goldenXPriv)...)
	default:
		t.Fatalf("no golden signer for %v", s)
	}
	sg, err := ParseSigner(b)
	if err != nil {
		t.Fatalf("ParseSigner(%v): %v", s, err)
	}
	if sg.Scheme() != s {
		t.Fatalf("parsed scheme = %v, want %v", sg.Scheme(), s)
	}
	return sg
}

// TestGoldenCrossScheme is the cross-scheme golden round-trip: for each
// scheme, sign → marshal the public key → re-parse it → verify, with
// the marshal bytes, fingerprint and signature pinned to golden hex.
func TestGoldenCrossScheme(t *testing.T) {
	cases := []struct {
		scheme   Scheme
		fp, sig  string
		pinnedPK string // "" when the marshal form is not pinned here
	}{
		{SchemeRSA, goldenRSAFP, goldenRSASig, ""},
		{SchemeEd25519, goldenEdFP, goldenEdSig, goldenEdEnv},
	}
	for _, tc := range cases {
		t.Run(tc.scheme.String(), func(t *testing.T) {
			sg := goldenSigner(t, tc.scheme)
			pub := sg.Public()

			if got := hex.EncodeToString(pub.Fingerprint().Sum); got != tc.fp {
				t.Errorf("fingerprint = %s, want %s", got, tc.fp)
			}
			if tc.pinnedPK != "" {
				if got := hex.EncodeToString(pub.Marshal()); got != tc.pinnedPK {
					t.Errorf("marshal = %s, want %s", got, tc.pinnedPK)
				}
			}

			sig, err := sg.Sign([]byte(goldenMsg))
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if got := hex.EncodeToString(sig); got != tc.sig {
				t.Errorf("signature = %s, want %s", got, tc.sig)
			}

			// Marshal → ParseAnyPublicKey → verify: the parsed handle must
			// accept the signature and reproduce the fingerprint.
			reparsed, err := ParseAnyPublicKey(pub.Marshal())
			if err != nil {
				t.Fatalf("ParseAnyPublicKey: %v", err)
			}
			if reparsed.Scheme() != tc.scheme {
				t.Fatalf("reparsed scheme = %v, want %v", reparsed.Scheme(), tc.scheme)
			}
			if !reparsed.Fingerprint().Equal(pub.Fingerprint()) {
				t.Errorf("fingerprint changed across marshal round-trip")
			}
			if !reparsed.Equal(pub) || !pub.Equal(reparsed) {
				t.Errorf("Equal is false across marshal round-trip")
			}
			if err := reparsed.Verify([]byte(goldenMsg), sig); err != nil {
				t.Errorf("reparsed key rejects golden signature: %v", err)
			}
			if err := reparsed.Verify([]byte(goldenMsg+"!"), sig); err == nil {
				t.Errorf("reparsed key accepts signature over wrong message")
			}

			// Signer marshal round-trip: serialize the private material,
			// re-parse, and check the key identity survived.
			der, err := MarshalSigner(sg)
			if err != nil {
				t.Fatalf("MarshalSigner: %v", err)
			}
			sg2, err := ParseSigner(der)
			if err != nil {
				t.Fatalf("ParseSigner(round-trip): %v", err)
			}
			if !sg2.Public().Fingerprint().Equal(pub.Fingerprint()) {
				t.Errorf("fingerprint changed across signer round-trip")
			}
		})
	}
}

// TestSealUnsealBothSchemes checks the hybrid sealing round-trip per
// scheme, plus tamper rejection, through re-parsed handles (the path
// evidence actually takes: recipient key arrives marshaled).
func TestSealUnsealBothSchemes(t *testing.T) {
	for _, s := range []Scheme{SchemeRSA, SchemeEd25519} {
		t.Run(s.String(), func(t *testing.T) {
			sg := goldenSigner(t, s)
			pub, err := ParseAnyPublicKey(sg.Public().Marshal())
			if err != nil {
				t.Fatalf("ParseAnyPublicKey: %v", err)
			}
			plaintext := bytes.Repeat([]byte("evidence "), 100)
			sealed, err := pub.Seal(plaintext)
			if err != nil {
				t.Fatalf("Seal: %v", err)
			}
			got, err := sg.Unseal(sealed)
			if err != nil {
				t.Fatalf("Unseal: %v", err)
			}
			if !bytes.Equal(got, plaintext) {
				t.Fatalf("unsealed plaintext differs")
			}
			// Flip one payload byte: the MAC must catch it.
			bad := append([]byte(nil), sealed...)
			bad[len(bad)-1] ^= 0x01
			if _, err := sg.Unseal(bad); err == nil {
				t.Fatalf("Unseal accepted tampered ciphertext")
			}
			// Sealing for the other scheme's key must not unseal here.
			other := SchemeEd25519
			if s == SchemeEd25519 {
				other = SchemeRSA
			}
			crossSealed, err := goldenSigner(t, other).Public().Seal(plaintext)
			if err != nil {
				t.Fatalf("cross Seal: %v", err)
			}
			if _, err := sg.Unseal(crossSealed); err == nil {
				t.Fatalf("Unseal accepted ciphertext sealed for a %v key", other)
			}
		})
	}
}

// TestSchemeMismatchTyped checks that presenting a signature of the
// wrong scheme yields ErrSchemeMismatch (errors.Is-matchable), the
// typed error pkitool reports for mixed-scheme verification.
func TestSchemeMismatchTyped(t *testing.T) {
	rsaS := goldenSigner(t, SchemeRSA)
	edS := goldenSigner(t, SchemeEd25519)
	msg := []byte(goldenMsg)
	rsaSig, _ := rsaS.Sign(msg)
	edSig, _ := edS.Sign(msg)

	if err := rsaS.Public().Verify(msg, edSig); !errors.Is(err, ErrSchemeMismatch) {
		t.Errorf("RSA key + ed25519 sig: got %v, want ErrSchemeMismatch", err)
	}
	if err := edS.Public().Verify(msg, rsaSig); !errors.Is(err, ErrSchemeMismatch) {
		t.Errorf("ed25519 key + RSA sig: got %v, want ErrSchemeMismatch", err)
	}
	// Same-scheme wrong-key failures must NOT claim a scheme mismatch.
	other, err := GenerateSignerBits(SchemeRSA, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Public().Verify(msg, rsaSig); err == nil || errors.Is(err, ErrSchemeMismatch) {
		t.Errorf("wrong RSA key: got %v, want plain verification failure", err)
	}
}

// TestParseSchemeAndString pins the flag/env vocabulary.
func TestParseSchemeAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scheme
		ok   bool
	}{
		{"rsa", SchemeRSA, true},
		{"", SchemeRSA, true}, // empty = default, paper fidelity
		{"ed25519", SchemeEd25519, true},
		{"dsa", 0, false},
	} {
		got, err := ParseScheme(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if SchemeRSA.String() != "rsa" || SchemeEd25519.String() != "ed25519" {
		t.Errorf("Scheme.String vocabulary changed")
	}
	if Scheme(9).Valid() {
		t.Errorf("Scheme(9).Valid() = true")
	}
}

// TestKeyPairBridge checks the KeyPair compatibility layer: legacy RSA
// pairs gain a Signer, SignerKeyPair pairs keep the deprecated surface
// coherent, and the deprecated shims route through the handles.
func TestKeyPairBridge(t *testing.T) {
	legacy := InsecureTestKey(0)
	if legacy.Scheme() != SchemeRSA {
		t.Fatalf("legacy scheme = %v", legacy.Scheme())
	}
	if legacy.Signer() == nil || legacy.Public() == nil {
		t.Fatalf("legacy pair lost a half")
	}
	msg := []byte("bridge message")
	sig, err := Sign(legacy, msg) // deprecated shim
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(legacy.Public(), msg, sig); err != nil { // deprecated shim
		t.Fatal(err)
	}
	// Deprecated Encrypt/Decrypt shims against the handle-based seal.
	ct, err := Encrypt(legacy.Public(), msg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Decrypt(legacy, ct)
	if err != nil || !bytes.Equal(pt, msg) {
		t.Fatalf("Decrypt = %q, %v", pt, err)
	}

	edPair := InsecureTestKeyScheme(0, SchemeEd25519)
	if edPair.Scheme() != SchemeEd25519 {
		t.Fatalf("ed pair scheme = %v", edPair.Scheme())
	}
	if edPair.Public() != nil {
		t.Fatalf("deprecated Public() must be nil for non-RSA pairs")
	}
	if edPair.Private != nil {
		t.Fatalf("deprecated Private must be nil for non-RSA pairs")
	}
	edSig, err := Sign(edPair, msg) // shim still signs via the handle
	if err != nil {
		t.Fatal(err)
	}
	if err := edPair.Signer().Public().Verify(msg, edSig); err != nil {
		t.Fatal(err)
	}
	// RSAPublicKeyOf unwraps RSA handles only.
	if _, ok := RSAPublicKeyOf(legacy.Signer().Public()); !ok {
		t.Errorf("RSAPublicKeyOf failed on an RSA handle")
	}
	if _, ok := RSAPublicKeyOf(edPair.Signer().Public()); ok {
		t.Errorf("RSAPublicKeyOf succeeded on an ed25519 handle")
	}
	var zero KeyPair
	if zero.Signer() != nil || zero.Scheme() != 0 {
		t.Errorf("zero KeyPair must have no signer and zero scheme")
	}
}

// TestVerifyBatch covers the batch dispatcher: a clean mixed-scheme
// batch passes, and failures are pinpointed per item without poisoning
// their neighbors.
func TestVerifyBatch(t *testing.T) {
	rsaS := goldenSigner(t, SchemeRSA)
	edS := goldenSigner(t, SchemeEd25519)

	mk := func(sg Signer, i int) BatchItem {
		msg := []byte{byte(i), byte(i >> 8), 'm'}
		sig, err := sg.Sign(msg)
		if err != nil {
			t.Fatal(err)
		}
		return BatchItem{Pub: sg.Public(), Msg: msg, Sig: sig}
	}

	items := make([]BatchItem, 0, 32)
	for i := 0; i < 32; i++ {
		if i%2 == 0 {
			items = append(items, mk(rsaS, i))
		} else {
			items = append(items, mk(edS, i))
		}
	}
	if err := VerifyBatch(items); err != nil {
		t.Fatalf("clean mixed batch failed: %v", err)
	}
	if err := VerifyBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}

	// Corrupt two items (one per scheme) and drop the key from a third:
	// exactly those indices must be reported.
	items[6].Sig = append([]byte(nil), items[6].Sig...)
	items[6].Sig[10] ^= 0xFF
	items[9].Msg = []byte("substituted")
	items[20].Pub = nil
	err := VerifyBatch(items)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("corrupt batch: got %v, want *BatchError", err)
	}
	if len(be.Failed) != 3 {
		t.Fatalf("Failed = %v, want exactly indices 6, 9, 20", be.Failed)
	}
	for _, i := range []int{6, 9, 20} {
		if be.Failed[i] == nil {
			t.Errorf("index %d missing from Failed: %v", i, be.Failed)
		}
	}

	// Single-item batch takes the scalar path.
	if err := VerifyBatch(items[:1]); err != nil {
		t.Fatalf("single-item batch: %v", err)
	}
	bad := []BatchItem{{Pub: rsaS.Public(), Msg: []byte("m"), Sig: []byte("short")}}
	err = VerifyBatch(bad)
	if !errors.As(err, &be) || be.Failed[0] == nil {
		t.Fatalf("single bad item: got %v", err)
	}
	if !errors.Is(be.Failed[0], ErrSchemeMismatch) {
		t.Errorf("short sig error = %v, want ErrSchemeMismatch", be.Failed[0])
	}
}
