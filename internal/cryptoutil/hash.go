// Package cryptoutil wraps the Go standard library cryptography used by
// the reproduction: the MD5 checksums that the paper's platforms (AWS,
// Azure, GAE) exchange, HMAC-SHA256 request authentication (Azure
// SharedKey), RSA signatures for non-repudiation evidence, and the
// hybrid public-key encryption that protects evidence confidentiality
// (paper §4.1: "the sender encrypts the evidence with the recipient's
// public key").
//
// The paper standardizes on MD5 because that is what the 2010 platforms
// exposed; the evidence layer in this repository carries both MD5 (for
// fidelity) and SHA-256 (the modern recommendation), and experiment E10
// quantifies the difference.
package cryptoutil

import (
	"crypto/hmac"
	"crypto/md5"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
)

// HashAlg identifies one of the supported digest algorithms.
type HashAlg uint8

const (
	// MD5 is the digest the paper's platforms use for content integrity.
	MD5 HashAlg = iota + 1
	// SHA256 is the modern digest carried alongside MD5 in evidence.
	SHA256
)

// String returns the conventional lowercase name of the algorithm.
func (a HashAlg) String() string {
	switch a {
	case MD5:
		return "md5"
	case SHA256:
		return "sha256"
	default:
		return fmt.Sprintf("hashalg(%d)", uint8(a))
	}
}

// Size returns the digest length in bytes.
func (a HashAlg) Size() int {
	switch a {
	case MD5:
		return md5.Size
	case SHA256:
		return sha256.Size
	default:
		return 0
	}
}

// New returns a fresh hash.Hash for the algorithm.
func (a HashAlg) New() hash.Hash {
	switch a {
	case MD5:
		return md5.New()
	case SHA256:
		return sha256.New()
	default:
		panic("cryptoutil: unknown hash algorithm")
	}
}

// Valid reports whether a names a supported algorithm.
func (a HashAlg) Valid() bool { return a == MD5 || a == SHA256 }

// Digest is an algorithm-tagged digest value.
type Digest struct {
	Alg HashAlg
	Sum []byte
}

// Sum computes the digest of data under alg.
func Sum(alg HashAlg, data []byte) Digest {
	h := alg.New()
	h.Write(data)
	return Digest{Alg: alg, Sum: h.Sum(nil)}
}

// SumReader computes the digest of everything readable from r.
func SumReader(alg HashAlg, r io.Reader) (Digest, int64, error) {
	h := alg.New()
	n, err := io.Copy(h, r)
	if err != nil {
		return Digest{}, n, fmt.Errorf("cryptoutil: hashing stream: %w", err)
	}
	return Digest{Alg: alg, Sum: h.Sum(nil)}, n, nil
}

// Equal reports whether two digests have the same algorithm and value.
// The comparison of the sums is constant-time.
func (d Digest) Equal(o Digest) bool {
	if d.Alg != o.Alg || len(d.Sum) != len(o.Sum) {
		return false
	}
	return subtle.ConstantTimeCompare(d.Sum, o.Sum) == 1
}

// Hex returns the digest value in lowercase hexadecimal.
func (d Digest) Hex() string { return hex.EncodeToString(d.Sum) }

// Base64 returns the digest value in standard base64, the encoding the
// Azure Content-MD5 header uses (paper Table 1).
func (d Digest) Base64() string { return base64.StdEncoding.EncodeToString(d.Sum) }

// String renders "alg:hex".
func (d Digest) String() string { return d.Alg.String() + ":" + d.Hex() }

// IsZero reports whether the digest is unset.
func (d Digest) IsZero() bool { return d.Alg == 0 && len(d.Sum) == 0 }

// Clone returns a deep copy of the digest.
func (d Digest) Clone() Digest {
	return Digest{Alg: d.Alg, Sum: append([]byte(nil), d.Sum...)}
}

// ParseDigest parses the "alg:hex" form produced by Digest.String.
func ParseDigest(s string) (Digest, error) {
	for _, alg := range []HashAlg{MD5, SHA256} {
		prefix := alg.String() + ":"
		if len(s) > len(prefix) && s[:len(prefix)] == prefix {
			sum, err := hex.DecodeString(s[len(prefix):])
			if err != nil {
				return Digest{}, fmt.Errorf("cryptoutil: parsing digest %q: %w", s, err)
			}
			if len(sum) != alg.Size() {
				return Digest{}, fmt.Errorf("cryptoutil: digest %q has %d bytes, want %d", s, len(sum), alg.Size())
			}
			return Digest{Alg: alg, Sum: sum}, nil
		}
	}
	return Digest{}, fmt.Errorf("cryptoutil: unknown digest format %q", s)
}

// HMACSHA256 computes the HMAC-SHA256 tag of msg under key, the
// primitive behind Azure's SharedKey authorization (paper §2.2).
func HMACSHA256(key, msg []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(msg)
	return m.Sum(nil)
}

// VerifyHMACSHA256 reports whether tag is the HMAC-SHA256 of msg under
// key, in constant time.
func VerifyHMACSHA256(key, msg, tag []byte) bool {
	return hmac.Equal(HMACSHA256(key, msg), tag)
}
