package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"
	"io"
)

// SymmetricKeyLen is the AES-256 key size used by the traditional NR
// baseline (the Zhou–Gollmann-style commitment C = E_K(M)).
const SymmetricKeyLen = 32

// NewSymmetricKey samples a fresh AES-256 key.
func NewSymmetricKey() ([]byte, error) {
	k := make([]byte, SymmetricKeyLen)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating symmetric key: %w", err)
	}
	return k, nil
}

// SymmetricEncrypt encrypts plaintext under key with AES-CTR and an
// HMAC-SHA256 tag (encrypt-then-MAC). Layout: iv (16) | tag (32) | ct.
func SymmetricEncrypt(key, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: symmetric cipher: %w", err)
	}
	iv := make([]byte, aes.BlockSize)
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating IV: %w", err)
	}
	ct := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)
	tag := HMACSHA256(macKey(key), append(append([]byte(nil), iv...), ct...))
	out := make([]byte, 0, len(iv)+len(tag)+len(ct))
	out = append(out, iv...)
	out = append(out, tag...)
	out = append(out, ct...)
	return out, nil
}

// SymmetricDecrypt reverses SymmetricEncrypt, failing on any
// modification.
func SymmetricDecrypt(key, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < aes.BlockSize+32 {
		return nil, fmt.Errorf("cryptoutil: symmetric ciphertext too short (%d bytes)", len(ciphertext))
	}
	iv := ciphertext[:aes.BlockSize]
	tag := ciphertext[aes.BlockSize : aes.BlockSize+32]
	ct := ciphertext[aes.BlockSize+32:]
	if !VerifyHMACSHA256(macKey(key), append(append([]byte(nil), iv...), ct...), tag) {
		return nil, fmt.Errorf("cryptoutil: symmetric ciphertext authentication failed")
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: symmetric cipher: %w", err)
	}
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	return pt, nil
}
