package cryptoutil

import (
	"testing"
	"testing/quick"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	key := InsecureTestKey(0)
	msg := []byte("NRO evidence payload")
	sig, err := Sign(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(key.Public(), msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	key := InsecureTestKey(0)
	msg := []byte("original")
	sig, err := Sign(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(key.Public(), []byte("tampered"), sig); err == nil {
		t.Fatal("signature verified for a different message")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	alice, eve := InsecureTestKey(0), InsecureTestKey(1)
	msg := []byte("claimed to be from alice")
	sig, err := Sign(eve, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(alice.Public(), msg, sig); err == nil {
		t.Fatal("signature by eve verified under alice's key")
	}
}

func TestVerifyRejectsCorruptedSignature(t *testing.T) {
	key := InsecureTestKey(0)
	msg := []byte("msg")
	sig, err := Sign(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, len(sig) / 2, len(sig) - 1} {
		bad := append([]byte(nil), sig...)
		bad[i] ^= 0x80
		if err := Verify(key.Public(), msg, bad); err == nil {
			t.Fatalf("signature with bit flipped at byte %d verified", i)
		}
	}
}

func TestSignVerifyQuick(t *testing.T) {
	key := InsecureTestKey(0)
	f := func(msg []byte) bool {
		sig, err := Sign(key, msg)
		if err != nil {
			return false
		}
		return Verify(key.Public(), msg, sig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	key := InsecureTestKey(2)
	der, err := MarshalPublicKey(key.Public())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ParsePublicKey(der)
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(key.Public().N) != 0 || pub.E != key.Public().E {
		t.Fatal("public key round trip changed the key")
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	if _, err := ParsePublicKey([]byte("not der")); err == nil {
		t.Fatal("garbage DER accepted")
	}
}

func TestPublicKeyFingerprintStable(t *testing.T) {
	key := InsecureTestKey(0)
	a, err := PublicKeyFingerprint(key.Public())
	if err != nil {
		t.Fatal(err)
	}
	b, err := PublicKeyFingerprint(key.Public())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("fingerprint not deterministic")
	}
	other, err := PublicKeyFingerprint(InsecureTestKey(1).Public())
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(other) {
		t.Fatal("distinct keys share a fingerprint")
	}
}

func TestNonceUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 256; i++ {
		n := MustNonce()
		if len(n) != NonceSize {
			t.Fatalf("nonce length %d, want %d", len(n), NonceSize)
		}
		if seen[string(n)] {
			t.Fatal("duplicate nonce")
		}
		seen[string(n)] = true
	}
}
