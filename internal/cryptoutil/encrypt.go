package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// Hybrid public-key encryption.
//
// The paper requires evidence to be "encrypted with the recipient's
// public key" (§4.1). Evidence blobs exceed what RSA can encrypt
// directly, so we use the standard hybrid construction: a fresh AES-256
// session key encrypts the payload with CTR mode, an HMAC-SHA256 tag
// (encrypt-then-MAC, key derived from the session key) authenticates
// the ciphertext, and RSA-OAEP wraps the session key for the recipient.
//
// Ciphertext layout (all lengths big-endian uint32):
//
//	| keyLen | RSA-OAEP(sessionKey) | iv (16) | tagLen | tag | payload |

const sessionKeyLen = 32

// Encrypt encrypts plaintext for the holder of pub.
func Encrypt(pub *rsa.PublicKey, plaintext []byte) ([]byte, error) {
	session := make([]byte, sessionKeyLen)
	if _, err := io.ReadFull(rand.Reader, session); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating session key: %w", err)
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, session, []byte("tpnr-evidence"))
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: wrapping session key: %w", err)
	}
	block, err := aes.NewCipher(session)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: building AES cipher: %w", err)
	}
	iv := make([]byte, aes.BlockSize)
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating IV: %w", err)
	}
	ct := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)

	mac := HMACSHA256(macKey(session), append(append([]byte(nil), iv...), ct...))

	out := make([]byte, 0, 4+len(wrapped)+len(iv)+4+len(mac)+len(ct))
	out = binary.BigEndian.AppendUint32(out, uint32(len(wrapped)))
	out = append(out, wrapped...)
	out = append(out, iv...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(mac)))
	out = append(out, mac...)
	out = append(out, ct...)
	return out, nil
}

// Decrypt reverses Encrypt using the recipient's key pair. It fails if
// the ciphertext was not produced for this key or has been modified.
func Decrypt(key KeyPair, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < 4 {
		return nil, fmt.Errorf("cryptoutil: ciphertext too short (%d bytes)", len(ciphertext))
	}
	keyLen := binary.BigEndian.Uint32(ciphertext)
	rest := ciphertext[4:]
	if uint32(len(rest)) < keyLen {
		return nil, fmt.Errorf("cryptoutil: truncated wrapped key")
	}
	wrapped, rest := rest[:keyLen], rest[keyLen:]
	if len(rest) < aes.BlockSize+4 {
		return nil, fmt.Errorf("cryptoutil: truncated IV or tag length")
	}
	iv, rest := rest[:aes.BlockSize], rest[aes.BlockSize:]
	tagLen := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) < tagLen {
		return nil, fmt.Errorf("cryptoutil: truncated tag")
	}
	tag, ct := rest[:tagLen], rest[tagLen:]

	session, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, key.Private, wrapped, []byte("tpnr-evidence"))
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: unwrapping session key: %w", err)
	}
	if !VerifyHMACSHA256(macKey(session), append(append([]byte(nil), iv...), ct...), tag) {
		return nil, fmt.Errorf("cryptoutil: ciphertext authentication failed")
	}
	block, err := aes.NewCipher(session)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: building AES cipher: %w", err)
	}
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	return pt, nil
}

// macKey derives the authentication key from the session key so the
// same secret is never reused across primitives.
func macKey(session []byte) []byte {
	k := sha256.Sum256(append([]byte("tpnr-mac:"), session...))
	return k[:]
}
