package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// Hybrid public-key encryption.
//
// The paper requires evidence to be "encrypted with the recipient's
// public key" (§4.1). Evidence blobs exceed what a public-key
// primitive can encrypt directly, so we use the standard hybrid
// construction: a fresh AES-256 session key encrypts the payload with
// CTR mode, an HMAC-SHA256 tag (encrypt-then-MAC, key derived from the
// session key) authenticates the ciphertext, and the recipient
// scheme's KEM wraps the session key — RSA-OAEP for SchemeRSA, an
// ephemeral X25519 agreement for SchemeEd25519 (the ephemeral public
// key travels in the wrapped-key slot).
//
// Ciphertext layout (all lengths big-endian uint32), identical across
// schemes:
//
//	| keyLen | wrappedKey | iv (16) | tagLen | tag | payload |

const sessionKeyLen = 32

// sealWithSession performs the symmetric half of hybrid sealing:
// AES-256-CTR under session, HMAC-SHA256 over iv+ciphertext, framed
// after the scheme-specific wrapped key.
func sealWithSession(session, wrapped, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(session)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: building AES cipher: %w", err)
	}
	iv := make([]byte, aes.BlockSize)
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating IV: %w", err)
	}
	ct := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)

	mac := HMACSHA256(macKey(session), append(append([]byte(nil), iv...), ct...))

	out := make([]byte, 0, 4+len(wrapped)+len(iv)+4+len(mac)+len(ct))
	out = binary.BigEndian.AppendUint32(out, uint32(len(wrapped)))
	out = append(out, wrapped...)
	out = append(out, iv...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(mac)))
	out = append(out, mac...)
	out = append(out, ct...)
	return out, nil
}

// splitSealed peels the scheme-specific wrapped key off a sealed blob,
// returning it and the remaining symmetric frame.
func splitSealed(ciphertext []byte) (wrapped, rest []byte, err error) {
	if len(ciphertext) < 4 {
		return nil, nil, fmt.Errorf("cryptoutil: ciphertext too short (%d bytes)", len(ciphertext))
	}
	keyLen := binary.BigEndian.Uint32(ciphertext)
	rest = ciphertext[4:]
	if uint32(len(rest)) < keyLen {
		return nil, nil, fmt.Errorf("cryptoutil: truncated wrapped key")
	}
	return rest[:keyLen], rest[keyLen:], nil
}

// openWithSession reverses sealWithSession given the recovered session
// key and the frame remainder returned by splitSealed.
func openWithSession(session, rest []byte) ([]byte, error) {
	if len(rest) < aes.BlockSize+4 {
		return nil, fmt.Errorf("cryptoutil: truncated IV or tag length")
	}
	iv, rest := rest[:aes.BlockSize], rest[aes.BlockSize:]
	tagLen := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) < tagLen {
		return nil, fmt.Errorf("cryptoutil: truncated tag")
	}
	tag, ct := rest[:tagLen], rest[tagLen:]

	if !VerifyHMACSHA256(macKey(session), append(append([]byte(nil), iv...), ct...), tag) {
		return nil, fmt.Errorf("cryptoutil: ciphertext authentication failed")
	}
	block, err := aes.NewCipher(session)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: building AES cipher: %w", err)
	}
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	return pt, nil
}

// Encrypt encrypts plaintext for the holder of pub.
//
// Deprecated: use PublicKey.Seal on a scheme handle
// (NewRSAPublicKey(pub).Seal(plaintext) for a raw RSA key).
func Encrypt(pub *rsa.PublicKey, plaintext []byte) ([]byte, error) {
	return NewRSAPublicKey(pub).Seal(plaintext)
}

// Decrypt reverses Encrypt using the recipient's key pair. It fails if
// the ciphertext was not produced for this key or has been modified.
//
// Deprecated: use Signer.Unseal (KeyPair.Signer().Unseal for a legacy
// key pair).
func Decrypt(key KeyPair, ciphertext []byte) ([]byte, error) {
	s := key.Signer()
	if s == nil {
		return nil, fmt.Errorf("cryptoutil: key pair holds no private key")
	}
	return s.Unseal(ciphertext)
}

// macKey derives the authentication key from the session key so the
// same secret is never reused across primitives.
func macKey(session []byte) []byte {
	k := sha256.Sum256(append([]byte("tpnr-mac:"), session...))
	return k[:]
}
