package cryptoutil

import (
	"crypto/rsa"
	"fmt"
)

// Sign produces a signature over msg under the pair's scheme (RSA
// PKCS#1 v1.5 over SHA-256 for legacy RSA pairs). This is the
// "Sign(...)" operation in the paper's evidence construction
// Encrypt{Sign(HashOfData), Sign(Plaintext)} (§4.1): the signer commits
// to the message under its private key so it cannot later deny having
// produced it.
//
// Deprecated: use Signer.Sign on a scheme handle (KeyPair.Signer()).
func Sign(key KeyPair, msg []byte) ([]byte, error) {
	s := key.Signer()
	if s == nil {
		return nil, fmt.Errorf("cryptoutil: key pair holds no private key")
	}
	return s.Sign(msg)
}

// Verify checks an RSA PKCS#1 v1.5 signature over SHA-256(msg).
//
// Deprecated: use PublicKey.Verify on a scheme handle
// (NewRSAPublicKey(pub) for a raw RSA key).
func Verify(pub *rsa.PublicKey, msg, sig []byte) error {
	return NewRSAPublicKey(pub).Verify(msg, sig)
}
