package cryptoutil

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"fmt"
)

// Sign produces an RSA PKCS#1 v1.5 signature over SHA-256(msg). This is
// the "Sign(...)" operation in the paper's evidence construction
// Encrypt{Sign(HashOfData), Sign(Plaintext)} (§4.1): the signer commits
// to the message under its private key so it cannot later deny having
// produced it.
func Sign(key KeyPair, msg []byte) ([]byte, error) {
	sum := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(rand.Reader, key.Private, crypto.SHA256, sum[:])
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: signing %d-byte message: %w", len(msg), err)
	}
	return sig, nil
}

// Verify checks an RSA PKCS#1 v1.5 signature over SHA-256(msg).
func Verify(pub *rsa.PublicKey, msg, sig []byte) error {
	sum := sha256.Sum256(msg)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, sum[:], sig); err != nil {
		return fmt.Errorf("cryptoutil: signature verification failed: %w", err)
	}
	return nil
}
