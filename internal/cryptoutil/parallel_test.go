package cryptoutil

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// chunkedReader yields at most chunk bytes per Read, forcing SumReader
// through many partial writes the way a network stream would.
type chunkedReader struct {
	data  []byte
	chunk int
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.chunk
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// TestSumParallelMatchesSum is the property test: for every size around
// the interesting boundaries and both algorithms, SumParallel and a
// chunked SumReader must match Sum byte-for-byte.
func TestSumParallelMatchesSum(t *testing.T) {
	sizes := []int{
		0,
		1,
		ParallelThreshold - 1,
		ParallelThreshold,
		ParallelThreshold + 1,
		4 << 20, // multi-MiB: the bigobject upload shape
	}
	rng := rand.New(rand.NewSource(42))
	for _, size := range sizes {
		data := make([]byte, size)
		rng.Read(data)

		want := map[HashAlg]Digest{
			MD5:    Sum(MD5, data),
			SHA256: Sum(SHA256, data),
		}

		// Both algorithms at once — the shape SetDigests uses.
		both := SumParallel(data, MD5, SHA256)
		if len(both) != 2 {
			t.Fatalf("size %d: SumParallel returned %d digests, want 2", size, len(both))
		}
		for i, alg := range []HashAlg{MD5, SHA256} {
			if both[i].Alg != alg || !bytes.Equal(both[i].Sum, want[alg].Sum) {
				t.Fatalf("size %d alg %v: SumParallel = %v, want %v", size, alg, both[i], want[alg])
			}
		}

		for _, alg := range []HashAlg{MD5, SHA256} {
			// Single-algorithm call must also match (serial fallback path).
			one := SumParallel(data, alg)
			if len(one) != 1 || !bytes.Equal(one[0].Sum, want[alg].Sum) {
				t.Fatalf("size %d alg %v: single-alg SumParallel mismatch", size, alg)
			}

			// Chunked streaming hash must agree with the one-shot hash.
			for _, chunk := range []int{1, 7, 4096} {
				if size > 1<<20 && chunk < 4096 {
					continue // byte-at-a-time over 4 MiB is just slow
				}
				d, n, err := SumReader(alg, &chunkedReader{data: data, chunk: chunk})
				if err != nil {
					t.Fatalf("size %d alg %v chunk %d: SumReader: %v", size, alg, chunk, err)
				}
				if n != int64(size) {
					t.Fatalf("size %d alg %v chunk %d: SumReader read %d bytes", size, alg, chunk, n)
				}
				if !bytes.Equal(d.Sum, want[alg].Sum) {
					t.Fatalf("size %d alg %v chunk %d: SumReader digest mismatch", size, alg, chunk)
				}
			}
		}
	}
}

func TestSumParallelEmptyAlgs(t *testing.T) {
	if out := SumParallel([]byte("data")); len(out) != 0 {
		t.Fatalf("SumParallel with no algs = %v, want empty", out)
	}
}
