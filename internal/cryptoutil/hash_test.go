package cryptoutil

import (
	"bytes"
	"crypto/md5"
	"crypto/sha256"
	"strings"
	"testing"
	"testing/quick"
)

func TestSumMatchesStdlib(t *testing.T) {
	data := []byte("cloud storage integrity")
	if got, want := Sum(MD5, data).Sum, md5.Sum(data); !bytes.Equal(got, want[:]) {
		t.Errorf("MD5 sum = %x, want %x", got, want)
	}
	if got, want := Sum(SHA256, data).Sum, sha256.Sum256(data); !bytes.Equal(got, want[:]) {
		t.Errorf("SHA256 sum = %x, want %x", got, want)
	}
}

func TestSumKnownVectors(t *testing.T) {
	// RFC 1321 test vector.
	if got := Sum(MD5, []byte("abc")).Hex(); got != "900150983cd24fb0d6963f7d28e17f72" {
		t.Errorf("MD5(abc) = %s", got)
	}
	// FIPS 180-2 test vector.
	if got := Sum(SHA256, []byte("abc")).Hex(); got != "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" {
		t.Errorf("SHA256(abc) = %s", got)
	}
}

func TestSumReader(t *testing.T) {
	data := strings.Repeat("x", 1<<16)
	d, n, err := SumReader(SHA256, strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Errorf("read %d bytes, want %d", n, len(data))
	}
	if !d.Equal(Sum(SHA256, []byte(data))) {
		t.Error("stream digest differs from one-shot digest")
	}
}

func TestDigestEqual(t *testing.T) {
	a := Sum(MD5, []byte("a"))
	b := Sum(MD5, []byte("a"))
	c := Sum(MD5, []byte("b"))
	d := Sum(SHA256, []byte("a"))
	if !a.Equal(b) {
		t.Error("identical digests not equal")
	}
	if a.Equal(c) {
		t.Error("different digests reported equal")
	}
	if a.Equal(d) {
		t.Error("digests of different algorithms reported equal")
	}
}

func TestDigestStringRoundTrip(t *testing.T) {
	for _, alg := range []HashAlg{MD5, SHA256} {
		d := Sum(alg, []byte("round trip"))
		parsed, err := ParseDigest(d.String())
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !parsed.Equal(d) {
			t.Errorf("%v: parsed %v, want %v", alg, parsed, d)
		}
	}
}

func TestParseDigestRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"",
		"md5:",
		"md5:zz",
		"md5:abcd", // wrong length
		"sha1:900150983cd24fb0d6963f7d28e17f72",
		"sha256:900150983cd24fb0d6963f7d28e17f72", // md5-length sum under sha256
	} {
		if _, err := ParseDigest(s); err == nil {
			t.Errorf("ParseDigest(%q) succeeded, want error", s)
		}
	}
}

func TestDigestBase64(t *testing.T) {
	// The Azure Content-MD5 header form (paper Table 1) is base64.
	d := Sum(MD5, []byte("abc"))
	if got := d.Base64(); got != "kAFQmDzST7DWlj99KOF/cg==" {
		t.Errorf("base64 = %q", got)
	}
}

func TestDigestClone(t *testing.T) {
	d := Sum(MD5, []byte("clone"))
	c := d.Clone()
	c.Sum[0] ^= 0xff
	if d.Sum[0] == c.Sum[0] {
		t.Error("Clone shares backing storage with original")
	}
}

func TestHashAlgMetadata(t *testing.T) {
	if MD5.Size() != 16 || SHA256.Size() != 32 {
		t.Errorf("sizes: md5=%d sha256=%d", MD5.Size(), SHA256.Size())
	}
	if MD5.String() != "md5" || SHA256.String() != "sha256" {
		t.Errorf("names: %q %q", MD5.String(), SHA256.String())
	}
	if !MD5.Valid() || !SHA256.Valid() || HashAlg(0).Valid() || HashAlg(9).Valid() {
		t.Error("Valid() misclassifies an algorithm")
	}
}

func TestHMACSHA256RoundTrip(t *testing.T) {
	key := []byte("256-bit azure account key....")
	msg := []byte("PUT\n/jerry/pics/block")
	tag := HMACSHA256(key, msg)
	if !VerifyHMACSHA256(key, msg, tag) {
		t.Fatal("valid HMAC rejected")
	}
	if VerifyHMACSHA256(key, append(msg, '!'), tag) {
		t.Error("HMAC accepted for modified message")
	}
	if VerifyHMACSHA256([]byte("other key"), msg, tag) {
		t.Error("HMAC accepted under wrong key")
	}
	tag[0] ^= 1
	if VerifyHMACSHA256(key, msg, tag) {
		t.Error("corrupted HMAC accepted")
	}
}

func TestDigestEqualQuick(t *testing.T) {
	// Property: Sum is deterministic, and distinct inputs essentially
	// never collide for either algorithm.
	f := func(a, b []byte) bool {
		da, db := Sum(SHA256, a), Sum(SHA256, b)
		if bytes.Equal(a, b) {
			return da.Equal(db)
		}
		return !da.Equal(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
