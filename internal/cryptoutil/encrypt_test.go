package cryptoutil

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := InsecureTestKey(0)
	for _, size := range []int{0, 1, 15, 16, 17, 1024, 1 << 16} {
		pt := bytes.Repeat([]byte{0xA5}, size)
		ct, err := Encrypt(key.Public(), pt)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, err := Decrypt(key, ct)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestDecryptWrongRecipientFails(t *testing.T) {
	alice, eve := InsecureTestKey(0), InsecureTestKey(1)
	ct, err := Encrypt(alice.Public(), []byte("for alice only"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(eve, ct); err == nil {
		t.Fatal("eve decrypted a message addressed to alice")
	}
}

func TestDecryptDetectsTampering(t *testing.T) {
	key := InsecureTestKey(0)
	ct, err := Encrypt(key.Public(), []byte("evidence: Sign(H(data))"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit at several positions, including in the payload tail
	// where CTR malleability would otherwise go unnoticed.
	for _, i := range []int{4, len(ct) / 2, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 1
		if _, err := Decrypt(key, bad); err == nil {
			t.Fatalf("tampered ciphertext (byte %d) accepted", i)
		}
	}
}

func TestDecryptRejectsTruncation(t *testing.T) {
	key := InsecureTestKey(0)
	ct, err := Encrypt(key.Public(), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 4, 20, len(ct) - 1} {
		if _, err := Decrypt(key, ct[:n]); err == nil {
			t.Fatalf("truncated ciphertext of %d bytes accepted", n)
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	key := InsecureTestKey(0)
	a, err := Encrypt(key.Public(), []byte("same plaintext"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encrypt(key.Public(), []byte("same plaintext"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestEncryptDecryptQuick(t *testing.T) {
	key := InsecureTestKey(0)
	f := func(pt []byte) bool {
		ct, err := Encrypt(key.Public(), pt)
		if err != nil {
			return false
		}
		got, err := Decrypt(key, ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
