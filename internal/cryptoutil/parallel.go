package cryptoutil

import (
	"runtime"
	"sync"
)

// ParallelThreshold is the payload size below which SumParallel runs
// serially. MD5 and SHA-256 are sequential chains — a single digest
// cannot be sharded across workers and still match Sum byte-for-byte —
// so the parallelism here is ACROSS algorithms: evidence headers carry
// both an MD5 and a SHA-256 of the same payload (§4.1 fidelity +
// modern digest), and those two independent passes over the data can
// overlap. Below the threshold goroutine handoff costs more than the
// second hash pass saves.
const ParallelThreshold = 256 << 10

// SumParallel computes the digest of data under every requested
// algorithm, running the passes concurrently when the payload is large
// enough and spare cores exist. Each returned Digest is byte-identical
// to Sum(alg, data); results are in the order algs were given. With a
// single algorithm, a small payload, or GOMAXPROCS=1 it degrades to
// plain sequential Sum calls with no goroutines spawned.
func SumParallel(data []byte, algs ...HashAlg) []Digest {
	out := make([]Digest, len(algs))
	if len(algs) < 2 || len(data) < ParallelThreshold || runtime.GOMAXPROCS(0) < 2 {
		for i, alg := range algs {
			out[i] = Sum(alg, data)
		}
		return out
	}
	var wg sync.WaitGroup
	for i, alg := range algs {
		wg.Add(1)
		go func(i int, alg HashAlg) {
			defer wg.Done()
			out[i] = Sum(alg, data)
		}(i, alg)
	}
	wg.Wait()
	return out
}
