package cryptoutil

// Scheme-agnostic signing.
//
// The paper's protocol is written against RSA (2010-era platform
// crypto), and RSA remains the default for fidelity — but nothing in
// the evidence construction depends on WHICH signature scheme binds a
// party to a message. This file makes the scheme pluggable: a Signer
// produces signatures and opens sealed evidence, a PublicKey verifies
// and seals, and both are opaque handles with a stable marshal form
// and fingerprint. Two schemes are registered:
//
//   - SchemeRSA: RSA PKCS#1 v1.5 over SHA-256 signatures, RSA-OAEP
//     hybrid sealing. Paper fidelity; the default everywhere.
//   - SchemeEd25519: Ed25519 signatures, X25519 hybrid sealing. An
//     Ed25519 key cannot encrypt, so an ed25519 identity carries a
//     companion X25519 key; both halves live inside one opaque handle
//     and one marshal form.
//
// Wire compatibility: the RSA marshal form is exactly the PKIX DER the
// repository has always used (same bytes, same fingerprints), so
// certificates, keystores and archived evidence from earlier versions
// parse and verify unchanged. Ed25519 handles marshal to a magic-
// prefixed fixed-size envelope that PKIX parsers cannot mistake for
// DER.

import (
	"bytes"
	"crypto"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Scheme identifies a registered signature (and sealing) scheme.
type Scheme uint8

const (
	// SchemeRSA is RSA PKCS#1 v1.5 / SHA-256 with RSA-OAEP sealing —
	// the paper's scheme and the default.
	SchemeRSA Scheme = iota + 1
	// SchemeEd25519 is Ed25519 with X25519 hybrid sealing — the fast
	// alternative for deployments that do not need paper fidelity.
	SchemeEd25519
)

// String names the scheme as used in flags, env vars and key files.
func (s Scheme) String() string {
	switch s {
	case SchemeRSA:
		return "rsa"
	case SchemeEd25519:
		return "ed25519"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// Valid reports whether s names a registered scheme.
func (s Scheme) Valid() bool { return s == SchemeRSA || s == SchemeEd25519 }

// ParseScheme parses the String form ("rsa", "ed25519").
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "rsa", "":
		return SchemeRSA, nil
	case "ed25519":
		return SchemeEd25519, nil
	default:
		return 0, fmt.Errorf("cryptoutil: unknown scheme %q (want rsa or ed25519)", name)
	}
}

// ErrSchemeMismatch reports a signature (or key) whose scheme does not
// match the verifying key — e.g. an Ed25519 signature presented to an
// RSA key. Check with errors.Is.
var ErrSchemeMismatch = errors.New("cryptoutil: signature scheme does not match key scheme")

// PublicKey is an opaque handle on one party's verification (and
// sealing) key. Handles are immutable and safe for concurrent use;
// Marshal and Fingerprint are computed once and cached.
type PublicKey interface {
	// Scheme identifies the key's scheme.
	Scheme() Scheme
	// Verify checks sig over msg (hashing is the scheme's concern).
	Verify(msg, sig []byte) error
	// Marshal returns the stable serialized form: PKIX DER for RSA,
	// the magic-prefixed envelope for Ed25519. The returned slice is
	// shared — callers must not mutate it.
	Marshal() []byte
	// Fingerprint is the SHA-256 digest of Marshal — the stable name
	// of the key in certificates, caches and revocation lists. For RSA
	// keys it equals the historical PublicKeyFingerprint value.
	Fingerprint() Digest
	// Seal encrypts plaintext so only the matching Signer can open it
	// (the paper's "encrypt the evidence with the recipient's public
	// key", §4.1).
	Seal(plaintext []byte) ([]byte, error)
	// Equal reports whether two handles name the same key.
	Equal(PublicKey) bool
}

// Signer is an opaque handle on one party's signing (and unsealing)
// key. Safe for concurrent use.
type Signer interface {
	// Scheme identifies the key's scheme.
	Scheme() Scheme
	// Public returns the verification half. The handle is stable: the
	// same Signer always returns the same PublicKey instance, so
	// fingerprint caching holds across calls.
	Public() PublicKey
	// Sign signs msg.
	Sign(msg []byte) ([]byte, error)
	// Unseal decrypts a blob produced by the matching PublicKey's Seal.
	Unseal(ciphertext []byte) ([]byte, error)
}

// GenerateSigner creates a fresh key for the scheme at its default
// strength (DefaultRSABits for RSA).
func GenerateSigner(s Scheme) (Signer, error) { return GenerateSignerBits(s, 0) }

// GenerateSignerBits creates a fresh key for the scheme; bits applies
// to RSA only (0 = DefaultRSABits) and is ignored by Ed25519.
func GenerateSignerBits(s Scheme, bits int) (Signer, error) {
	switch s {
	case SchemeRSA:
		if bits == 0 {
			bits = DefaultRSABits
		}
		priv, err := rsa.GenerateKey(rand.Reader, bits)
		if err != nil {
			return nil, fmt.Errorf("cryptoutil: generating %d-bit RSA key: %w", bits, err)
		}
		return newRSASigner(priv), nil
	case SchemeEd25519:
		_, edPriv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("cryptoutil: generating ed25519 key: %w", err)
		}
		kem, err := ecdh.X25519().GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("cryptoutil: generating x25519 key: %w", err)
		}
		return newEd25519Signer(edPriv, kem)
	default:
		return nil, fmt.Errorf("cryptoutil: cannot generate key for %s", s)
	}
}

// --- RSA ---------------------------------------------------------------------

type rsaPublic struct {
	k    *rsa.PublicKey
	once sync.Once
	der  []byte
	fp   Digest
}

// NewRSAPublicKey wraps a raw RSA public key in a scheme handle.
func NewRSAPublicKey(k *rsa.PublicKey) PublicKey { return &rsaPublic{k: k} }

// RSAPublicKeyOf unwraps the raw RSA key from a handle, reporting
// false for non-RSA handles. Shims use this to keep the deprecated
// *rsa.PublicKey call forms alive.
func RSAPublicKeyOf(pk PublicKey) (*rsa.PublicKey, bool) {
	rp, ok := pk.(*rsaPublic)
	if !ok {
		return nil, false
	}
	return rp.k, true
}

func (p *rsaPublic) Scheme() Scheme { return SchemeRSA }

func (p *rsaPublic) materialize() {
	p.once.Do(func() {
		der, err := x509.MarshalPKIXPublicKey(p.k)
		if err != nil {
			// MarshalPKIXPublicKey fails only on unsupported key types,
			// which *rsa.PublicKey is not.
			panic(fmt.Sprintf("cryptoutil: marshaling RSA public key: %v", err))
		}
		p.der = der
		p.fp = Sum(SHA256, der)
	})
}

func (p *rsaPublic) Marshal() []byte { p.materialize(); return p.der }

func (p *rsaPublic) Fingerprint() Digest { p.materialize(); return p.fp }

func (p *rsaPublic) Verify(msg, sig []byte) error {
	if len(sig) != p.k.Size() {
		return fmt.Errorf("%w: %d-byte signature against a %d-byte RSA modulus", ErrSchemeMismatch, len(sig), p.k.Size())
	}
	sum := sha256.Sum256(msg)
	if err := rsa.VerifyPKCS1v15(p.k, crypto.SHA256, sum[:], sig); err != nil {
		return fmt.Errorf("cryptoutil: signature verification failed: %w", err)
	}
	return nil
}

func (p *rsaPublic) Seal(plaintext []byte) ([]byte, error) {
	session, err := newSessionKey()
	if err != nil {
		return nil, err
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, p.k, session, []byte("tpnr-evidence"))
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: wrapping session key: %w", err)
	}
	return sealWithSession(session, wrapped, plaintext)
}

func (p *rsaPublic) Equal(o PublicKey) bool {
	op, ok := o.(*rsaPublic)
	return ok && p.k.Equal(op.k)
}

type rsaSigner struct {
	priv *rsa.PrivateKey
	pub  *rsaPublic
}

func newRSASigner(priv *rsa.PrivateKey) *rsaSigner {
	return &rsaSigner{priv: priv, pub: &rsaPublic{k: &priv.PublicKey}}
}

func (s *rsaSigner) Scheme() Scheme    { return SchemeRSA }
func (s *rsaSigner) Public() PublicKey { return s.pub }

func (s *rsaSigner) Sign(msg []byte) ([]byte, error) {
	sum := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(rand.Reader, s.priv, crypto.SHA256, sum[:])
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: signing %d-byte message: %w", len(msg), err)
	}
	return sig, nil
}

func (s *rsaSigner) Unseal(ciphertext []byte) ([]byte, error) {
	wrapped, rest, err := splitSealed(ciphertext)
	if err != nil {
		return nil, err
	}
	session, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, s.priv, wrapped, []byte("tpnr-evidence"))
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: unwrapping session key: %w", err)
	}
	return openWithSession(session, rest)
}

// --- Ed25519 (+ X25519 sealing) ----------------------------------------------

// Envelope magics. Fixed-length prefixes followed by fixed-length key
// material keep parsing trivial and unmistakable for PKIX DER (DER
// starts with an ASN.1 SEQUENCE tag 0x30; these start with 't').
var (
	ed25519PubMagic  = []byte("tpnr-pk-ed25519-v1\x00")
	ed25519PrivMagic = []byte("tpnr-sk-ed25519-v1\x00")
)

const x25519KeyLen = 32

type ed25519Public struct {
	ed   ed25519.PublicKey
	kem  *ecdh.PublicKey
	once sync.Once
	enc  []byte
	fp   Digest
}

func (p *ed25519Public) Scheme() Scheme { return SchemeEd25519 }

func (p *ed25519Public) materialize() {
	p.once.Do(func() {
		enc := make([]byte, 0, len(ed25519PubMagic)+ed25519.PublicKeySize+x25519KeyLen)
		enc = append(enc, ed25519PubMagic...)
		enc = append(enc, p.ed...)
		enc = append(enc, p.kem.Bytes()...)
		p.enc = enc
		p.fp = Sum(SHA256, enc)
	})
}

func (p *ed25519Public) Marshal() []byte { p.materialize(); return p.enc }

func (p *ed25519Public) Fingerprint() Digest { p.materialize(); return p.fp }

func (p *ed25519Public) Verify(msg, sig []byte) error {
	if len(sig) != ed25519.SignatureSize {
		return fmt.Errorf("%w: %d-byte signature against an ed25519 key (want %d)", ErrSchemeMismatch, len(sig), ed25519.SignatureSize)
	}
	if !ed25519.Verify(p.ed, msg, sig) {
		return fmt.Errorf("cryptoutil: signature verification failed: ed25519 signature invalid")
	}
	return nil
}

func (p *ed25519Public) Seal(plaintext []byte) ([]byte, error) {
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: generating ephemeral x25519 key: %w", err)
	}
	shared, err := eph.ECDH(p.kem)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: x25519 key agreement: %w", err)
	}
	session := deriveKEMSession(eph.PublicKey().Bytes(), p.kem.Bytes(), shared)
	// The ephemeral public key rides in the "wrapped key" slot of the
	// shared hybrid framing.
	return sealWithSession(session, eph.PublicKey().Bytes(), plaintext)
}

func (p *ed25519Public) Equal(o PublicKey) bool {
	op, ok := o.(*ed25519Public)
	return ok && bytes.Equal(p.ed, op.ed) && p.kem.Equal(op.kem)
}

type ed25519Signer struct {
	priv ed25519.PrivateKey
	kem  *ecdh.PrivateKey
	pub  *ed25519Public
}

func newEd25519Signer(priv ed25519.PrivateKey, kem *ecdh.PrivateKey) (*ed25519Signer, error) {
	pub, ok := priv.Public().(ed25519.PublicKey)
	if !ok {
		return nil, fmt.Errorf("cryptoutil: ed25519 private key has no ed25519 public half")
	}
	return &ed25519Signer{priv: priv, kem: kem, pub: &ed25519Public{ed: pub, kem: kem.PublicKey()}}, nil
}

func (s *ed25519Signer) Scheme() Scheme    { return SchemeEd25519 }
func (s *ed25519Signer) Public() PublicKey { return s.pub }

func (s *ed25519Signer) Sign(msg []byte) ([]byte, error) {
	return ed25519.Sign(s.priv, msg), nil
}

func (s *ed25519Signer) Unseal(ciphertext []byte) ([]byte, error) {
	ephPub, rest, err := splitSealed(ciphertext)
	if err != nil {
		return nil, err
	}
	if len(ephPub) != x25519KeyLen {
		return nil, fmt.Errorf("%w: %d-byte wrapped key against an x25519 sealing key", ErrSchemeMismatch, len(ephPub))
	}
	eph, err := ecdh.X25519().NewPublicKey(ephPub)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: parsing ephemeral x25519 key: %w", err)
	}
	shared, err := s.kem.ECDH(eph)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: x25519 key agreement: %w", err)
	}
	session := deriveKEMSession(ephPub, s.kem.PublicKey().Bytes(), shared)
	return openWithSession(session, rest)
}

// deriveKEMSession derives the symmetric session key from an X25519
// agreement, binding both public values so a transcript substitution
// changes the key.
func deriveKEMSession(ephPub, recipientPub, shared []byte) []byte {
	h := sha256.New()
	h.Write([]byte("tpnr-x25519-kem-v1"))
	h.Write(ephPub)
	h.Write(recipientPub)
	h.Write(shared)
	return h.Sum(nil)
}

// --- Parsing and serialization -----------------------------------------------

// ParseAnyPublicKey parses a public key handle from its Marshal form:
// the Ed25519 envelope, or PKIX DER for RSA (the historical encoding,
// so every certificate and keystore written before schemes existed
// still parses).
func ParseAnyPublicKey(b []byte) (PublicKey, error) {
	if bytes.HasPrefix(b, ed25519PubMagic) {
		material := b[len(ed25519PubMagic):]
		if len(material) != ed25519.PublicKeySize+x25519KeyLen {
			return nil, fmt.Errorf("cryptoutil: ed25519 public key envelope has %d key bytes, want %d",
				len(material), ed25519.PublicKeySize+x25519KeyLen)
		}
		kem, err := ecdh.X25519().NewPublicKey(material[ed25519.PublicKeySize:])
		if err != nil {
			return nil, fmt.Errorf("cryptoutil: parsing x25519 half: %w", err)
		}
		ed := ed25519.PublicKey(append([]byte(nil), material[:ed25519.PublicKeySize]...))
		return &ed25519Public{ed: ed, kem: kem}, nil
	}
	k, err := x509.ParsePKIXPublicKey(b)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: parsing public key: %w", err)
	}
	pub, ok := k.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("cryptoutil: public key is %T, want *rsa.PublicKey", k)
	}
	return &rsaPublic{k: pub}, nil
}

// MarshalSigner serializes a signer's private material: PKCS#1 DER for
// RSA (the historical keystore encoding), the magic envelope (seed +
// x25519 scalar) for Ed25519.
func MarshalSigner(s Signer) ([]byte, error) {
	switch sk := s.(type) {
	case *rsaSigner:
		return x509.MarshalPKCS1PrivateKey(sk.priv), nil
	case *ed25519Signer:
		out := make([]byte, 0, len(ed25519PrivMagic)+ed25519.SeedSize+x25519KeyLen)
		out = append(out, ed25519PrivMagic...)
		out = append(out, sk.priv.Seed()...)
		out = append(out, sk.kem.Bytes()...)
		return out, nil
	default:
		return nil, fmt.Errorf("cryptoutil: cannot marshal signer of type %T", s)
	}
}

// ParseSigner reverses MarshalSigner.
func ParseSigner(b []byte) (Signer, error) {
	if bytes.HasPrefix(b, ed25519PrivMagic) {
		material := b[len(ed25519PrivMagic):]
		if len(material) != ed25519.SeedSize+x25519KeyLen {
			return nil, fmt.Errorf("cryptoutil: ed25519 private key envelope has %d key bytes, want %d",
				len(material), ed25519.SeedSize+x25519KeyLen)
		}
		priv := ed25519.NewKeyFromSeed(material[:ed25519.SeedSize])
		kem, err := ecdh.X25519().NewPrivateKey(material[ed25519.SeedSize:])
		if err != nil {
			return nil, fmt.Errorf("cryptoutil: parsing x25519 half: %w", err)
		}
		return newEd25519Signer(priv, kem)
	}
	priv, err := x509.ParsePKCS1PrivateKey(b)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: parsing private key: %w", err)
	}
	return newRSASigner(priv), nil
}

// newSessionKey returns a fresh random symmetric session key.
func newSessionKey() ([]byte, error) {
	session := make([]byte, sessionKeyLen)
	if _, err := io.ReadFull(rand.Reader, session); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating session key: %w", err)
	}
	return session, nil
}
