package cryptoutil

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"fmt"
	"io"
)

// DefaultRSABits is the key size used for party identities. 2048 is the
// contemporary recommendation; tests use smaller keys via GenerateKeyBits
// to stay fast.
const DefaultRSABits = 2048

// KeyPair carries a party's private key together with its public half.
// Identities in this repository (Alice, Bob, the TTP, the CA) are each
// bound to one KeyPair through the pki package.
//
// Historically a KeyPair was always RSA and exposed the raw
// *rsa.PrivateKey; it now bridges to the scheme-agnostic Signer world:
// a KeyPair can carry ANY registered scheme (build one with
// SignerKeyPair), and Signer() returns the scheme handle all new code
// signs and unseals through. The Private field remains for RSA pairs —
// it is nil for other schemes.
type KeyPair struct {
	// Private is the raw RSA private key for SchemeRSA pairs, nil
	// otherwise.
	//
	// Deprecated: use Signer() — it works for every scheme.
	Private *rsa.PrivateKey

	// signer is the scheme handle for non-RSA pairs (and a cache for
	// RSA pairs built through SignerKeyPair).
	signer Signer
}

// SignerKeyPair wraps a scheme-agnostic Signer in a KeyPair so it can
// flow through APIs that still traffic in KeyPair (pki.Identity,
// keystore, the legacy constructors). For RSA signers the Private
// field is populated, so legacy code reading it keeps working.
func SignerKeyPair(s Signer) KeyPair {
	if rs, ok := s.(*rsaSigner); ok {
		return KeyPair{Private: rs.priv, signer: s}
	}
	return KeyPair{signer: s}
}

// Signer returns the scheme handle for this pair: the cached one for
// pairs built via SignerKeyPair, or a fresh RSA handle for legacy
// pairs built from a raw Private key. Returns nil for a zero KeyPair.
func (k KeyPair) Signer() Signer {
	if k.signer != nil {
		return k.signer
	}
	if k.Private != nil {
		return newRSASigner(k.Private)
	}
	return nil
}

// Scheme reports the pair's scheme (SchemeRSA for legacy pairs); zero
// for an empty pair.
func (k KeyPair) Scheme() Scheme {
	if k.signer != nil {
		return k.signer.Scheme()
	}
	if k.Private != nil {
		return SchemeRSA
	}
	return 0
}

// Public returns the public half of the pair.
//
// Deprecated: only meaningful for RSA pairs (returns nil otherwise);
// use Signer().Public() for a scheme-agnostic handle.
func (k KeyPair) Public() *rsa.PublicKey {
	if k.Private == nil {
		return nil
	}
	return &k.Private.PublicKey
}

// GenerateKey creates a DefaultRSABits RSA key pair.
func GenerateKey() (KeyPair, error) { return GenerateKeyBits(DefaultRSABits) }

// GenerateKeyBits creates an RSA key pair of the given modulus size.
func GenerateKeyBits(bits int) (KeyPair, error) {
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return KeyPair{}, fmt.Errorf("cryptoutil: generating %d-bit RSA key: %w", bits, err)
	}
	return KeyPair{Private: priv}, nil
}

// GenerateKeyPair creates a key pair for the given scheme at default
// strength, wrapped for APIs that still traffic in KeyPair.
func GenerateKeyPair(s Scheme) (KeyPair, error) {
	sg, err := GenerateSigner(s)
	if err != nil {
		return KeyPair{}, err
	}
	return SignerKeyPair(sg), nil
}

// MarshalPublicKey serializes a public key to PKIX DER bytes, the
// canonical form hashed into certificates and evidence.
//
// Deprecated: use PublicKey.Marshal on a scheme handle; this form only
// exists for raw RSA keys.
func MarshalPublicKey(pub *rsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: marshaling public key: %w", err)
	}
	return der, nil
}

// ParsePublicKey reverses MarshalPublicKey.
//
// Deprecated: use ParseAnyPublicKey, which accepts every scheme's
// marshal form (including this one).
func ParsePublicKey(der []byte) (*rsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: parsing public key: %w", err)
	}
	pub, ok := k.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("cryptoutil: public key is %T, want *rsa.PublicKey", k)
	}
	return pub, nil
}

// PublicKeyFingerprint returns the SHA-256 digest of the PKIX encoding
// of pub. Fingerprints name keys in certificates and revocation lists.
//
// Deprecated: use PublicKey.Fingerprint on a scheme handle (identical
// value for RSA keys, and cached).
func PublicKeyFingerprint(pub *rsa.PublicKey) (Digest, error) {
	der, err := MarshalPublicKey(pub)
	if err != nil {
		return Digest{}, err
	}
	return Sum(SHA256, der), nil
}

// Nonce returns n cryptographically random bytes. The paper's evidence
// format includes "a random number ... to prevent replay attacks"
// (§4.1); NonceSize is the size used there.
func Nonce(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("cryptoutil: reading %d random bytes: %w", n, err)
	}
	return b, nil
}

// NonceSize is the length of protocol nonces in bytes.
const NonceSize = 16

// MustNonce returns a NonceSize-byte random nonce, panicking if the
// system randomness source fails (which is unrecoverable anyway).
func MustNonce() []byte {
	b, err := Nonce(NonceSize)
	if err != nil {
		panic(err)
	}
	return b
}
