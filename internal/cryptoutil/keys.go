package cryptoutil

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"fmt"
	"io"
)

// DefaultRSABits is the key size used for party identities. 2048 is the
// contemporary recommendation; tests use smaller keys via GenerateKeyBits
// to stay fast.
const DefaultRSABits = 2048

// KeyPair carries a party's RSA private key together with its public
// half. Identities in this repository (Alice, Bob, the TTP, the CA) are
// each bound to one KeyPair through the pki package.
type KeyPair struct {
	Private *rsa.PrivateKey
}

// Public returns the public half of the pair.
func (k KeyPair) Public() *rsa.PublicKey { return &k.Private.PublicKey }

// GenerateKey creates a DefaultRSABits RSA key pair.
func GenerateKey() (KeyPair, error) { return GenerateKeyBits(DefaultRSABits) }

// GenerateKeyBits creates an RSA key pair of the given modulus size.
func GenerateKeyBits(bits int) (KeyPair, error) {
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return KeyPair{}, fmt.Errorf("cryptoutil: generating %d-bit RSA key: %w", bits, err)
	}
	return KeyPair{Private: priv}, nil
}

// MarshalPublicKey serializes a public key to PKIX DER bytes, the
// canonical form hashed into certificates and evidence.
func MarshalPublicKey(pub *rsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: marshaling public key: %w", err)
	}
	return der, nil
}

// ParsePublicKey reverses MarshalPublicKey.
func ParsePublicKey(der []byte) (*rsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: parsing public key: %w", err)
	}
	pub, ok := k.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("cryptoutil: public key is %T, want *rsa.PublicKey", k)
	}
	return pub, nil
}

// PublicKeyFingerprint returns the SHA-256 digest of the PKIX encoding
// of pub. Fingerprints name keys in certificates and revocation lists.
func PublicKeyFingerprint(pub *rsa.PublicKey) (Digest, error) {
	der, err := MarshalPublicKey(pub)
	if err != nil {
		return Digest{}, err
	}
	return Sum(SHA256, der), nil
}

// Nonce returns n cryptographically random bytes. The paper's evidence
// format includes "a random number ... to prevent replay attacks"
// (§4.1); NonceSize is the size used there.
func Nonce(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("cryptoutil: reading %d random bytes: %w", n, err)
	}
	return b, nil
}

// NonceSize is the length of protocol nonces in bytes.
const NonceSize = 16

// MustNonce returns a NonceSize-byte random nonce, panicking if the
// system randomness source fails (which is unrecoverable anyway).
func MustNonce() []byte {
	b, err := Nonce(NonceSize)
	if err != nil {
		panic(err)
	}
	return b
}
