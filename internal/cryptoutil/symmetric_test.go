package cryptoutil

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSymmetricRoundTrip(t *testing.T) {
	key, err := NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 16, 17, 4096} {
		pt := bytes.Repeat([]byte{0x3C}, size)
		ct, err := SymmetricEncrypt(key, pt)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, err := SymmetricDecrypt(key, ct)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("size %d: mismatch", size)
		}
	}
}

func TestSymmetricWrongKey(t *testing.T) {
	k1, _ := NewSymmetricKey()
	k2, _ := NewSymmetricKey()
	ct, err := SymmetricEncrypt(k1, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SymmetricDecrypt(k2, ct); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestSymmetricTamperDetected(t *testing.T) {
	key, _ := NewSymmetricKey()
	ct, err := SymmetricEncrypt(key, []byte("authenticated payload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 20, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 1
		if _, err := SymmetricDecrypt(key, bad); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	if _, err := SymmetricDecrypt(key, ct[:10]); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}

func TestSymmetricQuick(t *testing.T) {
	key, _ := NewSymmetricKey()
	f := func(pt []byte) bool {
		ct, err := SymmetricEncrypt(key, pt)
		if err != nil {
			return false
		}
		got, err := SymmetricDecrypt(key, ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
