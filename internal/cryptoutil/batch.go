package cryptoutil

import (
	"fmt"
	"runtime"
	"sync"
)

// Batch signature verification.
//
// One inbound protocol round can queue many signatures (a drained
// connection round on the server, a session settle, an arbitration
// bundle). Verifying them one call at a time serializes work the
// machine could run in parallel; VerifyBatch verifies a whole queue in
// one call, grouping items per scheme and fanning each group across
// workers.
//
// The contract is fault-isolating: each item's verdict is independent,
// and a failed batch identifies exactly which items failed. Per-scheme
// backends are free to use an all-or-nothing fast path (an aggregate
// check that is cheaper than N singles); when such a path fails, the
// dispatcher falls back to verifying that group's items singly to
// pinpoint the bad ones.

// BatchItem is one (key, message, signature) triple in a batch.
type BatchItem struct {
	Pub PublicKey
	Msg []byte
	Sig []byte
}

// BatchError reports the items of a batch that failed verification.
type BatchError struct {
	// Failed maps item index → that item's verification error. Items
	// absent from the map verified successfully.
	Failed map[int]error
}

// Error summarizes the failure; per-item detail is in Failed.
func (e *BatchError) Error() string {
	return fmt.Sprintf("cryptoutil: batch verification failed for %d item(s)", len(e.Failed))
}

// batchMinParallel is the batch size below which spawning workers
// costs more than it saves; smaller batches verify on the caller's
// goroutine.
const batchMinParallel = 4

// VerifyBatch verifies every item and returns nil when all pass, or a
// *BatchError pinpointing each failed index. A nil Pub is itself a
// verification failure for that item, not a panic.
func VerifyBatch(items []BatchItem) error {
	switch len(items) {
	case 0:
		return nil
	case 1:
		if err := verifyOne(items[0]); err != nil {
			return &BatchError{Failed: map[int]error{0: err}}
		}
		return nil
	}

	// Group indices by scheme so each backend sees a homogeneous
	// batch. Both current backends share the parallel fallback, but
	// the grouping is what lets a future scheme plug in an algebraic
	// aggregate check without touching callers. The common case — every
	// item under one scheme, no nil keys — skips the map entirely.
	var (
		bySch  map[Scheme][]int
		failed map[int]error
	)
	uniform := true
	for i, it := range items {
		if it.Pub == nil || (i > 0 && items[0].Pub != nil && it.Pub.Scheme() != items[0].Pub.Scheme()) {
			uniform = false
			break
		}
	}
	if uniform {
		all := make([]int, len(items))
		for i := range items {
			all[i] = i
		}
		bySch = map[Scheme][]int{items[0].Pub.Scheme(): all}
	} else {
		bySch = make(map[Scheme][]int, 2)
		failed = make(map[int]error)
		for i, it := range items {
			if it.Pub == nil {
				failed[i] = fmt.Errorf("cryptoutil: batch item %d has no public key", i)
				continue
			}
			bySch[it.Pub.Scheme()] = append(bySch[it.Pub.Scheme()], i)
		}
	}

	var mu sync.Mutex
	for _, idxs := range bySch {
		if verifyGroupFast(items, idxs) == nil {
			continue
		}
		// The group's fast path failed somewhere: fall back to singles
		// to identify the bad item(s).
		for _, i := range idxs {
			if err := verifyOne(items[i]); err != nil {
				mu.Lock()
				if failed == nil {
					failed = make(map[int]error)
				}
				failed[i] = err
				mu.Unlock()
			}
		}
	}
	if len(failed) > 0 {
		return &BatchError{Failed: failed}
	}
	return nil
}

// verifyOne checks a single item.
func verifyOne(it BatchItem) error {
	if it.Pub == nil {
		return fmt.Errorf("cryptoutil: batch item has no public key")
	}
	return it.Pub.Verify(it.Msg, it.Sig)
}

// verifyGroupFast is the all-or-nothing per-scheme batch check: it
// reports only whether the whole group verifies, as fast as possible —
// short-circuiting on the first failure and fanning out across up to
// GOMAXPROCS workers for larger groups.
func verifyGroupFast(items []BatchItem, idxs []int) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(idxs)/batchMinParallel {
		workers = len(idxs) / batchMinParallel
	}
	if workers <= 1 {
		for _, i := range idxs {
			if err := items[i].Pub.Verify(items[i].Msg, items[i].Sig); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	chunk := (len(idxs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(idxs) {
			hi = len(idxs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			for _, i := range part {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				if err := items[i].Pub.Verify(items[i].Msg, items[i].Sig); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(idxs[lo:hi])
	}
	wg.Wait()
	return firstErr
}
