// Package chaos is the crash-fault injection suite: it kills the
// protocol engines at every registered faultpoint, restarts them from
// their journals on the same "disk" (WAL directories + blob store),
// drives the §4.3 recovery procedure, and asserts the dispute
// invariant — the system is never left half-bound, where the provider
// holds the client's NRO but the client can obtain neither a receipt,
// an abort acceptance, nor a TTP statement (or vice versa).
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arbitrator"
	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wal"
)

// chaosTimeout is the protocol response timeout for chaos worlds:
// short enough that the many deliberate timeouts stay cheap, long
// enough that honest exchanges never trip it under -race.
const chaosTimeout = 500 * time.Millisecond

// world is one running deployment plus the durable state a restart
// reopens: the client and TTP WAL directories, Bob's per-shard WALs
// (one when TPNR_SHARDS is unset), the matching cold evidence
// archives, and the shared blob store.
type world struct {
	d      *deploy.Deployment
	store  storage.Store
	cw, tw *wal.WAL
	ca, ta *archive.Store
	pw     []*wal.WAL
	pa     []*archive.Store
}

// chaosShards resolves the provider shard count for every world the
// suite builds. Default 1 — the classic single-provider deployment;
// TPNR_SHARDS=4 (wired through the Makefile's chaos-sharded target and
// the CI matrix) reruns the whole suite with evidence routed across
// per-shard journals and archives behind a core.ShardedEngine.
func chaosShards(t *testing.T) int {
	t.Helper()
	env := os.Getenv("TPNR_SHARDS")
	if env == "" {
		return 1
	}
	n, err := strconv.Atoi(env)
	if err != nil || n < 1 {
		t.Fatalf("TPNR_SHARDS: bad shard count %q", env)
	}
	return n
}

// chaosReplicas resolves the provider journal replication factor.
// Default 1 — no replication, the classic deployment; TPNR_REPLICAS=3
// (the Makefile's chaos-replicated target and the CI matrix) reruns
// the whole suite with every provider journal append quorum-replicated
// (R=3, write quorum 2) before the protocol step is acked.
func chaosReplicas(t *testing.T) int {
	t.Helper()
	env := os.Getenv("TPNR_REPLICAS")
	if env == "" {
		return 1
	}
	n, err := strconv.Atoi(env)
	if err != nil || n < 1 {
		t.Fatalf("TPNR_REPLICAS: bad replica count %q", env)
	}
	return n
}

func openWorld(t *testing.T, dir string, store storage.Store) *world {
	t.Helper()
	shards := chaosShards(t)
	replicas := chaosReplicas(t)
	open := func(sub string) *wal.WAL {
		// Group commit is the production fsync policy; running the whole
		// chaos suite in it re-proves "acked ⇒ synced" under coalescing.
		w, err := wal.Open(filepath.Join(dir, sub), wal.Options{Policy: wal.SyncGroup})
		if err != nil {
			t.Fatalf("opening %s journal: %v", sub, err)
		}
		return w
	}
	openArc := func(sub string) *archive.Store {
		s, err := archive.Open(filepath.Join(dir, sub+"-archive"))
		if err != nil {
			t.Fatalf("opening %s archive: %v", sub, err)
		}
		return s
	}
	cw, tw := open("client"), open("ttp")
	ca, ta := openArc("client"), openArc("ttp")
	// Bob's journals mirror nrserver's on-disk contract: flat
	// "provider" when unsharded, "provider/shard-NN" per shard
	// otherwise — a restart MUST reopen the same layout.
	pw := make([]*wal.WAL, shards)
	pa := make([]*archive.Store, shards)
	for i := range pw {
		sub := "provider"
		if shards > 1 {
			sub = filepath.Join("provider", shard.DirName(i))
		}
		pw[i] = open(sub)
		pa[i] = openArc(sub)
	}
	d, err := deploy.New(deploy.Config{
		TestKeys:        true,
		ResponseTimeout: chaosTimeout,
		ProviderStore:   store,
		ClientOpts:      []core.Option{core.WithJournal(cw), core.WithArchive(ca)},
		ProviderShards:  shards,
		ProviderShardOpts: func(i int) []core.Option {
			return []core.Option{core.WithJournal(pw[i]), core.WithArchive(pa[i])}
		},
		TTPOpts: []core.Option{core.WithJournal(tw), core.WithArchive(ta)},
		// With TPNR_REPLICAS>1 every provider journal gains followers on
		// the same "disk" (nrserver's replica-NN layout, reopened across
		// restarts); the deployment closes what it opens here. The ack
		// timeout sits under chaosTimeout so a lost quorum surfaces as the
		// provider's signed refusal, not as client-side silence.
		ProviderReplicas: replicas,
		ReplicaWAL: func(s, r int) (*wal.WAL, error) {
			sub := "provider"
			if shards > 1 {
				sub = filepath.Join("provider", shard.DirName(s))
			}
			return wal.Open(filepath.Join(dir, sub, fmt.Sprintf("replica-%02d", r)),
				wal.Options{Policy: wal.SyncGroup})
		},
		ReplicaAckTimeout:     300 * time.Millisecond,
		ReplicaRepairInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &world{d: d, store: store, cw: cw, tw: tw, ca: ca, ta: ta, pw: pw, pa: pa}
}

// crash tears the world down with no graceful protocol steps — the
// moral equivalent of SIGKILL.
func (w *world) crash() {
	w.d.Close()
	w.cw.Close()
	w.tw.Close()
	w.ca.Close()
	w.ta.Close()
	for _, pw := range w.pw {
		pw.Close()
	}
	for _, pa := range w.pa {
		pa.Close()
	}
}

// recoverAll replays all three journals on a freshly opened world.
func (w *world) recoverAll(t *testing.T) (crep, prep, trep *core.RecoveryReport) {
	t.Helper()
	ctx := context.Background()
	var err error
	if crep, err = w.d.Client.Recover(ctx); err != nil {
		t.Fatalf("client recover: %v", err)
	}
	if prep, err = w.d.Engine.Recover(ctx); err != nil {
		t.Fatalf("provider recover: %v", err)
	}
	if trep, err = w.d.TTPServer.Recover(ctx); err != nil {
		t.Fatalf("ttp recover: %v", err)
	}
	return crep, prep, trep
}

// runRecovering runs fn, converting a faultpoint kill on this
// goroutine (a client-side simulated crash) into an error. Provider
// and TTP kills panic inside their server runtimes, which absorb them;
// the caller just sees a timeout.
func runRecovering(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(*faultpoint.Crash)
			if !ok {
				panic(r)
			}
			err = c
		}
	}()
	return fn()
}

// runScenario drives the protocol flow in which faultpoint pt fires.
// wrap, when non-nil, decorates the client→provider connection (the
// randomized suite injects transport faults through it). Errors from
// the flow itself are expected — a crash mid-protocol IS the test.
func runScenario(t *testing.T, w *world, pt, txn, key string, data []byte, wrap func(transport.Conn) transport.Conn) {
	t.Helper()
	ctx := context.Background()
	dialProvider := func() transport.Conn {
		c, err := w.d.DialProvider()
		if err != nil {
			t.Fatal(err)
		}
		if wrap != nil {
			return wrap(c)
		}
		return c
	}
	// stallUpload puts the provider in the §4.1 unfairness position:
	// it holds the NRO (and the data) but withheld the NRR.
	stallUpload := func(conn transport.Conn) {
		w.d.Engine.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
		_, err := w.d.Client.Upload(ctx, conn, txn, key, data)
		w.d.Engine.SetMisbehavior(core.Misbehavior{})
		if err == nil {
			t.Fatal("upload to a silent provider succeeded")
		}
	}
	switch {
	case strings.HasPrefix(pt, "client.upload") || strings.HasPrefix(pt, "provider.upload") ||
		strings.HasPrefix(pt, "wal.append") || strings.HasPrefix(pt, "server.handle") ||
		strings.HasPrefix(pt, "replica."):
		// A WAL-append fault fires at the first journaled transition of
		// the upload; a server-handle fault fires inside the provider's
		// runtime. Both are reached by the plain upload flow. Replication
		// faults fire on the follower stream that same first append feeds
		// (in replicated worlds — unsharded ones have no stream, like
		// shard.route below): the replication goroutines absorb the kill
		// and the upload either completes on the surviving quorum
		// (ack.drop — the record was durable before the ack vanished) or
		// fails with the provider's quorum-unavailable refusal.
		conn := dialProvider()
		defer conn.Close()
		runRecovering(func() error {
			_, err := w.d.Client.Upload(ctx, conn, txn, key, data)
			return err
		})
	case strings.HasPrefix(pt, "pool.ttp"):
		// The escalation-path fault needs a SessionPool: the stalled
		// upload escalates to the TTP and the kill fires at the dial.
		pool := w.d.NewPool(core.PoolRetries(1), core.PoolBackoff(time.Millisecond))
		defer pool.Close()
		w.d.Engine.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
		runRecovering(func() error {
			_, err := pool.Upload(ctx, txn, key, data)
			return err
		})
		w.d.Engine.SetMisbehavior(core.Misbehavior{})
	case strings.HasPrefix(pt, "provider.abort"):
		conn := dialProvider()
		defer conn.Close()
		stallUpload(conn)
		runRecovering(func() error {
			_, err := w.d.Client.Abort(ctx, conn, txn, "chaos abort")
			return err
		})
	case strings.HasPrefix(pt, "client.resolve") || strings.HasPrefix(pt, "ttp.resolve"):
		conn := dialProvider()
		stallUpload(conn)
		conn.Close()
		tc, err := w.d.DialTTP()
		if err != nil {
			t.Fatal(err)
		}
		defer tc.Close()
		runRecovering(func() error {
			_, err := w.d.Client.Resolve(ctx, tc, txn, "chaos resolve")
			return err
		})
	case strings.HasPrefix(pt, "shard.route"):
		// The misroute fault fires inside the sharded engine's routing
		// step, before any shard handles the frame: the plain upload flow
		// reaches it on the first routed message. (Unsharded worlds never
		// route, so the point cannot fire there — the per-point suite
		// skips it and the randomized suite just gets a clean upload.)
		conn := dialProvider()
		defer conn.Close()
		runRecovering(func() error {
			_, err := w.d.Client.Upload(ctx, conn, txn, key, data)
			return err
		})
	case strings.HasPrefix(pt, "shard.recover"):
		// The partial-recovery fault fires at the head of each shard's
		// recovery goroutine. Journal a session, then recover with the
		// point armed: the fan-out confines the failure to an error, and
		// the restart's clean recovery must converge anyway — per-shard
		// replay is idempotent.
		conn := dialProvider()
		if _, err := w.d.Client.Upload(ctx, conn, txn, key, data); err != nil {
			t.Logf("pre-recovery upload failed (%v); recovering the unfinished session", err)
		}
		conn.Close()
		runRecovering(func() error {
			_, err := w.d.Engine.Recover(ctx)
			return err
		})
	case strings.HasPrefix(pt, "provider.audit"):
		// Audit faults fire inside the provider's challenge handler, so
		// they need a bound session first: a clean upload plants the root
		// commitment in the NRR, then a storage-dwell audit on the same
		// connection walks into the armed point. The audit failing (or
		// the provider dying mid-answer) IS the test — the journaled
		// challenge must survive the crash as conviction material.
		conn := dialProvider()
		defer conn.Close()
		if _, err := w.d.Client.Upload(ctx, conn, txn, key, data); err != nil {
			// Possible over the randomized suite's lossy link: without a
			// receipt there is nothing to audit, but the armed kill must
			// still fire for the per-point suite, so fall through and let
			// AuditObject fail on the missing NRR.
			t.Logf("pre-audit upload failed (%v); auditing the unfinished session", err)
		}
		runRecovering(func() error {
			_, err := w.d.Client.AuditObject(ctx, conn, txn, core.DefaultAuditChallenges)
			return err
		})
	case strings.HasPrefix(pt, "wal.checkpoint") || strings.HasPrefix(pt, "wal.compact") ||
		strings.HasPrefix(pt, "archive.append"):
		// Checkpoint/compaction faults fire AFTER a clean session: the
		// upload completes, then each party dies somewhere inside its
		// checkpoint — mid-archive-append, before or after the snapshot
		// rename, or mid-segment-truncation. The dispute invariant must
		// hold whichever tier the evidence was in when the power failed.
		conn := dialProvider()
		if _, err := w.d.Client.Upload(ctx, conn, txn, key, data); err != nil {
			// Possible over the randomized suite's lossy link: the session
			// is then half-finished, which checkpointing must also survive.
			t.Logf("pre-checkpoint upload failed (%v); checkpointing the unfinished session", err)
		}
		conn.Close()
		runRecovering(func() error {
			_, err := w.d.Client.Checkpoint()
			return err
		})
		runRecovering(func() error {
			_, err := w.d.Engine.Checkpoint()
			return err
		})
		runRecovering(func() error {
			_, err := w.d.TTPServer.Checkpoint()
			return err
		})
	default:
		t.Fatalf("no chaos scenario covers faultpoint %q — add one", pt)
	}
}

// converge drives one unfinished transaction through §4.3 until it
// reaches a terminal outcome: Resolve via the TTP, re-uploading over a
// clean link when the provider answers "restart" (it never received
// the data).
func (w *world) converge(t *testing.T, txn, key string, data []byte) {
	t.Helper()
	ctx := context.Background()
	for attempt := 0; attempt < 3; attempt++ {
		tc, err := w.d.DialTTP()
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.d.Client.Resolve(ctx, tc, txn, "post-crash escalation")
		tc.Close()
		if err != nil {
			t.Fatalf("resolving %s after restart: %v", txn, err)
		}
		if res.Outcome != "restart" {
			return // continue / aborted / TTP statement — all terminal
		}
		pc, err := w.d.DialProvider()
		if err != nil {
			t.Fatal(err)
		}
		_, uerr := w.d.Client.Upload(ctx, pc, txn, key, data)
		pc.Close()
		if uerr == nil {
			return
		}
		t.Logf("re-upload of %s failed (%v), retrying", txn, uerr)
	}
	t.Fatalf("transaction %s did not converge in 3 attempts", txn)
}

// assertDisputeInvariant checks that a crash never left a half-bound
// state: if the provider archived the client's NRO, the client must
// hold an NRR, an abort acceptance, or a TTP statement for the
// transaction — something to take to an arbitrator. Conversely an NRR
// in the client's hands implies the provider holds the NRO it is a
// receipt for.
func assertDisputeInvariant(t *testing.T, w *world, txn, key string) {
	t.Helper()
	// EvidenceByKind reads hot-then-cold (and, sharded, owner-shard-
	// then-sweep), so the invariant holds no matter which storage tier
	// or shard a crash left the evidence in.
	_, bobErr := w.d.Engine.EvidenceByKind(txn, evidence.RolePeer, evidence.KindNRO)
	_, nrrErr := w.d.Client.EvidenceByKind(txn, evidence.RolePeer, evidence.KindNRR)
	_, abortErr := w.d.Client.EvidenceByKind(txn, evidence.RolePeer, evidence.KindAbortAccept)
	_, stmtErr := w.d.Client.EvidenceByKind(txn, evidence.RolePeer, evidence.KindResolveResponse)

	if bobErr != nil {
		// Provider never bound — then no receipt may exist either.
		if nrrErr == nil {
			t.Errorf("half-bound %s: client holds an NRR but provider never archived the NRO", txn)
		}
		return
	}
	if nrrErr != nil && abortErr != nil && stmtErr != nil {
		t.Errorf("half-bound %s: provider holds the client's NRO but client has no NRR, abort receipt, or TTP statement", txn)
	}
	if abortErr == nil && nrrErr != nil {
		// Provably aborted: the honored abort must have dropped the blob.
		if _, err := w.store.Get(key); err == nil {
			t.Errorf("aborted %s but object %q is still stored", txn, key)
		}
	}
}

// arbitrateCompleted submits a completed transaction to the off-line
// arbitrator with the data the store currently holds; the verdict must
// clear the provider (the data matches the agreed digest).
func arbitrateCompleted(t *testing.T, w *world, txn, key string) {
	t.Helper()
	nro, err := w.d.Client.EvidenceByKind(txn, evidence.RoleOwn, evidence.KindNRO)
	if err != nil {
		t.Fatalf("completed %s without an own NRO: %v", txn, err)
	}
	nrr, err := w.d.Client.EvidenceByKind(txn, evidence.RolePeer, evidence.KindNRR)
	if err != nil {
		t.Fatalf("completed %s without a peer NRR: %v", txn, err)
	}
	obj, err := w.store.Get(key)
	if err != nil {
		t.Fatalf("completed %s but store lost %q: %v", txn, key, err)
	}
	arb := arbitrator.NewWithKey(w.d.CA.Key(), w.d.CA.Lookup, nil)
	dec := arb.Decide(&arbitrator.Case{
		TxnID:        txn,
		ObjectKey:    key,
		ClaimantID:   deploy.ClientName,
		RespondentID: deploy.ProviderName,
		ClaimantNRO:  nro,
		ClaimantNRR:  nrr,
		ProducedData: obj.Data,
	})
	if dec.Verdict != arbitrator.VerdictClaimFalse {
		t.Errorf("arbitration of recovered %s = %s, want %s; findings: %v",
			txn, dec.Verdict, arbitrator.VerdictClaimFalse, dec.Findings)
	}
}

// TestChaosEveryFaultpoint kills the system at each registered
// faultpoint in turn, restarts from the journals, escalates whatever
// the crash left unfinished, and asserts the dispute invariant.
func TestChaosEveryFaultpoint(t *testing.T) {
	points := faultpoint.List()
	if len(points) < 23 {
		t.Fatalf("only %d faultpoints registered; the engines lost their kill sites", len(points))
	}
	for _, want := range []string{
		"wal.checkpoint.pre-rename", "wal.checkpoint.post-rename",
		"wal.compact.mid-truncate", "archive.append.partial",
		"provider.audit.drop-challenge", "provider.audit.stale-proof",
		"provider.audit.crash-mid-audit",
		"replica.ack.drop", "replica.follower.crash", "replica.net.partition",
	} {
		found := false
		for _, pt := range points {
			if pt == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("checkpoint faultpoint %q is not registered", want)
		}
	}
	shards := chaosShards(t)
	replicas := chaosReplicas(t)
	for _, pt := range points {
		t.Run(pt, func(t *testing.T) {
			if strings.HasPrefix(pt, "shard.") && shards < 2 {
				t.Skipf("faultpoint %q lives in the sharded engine; run with TPNR_SHARDS>=2 (make chaos-sharded)", pt)
			}
			if strings.HasPrefix(pt, "replica.") && replicas < 2 {
				t.Skipf("faultpoint %q lives in the replication stream; run with TPNR_REPLICAS>=2 (make chaos-replicated)", pt)
			}
			defer faultpoint.Reset()
			dir := t.TempDir()
			store := storage.NewMem(time.Now)
			txn := "txn-chaos-" + pt
			key := "chaos/" + pt
			data := []byte("chaos payload for " + pt)

			var fired atomic.Bool
			faultpoint.Arm(pt, func() {
				fired.Store(true)
				faultpoint.Kill(pt)()
			})
			w := openWorld(t, dir, store)
			runScenario(t, w, pt, txn, key, data, nil)
			faultpoint.Reset()
			w.crash()
			if !fired.Load() {
				t.Fatalf("faultpoint %q never fired; the scenario does not reach its kill site", pt)
			}

			w2 := openWorld(t, dir, store)
			defer w2.crash()
			crep, _, trep := w2.recoverAll(t)
			if pt == "ttp.resolve.after-open-before-query" && len(trep.OpenResolves) == 0 {
				t.Error("TTP died between open and close but recovery reports no open resolves")
			}
			for _, needy := range crep.NeedsResolve {
				w2.converge(t, needy, key, data)
			}
			assertDisputeInvariant(t, w2, txn, key)
			if _, err := w2.d.Client.Archive().ByKind(txn, evidence.RolePeer, evidence.KindNRR); err == nil {
				arbitrateCompleted(t, w2, txn, key)
			}
		})
	}
}

// TestChaosReplicaSurvivingQuorum is the headline replication claim at
// R=3 / write quorum 2: kill any single replica mid-upload — follower
// crash, dropped ack, or a partitioned leader stream — and the upload
// MUST still succeed through the surviving quorum; every acked receipt
// is then recoverable from a surviving follower's journal alone, and a
// full restart converges the lagging replica by anti-entropy with no
// operator action.
func TestChaosReplicaSurvivingQuorum(t *testing.T) {
	shards := chaosShards(t)
	replicas := chaosReplicas(t)
	if replicas < 3 {
		t.Skipf("kill-one-replica needs a surviving quorum; run with TPNR_REPLICAS>=3 (make chaos-replicated)")
	}
	ctx := context.Background()
	for _, pt := range []string{"replica.follower.crash", "replica.ack.drop", "replica.net.partition"} {
		t.Run(pt, func(t *testing.T) {
			defer faultpoint.Reset()
			dir := t.TempDir()
			store := storage.NewMem(time.Now)
			txn := "txn-quorum-" + pt
			key := "quorum/" + pt
			data := []byte("surviving quorum payload for " + pt)

			// Arm ONCE-ONLY: the first stream to reach the point dies —
			// exactly one replica lost mid-upload — and everyone else keeps
			// running. (The per-point suite above arms every hit, which
			// takes the whole quorum down; here the claim is that losing
			// any single node is invisible to the client.)
			var once atomic.Bool
			faultpoint.Arm(pt, func() {
				if once.CompareAndSwap(false, true) {
					faultpoint.Kill(pt)()
				}
			})
			w := openWorld(t, dir, store)
			conn, err := w.d.DialProvider()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.d.Client.Upload(ctx, conn, txn, key, data); err != nil {
				t.Fatalf("upload did not survive a single-replica %s fault: %v", pt, err)
			}
			conn.Close()
			faultpoint.Reset()
			if !once.Load() {
				t.Fatalf("faultpoint %q never fired; the upload does not reach its kill site", pt)
			}

			// Quorum-before-ack means some follower of the shard that
			// served txn durably holds every record up to the last acked
			// append; marks only advance, so the max-mark follower's
			// journal is a prefix that covers the whole receipt. Remember
			// which one before pulling the plug.
			si := 0
			if shards > 1 {
				si = shard.New(shards).Shard(txn)
			}
			g := w.d.ReplicaGroups[si]
			survivor, survivorHW := 1, uint64(0)
			for i := 0; i < replicas-1; i++ {
				if hw := g.FollowerHW(i); hw >= survivorHW {
					survivor, survivorHW = i+1, hw
				}
			}
			if survivorHW == 0 {
				t.Fatal("no follower acked anything; quorum accounting is broken")
			}
			w.crash()

			// Restart the full world on the same disk: the replica that
			// took the fault must converge by anti-entropy alone, and the
			// recovered transaction must arbitrate clean.
			w2 := openWorld(t, dir, store)
			crashed := false
			crash2 := func() {
				if !crashed {
					crashed = true
					w2.crash()
				}
			}
			defer crash2()
			w2.recoverAll(t)
			assertDisputeInvariant(t, w2, txn, key)
			arbitrateCompleted(t, w2, txn, key)
			deadline := time.Now().Add(5 * time.Second)
			for {
				all := true
				for _, rg := range w2.d.ReplicaGroups {
					if !rg.Converged() {
						all = false
					}
				}
				if all {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("restarted replicas did not converge by anti-entropy")
				}
				time.Sleep(10 * time.Millisecond)
			}
			crash2()

			// Leader-loss drill: a provider rebuilt over the surviving
			// follower's journal alone still holds both halves of the
			// evidence pair the client walked away with.
			sub := "provider"
			if shards > 1 {
				sub = filepath.Join("provider", shard.DirName(si))
			}
			fw, err := wal.Open(filepath.Join(dir, sub, fmt.Sprintf("replica-%02d", survivor)),
				wal.Options{Policy: wal.SyncGroup})
			if err != nil {
				t.Fatalf("reopening survivor journal: %v", err)
			}
			defer fw.Close()
			d3, err := deploy.New(deploy.Config{
				TestKeys:      true,
				ProviderStore: store,
				ProviderOpts:  []core.Option{core.WithJournal(fw)},
			})
			if err != nil {
				t.Fatalf("deploy over survivor journal: %v", err)
			}
			defer d3.Close()
			if _, err := d3.Provider.Recover(ctx); err != nil {
				t.Fatalf("recover over survivor journal: %v", err)
			}
			if _, err := d3.Provider.EvidenceByKind(txn, evidence.RolePeer, evidence.KindNRO); err != nil {
				t.Errorf("survivor recovery lost the NRO for %s: %v", txn, err)
			}
			if _, err := d3.Provider.EvidenceByKind(txn, evidence.RoleOwn, evidence.KindNRR); err != nil {
				t.Errorf("survivor recovery lost the NRR for %s: %v", txn, err)
			}
		})
	}
}

// chaosSeeds returns the pinned seed matrix for the randomized suite.
// The default is fixed so failures reproduce across machines; CI and
// local runs can widen or change it with CHAOS_SEEDS="1 7 42 99"
// (space-separated, wired through the Makefile's CHAOS_SEEDS variable).
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 7, 42}
	}
	var seeds []int64
	for _, f := range strings.Fields(env) {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: bad seed %q: %v", f, err)
		}
		seeds = append(seeds, n)
	}
	if len(seeds) == 0 {
		t.Fatal("CHAOS_SEEDS is set but holds no seeds")
	}
	return seeds
}

// TestChaosRandomized runs multi-round crash-restart sequences with
// fixed seeds: each round picks a faultpoint at random, runs its
// scenario over a deliberately lossy link, crashes, restarts on the
// same disk, converges, and re-checks the dispute invariant for every
// transaction ever started.
func TestChaosRandomized(t *testing.T) {
	seeds := chaosSeeds(t)
	rounds := 4
	if testing.Short() {
		seeds = seeds[:1]
		rounds = 2
	}
	points := faultpoint.List()
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer faultpoint.Reset()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			store := storage.NewMem(time.Now)
			w := openWorld(t, dir, store)
			defer func() { w.crash() }()

			type txnInfo struct {
				key  string
				data []byte
			}
			txns := make(map[string]*txnInfo)
			var conns []*transport.FaultyConn
			wrap := func(c transport.Conn) transport.Conn {
				fc := transport.Faulty(c, transport.FaultSpec{
					DropProb: 0.10,
					DupProb:  0.20,
					Seed:     rng.Int63(),
				})
				conns = append(conns, fc)
				return fc
			}

			for round := 0; round < rounds; round++ {
				pt := points[rng.Intn(len(points))]
				txn := fmt.Sprintf("txn-s%d-r%d", seed, round)
				info := &txnInfo{
					key:  fmt.Sprintf("chaos/obj-s%d-r%d", seed, round),
					data: []byte(fmt.Sprintf("payload %d/%d", seed, round)),
				}
				txns[txn] = info

				faultpoint.Arm(pt, faultpoint.Kill(pt))
				runScenario(t, w, pt, txn, info.key, info.data, wrap)
				faultpoint.Reset()
				w.crash()

				w = openWorld(t, dir, store)
				crep, _, _ := w.recoverAll(t)
				for _, needy := range crep.NeedsResolve {
					ni, ok := txns[needy]
					if !ok {
						t.Fatalf("journal resurrected unknown transaction %q", needy)
					}
					w.converge(t, needy, ni.key, ni.data)
				}
				for txn, ni := range txns {
					assertDisputeInvariant(t, w, txn, ni.key)
				}
			}
			var st transport.Stats
			for _, fc := range conns {
				s := fc.Stats()
				st.Sent += s.Sent
				st.Dropped += s.Dropped
				st.Duplicated += s.Duplicated
			}
			t.Logf("fault layer over %d rounds: %d sent, %d dropped, %d duplicated", rounds, st.Sent, st.Dropped, st.Duplicated)
		})
	}
}
