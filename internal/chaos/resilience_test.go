// Chaos scenarios for the resilience layer: disk pressure, TTP
// outage behind the circuit breaker, and overload plus step-deadline
// expiry. Each drives the system through the degraded regime and then
// re-checks the dispute invariant — degradation may slow the protocol
// down, but it must never leave a transaction half-bound.
package chaos

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/leakcheck"
	"repro/internal/storage"
	"repro/internal/wal"
)

// TestChaosDegradedDiskPressure fills the provider's "disk" mid-run:
// the WAL goes sticky read-only, new sessions are refused with a
// typed error, but the session wedged by the failing append still
// reaches a provable outcome through Resolve, and stored data stays
// readable.
func TestChaosDegradedDiskPressure(t *testing.T) {
	leakcheck.At(t)
	defer faultpoint.Reset()
	ctx := context.Background()
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	pw, err := wal.Open(filepath.Join(dir, "provider"), wal.Options{Policy: wal.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()
	d, err := deploy.New(deploy.Config{
		TestKeys:        true,
		ResponseTimeout: chaosTimeout,
		ProviderStore:   store,
		ProviderOpts:    []core.Option{core.WithJournal(pw)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	w := &world{d: d, store: store}

	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := d.Client.Upload(ctx, conn, "txn-pre", "chaos/pre", []byte("before the disk filled")); err != nil {
		t.Fatalf("healthy upload: %v", err)
	}

	// The disk fills under an in-flight upload, after the NRO binding
	// lands but before the object record: the provider is bound (it
	// journaled Alice's NRO) yet cannot finish the transition, so it
	// withholds the ack.
	var appends int32
	faultpoint.ArmErr("wal.append.enospc", func() error {
		if atomic.AddInt32(&appends, 1) == 1 {
			return nil // the NRO binding itself still fits on disk
		}
		return errors.New("write: no space left on device")
	})
	if _, err := d.Client.Upload(ctx, conn, "txn-wedged", "chaos/wedged", []byte("wedged payload")); err == nil {
		t.Fatal("upload over a full disk succeeded")
	}
	faultpoint.Disarm("wal.append.enospc")
	if !d.Provider.Degraded() {
		t.Fatal("provider not degraded after ENOSPC")
	}

	// New sessions are refused while degraded...
	conn2, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := d.Client.Upload(ctx, conn2, "txn-refused", "chaos/refused", []byte("x")); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("new session on degraded provider: want ErrDegraded, got %v", err)
	}
	// ...but the wedged session still converges through §4.3: the
	// provider holds the NRO and answers the TTP from memory.
	tc, err := d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	rr, err := d.Client.Resolve(ctx, tc, "txn-wedged", "no ack under disk pressure")
	if err != nil {
		t.Fatalf("resolve on degraded provider: %v", err)
	}
	if rr.PeerEvidence == nil {
		t.Fatalf("resolve outcome %q relayed no evidence", rr.Outcome)
	}
	// Reads survive degradation.
	if _, err := d.Client.Download(ctx, conn2, "txn-dl", "chaos/pre", "txn-pre"); err != nil {
		t.Fatalf("download from degraded provider: %v", err)
	}

	for txn, key := range map[string]string{
		"txn-pre": "chaos/pre", "txn-wedged": "chaos/wedged", "txn-refused": "chaos/refused",
	} {
		assertDisputeInvariant(t, w, txn, key)
	}
}

// TestChaosTTPBlackholeBreaker blackholes the TTP while the provider
// is silent: escalation must fast-fail through the breaker instead of
// hanging, and once the network heals a probe closes the breaker and
// the transaction converges with relayed evidence.
func TestChaosTTPBlackholeBreaker(t *testing.T) {
	leakcheck.At(t)
	defer faultpoint.Reset()
	ctx := context.Background()
	store := storage.NewMem(time.Now)
	d, err := deploy.New(deploy.Config{
		TestKeys:        true,
		ResponseTimeout: chaosTimeout,
		ProviderStore:   store,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	w := &world{d: d, store: store}

	br := breaker.New(breaker.Options{
		Window:       4,
		MinSamples:   2,
		FailureRatio: 0.5,
		Cooldown:     50 * time.Millisecond,
	})
	pool := d.NewPool(core.PoolRetries(3), core.PoolBackoff(time.Millisecond), core.PoolBreaker(br))
	t.Cleanup(func() { pool.Close() })

	faultpoint.ArmErr("pool.ttp.dial-blackhole", func() error {
		return errors.New("dial ttp: network unreachable")
	})
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	_, err = pool.Upload(ctx, "txn-bh", "chaos/bh", []byte("blackhole payload"))
	d.Provider.SetMisbehavior(core.Misbehavior{})
	if !errors.Is(err, core.ErrTTPUnavailable) {
		t.Fatalf("escalation during TTP outage: want ErrTTPUnavailable in chain, got %v", err)
	}
	if br.State() != breaker.Open {
		t.Fatalf("breaker %v after outage, want Open", br.State())
	}

	// Outage ends; the cooldown elapses; the next resolve is the
	// half-open probe and must conclude the transaction.
	faultpoint.Disarm("pool.ttp.dial-blackhole")
	time.Sleep(60 * time.Millisecond)
	rr, err := pool.Resolve(ctx, "txn-bh", "retry after TTP outage")
	if err != nil {
		t.Fatalf("resolve after outage: %v", err)
	}
	if rr.PeerEvidence == nil || rr.PeerEvidence.Header.Kind != evidence.KindNRR {
		t.Fatalf("resolve outcome %q did not relay the withheld NRR", rr.Outcome)
	}
	if br.State() != breaker.Closed {
		t.Fatalf("breaker %v after successful probe, want Closed", br.State())
	}
	assertDisputeInvariant(t, w, "txn-bh", "chaos/bh")
}

// TestChaosOverloadAndExpiry combines admission control with the step
// deadline: a stuck handler forces a shed (typed, retryable), and a
// session stalled past its deadline is reaped into a provable abort
// that Resolve then relays.
func TestChaosOverloadAndExpiry(t *testing.T) {
	leakcheck.At(t)
	defer faultpoint.Reset()
	ctx := context.Background()
	store := storage.NewMem(time.Now)
	// The reaper goroutine starts inside deploy.New and may tick before
	// New's result is assigned, so the expiry hook must not read the
	// deployment variable directly — it loads the provider through an
	// atomic published after New returns (ticks before that are no-ops).
	var prov atomic.Pointer[core.Provider]
	d, err := deploy.New(deploy.Config{
		TestKeys:        true,
		ResponseTimeout: chaosTimeout,
		ProviderStore:   store,
		ProviderOpts: []core.Option{
			core.WithDeadlinePolicy(core.DeadlinePolicy{Step: 50 * time.Millisecond}),
		},
		ProviderServerOpts: []core.ServerOption{
			core.ServerMaxInflight(1),
			core.ServerExpiry(clock.Real(), 10*time.Millisecond, func(now time.Time) int {
				if p := prov.Load(); p != nil {
					return p.ExpireStale(now)
				}
				return 0
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	prov.Store(d.Provider)
	t.Cleanup(d.Close)
	w := &world{d: d, store: store}

	// Overload: one handler wedges, the next request is shed.
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	faultpoint.Arm("server.handle.slow", func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-block
	})
	conn1, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	slow := make(chan error, 1)
	go func() {
		_, err := d.Client.Upload(ctx, conn1, "txn-slow", "chaos/slow", []byte("slow"))
		slow <- err
	}()
	<-entered
	conn2, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := d.Client.Upload(ctx, conn2, "txn-shed", "chaos/shed", []byte("shed")); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("upload into full server: want ErrOverloaded, got %v", err)
	}
	faultpoint.Disarm("server.handle.slow")
	close(block)
	if err := <-slow; err != nil {
		t.Fatalf("admitted upload failed once unwedged: %v", err)
	}
	// The shed transaction retries cleanly — a shed is a delay, never a
	// dispute.
	if _, err := d.Client.Upload(ctx, conn2, "txn-shed", "chaos/shed", []byte("shed")); err != nil {
		t.Fatalf("retry of shed upload: %v", err)
	}

	// Expiry: the provider binds, the client stalls past the deadline,
	// the background reaper converts the session into a provable abort.
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	if _, err := d.Client.Upload(ctx, conn2, "txn-stale", "chaos/stale", []byte("stale")); !errors.Is(err, core.ErrTimeout) {
		t.Fatal("expected the stalled upload to time out")
	}
	d.Provider.SetMisbehavior(core.Misbehavior{})
	tc, err := d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	rr, err := d.Client.Resolve(ctx, tc, "txn-stale", "stalled past step deadline")
	if err != nil {
		t.Fatalf("resolve of expired session: %v", err)
	}
	if rr.PeerEvidence == nil || rr.PeerEvidence.Header.Kind != evidence.KindAbortAccept {
		t.Fatalf("resolve outcome %q did not relay the expiry abort receipt", rr.Outcome)
	}

	for txn, key := range map[string]string{
		"txn-slow": "chaos/slow", "txn-shed": "chaos/shed", "txn-stale": "chaos/stale",
	} {
		assertDisputeInvariant(t, w, txn, key)
	}
}
