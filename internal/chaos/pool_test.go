package chaos

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/transport"
)

// severConn delivers its first Send, then engages the shared partition
// and closes itself: a link that dies mid-transaction, right after the
// client's commitment left but before the provider's receipt can come
// back.
type severConn struct {
	transport.Conn
	part *transport.Partition
	once sync.Once
}

func (c *severConn) Send(b []byte) error {
	err := c.Conn.Send(b)
	c.once.Do(func() {
		c.part.Engage()
		c.Conn.Close()
	})
	return err
}

// TestPoolPartitionEscalatesToTTP: the network partitions mid-upload —
// the NRO reaches the provider but the connection dies before the NRR
// returns, and every redial fails while the partition holds. The pool
// must burn its retry budget, hit ErrRetriesExhausted, and escalate to
// the TTP per §4.3; the TTP relays the provider's receipt, so the
// client still ends the session holding a complete evidence pair.
func TestPoolPartitionEscalatesToTTP(t *testing.T) {
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: chaosTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	part := &transport.Partition{}
	var dials, refused atomic.Int32
	var severed atomic.Bool // only the first connection dies mid-transaction
	dial := func(ctx context.Context) (transport.Conn, error) {
		dials.Add(1)
		if part.Engaged() {
			refused.Add(1)
			return nil, fmt.Errorf("chaos: provider unreachable (partition engaged)")
		}
		c, err := d.Net.DialContext(ctx, deploy.ProviderName)
		if err != nil {
			return nil, err
		}
		if severed.CompareAndSwap(false, true) {
			return &severConn{Conn: c, part: part}, nil
		}
		return c, nil
	}
	pool := core.NewSessionPool(d.Client, dial,
		core.PoolRetries(2),
		core.PoolBackoff(time.Millisecond),
		core.PoolTTPDial(func(ctx context.Context) (transport.Conn, error) {
			return d.Net.DialContext(ctx, deploy.TTPName)
		}))
	defer pool.Close()

	data := []byte("partitioned mid-transaction")
	res, err := pool.Upload(context.Background(), "txn-part-1", "part/obj", data)
	if err != nil {
		t.Fatalf("upload under mid-transaction partition = %v, want TTP-relayed success", err)
	}
	if res.NRR == nil || res.NRR.Header.Kind != evidence.KindNRR {
		t.Fatalf("escalated upload returned no NRR: %+v", res)
	}
	// The receipt arrived through the TTP, not the dead link: the pool
	// exhausted its retries first (the initial dial plus two refused
	// redials), and the TTP logged a resolve.
	if refused.Load() < 2 {
		t.Errorf("partitioned redials = %d, want >= 2 (retry budget not exercised)", refused.Load())
	}
	if got := dials.Load(); got < 3 {
		t.Errorf("total dial attempts = %d, want >= 3", got)
	}
	if _, err := d.Client.Archive().ByKind("txn-part-1", evidence.RolePeer, evidence.KindResolveResponse); err != nil {
		t.Errorf("client did not archive the TTP's resolve statement: %v", err)
	}
	// The provider stored the data and its receipt commits to it.
	obj, err := d.Store.Get("part/obj")
	if err != nil || !bytes.Equal(obj.Data, data) {
		t.Fatalf("provider store does not hold the uploaded object: %v", err)
	}
	if !res.NRR.Header.DataMD5.Equal(res.NRO.Header.DataMD5) {
		t.Error("relayed NRR commits to different digests than the NRO")
	}

	// Healing the partition restores normal operation on the same pool:
	// the next upload completes directly, no escalation needed.
	part.Heal()
	if _, err := pool.Upload(context.Background(), "txn-part-2", "part/obj2", []byte("after heal")); err != nil {
		t.Fatalf("upload after healing the partition = %v", err)
	}
}
