package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders structured events by severity.
type Level int32

// Levels, least severe first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level for output and flags.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps a flag value onto a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return 0, fmt.Errorf("obs: bad log level %q (want debug, info, warn, or error)", s)
	}
}

// Field is one key=value pair on a structured event.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger emits line-oriented structured events:
//
//	t=2026-08-05T12:00:00.000Z level=warn event=handler_error class=protocol err="..."
//
// A nil *Logger is a valid no-op, so instrumented code logs
// unconditionally and wiring decides whether anything is written.
// Writes are serialized; one event is one line.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
	now func() time.Time // test hook; nil means time.Now
}

// NewLogger writes events at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum emitted level at runtime.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether events at lvl would be written — guard for
// call sites that pay to build their fields.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && int32(lvl) >= l.min.Load()
}

// Event writes one structured event line. Values needing quoting
// (spaces, quotes, '=') are rendered with %q; everything else with %v.
func (l *Logger) Event(lvl Level, event string, fields ...Field) {
	if !l.Enabled(lvl) {
		return
	}
	nowFn := l.now
	if nowFn == nil {
		nowFn = time.Now
	}
	var b strings.Builder
	b.WriteString("t=")
	b.WriteString(nowFn().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lvl.String())
	b.WriteString(" event=")
	b.WriteString(event)
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		s := fmt.Sprint(f.Value)
		if strings.ContainsAny(s, " \"'=\n\t") || s == "" {
			s = fmt.Sprintf("%q", s)
		}
		b.WriteString(s)
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// Debug, Info, Warn, Error are level-fixed shorthands for Event.
func (l *Logger) Debug(event string, fields ...Field) { l.Event(LevelDebug, event, fields...) }
func (l *Logger) Info(event string, fields ...Field)  { l.Event(LevelInfo, event, fields...) }
func (l *Logger) Warn(event string, fields ...Field)  { l.Event(LevelWarn, event, fields...) }
func (l *Logger) Error(event string, fields ...Field) { l.Event(LevelError, event, fields...) }
