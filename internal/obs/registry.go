// Package obs is the operational observability layer: a zero-dependency
// metrics registry (atomic counters, gauges, bounded fixed-bucket
// histograms) plus a leveled structured-event logger. The paper's
// dispute model only works if an operator can see what the system did —
// which sessions resolved through the TTP, how often evidence
// verification failed, where time went between NRO and NRR (§4.3–4.4)
// — so every hot subsystem (core.Server, core.SessionPool, the WAL, the
// verify cache, the transport) reports here, and the daemons expose the
// registry over HTTP via obs/obshttp.
//
// Naming convention (DESIGN.md §9): snake_case
// `<subsystem>_<what>_<unit>`, monotonic counters end in `_total`,
// histograms carry their unit (`_ns`, `_records`). A bounded label is
// encoded into the name with Labeled: `server_handler_errors_total{class="protocol"}`.
// Labels are for small fixed sets (error classes, policies) only —
// never per-transaction values, which would grow the registry without
// bound.
//
// Cost model: fetching a metric by name takes a lock and a map lookup,
// so hot paths resolve their metrics ONCE (package init or constructor)
// and then pay a single atomic add per event. Instrumentation overhead
// on the E10/E11 benchmark families is gated at <5% by
// cmd/benchreport's -baseline check.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. Reset exists only for
// the experiment harness (metrics.Counters adapter); operational
// counters are never reset.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter. Experiment-harness use only.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a value that can go up and down (active connections, pool
// occupancy).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc and Dec move the gauge by ±1.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts int64 observations into fixed buckets chosen at
// creation. Memory is bounded by construction: len(bounds)+1 atomic
// slots regardless of how many observations arrive, unlike an
// append-every-sample recorder. Observations are raw int64s so the
// same type serves durations (nanoseconds) and sizes (records, bytes).
type Histogram struct {
	bounds []int64        // sorted inclusive upper bounds
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed nanoseconds since start — the usual
// call on latency histograms.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Count returns total observations; Sum their total value.
func (h *Histogram) Count() int64 { return h.count.Load() }
func (h *Histogram) Sum() int64   { return h.sum.Load() }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Standard bucket layouts.
var (
	// DurationBuckets covers 50µs..5s in nanoseconds — protocol message
	// handling spans RSA signing (hundreds of µs) through TTP round
	// trips (tens of ms) and fsync stalls.
	DurationBuckets = []int64{
		int64(50 * time.Microsecond), int64(100 * time.Microsecond),
		int64(250 * time.Microsecond), int64(500 * time.Microsecond),
		int64(time.Millisecond), int64(2500 * time.Microsecond),
		int64(5 * time.Millisecond), int64(10 * time.Millisecond),
		int64(25 * time.Millisecond), int64(50 * time.Millisecond),
		int64(100 * time.Millisecond), int64(250 * time.Millisecond),
		int64(500 * time.Millisecond), int64(time.Second),
		int64(2500 * time.Millisecond), int64(5 * time.Second),
	}
	// SizeBuckets covers counts (group-commit batch sizes, records):
	// powers of two 1..1024.
	SizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

// Registry holds named metrics. Lookups create on first use; a name is
// permanently bound to its first kind (a second registration with the
// same name returns the existing metric; a kind conflict panics, since
// it is always a programming error caught by the first test run).
type Registry struct {
	mu       sync.RWMutex
	counts   map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts:   make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry the daemons expose.
// Library instrumentation (wal, transport, evidence) reports here so
// operational visibility needs no plumbing through every constructor;
// tests that need isolation pass a private registry where an option
// exists.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counts[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c = &Counter{}
	r.counts[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a callback gauge: fn is invoked at snapshot time
// and its value reported under name. Callback gauges fit state that
// already lives behind its own lock (open WAL segments, archive sizes)
// — polling it at read time beats mirroring every change into a stored
// Gauge. fn must not call back into the registry. Re-registering a name
// replaces its callback (packages with process-wide instance sets
// re-register on instance churn).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFns[name]; !ok {
		r.checkFree(name, "gauge func")
	}
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (bounds must be sorted ascending; they are
// ignored when the histogram already exists).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.hists[name] = h
	return h
}

// checkFree panics when name is already bound to a different kind.
// Called with r.mu held.
func (r *Registry) checkFree(name, kind string) {
	if _, ok := r.counts[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a counter, wanted %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a gauge, wanted %s", name, kind))
	}
	if _, ok := r.gaugeFns[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a gauge func, wanted %s", name, kind))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a histogram, wanted %s", name, kind))
	}
}

// Labeled encodes one bounded label into a metric name:
// Labeled("server_handler_errors_total", "class", "protocol") →
// `server_handler_errors_total{class="protocol"}`. Use only for small
// fixed label sets; the registry has no cardinality guard.
func Labeled(name, label, value string) string {
	return name + "{" + label + "=\"" + value + "\"}"
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // per-bucket, last is +Inf overflow
}

// Snapshot is a point-in-time copy of a whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric. Values are read without a global
// freeze, so concurrent updates may straddle the copy — fine for
// monitoring, not for invariants.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFns {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: h.bounds,
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteText renders the registry as sorted `name value` lines — the
// text body of /metrics. Histograms expand to `_count`, `_sum` and
// cumulative `_le_<bound>` lines (bound in the metric's native unit).
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s_count %d", name, h.Count))
		lines = append(lines, fmt.Sprintf("%s_sum %d", name, h.Sum))
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			lines = append(lines, fmt.Sprintf("%s_le_%d %d", name, b, cum))
		}
		lines = append(lines, fmt.Sprintf("%s_le_inf %d", name, h.Count))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry snapshot as indented JSON — the
// machine-readable body of /metrics?format=json.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
