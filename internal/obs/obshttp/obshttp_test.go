package obshttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func get(t *testing.T, url string, header map[string]string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("demo_total").Add(3)
	reg.Gauge("demo_active").Set(1)
	reg.Histogram("demo_ns", []int64{100}).Observe(50)

	s, err := Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	code, body, ctype := get(t, base+"/healthz", nil)
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/healthz content-type = %q", ctype)
	}

	code, body, _ = get(t, base+"/metrics", nil)
	if code != 200 || !strings.Contains(body, "demo_total 3\n") || !strings.Contains(body, "demo_ns_count 1\n") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}

	for _, variant := range []struct {
		url    string
		header map[string]string
	}{
		{base + "/metrics?format=json", nil},
		{base + "/metrics", map[string]string{"Accept": "application/json"}},
	} {
		code, body, ctype = get(t, variant.url, variant.header)
		if code != 200 || !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("JSON metrics (%s) = %d, content-type %q", variant.url, code, ctype)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("JSON metrics do not parse: %v\n%s", err, body)
		}
		if snap.Counters["demo_total"] != 3 || snap.Gauges["demo_active"] != 1 {
			t.Fatalf("JSON snapshot = %+v", snap)
		}
	}

	// pprof index answers (the profile handlers themselves are stdlib).
	code, body, _ = get(t, base+"/debug/pprof/", nil)
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%.200s", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

func TestStartBadAddr(t *testing.T) {
	if _, err := Start("256.256.256.256:99999", obs.NewRegistry()); err == nil {
		t.Fatal("bad address accepted")
	}
}
