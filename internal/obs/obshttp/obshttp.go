// Package obshttp exposes an obs.Registry over HTTP for the daemons:
//
//	/metrics      registry snapshot, text key-value (or JSON with
//	              ?format=json / Accept: application/json)
//	/healthz      liveness probe: 200 "ok", or 503 "degraded: <err>"
//	              when any registered health check fails
//	/debug/pprof  the standard runtime profiler endpoints
//
// The server binds eagerly (so a bad -obs-addr fails at startup, not
// first scrape) and shuts down gracefully alongside the daemon's
// signal handling.
package obshttp

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/obs"
)

// Handler builds the observability mux over reg. Each check is polled
// on every /healthz hit; the first non-nil error flips the probe to
// 503 "degraded" — the signal an orchestrator uses to stop routing NEW
// sessions to a provider whose journal went read-only, while the
// process itself stays up draining existing ones.
func Handler(reg *obs.Registry, checks ...func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, check := range checks {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "degraded: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan error
}

// Start listens on addr (":0" picks a free port) and serves the
// observability mux in the background. Optional health checks feed
// /healthz (see Handler).
func Start(addr string, reg *obs.Registry, checks ...func() error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listening on %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(reg, checks...),
			ReadHeaderTimeout: 5 * time.Second,
		},
		done: make(chan error, 1),
	}
	go func() { s.done <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting scrapes and drains in-flight requests,
// bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if serveErr := <-s.done; serveErr != nil && serveErr != http.ErrServerClosed && err == nil {
		err = serveErr
	}
	return err
}
