package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("x_active")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge after Set = %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Lookups and adds race deliberately: first-use creation must
			// hand every goroutine the same counter.
			for j := 0; j < 1000; j++ {
				r.Counter("concurrent_total").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("concurrent_total").Value(); got != 8000 {
		t.Fatalf("lost updates: %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5126 {
		t.Fatalf("sum = %d", h.Sum())
	}
	s := r.Snapshot().Histograms["lat_ns"]
	// Buckets: ≤10 gets {5,10}, ≤100 gets {11,100}, ≤1000 none, +Inf {5000}.
	want := []int64{2, 2, 0, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestHistogramMemoryBounded(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bounded_ns", DurationBuckets)
	for i := 0; i < 200000; i++ {
		h.Observe(int64(i))
	}
	if got := len(h.counts); got != len(DurationBuckets)+1 {
		t.Fatalf("bucket slots grew to %d", got)
	}
	if h.Count() != 200000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(3)
	r.GaugeFunc("pool_depth", func() int64 { return v })
	if got := r.Snapshot().Gauges["pool_depth"]; got != 3 {
		t.Fatalf("gauge func snapshot = %d, want 3", got)
	}
	v = 9
	if got := r.Snapshot().Gauges["pool_depth"]; got != 9 {
		t.Fatalf("gauge func is not re-evaluated per snapshot: got %d, want 9", got)
	}
	// Re-registration replaces the callback (instance sets re-register).
	r.GaugeFunc("pool_depth", func() int64 { return -1 })
	if got := r.Snapshot().Gauges["pool_depth"]; got != -1 {
		t.Fatalf("re-registered gauge func not used: got %d", got)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pool_depth -1\n") {
		t.Fatalf("text output missing gauge func line:\n%s", buf.String())
	}
}

func TestGaugeFuncKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("name", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("counter registration over a gauge-func name did not panic")
		}
	}()
	r.Counter("name")
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge registration over a counter name did not panic")
		}
	}()
	r.Gauge("name")
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_active").Set(7)
	r.Histogram("h_ns", []int64{10, 20}).Observe(15)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"a_active 7\n", "b_total 2\n", "h_ns_count 1\n", "h_ns_sum 15\n", "h_ns_le_10 0\n", "h_ns_le_20 1\n", "h_ns_le_inf 1\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
	// Lines are sorted for stable diffing.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("unsorted output at line %d:\n%s", i, text)
		}
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if snap.Counters["b_total"] != 2 || snap.Gauges["a_active"] != 7 || snap.Histograms["h_ns"].Count != 1 {
		t.Fatalf("JSON snapshot = %+v", snap)
	}
}

func TestLabeled(t *testing.T) {
	got := Labeled("server_handler_errors_total", "class", "protocol")
	if got != `server_handler_errors_total{class="protocol"}` {
		t.Fatalf("Labeled = %s", got)
	}
}

func TestLoggerLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	l.Debug("dropped")
	l.Warn("handler_error", F("class", "protocol"), F("err", "bad seq: replay"))
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("debug event leaked below min level:\n%s", out)
	}
	want := "t=2026-08-05T12:00:00.000Z level=warn event=handler_error class=protocol err=\"bad seq: replay\"\n"
	if out != want {
		t.Fatalf("event line:\n got %q\nwant %q", out, want)
	}
	l.SetLevel(LevelError)
	l.Warn("now_dropped")
	if strings.Contains(buf.String(), "now_dropped") {
		t.Fatal("SetLevel did not raise the threshold")
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing", F("k", 1)) // must not panic
	if l.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
	l.SetLevel(LevelDebug)
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError, "": LevelInfo} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bad level accepted")
	}
}
