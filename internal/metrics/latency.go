package metrics

import (
	"sort"
	"sync"
	"time"
)

// Latencies is a concurrency-safe recorder of operation durations, the
// companion to Counters for the throughput experiments: workers Record
// from many goroutines, the harness reads Percentile afterwards. The
// zero value is ready.
type Latencies struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// Record appends one sample.
func (l *Latencies) Record(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.sorted = false
	l.mu.Unlock()
}

// Count returns how many samples were recorded.
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank over the recorded samples, or 0 with no samples.
func (l *Latencies) Percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	rank := int(p/100*float64(len(l.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(l.samples) {
		rank = len(l.samples) - 1
	}
	return l.samples[rank]
}

// Reset drops every sample.
func (l *Latencies) Reset() {
	l.mu.Lock()
	l.samples = nil
	l.sorted = false
	l.mu.Unlock()
}
