package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// DefaultReservoirSize bounds a zero-value Latencies recorder. 8192
// samples keep the nearest-rank p99 of any realistic latency
// distribution within a percent or two of the exact value while
// capping memory at 64 KiB per recorder.
const DefaultReservoirSize = 8192

// Latencies is a concurrency-safe recorder of operation durations, the
// companion to Counters for the throughput experiments: workers Record
// from many goroutines, the harness reads Percentile afterwards. The
// zero value is ready.
//
// Internally it keeps a bounded uniform reservoir (Vitter's Algorithm
// R) rather than every sample: a long-lived daemon recording
// per-message latency holds at most the reservoir capacity, while each
// recorded duration still has an equal probability of being
// represented, so percentiles converge on the true distribution.
type Latencies struct {
	mu      sync.Mutex
	capn    int        // reservoir capacity; 0 until first use
	rng     *rand.Rand // replacement choices; lazily seeded
	total   int64      // samples ever recorded
	samples []time.Duration
	sorted  bool
}

// NewLatencies builds a recorder with the given reservoir capacity
// (values < 1 mean DefaultReservoirSize).
func NewLatencies(capacity int) *Latencies {
	if capacity < 1 {
		capacity = DefaultReservoirSize
	}
	return &Latencies{capn: capacity}
}

// Seed fixes the reservoir's replacement randomness so tests get a
// deterministic sample selection.
func (l *Latencies) Seed(seed int64) {
	l.mu.Lock()
	l.rng = rand.New(rand.NewSource(seed))
	l.mu.Unlock()
}

// init lazily finishes a zero-value recorder. Called with l.mu held.
func (l *Latencies) initLocked() {
	if l.capn == 0 {
		l.capn = DefaultReservoirSize
	}
	if l.rng == nil {
		l.rng = rand.New(rand.NewSource(rand.Int63()))
	}
}

// Record adds one sample to the reservoir.
func (l *Latencies) Record(d time.Duration) {
	l.mu.Lock()
	l.initLocked()
	if len(l.samples) < l.capn {
		l.samples = append(l.samples, d)
	} else {
		// Algorithm R: the incoming sample replaces a uniformly random
		// reservoir slot with probability cap/total, keeping every sample
		// ever recorded equally likely to be present. (Percentile sorts
		// the reservoir in place; a permutation of a uniform sample is
		// still a uniform sample, so replacing a random index stays
		// correct afterwards.)
		if j := l.rng.Int63n(l.total + 1); j < int64(l.capn) {
			l.samples[j] = d
		}
	}
	l.total++
	l.sorted = false
	l.mu.Unlock()
}

// Count returns how many samples were recorded (not how many the
// bounded reservoir currently retains).
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.total)
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank over the retained samples, or 0 with no samples.
func (l *Latencies) Percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	rank := int(p/100*float64(len(l.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(l.samples) {
		rank = len(l.samples) - 1
	}
	return l.samples[rank]
}

// Reset drops every sample (capacity and seed are kept).
func (l *Latencies) Reset() {
	l.mu.Lock()
	l.samples = nil
	l.total = 0
	l.sorted = false
	l.mu.Unlock()
}
