package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestLatenciesBasics(t *testing.T) {
	var l Latencies
	for _, d := range []time.Duration{30, 10, 20} {
		l.Record(d * time.Millisecond)
	}
	if l.Count() != 3 {
		t.Fatalf("Count = %d", l.Count())
	}
	if got := l.Percentile(50); got != 20*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Percentile(100); got != 30*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	l.Reset()
	if l.Count() != 0 || l.Percentile(50) != 0 {
		t.Fatal("Reset left samples behind")
	}
}

// TestLatenciesMemoryBounded is the regression test for the unbounded
// recorder: a daemon-lifetime stream of samples must retain at most the
// reservoir capacity, while Count still reports everything recorded.
func TestLatenciesMemoryBounded(t *testing.T) {
	l := NewLatencies(512)
	l.Seed(1)
	const n = 200000
	for i := 0; i < n; i++ {
		l.Record(time.Duration(i))
	}
	if got := len(l.samples); got > 512 {
		t.Fatalf("reservoir grew to %d samples (cap 512)", got)
	}
	if cap(l.samples) > 1024 {
		t.Fatalf("reservoir backing array grew to %d", cap(l.samples))
	}
	if l.Count() != n {
		t.Fatalf("Count = %d, want %d", l.Count(), n)
	}
}

// TestLatenciesZeroValueBounded checks the default capacity applies to
// the zero value (the form the benchmarks use).
func TestLatenciesZeroValueBounded(t *testing.T) {
	var l Latencies
	for i := 0; i < DefaultReservoirSize+100; i++ {
		l.Record(time.Duration(i))
	}
	if got := len(l.samples); got != DefaultReservoirSize {
		t.Fatalf("zero-value reservoir holds %d samples, want %d", got, DefaultReservoirSize)
	}
}

// TestLatenciesPercentileAccuracy records a known uniform distribution
// far larger than the reservoir and checks the sampled percentiles stay
// within tolerance of the exact answer.
func TestLatenciesPercentileAccuracy(t *testing.T) {
	l := NewLatencies(8192)
	l.Seed(42)
	const n = 100000
	for i := 1; i <= n; i++ {
		l.Record(time.Duration(i) * time.Microsecond)
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{50, n / 2 * time.Microsecond},
		{90, n * 9 / 10 * time.Microsecond},
		{99, n * 99 / 100 * time.Microsecond},
	} {
		got := l.Percentile(tc.p)
		relErr := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if relErr > 0.05 {
			t.Errorf("p%.0f = %v, want %v ±5%% (err %.1f%%)", tc.p, got, tc.want, relErr*100)
		}
	}
}

func TestLatenciesConcurrent(t *testing.T) {
	l := NewLatencies(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Record(time.Duration(j))
			}
		}()
	}
	wg.Wait()
	if l.Count() != 8000 {
		t.Fatalf("Count = %d", l.Count())
	}
	if len(l.samples) > 128 {
		t.Fatalf("reservoir grew to %d", len(l.samples))
	}
}
