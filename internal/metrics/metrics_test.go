package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersBasics(t *testing.T) {
	var c Counters
	c.Inc(MsgsSent, 1)
	c.Inc(MsgsSent, 2)
	c.Inc(BytesSent, 100)
	if got := c.Get(MsgsSent); got != 3 {
		t.Errorf("MsgsSent = %d", got)
	}
	if got := c.Get("never-set"); got != 0 {
		t.Errorf("unset counter = %d", got)
	}
	snap := c.Snapshot()
	if snap[BytesSent] != 100 || len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	c.Inc(BytesSent, 1)
	if snap[BytesSent] != 100 {
		t.Error("snapshot aliases live counters")
	}
	c.Reset()
	if c.Get(MsgsSent) != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestCountersNames(t *testing.T) {
	var c Counters
	c.Inc("z", 1)
	c.Inc("a", 1)
	c.Inc("m", 1)
	names := c.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "z" {
		t.Errorf("Names = %v", names)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc(MsgsSent, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(MsgsSent); got != 8000 {
		t.Errorf("concurrent Inc lost updates: %d", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E8: step comparison", "protocol", "messages", "ttp", "latency")
	tb.AddRow("TPNR (normal)", 2, 0, 20*time.Millisecond)
	tb.AddRow("traditional NR", 4, 2, 40*time.Millisecond)
	tb.AddRow("ratio", 2.0, "-", "-")
	out := tb.String()

	for _, want := range []string{"E8: step comparison", "protocol", "TPNR (normal)", "traditional NR", "2.00", "20ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, blank, header, separator, 3 rows.
	if len(lines) != 7 {
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	if len(tb.Rows()) != 3 {
		t.Errorf("Rows = %d", len(tb.Rows()))
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "long-header")
	tb.AddRow("xxxxxxxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The second column must start at the same offset in every line.
	if idx := strings.Index(lines[0], "long-header"); idx != strings.Index(lines[2], "y") {
		t.Errorf("misaligned table (col2 at %d vs %d):\n%s", idx, strings.Index(lines[2], "y"), out)
	}
}
