// Package metrics provides the counters and table rendering the
// experiment harness uses to report protocol costs: message counts
// (the §4.4 "2 steps vs 4 steps" claim), bytes on the wire, crypto
// operation counts, and TTP involvement.
//
// Since the obs layer landed, Counters is a thin adapter over
// obs.Registry counters: a zero-value Counters owns a private registry
// (experiment tables keep working unchanged), while CountersOn directs
// the same protocol counters into a shared registry — the daemons use
// it to surface per-party protocol metrics on /metrics without a
// second bookkeeping path.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Counters accumulates protocol-run statistics. Safe for concurrent
// use. The zero value is ready and reports into a private registry.
type Counters struct {
	mu     sync.Mutex
	reg    *obs.Registry
	prefix string
	names  map[string]*obs.Counter // counters this instance has touched
}

// CountersOn returns a Counters reporting into reg, every counter name
// prefixed with prefix (e.g. "tpnr_"). Snapshot, Get, Names and Reset
// see only counters touched through this instance, so sharing a
// registry with other subsystems is safe; sharing one (registry,
// prefix) pair between two Counters merges their counts.
func CountersOn(reg *obs.Registry, prefix string) *Counters {
	return &Counters{reg: reg, prefix: prefix}
}

// counter resolves (creating on first use) the backing obs counter.
func (c *Counters) counter(name string) *obs.Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.names == nil {
		c.names = make(map[string]*obs.Counter)
		if c.reg == nil {
			c.reg = obs.NewRegistry()
		}
	}
	ctr, ok := c.names[name]
	if !ok {
		ctr = c.reg.Counter(c.prefix + name)
		c.names[name] = ctr
	}
	return ctr
}

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.counter(name).Add(delta)
}

// Get returns the named counter's value.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr, ok := c.names[name]; ok {
		return ctr.Value()
	}
	return 0
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.names))
	for k, ctr := range c.names {
		out[k] = ctr.Value()
	}
	return out
}

// Reset zeroes every counter this instance has touched. (With a shared
// registry the counters stay registered — only their values reset.)
func (c *Counters) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ctr := range c.names {
		ctr.Reset()
	}
}

// Names returns counter names in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.names))
	for k := range c.names {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Standard counter names used across the protocol engines, so
// experiment code can compare engines without string drift.
const (
	MsgsSent     = "msgs_sent"
	MsgsRecv     = "msgs_recv"
	BytesSent    = "bytes_sent"
	TTPMsgs      = "ttp_msgs"
	SignOps      = "sign_ops"
	VerifyOps    = "verify_ops"
	EncryptOps   = "encrypt_ops"
	DecryptOps   = "decrypt_ops"
	HashOps      = "hash_ops"
	Rounds       = "rounds"
	Disputes     = "disputes"
	Aborts       = "aborts"
	Resolves     = "resolves"
	ReplaysSeen  = "replays_seen"
	AuthFailures = "auth_failures"
)

// Table renders experiment output rows with aligned columns, matching
// the plain-text tables EXPERIMENTS.md embeds.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the accumulated rows.
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(cell) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
