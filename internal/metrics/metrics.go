// Package metrics provides the counters and table rendering the
// experiment harness uses to report protocol costs: message counts
// (the §4.4 "2 steps vs 4 steps" claim), bytes on the wire, crypto
// operation counts, and TTP involvement.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counters accumulates protocol-run statistics. Safe for concurrent
// use. The zero value is ready.
type Counters struct {
	mu sync.Mutex
	n  map[string]int64
}

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	if c.n == nil {
		c.n = make(map[string]int64)
	}
	c.n[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.n))
	for k, v := range c.n {
		out[k] = v
	}
	return out
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.mu.Lock()
	c.n = nil
	c.mu.Unlock()
}

// Names returns counter names in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.n))
	for k := range c.n {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Standard counter names used across the protocol engines, so
// experiment code can compare engines without string drift.
const (
	MsgsSent     = "msgs_sent"
	MsgsRecv     = "msgs_recv"
	BytesSent    = "bytes_sent"
	TTPMsgs      = "ttp_msgs"
	SignOps      = "sign_ops"
	VerifyOps    = "verify_ops"
	EncryptOps   = "encrypt_ops"
	DecryptOps   = "decrypt_ops"
	HashOps      = "hash_ops"
	Rounds       = "rounds"
	Disputes     = "disputes"
	Aborts       = "aborts"
	Resolves     = "resolves"
	ReplaysSeen  = "replays_seen"
	AuthFailures = "auth_failures"
)

// Table renders experiment output rows with aligned columns, matching
// the plain-text tables EXPERIMENTS.md embeds.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the accumulated rows.
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(cell) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
