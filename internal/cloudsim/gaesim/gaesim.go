// Package gaesim simulates the Google App Engine Secure Data Connector
// path the paper analyzes (§2.3, Fig. 4): a user's request enters
// Google Apps, is forwarded to the Tunnel Server, which validates it;
// the SDC agent inside the corporate network applies resource rules and
// performs the internal network request; the data source validates the
// signed request (owner_id, viewer_id, instance_id, app_id, public_key,
// consumer_key, nonce, token, signature) and returns data if the user
// is authorized.
//
// As with the other two simulators, authentication and transport
// integrity are faithful — and the storage-dwell integrity gap is the
// same: nothing ties returned content to what was originally stored.
package gaesim

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Simulator errors.
var (
	ErrUnknownConsumer = errors.New("gaesim: unknown consumer_key")
	ErrBadToken        = errors.New("gaesim: invalid token")
	ErrBadSignature    = errors.New("gaesim: signed request verification failed")
	ErrReplayedNonce   = errors.New("gaesim: nonce already used")
	ErrNotAuthorized   = errors.New("gaesim: resource rules deny access")
	ErrNotFound        = errors.New("gaesim: resource not found")
)

// SignedRequest carries the §2.3 field set. Signature covers the
// canonical encoding of every other field under the key whose PKIX DER
// is in PublicKey; ConsumerKey must be pre-registered with the tunnel
// so an attacker cannot substitute their own key pair.
type SignedRequest struct {
	OwnerID     string
	ViewerID    string
	InstanceID  string
	AppID       string
	PublicKey   []byte // PKIX DER of the signer's RSA key
	ConsumerKey string
	Nonce       []byte
	Token       string
	Resource    string // the internal path being requested
	Signature   []byte
}

// CanonicalBytes is the byte string the signature covers.
func (r *SignedRequest) CanonicalBytes() []byte {
	var b strings.Builder
	b.WriteString("sdc-signed-request-v1\x00")
	for _, f := range []string{r.OwnerID, r.ViewerID, r.InstanceID, r.AppID, r.ConsumerKey, r.Token, r.Resource} {
		b.WriteString(f)
		b.WriteByte(0)
	}
	b.Write(r.PublicKey)
	b.WriteByte(0)
	b.Write(r.Nonce)
	return []byte(b.String())
}

// Rule is one SDC resource rule: which viewer may touch which resource
// prefix.
type Rule struct {
	ViewerID       string // "*" matches any viewer
	ResourcePrefix string
}

// Allows reports whether the rule admits the (viewer, resource) pair.
func (ru Rule) Allows(viewerID, resource string) bool {
	if ru.ViewerID != "*" && ru.ViewerID != viewerID {
		return false
	}
	return strings.HasPrefix(resource, ru.ResourcePrefix)
}

// TunnelServer validates inbound requests before they enter the
// corporate network: consumer key registration, token validity, nonce
// freshness, and the request signature.
type TunnelServer struct {
	mu        sync.Mutex
	consumers map[string][]byte // consumer_key → registered PKIX public key DER
	tokens    map[string]bool   // valid tokens
	// seenNonce is a bounded replay window (same memory/horizon
	// trade-off as session.Guard): nonceOrder evicts oldest-first.
	seenNonce  map[string]bool
	nonceOrder []string
	// NonceWindow bounds remembered nonces; replays older than the
	// window go undetected (document, don't hide, the trade-off).
	NonceWindow int
}

// NewTunnelServer returns an empty tunnel registry.
func NewTunnelServer() *TunnelServer {
	return &TunnelServer{
		consumers:   make(map[string][]byte),
		tokens:      make(map[string]bool),
		seenNonce:   make(map[string]bool),
		NonceWindow: 1 << 16,
	}
}

// RegisterConsumer pins a consumer key to its public key.
func (t *TunnelServer) RegisterConsumer(consumerKey string, publicKeyDER []byte) {
	t.mu.Lock()
	t.consumers[consumerKey] = append([]byte(nil), publicKeyDER...)
	t.mu.Unlock()
}

// IssueToken mints a bearer token for an authenticated session.
func (t *TunnelServer) IssueToken() (string, error) {
	raw, err := cryptoutil.Nonce(16)
	if err != nil {
		return "", fmt.Errorf("gaesim: minting token: %w", err)
	}
	tok := fmt.Sprintf("tok-%x", raw)
	t.mu.Lock()
	t.tokens[tok] = true
	t.mu.Unlock()
	return tok, nil
}

// Validate enforces the tunnel checks on a signed request.
func (t *TunnelServer) Validate(r *SignedRequest) error {
	t.mu.Lock()
	registered, knownConsumer := t.consumers[r.ConsumerKey]
	validToken := t.tokens[r.Token]
	replayed := t.seenNonce[string(r.Nonce)]
	if !replayed {
		t.seenNonce[string(r.Nonce)] = true
		t.nonceOrder = append(t.nonceOrder, string(r.Nonce))
		for len(t.nonceOrder) > t.NonceWindow {
			delete(t.seenNonce, t.nonceOrder[0])
			t.nonceOrder = t.nonceOrder[1:]
		}
	}
	t.mu.Unlock()

	if !knownConsumer {
		return fmt.Errorf("%w: %q", ErrUnknownConsumer, r.ConsumerKey)
	}
	if !validToken {
		return fmt.Errorf("%w: %q", ErrBadToken, r.Token)
	}
	if replayed {
		return ErrReplayedNonce
	}
	// The public key in the request must be the registered one — an
	// attacker including their own key pair is rejected here.
	if string(registered) != string(r.PublicKey) {
		return fmt.Errorf("%w: public key not registered for consumer", ErrBadSignature)
	}
	pub, err := cryptoutil.ParseAnyPublicKey(r.PublicKey)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	if err := pub.Verify(r.CanonicalBytes(), r.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	return nil
}

// Agent is the SDC agent inside the corporate network: resource rules
// plus the internal data source.
type Agent struct {
	rules  []Rule
	source storage.Store
}

// NewAgent builds an agent over the internal data source.
func NewAgent(source storage.Store, rules []Rule) *Agent {
	return &Agent{rules: rules, source: source}
}

// Source exposes the internal data source (insider view).
func (a *Agent) Source() storage.Store { return a.source }

// Fetch applies resource rules and performs the internal request.
func (a *Agent) Fetch(viewerID, resource string) ([]byte, error) {
	allowed := false
	for _, ru := range a.rules {
		if ru.Allows(viewerID, resource) {
			allowed = true
			break
		}
	}
	if !allowed {
		return nil, fmt.Errorf("%w: viewer %q resource %q", ErrNotAuthorized, viewerID, resource)
	}
	obj, err := a.source.Get(resource)
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, resource)
		}
		return nil, err
	}
	return obj.Data, nil
}

// Deployment wires Apps → Tunnel → SDC agent into the Fig. 4 pipeline.
type Deployment struct {
	Tunnel *TunnelServer
	Agent  *Agent
}

// FlowStep records one hop of the Fig. 4 walk-through for transcripts.
type FlowStep struct {
	Hop    string
	Detail string
}

// Request runs the full flow and returns the data plus the hop
// transcript. The transcript is produced even on failure, stopping at
// the hop that rejected.
func (d *Deployment) Request(r *SignedRequest) ([]byte, []FlowStep, error) {
	steps := []FlowStep{
		{Hop: "user→apps", Detail: "authorized data request for " + r.Resource},
		{Hop: "apps→tunnel", Detail: "forward request to tunnel server"},
	}
	if err := d.Tunnel.Validate(r); err != nil {
		steps = append(steps, FlowStep{Hop: "tunnel", Detail: "REJECT: " + err.Error()})
		return nil, steps, err
	}
	steps = append(steps,
		FlowStep{Hop: "tunnel", Detail: "request validated; encrypted tunnel established"},
		FlowStep{Hop: "sdc", Detail: "apply resource rules for viewer " + r.ViewerID},
	)
	data, err := d.Agent.Fetch(r.ViewerID, r.Resource)
	if err != nil {
		steps = append(steps, FlowStep{Hop: "sdc", Detail: "REJECT: " + err.Error()})
		return nil, steps, err
	}
	steps = append(steps,
		FlowStep{Hop: "source", Detail: fmt.Sprintf("credentials checked; %d bytes returned", len(data))},
		FlowStep{Hop: "apps→user", Detail: "data delivered"},
	)
	return data, steps, nil
}

// BuildSignedRequest constructs and signs a request for the given
// identity key.
func BuildSignedRequest(key cryptoutil.KeyPair, ownerID, viewerID, instanceID, appID, consumerKey, token, resource string) (*SignedRequest, error) {
	signer := key.Signer()
	if signer == nil {
		return nil, fmt.Errorf("gaesim: key pair holds no private key")
	}
	der := signer.Public().Marshal()
	r := &SignedRequest{
		OwnerID:     ownerID,
		ViewerID:    viewerID,
		InstanceID:  instanceID,
		AppID:       appID,
		PublicKey:   der,
		ConsumerKey: consumerKey,
		Nonce:       cryptoutil.MustNonce(),
		Token:       token,
		Resource:    resource,
	}
	sig, err := signer.Sign(r.CanonicalBytes())
	if err != nil {
		return nil, err
	}
	r.Signature = sig
	return r, nil
}

// EncodeSignedRequest serializes a signed request for transport (e.g.
// through the encrypted tunnel).
func EncodeSignedRequest(r *SignedRequest) []byte {
	e := wire.NewEncoder(256 + len(r.PublicKey) + len(r.Signature))
	e.String("sdc-request-v1")
	e.String(r.OwnerID)
	e.String(r.ViewerID)
	e.String(r.InstanceID)
	e.String(r.AppID)
	e.Bytes32(r.PublicKey)
	e.String(r.ConsumerKey)
	e.Bytes32(r.Nonce)
	e.String(r.Token)
	e.String(r.Resource)
	e.Bytes32(r.Signature)
	return e.Bytes()
}

// DecodeSignedRequest reverses EncodeSignedRequest.
func DecodeSignedRequest(b []byte) (*SignedRequest, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != "sdc-request-v1" {
		return nil, fmt.Errorf("gaesim: bad request magic %q", magic)
	}
	r := &SignedRequest{
		OwnerID:    d.String(),
		ViewerID:   d.String(),
		InstanceID: d.String(),
		AppID:      d.String(),
	}
	r.PublicKey = d.Bytes32()
	r.ConsumerKey = d.String()
	r.Nonce = d.Bytes32()
	r.Token = d.String()
	r.Resource = d.String()
	r.Signature = d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("gaesim: decoding request: %w", err)
	}
	return r, nil
}
