package gaesim

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/storage"
	"repro/internal/transport"
)

func establishPair(t *testing.T) (*SecureChannel, *SecureChannel, *transport.Tap) {
	t.Helper()
	tunnel := NewTunnelServer()
	key := cryptoutil.InsecureTestKey(140)
	der, err := cryptoutil.MarshalPublicKey(key.Public())
	if err != nil {
		t.Fatal(err)
	}
	tunnel.RegisterConsumer("sdc-1", der)

	// Wire the two ends through a tap so tests can observe/modify the
	// ciphertext like a network attacker.
	serverRaw, tapServerSide := transport.Pipe(0)
	agentRaw, tapAgentSide := transport.Pipe(0)
	tap := transport.NewTap(tapAgentSide, tapServerSide, nil)

	serverCh, wrapped, err := tunnel.EstablishTunnel("sdc-1", serverRaw)
	if err != nil {
		t.Fatal(err)
	}
	agentCh, err := AcceptTunnel(key, wrapped, agentRaw)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tap.Close)
	return serverCh, agentCh, tap
}

func TestTunnelRoundTrip(t *testing.T) {
	server, agent, _ := establishPair(t)
	if err := server.Send([]byte("request: crm/accounts")); err != nil {
		t.Fatal(err)
	}
	got, err := agent.Recv()
	if err != nil || string(got) != "request: crm/accounts" {
		t.Fatalf("agent recv: %q %v", got, err)
	}
	if err := agent.Send([]byte("response data")); err != nil {
		t.Fatal(err)
	}
	got, err = server.Recv()
	if err != nil || string(got) != "response data" {
		t.Fatalf("server recv: %q %v", got, err)
	}
}

func TestTunnelConfidentiality(t *testing.T) {
	server, agent, tap := establishPair(t)
	secret := []byte("patient record: dosage = 10mg")
	if err := server.Send(secret); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Recv(); err != nil {
		t.Fatal(err)
	}
	for _, rec := range tap.Log() {
		if bytes.Contains(rec.Msg, secret) {
			t.Fatal("plaintext visible on the wire")
		}
	}
}

func TestTunnelTamperRejected(t *testing.T) {
	tunnel := NewTunnelServer()
	key := cryptoutil.InsecureTestKey(140)
	der, _ := cryptoutil.MarshalPublicKey(key.Public())
	tunnel.RegisterConsumer("sdc-1", der)

	a, b := transport.Pipe(0)
	defer a.Close()
	defer b.Close()
	serverCh, wrapped, err := tunnel.EstablishTunnel("sdc-1", a)
	if err != nil {
		t.Fatal(err)
	}
	agentCh, err := AcceptTunnel(key, wrapped, b)
	if err != nil {
		t.Fatal(err)
	}
	// Send a frame, but flip a ciphertext bit in flight: to do that we
	// bypass the channel and mutate directly on the raw pipe.
	ct, err := cryptoutil.SymmetricEncrypt(chKey(serverCh), []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	ct[len(ct)-1] ^= 1
	if err := a.Send(ct); err != nil {
		t.Fatal(err)
	}
	if _, err := agentCh.Recv(); err == nil {
		t.Fatal("tampered tunnel frame accepted")
	}
}

// chKey reaches the channel key for the tamper test.
func chKey(c *SecureChannel) []byte { return c.key }

func TestTunnelHandshakeFailures(t *testing.T) {
	tunnel := NewTunnelServer()
	a, _ := transport.Pipe(0)
	defer a.Close()
	if _, _, err := tunnel.EstablishTunnel("unregistered", a); !errors.Is(err, ErrTunnelHandshake) {
		t.Fatalf("unregistered consumer: %v", err)
	}

	// Wrapped key addressed to someone else cannot be accepted.
	key := cryptoutil.InsecureTestKey(140)
	other := cryptoutil.InsecureTestKey(141)
	der, _ := cryptoutil.MarshalPublicKey(key.Public())
	tunnel.RegisterConsumer("sdc-1", der)
	_, wrapped, err := tunnel.EstablishTunnel("sdc-1", a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AcceptTunnel(other, wrapped, a); !errors.Is(err, ErrTunnelHandshake) {
		t.Fatalf("wrong private key: %v", err)
	}
}

// TestSignedRequestOverTunnel runs the full Fig. 4 pipeline with the
// request bytes actually crossing the encrypted tunnel: the signed
// request is serialized, sent through a SecureChannel pair, decoded on
// the agent side and executed — the transport protection and the
// application-layer checks compose.
func TestSignedRequestOverTunnel(t *testing.T) {
	src := storage.NewMem(nil)
	src.Put("crm/x", []byte("row-1"), cryptoutil.Digest{})
	tunnel := NewTunnelServer()
	key := cryptoutil.InsecureTestKey(142)
	der, _ := cryptoutil.MarshalPublicKey(key.Public())
	tunnel.RegisterConsumer("c", der)
	token, err := tunnel.IssueToken()
	if err != nil {
		t.Fatal(err)
	}
	dep := &Deployment{Tunnel: tunnel, Agent: NewAgent(src, []Rule{{ViewerID: "*", ResourcePrefix: "crm/"}})}

	// Handshake over a raw pipe.
	a, b := transport.Pipe(0)
	defer a.Close()
	defer b.Close()
	serverCh, wrapped, err := tunnel.EstablishTunnel("c", a)
	if err != nil {
		t.Fatal(err)
	}
	agentCh, err := AcceptTunnel(key, wrapped, b)
	if err != nil {
		t.Fatal(err)
	}

	// Serialize the signed request, push it through the tunnel.
	req, err := BuildSignedRequest(key, "o", "v", "i", "a", "c", token, "crm/x")
	if err != nil {
		t.Fatal(err)
	}
	reqBytes := EncodeSignedRequest(req)
	if err := serverCh.Send(reqBytes); err != nil {
		t.Fatal(err)
	}
	gotBytes, err := agentCh.Recv()
	if err != nil {
		t.Fatal(err)
	}
	gotReq, err := DecodeSignedRequest(gotBytes)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dep.Request(gotReq)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "row-1" {
		t.Fatalf("data = %q", data)
	}
}
