package gaesim

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/storage"
)

func newDeployment(t *testing.T) (*Deployment, cryptoutil.KeyPair, string) {
	t.Helper()
	src := storage.NewMem(nil)
	if _, err := src.Put("crm/customers.csv", []byte("acme,42"), cryptoutil.Digest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Put("hr/salaries.csv", []byte("confidential"), cryptoutil.Digest{}); err != nil {
		t.Fatal(err)
	}
	tunnel := NewTunnelServer()
	key := cryptoutil.InsecureTestKey(20)
	der, err := cryptoutil.MarshalPublicKey(key.Public())
	if err != nil {
		t.Fatal(err)
	}
	tunnel.RegisterConsumer("consumer-1", der)
	token, err := tunnel.IssueToken()
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(src, []Rule{
		{ViewerID: "alice", ResourcePrefix: "crm/"},
		{ViewerID: "*", ResourcePrefix: "public/"},
	})
	return &Deployment{Tunnel: tunnel, Agent: agent}, key, token
}

func request(t *testing.T, key cryptoutil.KeyPair, token, viewer, resource string) *SignedRequest {
	t.Helper()
	r, err := BuildSignedRequest(key, "owner-corp", viewer, "inst-1", "app-1", "consumer-1", token, resource)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAuthorizedFlow(t *testing.T) {
	d, key, token := newDeployment(t)
	r := request(t, key, token, "alice", "crm/customers.csv")
	data, steps, err := d.Request(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("acme,42")) {
		t.Fatalf("data = %q", data)
	}
	if len(steps) != 6 {
		t.Fatalf("flow has %d steps: %+v", len(steps), steps)
	}
	if steps[0].Hop != "user→apps" || steps[len(steps)-1].Hop != "apps→user" {
		t.Fatalf("unexpected hops: %+v", steps)
	}
}

func TestResourceRulesDeny(t *testing.T) {
	d, key, token := newDeployment(t)
	// alice may read crm/ but not hr/.
	r := request(t, key, token, "alice", "hr/salaries.csv")
	_, steps, err := d.Request(r)
	if !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("err = %v, want ErrNotAuthorized", err)
	}
	last := steps[len(steps)-1]
	if last.Hop != "sdc" {
		t.Fatalf("rejection should happen at the SDC hop, got %q", last.Hop)
	}
}

func TestUnknownConsumerRejected(t *testing.T) {
	d, key, token := newDeployment(t)
	r := request(t, key, token, "alice", "crm/customers.csv")
	r.ConsumerKey = "consumer-unregistered"
	// Re-sign so only the consumer key is the problem.
	sig, _ := cryptoutil.Sign(key, r.CanonicalBytes())
	r.Signature = sig
	if _, _, err := d.Request(r); !errors.Is(err, ErrUnknownConsumer) {
		t.Fatalf("err = %v, want ErrUnknownConsumer", err)
	}
}

func TestBadTokenRejected(t *testing.T) {
	d, key, _ := newDeployment(t)
	r := request(t, key, "tok-forged", "alice", "crm/customers.csv")
	if _, _, err := d.Request(r); !errors.Is(err, ErrBadToken) {
		t.Fatalf("err = %v, want ErrBadToken", err)
	}
}

func TestNonceReplayRejected(t *testing.T) {
	d, key, token := newDeployment(t)
	r := request(t, key, token, "alice", "crm/customers.csv")
	if _, _, err := d.Request(r); err != nil {
		t.Fatal(err)
	}
	// Replaying the identical signed request must fail on the nonce.
	if _, _, err := d.Request(r); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("replay: err = %v, want ErrReplayedNonce", err)
	}
}

func TestAttackerKeySubstitutionRejected(t *testing.T) {
	d, _, token := newDeployment(t)
	// Mallory signs a well-formed request with her own key pair and
	// includes her own public key — the tunnel must reject because that
	// key is not the one registered for consumer-1.
	mallory := cryptoutil.InsecureTestKey(21)
	r, err := BuildSignedRequest(mallory, "owner-corp", "alice", "inst-1", "app-1", "consumer-1", token, "crm/customers.csv")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Request(r); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestTamperedFieldBreaksSignature(t *testing.T) {
	d, key, token := newDeployment(t)
	r := request(t, key, token, "bob", "public/doc")
	r.ViewerID = "alice" // escalate after signing
	if _, _, err := d.Request(r); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestMissingResource(t *testing.T) {
	d, key, token := newDeployment(t)
	r := request(t, key, token, "alice", "crm/ghost.csv")
	if _, _, err := d.Request(r); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestWildcardRule(t *testing.T) {
	d, key, token := newDeployment(t)
	if _, err := d.Agent.Source().Put("public/readme", []byte("hello"), cryptoutil.Digest{}); err != nil {
		t.Fatal(err)
	}
	r := request(t, key, token, "randomviewer", "public/readme")
	data, _, err := d.Request(r)
	if err != nil || string(data) != "hello" {
		t.Fatalf("wildcard rule: %q, %v", data, err)
	}
}

func TestRuleAllows(t *testing.T) {
	ru := Rule{ViewerID: "alice", ResourcePrefix: "crm/"}
	cases := []struct {
		viewer, res string
		want        bool
	}{
		{"alice", "crm/a", true},
		{"alice", "hr/a", false},
		{"bob", "crm/a", false},
		{"alice", "crm", false},
	}
	for _, c := range cases {
		if got := ru.Allows(c.viewer, c.res); got != c.want {
			t.Errorf("Allows(%q,%q) = %v, want %v", c.viewer, c.res, got, c.want)
		}
	}
}

// TestStorageDwellGap: the SDC path authenticates everything in flight,
// but data tampered at the source is served as-is — same E5 gap.
func TestStorageDwellGap(t *testing.T) {
	d, key, token := newDeployment(t)
	tam := d.Agent.Source().(storage.Tamperer)
	if err := tam.Tamper("crm/customers.csv", true, func(b []byte) []byte {
		return []byte("acme,0")
	}); err != nil {
		t.Fatal(err)
	}
	r := request(t, key, token, "alice", "crm/customers.csv")
	data, _, err := d.Request(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "acme,0" {
		t.Fatalf("data = %q", data)
	}
	// All checks passed, yet the content is not what was stored: the
	// platform offers no upload-to-download integrity.
}
