package gaesim

import (
	"errors"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/transport"
)

// The paper's §2.3: "the tunnel protocol allows the SDC to set up
// connection, authenticate, and encrypt the data that flows across the
// Internet." This file makes the encryption concrete: a handshake in
// which the tunnel server wraps a fresh AES-256 session key under the
// consumer's registered public key, then an encrypted channel whose
// frames are AES-CTR + HMAC (via cryptoutil.SymmetricEncrypt). A
// network eavesdropper sees only ciphertext and any modification is
// rejected — matching the SSL-equivalent transport protection the
// platforms claim, while leaving the storage-dwell gap untouched.

// ErrTunnelHandshake reports a failed establishment.
var ErrTunnelHandshake = errors.New("gaesim: tunnel handshake failed")

// EstablishTunnel is the tunnel-server side: it mints a session key,
// wraps it for the registered consumer key, and returns the wrapped
// key to send plus the server's channel.
func (t *TunnelServer) EstablishTunnel(consumerKey string, conn transport.Conn) (*SecureChannel, []byte, error) {
	t.mu.Lock()
	registered, ok := t.consumers[consumerKey]
	t.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: unknown consumer %q", ErrTunnelHandshake, consumerKey)
	}
	pub, err := cryptoutil.ParseAnyPublicKey(registered)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrTunnelHandshake, err)
	}
	session, err := cryptoutil.NewSymmetricKey()
	if err != nil {
		return nil, nil, err
	}
	wrapped, err := pub.Seal(session)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: wrapping session key: %v", ErrTunnelHandshake, err)
	}
	return &SecureChannel{conn: conn, key: session}, wrapped, nil
}

// AcceptTunnel is the SDC-agent side: unwrap the session key with the
// consumer's private key.
func AcceptTunnel(consumerPriv cryptoutil.KeyPair, wrapped []byte, conn transport.Conn) (*SecureChannel, error) {
	signer := consumerPriv.Signer()
	if signer == nil {
		return nil, fmt.Errorf("%w: consumer pair holds no private key", ErrTunnelHandshake)
	}
	session, err := signer.Unseal(wrapped)
	if err != nil {
		return nil, fmt.Errorf("%w: unwrapping session key: %v", ErrTunnelHandshake, err)
	}
	if len(session) != cryptoutil.SymmetricKeyLen {
		return nil, fmt.Errorf("%w: bad session key length %d", ErrTunnelHandshake, len(session))
	}
	return &SecureChannel{conn: conn, key: session}, nil
}

// SecureChannel is an encrypted, integrity-protected message channel
// over an arbitrary transport.Conn.
type SecureChannel struct {
	conn transport.Conn
	key  []byte
}

// Send encrypts and transmits one message.
func (c *SecureChannel) Send(msg []byte) error {
	ct, err := cryptoutil.SymmetricEncrypt(c.key, msg)
	if err != nil {
		return err
	}
	return c.conn.Send(ct)
}

// Recv receives and decrypts one message, rejecting any modification.
func (c *SecureChannel) Recv() ([]byte, error) {
	ct, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	pt, err := cryptoutil.SymmetricDecrypt(c.key, ct)
	if err != nil {
		return nil, fmt.Errorf("gaesim: tunnel frame rejected: %w", err)
	}
	return pt, nil
}

// Close tears down the underlying connection.
func (c *SecureChannel) Close() error { return c.conn.Close() }
