package azuresim

import (
	"crypto/subtle"
	"fmt"
	"strings"
	"sync"

	"repro/internal/cryptoutil"
)

// Two-phase block blob semantics. Table 1's request is a staged block
// PUT (`comp=block&blockid=blockid1`); the real service assembles a
// blob only when the client commits an ordered block list
// (`comp=blocklist`). This file adds that second phase: staged blocks
// are invisible to GET until committed, commit validates that every
// named block is staged, and the committed blob's Content-MD5 is
// computed over the concatenation — preserving the paper's
// per-session-only integrity semantics across the richer API.

// BlockStore tracks staged (uncommitted) blocks per blob. One lives
// inside each Service.
type blockStore struct {
	mu     sync.Mutex
	staged map[string]map[string][]byte // blobKey → blockID → data
}

func newBlockStore() *blockStore {
	return &blockStore{staged: make(map[string]map[string][]byte)}
}

func (bs *blockStore) stage(blobKey, blockID string, data []byte) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.staged[blobKey] == nil {
		bs.staged[blobKey] = make(map[string][]byte)
	}
	bs.staged[blobKey][blockID] = append([]byte(nil), data...)
}

func (bs *blockStore) commit(blobKey string, blockIDs []string) ([]byte, error) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	blocks := bs.staged[blobKey]
	var out []byte
	for _, id := range blockIDs {
		data, ok := blocks[id]
		if !ok {
			return nil, fmt.Errorf("azuresim: block %q not staged for %q", id, blobKey)
		}
		out = append(out, data...)
	}
	delete(bs.staged, blobKey)
	return out, nil
}

func (bs *blockStore) stagedCount(blobKey string) int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return len(bs.staged[blobKey])
}

// StageBlock authenticates and stages one block (PUT with
// comp=block&blockid=...). Staged blocks do not appear in GET.
func (s *Service) StageBlock(req *Request, blockID string) *Response {
	s.mu.RLock()
	key, ok := s.accounts[req.Account]
	s.mu.RUnlock()
	if !ok {
		return &Response{Status: 404, ErrMsg: ErrNoSuchAccount.Error()}
	}
	if !s.authorized(req, key) {
		return &Response{Status: 403, ErrMsg: ErrAuth.Error()}
	}
	if req.ContentMD5 == "" || cryptoutil.Sum(cryptoutil.MD5, req.Body).Base64() != req.ContentMD5 {
		return &Response{Status: 400, ErrMsg: ErrContentMD5.Error()}
	}
	s.blocks.stage(req.Account+blobPath(req.Resource), blockID, req.Body)
	return &Response{Status: 201, ContentMD5: req.ContentMD5}
}

// CommitBlockList assembles staged blocks in the given order into the
// visible blob (PUT with comp=blocklist).
func (s *Service) CommitBlockList(req *Request, blockIDs []string) *Response {
	s.mu.RLock()
	key, ok := s.accounts[req.Account]
	s.mu.RUnlock()
	if !ok {
		return &Response{Status: 404, ErrMsg: ErrNoSuchAccount.Error()}
	}
	if !s.authorized(req, key) {
		return &Response{Status: 403, ErrMsg: ErrAuth.Error()}
	}
	data, err := s.blocks.commit(req.Account+blobPath(req.Resource), blockIDs)
	if err != nil {
		return &Response{Status: 400, ErrMsg: err.Error()}
	}
	obj, err := s.store.Put(req.Account+blobPath(req.Resource), data, cryptoutil.Digest{})
	if err != nil {
		return &Response{Status: 500, ErrMsg: err.Error()}
	}
	return &Response{Status: 201, ContentMD5: obj.StoredMD5.Base64()}
}

// StagedBlocks reports how many blocks are staged for a blob (test and
// experiment introspection).
func (s *Service) StagedBlocks(account, resource string) int {
	return s.blocks.stagedCount(account + blobPath(resource))
}

// authorized runs the SharedKey check shared by every endpoint, in
// constant time.
func (s *Service) authorized(req *Request, key []byte) bool {
	want := "SharedKey " + req.Account + ":" + cryptoutil.Digest{
		Alg: cryptoutil.SHA256,
		Sum: cryptoutil.HMACSHA256(key, []byte(req.StringToSign())),
	}.Base64()
	return subtle.ConstantTimeCompare([]byte(req.Authorization), []byte(want)) == 1
}

// blobPath strips the query component so staged blocks and the
// committed blob share a key regardless of per-request parameters.
func blobPath(resource string) string {
	if i := strings.IndexByte(resource, '?'); i >= 0 {
		return resource[:i]
	}
	return resource
}
