package azuresim

import (
	"bytes"
	"testing"
)

// signedGet builds a signed metadata-style request for table/queue ops.
func signedGet(c *Client, resource string) *Request {
	req := &Request{Method: "GET", Resource: resource, Account: c.Account, Date: testNow}
	req.Sign(c.Key)
	return req
}

func TestTableInsertGetRoundTrip(t *testing.T) {
	svc, c := newService()
	tbl := svc.Tables()
	e := &Entity{PartitionKey: "customers", RowKey: "acme", Properties: map[string]string{"balance": "42"}}
	if resp := tbl.InsertEntity(signedGet(c, "/tables/t1"), "t1", e); resp.Status != 201 {
		t.Fatalf("insert: %d %s", resp.Status, resp.ErrMsg)
	}
	got, resp := tbl.GetEntity(signedGet(c, "/tables/t1"), "t1", "customers", "acme")
	if resp.Status != 200 || got.Properties["balance"] != "42" {
		t.Fatalf("get: %d %+v", resp.Status, got)
	}
	// The returned entity is a copy.
	got.Properties["balance"] = "999"
	again, _ := tbl.GetEntity(signedGet(c, "/tables/t1"), "t1", "customers", "acme")
	if again.Properties["balance"] != "42" {
		t.Fatal("GetEntity aliases store memory")
	}
}

func TestTableValidationAndAuth(t *testing.T) {
	svc, c := newService()
	tbl := svc.Tables()
	if resp := tbl.InsertEntity(signedGet(c, "/t"), "t", &Entity{RowKey: "r"}); resp.Status != 400 {
		t.Fatalf("missing partition key: %d", resp.Status)
	}
	forged := signedGet(c, "/t")
	forged.Authorization = "SharedKey jerry:forged"
	if resp := tbl.InsertEntity(forged, "t", &Entity{PartitionKey: "p", RowKey: "r"}); resp.Status != 403 {
		t.Fatalf("forged insert: %d", resp.Status)
	}
	ghost := NewClient(svc, "ghost", []byte("k"))
	if _, resp := tbl.GetEntity(signedGet(ghost, "/t"), "t", "p", "r"); resp.Status != 404 {
		t.Fatalf("ghost account: %d", resp.Status)
	}
	if _, resp := tbl.GetEntity(signedGet(c, "/t"), "t", "p", "missing"); resp.Status != 404 {
		t.Fatalf("missing entity: %d", resp.Status)
	}
}

func TestTableQueryPartitionSorted(t *testing.T) {
	svc, c := newService()
	tbl := svc.Tables()
	for _, row := range []string{"c", "a", "b"} {
		tbl.InsertEntity(signedGet(c, "/t"), "t", &Entity{PartitionKey: "p", RowKey: row})
	}
	tbl.InsertEntity(signedGet(c, "/t"), "t", &Entity{PartitionKey: "other", RowKey: "z"})
	got, resp := tbl.QueryPartition(signedGet(c, "/t"), "t", "p")
	if resp.Status != 200 || len(got) != 3 {
		t.Fatalf("query: %d, %d entities", resp.Status, len(got))
	}
	if got[0].RowKey != "a" || got[2].RowKey != "c" {
		t.Fatalf("unsorted: %v %v %v", got[0].RowKey, got[1].RowKey, got[2].RowKey)
	}
}

func TestQueuePutGetDeleteLifecycle(t *testing.T) {
	svc, c := newService()
	q := svc.Queues()
	if resp := q.Put(signedGet(c, "/q"), "jobs", []byte("job-1")); resp.Status != 201 {
		t.Fatalf("put: %d", resp.Status)
	}
	q.Put(signedGet(c, "/q"), "jobs", []byte("job-2"))

	m1, resp := q.Get(signedGet(c, "/q"), "jobs")
	if resp.Status != 200 || !bytes.Equal(m1.Body, []byte("job-1")) {
		t.Fatalf("get: %d %q", resp.Status, m1.Body)
	}
	// In-flight message is invisible; next Get returns job-2.
	m2, _ := q.Get(signedGet(c, "/q"), "jobs")
	if !bytes.Equal(m2.Body, []byte("job-2")) {
		t.Fatalf("second get: %q", m2.Body)
	}
	// Queue exhausted.
	if m3, resp := q.Get(signedGet(c, "/q"), "jobs"); m3 != nil || resp.Status != 204 {
		t.Fatalf("empty get: %v %d", m3, resp.Status)
	}
	// Delete job-1; requeue job-2 and fetch it again.
	if resp := q.Delete(signedGet(c, "/q"), "jobs", m1.ID); resp.Status != 204 {
		t.Fatalf("delete: %d", resp.Status)
	}
	if resp := q.Requeue(signedGet(c, "/q"), "jobs", m2.ID); resp.Status != 204 {
		t.Fatalf("requeue: %d", resp.Status)
	}
	m2b, _ := q.Get(signedGet(c, "/q"), "jobs")
	if !bytes.Equal(m2b.Body, []byte("job-2")) {
		t.Fatalf("requeued get: %q", m2b.Body)
	}
	if q.Len("jobs") != 1 {
		t.Fatalf("Len = %d", q.Len("jobs"))
	}
}

func TestQueueMessageSizeLimit(t *testing.T) {
	svc, c := newService()
	q := svc.Queues()
	big := make([]byte, MaxQueueMessage+1)
	if resp := q.Put(signedGet(c, "/q"), "jobs", big); resp.Status != 400 {
		t.Fatalf("oversized message: %d", resp.Status)
	}
	ok := make([]byte, MaxQueueMessage)
	if resp := q.Put(signedGet(c, "/q"), "jobs", ok); resp.Status != 201 {
		t.Fatalf("max-size message: %d", resp.Status)
	}
}

func TestQueueErrors(t *testing.T) {
	svc, c := newService()
	q := svc.Queues()
	if resp := q.Delete(signedGet(c, "/q"), "jobs", "msg-99"); resp.Status != 404 {
		t.Fatalf("delete missing: %d", resp.Status)
	}
	if resp := q.Requeue(signedGet(c, "/q"), "jobs", "msg-99"); resp.Status != 404 {
		t.Fatalf("requeue missing: %d", resp.Status)
	}
	forged := signedGet(c, "/q")
	forged.Authorization = "SharedKey jerry:bad"
	if resp := q.Put(forged, "jobs", []byte("x")); resp.Status != 403 {
		t.Fatalf("forged put: %d", resp.Status)
	}
}
