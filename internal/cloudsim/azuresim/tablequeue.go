package azuresim

import (
	"fmt"
	"sort"
	"sync"
)

// The paper's §2.2 lists "three basic data items: Blobs (up to 50GB),
// Tables, and Queues (<8k)". Blobs live in azuresim.go/blocklist.go;
// this file adds Tables (entity storage keyed by partition+row) and
// Queues (visibility-timeout message queues, ≤8 KiB per message), both
// behind the same SharedKey authorization — and both with the same
// integrity posture: per-request auth only, no storage-dwell binding.

// MaxQueueMessage is the paper's "<8k" bound.
const MaxQueueMessage = 8 << 10

// Entity is one table row.
type Entity struct {
	PartitionKey string
	RowKey       string
	Properties   map[string]string
}

func (e *Entity) clone() *Entity {
	c := &Entity{PartitionKey: e.PartitionKey, RowKey: e.RowKey, Properties: make(map[string]string, len(e.Properties))}
	for k, v := range e.Properties {
		c.Properties[k] = v
	}
	return c
}

// TableService is the entity store.
type TableService struct {
	svc *Service
	mu  sync.Mutex
	// tables: table name → "partition\x00row" → entity
	tables map[string]map[string]*Entity
}

// Tables returns the service's table endpoint.
func (s *Service) Tables() *TableService {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tableSvc == nil {
		s.tableSvc = &TableService{svc: s, tables: make(map[string]map[string]*Entity)}
	}
	return s.tableSvc
}

func entityKey(partition, row string) string { return partition + "\x00" + row }

// InsertEntity authenticates req and upserts the entity into table.
func (t *TableService) InsertEntity(req *Request, table string, e *Entity) *Response {
	if resp := t.svc.authOnly(req); resp != nil {
		return resp
	}
	if e.PartitionKey == "" || e.RowKey == "" {
		return &Response{Status: 400, ErrMsg: "azuresim: entity requires PartitionKey and RowKey"}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tables[table] == nil {
		t.tables[table] = make(map[string]*Entity)
	}
	t.tables[table][entityKey(e.PartitionKey, e.RowKey)] = e.clone()
	return &Response{Status: 201}
}

// GetEntity authenticates req and fetches one entity.
func (t *TableService) GetEntity(req *Request, table, partition, row string) (*Entity, *Response) {
	if resp := t.svc.authOnly(req); resp != nil {
		return nil, resp
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.tables[table][entityKey(partition, row)]
	if !ok {
		return nil, &Response{Status: 404, ErrMsg: "azuresim: entity not found"}
	}
	return e.clone(), &Response{Status: 200}
}

// QueryPartition returns a partition's entities sorted by row key.
func (t *TableService) QueryPartition(req *Request, table, partition string) ([]*Entity, *Response) {
	if resp := t.svc.authOnly(req); resp != nil {
		return nil, resp
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Entity
	for _, e := range t.tables[table] {
		if e.PartitionKey == partition {
			out = append(out, e.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RowKey < out[j].RowKey })
	return out, &Response{Status: 200}
}

// QueueMessage is one queued item.
type QueueMessage struct {
	ID   string
	Body []byte
	// dequeued marks an in-flight (invisible) message.
	dequeued bool
}

// QueueService is the message-queue endpoint.
type QueueService struct {
	svc    *Service
	mu     sync.Mutex
	queues map[string][]*QueueMessage
	nextID int
}

// Queues returns the service's queue endpoint.
func (s *Service) Queues() *QueueService {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queueSvc == nil {
		s.queueSvc = &QueueService{svc: s, queues: make(map[string][]*QueueMessage)}
	}
	return s.queueSvc
}

// Put enqueues a message (≤ MaxQueueMessage bytes).
func (q *QueueService) Put(req *Request, queue string, body []byte) *Response {
	if resp := q.svc.authOnly(req); resp != nil {
		return resp
	}
	if len(body) > MaxQueueMessage {
		return &Response{Status: 400, ErrMsg: fmt.Sprintf("azuresim: message %d bytes exceeds %d", len(body), MaxQueueMessage)}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.nextID++
	q.queues[queue] = append(q.queues[queue], &QueueMessage{
		ID:   fmt.Sprintf("msg-%d", q.nextID),
		Body: append([]byte(nil), body...),
	})
	return &Response{Status: 201}
}

// Get dequeues the oldest visible message, making it invisible until
// deleted (or until Requeue). Returns nil message when the queue is
// empty.
func (q *QueueService) Get(req *Request, queue string) (*QueueMessage, *Response) {
	if resp := q.svc.authOnly(req); resp != nil {
		return nil, resp
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, m := range q.queues[queue] {
		if !m.dequeued {
			m.dequeued = true
			return &QueueMessage{ID: m.ID, Body: append([]byte(nil), m.Body...)}, &Response{Status: 200}
		}
	}
	return nil, &Response{Status: 204}
}

// Delete removes a dequeued message permanently.
func (q *QueueService) Delete(req *Request, queue, msgID string) *Response {
	if resp := q.svc.authOnly(req); resp != nil {
		return resp
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	msgs := q.queues[queue]
	for i, m := range msgs {
		if m.ID == msgID {
			q.queues[queue] = append(msgs[:i], msgs[i+1:]...)
			return &Response{Status: 204}
		}
	}
	return &Response{Status: 404, ErrMsg: "azuresim: message not found"}
}

// Requeue makes an in-flight message visible again (visibility timeout
// expiry, compressed to an explicit call in the simulator).
func (q *QueueService) Requeue(req *Request, queue, msgID string) *Response {
	if resp := q.svc.authOnly(req); resp != nil {
		return resp
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, m := range q.queues[queue] {
		if m.ID == msgID && m.dequeued {
			m.dequeued = false
			return &Response{Status: 204}
		}
	}
	return &Response{Status: 404, ErrMsg: "azuresim: in-flight message not found"}
}

// Len reports visible + in-flight messages.
func (q *QueueService) Len(queue string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queues[queue])
}

// authOnly runs account lookup + SharedKey verification for non-blob
// endpoints, returning a non-nil error Response on failure.
func (s *Service) authOnly(req *Request) *Response {
	s.mu.RLock()
	key, ok := s.accounts[req.Account]
	s.mu.RUnlock()
	if !ok {
		return &Response{Status: 404, ErrMsg: ErrNoSuchAccount.Error()}
	}
	if !s.authorized(req, key) {
		return &Response{Status: 403, ErrMsg: ErrAuth.Error()}
	}
	return nil
}
