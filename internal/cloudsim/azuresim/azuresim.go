// Package azuresim simulates the Windows Azure blob storage service as
// the paper describes it (§2.2, Fig. 3, Table 1): account holders get a
// 256-bit secret key, every REST request carries a SharedKey
// HMAC-SHA256 authorization header computed over a canonical
// string-to-sign, PUT requests carry a Content-MD5 that the server
// verifies before storing, and GET responses return the *stored*
// Content-MD5 ("the original MD5_1 will be sent", §2.4).
//
// The simulator reproduces exactly the integrity properties the paper
// analyzes: per-request authentication and per-session transfer
// integrity are solid, but nothing binds the downloaded bytes to the
// uploaded bytes across the storage dwell — an insider who rewrites
// both blob and metadata (storage.Tamperer with fixDigest=true) passes
// every check.
package azuresim

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/storage"
)

// Service errors.
var (
	ErrNoSuchAccount = errors.New("azuresim: unknown account")
	ErrAuth          = errors.New("azuresim: authorization failed")
	ErrContentMD5    = errors.New("azuresim: Content-MD5 mismatch")
	ErrStaleDate     = errors.New("azuresim: request date outside tolerance")
	ErrBadRequest    = errors.New("azuresim: malformed request")
)

// APIVersion mirrors the x-ms-version the paper's Table 1 shows.
const APIVersion = "2009-09-19"

// Request is a REST request to the blob service, reduced to the fields
// the paper's Table 1 exercises.
type Request struct {
	// Method is "PUT" or "GET".
	Method string
	// Resource is the blob path, e.g. "/jerry/pics/block?comp=block".
	Resource string
	// Account is the account name ("jerry" in Table 1).
	Account string
	// Date is the x-ms-date header value's time.
	Date time.Time
	// ContentMD5 is the base64 MD5 of Body; required on PUT.
	ContentMD5 string
	// Body is the block content (PUT only).
	Body []byte
	// Authorization is "SharedKey <account>:<base64 HMAC-SHA256>".
	Authorization string
}

// Response is the service's reply.
type Response struct {
	// Status is an HTTP-ish status code.
	Status int
	// ContentMD5 echoes the stored Content-MD5 on GET (and on PUT,
	// confirming what was recorded).
	ContentMD5 string
	// Body is the blob content on GET.
	Body []byte
	// ErrMsg carries the error condition for non-2xx statuses.
	ErrMsg string
}

// StringToSign builds the canonical string covered by the SharedKey
// signature: method, MD5, date, version and resource, newline-joined.
// (The real service's canonicalization is longer; the fields the paper
// discusses are all covered.)
func (r *Request) StringToSign() string {
	return strings.Join([]string{
		r.Method,
		strconv.Itoa(len(r.Body)),
		r.ContentMD5,
		"x-ms-date:" + r.Date.UTC().Format(time.RFC1123),
		"x-ms-version:" + APIVersion,
		"/" + r.Account + r.Resource,
	}, "\n")
}

// Sign computes and installs the Authorization header for the account's
// secret key. Clients call this as the last step of request building
// (Fig. 3: "uses the secret key to create a HMAC SHA256 signature for
// each individual request").
func (r *Request) Sign(key []byte) {
	mac := cryptoutil.HMACSHA256(key, []byte(r.StringToSign()))
	r.Authorization = "SharedKey " + r.Account + ":" + cryptoutil.Digest{Alg: cryptoutil.SHA256, Sum: mac}.Base64()
}

// Render prints the request in the Table 1 REST style, used by the E1
// experiment to regenerate the paper's table.
func (r *Request) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s http://%s.blob.core.windows.net%s HTTP/1.1\n", r.Method, r.Account, r.Resource)
	if r.Method == "PUT" {
		fmt.Fprintf(&b, "Content-Length: %d\n", len(r.Body))
		fmt.Fprintf(&b, "Content-MD5: %s\n", r.ContentMD5)
	}
	fmt.Fprintf(&b, "Authorization: %s\n", r.Authorization)
	fmt.Fprintf(&b, "x-ms-date: %s\n", r.Date.UTC().Format(time.RFC1123))
	fmt.Fprintf(&b, "x-ms-version: %s\n", APIVersion)
	return b.String()
}

// Service is the simulated blob endpoint.
type Service struct {
	store storage.Store
	now   func() time.Time

	mu       sync.RWMutex
	accounts map[string][]byte // account name → 256-bit secret key

	// blocks holds staged (uncommitted) blocks for the two-phase block
	// blob API (blocklist.go).
	blocks *blockStore

	// tableSvc and queueSvc are the lazily created Tables and Queues
	// endpoints (tablequeue.go) — the paper's other two data items.
	tableSvc *TableService
	queueSvc *QueueService

	// DateTolerance bounds |now - x-ms-date|; stale-dated requests are
	// rejected, the service's (weak) replay mitigation.
	DateTolerance time.Duration
}

// New creates a service over the given store. now==nil means time.Now.
func New(store storage.Store, now func() time.Time) *Service {
	if now == nil {
		now = time.Now
	}
	return &Service{
		store:         store,
		now:           now,
		accounts:      make(map[string][]byte),
		blocks:        newBlockStore(),
		DateTolerance: 15 * time.Minute,
	}
}

// CreateAccount provisions an account and returns its fresh 256-bit
// secret key (Fig. 3: "After creating an account, the user will
// receive a 256-bit secret key").
func (s *Service) CreateAccount(name string) ([]byte, error) {
	key, err := cryptoutil.Nonce(32)
	if err != nil {
		return nil, fmt.Errorf("azuresim: generating account key: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[name]; ok {
		return nil, fmt.Errorf("azuresim: account %q exists", name)
	}
	s.accounts[name] = key
	return append([]byte(nil), key...), nil
}

// Store exposes the backing store (the provider's inside view; tests
// and experiments use it to act as the malicious insider).
func (s *Service) Store() storage.Store { return s.store }

// Handle authenticates and executes one request.
func (s *Service) Handle(req *Request) *Response {
	s.mu.RLock()
	key, ok := s.accounts[req.Account]
	s.mu.RUnlock()
	if !ok {
		return &Response{Status: 404, ErrMsg: ErrNoSuchAccount.Error()}
	}
	// Authenticate: recompute the SharedKey MAC over the string-to-sign
	// (constant-time comparison; MAC checks must not leak prefixes).
	if !s.authorized(req, key) {
		return &Response{Status: 403, ErrMsg: ErrAuth.Error()}
	}
	if tol := s.DateTolerance; tol > 0 {
		if d := s.now().Sub(req.Date); d > tol || d < -tol {
			return &Response{Status: 403, ErrMsg: ErrStaleDate.Error()}
		}
	}
	switch req.Method {
	case "PUT":
		return s.put(req)
	case "GET":
		return s.get(req)
	default:
		return &Response{Status: 400, ErrMsg: ErrBadRequest.Error() + ": method " + req.Method}
	}
}

func (s *Service) put(req *Request) *Response {
	if req.ContentMD5 == "" {
		return &Response{Status: 400, ErrMsg: ErrBadRequest.Error() + ": PUT requires Content-MD5"}
	}
	actual := cryptoutil.Sum(cryptoutil.MD5, req.Body)
	if actual.Base64() != req.ContentMD5 {
		// "The MD5 checksum is checked by the server. If it does not
		// match, an error is returned." (§2.2)
		return &Response{Status: 400, ErrMsg: ErrContentMD5.Error()}
	}
	obj, err := s.store.Put(req.Account+req.Resource, req.Body, actual)
	if err != nil {
		return &Response{Status: 500, ErrMsg: err.Error()}
	}
	return &Response{Status: 201, ContentMD5: obj.StoredMD5.Base64()}
}

func (s *Service) get(req *Request) *Response {
	obj, err := s.store.Get(req.Account + req.Resource)
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return &Response{Status: 404, ErrMsg: err.Error()}
		}
		return &Response{Status: 500, ErrMsg: err.Error()}
	}
	// Azure returns the digest recorded at upload time — the database
	// copy, NOT a recomputation (§2.4: "the original MD5_1 will be
	// sent"). This is the behaviour E5 contrasts with AWS.
	return &Response{Status: 200, ContentMD5: obj.StoredMD5.Base64(), Body: obj.Data}
}

// Client is an account-holder's view of the service.
type Client struct {
	Account string
	Key     []byte
	Service *Service
	Now     func() time.Time
}

// NewClient binds an account and key to a service endpoint.
func NewClient(svc *Service, account string, key []byte) *Client {
	return &Client{Account: account, Key: key, Service: svc, Now: svc.now}
}

// PutBlock uploads a block with Content-MD5 protection and returns the
// signed request (for transcripts) along with the response.
func (c *Client) PutBlock(resource string, body []byte) (*Request, *Response) {
	req := &Request{
		Method:     "PUT",
		Resource:   resource,
		Account:    c.Account,
		Date:       c.Now(),
		ContentMD5: cryptoutil.Sum(cryptoutil.MD5, body).Base64(),
		Body:       body,
	}
	req.Sign(c.Key)
	return req, c.Service.Handle(req)
}

// GetBlock downloads a block. VerifyMD5 on the result reproduces the
// client-side "check for message content integrity" step.
func (c *Client) GetBlock(resource string) (*Request, *Response) {
	req := &Request{
		Method:   "GET",
		Resource: resource,
		Account:  c.Account,
		Date:     c.Now(),
	}
	req.Sign(c.Key)
	return req, c.Service.Handle(req)
}

// VerifyMD5 performs the client-side integrity check on a GET response:
// does the body hash to the returned Content-MD5 header? Note this only
// proves the *transfer* was clean; if the provider tampered and fixed
// the metadata, this check passes (the §2.4 gap).
func VerifyMD5(resp *Response) bool {
	return cryptoutil.Sum(cryptoutil.MD5, resp.Body).Base64() == resp.ContentMD5
}
