package azuresim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/storage"
)

var testNow = time.Date(2009, 9, 13, 17, 30, 25, 0, time.UTC)

func newService() (*Service, *Client) {
	svc := New(storage.NewMem(nil), func() time.Time { return testNow })
	key, err := svc.CreateAccount("jerry")
	if err != nil {
		panic(err)
	}
	return svc, NewClient(svc, "jerry", key)
}

func TestPutGetRoundTrip(t *testing.T) {
	_, c := newService()
	body := []byte("block-1 contents")
	_, put := c.PutBlock("/pics/block?comp=block&blockid=blockid1", body)
	if put.Status != 201 {
		t.Fatalf("PUT status %d: %s", put.Status, put.ErrMsg)
	}
	_, get := c.GetBlock("/pics/block?comp=block&blockid=blockid1")
	if get.Status != 200 {
		t.Fatalf("GET status %d: %s", get.Status, get.ErrMsg)
	}
	if !bytes.Equal(get.Body, body) {
		t.Fatal("downloaded body differs")
	}
	if !VerifyMD5(get) {
		t.Fatal("client-side MD5 verification failed on clean round trip")
	}
}

func TestPutRejectsWrongContentMD5(t *testing.T) {
	_, c := newService()
	req := &Request{
		Method:     "PUT",
		Resource:   "/x",
		Account:    "jerry",
		Date:       testNow,
		ContentMD5: cryptoutil.Sum(cryptoutil.MD5, []byte("other data")).Base64(),
		Body:       []byte("actual data"),
	}
	req.Sign(c.Key)
	resp := c.Service.Handle(req)
	if resp.Status != 400 || !strings.Contains(resp.ErrMsg, "Content-MD5") {
		t.Fatalf("status %d msg %q, want 400 Content-MD5 error", resp.Status, resp.ErrMsg)
	}
}

func TestPutRequiresContentMD5(t *testing.T) {
	_, c := newService()
	req := &Request{Method: "PUT", Resource: "/x", Account: "jerry", Date: testNow, Body: []byte("d")}
	req.Sign(c.Key)
	if resp := c.Service.Handle(req); resp.Status != 400 {
		t.Fatalf("PUT without Content-MD5: status %d", resp.Status)
	}
}

func TestAuthRejectsWrongKey(t *testing.T) {
	svc, _ := newService()
	forged := NewClient(svc, "jerry", []byte("wrong key 0123456789 0123456789!"))
	_, resp := forged.PutBlock("/x", []byte("d"))
	if resp.Status != 403 {
		t.Fatalf("forged key: status %d, want 403", resp.Status)
	}
}

func TestAuthRejectsTamperedRequest(t *testing.T) {
	_, c := newService()
	req := &Request{
		Method:     "PUT",
		Resource:   "/x",
		Account:    "jerry",
		Date:       testNow,
		ContentMD5: cryptoutil.Sum(cryptoutil.MD5, []byte("d")).Base64(),
		Body:       []byte("d"),
	}
	req.Sign(c.Key)
	req.Resource = "/y" // mutate after signing — signature must break
	if resp := c.Service.Handle(req); resp.Status != 403 {
		t.Fatalf("tampered resource: status %d, want 403", resp.Status)
	}
}

func TestUnknownAccount(t *testing.T) {
	svc, _ := newService()
	ghost := NewClient(svc, "ghost", []byte("k"))
	_, resp := ghost.GetBlock("/x")
	if resp.Status != 404 {
		t.Fatalf("unknown account: status %d", resp.Status)
	}
}

func TestDuplicateAccount(t *testing.T) {
	svc, _ := newService()
	if _, err := svc.CreateAccount("jerry"); err == nil {
		t.Fatal("duplicate account accepted")
	}
}

func TestStaleDateRejected(t *testing.T) {
	svc, c := newService()
	svc.DateTolerance = 15 * time.Minute
	req := &Request{Method: "GET", Resource: "/x", Account: "jerry", Date: testNow.Add(-16 * time.Minute)}
	req.Sign(c.Key)
	if resp := svc.Handle(req); resp.Status != 403 {
		t.Fatalf("stale date: status %d, want 403", resp.Status)
	}
}

func TestGetMissingBlob(t *testing.T) {
	_, c := newService()
	_, resp := c.GetBlock("/absent")
	if resp.Status != 404 {
		t.Fatalf("missing blob: status %d", resp.Status)
	}
}

func TestUnsupportedMethod(t *testing.T) {
	_, c := newService()
	req := &Request{Method: "DELETE", Resource: "/x", Account: "jerry", Date: testNow}
	req.Sign(c.Key)
	if resp := c.Service.Handle(req); resp.Status != 400 {
		t.Fatalf("DELETE: status %d, want 400", resp.Status)
	}
}

// TestAzureReturnsStoredMD5AfterCleanTamper reproduces the §2.4 gap on
// the Azure behaviour: the provider rewrites blob AND database MD5; the
// GET returns the new MD5, the client-side check passes, and the
// tampering is invisible.
func TestAzureReturnsStoredMD5AfterCleanTamper(t *testing.T) {
	svc, c := newService()
	original := []byte("ledger total = 1000")
	c.PutBlock("/ledger", original)

	tam := svc.Store().(storage.Tamperer)
	if err := tam.Tamper("jerry/ledger", true, func(b []byte) []byte {
		return bytes.Replace(b, []byte("1000"), []byte("9999"), 1)
	}); err != nil {
		t.Fatal(err)
	}

	_, get := c.GetBlock("/ledger")
	if get.Status != 200 {
		t.Fatalf("GET status %d", get.Status)
	}
	if bytes.Equal(get.Body, original) {
		t.Fatal("tamper did not take effect")
	}
	if !VerifyMD5(get) {
		t.Fatal("platform check caught a digest-fixing insider — it must not be able to")
	}
}

// TestAzureStaleDigestTamper shows the contrast: a clumsy insider who
// forgets the metadata leaves a stored-vs-content mismatch that the
// client notices — because Azure returns the *stored* MD5.
func TestAzureStaleDigestTamper(t *testing.T) {
	svc, c := newService()
	c.PutBlock("/ledger", []byte("v1"))
	tam := svc.Store().(storage.Tamperer)
	if err := tam.Tamper("jerry/ledger", false, func(b []byte) []byte { return []byte("v2") }); err != nil {
		t.Fatal(err)
	}
	_, get := c.GetBlock("/ledger")
	if VerifyMD5(get) {
		t.Fatal("stale-digest tamper must be client-detectable on Azure")
	}
}

func TestRenderMatchesTable1Shape(t *testing.T) {
	_, c := newService()
	req, _ := c.PutBlock("/pics/block?comp=block&blockid=blockid1&timeout=30", []byte("photo bytes"))
	out := req.Render()
	for _, want := range []string{
		"PUT http://jerry.blob.core.windows.net/pics/block?comp=block&blockid=blockid1&timeout=30 HTTP/1.1",
		"Content-Length: 11",
		"Content-MD5: ",
		"Authorization: SharedKey jerry:",
		"x-ms-date: ",
		"x-ms-version: 2009-09-19",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered request missing %q:\n%s", want, out)
		}
	}
	getReq, _ := c.GetBlock("/pics/block")
	if strings.Contains(getReq.Render(), "Content-MD5") {
		t.Error("GET render must not carry Content-MD5 (Table 1)")
	}
}

func TestSignatureCoversBodyLength(t *testing.T) {
	_, c := newService()
	req := &Request{
		Method:     "PUT",
		Resource:   "/x",
		Account:    "jerry",
		Date:       testNow,
		ContentMD5: cryptoutil.Sum(cryptoutil.MD5, []byte("dd")).Base64(),
		Body:       []byte("dd"),
	}
	req.Sign(c.Key)
	// Change the body after signing; even with a matching Content-MD5
	// for the new body, the signature must fail first.
	req.Body = []byte("ee")
	req.ContentMD5 = cryptoutil.Sum(cryptoutil.MD5, req.Body).Base64()
	if resp := c.Service.Handle(req); resp.Status != 403 {
		t.Fatalf("body swap: status %d, want 403", resp.Status)
	}
}
