package azuresim

import (
	"bytes"
	"testing"

	"repro/internal/cryptoutil"
)

// stageReq builds a signed staging request for one block.
func stageReq(c *Client, resource string, body []byte) *Request {
	req := &Request{
		Method:     "PUT",
		Resource:   resource,
		Account:    c.Account,
		Date:       testNow,
		ContentMD5: cryptoutil.Sum(cryptoutil.MD5, body).Base64(),
		Body:       body,
	}
	req.Sign(c.Key)
	return req
}

func commitReq(c *Client, resource string) *Request {
	req := &Request{Method: "PUT", Resource: resource, Account: c.Account, Date: testNow}
	req.Sign(c.Key)
	return req
}

func TestBlockListCommitFlow(t *testing.T) {
	svc, c := newService()
	blockA, blockB := []byte("first half "), []byte("second half")

	// Stage two blocks; neither is visible yet.
	if resp := svc.StageBlock(stageReq(c, "/video?comp=block&blockid=A", blockA), "A"); resp.Status != 201 {
		t.Fatalf("stage A: %d %s", resp.Status, resp.ErrMsg)
	}
	if resp := svc.StageBlock(stageReq(c, "/video?comp=block&blockid=B", blockB), "B"); resp.Status != 201 {
		t.Fatalf("stage B: %d %s", resp.Status, resp.ErrMsg)
	}
	if n := svc.StagedBlocks("jerry", "/video"); n != 2 {
		t.Fatalf("staged = %d", n)
	}
	if _, resp := c.GetBlock("/video"); resp.Status != 404 {
		t.Fatalf("uncommitted blob visible: %d", resp.Status)
	}

	// Commit in order; the blob becomes the ordered concatenation.
	if resp := svc.CommitBlockList(commitReq(c, "/video?comp=blocklist"), []string{"A", "B"}); resp.Status != 201 {
		t.Fatalf("commit: %d %s", resp.Status, resp.ErrMsg)
	}
	_, get := c.GetBlock("/video")
	if get.Status != 200 || !bytes.Equal(get.Body, append(blockA, blockB...)) {
		t.Fatalf("committed blob: %d %q", get.Status, get.Body)
	}
	if !VerifyMD5(get) {
		t.Fatal("committed blob MD5 wrong")
	}
	// Staged blocks are consumed.
	if n := svc.StagedBlocks("jerry", "/video"); n != 0 {
		t.Fatalf("staged after commit = %d", n)
	}
}

func TestBlockListOrderMatters(t *testing.T) {
	svc, c := newService()
	svc.StageBlock(stageReq(c, "/doc", []byte("AAA")), "1")
	svc.StageBlock(stageReq(c, "/doc", []byte("BBB")), "2")
	if resp := svc.CommitBlockList(commitReq(c, "/doc"), []string{"2", "1"}); resp.Status != 201 {
		t.Fatalf("commit: %d", resp.Status)
	}
	_, get := c.GetBlock("/doc")
	if string(get.Body) != "BBBAAA" {
		t.Fatalf("blob = %q, want BBBAAA", get.Body)
	}
}

func TestCommitUnstagedBlockRejected(t *testing.T) {
	svc, c := newService()
	svc.StageBlock(stageReq(c, "/doc", []byte("x")), "present")
	resp := svc.CommitBlockList(commitReq(c, "/doc"), []string{"present", "missing"})
	if resp.Status != 400 {
		t.Fatalf("commit with missing block: %d", resp.Status)
	}
	if _, get := c.GetBlock("/doc"); get.Status != 404 {
		t.Fatal("failed commit must not create the blob")
	}
}

func TestStageBlockAuthAndMD5(t *testing.T) {
	svc, c := newService()
	// Bad MD5.
	bad := stageReq(c, "/doc", []byte("data"))
	bad.ContentMD5 = cryptoutil.Sum(cryptoutil.MD5, []byte("other")).Base64()
	bad.Sign(c.Key)
	if resp := svc.StageBlock(bad, "B"); resp.Status != 400 {
		t.Fatalf("bad MD5: %d", resp.Status)
	}
	// Bad signature.
	forged := stageReq(c, "/doc", []byte("data"))
	forged.Authorization = "SharedKey jerry:AAAA"
	if resp := svc.StageBlock(forged, "B"); resp.Status != 403 {
		t.Fatalf("forged: %d", resp.Status)
	}
	// Unknown account.
	ghost := NewClient(svc, "ghost", []byte("k"))
	if resp := svc.StageBlock(stageReq(ghost, "/doc", []byte("d")), "B"); resp.Status != 404 {
		t.Fatalf("ghost: %d", resp.Status)
	}
	if resp := svc.CommitBlockList(commitReq(ghost, "/doc"), nil); resp.Status != 404 {
		t.Fatalf("ghost commit: %d", resp.Status)
	}
	forgedCommit := commitReq(c, "/doc")
	forgedCommit.Authorization = "SharedKey jerry:AAAA"
	if resp := svc.CommitBlockList(forgedCommit, nil); resp.Status != 403 {
		t.Fatalf("forged commit: %d", resp.Status)
	}
}

func TestBlobPathStripsQuery(t *testing.T) {
	// Blocks staged under different query strings belong to one blob.
	svc, c := newService()
	svc.StageBlock(stageReq(c, "/doc?comp=block&blockid=1&timeout=30", []byte("a")), "1")
	svc.StageBlock(stageReq(c, "/doc?comp=block&blockid=2&timeout=90", []byte("b")), "2")
	if n := svc.StagedBlocks("jerry", "/doc"); n != 2 {
		t.Fatalf("staged = %d", n)
	}
}
