// Package awssim simulates the Amazon AWS data paths the paper
// analyzes (§2.1, Fig. 2): the Import/Export workflow for bulk data —
// the user e-mails a signed manifest file, ships a storage device with
// an attached signature file, and Amazon validates both, loads the
// data, and e-mails back a log with byte counts and MD5 checksums — and
// a small S3-style PUT/GET path for wire transfers.
//
// The behavioural detail experiment E5 depends on: on export, "a
// recomputed MD5_2 is sent" (§2.4) — AWS hashes whatever bytes are in
// storage *now*, so a tampered object arrives with a self-consistent
// digest and the client-side transfer check passes.
package awssim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/storage"
)

// Simulator errors.
var (
	ErrBadSignature   = errors.New("awssim: signature file does not validate against manifest")
	ErrUnknownAccess  = errors.New("awssim: unknown AccessKeyID")
	ErrNoManifest     = errors.New("awssim: no e-mailed manifest for job")
	ErrDeviceMismatch = errors.New("awssim: device ID does not match manifest")
)

// Manifest is the import/export metadata file the user e-mails to the
// provider ("AccessKeyID, DeviceID, Destination, etc.", §2.1).
type Manifest struct {
	JobID       string
	AccessKeyID string
	DeviceID    string
	// Destination is the bucket/prefix data is loaded into (import) or
	// exported from (export).
	Destination string
	// Operation is "import" or "export".
	Operation string
}

// CanonicalBytes is the deterministic form covered by the signature
// file.
func (m *Manifest) CanonicalBytes() []byte {
	return []byte(strings.Join([]string{
		"aws-manifest-v1", m.JobID, m.AccessKeyID, m.DeviceID, m.Destination, m.Operation,
	}, "\x00"))
}

// SignatureFile authenticates a manifest: HMAC-SHA256 over the
// manifest's canonical bytes under the account's secret key, which
// "uniquely identif[ies] and authenticate[s] the user request" (§2.1).
type SignatureFile struct {
	JobID  string
	Cipher string // algorithm label, fixed "HMAC-SHA256"
	MAC    []byte
}

// Device is a shipped storage device: a set of named files.
type Device struct {
	ID    string
	Files map[string][]byte
}

// NewDevice returns an empty device.
func NewDevice(id string) *Device { return &Device{ID: id, Files: make(map[string][]byte)} }

// Clone deep-copies a device (shipping hands over a copy, not shared
// memory).
func (d *Device) Clone() *Device {
	c := NewDevice(d.ID)
	for k, v := range d.Files {
		c.Files[k] = append([]byte(nil), v...)
	}
	return c
}

// SortedNames lists file names deterministically.
func (d *Device) SortedNames() []string {
	names := make([]string, 0, len(d.Files))
	for n := range d.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Email is one message on the simulated e-mail channel.
type Email struct {
	From, To, Subject string
	Body              string
	// Manifest rides along when the mail carries one.
	Manifest *Manifest
	// Log rides along on job-completion mail.
	Log *JobLog
}

// JobLog is what Amazon e-mails back after processing a job: "the
// number of bytes saved, the MD5 of the bytes, the status of the load,
// and the location ... of the AWS Import Export Log" (§2.1).
type JobLog struct {
	JobID    string
	Status   string
	Location string
	Entries  []JobLogEntry
}

// JobLogEntry is one object's line in the log: "key names, number of
// bytes, and MD5 checksum values".
type JobLogEntry struct {
	Key   string
	Bytes int
	MD5   cryptoutil.Digest
}

// Step is one timestamped event in a flow transcript (experiment E2
// renders these as the Fig. 2 walk-through).
type Step struct {
	At     time.Time
	Actor  string
	Action string
}

// Params set the latency model: surface-mail shipping latency and the
// effective device copy bandwidth.
type Params struct {
	// MailLatency is one-way shipping time (days, typically).
	MailLatency time.Duration
	// CopyBandwidth is bytes/second for device↔cloud copies.
	CopyBandwidth float64
}

// DefaultParams matches the paper's framing: multi-day FedEx shipping
// vs. local copies.
func DefaultParams() Params {
	return Params{MailLatency: 3 * 24 * time.Hour, CopyBandwidth: 100e6}
}

// Service is the simulated AWS side: account registry, S3-style store,
// import/export processing, and the e-mail endpoint.
type Service struct {
	store  storage.Store
	params Params

	mu       sync.Mutex
	accounts map[string][]byte    // AccessKeyID → secret key
	inbox    map[string]*Manifest // JobID → e-mailed manifest
	sent     []Email              // outbound mail from Amazon
}

// New creates a service over the given store.
func New(store storage.Store, params Params) *Service {
	return &Service{
		store:    store,
		params:   params,
		accounts: make(map[string][]byte),
		inbox:    make(map[string]*Manifest),
	}
}

// CreateAccount provisions an AccessKeyID and returns the secret key.
func (s *Service) CreateAccount(accessKeyID string) ([]byte, error) {
	key, err := cryptoutil.Nonce(32)
	if err != nil {
		return nil, fmt.Errorf("awssim: generating secret key: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[accessKeyID]; ok {
		return nil, fmt.Errorf("awssim: AccessKeyID %q exists", accessKeyID)
	}
	s.accounts[accessKeyID] = key
	return append([]byte(nil), key...), nil
}

// Store exposes the backing store (the insider view for experiments).
func (s *Service) Store() storage.Store { return s.store }

// SentMail returns a copy of all mail Amazon has sent.
func (s *Service) SentMail() []Email {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Email(nil), s.sent...)
}

// ReceiveManifestMail is the provider-side mailbox: the user "e-mails
// the signed manifest file to Amazon".
func (s *Service) ReceiveManifestMail(m Email) error {
	if m.Manifest == nil {
		return fmt.Errorf("awssim: mail %q carries no manifest", m.Subject)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inbox[m.Manifest.JobID] = m.Manifest
	return nil
}

func (s *Service) mail(e Email) {
	s.mu.Lock()
	s.sent = append(s.sent, e)
	s.mu.Unlock()
}

// validate checks the shipped signature file against the e-mailed
// manifest ("the service provider will validate the signature in the
// device with the manifest file obtained through the e-mail").
func (s *Service) validate(sig *SignatureFile, dev *Device) (*Manifest, error) {
	s.mu.Lock()
	manifest, ok := s.inbox[sig.JobID]
	var key []byte
	if ok {
		key = s.accounts[manifest.AccessKeyID]
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: job %q", ErrNoManifest, sig.JobID)
	}
	if key == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAccess, manifest.AccessKeyID)
	}
	if !cryptoutil.VerifyHMACSHA256(key, manifest.CanonicalBytes(), sig.MAC) {
		return nil, ErrBadSignature
	}
	if dev.ID != manifest.DeviceID {
		return nil, fmt.Errorf("%w: shipped %q, manifest says %q", ErrDeviceMismatch, dev.ID, manifest.DeviceID)
	}
	return manifest, nil
}

// ProcessImport handles an arrived device for an import job: validate,
// copy files into the destination, and e-mail the MD5 log back.
func (s *Service) ProcessImport(sig *SignatureFile, dev *Device) (*JobLog, error) {
	manifest, err := s.validate(sig, dev)
	if err != nil {
		return nil, err
	}
	log := &JobLog{JobID: manifest.JobID, Status: "COMPLETE", Location: manifest.Destination + "/AWS-IMPORT-LOG-" + manifest.JobID}
	for _, name := range dev.SortedNames() {
		data := dev.Files[name]
		key := manifest.Destination + "/" + name
		obj, err := s.store.Put(key, data, cryptoutil.Digest{})
		if err != nil {
			log.Status = "FAILED"
			return log, fmt.Errorf("awssim: loading %q: %w", key, err)
		}
		log.Entries = append(log.Entries, JobLogEntry{Key: key, Bytes: len(data), MD5: obj.StoredMD5})
	}
	s.mail(Email{From: "aws", To: manifest.AccessKeyID, Subject: "import complete " + manifest.JobID, Log: log})
	return log, nil
}

// ProcessExport handles an arrived (empty) device for an export job:
// validate, copy the destination's objects onto the device, ship it
// back, and e-mail the status with *recomputed* MD5s of what was
// copied.
func (s *Service) ProcessExport(sig *SignatureFile, dev *Device) (*Device, *JobLog, error) {
	manifest, err := s.validate(sig, dev)
	if err != nil {
		return nil, nil, err
	}
	out := dev.Clone()
	log := &JobLog{JobID: manifest.JobID, Status: "COMPLETE", Location: manifest.Destination + "/AWS-EXPORT-LOG-" + manifest.JobID}
	prefix := manifest.Destination + "/"
	for _, key := range s.store.Keys() {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		obj, err := s.store.Get(key)
		if err != nil {
			log.Status = "FAILED"
			return nil, log, fmt.Errorf("awssim: exporting %q: %w", key, err)
		}
		name := strings.TrimPrefix(key, prefix)
		out.Files[name] = obj.Data
		// Recomputed digest of current content — MD5_2 in §2.4.
		log.Entries = append(log.Entries, JobLogEntry{Key: key, Bytes: len(obj.Data), MD5: obj.ComputedMD5()})
	}
	s.mail(Email{From: "aws", To: manifest.AccessKeyID, Subject: "export complete " + manifest.JobID, Log: log})
	return out, log, nil
}

// S3Put is the wire path for small objects. The returned digest is the
// stored MD5 (ETag analogue).
func (s *Service) S3Put(accessKeyID string, mac []byte, key string, data []byte) (cryptoutil.Digest, error) {
	if err := s.authRequest(accessKeyID, mac, "PUT", key); err != nil {
		return cryptoutil.Digest{}, err
	}
	obj, err := s.store.Put(key, data, cryptoutil.Digest{})
	if err != nil {
		return cryptoutil.Digest{}, err
	}
	return obj.StoredMD5, nil
}

// S3Get downloads an object; the digest returned is recomputed from
// current content, matching AWS behaviour (§2.4).
func (s *Service) S3Get(accessKeyID string, mac []byte, key string) ([]byte, cryptoutil.Digest, error) {
	if err := s.authRequest(accessKeyID, mac, "GET", key); err != nil {
		return nil, cryptoutil.Digest{}, err
	}
	obj, err := s.store.Get(key)
	if err != nil {
		return nil, cryptoutil.Digest{}, err
	}
	return obj.Data, obj.ComputedMD5(), nil
}

// RequestMAC computes the request authenticator a client attaches to
// S3 calls.
func RequestMAC(secret []byte, method, key string) []byte {
	return cryptoutil.HMACSHA256(secret, []byte(method+"\x00"+key))
}

func (s *Service) authRequest(accessKeyID string, mac []byte, method, key string) error {
	s.mu.Lock()
	secret, ok := s.accounts[accessKeyID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAccess, accessKeyID)
	}
	if !cryptoutil.VerifyHMACSHA256(secret, []byte(method+"\x00"+key), mac) {
		return ErrBadSignature
	}
	return nil
}

// User is the client side of the import/export workflow.
type User struct {
	AccessKeyID string
	Secret      []byte
}

// BuildManifest assembles and signs a job manifest, returning manifest
// and signature file.
func (u *User) BuildManifest(jobID, deviceID, destination, operation string) (*Manifest, *SignatureFile) {
	m := &Manifest{JobID: jobID, AccessKeyID: u.AccessKeyID, DeviceID: deviceID, Destination: destination, Operation: operation}
	sig := &SignatureFile{JobID: jobID, Cipher: "HMAC-SHA256", MAC: cryptoutil.HMACSHA256(u.Secret, m.CanonicalBytes())}
	return m, sig
}

// Timeline simulates the Fig. 2 flow end-to-end and returns the step
// transcript plus total simulated elapsed time. No real time passes;
// the latency model advances a virtual timestamp. deviceBytes is the
// total payload size (drives the copy-time term).
func Timeline(params Params, start time.Time, deviceBytes int64, operation string) ([]Step, time.Duration) {
	now := start
	var steps []Step
	add := func(actor, action string, d time.Duration) {
		steps = append(steps, Step{At: now, Actor: actor, Action: action})
		now = now.Add(d)
	}
	copyTime := time.Duration(float64(deviceBytes) / params.CopyBandwidth * float64(time.Second))
	add("user", "create manifest file (AccessKeyID, DeviceID, Destination)", 0)
	add("user", "sign manifest; e-mail signed manifest to Amazon", 0)
	add("user", "attach signature file to device; ship device", params.MailLatency)
	add("aws", "receive device; validate signature file against manifest", 0)
	add("aws", fmt.Sprintf("%s data (%d bytes) between device and cloud", operation, deviceBytes), copyTime)
	add("aws", "e-mail job log: bytes saved, MD5 of bytes, status, log location", 0)
	if operation == "export" {
		add("aws", "ship device back to user", params.MailLatency)
		add("user", "receive device; check files against e-mailed MD5 log", 0)
	}
	return steps, now.Sub(start)
}
