package awssim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/storage"
)

func newService(t *testing.T) (*Service, *User) {
	t.Helper()
	svc := New(storage.NewMem(nil), DefaultParams())
	secret, err := svc.CreateAccount("AKIAALICE")
	if err != nil {
		t.Fatal(err)
	}
	return svc, &User{AccessKeyID: "AKIAALICE", Secret: secret}
}

// runImport walks the full Fig. 2 import flow.
func runImport(t *testing.T, svc *Service, u *User, files map[string][]byte) *JobLog {
	t.Helper()
	manifest, sig := u.BuildManifest("JOB-1", "DEV-7", "bucket/backups", "import")
	if err := svc.ReceiveManifestMail(Email{From: u.AccessKeyID, To: "aws", Subject: "manifest JOB-1", Manifest: manifest}); err != nil {
		t.Fatal(err)
	}
	dev := NewDevice("DEV-7")
	for k, v := range files {
		dev.Files[k] = v
	}
	log, err := svc.ProcessImport(sig, dev)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestImportFlow(t *testing.T) {
	svc, u := newService(t)
	files := map[string][]byte{
		"q1.db": []byte("first quarter"),
		"q2.db": []byte("second quarter"),
	}
	log := runImport(t, svc, u, files)

	if log.Status != "COMPLETE" || len(log.Entries) != 2 {
		t.Fatalf("log = %+v", log)
	}
	for _, e := range log.Entries {
		name := e.Key[len("bucket/backups/"):]
		want := cryptoutil.Sum(cryptoutil.MD5, files[name])
		if !e.MD5.Equal(want) {
			t.Errorf("%s: log MD5 %v, want %v", e.Key, e.MD5, want)
		}
		if e.Bytes != len(files[name]) {
			t.Errorf("%s: %d bytes, want %d", e.Key, e.Bytes, len(files[name]))
		}
	}
	obj, err := svc.Store().Get("bucket/backups/q1.db")
	if err != nil || !bytes.Equal(obj.Data, files["q1.db"]) {
		t.Fatalf("stored object: %v %q", err, obj.Data)
	}
	mail := svc.SentMail()
	if len(mail) != 1 || mail[0].Log == nil || mail[0].Log.JobID != "JOB-1" {
		t.Fatalf("mail = %+v", mail)
	}
}

func TestExportFlowRecomputesMD5(t *testing.T) {
	svc, u := newService(t)
	runImport(t, svc, u, map[string][]byte{"data.bin": []byte("original bytes")})

	// The insider tampers in storage, fixing nothing — AWS export
	// recomputes MD5 from current content, so the log is
	// self-consistent with the tampered data (the §2.4 MD5_2 problem).
	tam := svc.Store().(storage.Tamperer)
	if err := tam.Tamper("bucket/backups/data.bin", false, func(b []byte) []byte {
		return []byte("tampered bytes!")
	}); err != nil {
		t.Fatal(err)
	}

	manifest, sig := u.BuildManifest("JOB-2", "DEV-8", "bucket/backups", "export")
	svc.ReceiveManifestMail(Email{Manifest: manifest})
	dev, log, err := svc.ProcessExport(sig, NewDevice("DEV-8"))
	if err != nil {
		t.Fatal(err)
	}
	got := dev.Files["data.bin"]
	if string(got) != "tampered bytes!" {
		t.Fatalf("exported %q", got)
	}
	// The e-mailed MD5 matches the *tampered* content: transfer check
	// passes, tampering invisible.
	if !log.Entries[0].MD5.Equal(cryptoutil.Sum(cryptoutil.MD5, got)) {
		t.Fatal("export log MD5 is not the recomputed digest")
	}
}

func TestValidateRejectsForgedSignature(t *testing.T) {
	svc, u := newService(t)
	manifest, _ := u.BuildManifest("JOB-3", "DEV-9", "bucket/x", "import")
	svc.ReceiveManifestMail(Email{Manifest: manifest})
	forged := &SignatureFile{JobID: "JOB-3", Cipher: "HMAC-SHA256", MAC: []byte("not a real mac")}
	if _, err := svc.ProcessImport(forged, NewDevice("DEV-9")); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestValidateRejectsUnknownJob(t *testing.T) {
	svc, u := newService(t)
	_, sig := u.BuildManifest("JOB-GHOST", "DEV-9", "bucket/x", "import")
	if _, err := svc.ProcessImport(sig, NewDevice("DEV-9")); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("err = %v, want ErrNoManifest", err)
	}
}

func TestValidateRejectsWrongDevice(t *testing.T) {
	svc, u := newService(t)
	manifest, sig := u.BuildManifest("JOB-4", "DEV-EXPECTED", "bucket/x", "import")
	svc.ReceiveManifestMail(Email{Manifest: manifest})
	if _, err := svc.ProcessImport(sig, NewDevice("DEV-OTHER")); !errors.Is(err, ErrDeviceMismatch) {
		t.Fatalf("err = %v, want ErrDeviceMismatch", err)
	}
}

func TestManifestMailRequired(t *testing.T) {
	svc, _ := newService(t)
	if err := svc.ReceiveManifestMail(Email{Subject: "empty"}); err == nil {
		t.Fatal("mail without manifest accepted")
	}
}

func TestDuplicateAccount(t *testing.T) {
	svc, _ := newService(t)
	if _, err := svc.CreateAccount("AKIAALICE"); err == nil {
		t.Fatal("duplicate AccessKeyID accepted")
	}
}

func TestS3PutGet(t *testing.T) {
	svc, u := newService(t)
	data := []byte("small object")
	putMAC := RequestMAC(u.Secret, "PUT", "bucket/small")
	etag, err := svc.S3Put(u.AccessKeyID, putMAC, "bucket/small", data)
	if err != nil {
		t.Fatal(err)
	}
	if !etag.Equal(cryptoutil.Sum(cryptoutil.MD5, data)) {
		t.Error("PUT etag is not content MD5")
	}
	getMAC := RequestMAC(u.Secret, "GET", "bucket/small")
	got, md5d, err := svc.S3Get(u.AccessKeyID, getMAC, "bucket/small")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || !md5d.Equal(etag) {
		t.Fatal("S3 round trip mismatch")
	}
}

func TestS3AuthFailures(t *testing.T) {
	svc, u := newService(t)
	if _, err := svc.S3Put("AKIANOBODY", []byte("m"), "k", []byte("d")); !errors.Is(err, ErrUnknownAccess) {
		t.Errorf("unknown access key: %v", err)
	}
	wrongMAC := RequestMAC([]byte("wrong secret"), "PUT", "k")
	if _, err := svc.S3Put(u.AccessKeyID, wrongMAC, "k", []byte("d")); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong mac: %v", err)
	}
	// MAC for a different key must not authorize this key.
	otherMAC := RequestMAC(u.Secret, "PUT", "other")
	if _, err := svc.S3Put(u.AccessKeyID, otherMAC, "k", []byte("d")); !errors.Is(err, ErrBadSignature) {
		t.Errorf("mac for other key: %v", err)
	}
}

func TestTimelineShippingDominates(t *testing.T) {
	params := DefaultParams()
	start := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	steps, total := Timeline(params, start, 1<<40, "export") // 1 TiB
	if len(steps) < 6 {
		t.Fatalf("timeline has %d steps", len(steps))
	}
	// Export ships both ways: total must include 2× mail latency.
	if total < 2*params.MailLatency {
		t.Fatalf("total %v < 2× mail latency", total)
	}
	copyTime := total - 2*params.MailLatency
	if copyTime >= params.MailLatency {
		t.Fatalf("copy time %v should be far below mail latency %v", copyTime, params.MailLatency)
	}
	// Import ships one way only.
	_, importTotal := Timeline(params, start, 1<<30, "import")
	if importTotal >= total {
		t.Fatal("import (one-way) should take less than export (two-way)")
	}
}

func TestDeviceClone(t *testing.T) {
	d := NewDevice("D")
	d.Files["a"] = []byte("x")
	c := d.Clone()
	c.Files["a"][0] = 'y'
	if d.Files["a"][0] != 'x' {
		t.Fatal("Clone shares file memory")
	}
}
